package sim

import (
	"fmt"
	"math"
	"math/rand"

	"lbsq/internal/broadcast"
	"lbsq/internal/cache"
	"lbsq/internal/core"
	"lbsq/internal/geom"
	"lbsq/internal/mobility"
	"lbsq/internal/p2p"
	"lbsq/internal/rtree"
	"lbsq/internal/trace"
	"lbsq/internal/wire"
)

// World is one simulation instance: the POI database and its broadcast
// schedule, the mobile host population, and the sharing layer.
type World struct {
	// Params is the active configuration (defaults applied).
	Params Params
	// CompareBaseline, when set, additionally prices a sample of queries
	// with the plain on-air algorithms (no sharing) for the latency
	// experiments.
	CompareBaseline bool
	// BaselineSampleRate is the fraction of queries priced against the
	// baseline (default 0.2 when CompareBaseline is set).
	BaselineSampleRate float64
	// SelfCheck, when set, verifies every exact query result against the
	// R-tree ground truth and records the first mismatch.
	SelfCheck bool
	// Trace, when non-nil, receives one event per counted query (JSONL).
	Trace *trace.Writer

	rng   *rand.Rand
	area  geom.Rect
	types []typeState
	net   *p2p.Network
	model *mobility.Waypoint
	hosts []host

	nowSec      float64
	durationSec float64
	warmupSec   float64

	stats        Stats
	selfCheckErr error
}

type host struct {
	mob    mobility.State
	caches []*cache.Cache // one per POI data type (Table 4: CSize per type)
}

// typeState is the per-data-type substrate: its POI field, ground truth,
// and broadcast channel (types are frequency-multiplexed, each with its
// own cyclic schedule — "the effects of other POI types are expected to
// be very similar", Section 4).
type typeState struct {
	db     []broadcast.POI
	truth  *rtree.Tree
	sched  *broadcast.Schedule
	lambda float64 // POI density (per square mile)
}

// NewWorld builds a simulation world from the parameter set.
func NewWorld(p Params) (*World, error) {
	p.applyDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	area := p.Area()

	nTypes := p.POITypes
	if nTypes < 1 {
		nTypes = 1
	}
	types := make([]typeState, nTypes)
	for ti := range types {
		db := generatePOIs(rng, p)
		items := make([]rtree.Item, len(db))
		for i, poi := range db {
			items[i] = rtree.Item{ID: poi.ID, Pos: poi.Pos}
		}
		bcfg := p.Broadcast
		bcfg.Area = area
		sched, err := broadcast.NewSchedule(db, bcfg)
		if err != nil {
			return nil, err
		}
		types[ti] = typeState{
			db:     db,
			truth:  rtree.Bulk(items, 16),
			sched:  sched,
			lambda: p.POIDensity(),
		}
	}

	cell := p.TxRangeMiles()
	if cell <= 0 {
		cell = p.AreaMiles / 20
	}
	net, err := p2p.NewNetwork(area, cell)
	if err != nil {
		return nil, err
	}

	// Vehicle speeds in miles per second.
	model, err := mobility.NewWaypoint(area,
		p.MinSpeedMph/3600, p.MaxSpeedMph/3600, p.PauseSec)
	if err != nil {
		return nil, err
	}

	w := &World{
		Params:      p,
		rng:         rng,
		area:        area,
		types:       types,
		net:         net,
		model:       model,
		durationSec: p.DurationHours * 3600,
	}
	w.warmupSec = w.durationSec * p.WarmupFrac

	w.hosts = make([]host, p.MHNumber)
	for i := range w.hosts {
		caches := make([]*cache.Cache, nTypes)
		for ti := range caches {
			caches[ti] = cache.New(p.CacheSize, p.CachePolicy)
		}
		w.hosts[i] = host{
			mob:    model.Init(rng),
			caches: caches,
		}
		w.net.Update(i, w.hosts[i].mob.Pos)
	}
	if p.PrefillQueriesPerHost > 0 {
		w.prefill()
	}
	return w, nil
}

// generatePOIs draws the POI database: a uniform field (the paper's
// Poisson assumption), or a Gaussian mixture when POIClusters is set.
func generatePOIs(rng *rand.Rand, p Params) []broadcast.POI {
	db := make([]broadcast.POI, p.POINumber)
	area := p.Area()
	if p.POIClusters <= 0 {
		for i := range db {
			db[i] = broadcast.POI{
				ID:  int64(i),
				Pos: geom.Pt(rng.Float64()*p.AreaMiles, rng.Float64()*p.AreaMiles),
			}
		}
		return db
	}
	centers := make([]geom.Point, p.POIClusters)
	for i := range centers {
		centers[i] = geom.Pt(rng.Float64()*p.AreaMiles, rng.Float64()*p.AreaMiles)
	}
	spread := p.AreaMiles / 20
	for i := range db {
		c := centers[rng.Intn(len(centers))]
		pos := geom.Pt(c.X+rng.NormFloat64()*spread, c.Y+rng.NormFloat64()*spread)
		db[i] = broadcast.POI{ID: int64(i), Pos: area.Clip(pos)}
	}
	return db
}

// prefill seeds every host's cache with the results of simulated
// historical queries — a steady-state warm start. Each synthetic region
// is populated directly from the ground-truth database, so the cache
// soundness invariant (a region's POI list is exactly the database
// restricted to the region) holds by construction.
func (w *World) prefill() {
	radius := w.Params.PrefillRadiusMiles
	if radius <= 0 {
		// Default locality: how far knowledge lags behind a host — the
		// mean travel between queries in the paper's configuration
		// (~15 min between queries at ~30 mph ≈ 7.5 mi), capped by the
		// map size for scaled runs.
		radius = math.Min(7.5, w.Params.AreaMiles/2)
	}
	for i := range w.hosts {
		h := &w.hosts[i]
		ti := w.rng.Intn(len(w.types))
		ts := &w.types[ti]
		n := mobility.Poisson(w.rng, w.Params.PrefillQueriesPerHost)
		for j := 0; j < n; j++ {
			if len(w.types) > 1 {
				ti = w.rng.Intn(len(w.types))
				ts = &w.types[ti]
			}
			angle := w.rng.Float64() * 2 * math.Pi
			d := w.rng.Float64() * radius
			center := w.area.Clip(h.mob.Pos.Add(
				geom.Pt(math.Cos(angle)*d, math.Sin(angle)*d)))
			var region geom.Rect
			if w.Params.Kind == WindowQuery {
				// A historical broadcast window retrieval caches the
				// collective MBR of its packets, capacity-bounded.
				area := float64(w.Params.CacheSize) / math.Max(ts.lambda, 1e-9)
				area *= 0.4 + 0.6*w.rng.Float64()
				half := math.Sqrt(area) / 2
				win, ok := geom.RectAround(center, half).Intersect(w.area)
				if !ok {
					continue
				}
				region = win
			} else {
				k := w.drawK()
				nn := ts.truth.KNN(center, k)
				if len(nn) == 0 {
					continue
				}
				// The search square a historical on-air kNN would have
				// verified: the MBR of the k-th NN circle.
				rk := nn[len(nn)-1].Pos.Dist(center)
				region = geom.RectAround(center, math.Max(rk, 1e-9))
			}
			h.caches[ti].Insert(cache.Region{Rect: region, POIs: w.poisInRect(ti, region)},
				h.mob.Pos, h.mob.Heading(), 0)
		}
	}
}

// poisInRect returns the database POIs of one type inside r (ground truth).
func (w *World) poisInRect(ti int, r geom.Rect) []broadcast.POI {
	items := w.types[ti].truth.Window(r)
	out := make([]broadcast.POI, len(items))
	for i, it := range items {
		out[i] = broadcast.POI{ID: it.ID, Pos: it.Pos}
	}
	return out
}

// Schedule exposes the broadcast schedule of the first data type (for
// experiments and tools).
func (w *World) Schedule() *broadcast.Schedule { return w.types[0].sched }

// Database returns the POI database of the first data type.
func (w *World) Database() []broadcast.POI { return w.types[0].db }

// Stats returns the statistics collected so far.
func (w *World) Stats() Stats {
	s := w.stats
	s.PeerRequests = w.net.Stats.Requests
	s.PeerReplies = w.net.Stats.Replies
	return s
}

// SelfCheckErr returns the first ground-truth mismatch observed, if any.
func (w *World) SelfCheckErr() error { return w.selfCheckErr }

// Now returns the simulated time in seconds.
func (w *World) Now() float64 { return w.nowSec }

// slotNow maps simulated time to the broadcast slot clock.
func (w *World) slotNow() int64 {
	return int64(w.nowSec / w.Params.SlotSec)
}

// Run executes the whole configured duration and returns the steady-state
// statistics.
func (w *World) Run() Stats {
	dt := w.Params.TimeStepSec
	for w.nowSec < w.durationSec {
		w.Step(dt)
	}
	return w.Stats()
}

// Step advances the world by dt seconds: every host moves, then a
// Poisson-distributed number of randomly chosen hosts launch queries.
func (w *World) Step(dt float64) {
	for i := range w.hosts {
		w.model.Step(&w.hosts[i].mob, dt, w.rng)
		w.net.Update(i, w.hosts[i].mob.Pos)
	}
	w.nowSec += dt

	mean := w.Params.QueryRate / 60 * dt
	n := mobility.Poisson(w.rng, mean)
	for q := 0; q < n; q++ {
		idx := w.rng.Intn(len(w.hosts))
		ti := w.rng.Intn(len(w.types))
		if w.Params.Kind == WindowQuery {
			w.runWindowQuery(idx, ti)
		} else {
			w.runKNNQuery(idx, ti)
		}
	}
}

// record emits a trace event when tracing is enabled.
func (w *World) record(e trace.Event) {
	if w.Trace == nil {
		return
	}
	if err := w.Trace.Record(e); err != nil && w.selfCheckErr == nil {
		w.selfCheckErr = err
	}
}

// counted reports whether the warm-up has passed.
func (w *World) counted() bool { return w.nowSec >= w.warmupSec }

// collectPeers gathers the verified regions of all single-hop peers of
// host idx that intersect the relevance rectangle, as PeerData for the
// core algorithms. Dropping irrelevant regions only shrinks the MVR,
// which keeps verification sound (and the simulation fast).
func (w *World) collectPeers(idx, ti int, relevance geom.Rect) ([]core.PeerData, int) {
	q := w.hosts[idx].mob.Pos
	hops := w.Params.SharingHops
	if hops < 1 {
		hops = 1
	}
	ids := w.net.NeighborsMultiHop(q, w.Params.TxRangeMiles(), hops, idx)
	w.net.RecordExchange(len(ids))
	count := w.counted() // byte accounting joins the other post-warm-up stats
	if count {
		w.stats.PeerBytes += int64(wire.RequestSize) // one broadcast request
	}
	var peers []core.PeerData
	stamp := int64(w.nowSec)
	if w.Params.UseOwnCache {
		// The host's own cache is a zero-cost "peer": no wire traffic.
		for _, r := range w.hosts[idx].caches[ti].Regions() {
			if r.Rect.Intersects(relevance) {
				peers = append(peers, core.PeerData{VR: r.Rect, POIs: r.POIs})
			}
		}
	}
	for _, id := range ids {
		c := w.hosts[id].caches[ti]
		replied := false
		for ri, r := range c.Regions() {
			if !r.Rect.Intersects(relevance) {
				continue
			}
			peers = append(peers, core.PeerData{VR: r.Rect, POIs: r.POIs})
			c.Touch(ri, stamp)
			if count {
				w.stats.PeerBytes += int64(wire.RegionWireSize(len(r.POIs)))
			}
			replied = true
		}
		if replied && count {
			w.stats.PeerBytes += int64(wire.ReplyOverhead)
		}
	}
	return peers, len(ids)
}

// drawK samples the per-query k around the configured mean.
func (w *World) drawK() int {
	k := mobility.Poisson(w.rng, float64(w.Params.K))
	if k < 1 {
		k = 1
	}
	return k
}

// knnRelevanceRadius bounds which peer regions can matter for a k-NN
// query: several times the expected k-NN distance under the POI density,
// floored by the transmission range.
func (w *World) knnRelevanceRadius(ti, k int) float64 {
	r := 4 * math.Sqrt(float64(k)/(math.Pi*math.Max(w.types[ti].lambda, 1e-9)))
	if tx := 2 * w.Params.TxRangeMiles(); tx > r {
		r = tx
	}
	return math.Min(r, w.Params.AreaMiles)
}

func (w *World) runKNNQuery(idx, ti int) {
	h := &w.hosts[idx]
	ts := &w.types[ti]
	q := h.mob.Pos
	k := w.drawK()
	relevance := geom.RectAround(q, w.knnRelevanceRadius(ti, k))
	peers, nPeers := w.collectPeers(idx, ti, relevance)

	cfg := core.SBNNConfig{
		K:                 k,
		Lambda:            ts.lambda,
		AcceptApproximate: w.Params.AcceptApproximate,
		MinCorrectness:    w.Params.MinCorrectness,
	}
	res := core.SBNN(q, peers, cfg, ts.sched, w.slotNow())

	if w.counted() {
		w.stats.Queries++
		w.stats.peersSum += int64(nPeers)
		switch res.Outcome {
		case core.OutcomeVerified:
			w.stats.Verified++
		case core.OutcomeApproximate:
			w.stats.Approximate++
		default:
			w.stats.Broadcast++
			w.stats.LatencySlots += res.Access.Latency
			w.stats.TuningSlots += res.Access.Tuning
			w.stats.PacketsRead += int64(res.Access.PacketsRead)
			w.stats.PacketsSkipped += int64(res.Access.PacketsSkipped)
		}
		w.sampleKNNBaseline(ti, q, k)
		if w.SelfCheck && res.Outcome != core.OutcomeApproximate {
			w.checkKNN(ti, q, k, res.POIs)
		}
		w.record(trace.Event{
			TimeSec: w.nowSec, Host: idx, Kind: "knn",
			Outcome: res.Outcome.String(), K: k, Peers: nPeers,
			LatencySlots: res.Access.Latency, TuningSlots: res.Access.Tuning,
			PacketsRead: res.Access.PacketsRead, PacketsSkipped: res.Access.PacketsSkipped,
		})
	}

	// Store the gained verified knowledge (Section 4.1 cache policies).
	if !res.KnownRegion.Empty() {
		h.caches[ti].Insert(cache.Region{Rect: res.KnownRegion, POIs: res.Known},
			q, h.mob.Heading(), int64(w.nowSec))
	}
}

func (w *World) runWindowQuery(idx, ti int) {
	h := &w.hosts[idx]
	ts := &w.types[ti]
	q := h.mob.Pos
	win, ok := w.drawWindow(q)
	if !ok {
		return
	}
	peers, nPeers := w.collectPeers(idx, ti, win)
	// Cap cached retrieval regions at what the cache can hold: CacheSize
	// POIs cover about CacheSize/lambda square miles.
	cfg := core.SBWQConfig{
		MaxKnownArea: 1.5 * float64(w.Params.CacheSize) / math.Max(ts.lambda, 1e-9),
	}
	res := core.SBWQWithConfig(q, win, peers, cfg, ts.sched, w.slotNow())

	if w.counted() {
		w.stats.Queries++
		w.stats.peersSum += int64(nPeers)
		if res.Outcome == core.OutcomeVerified {
			w.stats.Verified++
		} else {
			w.stats.Broadcast++
			w.stats.LatencySlots += res.Access.Latency
			w.stats.TuningSlots += res.Access.Tuning
			w.stats.PacketsRead += int64(res.Access.PacketsRead)
			w.stats.PacketsSkipped += int64(res.Access.PacketsSkipped)
		}
		w.sampleWindowBaseline(ti, win)
		if w.SelfCheck {
			w.checkWindow(ti, win, res.POIs)
		}
		w.record(trace.Event{
			TimeSec: w.nowSec, Host: idx, Kind: "window",
			Outcome: res.Outcome.String(), Peers: nPeers,
			LatencySlots: res.Access.Latency, TuningSlots: res.Access.Tuning,
			PacketsRead: res.Access.PacketsRead, PacketsSkipped: res.Access.PacketsSkipped,
		})
	}

	// Cache the gained verified knowledge: the window itself, or the
	// larger collective MBR of a broadcast retrieval.
	if !res.KnownRegion.Empty() {
		h.caches[ti].Insert(cache.Region{Rect: res.KnownRegion, POIs: res.Known},
			q, h.mob.Heading(), int64(w.nowSec))
	}
}

// drawWindow samples a query window: side around the configured mean,
// center at a normally-distributed distance from the host in a uniform
// direction, clipped to the service area.
func (w *World) drawWindow(q geom.Point) (geom.Rect, bool) {
	side := w.Params.WindowSideMiles() * (0.5 + w.rng.Float64())
	if side <= 0 {
		return geom.Rect{}, false
	}
	dist := math.Abs(w.rng.NormFloat64()*w.Params.WindowDistMiles/3 +
		w.Params.WindowDistMiles)
	angle := w.rng.Float64() * 2 * math.Pi
	center := q.Add(geom.Pt(math.Cos(angle)*dist, math.Sin(angle)*dist))
	center = w.area.Clip(center)
	win, ok := geom.RectAround(center, side/2).Intersect(w.area)
	if !ok {
		return geom.Rect{}, false
	}
	return win, true
}

func (w *World) sampleKNNBaseline(ti int, q geom.Point, k int) {
	if !w.CompareBaseline {
		return
	}
	rate := w.BaselineSampleRate
	if rate <= 0 {
		rate = 0.2
	}
	if w.rng.Float64() > rate {
		return
	}
	_, acc := w.types[ti].sched.KNN(q, k, w.slotNow())
	w.stats.BaselineLatencySlots += acc.Latency
	w.stats.BaselinePackets += int64(acc.PacketsRead)
	w.stats.BaselineSampled++
}

func (w *World) sampleWindowBaseline(ti int, win geom.Rect) {
	if !w.CompareBaseline {
		return
	}
	rate := w.BaselineSampleRate
	if rate <= 0 {
		rate = 0.2
	}
	if w.rng.Float64() > rate {
		return
	}
	_, acc := w.types[ti].sched.Window(win, w.slotNow())
	w.stats.BaselineLatencySlots += acc.Latency
	w.stats.BaselinePackets += int64(acc.PacketsRead)
	w.stats.BaselineSampled++
}

func (w *World) checkKNN(ti int, q geom.Point, k int, got []broadcast.POI) {
	if w.selfCheckErr != nil {
		return
	}
	want := w.types[ti].truth.KNN(q, k)
	if len(got) != len(want) {
		w.selfCheckErr = fmt.Errorf("kNN self-check: got %d results want %d", len(got), len(want))
		return
	}
	for i := range want {
		if math.Abs(got[i].Pos.Dist(q)-want[i].Pos.Dist(q)) > 1e-9 {
			w.selfCheckErr = fmt.Errorf(
				"kNN self-check: rank %d distance %v want %v (q=%v k=%d)",
				i, got[i].Pos.Dist(q), want[i].Pos.Dist(q), q, k)
			return
		}
	}
}

func (w *World) checkWindow(ti int, win geom.Rect, got []broadcast.POI) {
	if w.selfCheckErr != nil {
		return
	}
	want := w.types[ti].truth.Window(win)
	if len(got) != len(want) {
		w.selfCheckErr = fmt.Errorf(
			"window self-check: got %d results want %d (w=%v)", len(got), len(want), win)
		return
	}
	ids := make(map[int64]bool, len(got))
	for _, p := range got {
		ids[p.ID] = true
	}
	for _, p := range want {
		if !ids[p.ID] {
			w.selfCheckErr = fmt.Errorf("window self-check: POI %d missing (w=%v)", p.ID, win)
			return
		}
	}
}
