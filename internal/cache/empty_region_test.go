package cache

import (
	"testing"

	"lbsq/internal/geom"
)

// TestEmptyRegionsAreBounded: regions with no POIs ("verified empty
// areas") must still charge capacity so the region list cannot grow
// without bound — the failure mode of tiny window queries over sparse POI
// fields.
func TestEmptyRegionsAreBounded(t *testing.T) {
	c := New(10, DirectionDistance)
	for i := 0; i < 100; i++ {
		x := float64(i)
		c.Insert(Region{Rect: geom.NewRect(x, 0, x+0.5, 0.5)},
			geom.Pt(x, 0), geom.Point{}, int64(i))
	}
	if len(c.Regions()) > 10 {
		t.Fatalf("%d empty regions retained with capacity 10", len(c.Regions()))
	}
	if c.Size() > c.Capacity() {
		t.Fatalf("size %d exceeds capacity", c.Size())
	}
	if c.POICount() != 0 {
		t.Fatalf("POICount = %d", c.POICount())
	}
}

// TestMixedEmptyAndFullRegions: cost accounting blends empty regions (one
// unit) with populated ones (POI count).
func TestMixedEmptyAndFullRegions(t *testing.T) {
	c := New(6, LRU)
	c.Insert(mkRegion(geom.NewRect(0, 0, 1, 1), 1, 2, 3), geom.Pt(0, 0), geom.Point{}, 1)
	c.Insert(Region{Rect: geom.NewRect(2, 2, 3, 3)}, geom.Pt(0, 0), geom.Point{}, 2)
	if c.Size() != 4 { // 3 POIs + 1 empty-region unit
		t.Fatalf("Size = %d", c.Size())
	}
	c.Insert(mkRegion(geom.NewRect(4, 4, 5, 5), 4, 5, 6), geom.Pt(0, 0), geom.Point{}, 3)
	if c.Size() > 6 {
		t.Fatalf("Size %d exceeds capacity after eviction", c.Size())
	}
}
