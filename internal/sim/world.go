package sim

import (
	"fmt"
	"math"
	"math/rand"

	"lbsq/internal/broadcast"
	"lbsq/internal/cache"
	"lbsq/internal/core"
	"lbsq/internal/faults"
	"lbsq/internal/geom"
	"lbsq/internal/mobility"
	"lbsq/internal/p2p"
	"lbsq/internal/rtree"
	"lbsq/internal/trace"
	"lbsq/internal/trust"
	"lbsq/internal/wire"
)

// faultSeedSalt decorrelates the fault-injection stream from the
// simulation stream: both derive from Params.Seed, but the injector never
// shares draws with the world, so enabling faults does not perturb
// movement, query launching, or the POI field.
const faultSeedSalt = 0x6661756c74 // "fault"

// byzSeedSalt seeds the one-shot byzantine host assignment and
// trustSeedSalt the trust engine's audit-sampling stream. Both are
// decorrelated from the world and fault streams for the same reason as
// faultSeedSalt: arming either knob must not perturb movement, query
// launching, the POI field, or the fault draws.
const (
	byzSeedSalt   = 0x62797a61 // "byza"
	trustSeedSalt = 0x74727573 // "trus"
)

// contSeedSalt seeds the continuous-query registration stream
// (internal/sim continuous layer): which hosts register standing
// subscriptions, and each subscription's k or window shape. Decorrelated
// from every other stream so arming the ContinuousRate knob never
// perturbs movement, one-shot query launching, the POI field, or the
// fault draws. Subscription re-verification itself draws nothing — the
// shape is fixed at registration — so the maintenance phase consumes no
// randomness at all.
const contSeedSalt = 0x636f6e74 // "cont"

// World is one simulation instance: the POI database and its broadcast
// schedule, the mobile host population, and the sharing layer.
type World struct {
	// Params is the active configuration (defaults applied).
	Params Params
	// CompareBaseline, when set, additionally prices a sample of queries
	// with the plain on-air algorithms (no sharing) for the latency
	// experiments.
	CompareBaseline bool
	// BaselineSampleRate is the fraction of queries priced against the
	// baseline (default 0.2 when CompareBaseline is set).
	BaselineSampleRate float64
	// SelfCheck, when set, verifies every exact query result against the
	// R-tree ground truth and records the first mismatch.
	SelfCheck bool
	// Trace, when non-nil, receives one event per counted query (JSONL).
	Trace *trace.Writer

	rng     *rand.Rand
	area    geom.Rect
	types   []typeState
	net     *p2p.Network
	model   *mobility.Waypoint
	hosts   []host
	inj     *faults.Injector
	queryID uint64 // wire correlation IDs for encoded replies

	// resilient selects the adaptive query lifecycle (deadline, backoff,
	// breakers, churn); false runs the seed's blind collection loop
	// bit-identically. breakers is nil unless BreakerThreshold is set.
	resilient bool
	breakers  *p2p.BreakerSet

	// blackout is the per-host deep-fade schedule of the broadcast
	// downlink (nil unless the blackout knobs are set — no draws, no
	// branch costs then). planner arms the degraded-mode fallback ladder;
	// chanDown tracks each host's last observed downlink state so
	// reacquisitions are countable (allocated only when blackout is
	// armed). chanArmed gates the availability accounting
	// (AnsweredInBudget) to channel-impaired runs so zero-knob stats stay
	// byte-identical.
	blackout  *faults.Blackout
	planner   bool
	chanDown  []bool
	chanArmed bool

	// byzAttack is the per-host byzantine assignment (AttackNone for
	// honest hosts), drawn once at world construction from a dedicated
	// seeded stream. Nil when Faults.ByzantineRate is zero — no draws, no
	// branch costs on the honest path.
	byzAttack []faults.Attack
	// tr is the trust engine (nil unless Params.AuditRate > 0). It models
	// the reputation state the hosts share through their ordinary P2P
	// exchanges — one engine per world, the same simplification the
	// breaker set makes.
	tr *trust.Engine

	// mx is the observability layer (nil unless Params.Metrics): the
	// per-world registry, phase-span scratch, and instrument handles.
	// Observation is allocation-free and draws no randomness, so the
	// simulation trajectory is identical with or without it.
	mx *worldMetrics

	// cons is the consistency layer (nil unless Params.UpdateRate > 0):
	// the POI-update process, the per-type epoch state, and the on-air
	// invalidation-report frames (DESIGN.md §12).
	cons *consState

	// cont is the continuous-query layer (nil unless
	// Params.ContinuousRate > 0): the standing subscription registry and
	// its dedicated registration stream (DESIGN.md §15). Nil means zero
	// draws and zero branch costs — the zero-knob world is bit-identical
	// to the pre-continuous build.
	cont *contState

	// ovl is the flash-crowd and overload-control plane (overload.go,
	// DESIGN.md §16): the seeded crowd generator, peer service queues,
	// admission buckets, the retry budget, the load governor, and the
	// coalescing donor table. Nil unless a crowd or overload knob is
	// armed — the zero-knob world makes zero extra draws and stays
	// bit-identical to the pre-overload build.
	ovl *overloadState

	nowSec      float64
	durationSec float64
	warmupSec   float64

	// qs is the World-owned query scratch: every per-query buffer of the
	// hot path (neighbor IDs, heard lists, PeerData collection, retry
	// targets, reply staging, and the core algorithm scratch) lives here
	// and is reused across queries. Queries within one World run strictly
	// sequentially, so no synchronization is needed; parallel sweeps give
	// every cell its own World and therefore its own scratch.
	qs queryScratch

	// eng is the batched per-tick query engine (engine.go), active only
	// when Params.TickWorkers > 1. Its buffers are reused across ticks.
	eng tickEngine

	stats        Stats
	selfCheckErr error
}

// queryScratch holds the per-World reusable buffers of the query path.
// Aliasing contract: core.PeerData entries alias live cache storage for
// the duration of one query only, and the core algorithms copy every
// candidate before returning (see core.PeerData); all other buffers are
// consumed before the query completes.
type queryScratch struct {
	ids      []int                // neighbor lookup buffer
	heard    []int                // per-attempt heard list (legacy) / heard target indexes (resilient)
	peers    []core.PeerData      // collected verified regions
	owners   []int                // contributing host per peers entry (trust.Self for own cache)
	targets  []collectTarget      // resilient lifecycle per-peer state
	shared   []sharedRegion       // receiveReply staging
	regs     []wire.Region        // wire-encoding staging (damaged-reply path)
	contribs []trust.Contribution // trust-screen staging
	screened []core.PeerData      // trust-screened PeerData
	core     core.Scratch         // NNV/SBNN/SBWQ hot-path scratch
}

// collectTarget is one addressed peer's state during the resilient
// collection lifecycle.
type collectTarget struct {
	id       int
	departed bool // churned away (the querier cannot know)
	resolved bool // replied with content or a null ack
	// dropped marks a peer whose bounded service queue silently shed at
	// least one of this query's requests: overload, not failure, so the
	// end-of-collection timeout is strike-exempt (the BUSY/queue-drop
	// analogue of the fade suppression below).
	dropped bool
}

// sharedRegion is one cache region a peer serves in a reply, with its
// staleness fate drawn from the injector.
type sharedRegion struct {
	region cache.Region
	stale  bool
}

type host struct {
	mob    mobility.State
	caches []*cache.Cache // one per POI data type (Table 4: CSize per type)
	// irEpoch is the newest database epoch this host has heard an
	// invalidation report for, per data type. Nil when the consistency
	// layer is off.
	irEpoch []int64
}

// typeState is the per-data-type substrate: its POI field, ground truth,
// and broadcast channel (types are frequency-multiplexed, each with its
// own cyclic schedule — "the effects of other POI types are expected to
// be very similar", Section 4).
type typeState struct {
	db     []broadcast.POI
	truth  *rtree.Tree
	sched  *broadcast.Schedule
	lambda float64 // POI density (per square mile)
	// bcfg is the channel configuration the schedule was built with, kept
	// for epoch rebuilds when the POI-update process mutates db.
	bcfg broadcast.Config
}

// NewWorld builds a simulation world from the parameter set.
func NewWorld(p Params) (*World, error) {
	p.applyDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	area := p.Area()

	nTypes := p.POITypes
	if nTypes < 1 {
		nTypes = 1
	}
	prof := p.Faults.Normalized()
	types := make([]typeState, nTypes)
	for ti := range types {
		db := generatePOIs(rng, p)
		items := make([]rtree.Item, len(db))
		for i, poi := range db {
			items[i] = rtree.Item{ID: poi.ID, Pos: poi.Pos}
		}
		bcfg := p.Broadcast
		bcfg.Area = area
		if prof.BroadcastLoss > 0 {
			// One fault profile drives every channel: the broadcast loss
			// rate feeds the schedule's reception-error model, seeded per
			// type so the channels stay independent but reproducible.
			bcfg.LossRate = prof.BroadcastLoss
			bcfg.LossSeed = p.Seed ^ faultSeedSalt ^ int64(ti+1)
		}
		sched, err := broadcast.NewSchedule(db, bcfg)
		if err != nil {
			return nil, err
		}
		types[ti] = typeState{
			db:     db,
			truth:  rtree.Bulk(items, 16),
			sched:  sched,
			lambda: p.POIDensity(),
			bcfg:   bcfg,
		}
	}

	cell := p.TxRangeMiles()
	if cell <= 0 {
		cell = p.AreaMiles / 20
	}
	net, err := p2p.NewNetwork(area, cell)
	if err != nil {
		return nil, err
	}

	// Vehicle speeds in miles per second.
	model, err := mobility.NewWaypoint(area,
		p.MinSpeedMph/3600, p.MaxSpeedMph/3600, p.PauseSec)
	if err != nil {
		return nil, err
	}

	w := &World{
		Params:      p,
		rng:         rng,
		area:        area,
		types:       types,
		net:         net,
		model:       model,
		inj:         faults.New(p.Seed^faultSeedSalt, p.Faults),
		durationSec: p.DurationHours * 3600,
		resilient:   p.ResilienceEnabled(),
		breakers:    p2p.NewBreakerSet(p.BreakerConfig()),
		blackout:    faults.NewBlackout(p.Seed^faultSeedSalt, prof),
		planner:     p.DegradedMode,
		chanArmed:   prof.BurstEnabled() || prof.BlackoutEnabled(),
	}
	w.warmupSec = w.durationSec * p.WarmupFrac
	if w.blackout != nil {
		w.chanDown = make([]bool, p.MHNumber)
	}
	w.tr = trust.NewEngine(p.Seed^trustSeedSalt, p.TrustConfig(), w.breakers)
	if prof.ByzantineRate > 0 {
		// Byzantine status is a per-host property, assigned once from a
		// dedicated seeded stream (the attacker's population, not a
		// per-message coin flip): the same hosts lie for the whole run, so
		// reputation has something real to learn.
		byzRng := rand.New(rand.NewSource(p.Seed ^ byzSeedSalt))
		w.byzAttack = make([]faults.Attack, p.MHNumber)
		for i := range w.byzAttack {
			if byzRng.Float64() < prof.ByzantineRate {
				w.byzAttack[i] = prof.Attack
			}
		}
	}
	if p.ConsistencyEnabled() {
		w.cons = newConsState(p, types)
	}
	if p.ContinuousEnabled() {
		w.cont = newContState(p)
	}
	w.ovl = newOverloadState(p)
	if p.Metrics {
		w.mx = newWorldMetrics(w.tr != nil, w.cons != nil || p.VRTTLSec > 0,
			w.chanArmed || w.planner, p.ContinuousEnabled(),
			p.CrowdEnabled() || p.OverloadEnabled())
		w.mx.hosts.Set(float64(p.MHNumber))
		w.net.FanoutHist = w.mx.fanout
	}

	w.hosts = make([]host, p.MHNumber)
	for i := range w.hosts {
		caches := make([]*cache.Cache, nTypes)
		for ti := range caches {
			caches[ti] = cache.New(p.CacheSize, p.CachePolicy)
		}
		w.hosts[i] = host{
			mob:    model.Init(rng),
			caches: caches,
		}
		if w.cons != nil {
			w.hosts[i].irEpoch = make([]int64, nTypes)
		}
		w.net.Update(i, w.hosts[i].mob.Pos)
	}
	if p.PrefillQueriesPerHost > 0 {
		w.prefill()
	}
	return w, nil
}

// generatePOIs draws the POI database: a uniform field (the paper's
// Poisson assumption), or a Gaussian mixture when POIClusters is set.
func generatePOIs(rng *rand.Rand, p Params) []broadcast.POI {
	db := make([]broadcast.POI, p.POINumber)
	area := p.Area()
	if p.POIClusters <= 0 {
		for i := range db {
			db[i] = broadcast.POI{
				ID:  int64(i),
				Pos: geom.Pt(rng.Float64()*p.AreaMiles, rng.Float64()*p.AreaMiles),
			}
		}
		return db
	}
	centers := make([]geom.Point, p.POIClusters)
	for i := range centers {
		centers[i] = geom.Pt(rng.Float64()*p.AreaMiles, rng.Float64()*p.AreaMiles)
	}
	spread := p.AreaMiles / 20
	for i := range db {
		c := centers[rng.Intn(len(centers))]
		pos := geom.Pt(c.X+rng.NormFloat64()*spread, c.Y+rng.NormFloat64()*spread)
		db[i] = broadcast.POI{ID: int64(i), Pos: area.Clip(pos)}
	}
	return db
}

// prefill seeds every host's cache with the results of simulated
// historical queries — a steady-state warm start. Each synthetic region
// is populated directly from the ground-truth database, so the cache
// soundness invariant (a region's POI list is exactly the database
// restricted to the region) holds by construction.
func (w *World) prefill() {
	radius := w.Params.PrefillRadiusMiles
	if radius <= 0 {
		// Default locality: how far knowledge lags behind a host — the
		// mean travel between queries in the paper's configuration
		// (~15 min between queries at ~30 mph ≈ 7.5 mi), capped by the
		// map size for scaled runs.
		radius = math.Min(7.5, w.Params.AreaMiles/2)
	}
	for i := range w.hosts {
		h := &w.hosts[i]
		ti := w.rng.Intn(len(w.types))
		ts := &w.types[ti]
		n := mobility.Poisson(w.rng, w.Params.PrefillQueriesPerHost)
		for j := 0; j < n; j++ {
			if len(w.types) > 1 {
				ti = w.rng.Intn(len(w.types))
				ts = &w.types[ti]
			}
			angle := w.rng.Float64() * 2 * math.Pi
			d := w.rng.Float64() * radius
			center := w.area.Clip(h.mob.Pos.Add(
				geom.Pt(math.Cos(angle)*d, math.Sin(angle)*d)))
			var region geom.Rect
			if w.Params.Kind == WindowQuery {
				// A historical broadcast window retrieval caches the
				// collective MBR of its packets, capacity-bounded.
				area := float64(w.Params.CacheSize) / math.Max(ts.lambda, 1e-9)
				area *= 0.4 + 0.6*w.rng.Float64()
				half := math.Sqrt(area) / 2
				win, ok := geom.RectAround(center, half).Intersect(w.area)
				if !ok {
					continue
				}
				region = win
			} else {
				k := w.drawK()
				nn := ts.truth.KNN(center, k)
				if len(nn) == 0 {
					continue
				}
				// The search square a historical on-air kNN would have
				// verified: the MBR of the k-th NN circle.
				rk := nn[len(nn)-1].Pos.Dist(center)
				region = geom.RectAround(center, math.Max(rk, 1e-9))
			}
			h.caches[ti].Insert(cache.Region{Rect: region, POIs: w.poisInRect(ti, region)},
				h.mob.Pos, h.mob.Heading(), 0)
		}
	}
}

// poisInRect returns the database POIs of one type inside r (ground truth).
func (w *World) poisInRect(ti int, r geom.Rect) []broadcast.POI {
	items := w.types[ti].truth.Window(r)
	out := make([]broadcast.POI, len(items))
	for i, it := range items {
		out[i] = broadcast.POI{ID: it.ID, Pos: it.Pos}
	}
	return out
}

// Schedule exposes the broadcast schedule of the first data type (for
// experiments and tools).
func (w *World) Schedule() *broadcast.Schedule { return w.types[0].sched }

// Database returns the POI database of the first data type.
func (w *World) Database() []broadcast.POI { return w.types[0].db }

// Stats returns the statistics collected so far.
func (w *World) Stats() Stats {
	s := w.stats
	s.PeerRequests = w.net.Stats.Requests
	s.PeerReplies = w.net.Stats.Replies
	s.PeerRetries = w.net.Stats.Retries
	c := w.inj.Counters
	s.RequestsUnheard = c.RequestsUnheard
	s.RepliesDropped = c.RepliesDropped
	s.RepliesRejected = c.RepliesTruncated + c.RepliesCorrupted
	s.StaleVRs = c.StaleVRs
	s.ChurnDepartures = c.ChurnDepartures
	s.ChurnReturns = c.ChurnReturns
	s.BurstFrameLosses = c.BurstLosses
	s.BurstTransitions = c.BurstTransitions
	s.WastedRetries = w.net.Stats.WastedRetries
	s.BusyReplies = w.net.Stats.Busy
	s.QueueDrops = w.net.Stats.QueueDrops
	b := w.breakers.Stats()
	s.BreakerTrips = b.Trips
	s.BreakerShortCircuits = b.ShortCircuits
	s.BreakerRecoveries = b.Recoveries
	s.ByzantineLies = c.ByzantineLies
	tc := w.tr.Counters()
	s.AuditsRun = tc.AuditsRun
	s.AuditFailures = tc.AuditFailures
	s.ConflictsDetected = tc.ConflictsDetected
	s.PeersQuarantined = tc.PeersQuarantined
	s.AuditSlots = tc.AuditSlots
	s.QuarantinedArea = tc.QuarantinedArea
	s.StaleVerdicts = tc.StaleVerdicts
	return s
}

// Trust exposes the trust engine (nil when the AuditRate knob is off) —
// the soak harness asserts its reputation invariants.
func (w *World) Trust() *trust.Engine { return w.tr }

// Breakers exposes the per-peer circuit-breaker set (nil when disabled) —
// the chaos soak harness asserts its state-machine invariants.
func (w *World) Breakers() *p2p.BreakerSet { return w.breakers }

// FaultCounters exposes the injector's raw tallies (testing and tools).
func (w *World) FaultCounters() faults.Counters { return w.inj.Counters }

// SelfCheckErr returns the first ground-truth mismatch observed, if any.
func (w *World) SelfCheckErr() error { return w.selfCheckErr }

// Now returns the simulated time in seconds.
func (w *World) Now() float64 { return w.nowSec }

// slotNow maps simulated time to the broadcast slot clock.
func (w *World) slotNow() int64 {
	return int64(w.nowSec / w.Params.SlotSec)
}

// Run executes the whole configured duration and returns the steady-state
// statistics.
func (w *World) Run() Stats {
	return w.RunTick(nil)
}

// RunTick is Run with a per-step hook: tick (when non-nil) is called after
// every simulation step, on the simulation goroutine. The CLI uses it to
// publish metrics snapshots for the -metrics-listen endpoint; the hook
// observes state only, so a nil tick runs bit-identically.
func (w *World) RunTick(tick func()) Stats {
	dt := w.Params.TimeStepSec
	for w.nowSec < w.durationSec {
		w.Step(dt)
		if tick != nil {
			tick()
		}
	}
	return w.Stats()
}

// Step advances the world by dt seconds: every host moves, then a
// Poisson-distributed number of randomly chosen hosts launch queries.
func (w *World) Step(dt float64) {
	for i := range w.hosts {
		w.model.Step(&w.hosts[i].mob, dt, w.rng)
		w.net.Update(i, w.hosts[i].mob.Pos)
	}
	w.nowSec += dt
	if w.mx != nil {
		w.mx.nowSec.Set(w.nowSec)
	}
	// The overload plane resets its per-tick state (peer queues,
	// admission refill, retry budget, donor table, governor decision)
	// before any query of the tick — including continuous maintenance,
	// which shares the peers' bounded service capacity.
	w.tickReset(dt)
	w.advanceConsistency()
	// Continuous subscriptions register and maintain strictly before the
	// one-shot Poisson loop, on the simulation goroutine: the batched tick
	// engine only parallelizes the loop below, so the maintenance phase is
	// byte-identical across every TickWorkers setting by construction.
	w.advanceContinuous(dt)

	mean := w.Params.QueryRate / 60 * dt
	n := mobility.Poisson(w.rng, mean)
	// Crowd queries launch after the legacy loop each tick, drawn from
	// the dedicated crowd stream (overload.go); crowd-off runs draw
	// nothing here.
	nCrowd := w.crowdDraw(dt)
	if w.Params.TickWorkers > 1 && n+nCrowd > 0 {
		// Batched engine: serial draw, parallel execute, serial commit —
		// byte-identical output (engine.go).
		w.stepBatch(n, nCrowd)
	} else {
		for q := 0; q < n; q++ {
			idx := w.rng.Intn(len(w.hosts))
			ti := w.rng.Intn(len(w.types))
			if w.Params.Kind == WindowQuery {
				w.runWindowQuery(idx, ti)
			} else {
				w.runKNNQuery(idx, ti)
			}
		}
		for q := 0; q < nCrowd; q++ {
			idx, ti := w.crowdPick()
			if w.counted() {
				w.stats.CrowdQueries++
			}
			if w.Params.Kind == WindowQuery {
				w.runWindowQuery(idx, ti)
			} else {
				w.runKNNQuery(idx, ti)
			}
		}
	}
	if w.ovl != nil && w.mx != nil {
		w.observeOverloadTick()
	}
}

// record emits a trace event when tracing is enabled.
func (w *World) record(e trace.Event) {
	if w.Trace == nil {
		return
	}
	if err := w.Trace.Record(e); err != nil && w.selfCheckErr == nil {
		w.selfCheckErr = err
	}
}

// counted reports whether the warm-up has passed.
func (w *World) counted() bool { return w.nowSec >= w.warmupSec }

// collectPeers gathers the verified regions of all single-hop peers of
// host idx that intersect the relevance rectangle, as PeerData for the
// core algorithms. Dropping irrelevant regions only shrinks the MVR,
// which keeps verification sound (and the simulation fast).
//
// The fault layer sits between the two hosts: each neighbor hears the
// broadcast request independently (re-broadcast within the retry budget
// when nobody heard), each reply can be lost, truncated, or bit-corrupted
// in flight (damaged frames run through the real wire codec and are
// rejected by its CRC trailer), and each shared region can be stale
// (discarded by the consistency layer before it enters verification).
// Every fault strictly removes information, so degradation stays sound:
// the MVR shrinks and the query falls back to the channel instead of
// trusting damaged or outdated data.
func (w *World) collectPeers(idx, ti int, relevance geom.Rect) ([]core.PeerData, int) {
	q := w.hosts[idx].mob.Pos
	hops := w.Params.SharingHops
	if hops < 1 {
		hops = 1
	}
	ids := w.net.AppendNeighborsMultiHop(w.qs.ids[:0], q, w.Params.TxRangeMiles(), hops, idx)
	w.qs.ids = ids

	// Request phase: who heard the broadcast? Without faults everyone
	// does, in one attempt, exactly as the ideal model.
	heard := ids
	attempts := 1
	if w.inj.Enabled() && len(ids) > 0 {
		maxAttempts := 1 + w.inj.Profile().MaxRetries
		for {
			h := w.qs.heard[:0]
			for _, id := range ids {
				if w.inj.RequestHeard() {
					h = append(h, id)
				}
			}
			w.qs.heard = h
			heard = h
			if len(heard) > 0 || attempts >= maxAttempts {
				break
			}
			attempts++
			w.net.Stats.Retries++
		}
	}
	w.net.RecordExchange(len(heard))
	w.net.Stats.Requests += int64(attempts - 1) // re-broadcasts are requests too

	count := w.counted() // byte accounting joins the other post-warm-up stats
	if count {
		w.stats.PeerBytes += int64(attempts) * int64(wire.RequestSize)
	}

	peers := w.qs.peers[:0]
	w.qs.owners = w.qs.owners[:0]
	stamp := int64(w.nowSec)
	if w.Params.UseOwnCache {
		// The host's own cache is a zero-cost "peer": no wire traffic and
		// no transport faults. With the consistency layer armed, regions
		// that survived reconciliation beyond the repair horizon are still
		// offered, but demoted to the probabilistic path (never exact).
		peers, _ = w.appendOwnCache(peers, idx, ti, relevance)
	}
	for _, id := range heard {
		if w.ovl != nil && w.ovl.queue != nil {
			// Peer-side backpressure: the peer's bounded service queue
			// admits, refuses with an explicit BUSY frame, or sheds the
			// request before any serving work happens (p2p.ServiceQueue).
			switch w.ovl.queue.Admit(id) {
			case p2p.ServeBusy:
				w.net.Stats.Busy++
				if count {
					w.stats.PeerBytes += int64(wire.BusySize)
				}
				continue
			case p2p.ServeDrop:
				w.net.Stats.QueueDrops++
				continue
			}
		}
		peers, _ = w.receiveReply(peers, id, ti, relevance, stamp, count)
	}
	w.qs.peers = peers
	return peers, len(ids)
}

// gatherPeers dispatches between the seed's blind collection loop and the
// resilient lifecycle. The third return value is the number of broadcast
// slots the query spent waiting in retry backoff — always zero on the
// legacy path, so zero-knob runs stay bit-identical to the seed.
func (w *World) gatherPeers(idx, ti int, relevance geom.Rect) ([]core.PeerData, int, int64) {
	if w.resilient {
		return w.collectPeersResilient(idx, ti, relevance)
	}
	peers, nPeers := w.collectPeers(idx, ti, relevance)
	return peers, nPeers, 0
}

// trustScreen runs one query's trust pass (DESIGN.md §11) over the
// collected contributions: cross-validation of overlapping VRs, on-air
// spot audits priced against the remaining deadline budget, and taint
// verdicts. Returns the screened PeerData, the total slots the query has
// now spent (collection backoff plus audit cost), and the per-screen
// report. A nil engine (AuditRate zero) passes the peers through
// untouched — the seed behavior, with zero draws and zero branches past
// the first. bcastUp=false (the host sits in a blackout window) zeroes
// the audit budget: on-air spot audits are physically impossible on a
// dark downlink, and a missed audit must never read as a failed one —
// cross-validation between the contributions themselves still runs.
func (w *World) trustScreen(ti int, peers []core.PeerData, spent int64, bcastUp bool) ([]core.PeerData, int64, trust.Report) {
	if w.tr == nil {
		return peers, spent, trust.Report{}
	}
	contribs := w.qs.contribs[:0]
	for i, pd := range peers {
		// A demoted (epoch-stale) region enters the screen flagged Stale:
		// disagreements it causes are reconciliation work, not evidence of
		// lying, and must not strike the contributing peer.
		contribs = append(contribs, trust.Contribution{
			Peer: w.qs.owners[i], VR: pd.VR, POIs: pd.POIs, Stale: pd.Tainted})
	}
	w.qs.contribs = contribs
	// Audits spend broadcast slots; they must fit in whatever the
	// deadline budget has left after collection backoff.
	budget := int64(-1)
	if w.Params.DeadlineSlots > 0 {
		budget = int64(w.Params.DeadlineSlots) - spent
		if budget < 0 {
			budget = 0
		}
	}
	if !bcastUp {
		budget = 0 // dark downlink: no channel to audit against
	}
	oracle := func(r geom.Rect) []broadcast.POI { return w.poisInRect(ti, r) }
	screened, rep := w.tr.Screen(contribs, oracle, budget)
	out := w.qs.screened[:0]
	for _, r := range screened {
		out = append(out, core.PeerData{VR: r.VR, POIs: r.POIs, Tainted: r.Tainted})
	}
	w.qs.screened = out
	return out, spent + rep.AuditSlots, rep
}

// collectPeersResilient is the resilient query lifecycle (active whenever
// any of DeadlineSlots / BreakerThreshold / ChurnRate is nonzero):
//
//  1. Peers with open circuit breakers are short-circuited before any
//     traffic is spent on them.
//  2. The request is re-broadcast under capped exponential backoff with
//     seeded jitter, and each round addresses only the peers that have
//     not yet replied (a delivered reply, a CRC-rejected frame the
//     querier can re-request, and a null "nothing relevant" ack are the
//     three observable responses; silence keeps a peer pending).
//  3. Backoff waits accumulate against the per-query slot deadline; when
//     the next wait would exceed it, the P2P phase abandons its
//     remaining targets (DeadlineAborts) and the spent slots are priced
//     into the query's channel latency.
//  4. Between the request and the reply deliveries of every round, peers
//     may churn: power off / drift out of range (a reply already in
//     flight still arrives; later retries to the departed peer are
//     wasted) or power back on and rejoin.
//  5. Reply outcomes feed the per-peer breakers: CRC rejections, stale
//     discards, and end-of-collection timeouts are failures; sound
//     deliveries are successes.
//
// Every random draw (loss, fates, churn, jitter) comes from the seeded
// injector stream, so identical seeds yield identical collections.
func (w *World) collectPeersResilient(idx, ti int, relevance geom.Rect) ([]core.PeerData, int, int64) {
	q := w.hosts[idx].mob.Pos
	hops := w.Params.SharingHops
	if hops < 1 {
		hops = 1
	}
	ids := w.net.AppendNeighborsMultiHop(w.qs.ids[:0], q, w.Params.TxRangeMiles(), hops, idx)
	w.qs.ids = ids
	nPeers := len(ids)

	// One query's P2P phase is one breaker cycle.
	w.breakers.Tick()

	count := w.counted()
	stamp := int64(w.nowSec)
	peers := w.qs.peers[:0]
	w.qs.owners = w.qs.owners[:0]
	if w.Params.UseOwnCache {
		// The host's own cache is a zero-cost "peer": no wire traffic, no
		// transport faults, no breaker. Beyond-horizon regions demote as
		// in the legacy collection path above.
		peers, _ = w.appendOwnCache(peers, idx, ti, relevance)
	}

	// Breaker gate: quarantined peers cost nothing this query.
	targets := w.qs.targets[:0]
	for _, id := range ids {
		if w.breakers.Allow(id) {
			targets = append(targets, collectTarget{id: id})
		}
	}
	w.qs.targets = targets

	maxAttempts := 1 + w.inj.Profile().MaxRetries
	deadline := int64(w.Params.DeadlineSlots)
	var spent int64
	remaining := len(targets)

	for attempt := 1; remaining > 0 && attempt <= maxAttempts; attempt++ {
		if attempt > 1 {
			// The global per-tick retry budget gates every retry round
			// before its backoff is even priced: exhausted means stop
			// retrying and proceed with the replies collected so far —
			// under a flash crowd, retry amplification is the collapse
			// mechanism, and the budget caps it fleet-wide.
			if w.ovl != nil && !w.ovl.takeRetry() {
				if count {
					w.stats.RetryBudgetExhausted++
				}
				break
			}
			// Adaptive backoff before each retry round: capped
			// exponential base plus seeded jitter, charged against the
			// per-query slot deadline.
			base := faults.BackoffSlots(attempt)
			delay := base + w.inj.Jitter(base)
			if deadline > 0 && spent+delay > deadline {
				w.stats.DeadlineAborts++
				break
			}
			spent += delay
			// The backoff wait advances the slot clock; the fading chain
			// follows it (a no-op with the burst knobs off), so a burst
			// can begin or end inside one collection.
			w.inj.Sync(w.slotNow() + spent)
			w.net.Stats.Retries++
		}
		// One broadcast frame addresses every still-pending peer.
		w.net.Stats.Requests++
		if count {
			w.stats.PeerBytes += int64(wire.RequestSize)
		}

		heard := w.qs.heard[:0] // indices into targets
		for i := range targets {
			t := &targets[i]
			if t.resolved {
				continue
			}
			if t.departed {
				if attempt > 1 {
					// The retry addressed a peer that is no longer
					// there — spent channel time, no possible answer.
					w.net.Stats.WastedRetries++
				}
				continue
			}
			if w.inj.RequestHeard() {
				heard = append(heard, i)
			}
		}
		w.qs.heard = heard

		// Churn window between the request and the reply deliveries:
		// present peers may power off or drift away, departed peers may
		// come back.
		for i := range targets {
			t := &targets[i]
			if t.resolved {
				continue
			}
			if !t.departed {
				t.departed = w.inj.ChurnDeparts()
			} else if w.inj.ChurnReturns() {
				t.departed = false
			}
		}

		// Reply deliveries. A peer that heard the request and departed
		// during the churn window still delivers — its reply was already
		// in flight on the single-hop link.
		for _, i := range heard {
			t := &targets[i]
			if w.ovl != nil && w.ovl.queue != nil {
				// Peer-side backpressure before any serving work. BUSY is
				// an explicit, observable refusal: the peer is overloaded,
				// not broken, so the target resolves with no breaker
				// signal and no further retries this query (the frame's
				// advisory retry-after points at a later tick). A silent
				// queue drop keeps the target pending — later rounds may
				// retry into the same saturated queue — but marks it
				// strike-exempt for the end-of-collection timeout.
				switch w.ovl.queue.Admit(t.id) {
				case p2p.ServeBusy:
					t.resolved = true
					remaining--
					w.net.Stats.Busy++
					if count {
						w.stats.PeerBytes += int64(wire.BusySize)
					}
					continue
				case p2p.ServeDrop:
					t.dropped = true
					w.net.Stats.QueueDrops++
					continue
				}
			}
			var out replyOutcome
			peers, out = w.receiveReply(peers, t.id, ti, relevance, stamp, count)
			switch out.kind {
			case replyDelivered:
				t.resolved = true
				remaining--
				w.net.Stats.Replies++
				if out.staleDiscards > 0 {
					// The peer served outdated regions the consistency
					// layer had to throw away.
					w.breakers.RecordFailure(t.id)
				} else {
					w.breakers.RecordSuccess(t.id)
				}
			case replySilent, replyUnencodable:
				// Null ack: nothing relevant — no reason to retry, no
				// reputation signal either way.
				t.resolved = true
				remaining--
			case replyRejected:
				// The querier received garbage and knows it: the peer
				// stays pending (a retry may fetch a clean copy) and its
				// breaker records the CRC failure.
				w.breakers.RecordFailure(t.id)
			case replyDropped:
				// Pure silence — indistinguishable from an unheard
				// request; the peer stays pending.
			}
		}
	}

	// Reply timeouts: every targeted peer that never produced an
	// observable response within the budget/deadline strikes its breaker
	// once (the querier cannot distinguish departure, deafness, and
	// drop — all look like a peer that did not answer). Two exceptions
	// keep reputations honest under impairments the querier CAN observe:
	// a fading burst is a channel property, not peer misbehavior, so an
	// impaired chain suppresses every timeout strike of the collection
	// (a global fade must never trip honest-peer breakers); and a
	// half-open probe whose target departed mid-probe is inconclusive
	// rather than failed (RecordDeparture). Content-level strikes — CRC
	// rejections and stale discards above — stand either way: a fade
	// only removes frames, it cannot damage the ones that arrive.
	impaired := w.inj.ChannelImpaired()
	for i := range targets {
		t := &targets[i]
		if t.resolved {
			continue
		}
		switch {
		case impaired:
			if w.breakers != nil {
				w.stats.FadeSuppressedStrikes++
			}
		case t.dropped:
			// The peer's service queue shed this query's request. A drop
			// only happens beyond the busy band — after the peer has
			// already refused 3×cap requests with explicit BUSY frames —
			// so the querier's neighborhood is observably overloaded,
			// not misbehaving. The timeout must not strike, or a flash
			// crowd would trip every breaker around the hotspot and
			// amputate the sharing layer exactly when it is most needed.
		case t.departed:
			w.breakers.RecordDeparture(t.id)
		default:
			w.breakers.RecordFailure(t.id)
		}
	}
	w.stats.BackoffSlots += spent
	w.qs.peers = peers
	return peers, nPeers, spent
}

// replyKind classifies what the querying host learned from one peer's
// reply attempt — the signal the resilient lifecycle feeds its breakers
// and retry scheduler. The legacy (blind-loop) path ignores it.
type replyKind int

const (
	// replySilent: the peer had nothing relevant (modeled as a free null
	// ack, so the resilient path does not retry it).
	replySilent replyKind = iota
	// replyDelivered: reply content arrived and passed the wire checks.
	replyDelivered
	// replyDropped: the reply was lost in flight — pure silence to the
	// querier, indistinguishable from an unheard request.
	replyDropped
	// replyRejected: a damaged frame arrived and the CRC/structure
	// checks refused it (the querier knows this peer sent garbage).
	replyRejected
	// replyUnencodable: the peer's region set exceeded wire limits and
	// could not be sent at all (treated like silence).
	replyUnencodable
)

// replyOutcome is one reply attempt's classification plus how many of its
// delivered regions the consistency layer discarded as stale.
type replyOutcome struct {
	kind          replyKind
	staleDiscards int
}

// receiveReply models one peer answering a cache request: the peer serves
// every cached region intersecting the relevance rectangle, the channel
// applies a transport fate to the reply, and the client's consistency
// layer discards regions the POI-update process invalidated. Surviving
// regions are appended to peers. With a zero fault profile this is
// byte-for-byte the ideal exchange.
func (w *World) receiveReply(peers []core.PeerData, id, ti int, relevance geom.Rect, stamp int64, count bool) ([]core.PeerData, replyOutcome) {
	c := w.hosts[id].caches[ti]
	// Serving is a cache touchpoint: the peer lazily expires its own
	// timed-out regions before offering anything (no-op unless VRTTLSec).
	w.expireTTL(c)
	atk := faults.AttackNone
	if w.byzAttack != nil {
		atk = w.byzAttack[id]
	}
	// shared stages the served regions in World scratch; its contents are
	// consumed (copied into PeerData values or wire frames) before this
	// function returns, so reuse across replies is safe.
	shared := w.qs.shared[:0]
	for ri, r := range c.Regions() {
		if !r.Rect.Intersects(relevance) {
			continue
		}
		// The peer serves the region regardless of freshness — it cannot
		// know the POI-update process invalidated it.
		c.Touch(ri, stamp)
		if atk != faults.AttackNone {
			// A byzantine host mangles the claim before it leaves its
			// radio: the lie rides every downstream path (delivery, loss,
			// wire damage) exactly like an honest claim would. AttackClaim
			// returns fresh copies, so the host's own cache stays intact.
			r.Rect, r.POIs = w.inj.AttackClaim(r.Rect, r.POIs, atk)
		}
		shared = append(shared, sharedRegion{region: r, stale: w.inj.StaleVR()})
	}
	w.qs.shared = shared
	if len(shared) == 0 {
		return peers, replyOutcome{kind: replySilent} // nothing relevant: the peer stays silent
	}

	wireBytes := wire.ReplyOverhead
	for _, s := range shared {
		wireBytes += wire.RegionWireSize(len(s.region.POIs))
	}

	trustStale := w.inj.Profile().TrustStale
	var staleDiscards int
	deliver := func() []core.PeerData {
		if w.cons != nil {
			// Versioned admission: every shared region passes the epoch
			// gate — repair, demote, or accept — instead of the binary
			// keep/discard below. Injector staleness rides the same path
			// (assigned a beyond-horizon epoch), so staleDiscards stays
			// zero: under an armed layer staleness is amnestied, and the
			// breakers see an ordinary successful delivery.
			for _, s := range shared {
				peers = w.admitShared(peers, id, ti, s.region, s.stale, trustStale)
			}
			return peers
		}
		for _, s := range shared {
			if s.stale && !trustStale {
				staleDiscards++
				continue // consistency layer: stale region discarded
			}
			pd := core.PeerData{VR: s.region.Rect, POIs: s.region.POIs}
			if s.stale && trustStale {
				pd = w.poisonRegion(pd)
			}
			peers = append(peers, pd)
			w.qs.owners = append(w.qs.owners, id)
		}
		return peers
	}

	switch fate := w.inj.ReplyFate(); fate {
	case faults.FateDeliver:
		if count {
			w.stats.PeerBytes += int64(wireBytes)
		}
		peers = deliver()
		return peers, replyOutcome{kind: replyDelivered, staleDiscards: staleDiscards}
	case faults.FateDrop:
		// Lost in flight: the frame occupied the channel, nothing arrived.
		w.net.Stats.RepliesLost++
		if count {
			w.stats.PeerBytes += int64(wireBytes)
		}
		return peers, replyOutcome{kind: replyDropped}
	default: // FateTruncate, FateCorrupt
		// Damaged in flight: run the real codec end to end. The CRC
		// trailer rejects the frame and the query degrades; in the
		// astronomically unlikely event the damage passes every check,
		// the decoded content is used like any delivered reply.
		regs := w.qs.regs[:0]
		for _, s := range shared {
			regs = append(regs, wire.Region{Rect: s.region.Rect, POIs: s.region.POIs})
		}
		w.qs.regs = regs
		w.queryID++
		enc, err := wire.EncodeReply(wire.Reply{QueryID: w.queryID, Regions: regs})
		if err != nil {
			// A cache region exceeding wire limits cannot be encoded;
			// treat the reply as undeliverable.
			return peers, replyOutcome{kind: replyUnencodable}
		}
		mangled := w.inj.Mangle(enc, fate)
		if count {
			w.stats.PeerBytes += int64(len(mangled))
		}
		dec, err := wire.DecodeReply(mangled)
		if err != nil {
			w.net.Stats.RepliesRejected++
			return peers, replyOutcome{kind: replyRejected} // sound degradation, already counted
		}
		for i, reg := range dec.Regions {
			if w.cons != nil {
				if i < len(shared) {
					// The staged region carries the epoch/staleness fate;
					// the wire frame carries the (possibly damage-passed)
					// geometry. Recombine and run the versioned gate.
					r := shared[i].region
					r.Rect, r.POIs = reg.Rect, reg.POIs
					peers = w.admitShared(peers, id, ti, r, shared[i].stale, trustStale)
				} else {
					peers = append(peers, core.PeerData{VR: reg.Rect, POIs: reg.POIs})
					w.qs.owners = append(w.qs.owners, id)
				}
				continue
			}
			if i < len(shared) && shared[i].stale && !trustStale {
				staleDiscards++
				continue
			}
			peers = append(peers, core.PeerData{VR: reg.Rect, POIs: reg.POIs})
			w.qs.owners = append(w.qs.owners, id)
		}
		return peers, replyOutcome{kind: replyDelivered, staleDiscards: staleDiscards}
	}
}

// poisonRegion returns a silently diverged copy of a trusted stale
// region: the verified-region promise stands while one POI is missing —
// exactly the byzantine hazard of the core package's trust-model tests.
// Only reachable under the TrustStale test knob.
func (w *World) poisonRegion(pd core.PeerData) core.PeerData {
	if len(pd.POIs) == 0 {
		return pd
	}
	drop := w.inj.Pick(len(pd.POIs))
	pois := make([]broadcast.POI, 0, len(pd.POIs)-1)
	pois = append(pois, pd.POIs[:drop]...)
	pois = append(pois, pd.POIs[drop+1:]...)
	return core.PeerData{VR: pd.VR, POIs: pois}
}

// drawK samples the per-query k around the configured mean.
func (w *World) drawK() int {
	k := mobility.Poisson(w.rng, float64(w.Params.K))
	if k < 1 {
		k = 1
	}
	return k
}

// knnRelevanceRadius bounds which peer regions can matter for a k-NN
// query: several times the expected k-NN distance under the POI density,
// floored by the transmission range.
func (w *World) knnRelevanceRadius(ti, k int) float64 {
	r := 4 * math.Sqrt(float64(k)/(math.Pi*math.Max(w.types[ti].lambda, 1e-9)))
	if tx := 2 * w.Params.TxRangeMiles(); tx > r {
		r = tx
	}
	return math.Min(r, w.Params.AreaMiles)
}

func (w *World) runKNNQuery(idx, ti int) {
	h := &w.hosts[idx]
	ts := &w.types[ti]
	q := h.mob.Pos
	k := w.drawK()
	relevance := geom.RectAround(q, w.knnRelevanceRadius(ti, k))
	qc := w.assessChannel(idx)
	irSlots := w.syncIR(idx, ti)
	// The overload-aware collection pipeline (overload.go): coalesce /
	// admission / governor gates in front of the mode-dispatched gather,
	// then the trust screen. Identical to the inline pre-overload
	// pipeline when the plane is off.
	cr := w.collectQuery(idx, ti, relevance, qc, irSlots)
	peers, nPeers, collected := cr.peers, cr.nPeers, cr.collected
	minBorn, spent, trep := cr.minBorn, cr.spent, cr.trep

	// The blackout rungs have no channel to fall back to; the core
	// algorithms answer from peer knowledge alone (nil schedule).
	sched := ts.sched
	if qc.mode == modeP2POnly || qc.mode == modeOwnCache {
		sched = nil
	}

	cfg := core.SBNNConfig{
		K:                 k,
		Lambda:            ts.lambda,
		AcceptApproximate: w.Params.AcceptApproximate,
		MinCorrectness:    w.Params.MinCorrectness,
	}
	// Slots spent in retry backoff delay the client's arrival on the
	// broadcast channel (spent is zero on the legacy path), as does a
	// naive-mode blackout stall (qc.chWait). The World scratch keeps the
	// per-query hot path allocation-free; the result aliases the scratch
	// and is fully consumed before the next query.
	res := core.SBNNScratch(&w.qs.core, q, peers, cfg, sched, w.slotNow()+spent+qc.chWait)
	// A channel-less rung that could not verify is a degraded answer
	// (best peer-side knowledge, Lemma 3.2 confidence at most) or — with
	// nothing usable at all — an unanswered query.
	degraded := sched == nil && res.Outcome == core.OutcomeBroadcast

	if w.counted() {
		w.stats.Queries++
		w.stats.peersSum += int64(nPeers)
		switch {
		case degraded && len(res.POIs) > 0:
			w.stats.Degraded++
		case degraded:
			w.stats.Unanswered++
		case res.Outcome == core.OutcomeVerified:
			w.stats.Verified++
		case res.Outcome == core.OutcomeApproximate:
			w.stats.Approximate++
		default:
			w.stats.Broadcast++
			// The backoff slots the P2P phase burned are part of this
			// query's end-to-end access latency, as is the dead air a
			// naive client spent waiting out a blackout window.
			w.stats.LatencySlots += res.Access.Latency + spent + qc.chWait
			w.stats.TuningSlots += res.Access.Tuning
			w.stats.PacketsRead += int64(res.Access.PacketsRead)
			w.stats.PacketsSkipped += int64(res.Access.PacketsSkipped)
			w.stats.Retransmissions += int64(res.Access.Retransmissions)
			w.stats.IndexRetries += int64(res.Access.IndexRetries)
		}
		if w.chanArmed || w.govSteering() {
			w.observeBudget(ts, res.Access.Latency+spent+qc.chWait, !degraded || len(res.POIs) > 0, cr.shed != shedNone)
		}
		w.sampleKNNBaseline(ti, q, k)
		if w.SelfCheck && !degraded && res.Outcome != core.OutcomeApproximate {
			w.checkKNN(ti, q, k, res.POIs)
		}
		ev := trace.Event{
			TimeSec: w.nowSec, Host: idx, Kind: "knn",
			Outcome: outcomeLabel(res.Outcome, degraded, len(res.POIs)), K: k, Peers: nPeers,
			LatencySlots: res.Access.Latency, TuningSlots: res.Access.Tuning,
			PacketsRead: res.Access.PacketsRead, PacketsSkipped: res.Access.PacketsSkipped,
			Audits: trep.Audits, AuditFailures: trep.AuditFailures,
			Conflicts: trep.Conflicts, AuditSlots: trep.AuditSlots,
			TaintedPeers: trep.Tainted,
			IRSlots:      irSlots, StaleConflicts: trep.StaleConflicts,
			Mode: qc.mode.String(), WaitSlots: qc.chWait,
		}
		ev.StaleBoundSec = w.staleBound(qc.mode, minBorn)
		ev.Shed, ev.Coalesced = cr.shed.String(), cr.coalesced
		if w.mx != nil {
			w.net.ObserveFanout(nPeers)
			w.mx.observeQuery(res.Outcome, collected, trep.AuditSlots+irSlots, res.Access,
				res.Merged, res.Examined, res.KnownRegion, w.stats.PeerBytes)
			w.mx.observeTrust(trep)
			w.mx.observeChannel(qc, degraded, len(res.POIs) == 0)
			w.mx.spanFields(&ev.SpanP2PSlots, &ev.SpanMergeWork,
				&ev.SpanVerifyWork, &ev.SpanTuneSlots, &ev.SpanDownloadSlots)
		}
		w.record(ev)
	}

	// Store the gained verified knowledge (Section 4.1 cache policies),
	// stamped with the epoch it was verified against.
	if !res.KnownRegion.Empty() {
		reg := cache.Region{Rect: res.KnownRegion, POIs: res.Known}
		if w.cons != nil {
			reg.Epoch = w.cons.types[ti].epoch
		}
		h.caches[ti].Insert(reg, q, h.mob.Heading(), int64(w.nowSec))
	}
}

func (w *World) runWindowQuery(idx, ti int) {
	h := &w.hosts[idx]
	ts := &w.types[ti]
	q := h.mob.Pos
	win, ok := w.drawWindow(q)
	if !ok {
		return
	}
	qc := w.assessChannel(idx)
	irSlots := w.syncIR(idx, ti)
	cr := w.collectQuery(idx, ti, win, qc, irSlots)
	peers, nPeers, collected := cr.peers, cr.nPeers, cr.collected
	minBorn, spent, trep := cr.minBorn, cr.spent, cr.trep

	sched := ts.sched
	if qc.mode == modeP2POnly || qc.mode == modeOwnCache {
		sched = nil
	}
	// Cap cached retrieval regions at what the cache can hold: CacheSize
	// POIs cover about CacheSize/lambda square miles.
	cfg := core.SBWQConfig{
		MaxKnownArea: 1.5 * float64(w.Params.CacheSize) / math.Max(ts.lambda, 1e-9),
	}
	res := core.SBWQScratch(&w.qs.core, q, win, peers, cfg, sched, w.slotNow()+spent+qc.chWait)
	degraded := sched == nil && res.Outcome == core.OutcomeBroadcast

	if w.counted() {
		w.stats.Queries++
		w.stats.peersSum += int64(nPeers)
		switch {
		case degraded && len(res.POIs) > 0:
			w.stats.Degraded++
		case degraded:
			w.stats.Unanswered++
		case res.Outcome == core.OutcomeVerified:
			w.stats.Verified++
		default:
			w.stats.Broadcast++
			w.stats.LatencySlots += res.Access.Latency + spent + qc.chWait
			w.stats.TuningSlots += res.Access.Tuning
			w.stats.PacketsRead += int64(res.Access.PacketsRead)
			w.stats.PacketsSkipped += int64(res.Access.PacketsSkipped)
			w.stats.Retransmissions += int64(res.Access.Retransmissions)
			w.stats.IndexRetries += int64(res.Access.IndexRetries)
		}
		if w.chanArmed || w.govSteering() {
			w.observeBudget(ts, res.Access.Latency+spent+qc.chWait, !degraded || len(res.POIs) > 0, cr.shed != shedNone)
		}
		w.sampleWindowBaseline(ti, win)
		if w.SelfCheck && !degraded {
			w.checkWindow(ti, win, res.POIs)
		}
		ev := trace.Event{
			TimeSec: w.nowSec, Host: idx, Kind: "window",
			Outcome: outcomeLabel(res.Outcome, degraded, len(res.POIs)), Peers: nPeers,
			LatencySlots: res.Access.Latency, TuningSlots: res.Access.Tuning,
			PacketsRead: res.Access.PacketsRead, PacketsSkipped: res.Access.PacketsSkipped,
			Audits: trep.Audits, AuditFailures: trep.AuditFailures,
			Conflicts: trep.Conflicts, AuditSlots: trep.AuditSlots,
			TaintedPeers: trep.Tainted,
			IRSlots:      irSlots, StaleConflicts: trep.StaleConflicts,
			Mode: qc.mode.String(), WaitSlots: qc.chWait,
		}
		ev.StaleBoundSec = w.staleBound(qc.mode, minBorn)
		ev.Shed, ev.Coalesced = cr.shed.String(), cr.coalesced
		if w.mx != nil {
			w.net.ObserveFanout(nPeers)
			w.mx.observeQuery(res.Outcome, collected, trep.AuditSlots+irSlots, res.Access,
				res.Merged, res.Examined, res.KnownRegion, w.stats.PeerBytes)
			w.mx.observeTrust(trep)
			w.mx.observeChannel(qc, degraded, len(res.POIs) == 0)
			w.mx.spanFields(&ev.SpanP2PSlots, &ev.SpanMergeWork,
				&ev.SpanVerifyWork, &ev.SpanTuneSlots, &ev.SpanDownloadSlots)
		}
		w.record(ev)
	}

	// Cache the gained verified knowledge: the window itself, or the
	// larger collective MBR of a broadcast retrieval — stamped with the
	// epoch it was verified against.
	if !res.KnownRegion.Empty() {
		reg := cache.Region{Rect: res.KnownRegion, POIs: res.Known}
		if w.cons != nil {
			reg.Epoch = w.cons.types[ti].epoch
		}
		h.caches[ti].Insert(reg, q, h.mob.Heading(), int64(w.nowSec))
	}
}

// drawWindow samples a query window: side around the configured mean,
// center at a normally-distributed distance from the host in a uniform
// direction, clipped to the service area.
func (w *World) drawWindow(q geom.Point) (geom.Rect, bool) {
	side := w.Params.WindowSideMiles() * (0.5 + w.rng.Float64())
	if side <= 0 {
		return geom.Rect{}, false
	}
	dist := math.Abs(w.rng.NormFloat64()*w.Params.WindowDistMiles/3 +
		w.Params.WindowDistMiles)
	angle := w.rng.Float64() * 2 * math.Pi
	center := q.Add(geom.Pt(math.Cos(angle)*dist, math.Sin(angle)*dist))
	center = w.area.Clip(center)
	win, ok := geom.RectAround(center, side/2).Intersect(w.area)
	if !ok {
		return geom.Rect{}, false
	}
	return win, true
}

func (w *World) sampleKNNBaseline(ti int, q geom.Point, k int) {
	if !w.CompareBaseline {
		return
	}
	rate := w.BaselineSampleRate
	if rate <= 0 {
		rate = 0.2
	}
	if w.rng.Float64() > rate {
		return
	}
	_, acc := w.types[ti].sched.KNN(q, k, w.slotNow())
	w.stats.BaselineLatencySlots += acc.Latency
	w.stats.BaselinePackets += int64(acc.PacketsRead)
	w.stats.BaselineSampled++
}

func (w *World) sampleWindowBaseline(ti int, win geom.Rect) {
	if !w.CompareBaseline {
		return
	}
	rate := w.BaselineSampleRate
	if rate <= 0 {
		rate = 0.2
	}
	if w.rng.Float64() > rate {
		return
	}
	_, acc := w.types[ti].sched.Window(win, w.slotNow())
	w.stats.BaselineLatencySlots += acc.Latency
	w.stats.BaselinePackets += int64(acc.PacketsRead)
	w.stats.BaselineSampled++
}

func (w *World) checkKNN(ti int, q geom.Point, k int, got []broadcast.POI) {
	if w.selfCheckErr != nil {
		return
	}
	want := w.types[ti].truth.KNN(q, k)
	if len(got) != len(want) {
		w.selfCheckErr = fmt.Errorf("kNN self-check: got %d results want %d", len(got), len(want))
		return
	}
	for i := range want {
		if math.Abs(got[i].Pos.Dist(q)-want[i].Pos.Dist(q)) > 1e-9 {
			w.selfCheckErr = fmt.Errorf(
				"kNN self-check: rank %d distance %v want %v (q=%v k=%d)",
				i, got[i].Pos.Dist(q), want[i].Pos.Dist(q), q, k)
			return
		}
	}
}

func (w *World) checkWindow(ti int, win geom.Rect, got []broadcast.POI) {
	if w.selfCheckErr != nil {
		return
	}
	want := w.types[ti].truth.Window(win)
	if len(got) != len(want) {
		w.selfCheckErr = fmt.Errorf(
			"window self-check: got %d results want %d (w=%v)", len(got), len(want), win)
		return
	}
	ids := make(map[int64]bool, len(got))
	for _, p := range got {
		ids[p.ID] = true
	}
	for _, p := range want {
		if !ids[p.ID] {
			w.selfCheckErr = fmt.Errorf("window self-check: POI %d missing (w=%v)", p.ID, win)
			return
		}
	}
}
