package geom

import (
	"math"
	"sort"
)

// RectUnion is a (possibly overlapping) collection of axis-aligned
// rectangles treated as their set union. It models the merged verified
// region (MVR) of the paper: the union of the verified-region MBRs
// returned by the peers of a querying mobile host.
//
// The zero value is the empty union. RectUnion is immutable after
// construction except through Add; cached derived data is invalidated on
// Add.
type RectUnion struct {
	rects []Rect

	// Lazily computed caches.
	disjoint []Rect    // disjoint decomposition of the union
	boundary []Segment // boundary pieces of the union
}

// NewRectUnion builds a union from the given rectangles, dropping
// degenerate (zero-area) members.
func NewRectUnion(rects ...Rect) *RectUnion {
	u := &RectUnion{}
	for _, r := range rects {
		u.Add(r)
	}
	return u
}

// Add inserts another rectangle into the union.
func (u *RectUnion) Add(r Rect) {
	if r.Empty() || !r.Valid() {
		return
	}
	u.rects = append(u.rects, r)
	u.disjoint = nil
	u.boundary = nil
}

// Rects returns the member rectangles as provided (possibly overlapping).
// The returned slice must not be modified.
func (u *RectUnion) Rects() []Rect { return u.rects }

// Len returns the number of member rectangles.
func (u *RectUnion) Len() int { return len(u.rects) }

// IsEmpty reports whether the union covers no area.
func (u *RectUnion) IsEmpty() bool { return len(u.rects) == 0 }

// Contains reports whether p lies in the closed union.
func (u *RectUnion) Contains(p Point) bool {
	for _, r := range u.rects {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// Bounds returns the MBR of the whole union; the second result is false
// for an empty union.
func (u *RectUnion) Bounds() (Rect, bool) {
	if len(u.rects) == 0 {
		return Rect{}, false
	}
	out := u.rects[0]
	for _, r := range u.rects[1:] {
		out = out.Union(r)
	}
	return out, true
}

// Area returns the exact area of the union.
func (u *RectUnion) Area() float64 {
	total := 0.0
	for _, r := range u.Disjoint() {
		total += r.Area()
	}
	return total
}

// Disjoint returns a decomposition of the union into pairwise disjoint
// rectangles (they may share edges but not interior points). The
// decomposition works on the compressed grid induced by all member
// coordinates: every member marks its covered cell range with a
// difference array, and a per-row prefix sum merges covered cells into
// horizontal strips. Total cost is O(n log n + n·rows + cells), which
// keeps the merged-verified-region math cheap even with a hundred peer
// regions per query.
func (u *RectUnion) Disjoint() []Rect {
	if u.disjoint != nil || len(u.rects) == 0 {
		return u.disjoint
	}
	xs := make([]float64, 0, 2*len(u.rects))
	ys := make([]float64, 0, 2*len(u.rects))
	for _, r := range u.rects {
		xs = append(xs, r.Min.X, r.Max.X)
		ys = append(ys, r.Min.Y, r.Max.Y)
	}
	xs = dedupSorted(xs)
	ys = dedupSorted(ys)
	nx, ny := len(xs)-1, len(ys)-1
	if nx <= 0 || ny <= 0 {
		return nil
	}

	// Per-row difference array over cell columns; rect coordinates are
	// exact members of xs/ys, so the index lookups are exact.
	diff := make([]int32, ny*(nx+1))
	for _, r := range u.rects {
		x0 := sort.SearchFloat64s(xs, r.Min.X)
		x1 := sort.SearchFloat64s(xs, r.Max.X)
		y0 := sort.SearchFloat64s(ys, r.Min.Y)
		y1 := sort.SearchFloat64s(ys, r.Max.Y)
		for row := y0; row < y1; row++ {
			diff[row*(nx+1)+x0]++
			diff[row*(nx+1)+x1]--
		}
	}

	var out []Rect
	for j := 0; j < ny; j++ {
		row := diff[j*(nx+1) : (j+1)*(nx+1)]
		depth := int32(0)
		stripStart := -1
		for i := 0; i <= nx; i++ {
			depth += row[i]
			covered := i < nx && depth > 0
			if covered && stripStart < 0 {
				stripStart = i
			}
			if !covered && stripStart >= 0 {
				out = append(out, Rect{
					Min: Point{xs[stripStart], ys[j]},
					Max: Point{xs[i], ys[j+1]},
				})
				stripStart = -1
			}
		}
	}
	u.disjoint = out
	return out
}

// Boundary returns the boundary of the union as a set of axis-parallel
// segments. A portion of a member rectangle's edge belongs to the union
// boundary exactly when no other member covers its outward side.
func (u *RectUnion) Boundary() []Segment {
	if u.boundary != nil || len(u.rects) == 0 {
		return u.boundary
	}
	var out []Segment
	for i, r := range u.rects {
		// Bottom edge (outward = -Y): covered where another rect spans
		// the y just below.
		out = appendEdgePieces(out, u.rects, i, r.Min.Y, r.Min.X, r.Max.X, true, outwardBelow)
		// Top edge (outward = +Y).
		out = appendEdgePieces(out, u.rects, i, r.Max.Y, r.Min.X, r.Max.X, true, outwardAbove)
		// Left edge (outward = -X).
		out = appendEdgePieces(out, u.rects, i, r.Min.X, r.Min.Y, r.Max.Y, false, outwardBelow)
		// Right edge (outward = +X).
		out = appendEdgePieces(out, u.rects, i, r.Max.X, r.Min.Y, r.Max.Y, false, outwardAbove)
	}
	u.boundary = out
	return out
}

// BoundaryDist returns the minimum Euclidean distance from p to the
// boundary of the union. For p inside the union this is the clearance
// radius (‖q, e_s‖ in the NNV algorithm); for p outside it is the distance
// to the union. It returns +Inf for an empty union.
func (u *RectUnion) BoundaryDist(p Point) float64 {
	best := math.Inf(1)
	for _, s := range u.Boundary() {
		if d := s.Dist(p); d < best {
			best = d
		}
	}
	return best
}

// Clearance returns the distance from p to the union boundary when p lies
// inside the union, and ok=false (with zero distance) otherwise. This is
// exactly the quantity Lemma 3.1 verifies candidates against: any POI
// closer to p than its clearance is a guaranteed true nearest neighbor.
func (u *RectUnion) Clearance(p Point) (float64, bool) {
	if !u.Contains(p) {
		return 0, false
	}
	return u.BoundaryDist(p), true
}

// CoversRect reports whether rectangle w is entirely inside the union —
// the SBWQ full-coverage test (query window answered locally).
func (u *RectUnion) CoversRect(w Rect) bool {
	if w.Empty() {
		return u.Contains(w.Min)
	}
	return len(SubtractRect(w, u.rects)) == 0
}

// IntersectRectArea returns the exact area of w ∩ union.
func (u *RectUnion) IntersectRectArea(w Rect) float64 {
	total := 0.0
	for _, d := range u.Disjoint() {
		if clipped, ok := d.Intersect(w); ok {
			total += clipped.Area()
		}
	}
	return total
}

// IntersectCircleArea returns the exact area of the intersection between
// the disk (c, radius) and the union. It underlies the unverified-region
// area of Lemma 3.2: u = π r² − IntersectCircleArea(q, r).
func (u *RectUnion) IntersectCircleArea(c Point, radius float64) float64 {
	if radius <= 0 {
		return 0
	}
	total := 0.0
	mbr := RectAround(c, radius)
	for _, d := range u.Disjoint() {
		if !d.Intersects(mbr) {
			continue
		}
		total += CircleRectArea(c, radius, d)
	}
	return total
}

// UnverifiedArea returns the area of the part of the disk (c, radius) not
// covered by the union: the unverified region of a candidate POI at
// distance radius from the query point c (Lemma 3.2).
func (u *RectUnion) UnverifiedArea(c Point, radius float64) float64 {
	if radius <= 0 {
		return 0
	}
	area := math.Pi*radius*radius - u.IntersectCircleArea(c, radius)
	if area < 0 {
		return 0 // guard tiny negative rounding residue
	}
	return area
}

// SubtractRect returns the parts of w not covered by the union of covers,
// as a set of disjoint rectangles. This implements the query-window
// reduction of SBWQ: the returned rectangles are the reduced windows w′
// that still require on-air resolution.
func SubtractRect(w Rect, covers []Rect) []Rect {
	if w.Empty() {
		return nil
	}
	xs := []float64{w.Min.X, w.Max.X}
	ys := []float64{w.Min.Y, w.Max.Y}
	for _, r := range covers {
		if !r.Intersects(w) {
			continue
		}
		if r.Min.X > w.Min.X && r.Min.X < w.Max.X {
			xs = append(xs, r.Min.X)
		}
		if r.Max.X > w.Min.X && r.Max.X < w.Max.X {
			xs = append(xs, r.Max.X)
		}
		if r.Min.Y > w.Min.Y && r.Min.Y < w.Max.Y {
			ys = append(ys, r.Min.Y)
		}
		if r.Max.Y > w.Min.Y && r.Max.Y < w.Max.Y {
			ys = append(ys, r.Max.Y)
		}
	}
	xs = dedupSorted(xs)
	ys = dedupSorted(ys)

	covered := func(p Point) bool {
		for _, r := range covers {
			if r.Contains(p) {
				return true
			}
		}
		return false
	}

	var out []Rect
	for j := 0; j+1 < len(ys); j++ {
		ymid := (ys[j] + ys[j+1]) / 2
		stripStart := -1
		for i := 0; i <= len(xs)-1; i++ {
			uncovered := false
			if i+1 < len(xs) {
				xmid := (xs[i] + xs[i+1]) / 2
				uncovered = !covered(Point{xmid, ymid})
			}
			if uncovered && stripStart < 0 {
				stripStart = i
			}
			if !uncovered && stripStart >= 0 {
				out = append(out, Rect{
					Min: Point{xs[stripStart], ys[j]},
					Max: Point{xs[i], ys[j+1]},
				})
				stripStart = -1
			}
		}
	}
	return out
}

// outwardBelow/outwardAbove select which side of an edge is "outward" for
// coverage testing in appendEdgePieces.
const (
	outwardBelow = iota // outward side has smaller coordinate (bottom/left edges)
	outwardAbove        // outward side has larger coordinate (top/right edges)
)

// appendEdgePieces appends to out the sub-segments of one rectangle edge
// that lie on the union boundary. The edge is at fixed coordinate `level`
// on the perpendicular axis and spans [lo, hi] on the parallel axis.
// horizontal selects edge orientation; side selects the outward direction.
func appendEdgePieces(out []Segment, rects []Rect, self int, level, lo, hi float64, horizontal bool, side int) []Segment {
	if lo >= hi {
		return out
	}
	// Collect the intervals of [lo, hi] whose outward side is covered by
	// another rectangle: such portions are interior to the union.
	var cov []interval
	for j, s := range rects {
		if j == self {
			continue
		}
		var perpMin, perpMax, parMin, parMax float64
		if horizontal {
			perpMin, perpMax = s.Min.Y, s.Max.Y
			parMin, parMax = s.Min.X, s.Max.X
		} else {
			perpMin, perpMax = s.Min.X, s.Max.X
			parMin, parMax = s.Min.Y, s.Max.Y
		}
		var coversOutward bool
		if side == outwardBelow {
			// Points just below `level` are inside s.
			coversOutward = perpMin < level && perpMax >= level
		} else {
			// Points just above `level` are inside s.
			coversOutward = perpMax > level && perpMin <= level
		}
		if !coversOutward {
			continue
		}
		a, b := math.Max(parMin, lo), math.Min(parMax, hi)
		if a < b {
			cov = append(cov, interval{a, b})
		}
	}
	for _, piece := range subtractIntervals(interval{lo, hi}, cov) {
		var seg Segment
		if horizontal {
			seg = Segment{Point{piece.a, level}, Point{piece.b, level}}
		} else {
			seg = Segment{Point{level, piece.a}, Point{level, piece.b}}
		}
		out = append(out, seg)
	}
	return out
}

type interval struct{ a, b float64 }

// subtractIntervals returns the parts of base not covered by any interval
// in cov. The covering intervals are treated as closed; zero-length
// leftovers are dropped.
func subtractIntervals(base interval, cov []interval) []interval {
	if len(cov) == 0 {
		return []interval{base}
	}
	sort.Slice(cov, func(i, j int) bool { return cov[i].a < cov[j].a })
	var out []interval
	cursor := base.a
	for _, c := range cov {
		if c.b <= cursor {
			continue
		}
		if c.a > cursor {
			end := math.Min(c.a, base.b)
			if end > cursor {
				out = append(out, interval{cursor, end})
			}
		}
		if c.b > cursor {
			cursor = c.b
		}
		if cursor >= base.b {
			return out
		}
	}
	if cursor < base.b {
		out = append(out, interval{cursor, base.b})
	}
	return out
}

// dedupSorted sorts vs ascending and removes duplicates in place.
func dedupSorted(vs []float64) []float64 {
	sort.Float64s(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
