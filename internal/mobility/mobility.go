// Package mobility implements the random waypoint mobility model (Broch
// et al., MobiCom 1998) used by the paper's simulator, plus the Poisson
// arrival processes that drive query launching.
package mobility

import (
	"fmt"
	"math"
	"math/rand"

	"lbsq/internal/geom"
)

// Waypoint is a random waypoint model: a host picks a uniform destination
// in the area and a uniform speed in [MinSpeed, MaxSpeed], travels in a
// straight line, pauses up to MaxPause, and repeats.
type Waypoint struct {
	Area     geom.Rect
	MinSpeed float64 // distance units per time unit, > 0
	MaxSpeed float64
	MaxPause float64 // time units
}

// NewWaypoint validates and returns a model.
func NewWaypoint(area geom.Rect, minSpeed, maxSpeed, maxPause float64) (*Waypoint, error) {
	if area.Empty() {
		return nil, fmt.Errorf("mobility: empty area %v", area)
	}
	if minSpeed <= 0 || maxSpeed < minSpeed {
		return nil, fmt.Errorf("mobility: bad speed range [%v, %v]", minSpeed, maxSpeed)
	}
	if maxPause < 0 {
		return nil, fmt.Errorf("mobility: negative pause %v", maxPause)
	}
	return &Waypoint{Area: area, MinSpeed: minSpeed, MaxSpeed: maxSpeed, MaxPause: maxPause}, nil
}

// State is the per-host mobility state.
type State struct {
	Pos       geom.Point
	Dest      geom.Point
	Speed     float64
	PauseLeft float64
}

// Init places a host uniformly in the area with a fresh leg.
func (m *Waypoint) Init(rng *rand.Rand) State {
	s := State{Pos: m.randomPoint(rng)}
	m.newLeg(&s, rng)
	return s
}

func (m *Waypoint) randomPoint(rng *rand.Rand) geom.Point {
	return geom.Pt(
		m.Area.Min.X+rng.Float64()*m.Area.Width(),
		m.Area.Min.Y+rng.Float64()*m.Area.Height(),
	)
}

func (m *Waypoint) newLeg(s *State, rng *rand.Rand) {
	s.Dest = m.randomPoint(rng)
	s.Speed = m.MinSpeed + rng.Float64()*(m.MaxSpeed-m.MinSpeed)
	if m.MaxPause > 0 {
		s.PauseLeft = rng.Float64() * m.MaxPause
	}
}

// Step advances the host by dt time units, consuming pauses and turning at
// waypoints as needed.
func (m *Waypoint) Step(s *State, dt float64, rng *rand.Rand) {
	for dt > 0 {
		if s.PauseLeft > 0 {
			if s.PauseLeft >= dt {
				s.PauseLeft -= dt
				return
			}
			dt -= s.PauseLeft
			s.PauseLeft = 0
		}
		remaining := s.Pos.Dist(s.Dest)
		travel := s.Speed * dt
		if travel < remaining {
			dir := s.Dest.Sub(s.Pos).Scale(1 / remaining)
			s.Pos = s.Pos.Add(dir.Scale(travel))
			return
		}
		// Reached the waypoint: spend the matching time, then pick a new
		// leg (with a fresh pause).
		if s.Speed > 0 {
			dt -= remaining / s.Speed
		} else {
			dt = 0
		}
		s.Pos = s.Dest
		m.newLeg(s, rng)
	}
}

// Heading returns the unit direction of travel, or the zero vector while
// paused or at the destination.
func (s *State) Heading() geom.Point {
	if s.PauseLeft > 0 {
		return geom.Point{}
	}
	d := s.Dest.Sub(s.Pos)
	n := d.Norm()
	if n == 0 {
		return geom.Point{}
	}
	return d.Scale(1 / n)
}

// Exp draws an exponential inter-arrival time with the given rate (events
// per time unit); it panics for non-positive rates.
func Exp(rng *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("mobility: non-positive rate %v", rate))
	}
	return rng.ExpFloat64() / rate
}

// Poisson draws a Poisson-distributed count with the given mean using
// Knuth's method for small means and a normal approximation for large
// ones.
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		v := rng.NormFloat64()*math.Sqrt(mean) + mean + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
