// Package core implements the paper's contribution: sharing-based
// processing of location-based spatial queries. It provides the
// nearest-neighbor verification method NNV (Algorithm 1) over the merged
// verified region of peer caches, the correctness-probability model for
// unverified candidates (Lemma 3.2) with surpassing ratios, the
// sharing-based nearest neighbor query SBNN (Algorithm 2) including the
// six-state search-bound derivation of Section 3.3.3, and the
// sharing-based window query SBWQ (Algorithm 3).
package core

import (
	"fmt"
	"math"
	"slices"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// Entry is one row of the result heap H (Table 2 of the paper): a
// candidate POI, its distance to the query point, whether Lemma 3.1
// verified it, and — for unverified candidates — the probability that it
// truly holds its rank and its surpassing ratio relative to the last
// verified entry.
type Entry struct {
	POI      broadcast.POI
	Dist     float64
	Verified bool
	// Correctness is the probability the candidate is the true NN of its
	// rank (Lemma 3.2); it is 1 for verified entries.
	Correctness float64
	// Surpassing is ‖q,o_u‖ / ‖q,o_lv‖, the worst-case detour factor
	// relative to the last verified entry; zero when no entry is
	// verified.
	Surpassing float64
	// Tainted marks a candidate supplied by an untrusted peer (one the
	// trust layer has not vouched, or whose region conflicted). Tainted
	// entries are permanently demoted to the Lemma 3.2 probabilistic
	// path: they can never be Verified, never set the on-air upper
	// search bound, and never enter exact merged answers — a fabricated
	// POI must not be able to claim verification or truncate a search.
	Tainted bool
}

// Heap is the bounded result container H of the NNV method: at most k
// entries in ascending distance order, verified entries first (they are
// necessarily nearer than the verification threshold, unverified entries
// farther).
type Heap struct {
	k       int
	entries []Entry
}

// NewHeap returns an empty heap for a k-NN query.
func NewHeap(k int) *Heap {
	if k < 0 {
		k = 0
	}
	return &Heap{k: k}
}

// Reset re-initializes the heap for a new k-NN query, keeping the entry
// storage allocated for reuse (the scratch hot path).
func (h *Heap) Reset(k int) {
	if k < 0 {
		k = 0
	}
	h.k = k
	h.entries = h.entries[:0]
}

// K returns the requested result cardinality.
func (h *Heap) K() int { return h.k }

// Len returns the number of entries currently held.
func (h *Heap) Len() int { return len(h.entries) }

// Full reports whether the heap holds k entries.
func (h *Heap) Full() bool { return len(h.entries) >= h.k && h.k > 0 }

// Entries returns the entries in ascending distance order. The slice must
// not be modified.
func (h *Heap) Entries() []Entry { return h.entries }

// VerifiedCount returns how many entries are verified.
func (h *Heap) VerifiedCount() int {
	n := 0
	for _, e := range h.entries {
		if e.Verified {
			n++
		}
	}
	return n
}

// UnverifiedCount returns how many entries are unverified.
func (h *Heap) UnverifiedCount() int { return len(h.entries) - h.VerifiedCount() }

// TaintedCount returns how many entries came from untrusted peers.
func (h *Heap) TaintedCount() int {
	n := 0
	for _, e := range h.entries {
		if e.Tainted {
			n++
		}
	}
	return n
}

// add appends an entry; NNV adds candidates in ascending distance order,
// so the slice stays sorted.
func (h *Heap) add(e Entry) {
	if len(h.entries) >= h.k {
		return
	}
	h.entries = append(h.entries, e)
}

// LastDist returns the distance of the farthest entry; ok is false for an
// empty heap. With a full heap it is the upper search bound of Section
// 3.3.3.
func (h *Heap) LastDist() (float64, bool) {
	if len(h.entries) == 0 {
		return 0, false
	}
	return h.entries[len(h.entries)-1].Dist, true
}

// LastVerifiedDist returns the distance d_v of the farthest verified
// entry; ok is false when nothing is verified. It is the lower search
// bound: every database POI within d_v of the query point is already in
// the heap.
func (h *Heap) LastVerifiedDist() (float64, bool) {
	for i := len(h.entries) - 1; i >= 0; i-- {
		if h.entries[i].Verified {
			return h.entries[i].Dist, true
		}
	}
	return 0, false
}

// State is the heap condition after NNV, as enumerated in Section 3.3.3.
type State int

const (
	// StateFullMixed — H full with verified and unverified entries
	// (state 1): both bounds available.
	StateFullMixed State = iota + 1
	// StateFullUnverified — H full with only unverified entries
	// (state 2): upper bound only.
	StateFullUnverified
	// StatePartialMixed — H not full, both kinds (state 3): lower bound
	// only.
	StatePartialMixed
	// StatePartialVerified — H not full, only verified entries
	// (state 4): lower bound only.
	StatePartialVerified
	// StatePartialUnverified — H not full, only unverified entries
	// (state 5): no bounds.
	StatePartialUnverified
	// StateEmpty — no entries (state 6): no bounds.
	StateEmpty
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateFullMixed:
		return "full-mixed"
	case StateFullUnverified:
		return "full-unverified"
	case StatePartialMixed:
		return "partial-mixed"
	case StatePartialVerified:
		return "partial-verified"
	case StatePartialUnverified:
		return "partial-unverified"
	case StateEmpty:
		return "empty"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// State classifies the heap into one of the six states.
func (h *Heap) State() State {
	v := h.VerifiedCount()
	u := len(h.entries) - v
	switch {
	case len(h.entries) == 0:
		return StateEmpty
	case h.Full() && v > 0 && u > 0:
		return StateFullMixed
	case h.Full() && v == 0:
		return StateFullUnverified
	case h.Full(): // full, all verified: the query is fulfilled — treat as
		// the mixed-full case for bound purposes (both bounds coincide).
		return StateFullMixed
	case v > 0 && u > 0:
		return StatePartialMixed
	case v > 0:
		return StatePartialVerified
	default:
		return StatePartialUnverified
	}
}

// SearchBounds derives the on-air packet filtering bounds of Section
// 3.3.3 from the heap state. A zero field means "no bound of that kind".
//
// Soundness under byzantine peers: a tainted entry's distance must never
// become the upper bound — if the POI is fabricated, only k-1 real
// candidates lie within that distance and skipping farther packets would
// lose the true k-th neighbor. Any tainted entry therefore suppresses
// the upper bound. The lower bound always comes from verified entries,
// which are never tainted, so it stays sound unchanged.
func (h *Heap) SearchBounds() broadcast.Bounds {
	var b broadcast.Bounds
	switch h.State() {
	case StateFullMixed:
		b.Upper, _ = h.LastDist()
		b.Lower, _ = h.LastVerifiedDist()
	case StateFullUnverified:
		b.Upper, _ = h.LastDist()
	case StatePartialMixed, StatePartialVerified:
		b.Lower, _ = h.LastVerifiedDist()
	}
	if b.Upper > 0 && h.TaintedCount() > 0 {
		b.Upper = 0
	}
	return b
}

// MinUnverifiedCorrectness returns the smallest correctness probability
// among unverified entries, or 1 when every entry is verified. It is the
// quantity the approximate-SBNN acceptance test thresholds (the paper's
// experiments accept results whose POI correctness probability exceeds
// 50%).
func (h *Heap) MinUnverifiedCorrectness() float64 {
	min := 1.0
	for _, e := range h.entries {
		if !e.Verified && e.Correctness < min {
			min = e.Correctness
		}
	}
	return min
}

// POIs returns the entry POIs in ascending distance order.
func (h *Heap) POIs() []broadcast.POI {
	out := make([]broadcast.POI, len(h.entries))
	for i, e := range h.entries {
		out[i] = e.POI
	}
	return out
}

// AppendPOIs appends the entry POIs in ascending distance order to dst
// and returns it — the zero-allocation variant of POIs for reused
// buffers.
func (h *Heap) AppendPOIs(dst []broadcast.POI) []broadcast.POI {
	for _, e := range h.entries {
		dst = append(dst, e.POI)
	}
	return dst
}

// AppendTrustedPOIs appends the POIs of untainted entries in ascending
// distance order to dst and returns it. Exact answer paths (the on-air
// merge, cached verified knowledge) must use this variant: a tainted POI
// may be fabricated and would silently poison an exact result set.
// Identical to AppendPOIs when no entry is tainted.
func (h *Heap) AppendTrustedPOIs(dst []broadcast.POI) []broadcast.POI {
	for _, e := range h.entries {
		if e.Tainted {
			continue
		}
		dst = append(dst, e.POI)
	}
	return dst
}

// sortCandidates orders candidate POIs by ascending distance to q with
// the ID as the deterministic tiebreak. slices.SortFunc is used instead
// of sort.Slice because it does not allocate (no reflect-based swapper);
// the comparator is total up to identical POIs, so the unstable sort is
// still deterministic.
func sortCandidates(pois []broadcast.POI, q geom.Point) {
	slices.SortFunc(pois, func(a, b broadcast.POI) int {
		da, db := a.Pos.DistSq(q), b.Pos.DistSq(q)
		switch {
		case da < db:
			return -1
		case da > db:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
}

// CorrectnessProbability implements Lemma 3.2: with POIs Poisson
// distributed at density lambda (POIs per square unit), the probability
// that no POI hides in an unverified region of the given area is
// e^{-lambda * area}.
func CorrectnessProbability(lambda, area float64) float64 {
	if area <= 0 {
		return 1
	}
	if lambda < 0 {
		lambda = 0
	}
	return math.Exp(-lambda * area)
}
