package faults

import (
	"math"
	"testing"
)

func TestBurstEnabledGates(t *testing.T) {
	if (Profile{}).BurstEnabled() {
		t.Fatal("zero profile must not arm the fading chain")
	}
	if (Profile{BurstBadLoss: 0.5}).BurstEnabled() {
		t.Fatal("bad loss without dwell must not arm")
	}
	if (Profile{BurstBadSlots: 4}).BurstEnabled() {
		t.Fatal("dwell without bad loss must not arm")
	}
	if !(Profile{BurstBadLoss: 0.5, BurstBadSlots: 4}).BurstEnabled() {
		t.Fatal("bad loss + dwell must arm")
	}
	if (Profile{}).BlackoutEnabled() {
		t.Fatal("zero profile must not arm blackouts")
	}
	if !(Profile{BlackoutPeriodSec: 300, BlackoutDurationSec: 30}).BlackoutEnabled() {
		t.Fatal("period + duration must arm blackouts")
	}
}

func TestBurstNormalizedDefaults(t *testing.T) {
	p := Profile{BurstBadLoss: 0.8, BurstBadSlots: 4}.Normalized()
	if p.BurstGoodSlots != 36 {
		t.Fatalf("good dwell default = %v, want 9x bad = 36", p.BurstGoodSlots)
	}
	if p.MaxRetries != DefaultMaxRetries {
		t.Fatalf("burst-armed profile must default retries, got %d", p.MaxRetries)
	}
	// Burst losses clamp to [0, 1], not MaxRate: total fades are legal.
	p = Profile{BurstBadLoss: 2, BurstBadSlots: 4}.Normalized()
	if p.BurstBadLoss != 1 {
		t.Fatalf("BurstBadLoss clamp = %v, want 1", p.BurstBadLoss)
	}
	p = Profile{BlackoutPeriodSec: 100, BlackoutDurationSec: 500}.Normalized()
	if p.BlackoutDurationSec != 100 {
		t.Fatalf("blackout duration clamp = %v, want period 100", p.BlackoutDurationSec)
	}
}

func TestBurstValidate(t *testing.T) {
	nan := math.NaN()
	bad := []Profile{
		{BurstGoodLoss: nan},
		{BurstBadLoss: -0.1},
		{BurstBadLoss: 1.5},
		{BurstBadSlots: nan},
		{BurstGoodSlots: -1},
		{BlackoutPeriodSec: nan},
		{BlackoutDurationSec: -5},
		{BlackoutPeriodSec: 10, BlackoutDurationSec: 20},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid profile %+v", i, p)
		}
	}
	ok := Profile{BurstBadLoss: 1, BurstBadSlots: 8, BurstGoodLoss: 0.01,
		BurstGoodSlots: 100, BlackoutPeriodSec: 300, BlackoutDurationSec: 30}
	if err := ok.Validate(); err != nil {
		t.Fatalf("Validate rejected valid burst profile: %v", err)
	}
}

// TestBurstZeroKnobNoDraws pins the layering contract: with the burst
// knobs zero, the chain is nil, Sync and the per-frame kill make no
// draws, and the legacy stream produces the same sequence as an
// injector that never heard of bursts.
func TestBurstZeroKnobNoDraws(t *testing.T) {
	legacy := Profile{RequestLoss: 0.3, ReplyLoss: 0.2, ReplyCorrupt: 0.1}
	a := New(42, legacy)
	b := New(42, legacy)
	for i := 0; i < 500; i++ {
		b.Sync(int64(i)) // must be a no-op
		if a.RequestHeard() != b.RequestHeard() {
			t.Fatalf("draw %d: RequestHeard diverged with inert Sync", i)
		}
		if a.ReplyFate() != b.ReplyFate() {
			t.Fatalf("draw %d: ReplyFate diverged with inert Sync", i)
		}
	}
	if b.Counters.BurstLosses != 0 || b.Counters.BurstTransitions != 0 {
		t.Fatalf("zero-knob burst counters moved: %+v", b.Counters)
	}
	if b.ChannelImpaired() || b.DeepFade() {
		t.Fatal("zero-knob injector reports an impaired channel")
	}
}

// TestBurstLegacyStreamUnperturbed pins that arming the chain does not
// shift the legacy stream: the legacy Bernoulli decisions of an armed
// injector match a chain-free injector draw for draw.
func TestBurstLegacyStreamUnperturbed(t *testing.T) {
	legacy := Profile{RequestLoss: 0.3}
	armed := legacy
	armed.BurstBadLoss = 1
	armed.BurstBadSlots = 8
	armed.BurstGoodSlots = 8
	a := New(7, legacy)
	b := New(7, armed)
	heardA, heardB := 0, 0
	for i := 0; i < 2000; i++ {
		b.Sync(int64(i))
		if a.RequestHeard() {
			heardA++
		}
		if b.RequestHeard() {
			heardB++
		}
	}
	// The armed injector's legacy unheard count is a subset relation:
	// every legacy kill also happened on the armed side (same stream),
	// so armed hears at most as often.
	if heardB > heardA {
		t.Fatalf("armed injector heard more (%d) than legacy (%d): legacy stream shifted",
			heardB, heardA)
	}
	if b.Counters.BurstLosses == 0 {
		t.Fatal("armed chain with BadLoss=1 never killed a frame")
	}
}

// TestBurstDeterminism: identical seeds give identical chain behavior,
// different seeds give a different kill pattern.
func TestBurstDeterminism(t *testing.T) {
	p := Profile{BurstBadLoss: 0.9, BurstBadSlots: 6, BurstGoodSlots: 20,
		BurstGoodLoss: 0.05}
	run := func(seed int64) []bool {
		in := New(seed, p)
		out := make([]bool, 0, 800)
		for slot := int64(0); slot < 400; slot++ {
			in.Sync(slot)
			out = append(out, in.RequestHeard(), in.ReplyFate() == FateDeliver)
		}
		return out
	}
	a, b, c := run(1), run(1), run(2)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("identical seeds diverged")
	}
	if !diff {
		t.Fatal("different seeds produced identical kill pattern")
	}
}

// TestBurstDwellMeans drives the chain over a long slot horizon and
// checks the realized duty cycle and dwell means sit near the geometric
// targets.
func TestBurstDwellMeans(t *testing.T) {
	p := Profile{BurstBadLoss: 1, BurstBadSlots: 10, BurstGoodSlots: 40}
	in := New(99, p)
	badSlots := 0
	const horizon = 200000
	for slot := int64(0); slot < horizon; slot++ {
		in.Sync(slot)
		if in.ChannelImpaired() {
			badSlots++
		}
	}
	duty := float64(badSlots) / horizon
	if duty < 0.15 || duty > 0.25 {
		t.Fatalf("bad-state duty cycle %.3f, want ~0.20", duty)
	}
	if in.Counters.BurstTransitions == 0 {
		t.Fatal("chain never transitioned over 200k slots")
	}
	meanDwell := float64(horizon) / float64(in.Counters.BurstTransitions)
	if meanDwell < 20 || meanDwell > 30 {
		t.Fatalf("mean dwell %.1f slots, want ~25 (=(10+40)/2)", meanDwell)
	}
}

func TestDeepFadeClassification(t *testing.T) {
	// Bad loss at the threshold: bad state must read as deep fade.
	deep := Profile{BurstBadLoss: DeepFadeLoss, BurstBadSlots: 1e6, BurstGoodSlots: 1}
	in := New(5, deep)
	// Walk until the chain flips to bad (good dwell mean 1 slot).
	for slot := int64(0); slot < 1000 && !in.ChannelImpaired(); slot++ {
		in.Sync(slot)
	}
	if !in.ChannelImpaired() {
		t.Fatal("chain never entered bad state")
	}
	if !in.DeepFade() {
		t.Fatal("bad state at DeepFadeLoss must classify as deep fade")
	}
	// A mild fade is impaired but not deep.
	mild := Profile{BurstBadLoss: 0.5, BurstBadSlots: 1e6, BurstGoodSlots: 1}
	in2 := New(5, mild)
	for slot := int64(0); slot < 1000 && !in2.ChannelImpaired(); slot++ {
		in2.Sync(slot)
	}
	if !in2.ChannelImpaired() || in2.DeepFade() {
		t.Fatalf("mild fade misclassified: impaired=%v deep=%v",
			in2.ChannelImpaired(), in2.DeepFade())
	}
}

func TestBlackoutSchedule(t *testing.T) {
	p := Profile{BlackoutPeriodSec: 300, BlackoutDurationSec: 30}
	b := NewBlackout(42, p)
	if b == nil {
		t.Fatal("armed profile must build a schedule")
	}
	if NewBlackout(42, Profile{}) != nil {
		t.Fatal("zero profile must not build a schedule")
	}
	var nilB *Blackout
	if nilB.Down(3, 100) || nilB.Remaining(3, 100) != 0 {
		t.Fatal("nil schedule must always be up")
	}
	// Duty cycle per host is duration/period; windows recur with the
	// period; Remaining counts down inside a window.
	for host := 0; host < 20; host++ {
		down := 0
		const samples = 3000
		for i := 0; i < samples; i++ {
			sec := float64(i) * 0.5 // 1500 s = 5 periods
			if b.Down(host, sec) {
				down++
				rem := b.Remaining(host, sec)
				if rem <= 0 || rem > 30 {
					t.Fatalf("host %d sec %.1f: Remaining %v out of (0, 30]", host, sec, rem)
				}
				if b.Down(host, sec+rem+1e-9) {
					t.Fatalf("host %d sec %.1f: still down after Remaining elapsed", host, sec)
				}
			} else if b.Remaining(host, sec) != 0 {
				t.Fatalf("host %d sec %.1f: up but Remaining nonzero", host, sec)
			}
			// Periodicity.
			if b.Down(host, sec) != b.Down(host, sec+300) {
				t.Fatalf("host %d sec %.1f: schedule not periodic", host, sec)
			}
		}
		duty := float64(down) / samples
		if duty < 0.05 || duty > 0.15 {
			t.Fatalf("host %d blackout duty %.3f, want ~0.10", host, duty)
		}
	}
	// Phase offsets must spread hosts: not all hosts share window edges.
	down0 := b.Down(0, 0)
	spread := false
	for host := 1; host < 50; host++ {
		if b.Down(host, 0) != down0 {
			spread = true
			break
		}
	}
	if !spread {
		t.Fatal("all 50 hosts share the same blackout phase")
	}
	// Determinism across constructions; seed sensitivity.
	b2 := NewBlackout(42, p)
	b3 := NewBlackout(43, p)
	sameSeedEqual := true
	diffSeedDiffers := false
	for host := 0; host < 30; host++ {
		for i := 0; i < 100; i++ {
			sec := float64(i) * 3.1
			if b.Down(host, sec) != b2.Down(host, sec) {
				sameSeedEqual = false
			}
			if b.Down(host, sec) != b3.Down(host, sec) {
				diffSeedDiffers = true
			}
		}
	}
	if !sameSeedEqual {
		t.Fatal("same seed gave different schedules")
	}
	if !diffSeedDiffers {
		t.Fatal("different seeds gave identical schedules")
	}
}
