package geom

import (
	"math"
	"sort"
)

// Index thresholds: unions smaller than these are scanned linearly (the
// index build cost would dominate); larger unions get strip-bucketed
// indexes so per-candidate queries prune instead of scanning everything.
const (
	boundaryIndexMin = 24 // boundary segments before BoundaryDist indexes
	disjointIndexMin = 24 // disjoint rects before IntersectCircleArea indexes
)

// RectUnion is a (possibly overlapping) collection of axis-aligned
// rectangles treated as their set union. It models the merged verified
// region (MVR) of the paper: the union of the verified-region MBRs
// returned by the peers of a querying mobile host.
//
// The zero value is the empty union. Derived data (disjoint
// decomposition, boundary segments, strip indexes) is computed lazily and
// cached; Add and Reset invalidate the caches but keep their allocated
// capacity, so a RectUnion reused via Reset reaches a zero-allocation
// steady state on the query hot path.
//
// Aliasing contract: slices returned by Rects, Disjoint, and Boundary
// point into the union's internal storage and are invalidated by the next
// Add or Reset. Callers that need the data across mutations must copy.
// RectUnion is not safe for concurrent use.
type RectUnion struct {
	rects []Rect

	// Lazily computed caches (valid when the matching have* flag is set;
	// the backing arrays are reused across Reset cycles).
	disjoint     []Rect    // disjoint decomposition of the union
	boundary     []Segment // boundary pieces of the union
	haveDisjoint bool
	haveBoundary bool

	// Strip-bucketed indexes over the caches above (built lazily on top
	// of them, invalidated together with them).
	boundIdx stripIndex // x-strips over boundary segments
	disjIdx  stripIndex // x-strips over disjoint rects

	// Reusable scratch for the cache builders and CoversRect.
	xs, ys []float64
	diff   []int32
	cov    []interval

	// Incremental-maintenance state (Insert/Remove, see
	// union_incremental.go). Kept separate from the xs/ys/diff scratch
	// above because CoversRect clobbers that scratch between repairs.
	// Valid only while incValid is set; Add and Reset drop it.
	incValid     bool
	incXs, incYs []float64 // sorted distinct member edge coordinates
	incXRef      []int32   // member-edge refcount per incXs entry
	incYRef      []int32   // member-edge refcount per incYs entry
	incDiff      []int32   // row-major grid: (len(incYs)-1) rows × len(incXs) cols
	incGrid2     []int32   // double buffer for row/column splices
	incEmit      []Rect    // re-emission scratch for repaired rows
}

// NewRectUnion builds a union from the given rectangles, dropping
// degenerate (zero-area) members.
func NewRectUnion(rects ...Rect) *RectUnion {
	u := &RectUnion{}
	for _, r := range rects {
		u.Add(r)
	}
	return u
}

// Reset empties the union for reuse, keeping every internal allocation
// (member storage, cache arrays, index buckets, scratch). This is the
// hot-path entry point: a per-client RectUnion is Reset once per query
// instead of reallocated.
func (u *RectUnion) Reset() {
	u.rects = u.rects[:0]
	u.invalidate()
}

func (u *RectUnion) invalidate() {
	u.haveDisjoint = false
	u.haveBoundary = false
	u.boundIdx.built = false
	u.disjIdx.built = false
	u.incValid = false
}

// Add inserts another rectangle into the union.
func (u *RectUnion) Add(r Rect) {
	if r.Empty() || !r.Valid() {
		return
	}
	u.rects = append(u.rects, r)
	u.invalidate()
}

// CopyFrom replaces u's members with a copy of src's, reusing u's
// storage. Derived caches are invalidated (they rebuild lazily); src is
// untouched.
func (u *RectUnion) CopyFrom(src *RectUnion) {
	u.rects = append(u.rects[:0], src.rects...)
	u.invalidate()
}

// Rects returns the member rectangles as provided (possibly overlapping).
// The returned slice must not be modified and is invalidated by Add or
// Reset.
func (u *RectUnion) Rects() []Rect { return u.rects }

// Len returns the number of member rectangles.
func (u *RectUnion) Len() int { return len(u.rects) }

// IsEmpty reports whether the union covers no area.
func (u *RectUnion) IsEmpty() bool { return len(u.rects) == 0 }

// Contains reports whether p lies in the closed union.
func (u *RectUnion) Contains(p Point) bool {
	for _, r := range u.rects {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// Bounds returns the MBR of the whole union; the second result is false
// for an empty union.
func (u *RectUnion) Bounds() (Rect, bool) {
	if len(u.rects) == 0 {
		return Rect{}, false
	}
	out := u.rects[0]
	for _, r := range u.rects[1:] {
		out = out.Union(r)
	}
	return out, true
}

// Area returns the exact area of the union.
func (u *RectUnion) Area() float64 {
	total := 0.0
	for _, r := range u.Disjoint() {
		total += r.Area()
	}
	return total
}

// Disjoint returns a decomposition of the union into pairwise disjoint
// rectangles (they may share edges but not interior points). The
// decomposition works on the compressed grid induced by all member
// coordinates: every member marks its covered cell range with a
// difference array, and a per-row prefix sum merges covered cells into
// horizontal strips. Total cost is O(n log n + n·rows + cells), which
// keeps the merged-verified-region math cheap even with a hundred peer
// regions per query. The returned slice is invalidated by Add or Reset.
func (u *RectUnion) Disjoint() []Rect {
	if len(u.rects) == 0 {
		return nil
	}
	if u.haveDisjoint {
		return u.disjoint
	}
	xs, ys := u.xs[:0], u.ys[:0]
	for _, r := range u.rects {
		xs = append(xs, r.Min.X, r.Max.X)
		ys = append(ys, r.Min.Y, r.Max.Y)
	}
	xs = dedupSorted(xs)
	ys = dedupSorted(ys)
	u.xs, u.ys = xs, ys
	nx, ny := len(xs)-1, len(ys)-1
	if nx <= 0 || ny <= 0 {
		u.disjoint = u.disjoint[:0]
		u.haveDisjoint = true
		return nil
	}

	// Per-row difference array over cell columns; rect coordinates are
	// exact members of xs/ys, so the index lookups are exact.
	n := ny * (nx + 1)
	if cap(u.diff) < n {
		u.diff = make([]int32, n)
	} else {
		u.diff = u.diff[:n]
		clear(u.diff)
	}
	diff := u.diff
	for _, r := range u.rects {
		x0 := sort.SearchFloat64s(xs, r.Min.X)
		x1 := sort.SearchFloat64s(xs, r.Max.X)
		y0 := sort.SearchFloat64s(ys, r.Min.Y)
		y1 := sort.SearchFloat64s(ys, r.Max.Y)
		for row := y0; row < y1; row++ {
			diff[row*(nx+1)+x0]++
			diff[row*(nx+1)+x1]--
		}
	}

	out := u.disjoint[:0]
	for j := 0; j < ny; j++ {
		row := diff[j*(nx+1) : (j+1)*(nx+1)]
		depth := int32(0)
		stripStart := -1
		for i := 0; i <= nx; i++ {
			depth += row[i]
			covered := i < nx && depth > 0
			if covered && stripStart < 0 {
				stripStart = i
			}
			if !covered && stripStart >= 0 {
				out = append(out, Rect{
					Min: Point{xs[stripStart], ys[j]},
					Max: Point{xs[i], ys[j+1]},
				})
				stripStart = -1
			}
		}
	}
	u.disjoint = out
	u.haveDisjoint = true
	return out
}

// Boundary returns the boundary of the union as a set of axis-parallel
// segments. A portion of a member rectangle's edge belongs to the union
// boundary exactly when no other member covers its outward side. The
// returned slice is invalidated by Add or Reset.
func (u *RectUnion) Boundary() []Segment {
	if len(u.rects) == 0 {
		return nil
	}
	if u.haveBoundary {
		return u.boundary
	}
	u.boundary = u.boundary[:0]
	for i, r := range u.rects {
		// Bottom edge (outward = -Y): covered where another rect spans
		// the y just below.
		u.appendEdgePieces(i, r.Min.Y, r.Min.X, r.Max.X, true, outwardBelow)
		// Top edge (outward = +Y).
		u.appendEdgePieces(i, r.Max.Y, r.Min.X, r.Max.X, true, outwardAbove)
		// Left edge (outward = -X).
		u.appendEdgePieces(i, r.Min.X, r.Min.Y, r.Max.Y, false, outwardBelow)
		// Right edge (outward = +X).
		u.appendEdgePieces(i, r.Max.X, r.Min.Y, r.Max.Y, false, outwardAbove)
	}
	u.haveBoundary = true
	return u.boundary
}

// BoundaryDist returns the minimum Euclidean distance from p to the
// boundary of the union. For p inside the union this is the clearance
// radius (‖q, e_s‖ in the NNV algorithm); for p outside it is the distance
// to the union. It returns +Inf for an empty union.
//
// Large boundaries are pruned through an x-strip index: strips are
// visited outward from p's strip and the search stops as soon as the
// horizontal distance to the next strip already exceeds the best segment
// distance found (the horizontal distance lower-bounds the true segment
// distance, so no unvisited strip can improve the result).
func (u *RectUnion) BoundaryDist(p Point) float64 {
	segs := u.Boundary()
	best := math.Inf(1)
	if len(segs) < boundaryIndexMin {
		for _, s := range segs {
			if d := s.Dist(p); d < best {
				best = d
			}
		}
		return best
	}
	if !u.boundIdx.built {
		u.boundIdx.build(len(segs), func(i int) (float64, float64) {
			a, b := segs[i].A.X, segs[i].B.X
			if a > b {
				a, b = b, a
			}
			return a, b
		})
	}
	si := &u.boundIdx
	c := si.bucketOf(p.X)
	for d := 0; ; d++ {
		l, r := c-d, c+d
		if l < 0 && r >= si.n {
			break
		}
		lb := math.Inf(1)
		if l >= 0 {
			lb = si.stripLB(l, p.X)
		}
		if r < si.n && r != l {
			if v := si.stripLB(r, p.X); v < lb {
				lb = v
			}
		}
		if lb >= best {
			break
		}
		if l >= 0 && si.stripLB(l, p.X) < best {
			for _, i := range si.buckets[l] {
				if dd := segs[i].Dist(p); dd < best {
					best = dd
				}
			}
		}
		if r < si.n && r != l && si.stripLB(r, p.X) < best {
			for _, i := range si.buckets[r] {
				if dd := segs[i].Dist(p); dd < best {
					best = dd
				}
			}
		}
	}
	return best
}

// Clearance returns the distance from p to the union boundary when p lies
// inside the union, and ok=false (with zero distance) otherwise. This is
// exactly the quantity Lemma 3.1 verifies candidates against: any POI
// closer to p than its clearance is a guaranteed true nearest neighbor.
func (u *RectUnion) Clearance(p Point) (float64, bool) {
	if !u.Contains(p) {
		return 0, false
	}
	return u.BoundaryDist(p), true
}

// CoversRect reports whether rectangle w is entirely inside the union —
// the SBWQ full-coverage test (query window answered locally). It walks
// the compressed grid induced by the member coordinates inside w and
// returns false at the first uncovered cell, allocating nothing in the
// steady state (the grid scratch is reused).
func (u *RectUnion) CoversRect(w Rect) bool {
	if w.Empty() {
		return u.Contains(w.Min)
	}
	xs, ys := u.xs[:0], u.ys[:0]
	xs = append(xs, w.Min.X, w.Max.X)
	ys = append(ys, w.Min.Y, w.Max.Y)
	for _, r := range u.rects {
		if !r.Intersects(w) {
			continue
		}
		if r.Min.X > w.Min.X && r.Min.X < w.Max.X {
			xs = append(xs, r.Min.X)
		}
		if r.Max.X > w.Min.X && r.Max.X < w.Max.X {
			xs = append(xs, r.Max.X)
		}
		if r.Min.Y > w.Min.Y && r.Min.Y < w.Max.Y {
			ys = append(ys, r.Min.Y)
		}
		if r.Max.Y > w.Min.Y && r.Max.Y < w.Max.Y {
			ys = append(ys, r.Max.Y)
		}
	}
	xs = dedupSorted(xs)
	ys = dedupSorted(ys)
	u.xs, u.ys = xs, ys
	for j := 0; j+1 < len(ys); j++ {
		ymid := (ys[j] + ys[j+1]) / 2
		for i := 0; i+1 < len(xs); i++ {
			xmid := (xs[i] + xs[i+1]) / 2
			if !u.Contains(Point{xmid, ymid}) {
				return false
			}
		}
	}
	return true
}

// IntersectRectArea returns the exact area of w ∩ union.
func (u *RectUnion) IntersectRectArea(w Rect) float64 {
	total := 0.0
	for _, d := range u.Disjoint() {
		if clipped, ok := d.Intersect(w); ok {
			total += clipped.Area()
		}
	}
	return total
}

// IntersectCircleArea returns the exact area of the intersection between
// the disk (c, radius) and the union. It underlies the unverified-region
// area of Lemma 3.2: u = π r² − IntersectCircleArea(q, r).
//
// Large decompositions are pruned through an x-strip index over the
// disjoint rects: only strips overlapping [c.X−r, c.X+r] are visited, and
// a rect spanning several strips is counted exactly once (in the first
// visited strip it appears in).
func (u *RectUnion) IntersectCircleArea(c Point, radius float64) float64 {
	if radius <= 0 {
		return 0
	}
	dis := u.Disjoint()
	total := 0.0
	mbr := RectAround(c, radius)
	if len(dis) < disjointIndexMin {
		for _, d := range dis {
			if !d.Intersects(mbr) {
				continue
			}
			total += CircleRectArea(c, radius, d)
		}
		return total
	}
	if !u.disjIdx.built {
		u.disjIdx.build(len(dis), func(i int) (float64, float64) {
			return dis[i].Min.X, dis[i].Max.X
		})
	}
	si := &u.disjIdx
	b0 := si.bucketOf(c.X - radius)
	b1 := si.bucketOf(c.X + radius)
	for b := b0; b <= b1; b++ {
		for _, idx := range si.buckets[b] {
			d := dis[idx]
			first := si.bucketOf(d.Min.X)
			if first < b0 {
				first = b0
			}
			if first != b {
				continue // already counted in an earlier strip
			}
			if !d.Intersects(mbr) {
				continue
			}
			total += CircleRectArea(c, radius, d)
		}
	}
	return total
}

// UnverifiedArea returns the area of the part of the disk (c, radius) not
// covered by the union: the unverified region of a candidate POI at
// distance radius from the query point c (Lemma 3.2).
func (u *RectUnion) UnverifiedArea(c Point, radius float64) float64 {
	if radius <= 0 {
		return 0
	}
	area := math.Pi*radius*radius - u.IntersectCircleArea(c, radius)
	if area < 0 {
		return 0 // guard tiny negative rounding residue
	}
	return area
}

// SubtractRect returns the parts of w not covered by the union of covers,
// as a set of disjoint rectangles. This implements the query-window
// reduction of SBWQ: the returned rectangles are the reduced windows w′
// that still require on-air resolution.
func SubtractRect(w Rect, covers []Rect) []Rect {
	if w.Empty() {
		return nil
	}
	xs := []float64{w.Min.X, w.Max.X}
	ys := []float64{w.Min.Y, w.Max.Y}
	for _, r := range covers {
		if !r.Intersects(w) {
			continue
		}
		if r.Min.X > w.Min.X && r.Min.X < w.Max.X {
			xs = append(xs, r.Min.X)
		}
		if r.Max.X > w.Min.X && r.Max.X < w.Max.X {
			xs = append(xs, r.Max.X)
		}
		if r.Min.Y > w.Min.Y && r.Min.Y < w.Max.Y {
			ys = append(ys, r.Min.Y)
		}
		if r.Max.Y > w.Min.Y && r.Max.Y < w.Max.Y {
			ys = append(ys, r.Max.Y)
		}
	}
	xs = dedupSorted(xs)
	ys = dedupSorted(ys)

	covered := func(p Point) bool {
		for _, r := range covers {
			if r.Contains(p) {
				return true
			}
		}
		return false
	}

	var out []Rect
	for j := 0; j+1 < len(ys); j++ {
		ymid := (ys[j] + ys[j+1]) / 2
		stripStart := -1
		for i := 0; i <= len(xs)-1; i++ {
			uncovered := false
			if i+1 < len(xs) {
				xmid := (xs[i] + xs[i+1]) / 2
				uncovered = !covered(Point{xmid, ymid})
			}
			if uncovered && stripStart < 0 {
				stripStart = i
			}
			if !uncovered && stripStart >= 0 {
				out = append(out, Rect{
					Min: Point{xs[stripStart], ys[j]},
					Max: Point{xs[i], ys[j+1]},
				})
				stripStart = -1
			}
		}
	}
	return out
}

// stripIndex buckets items (boundary segments or disjoint rects) by
// uniform x-strips over their collective extent. Buckets hold item
// indices; an item overlapping several strips appears in each. The bucket
// arrays are reused across rebuilds, so a Reset/Add/rebuild cycle
// allocates nothing in the steady state.
type stripIndex struct {
	built bool
	minX  float64
	width float64
	n     int
	// buckets[0:n] hold the item indices per strip.
	buckets [][]int32
}

// build indexes `count` items whose x-extent is given by span.
func (si *stripIndex) build(count int, span func(i int) (lo, hi float64)) {
	minX, maxX := math.Inf(1), math.Inf(-1)
	for i := 0; i < count; i++ {
		lo, hi := span(i)
		if lo < minX {
			minX = lo
		}
		if hi > maxX {
			maxX = hi
		}
	}
	n := count / 4
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	width := (maxX - minX) / float64(n)
	if !(width > 0) {
		n, width = 1, 1
	}
	si.minX, si.width, si.n = minX, width, n
	for len(si.buckets) < n {
		si.buckets = append(si.buckets, nil)
	}
	for b := 0; b < n; b++ {
		si.buckets[b] = si.buckets[b][:0]
	}
	for i := 0; i < count; i++ {
		lo, hi := span(i)
		b0, b1 := si.bucketOf(lo), si.bucketOf(hi)
		for b := b0; b <= b1; b++ {
			si.buckets[b] = append(si.buckets[b], int32(i))
		}
	}
	si.built = true
}

// bucketOf maps an x coordinate to a strip, clamped to the index range.
func (si *stripIndex) bucketOf(x float64) int {
	b := int((x - si.minX) / si.width)
	if b < 0 {
		return 0
	}
	if b >= si.n {
		return si.n - 1
	}
	return b
}

// stripLB is the horizontal distance from x to strip b's x-range — a
// lower bound on the distance from any point with that x to any item
// indexed in the strip.
func (si *stripIndex) stripLB(b int, x float64) float64 {
	lo := si.minX + float64(b)*si.width
	hi := lo + si.width
	if x < lo {
		return lo - x
	}
	if x > hi {
		return x - hi
	}
	return 0
}

// outwardBelow/outwardAbove select which side of an edge is "outward" for
// coverage testing in appendEdgePieces.
const (
	outwardBelow = iota // outward side has smaller coordinate (bottom/left edges)
	outwardAbove        // outward side has larger coordinate (top/right edges)
)

// appendEdgePieces appends to u.boundary the sub-segments of one
// rectangle edge that lie on the union boundary. The edge is at fixed
// coordinate `level` on the perpendicular axis and spans [lo, hi] on the
// parallel axis. horizontal selects edge orientation; side selects the
// outward direction. The covering-interval scratch is reused across
// calls.
func (u *RectUnion) appendEdgePieces(self int, level, lo, hi float64, horizontal bool, side int) {
	if lo >= hi {
		return
	}
	// Collect the intervals of [lo, hi] whose outward side is covered by
	// another rectangle: such portions are interior to the union.
	cov := u.cov[:0]
	for j, s := range u.rects {
		if j == self {
			continue
		}
		var perpMin, perpMax, parMin, parMax float64
		if horizontal {
			perpMin, perpMax = s.Min.Y, s.Max.Y
			parMin, parMax = s.Min.X, s.Max.X
		} else {
			perpMin, perpMax = s.Min.X, s.Max.X
			parMin, parMax = s.Min.Y, s.Max.Y
		}
		var coversOutward bool
		if side == outwardBelow {
			// Points just below `level` are inside s.
			coversOutward = perpMin < level && perpMax >= level
		} else {
			// Points just above `level` are inside s.
			coversOutward = perpMax > level && perpMin <= level
		}
		if !coversOutward {
			continue
		}
		a, b := math.Max(parMin, lo), math.Min(parMax, hi)
		if a < b {
			cov = append(cov, interval{a, b})
		}
	}
	u.cov = cov
	sortIntervals(cov)

	// Emit the uncovered leftovers of [lo, hi] directly.
	cursor := lo
	for _, c := range cov {
		if c.b <= cursor {
			continue
		}
		if c.a > cursor {
			end := math.Min(c.a, hi)
			if end > cursor {
				u.emitPiece(cursor, end, level, horizontal)
			}
		}
		if c.b > cursor {
			cursor = c.b
		}
		if cursor >= hi {
			return
		}
	}
	if cursor < hi {
		u.emitPiece(cursor, hi, level, horizontal)
	}
}

// emitPiece appends one boundary sub-segment.
func (u *RectUnion) emitPiece(a, b, level float64, horizontal bool) {
	if horizontal {
		u.boundary = append(u.boundary, Segment{Point{a, level}, Point{b, level}})
	} else {
		u.boundary = append(u.boundary, Segment{Point{level, a}, Point{level, b}})
	}
}

type interval struct{ a, b float64 }

// sortIntervals orders intervals ascending by start without allocating
// (insertion sort: covering lists are small — the peers overlapping one
// edge).
func sortIntervals(cov []interval) {
	for i := 1; i < len(cov); i++ {
		c := cov[i]
		j := i - 1
		for j >= 0 && cov[j].a > c.a {
			cov[j+1] = cov[j]
			j--
		}
		cov[j+1] = c
	}
}

// subtractIntervals returns the parts of base not covered by any interval
// in cov. The covering intervals are treated as closed; zero-length
// leftovers are dropped. (Kept for tests and external callers; the
// boundary builder subtracts inline to avoid the allocation.)
func subtractIntervals(base interval, cov []interval) []interval {
	if len(cov) == 0 {
		return []interval{base}
	}
	sortIntervals(cov)
	var out []interval
	cursor := base.a
	for _, c := range cov {
		if c.b <= cursor {
			continue
		}
		if c.a > cursor {
			end := math.Min(c.a, base.b)
			if end > cursor {
				out = append(out, interval{cursor, end})
			}
		}
		if c.b > cursor {
			cursor = c.b
		}
		if cursor >= base.b {
			return out
		}
	}
	if cursor < base.b {
		out = append(out, interval{cursor, base.b})
	}
	return out
}

// dedupSorted sorts vs ascending and removes duplicates in place.
func dedupSorted(vs []float64) []float64 {
	sort.Float64s(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
