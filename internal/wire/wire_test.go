package wire

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

func sampleRequest() Request {
	return Request{
		QueryID:   42,
		Origin:    geom.Pt(10.5, -3.25),
		Relevance: geom.NewRect(1, 2, 3, 4),
		Hops:      2,
	}
}

func sampleReply(rng *rand.Rand, nRegions, poisPer int) Reply {
	r := Reply{QueryID: 77}
	for i := 0; i < nRegions; i++ {
		cx, cy := rng.Float64()*20, rng.Float64()*20
		reg := Region{Rect: geom.NewRect(cx, cy, cx+1, cy+1)}
		for j := 0; j < poisPer; j++ {
			reg.POIs = append(reg.POIs, broadcast.POI{
				ID:  rng.Int63(),
				Pos: geom.Pt(cx+rng.Float64(), cy+rng.Float64()),
			})
		}
		r.Regions = append(r.Regions, reg)
	}
	return r
}

func TestRequestRoundTrip(t *testing.T) {
	req := sampleRequest()
	b := EncodeRequest(req)
	if len(b) != RequestSize {
		t.Fatalf("encoded size %d want %d", len(b), RequestSize)
	}
	got, err := DecodeRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("round trip: got %+v want %+v", got, req)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range [][2]int{{0, 0}, {1, 0}, {1, 5}, {7, 3}, {20, 11}} {
		r := sampleReply(rng, shape[0], shape[1])
		b, err := EncodeReply(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != ReplySize(r.Regions) {
			t.Fatalf("shape %v: size %d want %d", shape, len(b), ReplySize(r.Regions))
		}
		got, err := DecodeReply(b)
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if got.QueryID != r.QueryID || len(got.Regions) != len(r.Regions) {
			t.Fatalf("shape %v: structure mismatch", shape)
		}
		for i := range r.Regions {
			if got.Regions[i].Rect != r.Regions[i].Rect {
				t.Fatalf("region %d rect mismatch", i)
			}
			if len(got.Regions[i].POIs) != len(r.Regions[i].POIs) {
				t.Fatalf("region %d POI count mismatch", i)
			}
			for j := range r.Regions[i].POIs {
				if got.Regions[i].POIs[j] != r.Regions[i].POIs[j] {
					t.Fatalf("region %d POI %d mismatch", i, j)
				}
			}
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := sampleReply(rng, 3, 4)
	b, err := EncodeReply(r)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := DecodeReply(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	req := EncodeRequest(sampleRequest())
	for cut := 0; cut < len(req); cut++ {
		if _, err := DecodeRequest(req[:cut]); err == nil {
			t.Fatalf("request truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b, err := EncodeReply(sampleReply(rng, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeReply(append(b, 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeRejectsBadHeader(t *testing.T) {
	good := EncodeRequest(sampleRequest())
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF // magic
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), good...)
	bad[2] = 99 // version
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	bad = append([]byte(nil), good...)
	bad[3] = kindReply // wrong kind
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestDecodeRejectsNonFinite(t *testing.T) {
	req := sampleRequest()
	req.Origin = geom.Pt(math.NaN(), 0)
	b := EncodeRequest(req)
	if _, err := DecodeRequest(b); err == nil {
		t.Fatal("NaN origin accepted")
	}
	req = sampleRequest()
	req.Relevance = geom.Rect{Min: geom.Pt(5, 5), Max: geom.Pt(1, 1)}
	b = EncodeRequest(req)
	if _, err := DecodeRequest(b); err == nil {
		t.Fatal("inverted rect accepted")
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	r := Reply{Regions: make([]Region, MaxRegions+1)}
	if _, err := EncodeReply(r); err == nil {
		t.Fatal("oversized region count accepted")
	}
	r = Reply{Regions: []Region{{
		Rect: geom.NewRect(0, 0, 1, 1),
		POIs: make([]broadcast.POI, MaxPOIsPerRegion+1),
	}}}
	if _, err := EncodeReply(r); err == nil {
		t.Fatal("oversized POI count accepted")
	}
}

// Property: encode∘decode is the identity over random replies.
func TestQuickReplyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := sampleReply(rng, rng.Intn(8), rng.Intn(6))
		b, err := EncodeReply(r)
		if err != nil {
			return false
		}
		got, err := DecodeReply(b)
		if err != nil {
			return false
		}
		if got.QueryID != r.QueryID || len(got.Regions) != len(r.Regions) {
			return false
		}
		for i := range r.Regions {
			if got.Regions[i].Rect != r.Regions[i].Rect ||
				len(got.Regions[i].POIs) != len(r.Regions[i].POIs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: random byte flips never panic the decoder and are usually
// rejected.
func TestQuickCorruptionSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	orig, err := EncodeReply(sampleReply(rng, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		b := append([]byte(nil), orig...)
		flips := 1 + rng.Intn(4)
		for f := 0; f < flips; f++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		// Must not panic; errors are fine, silent misparse of structure
		// is acceptable only if the result is structurally valid.
		got, err := DecodeReply(b)
		if err != nil {
			continue
		}
		for _, reg := range got.Regions {
			if !reg.Rect.Valid() {
				t.Fatal("decoder returned invalid rect")
			}
		}
	}
}

func TestReplySizeFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		r := sampleReply(rng, rng.Intn(10), rng.Intn(10))
		b, err := EncodeReply(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != ReplySize(r.Regions) {
			t.Fatalf("trial %d: size %d formula %d", trial, len(b), ReplySize(r.Regions))
		}
	}
}

// TestCRCRejectsEveryBitFlip: the CRC32C trailer must reject any
// single-bit corruption of an otherwise valid frame — the exact damage
// class the fault injector's corrupt fate produces.
func TestCRCRejectsEveryBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rep, err := EncodeReply(sampleReply(rng, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	req := EncodeRequest(sampleRequest())
	for name, frame := range map[string][]byte{"reply": rep, "request": req} {
		for i := range frame {
			for bit := 0; bit < 8; bit++ {
				b := append([]byte(nil), frame...)
				b[i] ^= 1 << bit
				var derr error
				if name == "reply" {
					_, derr = DecodeReply(b)
				} else {
					_, derr = DecodeRequest(b)
				}
				if derr == nil {
					t.Fatalf("%s: flip of byte %d bit %d accepted", name, i, bit)
				}
			}
		}
	}
}
