package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSegmentRectDist(t *testing.T) {
	r := NewRect(0, 0, 4, 4)
	cases := []struct {
		name string
		s    Segment
		want float64
	}{
		{"crossing", Segment{Pt(-1, 2), Pt(5, 2)}, 0},
		{"inside", Segment{Pt(1, 1), Pt(3, 1)}, 0},
		{"touching edge", Segment{Pt(4, 1), Pt(4, 3)}, 0},
		{"left of rect", Segment{Pt(-2, 1), Pt(-2, 3)}, 2},
		{"above rect", Segment{Pt(1, 7), Pt(3, 7)}, 3},
		{"diagonal corner gap", Segment{Pt(7, 8), Pt(9, 8)}, math.Hypot(3, 4)},
		{"degenerate point", Segment{Pt(-3, -4), Pt(-3, -4)}, 5},
	}
	for _, c := range cases {
		if got := SegmentRectDist(c.s, r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: got %g, want %g", c.name, got, c.want)
		}
	}
}

// Differential: for axis-parallel segments the closed-form distance must
// agree with a dense sampling of Rect.Dist along the segment (Rect.Dist
// is 1-Lipschitz, so n samples bound the error by length/n).
func TestQuickSegmentRectDistSampled(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRect(rng, 5)
		a := randomPoint(rng, 8)
		b := a
		if rng.Intn(2) == 0 {
			b.X = a.X + rng.Float64()*6 // horizontal
		} else {
			b.Y = a.Y + rng.Float64()*6 // vertical
		}
		s := Segment{a, b}
		got := SegmentRectDist(s, r)
		const n = 2000
		brute := math.Inf(1)
		for i := 0; i <= n; i++ {
			t := float64(i) / n
			p := Pt(a.X+t*(b.X-a.X), a.Y+t*(b.Y-a.Y))
			if d := r.Dist(p); d < brute {
				brute = d
			}
		}
		return math.Abs(got-brute) <= s.Length()/n+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClearanceRectHand(t *testing.T) {
	u := NewRectUnion(NewRect(0, 0, 10, 10))
	if d, ok := u.ClearanceRect(NewRect(4, 4, 6, 6)); !ok || math.Abs(d-4) > 1e-12 {
		t.Errorf("centered window: got (%g, %v), want (4, true)", d, ok)
	}
	if d, ok := u.ClearanceRect(NewRect(0, 0, 10, 10)); !ok || d != 0 {
		t.Errorf("window == union: got (%g, %v), want (0, true)", d, ok)
	}
	if _, ok := u.ClearanceRect(NewRect(8, 8, 12, 12)); ok {
		t.Error("uncovered window reported as covered")
	}

	// Two overlapping members: the shared interior edge is not boundary,
	// so a window straddling the seam keeps the clearance of the outer
	// perimeter.
	u2 := NewRectUnion(NewRect(0, 0, 6, 10), NewRect(4, 0, 10, 10))
	if d, ok := u2.ClearanceRect(NewRect(4.5, 4, 5.5, 6)); !ok || math.Abs(d-4) > 1e-12 {
		t.Errorf("seam window: got (%g, %v), want (4, true)", d, ok)
	}
}

// Property: any translation of a covered window by a vector strictly
// shorter than its clearance keeps the window covered — the safe-region
// soundness contract continuous subscriptions rely on (DESIGN.md §15).
func TestQuickClearanceRectSafeTranslation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var rects []Rect
		for i := 0; i < 1+rng.Intn(6); i++ {
			rects = append(rects, randomRect(rng, 5))
		}
		u := NewRectUnion(rects...)
		// Carve a window inside one member so it starts covered.
		host := rects[rng.Intn(len(rects))]
		cx, cy := host.Center().X, host.Center().Y
		w := NewRect(
			cx-rng.Float64()*host.Width()/2, cy-rng.Float64()*host.Height()/2,
			cx+rng.Float64()*host.Width()/2, cy+rng.Float64()*host.Height()/2,
		)
		d, ok := u.ClearanceRect(w)
		if !ok {
			return u.CoversRect(w) == false
		}
		if d == 0 {
			return true // window touches the boundary; no safe translation
		}
		for i := 0; i < 16; i++ {
			ang := rng.Float64() * 2 * math.Pi
			step := rng.Float64() * d * 0.999
			v := Pt(step*math.Cos(ang), step*math.Sin(ang))
			moved := Rect{Min: w.Min.Add(v), Max: w.Max.Add(v)}
			if !u.CoversRect(moved) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInnerGap(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if g := r.InnerGap(NewRect(2, 3, 6, 5)); math.Abs(g-2) > 1e-12 {
		t.Errorf("inner gap: got %g, want 2", g)
	}
	if g := r.InnerGap(r); g != 0 {
		t.Errorf("self gap: got %g, want 0", g)
	}
	if g := r.InnerGap(NewRect(-1, 2, 4, 6)); g >= 0 {
		t.Errorf("escaping rect must report a negative gap, got %g", g)
	}
}
