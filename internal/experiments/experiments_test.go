package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lbsq/internal/cache"
)

// tiny returns a very small scale so the whole figure suite stays fast in
// unit tests.
func tiny() Options {
	return Options{SideMiles: 2, DurationHours: 0.1, TimeStepSec: 20, Seed: 7}
}

func checkFigure(t *testing.T, f Figure, wantPoints int) {
	t.Helper()
	if len(f.Series) != 3 {
		t.Fatalf("%s: %d series, want 3 parameter sets", f.ID, len(f.Series))
	}
	names := map[string]bool{}
	for _, s := range f.Series {
		names[s.SetName] = true
		if len(s.Points) != wantPoints {
			t.Fatalf("%s/%s: %d points want %d", f.ID, s.SetName, len(s.Points), wantPoints)
		}
		for _, p := range s.Points {
			sum := p.VerifiedPct + p.ApproximatePct + p.BroadcastPct
			if p.Stats.Queries > 0 && (sum < 99.9 || sum > 100.1) {
				t.Fatalf("%s/%s x=%v: shares sum to %v", f.ID, s.SetName, p.X, sum)
			}
			if !f.HasApproximate && p.ApproximatePct != 0 {
				t.Fatalf("%s: window figure reports approximate share", f.ID)
			}
		}
	}
	if !names["Los Angeles City"] || !names["Riverside County"] {
		t.Fatalf("%s: missing parameter sets: %v", f.ID, names)
	}
}

func TestFig10Shape(t *testing.T) {
	f := Fig10(tiny())
	checkFigure(t, f, len(TxRangeSweep()))
	// Monotone trend: sharing at max range must beat sharing at min range
	// for the dense set.
	la := f.Series[0]
	first := la.Points[0].VerifiedPct + la.Points[0].ApproximatePct
	last := la.Points[len(la.Points)-1].VerifiedPct + la.Points[len(la.Points)-1].ApproximatePct
	if last <= first {
		t.Errorf("LA sharing did not grow with range: %v -> %v", first, last)
	}
}

func TestFig11Shape(t *testing.T) {
	f := Fig11(tiny())
	checkFigure(t, f, len(CacheSweep()))
}

func TestFig12Shape(t *testing.T) {
	f := Fig12(tiny())
	checkFigure(t, f, len(KSweep()))
	// Bigger k must not make sharing easier (LA trend).
	la := f.Series[0]
	first := la.Points[0].VerifiedPct + la.Points[0].ApproximatePct
	last := la.Points[len(la.Points)-1].VerifiedPct + la.Points[len(la.Points)-1].ApproximatePct
	if last > first+10 {
		t.Errorf("sharing grew sharply with k: %v -> %v", first, last)
	}
}

func TestFig13Through15Shape(t *testing.T) {
	o := tiny()
	checkFigure(t, Fig13(o), len(TxRangeSweep()))
	checkFigure(t, Fig14(o), len(CacheSweep()))
	f15 := Fig15(o)
	checkFigure(t, f15, len(WindowSweep()))
	// Bigger windows are harder to cover (LA trend).
	la := f15.Series[0]
	if la.Points[len(la.Points)-1].VerifiedPct > la.Points[0].VerifiedPct+10 {
		t.Errorf("window coverage grew with window size: %v -> %v",
			la.Points[0].VerifiedPct, la.Points[len(la.Points)-1].VerifiedPct)
	}
}

func TestByID(t *testing.T) {
	o := tiny()
	for _, id := range []string{"10", "Fig10", "fig15", "13"} {
		if _, err := ByID(id, o); err != nil {
			t.Errorf("ByID(%q): %v", id, err)
		}
	}
	if _, err := ByID("99", o); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestFigureWriteTo(t *testing.T) {
	f := Fig10(tiny())
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig10", "Los Angeles City", "Riverside County",
		"SBNN %", "Broadcast %", "Approx %"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Window figure omits the approximate column.
	var buf2 bytes.Buffer
	if _, err := Fig13(tiny()).WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "Approx %") {
		t.Error("window figure must not print an approximate column")
	}
	if !strings.Contains(buf2.String(), "SBWQ %") {
		t.Error("window figure must print the SBWQ column")
	}
}

func TestLatencyReduction(t *testing.T) {
	rows := LatencyReduction(tiny())
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BaselineMeanLatencySlots <= 0 {
			t.Fatalf("%s: baseline latency %v", r.SetName, r.BaselineMeanLatencySlots)
		}
		if r.SharedMeanLatencySlots > r.BaselineMeanLatencySlots+1 {
			t.Fatalf("%s: sharing raised latency (%v > %v)",
				r.SetName, r.SharedMeanLatencySlots, r.BaselineMeanLatencySlots)
		}
		if r.ChannelAccessAvoidedPct < 0 || r.ChannelAccessAvoidedPct > 100 {
			t.Fatalf("%s: avoided %v", r.SetName, r.ChannelAccessAvoidedPct)
		}
	}
	// The dense set must avoid more channel accesses than the sparse one.
	if rows[0].ChannelAccessAvoidedPct <= rows[2].ChannelAccessAvoidedPct {
		t.Errorf("LA avoided %.1f%% <= Riverside %.1f%%",
			rows[0].ChannelAccessAvoidedPct, rows[2].ChannelAccessAvoidedPct)
	}
	var buf bytes.Buffer
	WriteLatency(&buf, rows)
	if !strings.Contains(buf.String(), "latency") {
		t.Error("latency table missing header")
	}
}

func TestAnalysisVsSim(t *testing.T) {
	rows := AnalysisVsSim(tiny())
	if len(rows) != 12 { // 3 sets x 4 ranges
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.PredictedPct < 0 || r.PredictedPct > 100 {
			t.Fatalf("predicted %v out of range", r.PredictedPct)
		}
		if r.SimulatedPct < 0 || r.SimulatedPct > 100 {
			t.Fatalf("simulated %v out of range", r.SimulatedPct)
		}
	}
	var buf bytes.Buffer
	WriteAnalysis(&buf, rows)
	if !strings.Contains(buf.String(), "model %") {
		t.Error("analysis table missing header")
	}
}

func TestCachePolicyAblation(t *testing.T) {
	rows := CachePolicyAblation(tiny())
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	seen := map[cache.Policy]int{}
	for _, r := range rows {
		seen[r.Policy]++
		if r.SharedPct < 0 || r.SharedPct > 100 {
			t.Fatalf("shared %v out of range", r.SharedPct)
		}
	}
	if seen[cache.DirectionDistance] != 3 || seen[cache.LRU] != 3 {
		t.Fatalf("policy coverage: %v", seen)
	}
}

func TestApproxThresholdAblation(t *testing.T) {
	rows := ApproxThresholdAblation(tiny())
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// Stricter thresholds accept no more approximate answers (weak
	// monotonicity up to noise).
	if rows[0].ApproximatePct+10 < rows[len(rows)-1].ApproximatePct {
		t.Errorf("approximate share grew with threshold: %v -> %v",
			rows[0].ApproximatePct, rows[len(rows)-1].ApproximatePct)
	}
}
