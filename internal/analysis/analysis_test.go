package analysis

import (
	"math"
	"testing"
)

func laModel() Model {
	return Model{
		MHDensity:     233.25, // 93300 / 400
		POIDensity:    6.875,  // 2750 / 400
		TxRangeMiles:  200 / 1609.344,
		CacheSize:     50,
		LocalityMiles: 2,
	}
}

func TestValidate(t *testing.T) {
	if err := laModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{MHDensity: -1, POIDensity: 1, LocalityMiles: 1},
		{MHDensity: 1, POIDensity: 0, LocalityMiles: 1},
		{MHDensity: 1, POIDensity: 1, TxRangeMiles: -1, LocalityMiles: 1},
		{MHDensity: 1, POIDensity: 1, CacheSize: -1, LocalityMiles: 1},
		{MHDensity: 1, POIDensity: 1, LocalityMiles: 0},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestExpectedPeersLA(t *testing.T) {
	m := laModel()
	// 233.25 vehicles/sq mi in a 200m (0.124 mi) disk: ~11.3 peers.
	got := m.ExpectedPeers()
	if got < 10 || got > 13 {
		t.Errorf("ExpectedPeers = %v, want ~11", got)
	}
}

func TestKNNRadius(t *testing.T) {
	m := laModel()
	// r_5 = sqrt(5/(pi*6.875)) ~= 0.481 mi.
	got := m.KNNRadius(5)
	if math.Abs(got-0.481) > 0.01 {
		t.Errorf("KNNRadius(5) = %v", got)
	}
	if m.KNNRadius(0) != m.KNNRadius(1) {
		t.Error("k<1 must clamp to 1")
	}
	// Monotone in k.
	if m.KNNRadius(10) <= m.KNNRadius(5) {
		t.Error("radius must grow with k")
	}
}

func TestPeerCoverageAreaCap(t *testing.T) {
	m := laModel()
	want := 50 / 6.875
	if math.Abs(m.PeerCoverageArea()-want) > 1e-9 {
		t.Errorf("coverage area = %v want %v", m.PeerCoverageArea(), want)
	}
	// Tiny locality caps the area.
	m.LocalityMiles = 0.1
	if m.PeerCoverageArea() > math.Pi*0.01+1e-12 {
		t.Errorf("coverage not capped: %v", m.PeerCoverageArea())
	}
}

func TestHitRatioMonotoneInRange(t *testing.T) {
	m := laModel()
	prev := -1.0
	for _, tx := range []float64{0.01, 0.05, 0.1, 0.15, 0.2} {
		m.TxRangeMiles = tx
		h := m.KNNHitRatio(5)
		if h < prev {
			t.Fatalf("hit ratio decreased with range at %v", tx)
		}
		if h < 0 || h > 1 {
			t.Fatalf("hit ratio %v out of [0,1]", h)
		}
		prev = h
	}
}

func TestHitRatioMonotoneInCache(t *testing.T) {
	m := laModel()
	prev := -1.0
	for _, c := range []int{6, 12, 18, 24, 30} {
		m.CacheSize = c
		h := m.KNNHitRatio(5)
		if h < prev {
			t.Fatalf("hit ratio decreased with cache %d", c)
		}
		prev = h
	}
}

func TestHitRatioDecreasesWithK(t *testing.T) {
	m := laModel()
	prev := 2.0
	for _, k := range []int{3, 6, 9, 12, 15} {
		h := m.KNNHitRatio(k)
		if h > prev {
			t.Fatalf("hit ratio increased with k=%d", k)
		}
		prev = h
	}
}

func TestWindowHitRatioDecreasesWithSize(t *testing.T) {
	m := laModel()
	prev := 2.0
	for _, s := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		h := m.WindowHitRatio(s)
		if h > prev {
			t.Fatalf("window hit ratio increased with side %v", s)
		}
		prev = h
	}
	// A window larger than any cacheable region can never be covered.
	if m.WindowHitRatio(10) != 0 {
		t.Error("oversized window must have zero hit ratio")
	}
}

func TestUpperBoundByPeerPresence(t *testing.T) {
	m := laModel()
	for _, k := range []int{1, 5, 15} {
		if m.KNNHitRatio(k) > m.ProbAtLeastOnePeer()+1e-12 {
			t.Fatalf("hit ratio exceeds peer-presence bound at k=%d", k)
		}
	}
	if m.WindowHitRatio(0.5) > m.ProbAtLeastOnePeer()+1e-12 {
		t.Fatal("window hit ratio exceeds peer-presence bound")
	}
}

func TestDensityOrderingLAvsRiverside(t *testing.T) {
	la := laModel()
	riverside := Model{
		MHDensity:     24.25, // 9700 / 400
		POIDensity:    3.625, // 1450 / 400
		TxRangeMiles:  la.TxRangeMiles,
		CacheSize:     50,
		LocalityMiles: 2,
	}
	if la.KNNHitRatio(5) <= riverside.KNNHitRatio(5) {
		t.Errorf("LA hit ratio %v not above Riverside %v",
			la.KNNHitRatio(5), riverside.KNNHitRatio(5))
	}
}

func TestZeroCoverageEdgeCases(t *testing.T) {
	m := laModel()
	m.CacheSize = 0
	if m.SinglePeerKNNHitProb(5) != 0 || m.KNNHitRatio(5) != 0 {
		t.Error("zero cache must give zero hit ratio")
	}
	m = laModel()
	m.TxRangeMiles = 0
	if m.KNNHitRatio(5) != 0 {
		t.Error("zero range must give zero hit ratio")
	}
}
