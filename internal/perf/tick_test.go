package perf

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestParallelTickIdentity is the perf-side mirror of internal/sim's
// byte-identity matrix: the benchmark world's Stats must match between
// the serial path and the batched engine at the report's largest worker
// count. Named TestParallel* so the race-enabled bench-smoke selection
// runs it.
func TestParallelTickIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("world simulation in -short mode")
	}
	workers := TickWorkerCounts[len(TickWorkerCounts)-1]
	ok, err := TickIdentical(workers)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("batched engine (workers=%d) diverged from serial on the benchmark world", workers)
	}
}

// TestCompareTick exercises the tick regression gate: wall clock only
// compares under matching GOMAXPROCS, allocations never grow, and the
// embedded identity flag is enforced.
func TestCompareTick(t *testing.T) {
	base := Tick{
		Identical: true,
		Rows: []TickRow{
			{Name: "world_step_w1", Workers: 1, GoMaxProcs: 4, NsPerOp: 1000, AllocsPerOp: 10},
			{Name: "world_step_w4", Workers: 4, GoMaxProcs: 4, NsPerOp: 400, AllocsPerOp: 20},
		},
	}
	cur := Tick{
		Identical: true,
		Rows: []TickRow{
			{Name: "world_step_w1", Workers: 1, GoMaxProcs: 4, NsPerOp: 1100, AllocsPerOp: 10},
			{Name: "world_step_w4", Workers: 4, GoMaxProcs: 4, NsPerOp: 450, AllocsPerOp: 20},
		},
	}
	if fails := CompareTick(base, cur, 0.25); len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}

	// A different GOMAXPROCS silences the wall-clock comparison (the
	// timings are not comparable) but not the allocation gate.
	cur.Rows[1].GoMaxProcs = 1
	cur.Rows[1].NsPerOp = 99999
	if fails := CompareTick(base, cur, 0.25); len(fails) != 0 {
		t.Fatalf("cross-GOMAXPROCS timing compared: %v", fails)
	}
	cur.Rows[1].AllocsPerOp = 21
	if fails := CompareTick(base, cur, 0.25); len(fails) != 1 ||
		!strings.Contains(fails[0], "allocs/op") {
		t.Fatalf("want the allocs/op failure, got %v", fails)
	}

	// Same machine, regressed wall clock and broken identity.
	cur = Tick{
		Identical: false,
		Rows: []TickRow{
			{Name: "world_step_w1", Workers: 1, GoMaxProcs: 4, NsPerOp: 2000, AllocsPerOp: 10},
		},
	}
	fails := CompareTick(base, cur, 0.25)
	if len(fails) != 2 {
		t.Fatalf("want 2 failures (ns/op, identity), got %d: %v", len(fails), fails)
	}
	joined := strings.Join(fails, "\n")
	for _, frag := range []string{"ns/op", "identity"} {
		if !strings.Contains(joined, frag) {
			t.Fatalf("failures missing %q: %v", frag, fails)
		}
	}
}

// TestTickRoundTrip checks BENCH_tick.json survives a write/load cycle.
func TestTickRoundTrip(t *testing.T) {
	rep := Tick{
		BenchSchema: TickSchemaVersion,
		GoMaxProcs:  4,
		NumCPU:      8,
		GoVersion:   "go-test",
		Identical:   true,
		Rows: []TickRow{{
			Name: "world_step_w2", Workers: 2, GoMaxProcs: 4,
			NsPerOp: 123.5, BytesPerOp: 64, AllocsPerOp: 2,
			SpeedupVsSerial: 1.8, MemoHits: 7, DeltaReuses: 3,
		}},
	}
	path := filepath.Join(t.TempDir(), "tick.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTick(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, rep)
	}
}
