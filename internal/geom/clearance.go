package geom

import "math"

// Clearance primitives for safe-region maintenance (DESIGN.md §15): how
// far a covered rectangle may translate before it can escape a union of
// verified regions, and how much margin a contained rectangle has inside
// a single outer rectangle. Both are exact rectilinear computations —
// the segments produced by RectUnion.Boundary are axis-parallel, so
// every distance reduces to per-axis interval gaps.

// SegmentRectDist returns the minimum Euclidean distance between the
// axis-parallel segment s and the closed rectangle r (zero when they
// intersect). For an axis-parallel segment the bounding box IS the
// segment, so the box-to-box gap distance is exact.
func SegmentRectDist(s Segment, r Rect) float64 {
	sMinX, sMaxX := math.Min(s.A.X, s.B.X), math.Max(s.A.X, s.B.X)
	sMinY, sMaxY := math.Min(s.A.Y, s.B.Y), math.Max(s.A.Y, s.B.Y)
	dx := math.Max(0, math.Max(r.Min.X-sMaxX, sMinX-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-sMaxY, sMinY-r.Max.Y))
	return math.Hypot(dx, dy)
}

// ClearanceRect returns the minimum distance from the rectangle w to the
// boundary of the union, and whether the union covers w. It is the
// rectangle analogue of Clearance: when ok, every translation of w by a
// vector shorter than the returned distance is still covered by the
// union (any escaping point would trace a path from a covered point of w
// across the boundary in under the clearance, contradicting the boundary
// being at least that far from w). When the union does not cover w the
// distance is meaningless and ok is false.
//
// A union with no boundary at all only happens when it is empty, which
// never covers a valid rectangle, so the +Inf starting value is never
// returned with ok == true unless w is covered and the union has no
// boundary segments — impossible for the bounded unions this package
// builds.
func (u *RectUnion) ClearanceRect(w Rect) (float64, bool) {
	if !u.CoversRect(w) {
		return 0, false
	}
	min := math.Inf(1)
	for _, s := range u.Boundary() {
		if d := SegmentRectDist(s, w); d < min {
			min = d
		}
	}
	return min, true
}

// InnerGap returns the smallest margin between the boundary of the inner
// rectangle s and the boundary of r when r contains s, i.e. how far s
// may translate in any direction while staying inside r. Negative when s
// sticks out of r on some side.
func (r Rect) InnerGap(s Rect) float64 {
	return math.Min(
		math.Min(s.Min.X-r.Min.X, r.Max.X-s.Max.X),
		math.Min(s.Min.Y-r.Min.Y, r.Max.Y-s.Max.Y),
	)
}
