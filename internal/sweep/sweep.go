// Package sweep is the deterministic parallel runner behind every
// multi-cell experiment in the repository: figure regeneration, the
// in-process bench grids, and any caller with independent parameter
// cells to evaluate.
//
// Determinism contract: each cell is a closure owning all of its inputs
// (its own seeded sim.World, RNG, and scratch — nothing shared), and
// results are written into a slice indexed by cell position. The output
// is therefore bit-identical to running the cells serially in order, no
// matter how the scheduler interleaves workers. Callers must not smuggle
// shared mutable state into cell closures; that is the one way to break
// the contract.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request: n >= 1 selects exactly n
// workers, anything else (0 or negative, the "auto" request) selects
// GOMAXPROCS. The result is always >= 1.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run evaluates every cell and returns the results in cell order.
// workers is the concurrency level (pass Workers(flagValue) to resolve
// an "auto" request); 1 runs the cells serially on the calling
// goroutine with zero synchronization overhead. Results are identical
// either way — see the package determinism contract.
//
// Workers claim cells in chunks (several cells per atomic increment) so
// cheap cells — the tick engine's per-query work items — do not
// serialize on the shared counter; the chunk size shrinks with the
// cell/worker ratio so the tail still load-balances.
func Run[T any](workers int, cells []func() T) []T {
	results := make([]T, len(cells))
	if len(cells) == 0 {
		return results
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i, cell := range cells {
			results[i] = cell()
		}
		return results
	}
	chunk := len(cells) / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 64 {
		chunk = 64
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= len(cells) {
					return
				}
				end := start + chunk
				if end > len(cells) {
					end = len(cells)
				}
				for i := start; i < end; i++ {
					results[i] = cells[i]()
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// Map runs f over every element of in across the given number of
// workers and returns the outputs in input order. It is Run with the
// cell closures built for the caller; f receives the element index and
// value and must not touch state shared with other elements.
func Map[In, Out any](workers int, in []In, f func(int, In) Out) []Out {
	cells := make([]func() Out, len(in))
	for i := range in {
		i := i
		cells[i] = func() Out { return f(i, in[i]) }
	}
	return Run(workers, cells)
}
