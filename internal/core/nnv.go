package core

import (
	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// PeerData is one verified region received from a peer: the MBR the peer
// guarantees complete knowledge of, and every cached POI inside it. A
// peer with several cached regions contributes one PeerData per region.
type PeerData struct {
	VR   geom.Rect
	POIs []broadcast.POI
}

// NNVResult bundles the outputs of the nearest-neighbor verification
// method.
type NNVResult struct {
	// Heap holds up to k candidates in ascending distance order with
	// their verification status, correctness probabilities, and
	// surpassing ratios.
	Heap *Heap
	// MVR is the merged verified region of all peers.
	MVR *geom.RectUnion
	// EdgeDist is ‖q, e_s‖ — the distance from q to the nearest boundary
	// edge of the MVR; zero when q lies outside the MVR (no verification
	// possible).
	EdgeDist float64
	// InsideMVR reports whether q lies inside the MVR (the precondition
	// of Lemma 3.1).
	InsideMVR bool
	// Candidates is the number of distinct POIs received from peers.
	Candidates int
}

// NNV is Algorithm 1: merge the peers' verified regions, sort their
// cached POIs by distance to q, and verify each candidate o against
// Lemma 3.1 (o is a guaranteed nearest neighbor when ‖q,o‖ ≤ ‖q,e_s‖ and
// q lies inside the MVR). Unverified candidates are annotated with the
// Lemma 3.2 correctness probability computed from the exact area of their
// unverified region, using lambda as the POI density.
func NNV(q geom.Point, peers []PeerData, k int, lambda float64) NNVResult {
	mvr := geom.NewRectUnion()
	seen := make(map[int64]bool)
	var candidates []broadcast.POI
	for _, p := range peers {
		mvr.Add(p.VR)
		for _, poi := range p.POIs {
			if !seen[poi.ID] {
				seen[poi.ID] = true
				candidates = append(candidates, poi)
			}
		}
	}
	sortCandidates(candidates, q)

	res := NNVResult{
		Heap:       NewHeap(k),
		MVR:        mvr,
		Candidates: len(candidates),
	}
	if d, ok := mvr.Clearance(q); ok {
		res.EdgeDist = d
		res.InsideMVR = true
	}

	lastVerified := 0.0
	hasVerified := false
	for _, poi := range candidates {
		if res.Heap.Full() {
			break
		}
		d := poi.Pos.Dist(q)
		e := Entry{POI: poi, Dist: d}
		if res.InsideMVR && d <= res.EdgeDist {
			e.Verified = true
			e.Correctness = 1
			lastVerified = d
			hasVerified = true
		} else {
			// Unverified: the candidate's unverified region is the part
			// of its distance disk not covered by the MVR.
			u := mvr.UnverifiedArea(q, d)
			e.Correctness = CorrectnessProbability(lambda, u)
			if hasVerified && lastVerified > 0 {
				e.Surpassing = d / lastVerified
			}
		}
		res.Heap.add(e)
	}
	return res
}
