// Command lbsq-trace summarizes a JSONL simulation trace produced by
// lbsq-sim -trace: outcome shares, channel-cost statistics, and an ASCII
// latency histogram over the broadcast-resolved queries.
//
// Usage:
//
//	lbsq-sim -set la -trace run.jsonl
//	lbsq-trace run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"lbsq/internal/trace"
)

func main() {
	bins := flag.Int("bins", 10, "latency histogram bins")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lbsq-trace [-bins n] <trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(events) == 0 {
		fmt.Println("empty trace")
		return
	}

	s := trace.Summarize(events)
	fmt.Printf("%d events, %.1f mean reachable peers\n", s.Events, s.MeanPeers)
	var outcomes []string
	for o := range s.ByOutcome {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		fmt.Printf("  %-12s %6d (%.1f%%)\n",
			o, s.ByOutcome[o], 100*float64(s.ByOutcome[o])/float64(s.Events))
	}
	fmt.Printf("total packets downloaded: %d\n", s.TotalPackets)

	// Latency histogram over broadcast-resolved events.
	var lats []int64
	for _, e := range events {
		if e.Outcome == "broadcast" {
			lats = append(lats, e.LatencySlots)
		}
	}
	if len(lats) == 0 {
		fmt.Println("no broadcast-resolved events — every query answered by peers")
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fmt.Printf("\nbroadcast latency (slots): min=%d p50=%d p90=%d max=%d mean=%.1f\n",
		lats[0], percentile(lats, 50), percentile(lats, 90),
		lats[len(lats)-1], s.MeanLatency)

	n := *bins
	if n < 1 {
		n = 10
	}
	lo, hi := lats[0], lats[len(lats)-1]
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, n)
	for _, l := range lats {
		b := int(float64(l-lo) / float64(hi-lo+1) * float64(n))
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	fmt.Println()
	for b, c := range counts {
		binLo := lo + int64(float64(b)/float64(n)*float64(hi-lo+1))
		binHi := lo + int64(float64(b+1)/float64(n)*float64(hi-lo+1))
		bar := ""
		if maxCount > 0 {
			for i := 0; i < c*50/maxCount; i++ {
				bar += "#"
			}
		}
		fmt.Printf("  [%5d, %5d) %6d %s\n", binLo, binHi, c, bar)
	}
}

// percentile returns the p-th percentile of sorted values.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}
