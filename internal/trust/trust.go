// Package trust is the Byzantine-resilience subsystem of the sharing
// architecture. The fault layer (internal/faults) models a lossy but
// honest substrate and the breaker lifecycle (internal/p2p) tolerates
// crash-style misbehavior; neither catches a *lying* peer, because a
// fabricated verified region passes the wire CRC and arrives on time.
// internal/core/byzantine_test.go documents the consequence: one lying
// peer poisons Lemma 3.1 into a verified-wrong nearest neighbor.
//
// The defense is audit-gated vouching built from three mechanisms:
//
//  1. Cross-validation of overlapping VRs at MVR-merge time. Two peers
//     whose verified regions overlap must agree on the POI set
//     restricted to the overlap — both claim complete knowledge of it.
//     Any disagreement is a conflict. When exactly one claimant is
//     currently vouched, the vouch is audit-backed ground-truth
//     evidence: only the unvouched claimant is struck and the vouched
//     claim stands (a byzantine peer can never be vouched, so this
//     verdict is sound — and it stops one liar from shredding the
//     honest population's trust, the failure mode that otherwise
//     collapses sharing coverage entirely). When neither (or both —
//     only possible through the TrustStale bypass) is vouched the
//     engine cannot tell who lied: the overlap rectangle is
//     quarantined out of the merge (subtracted from every unvouched
//     contribution via geom.SubtractRect; vouched claims stand whole)
//     for QuarantineCycles screens and both peers are struck and
//     unvouched. The live rectangle set is deduplicated and capped
//     (maxQuarRects) so a sustained attack cannot make the screening
//     pass itself unaffordable.
//  2. On-air spot audits. A seeded, rate-limited sample of contributions
//     is re-verified against the broadcast channel while the MH is
//     already tuned in; the cost is priced in slots against the query's
//     remaining deadline budget. The audit re-verifies the *sampled
//     contribution in full* (sampling is at the contribution level, so
//     the cost stays bounded while a sampled lie cannot hide): a failed
//     audit convicts the peer on the spot, a passed audit vouches it
//     for VouchCycles screens and forgives its standing strikes (the
//     ground truth just testified for it).
//  3. Reputation-driven quarantine. Convictions (failed audit, or
//     ConvictStrikes accumulated conflict strikes) quarantine the peer
//     for QuarantineCycles screens and force its circuit breaker open
//     (p2p.BreakerSet.ForceOpen); parole runs through the breaker's
//     ordinary half-open probe once the trust quarantine decays.
//
// Soundness contract (the property the soak grid pins): a contribution
// is *untainted* only if it is the host's own cache or its peer is
// currently vouched with no standing strikes. Under the byzantine model
// of internal/faults — every byzantine claim is materially false — a
// byzantine peer can never pass an audit, hence never be vouched, hence
// never contribute to the trusted MVR or a verified answer. Byzantine
// contributions survive only as Tainted results, which core demotes to
// the Lemma 3.2 probabilistic path (never Verified, never a search
// upper bound, never merged into exact channel answers). Lies can
// therefore degrade answers from verified to probabilistic or
// broadcast, but never produce a verified-wrong result. The one
// documented bypass is the faults.TrustStale knob, which poisons
// regions *after* honesty screening by construction; audits still
// convict its victims when they sample them.
package trust

import (
	"fmt"
	"math/rand"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
	"lbsq/internal/p2p"
)

// Self is the Contribution.Peer value for the querying host's own cached
// regions: never audited, never struck, always untainted (a host trusts
// its own storage; staleness of that storage is the consistency layer's
// problem, not the trust layer's).
const Self = -1

// Defaults for Config fields left at zero.
const (
	DefaultMaxAuditsPerQuery = 4
	// DefaultVouchCycles trades audit traffic against trusted-peer
	// coverage: the steady-state vouched population is roughly
	// audits-per-screen × VouchCycles, so a short horizon starves the
	// trusted MVR even on an honest substrate (measured in
	// EXPERIMENTS.md: 64 screens left under half the queries verified
	// with zero liars).
	DefaultVouchCycles      = 512
	DefaultQuarantineCycles = 128
	DefaultConvictStrikes   = 3
	DefaultAuditBaseSlots   = 2
	DefaultAuditPOIsPerSlot = 8
)

// Config parameterizes the trust engine. The zero value disables the
// defense entirely (NewEngine returns nil).
type Config struct {
	// AuditRate is the probability that one peer contribution is spot
	// audited during one screen. Zero disables the whole defense — the
	// engine only exists when audits can vouch peers, because without
	// vouching every contribution would be permanently tainted.
	AuditRate float64
	// MaxAuditsPerQuery caps audits per screen so a dense neighborhood
	// cannot blow the deadline budget. Zero selects the default.
	MaxAuditsPerQuery int
	// VouchCycles is how many screens a passed audit vouches a peer for.
	// Zero selects the default.
	VouchCycles int64
	// QuarantineCycles is how many screens a conviction quarantines a
	// peer (and a conflict quarantines its rectangle) for. Zero selects
	// the default.
	QuarantineCycles int64
	// ConvictStrikes is how many cross-validation strikes convict a peer
	// without an audit. Zero selects the default.
	ConvictStrikes int
	// AuditBaseSlots and AuditPOIsPerSlot price one audit in broadcast
	// slots: base tuning cost plus one slot per so-many POIs re-checked.
	// Zero selects the defaults.
	AuditBaseSlots   int64
	AuditPOIsPerSlot int
}

// Enabled reports whether the defense is active.
func (c Config) Enabled() bool { return c.AuditRate > 0 }

// Normalized returns the config with rates clamped and zero fields
// defaulted.
func (c Config) Normalized() Config {
	out := c
	if out.AuditRate < 0 {
		out.AuditRate = 0
	}
	if out.AuditRate > 1 {
		out.AuditRate = 1
	}
	if out.MaxAuditsPerQuery <= 0 {
		out.MaxAuditsPerQuery = DefaultMaxAuditsPerQuery
	}
	if out.VouchCycles <= 0 {
		out.VouchCycles = DefaultVouchCycles
	}
	if out.QuarantineCycles <= 0 {
		out.QuarantineCycles = DefaultQuarantineCycles
	}
	if out.ConvictStrikes <= 0 {
		out.ConvictStrikes = DefaultConvictStrikes
	}
	if out.AuditBaseSlots <= 0 {
		out.AuditBaseSlots = DefaultAuditBaseSlots
	}
	if out.AuditPOIsPerSlot <= 0 {
		out.AuditPOIsPerSlot = DefaultAuditPOIsPerSlot
	}
	return out
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.AuditRate != c.AuditRate {
		return fmt.Errorf("trust: AuditRate is NaN")
	}
	if c.AuditRate < 0 || c.AuditRate > 1 {
		return fmt.Errorf("trust: AuditRate %v out of [0, 1]", c.AuditRate)
	}
	return nil
}

// Contribution is one shared verified region entering a query's merge:
// the claiming peer, the region, and every POI the peer claims is inside
// it. The POIs slice is borrowed (never mutated, never retained).
type Contribution struct {
	Peer int
	VR   geom.Rect
	POIs []broadcast.POI
	// Stale marks a region verified against a superseded POI epoch
	// (consistency layer): honestly reported, but possibly diverged from
	// current truth. A stale contribution is demoted to the probabilistic
	// path like any tainted piece, but disagreements it causes are a
	// *stale* verdict, not a byzantine one — no strikes, no quarantine,
	// no audit (an audit would convict an honest peer for churn it has
	// not heard about yet).
	Stale bool
}

// Result is one screened piece of a contribution. Quarantine subtraction
// can split one contribution into several disjoint pieces; each carries
// the claimed POIs inside it and the taint verdict of its peer.
type Result struct {
	Peer    int
	VR      geom.Rect
	POIs    []broadcast.POI
	Tainted bool
}

// Oracle returns the ground-truth POIs inside r — the content the
// broadcast channel would deliver for that region. The simulator wraps
// its POI database; audits charge the tuning cost separately through the
// slot budget.
type Oracle func(r geom.Rect) []broadcast.POI

// Report is the per-screen activity record (what one query's trust pass
// did), used for latency pricing, metrics, and tracing.
type Report struct {
	// Audits is how many spot audits ran (passed or failed).
	Audits int
	// AuditFailures is how many of them convicted the contributor.
	AuditFailures int
	// Conflicts is how many overlap disagreements cross-validation found
	// between fresh claimants (the byzantine-suspect kind).
	Conflicts int
	// StaleConflicts is how many disagreements involved a stale claimant
	// and were amnestied: reconciliation's problem, not reputation's.
	StaleConflicts int
	// Convictions is how many peers were convicted this screen (audit
	// failures plus strike accumulations).
	Convictions int
	// Tainted is how many surviving contributions were demoted to the
	// probabilistic path.
	Tainted int
	// AuditSlots is the broadcast-slot cost charged to the query.
	AuditSlots int64
	// QuarantinedArea is the area newly quarantined this screen
	// (conflict overlaps plus convicted regions).
	QuarantinedArea float64
}

// Counters is the engine's cumulative activity (the sim's Stats source).
type Counters struct {
	AuditsRun         int64
	AuditFailures     int64
	ConflictsDetected int64
	StaleVerdicts     int64
	PeersQuarantined  int64
	AuditSlots        int64
	QuarantinedArea   float64
}

// peerRec is one peer's reputation record.
type peerRec struct {
	vouchedUntil     int64 // screen seq until which the peer is vouched
	quarantinedUntil int64 // screen seq until which the peer is dropped
	strikes          int   // standing cross-validation strikes
}

// quarRect is one quarantined rectangle with its decay horizon.
type quarRect struct {
	r     geom.Rect
	until int64
}

// maxQuarRects caps the live rectangle-quarantine set. Dense sustained
// attacks produce the same conflicting overlaps screen after screen;
// without dedup and a cap the set grows into the tens of thousands and
// the per-contribution subtraction pass both pulverizes every region
// and dominates wall time. Evicting the oldest rectangle early is sound:
// rectangle quarantine is defense-in-depth (taint gating alone carries
// the soundness contract), so forgetting a rectangle can only re-admit
// claims into the *probabilistic* path.
const maxQuarRects = 1024

// Engine is the per-host trust state: reputation records, the decaying
// rectangle quarantine, and the seeded audit-sampling stream. It is
// deterministic — identical seeds and call sequences produce identical
// verdicts — and single-goroutine like the rest of the query path.
type Engine struct {
	cfg      Config
	rng      *rand.Rand
	breakers *p2p.BreakerSet
	seq      int64
	peers    map[int]*peerRec
	quar     []quarRect
	quarIdx  map[geom.Rect]int // rect → index in quar (dedup)
	counters Counters

	// scratch reused across screens
	pieces []geom.Rect
}

// NewEngine creates a trust engine, or returns nil when the config
// disables the defense. A nil *Engine is valid everywhere downstream
// (the sim threads it without checks); breakers may be nil (convictions
// then rely on the engine's own quarantine alone).
func NewEngine(seed int64, cfg Config, breakers *p2p.BreakerSet) *Engine {
	cfg = cfg.Normalized()
	if !cfg.Enabled() {
		return nil
	}
	return &Engine{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(seed)),
		breakers: breakers,
		peers:    make(map[int]*peerRec),
		quarIdx:  make(map[geom.Rect]int),
	}
}

// Config returns the active (normalized) config. Safe on nil.
func (e *Engine) Config() Config {
	if e == nil {
		return Config{}
	}
	return e.cfg
}

// Enabled reports whether the defense is active. Safe on nil.
func (e *Engine) Enabled() bool { return e != nil }

// Counters returns the cumulative activity tallies. Safe on nil (zero).
func (e *Engine) Counters() Counters {
	if e == nil {
		return Counters{}
	}
	return e.counters
}

// Quarantined reports whether peer id is currently quarantined. Safe on
// nil (never).
func (e *Engine) Quarantined(id int) bool {
	if e == nil || id == Self {
		return false
	}
	rec, ok := e.peers[id]
	return ok && rec.quarantinedUntil > e.seq
}

// Vouched reports whether peer id is currently vouched with no standing
// strikes — the condition for its contributions to stay untainted. Safe
// on nil (never).
func (e *Engine) Vouched(id int) bool {
	if e == nil {
		return false
	}
	if id == Self {
		return true
	}
	rec, ok := e.peers[id]
	return ok && rec.vouchedUntil > e.seq && rec.strikes == 0 && rec.quarantinedUntil <= e.seq
}

// QuarantinedRects returns the number of rectangles currently in the
// decaying quarantine set. Safe on nil.
func (e *Engine) QuarantinedRects() int {
	if e == nil {
		return 0
	}
	return len(e.quar)
}

// rec returns (creating if needed) peer id's reputation record.
func (e *Engine) rec(id int) *peerRec {
	r, ok := e.peers[id]
	if !ok {
		r = &peerRec{}
		e.peers[id] = r
	}
	return r
}

// convict quarantines peer id and forces its breaker open. Idempotent
// within one screen (a peer both conflicted and audit-failed counts
// once, tracked through the screen's convicted set).
func (e *Engine) convict(id int, rep *Report, convicted map[int]bool) {
	if id == Self || convicted[id] {
		return
	}
	convicted[id] = true
	r := e.rec(id)
	r.quarantinedUntil = e.seq + e.cfg.QuarantineCycles
	r.vouchedUntil = 0
	r.strikes = 0
	e.counters.PeersQuarantined++
	rep.Convictions++
	e.breakers.ForceOpen(id)
}

// strike records one cross-validation strike against peer id, unvouching
// it; ConvictStrikes standing strikes convict.
func (e *Engine) strike(id int, rep *Report, convicted map[int]bool) {
	if id == Self {
		return
	}
	r := e.rec(id)
	r.vouchedUntil = 0
	r.strikes++
	if r.strikes >= e.cfg.ConvictStrikes {
		e.convict(id, rep, convicted)
	}
}

// quarantineRect adds (or refreshes) one rectangle in the decaying
// quarantine set. The same pair of disagreeing regions resurfaces
// screen after screen under a sustained attack, so an already-known
// rectangle only has its decay horizon extended — it is not re-counted
// as newly quarantined area. The live set is capped at maxQuarRects by
// evicting the oldest entry.
func (e *Engine) quarantineRect(r geom.Rect, rep *Report) {
	until := e.seq + e.cfg.QuarantineCycles
	if i, ok := e.quarIdx[r]; ok {
		if e.quar[i].until < until {
			e.quar[i].until = until
		}
		return
	}
	if len(e.quar) >= maxQuarRects {
		delete(e.quarIdx, e.quar[0].r)
		e.quar = append(e.quar[:0], e.quar[1:]...)
		for i, q := range e.quar {
			e.quarIdx[q.r] = i
		}
	}
	e.quarIdx[r] = len(e.quar)
	e.quar = append(e.quar, quarRect{r: r, until: until})
	rep.QuarantinedArea += r.Area()
	e.counters.QuarantinedArea += r.Area()
}

// auditCost prices one audit in broadcast slots.
func (e *Engine) auditCost(nPOIs int) int64 {
	per := int64(e.cfg.AuditPOIsPerSlot)
	return e.cfg.AuditBaseSlots + (int64(nPOIs)+per-1)/per
}

// claimHonest re-verifies one claim against the ground truth: the
// claimed POI set must be exactly the truth restricted to the claimed
// region (same IDs, same positions — a peer claiming complete knowledge
// of VR must know precisely its contents).
func claimHonest(vr geom.Rect, claimed, truth []broadcast.POI) bool {
	if len(claimed) != len(truth) {
		return false
	}
	// Both sets are small (one cached region); quadratic matching avoids
	// imposing an ordering contract on the oracle.
	for _, c := range claimed {
		found := false
		for _, t := range truth {
			if c == t {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// restrictAgree reports whether two claims agree on the overlap rect:
// each claim's POIs inside the overlap must appear identically in the
// other claim.
func restrictAgree(overlap geom.Rect, a, b []broadcast.POI) bool {
	contains := func(set []broadcast.POI, p broadcast.POI) bool {
		for _, q := range set {
			if q == p {
				return true
			}
		}
		return false
	}
	for _, p := range a {
		if overlap.Contains(p.Pos) && !contains(b, p) {
			return false
		}
	}
	for _, p := range b {
		if overlap.Contains(p.Pos) && !contains(a, p) {
			return false
		}
	}
	return true
}

// Screen runs one query's trust pass over the collected contributions:
// drops quarantined peers, cross-validates overlapping VRs, spot-audits
// a seeded sample against the oracle within the slot budget, subtracts
// quarantined rectangles, and marks every surviving piece with its taint
// verdict. budget is the query's remaining deadline budget in slots
// (negative means unlimited); audits that do not fit are skipped.
//
// Safe on nil: contributions pass through untainted and unscreened (the
// defense is off; this is the seed behavior).
func (e *Engine) Screen(contribs []Contribution, oracle Oracle, budget int64) ([]Result, Report) {
	if e == nil {
		out := make([]Result, 0, len(contribs))
		for _, c := range contribs {
			out = append(out, Result{Peer: c.Peer, VR: c.VR, POIs: c.POIs, Tainted: c.Stale})
		}
		return out, Report{}
	}
	e.seq++
	var rep Report

	// Decay expired quarantine rectangles (insertion order preserved).
	live := e.quar[:0]
	for _, q := range e.quar {
		if q.until > e.seq {
			live = append(live, q)
		} else {
			delete(e.quarIdx, q.r)
		}
	}
	e.quar = live
	for i, q := range e.quar {
		e.quarIdx[q.r] = i
	}

	// Drop contributions from quarantined peers outright.
	kept := make([]Contribution, 0, len(contribs))
	for _, c := range contribs {
		if e.Quarantined(c.Peer) {
			continue
		}
		kept = append(kept, c)
	}

	// Cross-validation: every overlapping pair must agree on the overlap.
	convicted := make(map[int]bool)
	for i := 0; i < len(kept); i++ {
		for j := i + 1; j < len(kept); j++ {
			if kept[i].Peer == kept[j].Peer {
				continue // two regions of one cache cannot witness each other
			}
			overlap, ok := kept[i].VR.Intersect(kept[j].VR)
			if !ok || overlap.Empty() {
				continue
			}
			if restrictAgree(overlap, kept[i].POIs, kept[j].POIs) {
				continue
			}
			// Third verdict: a disagreement involving a stale claimant is
			// expected under churn — the stale side is already demoted, so
			// amnesty both and leave reputations untouched. Counting it as
			// a byzantine conflict would let honest churn strike honest
			// peers into quarantine.
			if kept[i].Stale || kept[j].Stale {
				rep.StaleConflicts++
				e.counters.StaleVerdicts++
				continue
			}
			rep.Conflicts++
			e.counters.ConflictsDetected++
			// An audit-backed vouch outweighs an unvouched accuser: when
			// exactly one claimant is vouched, the other one lied (a
			// byzantine peer can never be vouched), so strike it alone and
			// let the vouched claim stand. Otherwise the engine cannot
			// tell who lied: quarantine the overlap out of the merge and
			// strike both claimants.
			iv, jv := e.Vouched(kept[i].Peer), e.Vouched(kept[j].Peer)
			switch {
			case iv && !jv:
				e.strike(kept[j].Peer, &rep, convicted)
			case jv && !iv:
				e.strike(kept[i].Peer, &rep, convicted)
			default:
				e.quarantineRect(overlap, &rep)
				e.strike(kept[i].Peer, &rep, convicted)
				e.strike(kept[j].Peer, &rep, convicted)
			}
		}
	}

	// Spot audits: seeded contribution-level sampling, priced in slots
	// against the deadline budget, capped per query. The audit runs on
	// the *original* claim (pre-subtraction): under the always-material
	// adversary model this makes a sampled lie impossible to miss, which
	// is what keeps byzantine peers permanently unvouchable.
	audits := 0
	for _, c := range kept {
		// Stale contributions are skipped before the sampling draw: the
		// claim predates the current epoch, so re-verifying it against
		// current truth would convict an honest peer for churn.
		if c.Peer == Self || c.Stale || convicted[c.Peer] || e.Quarantined(c.Peer) {
			continue
		}
		if audits >= e.cfg.MaxAuditsPerQuery {
			break
		}
		if e.rng.Float64() >= e.cfg.AuditRate {
			continue
		}
		cost := e.auditCost(len(c.POIs))
		if budget >= 0 && rep.AuditSlots+cost > budget {
			continue // cannot afford within the deadline
		}
		audits++
		rep.Audits++
		rep.AuditSlots += cost
		e.counters.AuditsRun++
		e.counters.AuditSlots += cost
		truth := oracle(c.VR)
		if claimHonest(c.VR, c.POIs, truth) {
			// Vouch and forgive standing strikes: the ground truth just
			// testified for the peer, so conflicts it lost to unvouched
			// accusers no longer count against it.
			r := e.rec(c.Peer)
			r.vouchedUntil = e.seq + e.cfg.VouchCycles
			r.strikes = 0
			continue
		}
		rep.AuditFailures++
		e.counters.AuditFailures++
		e.convict(c.Peer, &rep, convicted)
		rep.QuarantinedArea += c.VR.Area()
		e.counters.QuarantinedArea += c.VR.Area()
	}

	// Assemble: convicted peers drop out entirely; everything else is
	// reduced by the quarantine set and marked with its taint verdict.
	out := make([]Result, 0, len(kept))
	taintedPeers := make(map[int]bool)
	for _, c := range kept {
		if convicted[c.Peer] || e.Quarantined(c.Peer) {
			continue
		}
		tainted := c.Stale || !e.Vouched(c.Peer)
		if tainted && !taintedPeers[c.Peer] {
			taintedPeers[c.Peer] = true
			rep.Tainted++
		}
		e.pieces = e.pieces[:0]
		e.pieces = append(e.pieces, c.VR)
		// Rectangle quarantine is defense-in-depth for *unvouched*
		// claims. A vouched claim is audit-backed, so it stands whole:
		// subtracting disputed rectangles from the trusted population
		// would let an attacker pulverize the honest MVR merely by
		// disputing it (the coverage-collapse failure mode).
		if tainted {
			for _, q := range e.quar {
				if !c.VR.Intersects(q.r) {
					continue
				}
				next := e.pieces[:0:0]
				for _, piece := range e.pieces {
					next = append(next, geom.SubtractRect(piece, []geom.Rect{q.r})...)
				}
				e.pieces = next
			}
		}
		for _, piece := range e.pieces {
			if piece.Empty() {
				continue
			}
			r := Result{Peer: c.Peer, VR: piece, Tainted: tainted}
			for _, p := range c.POIs {
				if pieceOwns(e.pieces, piece, p.Pos) {
					r.POIs = append(r.POIs, p)
				}
			}
			out = append(out, r)
		}
	}

	// Cross-pool POI dedup: core's candidate dedup assumes one POI ID
	// appears in only one trust pool, so drop from tainted pieces any
	// POI an untainted piece already vouches for (the untrusted copy
	// adds nothing).
	trusted := make(map[int64]bool)
	for _, r := range out {
		if !r.Tainted {
			for _, p := range r.POIs {
				trusted[p.ID] = true
			}
		}
	}
	for i := range out {
		if !out[i].Tainted {
			continue
		}
		kept := out[i].POIs[:0]
		for _, p := range out[i].POIs {
			if !trusted[p.ID] {
				kept = append(kept, p)
			}
		}
		out[i].POIs = kept
	}
	return out, rep
}

// pieceOwns reports whether piece is the first piece in pieces (closed)
// containing pos — the tiebreak that keeps a boundary POI from being
// duplicated across adjacent subtraction pieces.
func pieceOwns(pieces []geom.Rect, piece geom.Rect, pos geom.Point) bool {
	for _, p := range pieces {
		if p.Empty() {
			continue
		}
		if p.Contains(pos) {
			return p == piece
		}
	}
	return false
}
