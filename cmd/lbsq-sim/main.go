// Command lbsq-sim runs a single configuration of the full system model
// (Section 4.1) and prints the resulting statistics. It defaults to a
// density-preserving 5-mile scale of the chosen Table 3 parameter set;
// pass -side 20 for the paper's full 20-mile area (the Los Angeles set
// then simulates all 93,300 vehicles).
//
// Usage:
//
//	lbsq-sim [-set la|suburbia|riverside] [-kind knn|window]
//	         [-tx meters] [-cache n] [-k n] [-window pct]
//	         [-side miles] [-hours h] [-step sec] [-seed n]
//	         [-min-speed mph] [-max-speed mph]
//	         [-policy direction|lru] [-approx] [-baseline] [-selfcheck]
//	         [-hops n] [-clusters n] [-prefill n]
//	         [-loss p] [-req-loss p] [-reply-loss p] [-corrupt p]
//	         [-stale-rate p] [-retries n]
//	         [-deadline-slots n] [-breaker-threshold n]
//	         [-breaker-cooldown n] [-churn-rate p]
//	         [-byzantine-rate p] [-attack profile] [-audit-rate p]
//	         [-update-rate n] [-ir-period sec] [-ir-window n]
//	         [-vr-ttl sec] [-ir-discard]
//	         [-burst-good-loss p] [-burst-bad-loss p]
//	         [-burst-good-slots n] [-burst-bad-slots n]
//	         [-blackout-period sec] [-blackout-duration sec] [-degraded]
//	         [-continuous-rate n] [-continuous-naive]
//	         [-crowd-rate n] [-crowd-radius miles] [-crowd-x miles]
//	         [-crowd-y miles] [-crowd-start sec] [-crowd-duration sec]
//	         [-queue-cap n] [-retry-budget n] [-admission-rate n]
//	         [-admission-burst n] [-governed] [-governor-floor p]
//	         [-coalesce-radius miles]
//	         [-json] [-grid faults] [-parallel n]
//	         [-metrics] [-metrics-out file] [-metrics-listen addr]
//
// The metrics flags drive the observability layer (internal/metrics):
// -metrics enables the in-process registry (per-phase span histograms,
// outcome counters, latency/tuning/fan-out distributions) and embeds the
// final snapshot in -json output; -metrics-out additionally writes the
// snapshot as Prometheus text exposition; -metrics-listen serves live
// /metrics plus net/http/pprof profiles while the run progresses. All
// observed quantities are simulated (slots, work units), so metrics are
// deterministic under -seed, and a metrics-off run is bit-identical to a
// build without the layer.
//
// -grid faults replaces the single run with the standard in-process
// fault/resilience benchmark grid (the `make bench` cells): loss rates
// {0, 0.05, 0.1, 0.2} with and without the resilient lifecycle, each
// cell self-checked, one JSONL row per cell on stdout. -parallel sets
// the grid worker count (0 = GOMAXPROCS, 1 = serial); every worker
// count emits identical rows apart from wall_seconds, because each cell
// owns its seeded world (internal/sweep's determinism contract). -side
// and -hours scale the grid cells; all other flags are ignored in grid
// mode.
//
// The fault flags drive the fault-injection layer (internal/faults):
// -loss is broadcast packet/index loss, -req-loss and -reply-loss are the
// ad-hoc request and reply loss rates, -corrupt is the reply
// damage rate (split evenly between truncation and bit corruption),
// -stale-rate is the fraction of shared verified regions silently
// invalidated by the POI-update process, and -retries bounds request
// re-broadcasts. All fault runs are deterministic under -seed.
//
// The resilience flags drive the adaptive query lifecycle (DESIGN.md §8):
// -deadline-slots is the per-query P2P slot budget (exceeding it abandons
// peer collection and falls back to the channel), -breaker-threshold and
// -breaker-cooldown configure the per-peer circuit breakers (consecutive
// failures to trip; quarantine cycles), and -churn-rate lets peers power
// off/on and drift out of range mid-collection. Any nonzero resilience
// flag replaces the blind retry loop with capped exponential backoff plus
// seeded jitter, retrying only unanswered peers; all-zero resilience
// flags reproduce the seed behavior bit-identically.
//
// The trust flags drive the Byzantine-resilience layer (DESIGN.md §11):
// -byzantine-rate makes that fraction of hosts lie about their cached
// regions with the -attack profile (fabricate, omit, inflate, shift, or
// the cycling mix), and -audit-rate arms the defense — cross-validation
// of overlapping regions, on-air spot audits priced into query latency,
// and reputation-driven quarantine wired into the circuit breakers.
// With -audit-rate 0 the lies go unscreened (the paper's honest-peer
// assumption fails open: -selfcheck then demonstrates verified-wrong
// answers); with it on, lies degrade answers to the probabilistic or
// broadcast path but never produce a verified-wrong result.
//
// The consistency flags drive the dynamic-POI layer (DESIGN.md §12):
// -update-rate sets POI mutations per minute (insert/delete/move; 0
// keeps the database static and every output bit-identical to earlier
// builds), -ir-period is the invalidation-report broadcast period in
// simulated seconds (default 30 when updates are on), -ir-window is how
// many past epochs each IR frame retains (default 8; hosts further
// behind demote their caches instead of repairing them), -vr-ttl expires
// cached verified regions after that many seconds (usable without
// -update-rate), and -ir-discard replaces surgical reconciliation with
// whole-region discard (the ablation EXPERIMENTS.md compares against).
// The legacy -stale-rate fault is re-expressed through this layer when
// updates are on: an injector-stale region is treated as superseded
// beyond the IR horizon (demoted, not silently wrong).
//
// The channel-impairment flags drive the correlated-failure model
// (DESIGN.md §13): -burst-bad-loss arms a seeded two-state
// Gilbert–Elliott chain whose bad state adds that much ad-hoc frame
// loss on top of the Bernoulli knobs (-burst-good-loss is the good
// state's residue; -burst-good-slots/-burst-bad-slots the geometric
// dwell means in broadcast slots), and -blackout-period/-blackout-
// duration schedule per-MH broadcast-downlink outages. -degraded
// replaces the naive wait-out-the-blackout stall with the fallback
// ladder (full → P2P-only → on-air-only → own-cache with an explicit
// staleness bound). All channel flags at zero is bit-identical to a
// build without the layer. Rate flags are validated at parse time:
// NaN, infinite, negative, or out-of-range values are rejected with
// the flag's name instead of being clamped silently.
//
// The continuous flags drive the standing-query layer (DESIGN.md §15):
// -continuous-rate registers that many continuous subscriptions per
// minute — moving hosts holding a standing kNN or window query,
// maintained every tick. Each exact answer carries a safe-exit radius
// derived from the verified-region boundary and the result-flip
// boundaries; while the host stays inside it the standing answer is
// provably current at zero channel cost, and only crossing it (or an
// invalidation/TTL taint) triggers a full re-verification.
// -continuous-naive disables the safe region and re-verifies every tick
// (the comparison baseline). -continuous-rate 0 is bit-identical to a
// build without the layer.
//
// The crowd/overload flags drive flash-crowd survival (DESIGN.md §16):
// -crowd-rate injects a hotspot query burst (that many extra queries per
// minute at the peak of a sin²-ramped window; -crowd-radius/-crowd-x/
// -crowd-y place the hotspot disk, -crowd-start/-crowd-duration the
// window — zeros pick the area center and mid-run). The demand-side
// controls bound the amplification a crowd can cause: -queue-cap limits
// each peer's per-tick service (the next band answers with an explicit
// BUSY frame, never a breaker strike), -retry-budget caps per-tick
// request re-broadcasts system-wide, -admission-rate/-admission-burst
// run per-MH token buckets that shed one-shot queries to the
// broadcast-only path, -governed/-governor-floor arm the load governor
// (sheds one-shots while the answered-in-budget ratio sits below the
// floor; continuous subscriptions keep priority), and -coalesce-radius
// lets co-located same-tick queries share one screened peer gather.
// All-zero crowd/overload flags are bit-identical to a build without
// the plane.
//
// -json suppresses the human-readable report and emits one machine-
// readable JSON object (configuration + full statistics) on stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"lbsq/internal/cache"
	"lbsq/internal/faults"
	"lbsq/internal/metrics"
	"lbsq/internal/perf"
	"lbsq/internal/sim"
	"lbsq/internal/sweep"
	"lbsq/internal/trace"
)

func main() {
	var (
		set       = flag.String("set", "la", "parameter set: la, suburbia, riverside")
		kind      = flag.String("kind", "knn", "query kind: knn or window")
		tx        = flag.Float64("tx", 0, "transmission range in meters (0 = preset value)")
		cacheSize = flag.Int("cache", 0, "cache capacity in POIs (0 = preset value)")
		k         = flag.Int("k", 0, "mean number of nearest neighbors (0 = preset value)")
		window    = flag.Float64("window", 0, "mean window size in percent (0 = preset value)")
		side      = flag.Float64("side", 5, "service area side in miles")
		hours     = flag.Float64("hours", 0.5, "simulated hours")
		step      = flag.Float64("step", 10, "time step in seconds")
		seed      = flag.Int64("seed", 42, "random seed")
		minSpeed  = flag.Float64("min-speed", 0, "minimum vehicle speed in mph (0 = preset value)")
		maxSpeed  = flag.Float64("max-speed", 0, "maximum vehicle speed in mph (0 = preset value)")
		policy    = flag.String("policy", "direction", "cache policy: direction or lru")
		approx    = flag.Bool("approx", true, "accept approximate SBNN answers (correctness > 50%)")
		baseline  = flag.Bool("baseline", false, "also price every query with the plain on-air algorithms")
		selfcheck = flag.Bool("selfcheck", false, "verify every exact result against the R-tree ground truth")
		hops      = flag.Int("hops", 1, "ad-hoc sharing hops (1 = the paper's single-hop)")
		clusters  = flag.Int("clusters", 0, "POI Gaussian-mixture cluster count (0 = uniform field)")
		types     = flag.Int("types", 1, "independent POI data types (cache capacity applies per type)")
		prefill   = flag.Float64("prefill", 10, "mean historical queries pre-filling each host cache (0 disables)")
		traceFile = flag.String("trace", "", "write one JSONL event per counted query to this file")
		owncache  = flag.Bool("owncache", false, "let hosts consult their own caches (off isolates peer sharing)")
		loss      = flag.Float64("loss", 0, "broadcast packet/index loss rate [0, 0.95]")
		reqLoss   = flag.Float64("req-loss", 0, "P2P request loss rate per peer [0, 0.95]")
		replyLoss = flag.Float64("reply-loss", 0, "P2P reply loss rate [0, 0.95]")
		corrupt   = flag.Float64("corrupt", 0, "P2P reply damage rate, half truncation half bit flips [0, 0.95]")
		staleRate = flag.Float64("stale-rate", 0, "fraction of shared verified regions silently invalidated [0, 0.95]")
		retries   = flag.Int("retries", 0, "request re-broadcast budget (0 = default when faults are on)")
		deadline  = flag.Int("deadline-slots", 0, "per-query P2P slot budget; exceeding it falls back to the channel (0 = no deadline)")
		brThresh  = flag.Int("breaker-threshold", 0, "consecutive peer failures that trip its circuit breaker (0 = breakers off)")
		brCool    = flag.Int64("breaker-cooldown", 0, "breaker quarantine in collection cycles (0 = default 8 when breakers on)")
		churn     = flag.Float64("churn-rate", 0, "per-peer per-round probability of powering off/on mid-collection [0, 0.95]")
		byzRate   = flag.Float64("byzantine-rate", 0, "fraction of hosts that lie about their cached regions [0, 1]")
		attack    = flag.String("attack", "", "byzantine attack profile: fabricate, omit, inflate, shift, mix (default mix when -byzantine-rate > 0)")
		auditRate = flag.Float64("audit-rate", 0, "probability one peer contribution is spot-audited against the channel [0, 1]; 0 disables the trust layer")
		updRate   = flag.Float64("update-rate", 0, "POI mutations per minute (insert/delete/move); 0 keeps the database static")
		irPeriod  = flag.Float64("ir-period", 0, "invalidation-report broadcast period in seconds (0 = default 30 when -update-rate > 0)")
		irWindow  = flag.Int("ir-window", 0, "epochs each invalidation report retains (0 = default 8; older caches demote)")
		vrTTL     = flag.Float64("vr-ttl", 0, "cached verified-region time-to-live in seconds (0 = no expiry)")
		irDiscard = flag.Bool("ir-discard", false, "discard whole superseded regions instead of surgically reconciling them (ablation)")
		bGoodLoss = flag.Float64("burst-good-loss", 0, "extra ad-hoc frame loss in the Gilbert–Elliott good state [0, 1]")
		bBadLoss  = flag.Float64("burst-bad-loss", 0, "extra ad-hoc frame loss in the Gilbert–Elliott bad (fade) state [0, 1]; 0 disarms the chain")
		bGoodDur  = flag.Float64("burst-good-slots", 0, "mean good-state dwell in broadcast slots (0 = default 9× bad dwell)")
		bBadDur   = flag.Float64("burst-bad-slots", 0, "mean bad-state dwell in broadcast slots (0 = default 1)")
		boPeriod  = flag.Float64("blackout-period", 0, "per-MH broadcast-downlink blackout period in seconds (0 = no blackouts)")
		boDur     = flag.Float64("blackout-duration", 0, "blackout window length in seconds (0 = default period/10)")
		degraded  = flag.Bool("degraded", false, "arm the degraded-mode query planner (fallback ladder instead of naive stalls)")
		contRate  = flag.Float64("continuous-rate", 0, "continuous-subscription registrations per minute (0 = no standing queries)")
		contNaive = flag.Bool("continuous-naive", false, "re-verify standing queries every tick instead of using safe regions (baseline)")
		crowdRate = flag.Float64("crowd-rate", 0, "flash-crowd peak query rate per minute injected inside the hotspot (0 = no crowd)")
		crowdRad  = flag.Float64("crowd-radius", 0, "hotspot disk radius in miles (0 = area/10 when the crowd is armed)")
		crowdX    = flag.Float64("crowd-x", 0, "hotspot center x in miles (0 = area center)")
		crowdY    = flag.Float64("crowd-y", 0, "hotspot center y in miles (0 = area center)")
		crowdStrt = flag.Float64("crowd-start", 0, "burst window start in simulated seconds (0 = mid-run)")
		crowdDur  = flag.Float64("crowd-duration", 0, "burst window length in seconds (0 = 10% of the run)")
		queueCap  = flag.Int("queue-cap", 0, "per-peer per-tick service queue capacity; overflow answers BUSY (0 = unbounded)")
		retryBud  = flag.Int("retry-budget", 0, "per-tick system-wide request re-broadcast budget (0 = unbudgeted)")
		admRate   = flag.Float64("admission-rate", 0, "per-MH admission tokens accrued per second; empty buckets shed to broadcast (0 = admit all)")
		admBurst  = flag.Int("admission-burst", 0, "admission token-bucket depth (0 = default 4 when -admission-rate > 0)")
		governed  = flag.Bool("governed", false, "arm the load governor (sheds one-shots while answered-in-budget sits below the floor)")
		govFloor  = flag.Float64("governor-floor", 0, "answered-in-budget ratio below which the governor engages [0, 1] (0 = default 0.9)")
		coalesce  = flag.Float64("coalesce-radius", 0, "co-located same-tick queries within this many miles share one peer gather (0 = off)")
		jsonOut   = flag.Bool("json", false, "emit one JSON object (config + full Stats) on stdout instead of the report")
		grid      = flag.String("grid", "", "run a benchmark grid instead of a single configuration: 'faults'")
		parallel  = flag.Int("parallel", 0, "grid worker count (0 = GOMAXPROCS, 1 = serial; rows identical either way)")
		metricsOn = flag.Bool("metrics", false, "enable the observability layer (counters, gauges, per-phase histograms)")
		mxOut     = flag.String("metrics-out", "", "write the final metrics snapshot as Prometheus text exposition to this file (implies -metrics)")
		mxListen  = flag.String("metrics-listen", "", "serve /metrics and /debug/pprof on this address while the run progresses (implies -metrics)")
		tickWork  = flag.Int("tick-workers", 1, "per-tick query execution workers (1 = the serial seed path, 0 = GOMAXPROCS; results identical either way)")
	)
	flag.Parse()

	// Rate and duration flags are checked here, at parse time, so a typo
	// like -loss -0.1 or -churn-rate NaN dies with the flag's name instead
	// of being silently clamped by Normalized() deep in the stack.
	if err := checkRates([]rateFlag{
		{"loss", *loss, faults.MaxRate},
		{"req-loss", *reqLoss, faults.MaxRate},
		{"reply-loss", *replyLoss, faults.MaxRate},
		{"corrupt", *corrupt, faults.MaxRate},
		{"stale-rate", *staleRate, faults.MaxRate},
		{"churn-rate", *churn, faults.MaxRate},
		{"byzantine-rate", *byzRate, 1},
		{"audit-rate", *auditRate, 1},
		{"burst-good-loss", *bGoodLoss, 1},
		{"burst-bad-loss", *bBadLoss, 1},
		{"burst-good-slots", *bGoodDur, 0},
		{"burst-bad-slots", *bBadDur, 0},
		{"blackout-period", *boPeriod, 0},
		{"blackout-duration", *boDur, 0},
		{"update-rate", *updRate, 0},
		{"ir-period", *irPeriod, 0},
		{"vr-ttl", *vrTTL, 0},
		{"continuous-rate", *contRate, 0},
		{"crowd-rate", *crowdRate, 0},
		{"crowd-radius", *crowdRad, 0},
		{"crowd-x", *crowdX, 0},
		{"crowd-y", *crowdY, 0},
		{"crowd-start", *crowdStrt, 0},
		{"crowd-duration", *crowdDur, 0},
		{"admission-rate", *admRate, 0},
		{"governor-floor", *govFloor, 1},
		{"coalesce-radius", *coalesce, 0},
		{"min-speed", *minSpeed, 0},
		{"max-speed", *maxSpeed, 0},
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *grid != "" {
		if *grid != "faults" {
			fmt.Fprintf(os.Stderr, "unknown grid %q (supported: faults)\n", *grid)
			os.Exit(2)
		}
		reports, err := perf.RunFaultGrid(sweep.Workers(*parallel), *side, *hours)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		for _, rep := range reports {
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	var p sim.Params
	switch strings.ToLower(*set) {
	case "la":
		p = sim.LACity()
	case "suburbia":
		p = sim.SyntheticSuburbia()
	case "riverside":
		p = sim.RiversideCounty()
	default:
		fmt.Fprintf(os.Stderr, "unknown parameter set %q\n", *set)
		os.Exit(2)
	}

	p = p.Scaled(*side).WithDuration(*hours)
	p.TimeStepSec = *step
	p.Seed = *seed
	p.AcceptApproximate = *approx
	switch strings.ToLower(*kind) {
	case "knn":
		p.Kind = sim.KNNQuery
	case "window":
		p.Kind = sim.WindowQuery
	default:
		fmt.Fprintf(os.Stderr, "unknown query kind %q\n", *kind)
		os.Exit(2)
	}
	if *tx > 0 {
		p.TxRangeMeters = *tx
	}
	if *cacheSize > 0 {
		p.CacheSize = *cacheSize
	}
	if *k > 0 {
		p.K = *k
	}
	if *window > 0 {
		p.WindowPct = *window
	}
	if *minSpeed > 0 {
		p.MinSpeedMph = *minSpeed
	}
	if *maxSpeed > 0 {
		p.MaxSpeedMph = *maxSpeed
	}
	if strings.ToLower(*policy) == "lru" {
		p.CachePolicy = cache.LRU
	}
	p.SharingHops = *hops
	p.POIClusters = *clusters
	p.POITypes = *types
	p.PrefillQueriesPerHost = *prefill
	p.UseOwnCache = *owncache
	p.Faults.BroadcastLoss = *loss
	p.Faults.RequestLoss = *reqLoss
	p.Faults.ReplyLoss = *replyLoss
	p.Faults.ReplyTruncate = *corrupt / 2
	p.Faults.ReplyCorrupt = *corrupt / 2
	p.Faults.StaleRate = *staleRate
	p.Faults.MaxRetries = *retries
	p.Faults.ChurnRate = *churn
	p.Faults.ByzantineRate = *byzRate
	if *attack != "" {
		a, err := faults.ParseAttack(*attack)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		p.Faults.Attack = a
	}
	p.Faults.BurstGoodLoss = *bGoodLoss
	p.Faults.BurstBadLoss = *bBadLoss
	p.Faults.BurstGoodSlots = *bGoodDur
	p.Faults.BurstBadSlots = *bBadDur
	p.Faults.BlackoutPeriodSec = *boPeriod
	p.Faults.BlackoutDurationSec = *boDur
	p.DegradedMode = *degraded
	p.AuditRate = *auditRate
	p.UpdateRate = *updRate
	p.IRPeriodSec = *irPeriod
	p.IRWindow = *irWindow
	p.VRTTLSec = *vrTTL
	p.IRDiscard = *irDiscard
	if p.UpdateRate > 0 {
		// Mirror the sim defaults so the reports below show the values
		// actually simulated.
		if p.IRPeriodSec == 0 {
			p.IRPeriodSec = 30
		}
		if p.IRWindow == 0 {
			p.IRWindow = 8
		}
	}
	p.ContinuousRate = *contRate
	p.ContinuousNaive = *contNaive
	p.CrowdRate = *crowdRate
	p.CrowdRadiusMiles = *crowdRad
	p.CrowdCenterXMiles = *crowdX
	p.CrowdCenterYMiles = *crowdY
	p.CrowdStartSec = *crowdStrt
	p.CrowdDurationSec = *crowdDur
	p.PeerQueueCap = *queueCap
	p.RetryBudget = *retryBud
	p.AdmissionRate = *admRate
	p.AdmissionBurst = *admBurst
	p.Governed = *governed
	p.GovernorFloor = *govFloor
	p.CoalesceRadiusMiles = *coalesce
	p.DeadlineSlots = *deadline
	p.BreakerThreshold = *brThresh
	p.BreakerCooldown = *brCool
	p.Metrics = *metricsOn || *mxOut != "" || *mxListen != ""
	p.TickWorkers = sweep.Workers(*tickWork)

	w, err := sim.NewWorld(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w.CompareBaseline = *baseline
	w.BaselineSampleRate = 1
	w.SelfCheck = *selfcheck
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w.Trace = trace.NewWriter(f)
		defer w.Trace.Flush()
	}

	if !*jsonOut {
		fmt.Printf("%s — %s queries, %.1f-mile area, %d hosts, %d POIs, %.0f queries/min\n",
			p.Name, p.Kind, p.AreaMiles, p.MHNumber, p.POINumber, p.QueryRate)
		fmt.Printf("tx=%.0fm cache=%d k=%d window=%.1f%% policy=%v duration=%.2fh seed=%d\n\n",
			p.TxRangeMeters, p.CacheSize, p.K, p.WindowPct, p.CachePolicy, p.DurationHours, p.Seed)
	}

	if *mxListen != "" {
		// Live observability: /metrics serves the latest published
		// snapshot (immutable, so no lock touches the simulation
		// goroutine) and /debug/pprof exposes the runtime profiles on the
		// same mux.
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler(w.Metrics()))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*mxListen, mux); err != nil {
				fmt.Fprintf(os.Stderr, "metrics listener: %v\n", err)
			}
		}()
		if !*jsonOut {
			fmt.Printf("serving /metrics and /debug/pprof on %s\n\n", *mxListen)
		}
	}

	start := time.Now()
	var stats sim.Stats
	if reg := w.Metrics(); reg != nil {
		// Publish a fresh snapshot after every simulation step so the
		// HTTP endpoint tracks the run; the hook only reads, so the
		// trajectory is identical to a plain Run.
		stats = w.RunTick(func() { reg.Publish() })
	} else {
		stats = w.Run()
	}
	elapsed := time.Since(start)

	if err := w.SelfCheckErr(); err != nil {
		fmt.Fprintf(os.Stderr, "SELF-CHECK FAILED: %v\n", err)
		os.Exit(1)
	}

	if *mxOut != "" {
		if err := writeMetrics(*mxOut, w.Metrics()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		rep := sim.NewReport(p, stats, *selfcheck, elapsed.Seconds())
		if reg := w.Metrics(); reg != nil {
			snap := reg.Snapshot()
			rep.Metrics = &snap
		}
		emitJSON(rep)
		return
	}

	fmt.Printf("queries counted (post warm-up): %d\n", stats.Queries)
	fmt.Printf("  resolved by SBNN/SBWQ (verified): %6.1f%%\n", stats.VerifiedPct())
	if p.Kind == sim.KNNQuery {
		fmt.Printf("  resolved by approximate SBNN:     %6.1f%%\n", stats.ApproximatePct())
	}
	fmt.Printf("  resolved by broadcast channel:    %6.1f%%\n", stats.BroadcastPct())
	fmt.Printf("\nmean reachable peers per query: %.1f\n", stats.AvgPeers())
	fmt.Printf("P2P traffic: %d requests, %d replies, %.0f bytes/query\n",
		stats.PeerRequests, stats.PeerReplies, stats.AvgPeerBytes())
	if stats.Broadcast > 0 {
		fmt.Printf("\nchannel cost (broadcast-resolved queries):\n")
		fmt.Printf("  mean access latency: %.1f slots\n", stats.AvgLatencySlots())
		fmt.Printf("  mean tuning time:    %.1f slots\n", stats.AvgTuningSlots())
		fmt.Printf("  packets read / skipped by search bounds: %d / %d\n",
			stats.PacketsRead, stats.PacketsSkipped)
	}
	fmt.Printf("mean system latency over all queries: %.1f slots\n", stats.MeanSystemLatencySlots())
	if stats.FaultEvents() > 0 || stats.PeerRetries > 0 {
		fmt.Printf("\nfault injection (deterministic under -seed %d):\n", p.Seed)
		fmt.Printf("  requests unheard:              %d (retries: %d)\n",
			stats.RequestsUnheard, stats.PeerRetries)
		fmt.Printf("  replies dropped / rejected:    %d / %d (CRC or structure)\n",
			stats.RepliesDropped, stats.RepliesRejected)
		fmt.Printf("  stale regions discarded:       %d\n", stats.StaleVRs)
		fmt.Printf("  packet / index re-receptions:  %d / %d (extra cycle or replica waits)\n",
			stats.Retransmissions, stats.IndexRetries)
	}
	if stats.ResilienceEvents() > 0 {
		fmt.Printf("\nresilient lifecycle (deadline=%d slots, breaker=%d/%d, churn=%.2f):\n",
			p.DeadlineSlots, p.BreakerThreshold, p.BreakerCooldown, p.Faults.ChurnRate)
		fmt.Printf("  deadline aborts:               %d (backoff spent: %d slots)\n",
			stats.DeadlineAborts, stats.BackoffSlots)
		fmt.Printf("  breaker trips / short-circuits / recoveries: %d / %d / %d\n",
			stats.BreakerTrips, stats.BreakerShortCircuits, stats.BreakerRecoveries)
		fmt.Printf("  churn departures / returns:    %d / %d (wasted retries: %d)\n",
			stats.ChurnDepartures, stats.ChurnReturns, stats.WastedRetries)
	}
	if stats.TrustEvents() > 0 || stats.ByzantineLies > 0 {
		fmt.Printf("\ntrust layer (byzantine=%.2f attack=%v audit=%.2f):\n",
			p.Faults.ByzantineRate, p.Faults.Normalized().Attack, p.AuditRate)
		fmt.Printf("  byzantine lies told:           %d\n", stats.ByzantineLies)
		fmt.Printf("  audits run / failed:           %d / %d (cost: %d slots)\n",
			stats.AuditsRun, stats.AuditFailures, stats.AuditSlots)
		fmt.Printf("  cross-validation conflicts:    %d\n", stats.ConflictsDetected)
		fmt.Printf("  peers quarantined:             %d (area: %.2f sq mi)\n",
			stats.PeersQuarantined, stats.QuarantinedArea)
	}
	if stats.ConsistencyEvents() > 0 {
		fmt.Printf("\nconsistency layer (update-rate=%.2f/min ir-period=%.0fs ir-window=%d vr-ttl=%.0fs discard=%v):\n",
			p.UpdateRate, p.IRPeriodSec, p.IRWindow, p.VRTTLSec, p.IRDiscard)
		fmt.Printf("  POI updates applied:           %d (%d IR broadcasts)\n",
			stats.POIUpdates, stats.IRBroadcasts)
		fmt.Printf("  IR listens:                    %d (%d slots, %d replica waits)\n",
			stats.IRListens, stats.IRListenSlots, stats.IRListenRetries)
		fmt.Printf("  VRs reconciled / demoted / discarded: %d / %d / %d\n",
			stats.VRsReconciled, stats.VRsDemoted, stats.VRsDiscarded)
		fmt.Printf("  VRs expired (TTL):             %d\n", stats.VRsExpired)
		fmt.Printf("  stale verdicts (amnestied):    %d\n", stats.StaleVerdicts)
	}
	if stats.ChannelEvents() > 0 || stats.AnsweredInBudget > 0 {
		fmt.Printf("\nchannel impairment (burst=%.2f@%g/%g slots blackout=%gs/%gs degraded=%v):\n",
			p.Faults.BurstBadLoss, p.Faults.BurstBadSlots, p.Faults.BurstGoodSlots,
			p.Faults.BlackoutDurationSec, p.Faults.BlackoutPeriodSec, p.DegradedMode)
		fmt.Printf("  burst frame losses / transitions: %d / %d\n",
			stats.BurstFrameLosses, stats.BurstTransitions)
		fmt.Printf("  blackout stalls:               %d queries (%d dead-air slots, %d recoveries)\n",
			stats.BlackoutQueries, stats.BlackoutWaitSlots, stats.BlackoutRecoveries)
		fmt.Printf("  IR listens deferred (dark downlink): %d\n", stats.IRDeferred)
		fmt.Printf("  fade-suppressed breaker strikes: %d\n", stats.FadeSuppressedStrikes)
		if p.DegradedMode {
			fmt.Printf("  fallback rungs p2p-only / onair-only / own-cache: %d / %d / %d (%d switch slots)\n",
				stats.ModeP2POnly, stats.ModeOnAirOnly, stats.ModeOwnCache, stats.ModeSwitchSlots)
			fmt.Printf("  degraded / unanswered:         %d / %d (worst staleness bound: %ds)\n",
				stats.Degraded, stats.Unanswered, stats.StaleBoundMaxSec)
		}
		fmt.Printf("  answered in budget:            %.1f%%\n", stats.AnsweredInBudgetPct())
	}
	if stats.ContinuousEvents() > 0 {
		fmt.Printf("\ncontinuous queries (rate=%.2f/min naive=%v):\n",
			p.ContinuousRate, p.ContinuousNaive)
		fmt.Printf("  subscriptions registered:      %d\n", stats.Subscriptions)
		fmt.Printf("  safe-region hits / reverifies: %d / %d (fraction %.2f)\n",
			stats.SafeRegionHits, stats.Reverifies, stats.ReverifyFraction())
		fmt.Printf("  reverify reasons exit / taint / unverified / naive: %d / %d / %d / %d\n",
			stats.ReverifyExits, stats.ReverifyTaints, stats.ReverifyUnverified, stats.ReverifyNaive)
		fmt.Printf("  degraded answers:              %d (maintenance cost: %d slots)\n",
			stats.ContDegraded, stats.ContSlots)
	}
	if stats.OverloadEvents() > 0 {
		fmt.Printf("\noverload plane (crowd=%.0f/min queue-cap=%d retry-budget=%d admission=%.2f/s governed=%v coalesce=%.2fmi):\n",
			p.CrowdRate, p.PeerQueueCap, p.RetryBudget, p.AdmissionRate,
			p.Governed, p.CoalesceRadiusMiles)
		fmt.Printf("  crowd queries injected:        %d\n", stats.CrowdQueries)
		fmt.Printf("  busy replies / queue drops:    %d / %d (never breaker strikes)\n",
			stats.BusyReplies, stats.QueueDrops)
		fmt.Printf("  queries shed to broadcast:     %d (admission: %d, governor: %d)\n",
			stats.Shed, stats.AdmissionDenied, stats.GovernorSheds)
		fmt.Printf("  governor engaged:              %d ticks\n", stats.GovernorEngagedTicks)
		fmt.Printf("  retry budget exhaustions:      %d\n", stats.RetryBudgetExhausted)
		fmt.Printf("  coalesced gathers:             %d\n", stats.Coalesced)
		fmt.Printf("  goodput:                       %.1f%%\n", stats.GoodputPct())
	}
	if *baseline && stats.BaselineSampled > 0 {
		base := stats.BaselineMeanLatencySlots()
		fmt.Printf("\nplain on-air baseline: %.1f slots/query (%d sampled)\n",
			base, stats.BaselineSampled)
		if base > 0 {
			fmt.Printf("latency reduction from sharing: %.1f%%\n",
				100*(1-stats.MeanSystemLatencySlots()/base))
		}
	}
	if *selfcheck {
		fmt.Println("\nself-check: every exact result matched the R-tree ground truth")
	}
	if *traceFile != "" {
		fmt.Printf("trace: %d events written to %s\n", w.Trace.Count(), *traceFile)
	}
	if *mxOut != "" {
		fmt.Printf("metrics: snapshot written to %s\n", *mxOut)
	}
	fmt.Printf("\nwall time %.1fs\n", elapsed.Seconds())
}

// rateFlag is one float flag bounded to [0, max] (max 0 = no upper
// bound, just non-negative and finite).
type rateFlag struct {
	name string
	v    float64
	max  float64
}

// checkRates rejects NaN, infinite, negative, or out-of-range values
// with the offending flag's name, so misconfigurations die at parse
// time instead of being clamped silently downstream.
func checkRates(flags []rateFlag) error {
	for _, f := range flags {
		switch {
		case math.IsNaN(f.v):
			return fmt.Errorf("-%s: NaN is not a rate", f.name)
		case math.IsInf(f.v, 0):
			return fmt.Errorf("-%s: value must be finite", f.name)
		case f.v < 0:
			return fmt.Errorf("-%s: negative value %v", f.name, f.v)
		case f.max > 0 && f.v > f.max:
			return fmt.Errorf("-%s: %v exceeds maximum %v", f.name, f.v, f.max)
		}
	}
	return nil
}

// writeMetrics dumps the final registry snapshot as Prometheus text
// exposition (format 0.0.4) — deterministic for a fixed seed.
func writeMetrics(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func emitJSON(rep sim.Report) {
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
