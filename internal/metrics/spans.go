package metrics

// Phase identifies one stage of the sharing-based query lifecycle — the
// span taxonomy every instrumented layer reports through. Costs are
// deterministic simulated quantities, never wall time:
//
//	p2p_collect    broadcast slots spent gathering peer replies (retry
//	               backoff of the resilient lifecycle; 0 on the legacy
//	               blind loop, whose exchanges are modeled instantaneous)
//	mvr_merge      work units: peer verified regions merged into the MVR
//	nnv_verify     work units: candidate POIs pushed through Lemma 3.1/3.2
//	               verification
//	onair_tune     broadcast slots actively listened on the channel
//	onair_download broadcast slots from the query instant until the last
//	               required packet arrived (access latency)
type Phase uint8

const (
	// PhaseP2PCollect is the peer-collection stage (internal/p2p + the
	// sim collection loop).
	PhaseP2PCollect Phase = iota
	// PhaseMVRMerge is the verified-region merge (internal/core NNV/SBWQ).
	PhaseMVRMerge
	// PhaseNNVVerify is candidate verification (internal/core NNV).
	PhaseNNVVerify
	// PhaseOnAirTune is active channel listening (internal/broadcast).
	PhaseOnAirTune
	// PhaseOnAirDownload is channel access latency (internal/broadcast).
	PhaseOnAirDownload
	// NumPhases is the size of the taxonomy; valid phases are < NumPhases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"p2p_collect",
	"mvr_merge",
	"nnv_verify",
	"onair_tune",
	"onair_download",
}

var phaseUnits = [NumPhases]string{
	"slots",
	"work",
	"work",
	"slots",
	"slots",
}

// String returns the snake_case span name used in metric names and
// trace fields.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Unit returns the phase's cost unit ("slots" or "work").
func (p Phase) Unit() string {
	if p < NumPhases {
		return phaseUnits[p]
	}
	return ""
}

// QuerySpans accumulates one query's per-phase costs. It is a plain
// fixed-size value designed to live inside a reused per-world scratch:
// Reset/Add/Get never allocate.
type QuerySpans struct {
	cost [NumPhases]int64
}

// Reset zeroes every span for the next query.
func (s *QuerySpans) Reset() { s.cost = [NumPhases]int64{} }

// Add accumulates v cost units into phase p (out-of-range phases are
// ignored; negative costs are a caller bug and dropped).
func (s *QuerySpans) Add(p Phase, v int64) {
	if p < NumPhases && v > 0 {
		s.cost[p] += v
	}
}

// Get returns the accumulated cost of phase p.
func (s *QuerySpans) Get(p Phase) int64 {
	if p < NumPhases {
		return s.cost[p]
	}
	return 0
}

// PhaseSet bundles one registered histogram per query phase, so a whole
// QuerySpans record is observed with a single allocation-free call.
type PhaseSet struct {
	hist [NumPhases]*Histogram
}

// NewPhaseSet registers the five per-phase histograms under
// prefix_phase_<name>_<unit> (slot-valued phases get SlotBuckets,
// work-valued phases WorkBuckets) and returns the bundle.
func NewPhaseSet(r *Registry, prefix string) *PhaseSet {
	ps := &PhaseSet{}
	for p := Phase(0); p < NumPhases; p++ {
		bounds := SlotBuckets()
		if p.Unit() == "work" {
			bounds = WorkBuckets()
		}
		ps.hist[p] = r.Histogram(
			prefix+"_phase_"+p.String()+"_"+p.Unit(),
			"per-query cost of the "+p.String()+" span",
			p.Unit(), bounds)
	}
	return ps
}

// Observe records every phase of one query's span record.
func (ps *PhaseSet) Observe(s *QuerySpans) {
	for p := Phase(0); p < NumPhases; p++ {
		ps.hist[p].ObserveInt(s.cost[p])
	}
}

// Histogram returns the underlying histogram of one phase (nil for
// out-of-range phases).
func (ps *PhaseSet) Histogram(p Phase) *Histogram {
	if p < NumPhases {
		return ps.hist[p]
	}
	return nil
}
