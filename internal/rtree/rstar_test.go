package rtree

import (
	"math/rand"
	"testing"

	"lbsq/internal/geom"
)

func TestRStarVariantLabel(t *testing.T) {
	if NewRStar(8).Variant() != "rstar" {
		t.Error("NewRStar variant label wrong")
	}
	if New(8).Variant() != "guttman" {
		t.Error("New variant label wrong")
	}
}

func TestRStarKNNVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 800, 100)
	tr := NewRStar(8)
	for _, it := range items {
		tr.Insert(it)
	}
	if tr.Len() != 800 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 50; trial++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		k := 1 + rng.Intn(12)
		got := tr.KNN(q, k)
		want := bruteKNN(items, q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Pos.Dist(q) != want[i].Pos.Dist(q) {
				t.Fatalf("trial %d: rank %d mismatch", trial, i)
			}
		}
	}
}

func TestRStarWindowVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randomItems(rng, 600, 50)
	tr := NewRStar(6)
	for _, it := range items {
		tr.Insert(it)
	}
	for trial := 0; trial < 60; trial++ {
		a := geom.Pt(rng.Float64()*50, rng.Float64()*50)
		b := geom.Pt(rng.Float64()*50, rng.Float64()*50)
		w := geom.NewRect(a.X, a.Y, b.X, b.Y)
		if !sameIDSet(tr.Window(w), bruteWindow(items, w)) {
			t.Fatalf("trial %d: window mismatch", trial)
		}
	}
}

func TestRStarDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randomItems(rng, 300, 30)
	tr := NewRStar(6)
	for _, it := range items {
		tr.Insert(it)
	}
	for _, it := range items[:150] {
		if !tr.Delete(it.ID, it.Pos) {
			t.Fatalf("Delete(%d) failed", it.ID)
		}
	}
	if tr.Len() != 150 {
		t.Fatalf("Len = %d", tr.Len())
	}
	q := geom.Pt(15, 15)
	got := tr.KNN(q, 5)
	want := bruteKNN(items[150:], q, 5)
	for i := range got {
		if got[i].Pos.Dist(q) != want[i].Pos.Dist(q) {
			t.Fatal("post-delete KNN mismatch")
		}
	}
}

// TestRStarQualityBeatsGuttman: on a clustered workload (where split
// quality matters), the R* tree touches no more nodes per window query
// than the Guttman tree, on average.
func TestRStarQualityBeatsGuttman(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Clustered points: 12 Gaussian blobs.
	var items []Item
	for c := 0; c < 12; c++ {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		for i := 0; i < 150; i++ {
			items = append(items, Item{
				ID:  int64(len(items)),
				Pos: geom.Pt(cx+rng.NormFloat64()*3, cy+rng.NormFloat64()*3),
			})
		}
	}
	g := New(8)
	r := NewRStar(8)
	for _, it := range items {
		g.Insert(it)
		r.Insert(it)
	}
	var gTouched, rTouched int
	probe := rand.New(rand.NewSource(5))
	const trials = 200
	for i := 0; i < trials; i++ {
		cx, cy := probe.Float64()*95, probe.Float64()*95
		w := geom.NewRect(cx, cy, cx+5, cy+5)
		gTouched += g.NodesTouchedByWindow(w)
		rTouched += r.NodesTouchedByWindow(w)
		// Both must agree with each other on results.
		if !sameIDSet(g.Window(w), r.Window(w)) {
			t.Fatalf("trial %d: trees disagree", i)
		}
	}
	if float64(rTouched) > float64(gTouched)*1.05 {
		t.Errorf("R* touched %d nodes vs Guttman %d (expected no worse)",
			rTouched, gTouched)
	}
	t.Logf("window nodes touched: guttman=%d rstar=%d (%.1f%%)",
		gTouched, rTouched, 100*float64(rTouched)/float64(gTouched))
}

func TestRStarMixedWorkloadModelCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := NewRStar(6)
	model := map[int64]geom.Point{}
	nextID := int64(0)
	for step := 0; step < 1500; step++ {
		if len(model) == 0 || rng.Float64() < 0.6 {
			p := geom.Pt(rng.Float64()*20, rng.Float64()*20)
			tr.Insert(Item{ID: nextID, Pos: p})
			model[nextID] = p
			nextID++
		} else {
			var id int64
			for k := range model {
				id = k
				break
			}
			if !tr.Delete(id, model[id]) {
				t.Fatalf("step %d: delete %d failed", step, id)
			}
			delete(model, id)
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("size drift: tree=%d model=%d", tr.Len(), len(model))
	}
	var items []Item
	for id, p := range model {
		items = append(items, Item{ID: id, Pos: p})
	}
	q := geom.Pt(10, 10)
	got := tr.KNN(q, 8)
	want := bruteKNN(items, q, 8)
	for i := range got {
		if got[i].Pos.Dist(q) != want[i].Pos.Dist(q) {
			t.Fatal("final KNN mismatch")
		}
	}
}

func TestNodesTouchedEmptyTree(t *testing.T) {
	if NewRStar(8).NodesTouchedByWindow(geom.NewRect(0, 0, 1, 1)) != 0 {
		t.Error("empty tree touched nodes")
	}
}
