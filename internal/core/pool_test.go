package core

import (
	"math/rand"
	"reflect"
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// poolWorkload mirrors the perf harness fixture: a 500-POI field on a
// 32×32 area and 64 sound peers.
func poolWorkload() (geom.Point, []PeerData, *broadcast.Schedule) {
	rng := rand.New(rand.NewSource(2))
	db := make([]broadcast.POI, 500)
	for i := range db {
		db[i] = broadcast.POI{ID: int64(i), Pos: geom.Pt(rng.Float64()*32, rng.Float64()*32)}
	}
	peers := make([]PeerData, 0, 64)
	for i := 0; i < 64; i++ {
		cx, cy := 12+rng.Float64()*8, 12+rng.Float64()*8
		vr := geom.NewRect(cx, cy, cx+3+rng.Float64()*4, cy+3+rng.Float64()*4)
		pd := PeerData{VR: vr, Tainted: i%7 == 3}
		for _, p := range db {
			if vr.Contains(p.Pos) {
				pd.POIs = append(pd.POIs, p)
			}
		}
		peers = append(peers, pd)
	}
	sched, err := broadcast.NewSchedule(db, broadcast.Config{Area: geom.NewRect(0, 0, 32, 32)})
	if err != nil {
		panic(err)
	}
	return geom.Pt(16, 16), peers, sched
}

// prebuiltMVR builds a RectUnion holding the untainted VRs of peers via
// the incremental Insert path — how the tick engine materializes a
// memoized MVR.
func prebuiltMVR(peers []PeerData) *geom.RectUnion {
	u := &geom.RectUnion{}
	for _, p := range peers {
		if !p.Tainted {
			u.Insert(p.VR)
		}
	}
	return u
}

func sameNNV(t *testing.T, tag string, a, b NNVResult) {
	t.Helper()
	if a.EdgeDist != b.EdgeDist || a.InsideMVR != b.InsideMVR ||
		a.Candidates != b.Candidates || a.Merged != b.Merged ||
		a.Examined != b.Examined || a.TaintedCandidates != b.TaintedCandidates {
		t.Fatalf("%s: scalar fields differ:\n a=%+v\n b=%+v", tag, a, b)
	}
	if !reflect.DeepEqual(a.Heap.Entries(), b.Heap.Entries()) {
		t.Fatalf("%s: heap entries differ", tag)
	}
}

func sameSBNN(t *testing.T, tag string, a, b SBNNResult) {
	t.Helper()
	if a.Outcome != b.Outcome || a.Bounds != b.Bounds || a.Access != b.Access ||
		a.KnownRegion != b.KnownRegion || a.Merged != b.Merged ||
		a.Examined != b.Examined || a.TaintedCandidates != b.TaintedCandidates {
		t.Fatalf("%s: scalar fields differ:\n a=%+v\n b=%+v", tag, a, b)
	}
	if !reflect.DeepEqual(a.POIs, b.POIs) || !reflect.DeepEqual(a.Known, b.Known) ||
		!reflect.DeepEqual(a.Heap.Entries(), b.Heap.Entries()) {
		t.Fatalf("%s: slices differ", tag)
	}
}

func sameSBWQ(t *testing.T, tag string, a, b SBWQResult) {
	t.Helper()
	if a.Outcome != b.Outcome || a.CoveredFraction != b.CoveredFraction ||
		a.Access != b.Access || a.KnownRegion != b.KnownRegion ||
		a.Merged != b.Merged || a.Examined != b.Examined {
		t.Fatalf("%s: scalar fields differ:\n a=%+v\n b=%+v", tag, a, b)
	}
	if !reflect.DeepEqual(a.POIs, b.POIs) || !reflect.DeepEqual(a.Known, b.Known) ||
		!reflect.DeepEqual(a.ReducedWindows, b.ReducedWindows) {
		t.Fatalf("%s: slices differ", tag)
	}
}

// TestScratchMVRVariantsMatch pins the memo-key soundness the tick
// engine relies on: running a kernel against a prebuilt external MVR
// (built incrementally, in any member order) is bit-identical to the
// classic scratch path that rebuilds the MVR per query.
func TestScratchMVRVariantsMatch(t *testing.T) {
	q, peers, sched := poolWorkload()
	cfg := SBNNConfig{K: 5, Lambda: 0.5, AcceptApproximate: true, MinCorrectness: 0.5}
	win := geom.NewRect(14, 14, 18, 18)

	var s1, s2 Scratch
	mvr := prebuiltMVR(peers)

	sameNNV(t, "nnv",
		NNVScratch(&s1, q, peers, 5, 0.5),
		NNVScratchMVR(&s2, mvr, true, q, peers, 5, 0.5))
	sameSBNN(t, "sbnn",
		SBNNScratch(&s1, q, peers, cfg, sched, 99),
		SBNNScratchMVR(&s2, mvr, true, q, peers, cfg, sched, 99))
	sameSBWQ(t, "sbwq",
		SBWQScratch(&s1, q, win, peers, SBWQConfig{}, sched, 42),
		SBWQScratchMVR(&s2, mvr, true, q, win, peers, SBWQConfig{}, sched, 42))

	// Delta-chain style: morph the prebuilt MVR to a different peer
	// subset via Remove/Insert and compare against a fresh run.
	subset := make([]PeerData, 0, len(peers))
	for i, p := range peers {
		if i%3 != 0 {
			subset = append(subset, p)
		}
	}
	for i, p := range peers {
		if i%3 == 0 && !p.Tainted {
			if !mvr.Remove(p.VR) {
				t.Fatalf("delta Remove(%v) failed", p.VR)
			}
		}
	}
	sameSBNN(t, "sbnn-delta",
		SBNNScratch(&s1, q, subset, cfg, sched, 7),
		SBNNScratchMVR(&s2, mvr, true, q, subset, cfg, sched, 7))
	sameSBWQ(t, "sbwq-delta",
		SBWQScratch(&s1, q, win, subset, SBWQConfig{}, sched, 7),
		SBWQScratchMVR(&s2, mvr, true, q, win, subset, SBWQConfig{}, sched, 7))
}

// TestNNVColdAllocGate gates the pooled cold-start path: once the
// scratch pool is warm, a cold-entry NNV call must stay within the
// copy-out allocations (heap clone, MVR clone) instead of the dozens a
// fresh Scratch used to cost.
func TestNNVColdAllocGate(t *testing.T) {
	q, peers, _ := poolWorkload()
	for i := 0; i < 4; i++ {
		NNV(q, peers, 5, 0.5) // warm the pool
	}
	avg := testing.AllocsPerRun(200, func() {
		NNV(q, peers, 5, 0.5)
	})
	t.Logf("nnv cold path: %.2f allocs/op", avg)
	// Expected steady state is 4 (Heap struct + entries, RectUnion
	// struct + rects); 8 leaves headroom for a GC emptying the pool
	// mid-measurement without letting the old 52-alloc profile back in.
	if avg > 8 {
		t.Errorf("pooled NNV cold path costs %.1f allocs/op, want <= 8", avg)
	}
}
