package geom

import (
	"math/rand"
	"testing"
)

func benchUnion(n int, seed int64) (*RectUnion, Point) {
	rng := rand.New(rand.NewSource(seed))
	rects := make([]Rect, n)
	for i := range rects {
		cx, cy := rng.Float64()*20, rng.Float64()*20
		rects[i] = NewRect(cx, cy, cx+0.5+rng.Float64()*2, cy+0.5+rng.Float64()*2)
	}
	u := NewRectUnion(rects...)
	// A probe point inside some member.
	p := rects[0].Center()
	return u, p
}

func BenchmarkClearance16(b *testing.B) {
	u, p := benchUnion(16, 1)
	u.Boundary() // warm the cache once; per-query cost includes it below
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.BoundaryDist(p)
	}
}

func BenchmarkBoundaryBuild64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u, _ := benchUnion(64, int64(i))
		if len(u.Boundary()) == 0 {
			b.Fatal("empty boundary")
		}
	}
}

func BenchmarkDisjointDecompose64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u, _ := benchUnion(64, int64(i))
		if len(u.Disjoint()) == 0 {
			b.Fatal("empty decomposition")
		}
	}
}

func BenchmarkCircleRectArea(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	rects := make([]Rect, 256)
	for i := range rects {
		cx, cy := rng.Float64()*10-5, rng.Float64()*10-5
		rects[i] = NewRect(cx, cy, cx+1+rng.Float64()*3, cy+1+rng.Float64()*3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CircleRectArea(Pt(0, 0), 3, rects[i%len(rects)])
	}
}

func BenchmarkUnverifiedArea32(b *testing.B) {
	u, p := benchUnion(32, 3)
	u.Disjoint() // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.UnverifiedArea(p, 2.5)
	}
}

func BenchmarkSubtractRect(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	covers := make([]Rect, 24)
	for i := range covers {
		cx, cy := rng.Float64()*10, rng.Float64()*10
		covers[i] = NewRect(cx, cy, cx+1+rng.Float64()*2, cy+1+rng.Float64()*2)
	}
	w := NewRect(2, 2, 9, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SubtractRect(w, covers)
	}
}
