// Package lbsq is a from-scratch reproduction of "Location-based Spatial
// Queries with Data Sharing in Wireless Broadcast Environments" (Ku,
// Zimmermann, Wang; ICDE 2007): sharing-based processing of k-nearest-
// neighbor and window queries by mobile hosts that combine cached results
// from single-hop peers with a Hilbert-indexed (1, m) wireless broadcast
// channel.
//
// The package is a façade over the internal subsystems:
//
//   - Server wraps the POI database and its broadcast schedule (the base
//     station of the paper's system model).
//   - Client is one mobile host: it runs SBNN/SBWQ queries against its
//     peers' shared caches, falls back to the broadcast channel with
//     search-bound packet filtering, and maintains its own sound verified
//     cache to share onward.
//   - NewSimulation and the Table 3 presets (LACity, SyntheticSuburbia,
//     RiversideCounty) drive the full system model used to regenerate the
//     paper's figures.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package lbsq

import (
	"fmt"

	"lbsq/internal/broadcast"
	"lbsq/internal/cache"
	"lbsq/internal/core"
	"lbsq/internal/faults"
	"lbsq/internal/geom"
	"lbsq/internal/sim"
)

// Re-exported vocabulary types. Aliases keep the public API and the
// internal packages structurally identical.
type (
	// Point is a location in the plane (miles in the simulator).
	Point = geom.Point
	// Rect is a closed axis-aligned rectangle (an MBR).
	Rect = geom.Rect
	// RectUnion is a union of rectangles — the merged verified region.
	RectUnion = geom.RectUnion
	// POI is a point of interest.
	POI = broadcast.POI
	// PeerData is one shared verified region with its POIs.
	PeerData = core.PeerData
	// Outcome classifies how a query was resolved.
	Outcome = core.Outcome
	// Heap is the NNV result heap (Table 2 of the paper).
	Heap = core.Heap
	// HeapEntry is one heap row.
	HeapEntry = core.Entry
	// HeapState is the six-state classification of Section 3.3.3.
	HeapState = core.State
	// SBNNResult is the outcome of a sharing-based kNN query.
	SBNNResult = core.SBNNResult
	// SBWQResult is the outcome of a sharing-based window query.
	SBWQResult = core.SBWQResult
	// SBNNConfig parameterizes SBNN.
	SBNNConfig = core.SBNNConfig
	// Access is a broadcast channel cost record.
	Access = broadcast.Access
	// Bounds are on-air search bounds derived from partial results.
	Bounds = broadcast.Bounds
	// BroadcastConfig parameterizes the (1, m) air index.
	BroadcastConfig = broadcast.Config
	// Params is a full simulation parameter set (Table 4).
	Params = sim.Params
	// FaultProfile configures the fault-injection layer (lossy ad-hoc
	// channels, broadcast packet loss, stale peer caches). The zero value
	// is the paper's ideal substrate.
	FaultProfile = faults.Profile
	// Stats aggregates simulation statistics.
	Stats = sim.Stats
	// World is a running simulation.
	World = sim.World
	// CachePolicy selects the client cache replacement policy.
	CachePolicy = cache.Policy
)

// Re-exported constants.
const (
	OutcomeVerified    = core.OutcomeVerified
	OutcomeApproximate = core.OutcomeApproximate
	OutcomeBroadcast   = core.OutcomeBroadcast

	CachePolicyDirectionDistance = cache.DirectionDistance
	CachePolicyLRU               = cache.LRU

	// KNNQuery / WindowQuery select the simulated workload.
	KNNQuery    = sim.KNNQuery
	WindowQuery = sim.WindowQuery

	// MetersPerMile converts radio ranges to world units.
	MetersPerMile = sim.MetersPerMile
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewRect constructs a normalized Rect from two opposite corners.
func NewRect(x1, y1, x2, y2 float64) Rect { return geom.NewRect(x1, y1, x2, y2) }

// RectAround returns the square of half-side r centered at c.
func RectAround(c Point, r float64) Rect { return geom.RectAround(c, r) }

// CorrectnessProbability is Lemma 3.2: e^(-lambda·area).
func CorrectnessProbability(lambda, area float64) float64 {
	return core.CorrectnessProbability(lambda, area)
}

// LACity, SyntheticSuburbia and RiversideCounty are the Table 3 presets.
func LACity() Params            { return sim.LACity() }
func SyntheticSuburbia() Params { return sim.SyntheticSuburbia() }
func RiversideCounty() Params   { return sim.RiversideCounty() }

// NewSimulation builds the full system model of Section 4.1.
func NewSimulation(p Params) (*World, error) { return sim.NewWorld(p) }

// Server is the wireless information server: the POI database and the
// broadcast channel it operates.
type Server struct {
	area   Rect
	db     []POI
	sched  *broadcast.Schedule
	lambda float64
}

// NewServer builds a server broadcasting the given POIs over the service
// area. cfg.Area is overridden with the provided area; zero-valued fields
// of cfg take the documented defaults.
func NewServer(area Rect, pois []POI, cfg BroadcastConfig) (*Server, error) {
	if area.Empty() {
		return nil, fmt.Errorf("lbsq: empty service area")
	}
	cfg.Area = area
	sched, err := broadcast.NewSchedule(pois, cfg)
	if err != nil {
		return nil, err
	}
	return &Server{
		area:   area,
		db:     append([]POI(nil), pois...),
		sched:  sched,
		lambda: float64(len(pois)) / area.Area(),
	}, nil
}

// Area returns the service area.
func (s *Server) Area() Rect { return s.area }

// POIs returns the broadcast database.
func (s *Server) POIs() []POI { return s.db }

// Schedule exposes the broadcast schedule.
func (s *Server) Schedule() *broadcast.Schedule { return s.sched }

// POIDensity returns the database density (POIs per square unit) — the
// lambda of the correctness model.
func (s *Server) POIDensity() float64 { return s.lambda }

// Client is one mobile host: a position, a bounded verified cache, and a
// local clock on the broadcast slot timeline.
type Client struct {
	server  *Server
	pos     Point
	heading Point
	cache   *cache.Cache
	nowSlot int64

	// AcceptApproximate lets KNN accept approximate full heaps.
	AcceptApproximate bool
	// MinCorrectness is the approximate acceptance threshold (default
	// 0.5, the paper's experimental setting).
	MinCorrectness float64
	// DisableOwnCache stops the client from consulting its own cached
	// verified regions before its peers'. By default a host's own cache
	// is its nearest peer — a motorist re-asking a question shortly
	// after moving re-verifies the previous answer locally.
	DisableOwnCache bool
}

// NewClient creates a client at pos with the given cache capacity (in
// POIs, the paper's CSize).
func NewClient(server *Server, pos Point, cacheCapacity int) *Client {
	return &Client{
		server:         server,
		pos:            pos,
		cache:          cache.New(cacheCapacity, cache.DirectionDistance),
		MinCorrectness: 0.5,
	}
}

// Pos returns the client's position.
func (c *Client) Pos() Point { return c.pos }

// MoveTo relocates the client; the heading used by the cache replacement
// policy follows the movement direction.
func (c *Client) MoveTo(p Point) {
	d := p.Sub(c.pos)
	if n := d.Norm(); n > 0 {
		c.heading = d.Scale(1 / n)
	}
	c.pos = p
}

// AdvanceSlots moves the client's broadcast clock forward.
func (c *Client) AdvanceSlots(n int64) {
	if n > 0 {
		c.nowSlot += n
	}
}

// NowSlot returns the client's position on the broadcast slot timeline.
func (c *Client) NowSlot() int64 { return c.nowSlot }

// CacheSize returns the number of POIs currently cached.
func (c *Client) CacheSize() int { return c.cache.Size() }

// Share returns the client's cached verified regions as PeerData — what
// it answers a peer's cache request with.
func (c *Client) Share() []PeerData {
	regions := c.cache.Regions()
	out := make([]PeerData, 0, len(regions))
	for _, r := range regions {
		out = append(out, PeerData{VR: r.Rect, POIs: r.POIs})
	}
	return out
}

// KNN runs the sharing-based k-nearest-neighbor query (Algorithm 2) from
// the client's position using the peers' shared data, falling back to the
// broadcast channel when verification cannot fulfil it. The client's
// clock advances by the access latency and its cache absorbs the verified
// knowledge gained.
func (c *Client) KNN(k int, peers []PeerData) SBNNResult {
	cfg := SBNNConfig{
		K:                 k,
		Lambda:            c.server.lambda,
		AcceptApproximate: c.AcceptApproximate,
		MinCorrectness:    c.MinCorrectness,
	}
	res := core.SBNN(c.pos, c.withOwnCache(peers), cfg, c.server.sched, c.nowSlot)
	c.absorb(res.KnownRegion, res.Known)
	c.nowSlot += res.Access.Latency
	return res
}

// Window runs the sharing-based window query (Algorithm 3) for window w.
func (c *Client) Window(w Rect, peers []PeerData) SBWQResult {
	res := core.SBWQ(c.pos, w, c.withOwnCache(peers), c.server.sched, c.nowSlot)
	c.absorb(w, res.POIs)
	c.nowSlot += res.Access.Latency
	return res
}

// withOwnCache prepends the client's own verified regions to the peer
// data unless disabled.
func (c *Client) withOwnCache(peers []PeerData) []PeerData {
	if c.DisableOwnCache || c.cache.Size() == 0 {
		return peers
	}
	return append(c.Share(), peers...)
}

// absorb stores gained verified knowledge in the client cache.
func (c *Client) absorb(region Rect, pois []POI) {
	if region.Empty() {
		return
	}
	c.cache.Insert(cache.Region{Rect: region, POIs: pois},
		c.pos, c.heading, c.nowSlot)
}
