package core

import (
	"math/rand"
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// TestByzantinePeerCanPoisonVerification documents the trust model: NNV
// treats every shared verified region as a true promise (Section 3.2's
// honest-peer assumption). A peer that claims a region while omitting a
// POI inside it makes the querying host "verify" a wrong nearest
// neighbor — the failure the soundness invariant exists to prevent on
// the honest path. This is a property of the paper's design, not a bug
// in this implementation; defenses (signatures, spot-checking against
// the channel) are future work the paper does not address.
func TestByzantinePeerCanPoisonVerification(t *testing.T) {
	// Database: the true NN of q=(5,5) is o1 at (5,6).
	db := []broadcast.POI{
		{ID: 1, Pos: geom.Pt(5, 6)},
		{ID: 2, Pos: geom.Pt(5, 8)},
	}
	// The lying peer claims to know [0,10]² but omits o1.
	liar := PeerData{
		VR:   geom.NewRect(0, 0, 10, 10),
		POIs: []broadcast.POI{db[1]},
	}
	res := NNV(geom.Pt(5, 5), []PeerData{liar}, 1, 0.1)
	es := res.Heap.Entries()
	if len(es) != 1 {
		t.Fatalf("heap len = %d", len(es))
	}
	// The wrong POI o2 is "verified": distance 3 <= clearance 5.
	if !es[0].Verified || es[0].POI.ID != 2 {
		t.Fatalf("expected the lie to verify o2; got %+v", es[0])
	}
}

// TestHonestPeersCannotPoison is the converse: with sound peers, no
// composition of regions can verify a wrong answer (randomized check).
func TestHonestPeersCannotPoison(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 300; trial++ {
		n := 10 + rng.Intn(40)
		db := make([]broadcast.POI, n)
		for i := range db {
			db[i] = broadcast.POI{ID: int64(i), Pos: geom.Pt(rng.Float64()*10, rng.Float64()*10)}
		}
		var peers []PeerData
		for i := 0; i < rng.Intn(5); i++ {
			cx, cy := rng.Float64()*10, rng.Float64()*10
			vr := geom.NewRect(cx, cy, cx+rng.Float64()*5, cy+rng.Float64()*5)
			pd := PeerData{VR: vr}
			for _, p := range db {
				if vr.Contains(p.Pos) {
					pd.POIs = append(pd.POIs, p)
				}
			}
			peers = append(peers, pd)
		}
		q := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		res := NNV(q, peers, 1, 0.3)
		if res.Heap.VerifiedCount() == 0 {
			continue
		}
		got := res.Heap.Entries()[0]
		bestD := -1.0
		for _, p := range db {
			if d := p.Pos.Dist(q); bestD < 0 || d < bestD {
				bestD = d
			}
		}
		if got.Dist != bestD {
			t.Fatalf("trial %d: honest peers verified a wrong NN (d=%v true=%v)",
				trial, got.Dist, bestD)
		}
	}
}
