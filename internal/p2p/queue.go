package p2p

// Peer-side backpressure: a bounded per-peer service queue (DESIGN.md
// §16). A mobile host answering cache requests has finite service
// capacity per tick — CPU for the cache scan plus channel slots for the
// reply. Under a flash crowd thousands of co-located queriers hit the
// same few peers; without a bound each peer would "serve" unbounded
// work, which is exactly the metastable-collapse input. The queue gives
// every peer an explicit admission decision:
//
//   - the first Cap requests in a tick are served normally;
//   - the next busyBandFactor×Cap are refused with an explicit BUSY
//     frame on the wire (wire.Busy) — cheap, CRC-protected, and telling
//     the querier "overloaded, not broken";
//   - anything beyond that is dropped silently: a peer saturated past
//     the busy band cannot spend slots even on refusals.
//
// The queue is per-tick state: Reset clears it at every tick boundary,
// so capacity is a rate (requests per peer per tick), not a lifetime
// total. All decisions are deterministic functions of arrival order —
// no randomness — so armed runs stay reproducible and tick-worker
// identical (admission happens in the serial draw phase).

// ServiceVerdict classifies one admission decision of a peer's bounded
// service queue.
type ServiceVerdict int

const (
	// ServeOK: the request was admitted and the peer answers normally.
	ServeOK ServiceVerdict = iota
	// ServeBusy: the queue is full; the peer sends an explicit BUSY
	// backpressure frame instead of a data reply.
	ServeBusy
	// ServeDrop: the peer is saturated past the busy band and sheds the
	// request silently.
	ServeDrop
)

// busyBandFactor sizes the refusal band: a peer sends BUSY frames for up
// to busyBandFactor×Cap requests beyond its service capacity before it
// stops responding entirely.
const busyBandFactor = 3

// ServiceQueue tracks per-peer admitted work within one tick.
type ServiceQueue struct {
	// Cap is the per-peer service capacity in requests per tick.
	Cap  int
	load map[int]int
}

// NewServiceQueue creates a queue with the given per-peer per-tick
// capacity. Capacity must be positive; the zero-knob path never
// constructs a queue at all.
func NewServiceQueue(capacity int) *ServiceQueue {
	return &ServiceQueue{Cap: capacity, load: make(map[int]int)}
}

// Reset clears all per-peer load at a tick boundary.
func (q *ServiceQueue) Reset() {
	clear(q.load)
}

// Admit records one request arriving at the given peer and returns the
// peer's admission decision for it.
func (q *ServiceQueue) Admit(peer int) ServiceVerdict {
	n := q.load[peer]
	q.load[peer] = n + 1
	switch {
	case n < q.Cap:
		return ServeOK
	case n < q.Cap*(1+busyBandFactor):
		return ServeBusy
	default:
		return ServeDrop
	}
}

// Load returns the number of requests the peer has received this tick.
func (q *ServiceQueue) Load(peer int) int { return q.load[peer] }
