package faults

import (
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// claimIsMaterialLie mirrors the audit's view of a claim: given the
// truthful (vr, pois) and the claimed (cvr, cpois), the claim is a
// material lie iff it contains a POI the truth does not (wrong existence
// or position), or it omits a truthful POI that lies inside the claimed
// region (a false "verified empty" assertion over that spot).
func claimIsMaterialLie(vr geom.Rect, pois []broadcast.POI, cvr geom.Rect, cpois []broadcast.POI) bool {
	truth := make(map[broadcast.POI]bool, len(pois))
	for _, p := range pois {
		truth[p] = true
	}
	for _, p := range cpois {
		if !truth[p] {
			return true
		}
	}
	claimed := make(map[broadcast.POI]bool, len(cpois))
	for _, p := range cpois {
		claimed[p] = true
	}
	for _, p := range pois {
		if cvr.Contains(p.Pos) && !claimed[p] {
			return true
		}
	}
	return false
}

func testClaim() (geom.Rect, []broadcast.POI) {
	vr := geom.NewRect(2, 3, 12, 9)
	pois := []broadcast.POI{
		{ID: 1, Pos: geom.Pt(3, 4)},
		{ID: 2, Pos: geom.Pt(7, 5)},
		{ID: 3, Pos: geom.Pt(11, 8)},
	}
	return vr, pois
}

func TestAttackClaimAlwaysMaterial(t *testing.T) {
	attacks := []Attack{AttackFabricate, AttackOmit, AttackInflate, AttackShift, AttackMix}
	for _, a := range attacks {
		for seed := int64(1); seed <= 50; seed++ {
			in := New(seed, Profile{ByzantineRate: 0.5, Attack: a})
			vr, pois := testClaim()
			cvr, cpois := in.AttackClaim(vr, pois, a)
			if !claimIsMaterialLie(vr, pois, cvr, cpois) {
				t.Fatalf("attack %v seed %d: claim not materially false\n vr=%v pois=%v\ncvr=%v cpois=%v",
					a, seed, vr, pois, cvr, cpois)
			}
			if got := in.Counters.ByzantineLies; got != 1 {
				t.Fatalf("attack %v: ByzantineLies = %d, want 1", a, got)
			}
		}
	}
}

// Attacks that would be vacuously true on an empty POI set must fall back
// to fabrication rather than emit an honest claim.
func TestAttackClaimEmptyPOIFallback(t *testing.T) {
	vr := geom.NewRect(0, 0, 4, 4)
	for _, a := range []Attack{AttackOmit, AttackShift, AttackFabricate, AttackInflate} {
		in := New(7, Profile{ByzantineRate: 1, Attack: a})
		cvr, cpois := in.AttackClaim(vr, nil, a)
		if !claimIsMaterialLie(vr, nil, cvr, cpois) {
			t.Fatalf("attack %v on empty POI set: claim not material (cvr=%v cpois=%v)", a, cvr, cpois)
		}
		if len(cpois) == 0 {
			t.Fatalf("attack %v on empty POI set: no fabricated POI", a)
		}
		for _, p := range cpois {
			if p.ID < FabricatedIDBase {
				t.Fatalf("attack %v: fabricated POI has real-range ID %d", a, p.ID)
			}
		}
	}
}

// A degenerate (zero-extent) VR must still produce material lies: shift
// needs a displacement floor and inflate needs a growth floor.
func TestAttackClaimDegenerateVR(t *testing.T) {
	vr := geom.NewRect(5, 5, 5, 5)
	pois := []broadcast.POI{{ID: 9, Pos: geom.Pt(5, 5)}}
	for _, a := range []Attack{AttackShift, AttackInflate, AttackFabricate, AttackOmit} {
		in := New(11, Profile{ByzantineRate: 1, Attack: a})
		cvr, cpois := in.AttackClaim(vr, pois, a)
		if !claimIsMaterialLie(vr, pois, cvr, cpois) {
			t.Fatalf("attack %v on degenerate VR: claim not material (cvr=%v cpois=%v)", a, cvr, cpois)
		}
	}
}

func TestAttackClaimDoesNotMutateInput(t *testing.T) {
	for _, a := range []Attack{AttackFabricate, AttackOmit, AttackInflate, AttackShift, AttackMix} {
		in := New(3, Profile{ByzantineRate: 1, Attack: a})
		vr, pois := testClaim()
		orig := append([]broadcast.POI(nil), pois...)
		for i := 0; i < 8; i++ {
			in.AttackClaim(vr, pois, a)
		}
		for i := range orig {
			if pois[i] != orig[i] {
				t.Fatalf("attack %v mutated input POI %d: %v -> %v", a, i, orig[i], pois[i])
			}
		}
	}
}

func TestAttackClaimNilAndNoneIdentity(t *testing.T) {
	vr, pois := testClaim()
	var nilIn *Injector
	cvr, cpois := nilIn.AttackClaim(vr, pois, AttackFabricate)
	if cvr != vr || &cpois[0] != &pois[0] {
		t.Fatal("nil injector AttackClaim is not the identity")
	}
	in := New(1, Profile{})
	cvr, cpois = in.AttackClaim(vr, pois, AttackNone)
	if cvr != vr || &cpois[0] != &pois[0] || in.Counters.ByzantineLies != 0 {
		t.Fatal("AttackNone is not the identity")
	}
}

// AttackMix must cycle deterministically through all four concrete lies.
func TestAttackMixCycles(t *testing.T) {
	in := New(5, Profile{ByzantineRate: 1, Attack: AttackMix})
	vr, pois := testClaim()
	sawInflate, sawOmit := false, false
	for i := 0; i < 4; i++ {
		cvr, cpois := in.AttackClaim(vr, pois, AttackMix)
		if cvr != vr {
			sawInflate = true
		}
		if len(cpois) < len(pois) {
			sawOmit = true
		}
	}
	if !sawInflate || !sawOmit {
		t.Fatalf("mix cycle missed attacks: inflate=%v omit=%v", sawInflate, sawOmit)
	}
	if in.Counters.ByzantineLies != 4 {
		t.Fatalf("ByzantineLies = %d, want 4", in.Counters.ByzantineLies)
	}
}

func TestAttackClaimDeterministic(t *testing.T) {
	run := func() ([]geom.Rect, [][]broadcast.POI) {
		in := New(42, Profile{ByzantineRate: 0.3, Attack: AttackMix})
		var rects []geom.Rect
		var sets [][]broadcast.POI
		vr, pois := testClaim()
		for i := 0; i < 16; i++ {
			cvr, cpois := in.AttackClaim(vr, pois, AttackMix)
			rects = append(rects, cvr)
			sets = append(sets, cpois)
		}
		return rects, sets
	}
	r1, s1 := run()
	r2, s2 := run()
	for i := range r1 {
		if r1[i] != r2[i] || len(s1[i]) != len(s2[i]) {
			t.Fatalf("claim %d diverged across identical seeds", i)
		}
		for j := range s1[i] {
			if s1[i][j] != s2[i][j] {
				t.Fatalf("claim %d POI %d diverged: %v vs %v", i, j, s1[i][j], s2[i][j])
			}
		}
	}
}

func TestParseAttackRoundTrip(t *testing.T) {
	for _, a := range []Attack{AttackNone, AttackFabricate, AttackOmit, AttackInflate, AttackShift, AttackMix} {
		got, err := ParseAttack(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAttack(%q) = %v, %v; want %v", a.String(), got, err, a)
		}
	}
	if _, err := ParseAttack("bogus"); err == nil {
		t.Fatal("ParseAttack accepted bogus attack")
	}
	if a, err := ParseAttack(""); err != nil || a != AttackNone {
		t.Fatalf("ParseAttack(\"\") = %v, %v; want AttackNone", a, err)
	}
}

func TestByzantineProfileNormalizeValidate(t *testing.T) {
	p := Profile{ByzantineRate: 0.4}.Normalized()
	if p.Attack != AttackMix {
		t.Fatalf("Normalized did not default Attack to mix: %v", p.Attack)
	}
	p = Profile{Attack: AttackFabricate}.Normalized()
	if p.Attack != AttackNone {
		t.Fatalf("Normalized kept Attack %v with zero byzantine rate", p.Attack)
	}
	p = Profile{ByzantineRate: 1.7}.Normalized()
	if p.ByzantineRate != 1 {
		t.Fatalf("Normalized did not clamp ByzantineRate: %v", p.ByzantineRate)
	}
	p = Profile{ByzantineRate: -0.2}.Normalized()
	if p.ByzantineRate != 0 || p.Attack != AttackNone {
		t.Fatalf("Normalized mishandled negative rate: %+v", p)
	}
	if err := (Profile{ByzantineRate: 1.5}).Validate(); err == nil {
		t.Fatal("Validate accepted ByzantineRate > 1")
	}
	if err := (Profile{Attack: Attack(99)}).Validate(); err == nil {
		t.Fatal("Validate accepted unknown Attack")
	}
	if err := (Profile{ByzantineRate: 0.5, Attack: AttackShift}).Validate(); err != nil {
		t.Fatalf("Validate rejected valid byzantine profile: %v", err)
	}
	// Byzantine peers without channel faults must not flip the fault
	// layer's Enabled (it gates retries and the fault-path plumbing).
	if (Profile{ByzantineRate: 0.5, Attack: AttackMix}).Enabled() {
		t.Fatal("ByzantineRate alone flipped Profile.Enabled")
	}
}
