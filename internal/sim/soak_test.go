package sim

// Chaos soak harness: randomized fault/churn/resilience schedules across
// many seeds, with metamorphic invariants asserted after every run.
//
//	make soak            # the full sweep (SOAK_SCHEDULES=32)
//	go test -run Soak    # the default 20-schedule acceptance sweep
//
// Each schedule draws a random fault profile (loss, damage, staleness,
// churn), random resilience knobs (slot deadline, breaker threshold
// and cooldown, retry budget), and — on odd schedules — a byzantine
// attack profile with the audit defense armed, from its own seeded
// stream, runs a small dense world with SelfCheck on, and asserts:
//
// Every fourth schedule additionally arms the Gilbert–Elliott fading
// chain, every fifth a blackout schedule, and a third of the armed
// schedules run the degraded-mode planner (the rest stall naively), so
// correlated losses soak alongside every other mechanism. Every seventh
// schedule arms continuous subscriptions (some on the naive
// always-reverify baseline), so safe-region maintenance soaks against
// faults, byzantine attack, consistency churn, and channel impairments
// too. Every sixth schedule injects a hotspot flash crowd (most with
// the full overload-control stack, one uncontrolled), and every tenth
// arms the controls under plain background load, so admission,
// backpressure, retry budgets, the governor, and coalescing soak
// against everything else. The harness asserts:
//
//   - soundness: every exact result matched the R-tree ground truth, and
//     approximate results are only reported when the run accepts them;
//   - termination: every counted query ended in exactly one of
//     Verified / Approximate / Broadcast / Degraded / Unanswered;
//   - breaker liveness: the per-peer state machines satisfy their
//     invariants (no unbounded quarantine, no stuck states);
//   - counter causality: resilience counters are zero exactly when their
//     knob is zero, and recoveries never exceed trips;
//   - determinism: an identical-seed re-run produces identical Stats,
//     breaker state included.

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"lbsq/internal/faults"
)

// soakSchedules returns how many randomized schedules to run: the
// SOAK_SCHEDULES environment variable, or 20 (the acceptance floor),
// trimmed in -short mode.
func soakSchedules(t *testing.T) int {
	n := 20
	if v := os.Getenv("SOAK_SCHEDULES"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			t.Fatalf("bad SOAK_SCHEDULES %q", v)
		}
		n = parsed
	}
	if testing.Short() && n > 6 {
		n = 6
	}
	return n
}

// soakParams derives one randomized fault/churn/resilience schedule. The
// schedule index seeds both the knob draws and the world, so every
// schedule is reproducible in isolation.
func soakParams(schedule int) Params {
	rng := rand.New(rand.NewSource(0x50414b + int64(schedule)))
	p := LACity().Scaled(1.5).WithDuration(0.1)
	p.Seed = 7000 + int64(schedule)
	p.TimeStepSec = 10
	if schedule%3 == 2 {
		p.Kind = WindowQuery
	} else {
		p.Kind = KNNQuery
		p.AcceptApproximate = rng.Intn(2) == 0
	}

	p.Faults = faults.Profile{
		RequestLoss:   rng.Float64() * 0.5,
		ReplyLoss:     rng.Float64() * 0.3,
		ReplyTruncate: rng.Float64() * 0.15,
		ReplyCorrupt:  rng.Float64() * 0.15,
		BroadcastLoss: rng.Float64() * 0.2,
		StaleRate:     rng.Float64() * 0.2,
		ChurnRate:     0.05 + rng.Float64()*0.3,
		MaxRetries:    1 + rng.Intn(6),
	}
	p.DeadlineSlots = 4 + rng.Intn(24)
	p.BreakerThreshold = 2 + rng.Intn(4)
	p.BreakerCooldown = int64(2 + rng.Intn(12))

	// A slice of the schedules zeroes individual resilience knobs so the
	// harness also soaks the partial configurations (and their "counter
	// is zero when the knob is zero" contracts).
	switch schedule % 5 {
	case 1:
		p.Faults.ChurnRate = 0
	case 2:
		p.DeadlineSlots = 0
	case 3:
		p.BreakerThreshold = 0
		p.BreakerCooldown = 0
	}

	// Byzantine/trust schedules (drawn after every legacy knob so the
	// trust-free schedules keep their exact historical draws). Odd
	// schedules arm lying peers together with the audit defense — the
	// soundness assert in checkSoakInvariants then doubles as the
	// "SelfCheck stays green under attack" acceptance invariant. Lies are
	// never soaked without audits: that configuration fails open by
	// design and is pinned separately by TestByzantineNoTrustFailsOpen.
	if schedule%2 == 1 {
		p.PrefillQueriesPerHost = 5 // caches worth lying about from t=0
		p.Faults.ByzantineRate = rng.Float64() * 0.5
		p.Faults.Attack = faults.Attack(1 + rng.Intn(5))
		p.AuditRate = 0.25 + rng.Float64()*0.75
	}

	// Consistency schedules (drawn after every legacy knob so the
	// consistency-free schedules keep their exact historical draws).
	// Every third schedule arms the POI-update process — including odd
	// ones, so churn soaks together with byzantine attack and the
	// stale-vs-byzantine verdict split gets exercised; every ninth also
	// runs the whole-discard ablation. VR TTL arms independently on
	// multiples of six (it works without the update process).
	if schedule%3 == 0 {
		p.UpdateRate = 1 + rng.Float64()*8
		p.IRPeriodSec = 15 + rng.Float64()*30
		p.IRWindow = 2 + rng.Intn(10)
		p.UseOwnCache = true // soak the own-cache reconcile/demote path
		if schedule%9 == 0 {
			p.IRDiscard = true
		}
	}
	if schedule%6 == 0 {
		p.VRTTLSec = 60 + rng.Float64()*240
	}

	// Channel-impairment schedules (drawn after every legacy knob so the
	// impairment-free schedules keep their exact historical draws). Every
	// fourth schedule arms the Gilbert–Elliott fading chain — sometimes a
	// deep fade, sometimes merely lossy — and every fifth a blackout
	// schedule, offset so the combinations (and burst+byzantine,
	// blackout+consistency) occur too. A third of the armed schedules run
	// the fallback-ladder planner, the rest the naive stall, so both
	// regimes soak.
	if schedule%4 == 3 {
		p.Faults.BurstBadLoss = 0.6 + rng.Float64()*0.4
		p.Faults.BurstBadSlots = 100 + rng.Float64()*500
		p.Faults.BurstGoodSlots = 3 * p.Faults.BurstBadSlots
		p.Faults.BurstGoodLoss = rng.Float64() * 0.05
	}
	if schedule%5 == 4 {
		p.Faults.BlackoutPeriodSec = 40 + rng.Float64()*80
		p.Faults.BlackoutDurationSec = 10 + rng.Float64()*20
	}
	if (p.Faults.BurstEnabled() || p.Faults.BlackoutEnabled()) && schedule%3 == 1 {
		p.DegradedMode = true
	}

	// Continuous-subscription schedules (drawn after every legacy knob so
	// the continuous-free schedules keep their exact historical draws).
	// Every seventh schedule (offset 2) arms standing subscriptions, so
	// across a sweep they combine with byzantine attack (9), consistency
	// plus the discard ablation (9, 30), and burst fading (23). A third
	// of the armed schedules run the naive always-reverify baseline, the
	// rest the safe-region path.
	if schedule%7 == 2 {
		p.ContinuousRate = 0.5 + rng.Float64()*4
		p.ContinuousNaive = schedule%3 == 0
	}

	// Flash-crowd/overload schedules (drawn after every legacy knob so
	// crowd-free schedules keep their exact historical draws). Every
	// sixth schedule (offset 5) injects a hotspot burst; those arm the
	// full overload-control stack except every twelfth (offset 11),
	// which soaks the uncontrolled crowd. Every tenth schedule (offset
	// 9) arms the controls without a crowd, so the control plane also
	// soaks under plain background load (and combined with blackout at
	// 9, byzantine at 9 and 19, continuous at 9).
	crowd := schedule%6 == 5
	overloadCtl := (crowd && schedule%12 != 11) || schedule%10 == 9
	if crowd {
		p.CrowdRate = p.QueryRate * (4 + rng.Float64()*8)
		p.CrowdRadiusMiles = 0.2 + rng.Float64()*0.5
	}
	if overloadCtl {
		p.PeerQueueCap = 2 + rng.Intn(6)
		// Tight: a handful of retry rounds per tick, so exhaustion (and
		// its bounded-amplification contract) actually soaks.
		p.RetryBudget = 2 + rng.Intn(14)
		p.AdmissionRate = 0.05 + rng.Float64()*0.2
		p.AdmissionBurst = 2 + rng.Intn(6)
		p.Governed = true
		p.GovernorFloor = 0.6 + rng.Float64()*0.35
		p.CoalesceRadiusMiles = 0.15 + rng.Float64()*0.5
	}
	return p
}

// runSoakWorld builds and runs one schedule with self-checking on.
func runSoakWorld(t *testing.T, p Params) (*World, Stats) {
	t.Helper()
	w, err := NewWorld(p)
	if err != nil {
		t.Fatalf("schedule world: %v", err)
	}
	w.SelfCheck = true
	s := w.Run()
	return w, s
}

// checkSoakInvariants asserts the metamorphic invariants one soak run
// must satisfy regardless of its schedule.
func checkSoakInvariants(t *testing.T, p Params, w *World, s Stats) {
	t.Helper()

	// Soundness: exact results match ground truth under every schedule.
	if err := w.SelfCheckErr(); err != nil {
		t.Errorf("self-check failed: %v", err)
	}
	// Termination: every counted query ended in exactly one outcome
	// (Degraded and Unanswered only exist on the planner's channel-less
	// rungs; both stay zero on impairment-free schedules).
	if got := s.Verified + s.Approximate + s.Broadcast + s.Degraded + s.Unanswered; got != s.Queries {
		t.Errorf("outcomes %d != queries %d (verified=%d approx=%d broadcast=%d degraded=%d unanswered=%d)",
			got, s.Queries, s.Verified, s.Approximate, s.Broadcast, s.Degraded, s.Unanswered)
	}
	if s.Queries == 0 {
		t.Error("schedule ran zero queries")
	}
	// Approximate answers only appear when the run accepts them (and
	// never for window queries).
	if (p.Kind == WindowQuery || !p.AcceptApproximate) && s.Approximate != 0 {
		t.Errorf("unaccepted approximate answers reported: %d", s.Approximate)
	}

	// Breaker liveness and bookkeeping.
	if err := w.Breakers().CheckInvariants(); err != nil {
		t.Errorf("breaker invariants: %v", err)
	}
	if s.BreakerRecoveries > s.BreakerTrips {
		t.Errorf("recoveries %d exceed trips %d", s.BreakerRecoveries, s.BreakerTrips)
	}
	if s.BreakerShortCircuits > 0 && s.BreakerTrips == 0 {
		t.Errorf("short-circuits %d without any trip", s.BreakerShortCircuits)
	}

	// Counter causality: a zero knob must leave its counters at zero.
	if p.Faults.ChurnRate == 0 &&
		(s.ChurnDepartures != 0 || s.ChurnReturns != 0 || s.WastedRetries != 0) {
		t.Errorf("churn counters fired with churn off: %d/%d wasted=%d",
			s.ChurnDepartures, s.ChurnReturns, s.WastedRetries)
	}
	if p.DeadlineSlots == 0 && s.DeadlineAborts != 0 {
		t.Errorf("deadline aborts %d with no deadline", s.DeadlineAborts)
	}
	if p.BreakerThreshold == 0 &&
		(s.BreakerTrips != 0 || s.BreakerShortCircuits != 0 || s.BreakerRecoveries != 0) {
		t.Errorf("breaker counters fired with breakers off: %d/%d/%d",
			s.BreakerTrips, s.BreakerShortCircuits, s.BreakerRecoveries)
	}
	if s.WastedRetries > 0 && s.ChurnDepartures == 0 {
		t.Errorf("wasted retries %d without departures", s.WastedRetries)
	}
	if p.AuditRate == 0 && s.TrustEvents() != 0 {
		t.Errorf("trust counters fired with audits off: %+v", s)
	}
	if p.Faults.ByzantineRate == 0 && s.ByzantineLies != 0 {
		t.Errorf("lies counted with byzantine off: %d", s.ByzantineLies)
	}
	// Honest substrate (no lies, no stale regions surviving to the
	// screen) must never be convicted by the defense itself.
	if p.Faults.ByzantineRate == 0 &&
		(s.AuditFailures != 0 || s.ConflictsDetected != 0 || s.PeersQuarantined != 0) {
		t.Errorf("defense convicted honest peers: failures=%d conflicts=%d quarantined=%d",
			s.AuditFailures, s.ConflictsDetected, s.PeersQuarantined)
	}
	if s.AuditFailures > s.AuditsRun {
		t.Errorf("audit failures %d exceed audits %d", s.AuditFailures, s.AuditsRun)
	}

	// Consistency counter causality: the layer off must leave every one of
	// its counters at zero, TTL expiry fires only with a TTL, and IR
	// replica waits require broadcast loss.
	if p.UpdateRate == 0 &&
		(s.POIUpdates != 0 || s.IRBroadcasts != 0 || s.IRListens != 0 ||
			s.IRListenSlots != 0 || s.IRListenRetries != 0 ||
			s.VRsReconciled != 0 || s.VRsDemoted != 0 || s.VRsDiscarded != 0 ||
			s.StaleVerdicts != 0) {
		t.Errorf("consistency counters fired with updates off: %+v", s)
	}
	if p.VRTTLSec == 0 && s.VRsExpired != 0 {
		t.Errorf("TTL expiry %d with no TTL", s.VRsExpired)
	}
	if s.IRListenRetries > 0 && p.Faults.BroadcastLoss == 0 {
		t.Errorf("IR replica waits %d without broadcast loss", s.IRListenRetries)
	}
	if s.IRListens > 0 && s.IRBroadcasts == 0 {
		t.Errorf("IR listens %d without any IR broadcast", s.IRListens)
	}
	if s.POIUpdates > 0 && s.IRBroadcasts == 0 {
		t.Errorf("POI updates %d never announced on air", s.POIUpdates)
	}

	// Channel counter causality: each impairment's counters are zero
	// exactly when its knob is off, and the planner's rungs are reachable
	// only under the impairment that opens them.
	if !p.Faults.BurstEnabled() &&
		(s.BurstFrameLosses != 0 || s.BurstTransitions != 0 || s.FadeSuppressedStrikes != 0 ||
			s.ModeOnAirOnly != 0 || s.ModeOwnCache != 0) {
		t.Errorf("burst counters fired with the chain off: losses=%d transitions=%d suppressed=%d onair=%d owncache=%d",
			s.BurstFrameLosses, s.BurstTransitions, s.FadeSuppressedStrikes,
			s.ModeOnAirOnly, s.ModeOwnCache)
	}
	if !p.Faults.BlackoutEnabled() &&
		(s.BlackoutQueries != 0 || s.BlackoutWaitSlots != 0 || s.BlackoutRecoveries != 0 ||
			s.IRDeferred != 0 || s.ModeP2POnly != 0 || s.ModeOwnCache != 0) {
		t.Errorf("blackout counters fired with no schedule: queries=%d wait=%d recoveries=%d deferred=%d p2ponly=%d owncache=%d",
			s.BlackoutQueries, s.BlackoutWaitSlots, s.BlackoutRecoveries,
			s.IRDeferred, s.ModeP2POnly, s.ModeOwnCache)
	}
	if !p.DegradedMode &&
		(s.ModeP2POnly != 0 || s.ModeOnAirOnly != 0 || s.ModeOwnCache != 0 ||
			s.ModeSwitchSlots != 0 || s.Degraded != 0 || s.Unanswered != 0 ||
			s.StaleBoundMaxSec != 0) {
		t.Errorf("planner counters fired with the planner off: %+v", s)
	}
	if p.DegradedMode && (s.BlackoutQueries != 0 || s.BlackoutWaitSlots != 0) {
		t.Errorf("planner run stalled naively: queries=%d wait=%d",
			s.BlackoutQueries, s.BlackoutWaitSlots)
	}
	if !p.Faults.BurstEnabled() && !p.Faults.BlackoutEnabled() && !p.Governed && s.AnsweredInBudget != 0 {
		t.Errorf("availability tally %d without any channel impairment or governor", s.AnsweredInBudget)
	}
	if p.BreakerThreshold == 0 && s.FadeSuppressedStrikes != 0 {
		t.Errorf("fade-suppressed strikes %d with breakers off", s.FadeSuppressedStrikes)
	}
	if s.IRListenAborts > 0 && p.Faults.BroadcastLoss == 0 {
		t.Errorf("IR listen aborts %d without broadcast loss", s.IRListenAborts)
	}
	if s.StaleBoundMaxSec != 0 && s.ModeOwnCache == 0 {
		t.Errorf("staleness bound %d without any own-cache-rung query", s.StaleBoundMaxSec)
	}

	// Continuous counter causality: the layer off leaves every counter at
	// zero; armed, re-verifications partition exactly by reason, the
	// naive baseline never takes a safe-region hit, and taint
	// re-verifications require an invalidation source.
	if p.ContinuousRate == 0 && s.ContinuousEvents() != 0 {
		t.Errorf("continuous counters fired with the knob off: %+v", s)
	}
	if s.Reverifies != s.ReverifyExits+s.ReverifyTaints+s.ReverifyUnverified+s.ReverifyNaive {
		t.Errorf("reverify reasons do not partition reverifies: %+v", s)
	}
	if p.ContinuousNaive && s.SafeRegionHits != 0 {
		t.Errorf("naive baseline took %d safe-region hits", s.SafeRegionHits)
	}
	if !p.ContinuousNaive && s.ReverifyNaive != 0 {
		t.Errorf("naive reverifies %d with the baseline off", s.ReverifyNaive)
	}
	if s.ReverifyTaints > 0 && p.UpdateRate == 0 && p.VRTTLSec == 0 {
		t.Errorf("taint reverifies %d with no update process or TTL", s.ReverifyTaints)
	}

	// Overload counter causality: the plane off leaves every counter at
	// zero, each mechanism's counters require its knob, sheds partition
	// exactly by cause, and governor sheds require an engaged tick.
	if !p.CrowdEnabled() && !p.OverloadEnabled() && s.OverloadEvents() != 0 {
		t.Errorf("overload counters fired with the plane off: %+v", s)
	}
	if p.CrowdRate == 0 && s.CrowdQueries != 0 {
		t.Errorf("crowd queries %d with no crowd", s.CrowdQueries)
	}
	if p.PeerQueueCap == 0 && (s.BusyReplies != 0 || s.QueueDrops != 0) {
		t.Errorf("backpressure fired with no queue cap: busy=%d drops=%d",
			s.BusyReplies, s.QueueDrops)
	}
	if p.RetryBudget == 0 && s.RetryBudgetExhausted != 0 {
		t.Errorf("retry budget exhausted %d with no budget", s.RetryBudgetExhausted)
	}
	if p.AdmissionRate == 0 && s.AdmissionDenied != 0 {
		t.Errorf("admission denied %d with no buckets", s.AdmissionDenied)
	}
	if !p.Governed && (s.GovernorSheds != 0 || s.GovernorEngagedTicks != 0) {
		t.Errorf("governor fired while off: sheds=%d ticks=%d",
			s.GovernorSheds, s.GovernorEngagedTicks)
	}
	if p.CoalesceRadiusMiles == 0 && s.Coalesced != 0 {
		t.Errorf("coalesced gathers %d with coalescing off", s.Coalesced)
	}
	if s.Shed != s.AdmissionDenied+s.GovernorSheds {
		t.Errorf("shed causes do not partition sheds: shed=%d admission=%d governor=%d",
			s.Shed, s.AdmissionDenied, s.GovernorSheds)
	}
	if s.GovernorSheds > 0 && s.GovernorEngagedTicks == 0 {
		t.Errorf("governor sheds %d without any engaged tick", s.GovernorSheds)
	}
}

// TestChaosSoak is the acceptance harness: randomized fault/churn
// schedules across seeds, invariants after every run, and identical-seed
// determinism (Stats, fault counters, and breaker state included).
func TestChaosSoak(t *testing.T) {
	n := soakSchedules(t)
	var agg Stats
	for schedule := 0; schedule < n; schedule++ {
		schedule := schedule
		t.Run("schedule"+strconv.Itoa(schedule), func(t *testing.T) {
			p := soakParams(schedule)
			w, s := runSoakWorld(t, p)
			checkSoakInvariants(t, p, w, s)

			// Identical seed ⇒ identical Stats, breaker state included.
			w2, s2 := runSoakWorld(t, p)
			if s != s2 {
				t.Errorf("stats diverged under identical seed:\n%+v\nvs\n%+v", s, s2)
			}
			if w.FaultCounters() != w2.FaultCounters() {
				t.Errorf("fault counters diverged: %+v vs %+v",
					w.FaultCounters(), w2.FaultCounters())
			}
			if w.Breakers().Stats() != w2.Breakers().Stats() {
				t.Errorf("breaker stats diverged: %+v vs %+v",
					w.Breakers().Stats(), w2.Breakers().Stats())
			}
			if w.Breakers().Tracked() != w2.Breakers().Tracked() ||
				w.Breakers().Cycle() != w2.Breakers().Cycle() {
				t.Errorf("breaker state diverged: tracked %d/%d cycle %d/%d",
					w.Breakers().Tracked(), w2.Breakers().Tracked(),
					w.Breakers().Cycle(), w2.Breakers().Cycle())
			}

			agg.DeadlineAborts += s.DeadlineAborts
			agg.BreakerTrips += s.BreakerTrips
			agg.BreakerShortCircuits += s.BreakerShortCircuits
			agg.ChurnDepartures += s.ChurnDepartures
			agg.WastedRetries += s.WastedRetries
			agg.ByzantineLies += s.ByzantineLies
			agg.AuditsRun += s.AuditsRun
			agg.PeersQuarantined += s.PeersQuarantined
			agg.POIUpdates += s.POIUpdates
			agg.VRsReconciled += s.VRsReconciled
			agg.VRsDemoted += s.VRsDemoted
			agg.VRsExpired += s.VRsExpired
			agg.BurstFrameLosses += s.BurstFrameLosses
			agg.BurstTransitions += s.BurstTransitions
			agg.BlackoutRecoveries += s.BlackoutRecoveries
			agg.BlackoutQueries += s.BlackoutQueries
			agg.ModeP2POnly += s.ModeP2POnly
			agg.ModeOnAirOnly += s.ModeOnAirOnly
			agg.AnsweredInBudget += s.AnsweredInBudget
			agg.Subscriptions += s.Subscriptions
			agg.SafeRegionHits += s.SafeRegionHits
			agg.Reverifies += s.Reverifies
			agg.CrowdQueries += s.CrowdQueries
			agg.BusyReplies += s.BusyReplies
			agg.QueueDrops += s.QueueDrops
			agg.Shed += s.Shed
			agg.GovernorEngagedTicks += s.GovernorEngagedTicks
			agg.RetryBudgetExhausted += s.RetryBudgetExhausted
			agg.Coalesced += s.Coalesced
		})
	}

	// Across a full sweep every headline resilience mechanism must have
	// exercised at least once — otherwise the harness is soaking nothing.
	if n >= 20 {
		if agg.DeadlineAborts == 0 {
			t.Error("no schedule ever aborted on deadline")
		}
		if agg.BreakerTrips == 0 {
			t.Error("no schedule ever tripped a breaker")
		}
		if agg.BreakerShortCircuits == 0 {
			t.Error("no schedule ever short-circuited a request")
		}
		if agg.ChurnDepartures == 0 {
			t.Error("no schedule ever churned a peer")
		}
		if agg.WastedRetries == 0 {
			t.Error("no schedule ever wasted a retry on a departed peer")
		}
		if agg.ByzantineLies == 0 {
			t.Error("no schedule ever told a byzantine lie")
		}
		if agg.AuditsRun == 0 {
			t.Error("no schedule ever ran a spot audit")
		}
		if agg.PeersQuarantined == 0 {
			t.Error("no schedule ever quarantined a lying peer")
		}
		if agg.POIUpdates == 0 {
			t.Error("no schedule ever mutated a POI")
		}
		if agg.VRsReconciled == 0 {
			t.Error("no schedule ever reconciled a verified region")
		}
		if agg.VRsDemoted == 0 {
			t.Error("no schedule ever demoted a beyond-horizon region")
		}
		if agg.VRsExpired == 0 {
			t.Error("no schedule ever expired a region by TTL")
		}
		if agg.BurstFrameLosses == 0 || agg.BurstTransitions == 0 {
			t.Errorf("the fading chain never bit: losses=%d transitions=%d",
				agg.BurstFrameLosses, agg.BurstTransitions)
		}
		if agg.BlackoutRecoveries == 0 {
			t.Error("no schedule ever reacquired the downlink after a blackout")
		}
		if agg.BlackoutQueries == 0 {
			t.Error("no naive schedule ever stalled on a blackout window")
		}
		if agg.ModeP2POnly+agg.ModeOnAirOnly == 0 {
			t.Error("no planner schedule ever stepped down the fallback ladder")
		}
		if agg.AnsweredInBudget == 0 {
			t.Error("no impaired schedule ever answered a query in budget")
		}
		if agg.Subscriptions == 0 || agg.Reverifies == 0 {
			t.Errorf("no schedule ever exercised a continuous subscription: subs=%d reverifies=%d",
				agg.Subscriptions, agg.Reverifies)
		}
		if agg.SafeRegionHits == 0 {
			t.Error("no continuous schedule ever took a safe-region hit")
		}
		if agg.CrowdQueries == 0 {
			t.Error("no schedule ever injected a crowd query")
		}
		if agg.BusyReplies == 0 {
			t.Error("no schedule ever pushed back with a BUSY frame")
		}
		if agg.Shed == 0 {
			t.Error("no schedule ever shed a query to the broadcast path")
		}
		if agg.RetryBudgetExhausted == 0 {
			t.Error("no schedule ever exhausted a retry budget")
		}
		if agg.Coalesced == 0 {
			t.Error("no schedule ever coalesced a co-located gather")
		}
	}
}

// TestSoakZeroKnobIdentity pins the bit-identity contract: with every
// resilience knob zero the world must select the seed's legacy collection
// path — resilience counters stay zero and runs are reproducible — even
// when the PR-1 fault knobs are active.
func TestSoakZeroKnobIdentity(t *testing.T) {
	p := LACity().Scaled(1.5).WithDuration(0.1)
	p.Seed = 4242
	p.TimeStepSec = 10
	p.Kind = KNNQuery
	p.AcceptApproximate = true
	p.Faults = faults.Profile{ // PR-1 knobs only: legacy loop must run
		RequestLoss: 0.2, ReplyLoss: 0.1, ReplyTruncate: 0.05,
		ReplyCorrupt: 0.05, BroadcastLoss: 0.1, StaleRate: 0.05,
	}
	if p.ResilienceEnabled() {
		t.Fatal("zero resilience knobs report enabled")
	}
	a, sa := runSoakWorld(t, p)
	b, sb := runSoakWorld(t, p)
	if sa != sb {
		t.Fatalf("legacy path not deterministic:\n%+v\nvs\n%+v", sa, sb)
	}
	if err := a.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if sa.ResilienceEvents() != 0 {
		t.Fatalf("legacy path produced resilience events: %+v", sa)
	}
	if a.Breakers() != nil || b.Breakers() != nil {
		t.Fatal("breaker set allocated with breakers disabled")
	}
	if a.Trust() != nil || b.Trust() != nil {
		t.Fatal("trust engine allocated with audits disabled")
	}
}
