package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeProfile(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "cover.out")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseProfile(t *testing.T) {
	p := writeProfile(t, `mode: set
lbsq/internal/core/nnv.go:10.2,12.3 3 1
lbsq/internal/core/nnv.go:14.2,16.3 2 0
lbsq/internal/geom/rect.go:5.1,9.2 4 7
`)
	pkgs, err := parseProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	core := pkgs["lbsq/internal/core"]
	if core == nil || core.total != 5 || core.covered != 3 {
		t.Fatalf("core coverage = %+v, want 3/5", core)
	}
	geom := pkgs["lbsq/internal/geom"]
	if geom == nil || geom.total != 4 || geom.covered != 4 {
		t.Fatalf("geom coverage = %+v, want 4/4", geom)
	}
	if pct := core.percent(); math.Abs(pct-60) > 1e-9 {
		t.Fatalf("core percent = %v, want 60", pct)
	}
}

func TestLookupSuffix(t *testing.T) {
	pkgs := map[string]*pkgCover{
		"lbsq/internal/core": {covered: 1, total: 2},
	}
	if _, ok := lookup(pkgs, "internal/core"); !ok {
		t.Fatal("suffix lookup internal/core failed")
	}
	if _, ok := lookup(pkgs, "lbsq/internal/core"); !ok {
		t.Fatal("exact lookup failed")
	}
	if _, ok := lookup(pkgs, "internal/metrics"); ok {
		t.Fatal("lookup of absent package succeeded")
	}
}

func TestParseProfileErrors(t *testing.T) {
	cases := map[string]string{
		"missing mode header": "lbsq/a/b.go:1.1,2.2 1 1\n",
		"malformed block":     "mode: set\nnot-a-block\n",
		"bad statement count": "mode: set\nlbsq/a/b.go:1.1,2.2 x 1\n",
		"bad execution count": "mode: set\nlbsq/a/b.go:1.1,2.2 1 x\n",
		"empty profile":       "mode: set\n",
	}
	for name, content := range cases {
		if _, err := parseProfile(writeProfile(t, content)); err == nil {
			t.Errorf("%s: parseProfile accepted invalid input", name)
		}
	}
}
