package p2p

import "testing"

// The admission ladder: Cap requests served, the busy band refused with
// BUSY, the overflow shed silently — and Reset restores full capacity.
func TestServiceQueueAdmissionLadder(t *testing.T) {
	q := NewServiceQueue(2)
	want := []ServiceVerdict{
		ServeOK, ServeOK, // capacity
		ServeBusy, ServeBusy, ServeBusy, ServeBusy, ServeBusy, ServeBusy, // busy band: 3×cap
		ServeDrop, ServeDrop, // saturation
	}
	for i, w := range want {
		if got := q.Admit(7); got != w {
			t.Fatalf("request %d: verdict %v, want %v", i, got, w)
		}
	}
	if got := q.Load(7); got != len(want) {
		t.Fatalf("load %d, want %d", got, len(want))
	}

	q.Reset()
	if got := q.Load(7); got != 0 {
		t.Fatalf("load %d after reset, want 0", got)
	}
	if got := q.Admit(7); got != ServeOK {
		t.Fatalf("post-reset verdict %v, want ServeOK", got)
	}
}

// Load is tracked per peer: saturating one peer must not consume another
// peer's capacity.
func TestServiceQueuePerPeerIsolation(t *testing.T) {
	q := NewServiceQueue(1)
	for i := 0; i < 10; i++ {
		q.Admit(1)
	}
	if got := q.Admit(2); got != ServeOK {
		t.Fatalf("fresh peer verdict %v, want ServeOK", got)
	}
	if got := q.Load(1); got != 10 {
		t.Fatalf("peer 1 load %d, want 10", got)
	}
	if got := q.Load(2); got != 1 {
		t.Fatalf("peer 2 load %d, want 1", got)
	}
}
