package sim

// Behavioral tests for the resilient query lifecycle: slot-budget
// deadlines, adaptive backoff, per-peer circuit breakers, and peer churn.
// The chaos soak harness (soak_test.go) covers randomized schedules; these
// tests pin each mechanism's direction of effect in isolation.

import (
	"testing"

	"lbsq/internal/faults"
)

// resilientWorld builds a dense faulty world and layers resilience knobs
// on top of the given profile.
func resilientWorld(t *testing.T, seed int64, prof faults.Profile,
	deadline, threshold int, cooldown int64) *World {
	t.Helper()
	p := LACity().Scaled(2).WithDuration(0.12)
	p.Kind = KNNQuery
	p.Seed = seed
	p.TimeStepSec = 10
	p.AcceptApproximate = true
	p.Faults = prof
	p.DeadlineSlots = deadline
	p.BreakerThreshold = threshold
	p.BreakerCooldown = cooldown
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w.SelfCheck = true
	return w
}

// TestDeadlineAbortsFireAndStaySound: heavy request loss with a deep retry
// budget but a tight slot deadline must abort collections, price the spent
// slots into latency, and still answer every query soundly.
func TestDeadlineAbortsFireAndStaySound(t *testing.T) {
	prof := faults.Profile{RequestLoss: 0.7, MaxRetries: 6}
	w := resilientWorld(t, 31, prof, 6, 0, 0)
	s := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if s.DeadlineAborts == 0 {
		t.Error("tight deadline with deep retries never aborted")
	}
	if s.BackoffSlots == 0 {
		t.Error("retries happened but no backoff slots were spent")
	}
	if got := s.Verified + s.Approximate + s.Broadcast; got != s.Queries {
		t.Errorf("outcomes %d != queries %d", got, s.Queries)
	}
}

// TestDeadlineBoundsBackoffSpend: the tighter the deadline, the fewer
// backoff slots a run may spend waiting — and a run that aborts more also
// retries less.
func TestDeadlineBoundsBackoffSpend(t *testing.T) {
	prof := faults.Profile{RequestLoss: 0.7, MaxRetries: 6}
	tight := resilientWorld(t, 32, prof, 4, 0, 0).Run()
	loose := resilientWorld(t, 32, prof, 64, 0, 0).Run()
	if tight.DeadlineAborts <= loose.DeadlineAborts {
		t.Errorf("tight deadline aborted %d, loose %d — want strictly more",
			tight.DeadlineAborts, loose.DeadlineAborts)
	}
	if tight.BackoffSlots >= loose.BackoffSlots {
		t.Errorf("tight deadline spent %d backoff slots, loose %d — want strictly fewer",
			tight.BackoffSlots, loose.BackoffSlots)
	}
}

// TestBreakersQuarantineDamagedPeers: with reply damage high enough that
// CRC rejections recur per peer, breakers must trip, short-circuit retry
// traffic during cooldown, and recover via half-open probes.
func TestBreakersQuarantineDamagedPeers(t *testing.T) {
	prof := faults.Profile{
		ReplyTruncate: 0.35, ReplyCorrupt: 0.35, StaleRate: 0.2, MaxRetries: 3,
	}
	w := resilientWorld(t, 33, prof, 0, 2, 4)
	s := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if s.BreakerTrips == 0 {
		t.Error("heavy reply damage never tripped a breaker")
	}
	if s.BreakerShortCircuits == 0 {
		t.Error("tripped breakers never short-circuited a request")
	}
	if s.BreakerRecoveries == 0 {
		t.Error("no half-open probe ever recovered a peer")
	}
	if s.BreakerRecoveries > s.BreakerTrips {
		t.Errorf("recoveries %d exceed trips %d", s.BreakerRecoveries, s.BreakerTrips)
	}
	if err := w.Breakers().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBreakersSaveReplyTraffic: quarantining flaky peers must reduce the
// ad-hoc reply load relative to the same schedule without breakers — a
// short-circuited peer is never addressed, so it generates no reply frame
// (sound, damaged, or dropped) for the whole cooldown.
func TestBreakersSaveReplyTraffic(t *testing.T) {
	prof := faults.Profile{
		ReplyTruncate: 0.4, ReplyCorrupt: 0.4, MaxRetries: 3,
	}
	frames := func(s Stats) int64 {
		return s.PeerReplies + s.RepliesRejected + s.RepliesDropped
	}
	with := resilientWorld(t, 34, prof, 0, 2, 8).Run()
	// Deadline 1<<20 keeps the resilient code path selected while breakers
	// are off, so the comparison isolates the breaker effect.
	without := resilientWorld(t, 34, prof, 1<<20, 0, 0).Run()
	if with.BreakerShortCircuits == 0 {
		t.Fatal("breakers never short-circuited — comparison is vacuous")
	}
	if frames(with) >= frames(without) {
		t.Errorf("breakers did not reduce reply load: %d frames with, %d without",
			frames(with), frames(without))
	}
}

// TestChurnWastesRetries: with churn on and a retry budget, departed peers
// must be counted, retries addressed at them must be flagged wasted, and
// some departed peers must return.
func TestChurnWastesRetries(t *testing.T) {
	prof := faults.Profile{
		RequestLoss: 0.4, ChurnRate: 0.25, MaxRetries: 4,
	}
	w := resilientWorld(t, 35, prof, 0, 0, 0)
	s := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if s.ChurnDepartures == 0 {
		t.Error("25% churn never departed a peer")
	}
	if s.ChurnReturns == 0 {
		t.Error("no departed peer ever returned")
	}
	if s.WastedRetries == 0 {
		t.Error("no retry was ever wasted on a departed peer")
	}
	// Wasted retries are counted per departed target per retry round, so
	// they require both a departure and at least one retry broadcast.
	if s.WastedRetries > 0 && (s.ChurnDepartures == 0 || s.PeerRetries == 0) {
		t.Errorf("wasted=%d with departures=%d retries=%d",
			s.WastedRetries, s.ChurnDepartures, s.PeerRetries)
	}
}

// TestResilientDeterminism: identical seeds with every resilience knob
// active must reproduce Stats, injector counters, and breaker state.
func TestResilientDeterminism(t *testing.T) {
	prof := faults.Profile{
		RequestLoss: 0.3, ReplyLoss: 0.15, ReplyTruncate: 0.1,
		ReplyCorrupt: 0.1, StaleRate: 0.1, ChurnRate: 0.15, MaxRetries: 4,
	}
	a := resilientWorld(t, 36, prof, 12, 3, 6)
	b := resilientWorld(t, 36, prof, 12, 3, 6)
	sa, sb := a.Run(), b.Run()
	if sa != sb {
		t.Fatalf("stats diverged under identical seed:\n%+v\nvs\n%+v", sa, sb)
	}
	if a.FaultCounters() != b.FaultCounters() {
		t.Fatalf("injector counters diverged: %+v vs %+v",
			a.FaultCounters(), b.FaultCounters())
	}
	if a.Breakers().Stats() != b.Breakers().Stats() ||
		a.Breakers().Tracked() != b.Breakers().Tracked() ||
		a.Breakers().Cycle() != b.Breakers().Cycle() {
		t.Fatal("breaker state diverged under identical seed")
	}
	if sa.ResilienceEvents() == 0 {
		t.Error("fully-knobbed run reported no resilience activity")
	}
}

// TestResilienceValidation: the new knobs reject nonsense configurations.
func TestResilienceValidation(t *testing.T) {
	p := LACity()
	p.DeadlineSlots = -1
	if err := p.Validate(); err == nil {
		t.Error("negative deadline accepted")
	}
	p = LACity()
	p.BreakerThreshold = -2
	if err := p.Validate(); err == nil {
		t.Error("negative breaker threshold accepted")
	}
	p = LACity()
	p.BreakerCooldown = -3
	if err := p.Validate(); err == nil {
		t.Error("negative breaker cooldown accepted")
	}
	p = LACity()
	p.Faults.ChurnRate = 1.5
	if err := p.Validate(); err == nil {
		t.Error("churn rate above 1 accepted")
	}
	p = LACity()
	p.DeadlineSlots = 16
	p.BreakerThreshold = 3
	p.BreakerCooldown = 8
	p.Faults.ChurnRate = 0.2
	if err := p.Validate(); err != nil {
		t.Errorf("valid resilient config rejected: %v", err)
	}
}

// TestResilienceEnabledGate pins which knobs select the resilient path.
func TestResilienceEnabledGate(t *testing.T) {
	p := LACity()
	if p.ResilienceEnabled() {
		t.Error("default params report resilience enabled")
	}
	p.DeadlineSlots = 1
	if !p.ResilienceEnabled() {
		t.Error("deadline alone does not enable resilience")
	}
	p = LACity()
	p.BreakerThreshold = 1
	if !p.ResilienceEnabled() {
		t.Error("breaker threshold alone does not enable resilience")
	}
	p = LACity()
	p.Faults.ChurnRate = 0.1
	if !p.ResilienceEnabled() {
		t.Error("churn alone does not enable resilience")
	}
	p = LACity()
	p.BreakerCooldown = 8 // cooldown without threshold is inert
	if p.ResilienceEnabled() {
		t.Error("cooldown alone enables resilience")
	}
}
