package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lbsq/internal/geom"
)

func mustCurve(t *testing.T, order int, area geom.Rect) *Curve {
	t.Helper()
	c, err := New(order, area)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func unitCurve(t *testing.T, order int) *Curve {
	side := float64(int(1) << order)
	return mustCurve(t, order, geom.NewRect(0, 0, side, side))
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, geom.NewRect(0, 0, 1, 1)); err == nil {
		t.Error("order 0 must be rejected")
	}
	if _, err := New(32, geom.NewRect(0, 0, 1, 1)); err == nil {
		t.Error("order 32 must be rejected")
	}
	if _, err := New(3, geom.NewRect(0, 0, 0, 0)); err == nil {
		t.Error("empty area must be rejected")
	}
	c, err := New(3, geom.NewRect(0, 0, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if c.Order() != 3 || c.Side() != 8 || c.Cells() != 64 {
		t.Errorf("accessors: order=%d side=%d cells=%d", c.Order(), c.Side(), c.Cells())
	}
}

// TestOrder1Layout pins the base case: the order-1 curve visits
// (0,0) -> (0,1) -> (1,1) -> (1,0).
func TestOrder1Layout(t *testing.T) {
	c := unitCurve(t, 1)
	want := map[[2]int]int64{
		{0, 0}: 0, {0, 1}: 1, {1, 1}: 2, {1, 0}: 3,
	}
	for cell, d := range want {
		if got := c.D(cell[0], cell[1]); got != d {
			t.Errorf("D(%d,%d) = %d want %d", cell[0], cell[1], got, d)
		}
		x, y := c.XY(d)
		if x != cell[0] || y != cell[1] {
			t.Errorf("XY(%d) = (%d,%d) want %v", d, x, y, cell)
		}
	}
}

// TestFigure4Cells checks several cells of the 8×8 example grid in the
// paper's Figure 4 (index values shown in the figure). The figure's grid
// has value 0 at the bottom-left, 63 at the bottom-right.
func TestFigure4Cells(t *testing.T) {
	c := unitCurve(t, 3)
	// From Figure 4 (row-major from the top row of the figure, y=7 down to
	// y=0): selected anchor cells.
	want := map[[2]int]int64{
		{0, 0}: 0,
		{1, 0}: 3,  // second cell in the bottom row
		{7, 0}: 63, // bottom-right corner ends the curve
		{0, 7}: 21, // top-left region per figure
		{7, 7}: 42,
		{0, 1}: 1,
		{1, 1}: 2,
	}
	for cell, d := range want {
		if got := c.D(cell[0], cell[1]); got != d {
			t.Errorf("D(%d,%d) = %d want %d", cell[0], cell[1], got, d)
		}
	}
}

// Property: D and XY are inverse bijections over the whole grid.
func TestBijection(t *testing.T) {
	for _, order := range []int{1, 2, 3, 4, 5} {
		c := unitCurve(t, order)
		seen := make(map[int64]bool, c.Cells())
		for y := 0; y < c.Side(); y++ {
			for x := 0; x < c.Side(); x++ {
				d := c.D(x, y)
				if d < 0 || d >= c.Cells() {
					t.Fatalf("order %d: D(%d,%d)=%d out of range", order, x, y, d)
				}
				if seen[d] {
					t.Fatalf("order %d: duplicate value %d", order, d)
				}
				seen[d] = true
				gx, gy := c.XY(d)
				if gx != x || gy != y {
					t.Fatalf("order %d: XY(D(%d,%d)) = (%d,%d)", order, x, y, gx, gy)
				}
			}
		}
	}
}

// Property: consecutive Hilbert values map to 4-adjacent cells (the
// defining locality property of the curve).
func TestAdjacency(t *testing.T) {
	for _, order := range []int{2, 3, 4, 6} {
		c := unitCurve(t, order)
		px, py := c.XY(0)
		for d := int64(1); d < c.Cells(); d++ {
			x, y := c.XY(d)
			manhattan := abs(x-px) + abs(y-py)
			if manhattan != 1 {
				t.Fatalf("order %d: step %d->%d jumps from (%d,%d) to (%d,%d)",
					order, d-1, d, px, py, x, y)
			}
			px, py = x, y
		}
	}
}

func TestClamping(t *testing.T) {
	c := unitCurve(t, 3)
	if got, want := c.D(-5, 100), c.D(0, 7); got != want {
		t.Errorf("clamped D = %d want %d", got, want)
	}
	x, y := c.XY(-3)
	if wx, wy := c.XY(0); x != wx || y != wy {
		t.Errorf("clamped XY low = (%d,%d)", x, y)
	}
	x, y = c.XY(1 << 40)
	if wx, wy := c.XY(c.Cells() - 1); x != wx || y != wy {
		t.Errorf("clamped XY high = (%d,%d)", x, y)
	}
}

func TestCellOfAndCellRect(t *testing.T) {
	c := mustCurve(t, 2, geom.NewRect(0, 0, 20, 20)) // 4x4 grid, 5-unit cells
	x, y := c.CellOf(geom.Pt(7, 13))
	if x != 1 || y != 2 {
		t.Fatalf("CellOf = (%d,%d)", x, y)
	}
	r := c.CellRect(1, 2)
	if r != geom.NewRect(5, 10, 10, 15) {
		t.Fatalf("CellRect = %v", r)
	}
	// Point outside clamps to border cell.
	x, y = c.CellOf(geom.Pt(-4, 100))
	if x != 0 || y != 3 {
		t.Fatalf("CellOf outside = (%d,%d)", x, y)
	}
	// Round trip through value.
	d := c.ValueOf(geom.Pt(7, 13))
	if got := c.CellRectOfValue(d); got != geom.NewRect(5, 10, 10, 15) {
		t.Fatalf("CellRectOfValue = %v", got)
	}
	if got := c.CellCenter(d); got != geom.Pt(7.5, 12.5) {
		t.Fatalf("CellCenter = %v", got)
	}
}

func TestCellsInRect(t *testing.T) {
	c := mustCurve(t, 2, geom.NewRect(0, 0, 4, 4)) // 4x4 grid, unit cells
	// Rect covering cells (1..2, 1..2) — a 2x2 block.
	cells := c.CellsInRect(geom.NewRect(1.1, 1.1, 2.9, 2.9))
	if len(cells) != 4 {
		t.Fatalf("CellsInRect = %v", cells)
	}
	for i := 1; i < len(cells); i++ {
		if cells[i] <= cells[i-1] {
			t.Fatalf("cells not ascending: %v", cells)
		}
	}
	// Whole area covers all 16 cells.
	if got := c.CellsInRect(geom.NewRect(0, 0, 4, 4)); len(got) != 16 {
		t.Fatalf("full area cells = %d", len(got))
	}
}

func TestRangeOfRect(t *testing.T) {
	c := mustCurve(t, 3, geom.NewRect(0, 0, 8, 8))
	r, ok := c.RangeOfRect(geom.NewRect(0.1, 0.1, 0.9, 0.9))
	if !ok || r.First != 0 || r.Last != 0 {
		t.Fatalf("single cell range = %+v, %v", r, ok)
	}
	if !r.Contains(0) || r.Contains(1) {
		t.Error("Range.Contains wrong")
	}
	if r.Len() != 1 {
		t.Errorf("Range.Len = %d", r.Len())
	}
	if _, ok := c.RangeOfRect(geom.NewRect(100, 100, 101, 101)); ok {
		t.Error("range of disjoint rect must fail")
	}
}

// TestFigure8WindowSpan reproduces the observation behind Figure 8: a
// window covering the middle of the 8×8 grid spans a long Hilbert segment
// (the paper's example spans index values 9 to 54, ~70% of the file).
func TestFigure8WindowSpan(t *testing.T) {
	c := unitCurve(t, 3)
	// A central window: cells x in [2,5], y in [2,5].
	w := geom.NewRect(2.1, 2.1, 5.9, 5.9)
	r, ok := c.RangeOfRect(w)
	if !ok {
		t.Fatal("range must exist")
	}
	span := r.Len()
	if span < 40 {
		t.Errorf("central window span = %d; expected the long-segment effect (>40 of 64)", span)
	}
	// The exact ranges must cover far fewer cells than the single span.
	exact := c.RangesOfRect(w)
	var exactLen int64
	for _, e := range exact {
		exactLen += e.Len()
	}
	if exactLen != 16 {
		t.Errorf("exact cell count = %d want 16", exactLen)
	}
	if exactLen >= span {
		t.Errorf("exact ranges (%d) must beat single span (%d)", exactLen, span)
	}
}

func TestRangesOfRectContiguity(t *testing.T) {
	c := unitCurve(t, 4)
	w := geom.NewRect(3.5, 3.5, 9.5, 6.5)
	ranges := c.RangesOfRect(w)
	if len(ranges) == 0 {
		t.Fatal("no ranges")
	}
	// Ranges are disjoint, ascending, non-adjacent (maximal).
	for i := 1; i < len(ranges); i++ {
		if ranges[i].First <= ranges[i-1].Last+1 {
			t.Fatalf("ranges not maximal/disjoint: %+v", ranges)
		}
	}
	// Every covered cell is in exactly one range.
	cells := c.CellsInRect(w)
	for _, d := range cells {
		n := 0
		for _, r := range ranges {
			if r.Contains(d) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("cell %d in %d ranges", d, n)
		}
	}
}

// Property: random points map to cells whose rect contains them, and
// ValueOf is consistent with D∘CellOf.
func TestValueOfProperty(t *testing.T) {
	c := mustCurve(t, 5, geom.NewRect(-10, -10, 10, 10))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		x, y := c.CellOf(p)
		if !c.CellRect(x, y).Contains(p) {
			return false
		}
		return c.ValueOf(p) == c.D(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: spatial locality — cells with close Hilbert values are close
// in space (bounded by the curve's worst-case stretch within one probe).
func TestLocalityStatistical(t *testing.T) {
	c := unitCurve(t, 6)
	rng := rand.New(rand.NewSource(3))
	var sumNear, sumFar float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		d := rng.Int63n(c.Cells() - 10)
		near := c.CellCenter(d).Dist(c.CellCenter(d + 1))
		far := c.CellCenter(d).Dist(c.CellCenter(rng.Int63n(c.Cells())))
		sumNear += near
		sumFar += far
	}
	if sumNear/trials >= sumFar/trials {
		t.Errorf("no locality: near=%v far=%v", sumNear/trials, sumFar/trials)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
