// Package ondemand models the point-to-point, on-demand access model the
// paper contrasts with wireless broadcast (Section 2.1): every client
// submits its query over a shared uplink to a central server that answers
// from its spatial index. The model captures the two properties the paper
// argues from — per-query latency grows with system load (the server and
// channel are a queueing system), and the client must reveal its location
// — whereas broadcast latency is independent of the client population.
//
// The server is modeled as an M/M/1 queue: queries arrive Poisson at rate
// λ and are served at rate μ (query processing + downlink transmission).
// Expected sojourn time is 1/(μ−λ) for λ < μ and diverges at saturation,
// which is the scalability cliff of the on-demand model.
package ondemand

import (
	"fmt"
	"math"

	"lbsq/internal/geom"
	"lbsq/internal/rtree"
)

// Server is a central spatial-query server reachable point-to-point.
type Server struct {
	index *rtree.Tree
	// ServiceRate is μ: queries the server+downlink can complete per
	// second.
	ServiceRate float64
}

// NewServer builds an on-demand server over the POI set.
func NewServer(items []rtree.Item, serviceRate float64) (*Server, error) {
	if serviceRate <= 0 {
		return nil, fmt.Errorf("ondemand: service rate %v must be positive", serviceRate)
	}
	return &Server{
		index:       rtree.Bulk(items, rtree.DefaultMaxEntries),
		ServiceRate: serviceRate,
	}, nil
}

// KNN answers a k-nearest-neighbor query exactly (the server has random
// access to its disk-based index, unlike broadcast clients).
func (s *Server) KNN(q geom.Point, k int) []rtree.Item {
	return s.index.KNN(q, k)
}

// Window answers a window query exactly.
func (s *Server) Window(w geom.Rect) []rtree.Item {
	return s.index.Window(w)
}

// ExpectedLatency returns the expected per-query sojourn time (seconds)
// when queries arrive at the given aggregate rate (per second). It
// returns +Inf at or beyond saturation — the on-demand model's
// scalability failure mode.
func (s *Server) ExpectedLatency(arrivalRate float64) float64 {
	if arrivalRate < 0 {
		arrivalRate = 0
	}
	if arrivalRate >= s.ServiceRate {
		return math.Inf(1)
	}
	return 1 / (s.ServiceRate - arrivalRate)
}

// Utilization returns λ/μ for the given arrival rate.
func (s *Server) Utilization(arrivalRate float64) float64 {
	return arrivalRate / s.ServiceRate
}

// ScalabilityRow is one point of the on-demand-vs-broadcast comparison.
type ScalabilityRow struct {
	// Clients is the mobile-host population.
	Clients int
	// ArrivalRate is the aggregate query rate (per second).
	ArrivalRate float64
	// OnDemandLatency is the expected point-to-point latency (seconds);
	// +Inf past saturation.
	OnDemandLatency float64
	// BroadcastLatency is the (population-independent) mean on-air
	// latency in seconds.
	BroadcastLatency float64
}

// ScalabilitySweep reproduces the Section 1/2.1 argument: as the client
// population grows at a fixed per-client query rate, on-demand latency
// blows up while broadcast latency stays flat.
func (s *Server) ScalabilitySweep(populations []int, perClientRate, broadcastLatency float64) []ScalabilityRow {
	rows := make([]ScalabilityRow, 0, len(populations))
	for _, n := range populations {
		rate := float64(n) * perClientRate
		rows = append(rows, ScalabilityRow{
			Clients:          n,
			ArrivalRate:      rate,
			OnDemandLatency:  s.ExpectedLatency(rate),
			BroadcastLatency: broadcastLatency,
		})
	}
	return rows
}
