package geom

import (
	"math/rand"
	"testing"
)

// Edge cases of SubtractRect hit by the trust layer's quarantine
// subtraction: conflict rectangles are carved out of peer VRs one at a
// time, producing degenerate slivers, full containment, and repeated
// subtraction of the same rectangle.

func subtractArea(rects []Rect) float64 {
	a := 0.0
	for _, r := range rects {
		a += r.Area()
	}
	return a
}

func disjoint(rects []Rect) bool {
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			if ov, ok := rects[i].Intersect(rects[j]); ok && !ov.Empty() {
				return false
			}
		}
	}
	return true
}

func TestSubtractRectNoCover(t *testing.T) {
	w := NewRect(0, 0, 4, 4)
	got := SubtractRect(w, nil)
	if len(got) != 1 || got[0] != w {
		t.Fatalf("SubtractRect(w, nil) = %v, want [w]", got)
	}
	got = SubtractRect(w, []Rect{NewRect(10, 10, 12, 12)})
	if len(got) != 1 || got[0] != w {
		t.Fatalf("non-intersecting cover changed result: %v", got)
	}
}

func TestSubtractRectFullContainment(t *testing.T) {
	w := NewRect(1, 1, 3, 3)
	got := SubtractRect(w, []Rect{NewRect(0, 0, 4, 4)})
	if len(got) != 0 {
		t.Fatalf("fully covered window left pieces: %v", got)
	}
	// Exact self-cover is full containment too.
	got = SubtractRect(w, []Rect{w})
	if len(got) != 0 {
		t.Fatalf("self-cover left pieces: %v", got)
	}
}

func TestSubtractRectEmptyWindow(t *testing.T) {
	if got := SubtractRect(Rect{}, []Rect{NewRect(0, 0, 1, 1)}); got != nil {
		t.Fatalf("empty window produced pieces: %v", got)
	}
	// Degenerate (zero-area) covers must not corrupt the decomposition.
	w := NewRect(0, 0, 4, 4)
	got := SubtractRect(w, []Rect{NewRect(2, 0, 2, 4)}) // zero-width line
	if subtractArea(got) != w.Area() {
		t.Fatalf("zero-area cover removed area: %v", got)
	}
}

// Repeated subtraction of the same rect is idempotent — the quarantine
// set can contain the same conflict rect from successive screens.
func TestSubtractRectRepeatedIdempotent(t *testing.T) {
	w := NewRect(0, 0, 10, 10)
	c := NewRect(4, 4, 6, 6)
	once := SubtractRect(w, []Rect{c})
	twice := SubtractRect(w, []Rect{c, c})
	if subtractArea(once) != subtractArea(twice) {
		t.Fatalf("repeated cover changed area: %v vs %v", subtractArea(once), subtractArea(twice))
	}
	// Chained: subtracting c from every piece of (w − c) is a no-op.
	var chained []Rect
	for _, piece := range once {
		chained = append(chained, SubtractRect(piece, []Rect{c})...)
	}
	if subtractArea(chained) != subtractArea(once) || len(chained) != len(once) {
		t.Fatalf("chained re-subtraction changed pieces: %v vs %v", chained, once)
	}
}

// Degenerate slivers: a cover leaving an ulp-thin remainder must yield
// valid, disjoint rectangles whose area matches the uncovered area.
func TestSubtractRectDegenerateSlivers(t *testing.T) {
	w := NewRect(0, 0, 1, 1)
	eps := 1e-12
	covers := []Rect{NewRect(eps, eps, 1-eps, 1-eps)}
	got := SubtractRect(w, covers)
	for _, r := range got {
		if !r.Valid() {
			t.Fatalf("invalid sliver %v", r)
		}
	}
	if !disjoint(got) {
		t.Fatalf("slivers overlap: %v", got)
	}
	want := w.Area() - covers[0].Area()
	if diff := subtractArea(got) - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sliver area %v, want %v", subtractArea(got), want)
	}
	// Sliver flush to one edge.
	got = SubtractRect(w, []Rect{NewRect(0, 0, 1, 1-eps)})
	if len(got) == 0 {
		t.Fatal("edge sliver lost entirely")
	}
	if diff := subtractArea(got) - eps; diff > 1e-13 || diff < -1e-13 {
		t.Fatalf("edge sliver area %v, want %v", subtractArea(got), eps)
	}
}

// Area conservation invariant under randomized quarantine-like loads:
// area(w − covers) + area(w ∩ union(covers)) == area(w), pieces disjoint
// and inside w, and no piece intersects any cover's interior.
func TestSubtractRectAreaConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	var u RectUnion
	for trial := 0; trial < 300; trial++ {
		w := NewRect(rng.Float64()*4, rng.Float64()*4, 4+rng.Float64()*4, 4+rng.Float64()*4)
		n := rng.Intn(6)
		covers := make([]Rect, 0, n)
		for i := 0; i < n; i++ {
			cx, cy := rng.Float64()*8, rng.Float64()*8
			covers = append(covers, NewRect(cx, cy, cx+rng.Float64()*3, cy+rng.Float64()*3))
		}
		got := SubtractRect(w, covers)
		if !disjoint(got) {
			t.Fatalf("trial %d: pieces overlap: %v", trial, got)
		}
		for _, r := range got {
			if !w.ContainsRect(r) {
				t.Fatalf("trial %d: piece %v outside window %v", trial, r, w)
			}
			for _, c := range covers {
				if ov, ok := r.Intersect(c); ok && ov.Area() > 1e-9 {
					t.Fatalf("trial %d: piece %v overlaps cover %v", trial, r, c)
				}
			}
		}
		u.Reset()
		for _, c := range covers {
			if ov, ok := c.Intersect(w); ok {
				u.Add(ov)
			}
		}
		want := w.Area() - u.Area()
		if diff := subtractArea(got) - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: area %v, want %v", trial, subtractArea(got), want)
		}
	}
}
