package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// fuzzSeeds returns a corpus of valid encodings plus systematic
// truncations and bit flips of them — the damage classes the
// fault-injection layer produces on the ad-hoc channel.
func fuzzSeeds(f *testing.F, encode func() []byte) {
	valid := encode()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x51, 0x5B})
	for _, cut := range []int{1, headerSize - 1, headerSize, len(valid) / 2, len(valid) - 1} {
		if cut >= 0 && cut < len(valid) {
			f.Add(append([]byte(nil), valid[:cut]...))
		}
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 8; i++ {
		b := append([]byte(nil), valid...)
		b[rng.Intn(len(b))] ^= byte(1) << rng.Intn(8)
		f.Add(b)
	}
	f.Add(append(append([]byte(nil), valid...), 0x00))
}

// FuzzDecodeRequest: the request decoder must never panic, and whenever
// it accepts an input the parsed request must re-encode to a decodable
// message describing the same query.
func FuzzDecodeRequest(f *testing.F) {
	fuzzSeeds(f, func() []byte {
		return EncodeRequest(Request{
			QueryID:   7,
			Origin:    geom.Pt(3, 4),
			Relevance: geom.NewRect(0, 0, 8, 8),
			Hops:      2,
		})
	})
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := DecodeRequest(b)
		if err != nil {
			return
		}
		// Accepted input: the round trip must be clean.
		re := EncodeRequest(req)
		got, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-decode of accepted request failed: %v", err)
		}
		if got != req {
			t.Fatalf("round trip drifted: %+v -> %+v", req, got)
		}
	})
}

// FuzzInvalidationReport: the IR decoder must never panic; accepted
// frames must satisfy the version algebra (horizon ≤ epoch, items inside
// the window, deletes cell-less, insert/move cells valid) and re-encode
// byte-identically — the reconciler trusts decoded frames blindly, so
// everything it relies on must be enforced here.
func FuzzInvalidationReport(f *testing.F) {
	fuzzSeeds(f, func() []byte {
		r := InvalidationReport{
			Epoch:   5,
			Horizon: 3,
			Items: []IRItem{
				{Epoch: 3, Kind: IRInsert, ID: 41, Cell: geom.NewRect(0, 0, 1, 1)},
				{Epoch: 4, Kind: IRDelete, ID: 7},
				{Epoch: 5, Kind: IRMove, ID: 12, Cell: geom.NewRect(2, 2, 3, 3)},
			},
		}
		b, err := EncodeInvalidationReport(r)
		if err != nil {
			f.Fatal(err)
		}
		return b
	})
	f.Fuzz(func(t *testing.T, b []byte) {
		ir, err := DecodeInvalidationReport(b)
		if err != nil {
			return
		}
		if ir.Epoch < 0 || ir.Horizon < 0 || ir.Horizon > ir.Epoch {
			t.Fatalf("accepted invalid version window [%d, %d]", ir.Horizon, ir.Epoch)
		}
		if len(ir.Items) > MaxIRItems {
			t.Fatalf("accepted %d items above limit", len(ir.Items))
		}
		for i, it := range ir.Items {
			if it.Epoch < ir.Horizon || it.Epoch > ir.Epoch {
				t.Fatalf("item %d: epoch %d outside window [%d, %d]", i, it.Epoch, ir.Horizon, ir.Epoch)
			}
			switch it.Kind {
			case IRDelete:
				if it.Cell != (geom.Rect{}) {
					t.Fatalf("item %d: delete with cell accepted", i)
				}
			case IRInsert, IRMove:
				if !it.Cell.Valid() || it.Cell.Min == it.Cell.Max {
					t.Fatalf("item %d: bad cell accepted", i)
				}
			default:
				t.Fatalf("item %d: unknown kind %d accepted", i, it.Kind)
			}
		}
		re, err := EncodeInvalidationReport(ir)
		if err != nil {
			t.Fatalf("re-encode of accepted IR failed: %v", err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted IR is not canonical: %d vs %d bytes", len(re), len(b))
		}
	})
}

// FuzzDecodeBusy: the backpressure decoder must never panic; accepted
// frames must carry a bounded retry-after hint and re-encode
// byte-identically — the resilient collector adjusts its retry schedule
// from decoded BUSY frames, so a hostile hint must not park it forever.
func FuzzDecodeBusy(f *testing.F) {
	fuzzSeeds(f, func() []byte {
		b, err := EncodeBusy(Busy{QueryID: 11, RetryAfter: 6})
		if err != nil {
			f.Fatal(err)
		}
		return b
	})
	f.Fuzz(func(t *testing.T, b []byte) {
		busy, err := DecodeBusy(b)
		if err != nil {
			return
		}
		if busy.RetryAfter > MaxBusyRetryAfter {
			t.Fatalf("accepted retry-after %d above limit", busy.RetryAfter)
		}
		re, err := EncodeBusy(busy)
		if err != nil {
			t.Fatalf("re-encode of accepted busy failed: %v", err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted busy is not canonical: %d vs %d bytes", len(re), len(b))
		}
		got, err := DecodeBusy(re)
		if err != nil {
			t.Fatalf("re-decode of accepted busy failed: %v", err)
		}
		if got != busy {
			t.Fatalf("round trip drifted: %+v -> %+v", busy, got)
		}
	})
}

// FuzzDecodeReply: the reply decoder must never panic; accepted inputs
// must be structurally sound (valid rects, finite points, bounded counts)
// and survive an encode/decode round trip byte-identically.
func FuzzDecodeReply(f *testing.F) {
	fuzzSeeds(f, func() []byte {
		r := Reply{QueryID: 9}
		for i := 0; i < 3; i++ {
			reg := Region{Rect: geom.NewRect(float64(i), 0, float64(i)+1, 1)}
			for j := 0; j < 2; j++ {
				reg.POIs = append(reg.POIs, broadcast.POI{
					ID:  int64(10*i + j),
					Pos: geom.Pt(float64(i)+0.25, 0.5),
				})
			}
			r.Regions = append(r.Regions, reg)
		}
		b, err := EncodeReply(r)
		if err != nil {
			f.Fatal(err)
		}
		return b
	})
	f.Fuzz(func(t *testing.T, b []byte) {
		rep, err := DecodeReply(b)
		if err != nil {
			return
		}
		if len(rep.Regions) > MaxRegions {
			t.Fatalf("accepted %d regions above limit", len(rep.Regions))
		}
		for i, reg := range rep.Regions {
			if !reg.Rect.Valid() {
				t.Fatalf("region %d: invalid rect accepted", i)
			}
			if len(reg.POIs) > MaxPOIsPerRegion {
				t.Fatalf("region %d: %d POIs above limit", i, len(reg.POIs))
			}
		}
		re, err := EncodeReply(rep)
		if err != nil {
			t.Fatalf("re-encode of accepted reply failed: %v", err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted reply is not canonical: %d vs %d bytes", len(re), len(b))
		}
	})
}
