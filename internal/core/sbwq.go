package core

import (
	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// SBWQConfig tunes the sharing-based window query.
type SBWQConfig struct {
	// MaxKnownArea caps the area of the verified region a broadcast
	// retrieval is turned into (the "collective MBR" of the received
	// packets the paper's cache policy stores). Zero selects 64× the
	// window area.
	MaxKnownArea float64
}

// SBWQResult is the outcome of Algorithm 3.
type SBWQResult struct {
	// POIs are the objects inside the query window known at return:
	// exact for OutcomeVerified and OutcomeBroadcast.
	POIs []broadcast.POI
	// MVR is the merged verified region.
	MVR *geom.RectUnion
	// Outcome is OutcomeVerified when the window was entirely covered by
	// the MVR, otherwise OutcomeBroadcast.
	Outcome Outcome
	// ReducedWindows are the sub-rectangles of the window left uncovered
	// by the MVR — the w′ rectangles resolved over the channel. Empty
	// for fully covered windows.
	ReducedWindows []geom.Rect
	// CoveredFraction is the fraction of the window's area covered by
	// the MVR (1 for fully covered).
	CoveredFraction float64
	// Access is the broadcast channel cost; zero-valued when the window
	// was fully covered.
	Access broadcast.Access
	// KnownRegion is a rectangle the client now has complete knowledge
	// of: the window itself, or — after a plain broadcast retrieval —
	// the collective cell-aligned MBR of the received packets.
	KnownRegion geom.Rect
	// Known holds every database POI inside KnownRegion.
	Known []broadcast.POI
	// Merged / Examined are the deterministic work units of the
	// mvr_merge and nnv_verify phase spans: peer regions merged into the
	// MVR and distinct in-window candidates collected from peer caches
	// (internal/metrics).
	Merged   int
	Examined int
}

// SBWQ is Algorithm 3: merge the peers' verified regions and collect
// their cached POIs overlapping the window w. If w lies entirely inside
// the MVR the query is fulfilled locally. Otherwise the window is reduced
// by subtracting the MVR, the on-air window query runs over the reduced
// windows only, and the channel data is merged with the peer knowledge.
//
// sched may be nil when no broadcast channel is available; the peer-side
// partial answer is then returned with OutcomeBroadcast.
func SBWQ(q geom.Point, w geom.Rect, peers []PeerData, sched *broadcast.Schedule, now int64) SBWQResult {
	return SBWQWithConfig(q, w, peers, SBWQConfig{}, sched, now)
}

// SBWQWithConfig is SBWQ with explicit tuning. It runs on pooled
// scratch and copies the aliasing MVR out before returning (POIs/Known
// are fresh already), so the result is caller-owned while the cold path
// stays near the warm path's allocation profile.
func SBWQWithConfig(q geom.Point, w geom.Rect, peers []PeerData, cfg SBWQConfig, sched *broadcast.Schedule, now int64) SBWQResult {
	s := GetScratch()
	res := SBWQScratch(s, q, w, peers, cfg, sched, now)
	res.MVR = cloneMVR(res.MVR)
	PutScratch(s)
	return res
}

// SBWQScratch is SBWQ running on caller-owned scratch — the
// zero-intermediate-allocation hot-path variant. Candidate collection,
// the MVR, and deduplication reuse the scratch; the per-query ID map of
// the original is replaced by the sort-based dedup (duplicates of one POI
// ID share the database position, so they are adjacent after the
// distance sort). Results are bit-identical to SBWQWithConfig.
//
// Unlike SBNNScratch, the returned POIs/Known slices are freshly
// allocated: window-query answers double as the cached verified region,
// so they must survive the next query.
func SBWQScratch(s *Scratch, q geom.Point, w geom.Rect, peers []PeerData, cfg SBWQConfig, sched *broadcast.Schedule, now int64) SBWQResult {
	return SBWQScratchMVR(s, &s.mvr, false, q, w, peers, cfg, sched, now)
}

// SBWQScratchMVR is SBWQScratch with the merged verified region held in
// a caller-supplied RectUnion; prebuilt follows the NNVScratchMVR
// contract (mvr already holds the untainted VR multiset of peers).
// Results are bit-identical to SBWQScratch.
func SBWQScratchMVR(s *Scratch, mvr *geom.RectUnion, prebuilt bool, q geom.Point, w geom.Rect, peers []PeerData, cfg SBWQConfig, sched *broadcast.Schedule, now int64) SBWQResult {
	if !prebuilt {
		mvr.Reset()
	}
	local := s.candidates[:0]
	mergedVRs := 0
	for _, p := range peers {
		if p.Tainted {
			// Untrusted contributions add nothing to a window query:
			// every SBWQ answer path is exact (verified coverage or
			// channel retrieval), and neither an unaudited VR nor its
			// POIs may enter an exact answer. The uncovered window parts
			// are resolved over the channel instead — the demotion from
			// "verified by a stranger's claim" to "re-downloaded".
			continue
		}
		if !prebuilt {
			mvr.Add(p.VR)
		}
		mergedVRs++
		for _, poi := range p.POIs {
			if w.Contains(poi.Pos) {
				local = append(local, poi)
			}
		}
	}
	sortCandidates(local, q)
	local = dedupSortedCandidates(local)
	s.candidates = local
	res := SBWQResult{MVR: mvr, Merged: mergedVRs, Examined: len(local)}

	if !w.Empty() {
		res.CoveredFraction = mvr.IntersectRectArea(w) / w.Area()
	} else if mvr.Contains(w.Min) {
		res.CoveredFraction = 1
	}

	// freshCopy hands result POIs to the caller without aliasing scratch
	// (the caller inserts them into its cache).
	freshCopy := func(pois []broadcast.POI) []broadcast.POI {
		if len(pois) == 0 {
			return nil
		}
		out := make([]broadcast.POI, len(pois))
		copy(out, pois)
		return out
	}

	if mvr.CoversRect(w) {
		res.Outcome = OutcomeVerified
		out := freshCopy(local)
		res.POIs = out
		res.KnownRegion = w
		res.Known = out
		return res
	}

	res.Outcome = OutcomeBroadcast
	res.ReducedWindows = geom.SubtractRect(w, mvr.Rects())
	if sched == nil {
		res.POIs = freshCopy(local)
		return res
	}
	onAir, raw, retrieved, acc := sched.WindowReducedDetailed(res.ReducedWindows, now)
	res.Access = acc
	merged := append(local, onAir...)
	sortCandidates(merged, q)
	merged = dedupSortedCandidates(merged)
	s.candidates = merged
	merged = freshCopy(merged)
	res.POIs = merged

	// The exact window contents are always new verified knowledge; when
	// the retrieval alone made the client a complete authority on the
	// window's cells, grow the region to the collective MBR of the
	// received packets (the paper's broadcast-retrieval cache policy).
	maxArea := cfg.MaxKnownArea
	if maxArea <= 0 {
		maxArea = 64 * w.Area()
	}
	res.KnownRegion = sched.GrowCompleteRect(w, retrieved, maxArea)
	if res.KnownRegion == w {
		res.Known = merged
	} else {
		// Inside the grown region every POI comes from a retrieved
		// packet, so the raw downloads are the complete inventory.
		seenKnown := make(map[int64]bool, len(raw))
		for _, poi := range raw {
			if res.KnownRegion.Contains(poi.Pos) && !seenKnown[poi.ID] {
				seenKnown[poi.ID] = true
				res.Known = append(res.Known, poi)
			}
		}
	}
	return res
}
