// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each figure benchmark reruns the corresponding experiment
// sweep at the reduced Fast scale (density-preserving 3-mile area) and
// logs the regenerated series; cmd/lbsq-figures prints the same tables at
// any scale up to the paper's full configuration. Micro-benchmarks for
// the individual algorithms live next to their packages.
//
// Run with:
//
//	go test -bench=. -benchmem
package lbsq_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"lbsq"
	"lbsq/internal/experiments"
	"lbsq/internal/ondemand"
	"lbsq/internal/rtree"
	"lbsq/internal/sim"
)

// logFigure renders a regenerated figure into the benchmark log.
func logFigure(b *testing.B, f experiments.Figure) {
	b.Helper()
	var sb strings.Builder
	if _, err := f.WriteTo(&sb); err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", sb.String())
}

// BenchmarkTable3ParameterSets measures construction of the full system
// model for each Table 3 parameter set (scaled) and logs the table.
func BenchmarkTable3ParameterSets(b *testing.B) {
	sets := sim.ParameterSets()
	b.Logf("\nTable 3 — simulation parameter sets")
	b.Logf("%-20s %8s %8s %6s %8s %6s %4s %7s %9s %6s",
		"set", "POIs", "MHs", "CSize", "Query/m", "Tx m", "k", "win %", "dist mi", "T h")
	for _, p := range sets {
		b.Logf("%-20s %8d %8d %6d %8.0f %6.0f %4d %7.0f %9.0f %6.0f",
			p.Name, p.POINumber, p.MHNumber, p.CacheSize, p.QueryRate,
			p.TxRangeMeters, p.K, p.WindowPct, p.WindowDistMiles, p.DurationHours)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range sets {
			s := p.Scaled(2).WithDuration(0.1)
			s.Seed = int64(i + 1)
			if _, err := sim.NewWorld(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchFigure runs a figure regeneration per iteration and logs it once.
func benchFigure(b *testing.B, gen func(experiments.Options) experiments.Figure) {
	opt := experiments.Fast()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(42 + i)
		f := gen(opt)
		if i == 0 {
			logFigure(b, f)
		}
	}
}

// BenchmarkFig10TransmissionRangeKNN regenerates Figure 10: kNN
// resolution shares vs. wireless transmission range, all three parameter
// sets.
func BenchmarkFig10TransmissionRangeKNN(b *testing.B) {
	benchFigure(b, experiments.Fig10)
}

// BenchmarkFig11CacheCapacityKNN regenerates Figure 11: kNN resolution
// shares vs. mobile host cache capacity.
func BenchmarkFig11CacheCapacityKNN(b *testing.B) {
	benchFigure(b, experiments.Fig11)
}

// BenchmarkFig12NearestNeighborK regenerates Figure 12: kNN resolution
// shares vs. the requested k.
func BenchmarkFig12NearestNeighborK(b *testing.B) {
	benchFigure(b, experiments.Fig12)
}

// BenchmarkFig13TransmissionRangeWindow regenerates Figure 13: window
// query resolution shares vs. transmission range.
func BenchmarkFig13TransmissionRangeWindow(b *testing.B) {
	benchFigure(b, experiments.Fig13)
}

// BenchmarkFig14CacheCapacityWindow regenerates Figure 14: window query
// resolution shares vs. cache capacity.
func BenchmarkFig14CacheCapacityWindow(b *testing.B) {
	benchFigure(b, experiments.Fig14)
}

// BenchmarkFig15WindowSize regenerates Figure 15: window query resolution
// shares vs. query window size.
func BenchmarkFig15WindowSize(b *testing.B) {
	benchFigure(b, experiments.Fig15)
}

// BenchmarkLatencyReduction regenerates the access-latency headline of
// Sections 3.3.3/5: mean latency and channel accesses with sharing
// versus the plain on-air algorithms.
func BenchmarkLatencyReduction(b *testing.B) {
	opt := experiments.Fast()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(42 + i)
		rows := experiments.LatencyReduction(opt)
		if i == 0 {
			var sb strings.Builder
			experiments.WriteLatency(&sb, rows)
			b.Logf("\n%s", sb.String())
		}
	}
}

// BenchmarkHitRatioAnalysis regenerates the probabilistic hit-ratio
// analysis (contribution (d)) against simulation.
func BenchmarkHitRatioAnalysis(b *testing.B) {
	opt := experiments.Fast()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(42 + i)
		rows := experiments.AnalysisVsSim(opt)
		if i == 0 {
			var sb strings.Builder
			experiments.WriteAnalysis(&sb, rows)
			b.Logf("\n%s", sb.String())
		}
	}
}

// BenchmarkAblationCachePolicy compares the paper's direction+distance
// cache replacement with LRU (design choice called out in DESIGN.md).
func BenchmarkAblationCachePolicy(b *testing.B) {
	opt := experiments.Fast()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(42 + i)
		rows := experiments.CachePolicyAblation(opt)
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-20s %-20s shared %.1f%%", r.SetName, r.Policy, r.SharedPct)
			}
		}
	}
}

// BenchmarkAblationApproxThreshold sweeps the approximate-answer
// acceptance threshold around the paper's 50% setting.
func BenchmarkAblationApproxThreshold(b *testing.B) {
	opt := experiments.Fast()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(42 + i)
		rows := experiments.ApproxThresholdAblation(opt)
		if i == 0 {
			for _, r := range rows {
				b.Logf("threshold %.2f: approx %.1f%%, broadcast %.1f%%",
					r.Threshold, r.ApproximatePct, r.BroadcastPct)
			}
		}
	}
}

// BenchmarkAblationIndexM sweeps the (1, m) index replication factor: a
// larger m shortens the initial probe at the cost of a longer cycle
// (Figure 2 trade-off).
func BenchmarkAblationIndexM(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	area := lbsq.NewRect(0, 0, 20, 20)
	pois := make([]lbsq.POI, 2750) // LA City POI count
	for i := range pois {
		pois[i] = lbsq.POI{ID: int64(i), Pos: lbsq.Pt(rng.Float64()*20, rng.Float64()*20)}
	}
	for _, m := range []int{1, 2, 4, 8, 16} {
		srv, err := lbsq.NewServer(area, pois, lbsq.BroadcastConfig{M: m})
		if err != nil {
			b.Fatal(err)
		}
		lat := srv.Schedule().ExpectedKNNLatency(lbsq.Pt(10, 10), 5, 64)
		b.Logf("m=%2d: cycle %4d slots, mean on-air kNN latency %.1f slots",
			m, srv.Schedule().CycleLength(), lat)
	}
	srv, err := lbsq.NewServer(area, pois, lbsq.BroadcastConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := lbsq.Pt(rng.Float64()*20, rng.Float64()*20)
		srv.Schedule().KNN(q, 5, int64(i))
	}
}

// BenchmarkEndToEndSharedQuery measures one fully peer-resolved SBNN
// query — the zero-latency path the whole design optimizes for.
func BenchmarkEndToEndSharedQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	area := lbsq.NewRect(0, 0, 20, 20)
	pois := make([]lbsq.POI, 1000)
	for i := range pois {
		pois[i] = lbsq.POI{ID: int64(i), Pos: lbsq.Pt(rng.Float64()*20, rng.Float64()*20)}
	}
	srv, err := lbsq.NewServer(area, pois, lbsq.BroadcastConfig{})
	if err != nil {
		b.Fatal(err)
	}
	var peers []lbsq.PeerData
	for i := 0; i < 8; i++ {
		c := lbsq.NewClient(srv, lbsq.Pt(10+rng.Float64(), 10+rng.Float64()), 80)
		c.KNN(8, nil)
		peers = append(peers, c.Share()...)
	}
	q := lbsq.NewClient(srv, lbsq.Pt(10.5, 10.5), 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := q.KNN(3, peers)
		if len(res.POIs) != 3 {
			b.Fatal("wrong result size")
		}
	}
}

// BenchmarkScalabilityOnDemandVsBroadcast reproduces the Section 1/2.1
// scalability argument: the on-demand (point-to-point) model's latency
// blows up with the client population while broadcast latency is flat —
// the reason the paper builds on broadcast at all.
func BenchmarkScalabilityOnDemandVsBroadcast(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	items := make([]rtree.Item, 2750)
	area := lbsq.NewRect(0, 0, 20, 20)
	pois := make([]lbsq.POI, len(items))
	for i := range items {
		p := lbsq.Pt(rng.Float64()*20, rng.Float64()*20)
		items[i] = rtree.Item{ID: int64(i), Pos: p}
		pois[i] = lbsq.POI{ID: int64(i), Pos: p}
	}
	server, err := ondemand.NewServer(items, 100) // 100 queries/s capacity
	if err != nil {
		b.Fatal(err)
	}
	bcast, err := lbsq.NewServer(area, pois, lbsq.BroadcastConfig{})
	if err != nil {
		b.Fatal(err)
	}
	// Broadcast latency in seconds at 50 ms slots, independent of load.
	bl := bcast.Schedule().ExpectedKNNLatency(lbsq.Pt(10, 10), 5, 64) * 0.05
	rows := server.ScalabilitySweep(
		[]int{100, 1000, 10000, 93300}, 6220.0/60/93300, bl)
	for _, r := range rows {
		od := fmt.Sprintf("%8.3fs", r.OnDemandLatency)
		if math.IsInf(r.OnDemandLatency, 1) {
			od = "saturated"
		}
		b.Logf("clients %6d: on-demand %s   broadcast %8.3fs",
			r.Clients, od, r.BroadcastLatency)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := lbsq.Pt(rng.Float64()*20, rng.Float64()*20)
		if got := server.KNN(q, 5); len(got) != 5 {
			b.Fatal("short result")
		}
	}
}

// BenchmarkAblationBroadcastOrdering compares Hilbert, Morton, and
// row-major broadcast orderings — the locality argument for the Hilbert
// curve (Section 2.1 via Jagadish).
func BenchmarkAblationBroadcastOrdering(b *testing.B) {
	opt := experiments.Fast()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(42 + i)
		rows := experiments.OrderingAblation(opt)
		if i == 0 {
			var sb strings.Builder
			experiments.WriteOrdering(&sb, rows)
			b.Logf("\n%s", sb.String())
		}
	}
}

// BenchmarkLemma32Calibration validates the correctness-probability model
// empirically: predicted vs observed correctness of unverified
// candidates, under the lemma's Poisson assumption and under a clustered
// POI field that violates it.
func BenchmarkLemma32Calibration(b *testing.B) {
	opt := experiments.Fast()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(42 + i)
		poisson := experiments.CorrectnessCalibration(opt, false, 2000)
		clustered := experiments.CorrectnessCalibration(opt, true, 2000)
		if i == 0 {
			var sb strings.Builder
			experiments.WriteCalibration(&sb, "Poisson", poisson)
			experiments.WriteCalibration(&sb, "clustered", clustered)
			b.Logf("\n%s", sb.String())
		}
	}
}

// BenchmarkExtensionMultiHopSharing measures the multi-hop sharing
// extension: relaying cache requests across 1, 2, and 3 ad-hoc hops.
func BenchmarkExtensionMultiHopSharing(b *testing.B) {
	opt := experiments.Fast()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(42 + i)
		rows := experiments.MultiHopAblation(opt)
		if i == 0 {
			var sb strings.Builder
			experiments.WriteMultiHop(&sb, rows)
			b.Logf("\n%s", sb.String())
		}
	}
}

// BenchmarkResultLifetime quantifies the Section 1 motivation: how far a
// moving client travels before one broadcast retrieval's verified
// knowledge stops answering fresh k-NN queries.
func BenchmarkResultLifetime(b *testing.B) {
	opt := experiments.Fast()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(42 + i)
		rows := experiments.ResultLifetime(opt)
		if i == 0 {
			var sb strings.Builder
			experiments.WriteLifetime(&sb, rows)
			b.Logf("\n%s", sb.String())
		}
	}
}
