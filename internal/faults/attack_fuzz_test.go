package faults

import (
	"math"
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// FuzzAttackClaim hammers the attack-profile claim mangler with
// arbitrary geometry and POI payloads. Invariants under fuzzing:
//
//  1. no panic on any input (degenerate, inverted, or huge rects;
//     empty or large POI sets; every attack code including invalid ones);
//  2. the input POI slice is never modified;
//  3. for finite inputs and a concrete attack, the output claim is a
//     material lie (the soundness precondition the trust layer's
//     single-sample audits rely on), and every invented POI carries a
//     fabricated-range ID.
func FuzzAttackClaim(f *testing.F) {
	f.Add(int64(1), byte(1), 0.0, 0.0, 10.0, 10.0, []byte{0x10, 0x80, 0x40, 0xc0})
	f.Add(int64(2), byte(2), -3.0, 2.0, 5.0, 8.0, []byte{})
	f.Add(int64(3), byte(3), 5.0, 5.0, 5.0, 5.0, []byte{0x7f, 0x7f})
	f.Add(int64(4), byte(4), 1.0, 1.0, 2.0, 2.0, []byte{0x00, 0xff, 0x55, 0xaa, 0x11, 0x22})
	f.Add(int64(5), byte(5), 0.0, 0.0, 1e9, 1e9, []byte{0x01})
	f.Fuzz(func(t *testing.T, seed int64, attack byte, x1, y1, x2, y2 float64, poiBytes []byte) {
		finite := !math.IsNaN(x1) && !math.IsInf(x1, 0) &&
			!math.IsNaN(y1) && !math.IsInf(y1, 0) &&
			!math.IsNaN(x2) && !math.IsInf(x2, 0) &&
			!math.IsNaN(y2) && !math.IsInf(y2, 0)
		if !finite {
			// Claims originate from decoded wire regions, which the CRC
			// and region validation keep finite; still must not panic.
			x1, y1, x2, y2 = 0, 0, 1, 1
		}
		vr := geom.NewRect(x1, y1, x2, y2)
		if len(poiBytes) > 256 {
			poiBytes = poiBytes[:256]
		}
		var pois []broadcast.POI
		for i := 0; i+1 < len(poiBytes); i += 2 {
			fx := float64(poiBytes[i]) / 255
			fy := float64(poiBytes[i+1]) / 255
			pois = append(pois, broadcast.POI{
				ID:  int64(i/2 + 1),
				Pos: geom.Pt(vr.Min.X+fx*vr.Width(), vr.Min.Y+fy*vr.Height()),
			})
		}
		orig := append([]broadcast.POI(nil), pois...)

		a := Attack(attack % 6)
		in := New(seed, Profile{ByzantineRate: 1, Attack: a})
		cvr, cpois := in.AttackClaim(vr, pois, a)

		for i := range orig {
			if pois[i] != orig[i] {
				t.Fatalf("attack %v mutated input POI %d", a, i)
			}
		}
		if a == AttackNone {
			if cvr != vr {
				t.Fatalf("AttackNone changed the VR")
			}
			return
		}
		for _, p := range cpois {
			if p.ID >= FabricatedIDBase {
				continue
			}
			// Non-fabricated IDs must come from the input set.
			found := false
			for _, q := range orig {
				if q.ID == p.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("attack %v invented POI with real-range ID %d", a, p.ID)
			}
		}
		if !claimIsMaterialLie(vr, orig, cvr, cpois) {
			t.Fatalf("attack %v produced an honest claim\n vr=%v pois=%v\ncvr=%v cpois=%v",
				a, vr, orig, cvr, cpois)
		}
	})
}
