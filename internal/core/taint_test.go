package core

import (
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// A tainted peer's VR must not strengthen the MVR, and its POIs must
// never verify — even when the geometry would verify them.
func TestTaintedPeerNeverVerifies(t *testing.T) {
	peer := PeerData{
		VR:      geom.NewRect(0, 0, 10, 10),
		POIs:    []broadcast.POI{{ID: 1, Pos: geom.Pt(5, 6)}},
		Tainted: true,
	}
	res := NNV(geom.Pt(5, 5), []PeerData{peer}, 1, 0.1)
	if res.InsideMVR {
		t.Fatal("tainted VR entered the MVR")
	}
	if res.Merged != 0 {
		t.Fatalf("Merged = %d, want 0", res.Merged)
	}
	if res.TaintedCandidates != 1 {
		t.Fatalf("TaintedCandidates = %d, want 1", res.TaintedCandidates)
	}
	es := res.Heap.Entries()
	if len(es) != 1 || es[0].Verified || !es[0].Tainted {
		t.Fatalf("tainted candidate mis-verified: %+v", es)
	}
	if es[0].Correctness >= 1 {
		t.Fatalf("tainted candidate claims certainty: %+v", es[0])
	}
}

// Mixed pools merge in global distance order and taint is tracked per
// entry; untainted entries still verify inside the trusted MVR.
func TestMixedPoolMergeOrder(t *testing.T) {
	honest := PeerData{
		VR:   geom.NewRect(0, 0, 10, 10),
		POIs: []broadcast.POI{{ID: 1, Pos: geom.Pt(5, 6)}, {ID: 2, Pos: geom.Pt(5, 8)}},
	}
	liar := PeerData{
		VR:      geom.NewRect(0, 0, 10, 10),
		POIs:    []broadcast.POI{{ID: 900, Pos: geom.Pt(5, 5.5)}, {ID: 901, Pos: geom.Pt(5, 7)}},
		Tainted: true,
	}
	res := NNV(geom.Pt(5, 5), []PeerData{honest, liar}, 4, 0.1)
	es := res.Heap.Entries()
	if len(es) != 4 {
		t.Fatalf("heap len = %d, want 4", len(es))
	}
	wantIDs := []int64{900, 1, 901, 2} // distances 0.5, 1, 2, 3
	for i, e := range es {
		if e.POI.ID != wantIDs[i] {
			t.Fatalf("entry %d = POI %d, want %d", i, e.POI.ID, wantIDs[i])
		}
		if i > 0 && es[i].Dist < es[i-1].Dist {
			t.Fatal("heap not in ascending distance order")
		}
		wantTaint := e.POI.ID >= 900
		if e.Tainted != wantTaint {
			t.Fatalf("entry %d taint = %v, want %v", i, e.Tainted, wantTaint)
		}
		if e.Tainted && e.Verified {
			t.Fatalf("tainted entry verified: %+v", e)
		}
	}
	// The honest POIs verify despite the tainted competition: the MVR is
	// the honest VR, and both honest POIs are within its clearance.
	if !es[1].Verified || !es[3].Verified {
		t.Fatalf("honest entries lost verification: %+v", es)
	}
	if res.Heap.TaintedCount() != 2 {
		t.Fatalf("TaintedCount = %d, want 2", res.Heap.TaintedCount())
	}
}

// Zero tainted peers must reproduce the seed behavior exactly (the
// bit-identity contract of the trust layer).
func TestNoTaintBitIdentity(t *testing.T) {
	peers := []PeerData{
		{VR: geom.NewRect(0, 0, 6, 6), POIs: []broadcast.POI{{ID: 1, Pos: geom.Pt(1, 1)}, {ID: 2, Pos: geom.Pt(3, 3)}}},
		{VR: geom.NewRect(4, 4, 10, 10), POIs: []broadcast.POI{{ID: 3, Pos: geom.Pt(5, 5)}}},
	}
	q := geom.Pt(3, 4)
	a := NNV(q, peers, 2, 0.2)
	// Manual seed re-implementation: all VRs merged, candidates walked in
	// ascending order.
	if a.Merged != 2 || a.TaintedCandidates != 0 || a.Candidates != 3 {
		t.Fatalf("counters changed on the untainted path: %+v", a)
	}
	for i, e := range a.Heap.Entries() {
		if e.Tainted {
			t.Fatalf("entry %d tainted on the untainted path", i)
		}
	}
	b := NNV(q, peers, 2, 0.2)
	ea, eb := a.Heap.Entries(), b.Heap.Entries()
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic heap")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("entry %d diverged: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

// A tainted entry in the heap suppresses the upper search bound (a
// fabricated POI must not truncate the on-air search) but leaves the
// verified lower bound intact.
func TestTaintedSuppressesUpperBound(t *testing.T) {
	honest := PeerData{
		VR:   geom.NewRect(3, 3, 7, 7),
		POIs: []broadcast.POI{{ID: 1, Pos: geom.Pt(5, 5.5)}},
	}
	liar := PeerData{
		VR:      geom.NewRect(0, 0, 10, 10),
		POIs:    []broadcast.POI{{ID: 900, Pos: geom.Pt(5, 6)}},
		Tainted: true,
	}
	res := NNV(geom.Pt(5, 5), []PeerData{honest, liar}, 2, 0.1)
	if res.Heap.Len() != 2 || res.Heap.VerifiedCount() != 1 {
		t.Fatalf("setup: heap %+v", res.Heap.Entries())
	}
	b := res.Heap.SearchBounds()
	if b.Upper != 0 {
		t.Fatalf("tainted heap kept upper bound %v", b.Upper)
	}
	if b.Lower == 0 {
		t.Fatal("verified lower bound lost")
	}
	// Control: without the liar the full-mixed/full-verified heap states
	// may carry an upper bound.
	resHonest := NNV(geom.Pt(5, 5), []PeerData{honest, {VR: honest.VR, POIs: []broadcast.POI{{ID: 2, Pos: geom.Pt(5, 9)}}}}, 2, 0.1)
	if bb := resHonest.Heap.SearchBounds(); bb.Upper == 0 {
		t.Fatalf("control: honest full heap lost its upper bound: %+v", bb)
	}
}

// AppendTrustedPOIs drops exactly the tainted entries.
func TestAppendTrustedPOIs(t *testing.T) {
	h := NewHeap(3)
	h.add(Entry{POI: broadcast.POI{ID: 1}, Dist: 1, Verified: true})
	h.add(Entry{POI: broadcast.POI{ID: 900}, Dist: 2, Tainted: true})
	h.add(Entry{POI: broadcast.POI{ID: 2}, Dist: 3})
	got := h.AppendTrustedPOIs(nil)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("AppendTrustedPOIs = %+v", got)
	}
	all := h.AppendPOIs(nil)
	if len(all) != 3 {
		t.Fatalf("AppendPOIs = %+v", all)
	}
}

// SBWQ ignores tainted contributions entirely: coverage and candidates
// come only from trusted peers, so a lying VR cannot fake window
// coverage.
func TestSBWQSkipsTainted(t *testing.T) {
	w := geom.NewRect(2, 2, 8, 8)
	liar := PeerData{
		VR:      geom.NewRect(0, 0, 10, 10),
		POIs:    []broadcast.POI{{ID: 900, Pos: geom.Pt(5, 5)}},
		Tainted: true,
	}
	res := SBWQ(geom.Pt(5, 5), w, []PeerData{liar}, nil, 0)
	if res.Outcome == OutcomeVerified {
		t.Fatal("tainted VR faked window coverage")
	}
	if res.Merged != 0 || res.CoveredFraction != 0 || len(res.POIs) != 0 {
		t.Fatalf("tainted contribution leaked into SBWQ: %+v", res)
	}
	// Control: the same peer untainted covers the window.
	honest := liar
	honest.Tainted = false
	res = SBWQ(geom.Pt(5, 5), w, []PeerData{honest}, nil, 0)
	if res.Outcome != OutcomeVerified || res.Merged != 1 {
		t.Fatalf("control: honest coverage failed: %+v", res)
	}
}

// SBNN with only tainted peers cannot answer verified and, with no
// channel, returns only trusted (here: zero) POIs.
func TestSBNNTaintedDemotion(t *testing.T) {
	liar := PeerData{
		VR:      geom.NewRect(0, 0, 10, 10),
		POIs:    []broadcast.POI{{ID: 900, Pos: geom.Pt(5, 5.2)}},
		Tainted: true,
	}
	cfg := SBNNConfig{K: 1, Lambda: 0.1}
	res := SBNN(geom.Pt(5, 5), []PeerData{liar}, cfg, nil, 0)
	if res.Outcome == OutcomeVerified {
		t.Fatalf("tainted-only SBNN claimed verification: %+v", res)
	}
	if len(res.POIs) != 0 {
		t.Fatalf("tainted POI entered an exact answer set: %+v", res.POIs)
	}
	if res.TaintedCandidates != 1 {
		t.Fatalf("TaintedCandidates = %d", res.TaintedCandidates)
	}
	// The approximate path is the sanctioned outlet: accepting
	// probabilistic answers may surface the tainted candidate, clearly
	// demoted (never verified).
	cfg.AcceptApproximate = true
	cfg.MinCorrectness = 0
	res = SBNN(geom.Pt(5, 5), []PeerData{liar}, cfg, nil, 0)
	if res.Outcome != OutcomeApproximate {
		t.Fatalf("approximate demotion path unavailable: %+v", res.Outcome)
	}
	for _, e := range res.Heap.Entries() {
		if e.Verified {
			t.Fatalf("approximate tainted entry verified: %+v", e)
		}
	}
}
