package mobility

import (
	"math"
	"math/rand"
	"testing"

	"lbsq/internal/geom"
)

func mustWaypoint(t *testing.T, area geom.Rect, minS, maxS, pause float64) *Waypoint {
	t.Helper()
	m, err := NewWaypoint(area, minS, maxS, pause)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewWaypointValidation(t *testing.T) {
	area := geom.NewRect(0, 0, 10, 10)
	if _, err := NewWaypoint(geom.Rect{}, 1, 2, 0); err == nil {
		t.Error("empty area must be rejected")
	}
	if _, err := NewWaypoint(area, 0, 2, 0); err == nil {
		t.Error("zero min speed must be rejected")
	}
	if _, err := NewWaypoint(area, 3, 2, 0); err == nil {
		t.Error("inverted speed range must be rejected")
	}
	if _, err := NewWaypoint(area, 1, 2, -1); err == nil {
		t.Error("negative pause must be rejected")
	}
}

func TestInitInsideArea(t *testing.T) {
	area := geom.NewRect(-5, -5, 5, 5)
	m := mustWaypoint(t, area, 1, 2, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		s := m.Init(rng)
		if !area.Contains(s.Pos) || !area.Contains(s.Dest) {
			t.Fatalf("init outside area: %+v", s)
		}
		if s.Speed < 1 || s.Speed > 2 {
			t.Fatalf("speed %v out of range", s.Speed)
		}
	}
}

func TestStepStaysInsideArea(t *testing.T) {
	area := geom.NewRect(0, 0, 20, 20)
	m := mustWaypoint(t, area, 0.5, 2, 1)
	rng := rand.New(rand.NewSource(2))
	s := m.Init(rng)
	for i := 0; i < 5000; i++ {
		m.Step(&s, 0.7, rng)
		if !area.Contains(s.Pos) {
			t.Fatalf("step %d left the area: %v", i, s.Pos)
		}
	}
}

func TestStepDistanceBoundedBySpeed(t *testing.T) {
	area := geom.NewRect(0, 0, 100, 100)
	m := mustWaypoint(t, area, 1, 3, 0)
	rng := rand.New(rand.NewSource(3))
	s := m.Init(rng)
	for i := 0; i < 1000; i++ {
		before := s.Pos
		dt := 0.5
		m.Step(&s, dt, rng)
		// Straight-line displacement can't exceed max speed * dt (turning
		// at a waypoint only shortens it).
		if before.Dist(s.Pos) > 3*dt+1e-9 {
			t.Fatalf("step %d moved too far: %v", i, before.Dist(s.Pos))
		}
	}
}

func TestPauseConsumesTime(t *testing.T) {
	area := geom.NewRect(0, 0, 10, 10)
	m := mustWaypoint(t, area, 1, 1, 0)
	rng := rand.New(rand.NewSource(4))
	s := m.Init(rng)
	s.PauseLeft = 5
	before := s.Pos
	m.Step(&s, 3, rng)
	if s.Pos != before {
		t.Fatal("host moved while paused")
	}
	if !almostEqual(s.PauseLeft, 2, 1e-12) {
		t.Fatalf("pause left = %v", s.PauseLeft)
	}
	// Pause runs out mid-step: movement resumes for the remainder.
	m.Step(&s, 4, rng)
	if s.Pos == before {
		t.Fatal("host did not move after pause expired")
	}
}

func TestHeading(t *testing.T) {
	s := State{Pos: geom.Pt(0, 0), Dest: geom.Pt(3, 4), Speed: 1}
	h := s.Heading()
	if !almostEqual(h.X, 0.6, 1e-12) || !almostEqual(h.Y, 0.8, 1e-12) {
		t.Fatalf("Heading = %v", h)
	}
	if !almostEqual(h.Norm(), 1, 1e-12) {
		t.Fatalf("heading not unit: %v", h.Norm())
	}
	// Paused host has no heading.
	s.PauseLeft = 1
	if s.Heading() != (geom.Point{}) {
		t.Error("paused host must have zero heading")
	}
	// At destination: zero heading.
	s2 := State{Pos: geom.Pt(1, 1), Dest: geom.Pt(1, 1)}
	if s2.Heading() != (geom.Point{}) {
		t.Error("arrived host must have zero heading")
	}
}

func TestLongRunCoversArea(t *testing.T) {
	// Statistical: over a long run, the host visits all four quadrants.
	area := geom.NewRect(0, 0, 10, 10)
	m := mustWaypoint(t, area, 1, 2, 0)
	rng := rand.New(rand.NewSource(5))
	s := m.Init(rng)
	var quadrants [4]bool
	for i := 0; i < 20000; i++ {
		m.Step(&s, 0.3, rng)
		qi := 0
		if s.Pos.X >= 5 {
			qi |= 1
		}
		if s.Pos.Y >= 5 {
			qi |= 2
		}
		quadrants[qi] = true
	}
	for i, v := range quadrants {
		if !v {
			t.Errorf("quadrant %d never visited", i)
		}
	}
}

func TestExp(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const rate = 2.0
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := Exp(rng, rate)
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.02 {
		t.Errorf("Exp mean = %v want %v", mean, 1/rate)
	}
	defer func() {
		if recover() == nil {
			t.Error("Exp with rate 0 must panic")
		}
	}()
	Exp(rng, 0)
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, mean := range []float64{0.5, 3, 12, 80} {
		var sum, sumSq float64
		const n = 20000
		for i := 0; i < n; i++ {
			v := float64(Poisson(rng, mean))
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.1 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.15*mean+0.3 {
			t.Errorf("Poisson(%v) variance = %v", mean, variance)
		}
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -3) != 0 {
		t.Error("non-positive mean must yield 0")
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
