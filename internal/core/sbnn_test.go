package core

import (
	"math/rand"
	"sort"
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// testWorld builds a random POI database, a broadcast schedule over it,
// and sound peer caches.
type testWorld struct {
	db    []broadcast.POI
	sched *broadcast.Schedule
	area  geom.Rect
}

func newTestWorld(t *testing.T, rng *rand.Rand, n int) *testWorld {
	t.Helper()
	area := geom.NewRect(0, 0, 32, 32)
	db := make([]broadcast.POI, n)
	for i := range db {
		db[i] = broadcast.POI{ID: int64(i), Pos: geom.Pt(rng.Float64()*32, rng.Float64()*32)}
	}
	sched, err := broadcast.NewSchedule(db, broadcast.Config{
		Area:           area,
		Order:          4,
		PacketCapacity: 4,
		M:              4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{db: db, sched: sched, area: area}
}

// soundPeers builds peers whose VRs are sound w.r.t. the database.
func (w *testWorld) soundPeers(rng *rand.Rand, count int) []PeerData {
	var peers []PeerData
	for i := 0; i < count; i++ {
		cx, cy := rng.Float64()*32, rng.Float64()*32
		vr := geom.NewRect(cx, cy, cx+2+rng.Float64()*8, cy+2+rng.Float64()*8)
		pd := PeerData{VR: vr}
		for _, p := range w.db {
			if vr.Contains(p.Pos) {
				pd.POIs = append(pd.POIs, p)
			}
		}
		peers = append(peers, pd)
	}
	return peers
}

func (w *testWorld) truth(q geom.Point, k int) []broadcast.POI {
	s := append([]broadcast.POI(nil), w.db...)
	sort.Slice(s, func(i, j int) bool {
		di, dj := s[i].Pos.DistSq(q), s[j].Pos.DistSq(q)
		if di != dj {
			return di < dj
		}
		return s[i].ID < s[j].ID
	})
	if k > len(s) {
		k = len(s)
	}
	return s[:k]
}

// TestSBNNExactness: whatever the outcome except approximate, SBNN must
// return exactly the true k nearest neighbors.
func TestSBNNExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := newTestWorld(t, rng, 250)
	for trial := 0; trial < 120; trial++ {
		q := geom.Pt(rng.Float64()*32, rng.Float64()*32)
		peers := w.soundPeers(rng, rng.Intn(6))
		k := 1 + rng.Intn(6)
		res := SBNN(q, peers, SBNNConfig{K: k, Lambda: 0.2}, w.sched, rng.Int63n(1000))
		if res.Outcome == OutcomeApproximate {
			t.Fatalf("trial %d: approximate outcome without acceptance", trial)
		}
		want := w.truth(q, k)
		if len(res.POIs) != len(want) {
			t.Fatalf("trial %d: got %d POIs want %d (outcome %v)",
				trial, len(res.POIs), len(want), res.Outcome)
		}
		for i := range want {
			if !almostEqual(res.POIs[i].Pos.Dist(q), want[i].Pos.Dist(q), 1e-9) {
				t.Fatalf("trial %d: rank %d distance mismatch (outcome %v, bounds %+v)",
					trial, i, res.Outcome, res.Bounds)
			}
		}
		// Verified outcomes must not touch the channel.
		if res.Outcome == OutcomeVerified && res.Access.PacketsRead != 0 {
			t.Fatalf("trial %d: verified outcome read packets", trial)
		}
		// Broadcast outcomes must report channel cost.
		if res.Outcome == OutcomeBroadcast && res.Access.IndexReads == 0 {
			t.Fatalf("trial %d: broadcast outcome without index read", trial)
		}
	}
}

// TestSBNNVerifiedWithBigPeerCoverage: a peer covering a huge region
// around q should fully verify small-k queries with zero channel access.
func TestSBNNVerifiedWithBigPeerCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := newTestWorld(t, rng, 300)
	q := geom.Pt(16, 16)
	vr := geom.NewRect(4, 4, 28, 28)
	pd := PeerData{VR: vr}
	for _, p := range w.db {
		if vr.Contains(p.Pos) {
			pd.POIs = append(pd.POIs, p)
		}
	}
	res := SBNN(q, []PeerData{pd}, SBNNConfig{K: 3, Lambda: 0.3}, w.sched, 0)
	if res.Outcome != OutcomeVerified {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	want := w.truth(q, 3)
	for i := range want {
		if res.POIs[i].ID != want[i].ID {
			t.Fatalf("rank %d: got %d want %d", i, res.POIs[i].ID, want[i].ID)
		}
	}
}

// TestSBNNApproximateAcceptance: with acceptance on and a permissive
// threshold, a full heap resolves without the channel.
func TestSBNNApproximateAcceptance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := newTestWorld(t, rng, 200)
	q := geom.Pt(16, 16)
	// A medium peer region: some candidates verified, heap fills, tail
	// unverified.
	vr := geom.NewRect(12, 12, 20, 20)
	pd := PeerData{VR: vr}
	for _, p := range w.db {
		if vr.Contains(p.Pos) {
			pd.POIs = append(pd.POIs, p)
		}
	}
	if len(pd.POIs) < 4 {
		t.Skip("layout produced too few cached POIs")
	}
	k := len(pd.POIs) // force unverified tail entries
	cfgAccept := SBNNConfig{K: k, Lambda: 0.05, AcceptApproximate: true, MinCorrectness: 0}
	res := SBNN(q, []PeerData{pd}, cfgAccept, w.sched, 0)
	if res.Outcome == OutcomeBroadcast {
		t.Fatalf("acceptance with zero threshold still used the channel (heap %v/%v)",
			res.Heap.VerifiedCount(), res.Heap.Len())
	}
	// With threshold 1.0 the same query must fall back (unless fully
	// verified, which k=len(POIs) makes unlikely here).
	if res.Outcome == OutcomeApproximate {
		cfgStrict := cfgAccept
		cfgStrict.MinCorrectness = 1.0
		res2 := SBNN(q, []PeerData{pd}, cfgStrict, w.sched, 0)
		if res2.Outcome == OutcomeApproximate {
			t.Fatal("threshold 1.0 must reject unverified entries")
		}
	}
}

// TestSBNNNoPeersFallsBack: with no peers at all, SBNN is exactly the
// plain on-air query.
func TestSBNNNoPeersFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := newTestWorld(t, rng, 150)
	q := geom.Pt(10, 20)
	res := SBNN(q, nil, SBNNConfig{K: 4, Lambda: 0.2}, w.sched, 7)
	if res.Outcome != OutcomeBroadcast {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.Bounds != (broadcast.Bounds{}) {
		t.Fatalf("empty heap must give no bounds: %+v", res.Bounds)
	}
	want := w.truth(q, 4)
	for i := range want {
		if res.POIs[i].ID != want[i].ID {
			t.Fatalf("rank %d mismatch", i)
		}
	}
}

// TestSBNNNilSchedule: without a channel, the best-effort peer answer is
// returned.
func TestSBNNNilSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := newTestWorld(t, rng, 100)
	peers := w.soundPeers(rng, 2)
	q := geom.Pt(16, 16)
	res := SBNN(q, peers, SBNNConfig{K: 10, Lambda: 0.2}, nil, 0)
	if res.Outcome != OutcomeBroadcast {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.Access.PacketsRead != 0 {
		t.Fatal("nil schedule cannot read packets")
	}
	if len(res.POIs) != res.Heap.Len() {
		t.Fatalf("POIs %d != heap %d", len(res.POIs), res.Heap.Len())
	}
}

// TestSBNNBoundsReduceChannelWork: with strong peer knowledge the
// filtered on-air search must read no more packets than the plain one.
func TestSBNNBoundsReduceChannelWork(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := newTestWorld(t, rng, 400)
	q := geom.Pt(16, 16)
	vr := geom.NewRect(10, 10, 22, 22)
	pd := PeerData{VR: vr}
	for _, p := range w.db {
		if vr.Contains(p.Pos) {
			pd.POIs = append(pd.POIs, p)
		}
	}
	k := len(pd.POIs) + 5 // guarantees fallback with a mixed heap
	resShared := SBNN(q, []PeerData{pd}, SBNNConfig{K: k, Lambda: 0.2}, w.sched, 0)
	resPlain := SBNN(q, nil, SBNNConfig{K: k, Lambda: 0.2}, w.sched, 0)
	if resShared.Outcome != OutcomeBroadcast || resPlain.Outcome != OutcomeBroadcast {
		t.Skip("unexpected outcomes for this layout")
	}
	if resShared.Access.PacketsRead > resPlain.Access.PacketsRead {
		t.Fatalf("sharing increased channel reads: %d > %d",
			resShared.Access.PacketsRead, resPlain.Access.PacketsRead)
	}
	// Results still exact.
	want := w.truth(q, k)
	for i := range want {
		if !almostEqual(resShared.POIs[i].Pos.Dist(q), want[i].Pos.Dist(q), 1e-9) {
			t.Fatalf("rank %d mismatch with bounds %+v", i, resShared.Bounds)
		}
	}
}

func TestSBNNZeroK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := newTestWorld(t, rng, 50)
	res := SBNN(geom.Pt(5, 5), nil, SBNNConfig{K: 0, Lambda: 0.2}, w.sched, 0)
	if len(res.POIs) != 0 {
		t.Fatalf("k=0 returned %d POIs", len(res.POIs))
	}
}
