package p2p

import (
	"math/rand"
	"sort"
	"testing"

	"lbsq/internal/geom"
)

func mustNetwork(t *testing.T, area geom.Rect, cell float64) *Network {
	t.Helper()
	n, err := NewNetwork(area, cell)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(geom.Rect{}, 1); err == nil {
		t.Error("empty area must be rejected")
	}
	if _, err := NewNetwork(geom.NewRect(0, 0, 1, 1), 0); err == nil {
		t.Error("zero cell size must be rejected")
	}
	if _, err := NewNetwork(geom.NewRect(0, 0, 1, 1), -2); err == nil {
		t.Error("negative cell size must be rejected")
	}
}

func TestUpdateAndPosition(t *testing.T) {
	n := mustNetwork(t, geom.NewRect(0, 0, 10, 10), 1)
	n.Update(0, geom.Pt(5, 5))
	p, ok := n.Position(0)
	if !ok || p != geom.Pt(5, 5) {
		t.Fatalf("Position = %v, %v", p, ok)
	}
	if _, ok := n.Position(1); ok {
		t.Error("unregistered host must not be found")
	}
	if _, ok := n.Position(-1); ok {
		t.Error("negative id must not be found")
	}
	n.Update(0, geom.Pt(9, 9))
	p, _ = n.Position(0)
	if p != geom.Pt(9, 9) {
		t.Fatalf("moved Position = %v", p)
	}
	if n.Len() != 1 {
		t.Fatalf("Len = %d", n.Len())
	}
}

func TestRemove(t *testing.T) {
	n := mustNetwork(t, geom.NewRect(0, 0, 10, 10), 2)
	n.Update(0, geom.Pt(1, 1))
	n.Update(1, geom.Pt(2, 2))
	n.Remove(0)
	if _, ok := n.Position(0); ok {
		t.Error("removed host still present")
	}
	if n.Len() != 1 {
		t.Fatalf("Len after remove = %d", n.Len())
	}
	got := n.Neighbors(geom.Pt(1, 1), 5, -1)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Neighbors after remove = %v", got)
	}
	n.Remove(0)  // idempotent
	n.Remove(99) // out of range, no panic
}

func TestNeighborsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	area := geom.NewRect(0, 0, 100, 100)
	n := mustNetwork(t, area, 7)
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		n.Update(i, pts[i])
	}
	for trial := 0; trial < 60; trial++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		radius := rng.Float64() * 25
		exclude := rng.Intn(len(pts))
		got := n.Neighbors(q, radius, exclude)
		var want []int
		for i, p := range pts {
			if i != exclude && p.Dist(q) <= radius {
				want = append(want, i)
			}
		}
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d neighbors", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: neighbor mismatch", trial)
			}
		}
	}
}

func TestNeighborsAfterMovement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	area := geom.NewRect(0, 0, 50, 50)
	n := mustNetwork(t, area, 5)
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*50, rng.Float64()*50)
		n.Update(i, pts[i])
	}
	// Move everyone several times, then validate against brute force.
	for round := 0; round < 5; round++ {
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*50, rng.Float64()*50)
			n.Update(i, pts[i])
		}
	}
	q := geom.Pt(25, 25)
	got := n.Neighbors(q, 10, -1)
	want := 0
	for _, p := range pts {
		if p.Dist(q) <= 10 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("after movement: got %d want %d", len(got), want)
	}
}

func TestNeighborsZeroRadius(t *testing.T) {
	n := mustNetwork(t, geom.NewRect(0, 0, 10, 10), 1)
	n.Update(0, geom.Pt(5, 5))
	if got := n.Neighbors(geom.Pt(5, 5), 0, -1); got != nil {
		t.Fatalf("zero radius = %v", got)
	}
}

func TestNeighborsOutOfAreaQuery(t *testing.T) {
	n := mustNetwork(t, geom.NewRect(0, 0, 10, 10), 1)
	n.Update(0, geom.Pt(0.5, 0.5))
	// Query point outside the area but radius reaching in.
	got := n.Neighbors(geom.Pt(-1, -1), 3, -1)
	if len(got) != 1 {
		t.Fatalf("out-of-area query = %v", got)
	}
}

func TestHostsOutsideAreaClamp(t *testing.T) {
	n := mustNetwork(t, geom.NewRect(0, 0, 10, 10), 2)
	// Mobility models may momentarily produce out-of-area positions; the
	// index clamps them into border cells and still finds them.
	n.Update(0, geom.Pt(12, 12))
	got := n.Neighbors(geom.Pt(9.5, 9.5), 4, -1)
	if len(got) != 1 {
		t.Fatalf("clamped host not found: %v", got)
	}
}

func TestTrafficStats(t *testing.T) {
	n := mustNetwork(t, geom.NewRect(0, 0, 1, 1), 1)
	n.RecordExchange(3)
	n.RecordExchange(0)
	if n.Stats.Requests != 2 || n.Stats.Replies != 3 {
		t.Fatalf("stats = %+v", n.Stats)
	}
}

func TestNeighborsMultiHop(t *testing.T) {
	n := mustNetwork(t, geom.NewRect(0, 0, 20, 20), 1)
	// A chain of hosts 0.9 apart; radius 1 reaches exactly one link.
	for i := 0; i < 6; i++ {
		n.Update(i, geom.Pt(float64(i)*0.9, 0))
	}
	q := geom.Pt(0, 0)
	oneHop := n.NeighborsMultiHop(q, 1, 1, 0)
	if len(oneHop) != 1 || oneHop[0] != 1 {
		t.Fatalf("1 hop = %v", oneHop)
	}
	twoHop := n.NeighborsMultiHop(q, 1, 2, 0)
	if len(twoHop) != 2 {
		t.Fatalf("2 hops = %v", twoHop)
	}
	fiveHop := n.NeighborsMultiHop(q, 1, 5, 0)
	if len(fiveHop) != 5 {
		t.Fatalf("5 hops = %v (whole chain minus self)", fiveHop)
	}
	// Hops beyond the chain length saturate.
	tenHop := n.NeighborsMultiHop(q, 1, 10, 0)
	if len(tenHop) != 5 {
		t.Fatalf("10 hops = %v", tenHop)
	}
	// hops<=1 equals Neighbors.
	if got := n.NeighborsMultiHop(q, 1, 0, 0); len(got) != 1 {
		t.Fatalf("0 hops = %v", got)
	}
}

func TestNeighborsMultiHopNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := mustNetwork(t, geom.NewRect(0, 0, 10, 10), 1)
	for i := 0; i < 200; i++ {
		n.Update(i, geom.Pt(rng.Float64()*10, rng.Float64()*10))
	}
	got := n.NeighborsMultiHop(geom.Pt(5, 5), 1.2, 3, 7)
	seen := map[int]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		if id == 7 {
			t.Fatal("excluded id returned")
		}
		seen[id] = true
	}
	// Multi-hop is a superset of single-hop.
	for _, id := range n.Neighbors(geom.Pt(5, 5), 1.2, 7) {
		if !seen[id] {
			t.Fatalf("single-hop neighbor %d missing from multi-hop", id)
		}
	}
}

// TestLenChurn: Len must stay exact — O(1) via the live-host counter —
// through arbitrary interleavings of registrations, moves, removals,
// double-removals and re-registrations.
func TestLenChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := mustNetwork(t, geom.NewRect(0, 0, 10, 10), 1)
	alive := map[int]bool{}
	for op := 0; op < 5000; op++ {
		id := rng.Intn(60)
		switch rng.Intn(3) {
		case 0, 1: // register or move
			n.Update(id, geom.Pt(rng.Float64()*10, rng.Float64()*10))
			alive[id] = true
		case 2: // remove (possibly already absent)
			n.Remove(id)
			delete(alive, id)
		}
		if n.Len() != len(alive) {
			t.Fatalf("op %d: Len = %d, want %d", op, n.Len(), len(alive))
		}
	}
	// Drain completely, including ids never registered.
	for id := 0; id < 70; id++ {
		n.Remove(id)
	}
	if n.Len() != 0 {
		t.Fatalf("Len after drain = %d", n.Len())
	}
}
