package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randomUnion builds a union of n random rects over a 100×100 area —
// large enough that the strip indexes engage (n >= the index minimums).
func randomUnion(rng *rand.Rand, n int) *RectUnion {
	u := &RectUnion{}
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*90, rng.Float64()*90
		w, h := 1+rng.Float64()*9, 1+rng.Float64()*9
		u.Add(NewRect(x, y, x+w, y+h))
	}
	return u
}

// bruteBoundaryDist is the unpruned reference: scan every boundary
// segment. Exact-equality reference for the strip-indexed search (min
// over the same Dist values is order-independent).
func bruteBoundaryDist(u *RectUnion, p Point) float64 {
	best := math.Inf(1)
	for _, s := range u.Boundary() {
		if d := s.Dist(p); d < best {
			best = d
		}
	}
	return best
}

// bruteCircleArea is the unpruned reference: sum CircleRectArea over
// every disjoint rect.
func bruteCircleArea(u *RectUnion, c Point, radius float64) float64 {
	total := 0.0
	mbr := RectAround(c, radius)
	for _, d := range u.Disjoint() {
		if !d.Intersects(mbr) {
			continue
		}
		total += CircleRectArea(c, radius, d)
	}
	return total
}

// TestBoundaryDistIndexedMatchesBrute is the differential test for the
// strip-indexed boundary search: on randomized unions big enough to
// build the index, the pruned result must exactly equal the full scan.
func TestBoundaryDistIndexedMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		u := randomUnion(rng, 30+rng.Intn(60))
		if len(u.Boundary()) < boundaryIndexMin {
			t.Fatalf("trial %d: union too small to engage the index (%d segs)", trial, len(u.Boundary()))
		}
		for i := 0; i < 50; i++ {
			// Mix in-area points with far-outside ones (index edge buckets).
			p := Pt(rng.Float64()*140-20, rng.Float64()*140-20)
			got := u.BoundaryDist(p)
			want := bruteBoundaryDist(u, p)
			if got != want {
				t.Fatalf("trial %d: BoundaryDist(%v) = %v, brute = %v", trial, p, got, want)
			}
		}
	}
}

// TestIntersectCircleAreaIndexedMatchesBrute checks the strip-pruned
// circle-area sum against the full scan. Summation order differs, so a
// tiny relative tolerance absorbs float reassociation.
func TestIntersectCircleAreaIndexedMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 30; trial++ {
		u := randomUnion(rng, 30+rng.Intn(60))
		if len(u.Disjoint()) < disjointIndexMin {
			continue // decomposition merged below the index threshold; nothing to test
		}
		for i := 0; i < 40; i++ {
			c := Pt(rng.Float64()*120-10, rng.Float64()*120-10)
			r := rng.Float64() * 30
			got := u.IntersectCircleArea(c, r)
			want := bruteCircleArea(u, c, r)
			tol := 1e-9 * math.Max(1, want)
			if math.Abs(got-want) > tol {
				t.Fatalf("trial %d: IntersectCircleArea(%v, %v) = %v, brute = %v", trial, c, r, got, want)
			}
		}
	}
}

// TestIndexSurvivesReset checks the invalidate/rebuild cycle: mutating
// the union after queries must produce the same answers as a fresh one.
func TestIndexSurvivesReset(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	u := randomUnion(rng, 64)
	p := Pt(50, 50)
	_ = u.BoundaryDist(p) // build indexes
	_ = u.IntersectCircleArea(p, 20)

	// Mutate: reset and load a different union into the same instance.
	rects := make([]Rect, 0, 40)
	for i := 0; i < 40; i++ {
		x, y := rng.Float64()*90, rng.Float64()*90
		rects = append(rects, NewRect(x, y, x+5, y+5))
	}
	u.Reset()
	fresh := &RectUnion{}
	for _, r := range rects {
		u.Add(r)
		fresh.Add(r)
	}
	for i := 0; i < 50; i++ {
		q := Pt(rng.Float64()*100, rng.Float64()*100)
		if got, want := u.BoundaryDist(q), fresh.BoundaryDist(q); got != want {
			t.Fatalf("reused union BoundaryDist(%v) = %v, fresh = %v", q, got, want)
		}
		r := rng.Float64() * 25
		got, want := u.IntersectCircleArea(q, r), fresh.IntersectCircleArea(q, r)
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("reused union IntersectCircleArea(%v, %v) = %v, fresh = %v", q, r, got, want)
		}
	}
}
