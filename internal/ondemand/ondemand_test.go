package ondemand

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"lbsq/internal/geom"
	"lbsq/internal/rtree"
)

func demoItems(rng *rand.Rand, n int) []rtree.Item {
	items := make([]rtree.Item, n)
	for i := range items {
		items[i] = rtree.Item{ID: int64(i), Pos: geom.Pt(rng.Float64()*20, rng.Float64()*20)}
	}
	return items
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, 0); err == nil {
		t.Error("zero service rate must be rejected")
	}
	if _, err := NewServer(nil, -1); err == nil {
		t.Error("negative service rate must be rejected")
	}
}

func TestQueriesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := demoItems(rng, 400)
	s, err := NewServer(items, 100)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := geom.Pt(rng.Float64()*20, rng.Float64()*20)
		got := s.KNN(q, 5)
		want := append([]rtree.Item(nil), items...)
		sort.Slice(want, func(i, j int) bool {
			return want[i].Pos.DistSq(q) < want[j].Pos.DistSq(q)
		})
		for i := range got {
			if got[i].Pos.Dist(q) != want[i].Pos.Dist(q) {
				t.Fatalf("trial %d: KNN mismatch", trial)
			}
		}
		w := geom.NewRect(q.X-2, q.Y-2, q.X+2, q.Y+2)
		gotW := s.Window(w)
		wantN := 0
		for _, it := range items {
			if w.Contains(it.Pos) {
				wantN++
			}
		}
		if len(gotW) != wantN {
			t.Fatalf("trial %d: window %d want %d", trial, len(gotW), wantN)
		}
	}
}

func TestExpectedLatencyMM1(t *testing.T) {
	s, err := NewServer(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Idle server: 1/μ.
	if got := s.ExpectedLatency(0); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("idle latency = %v", got)
	}
	// Half load: 1/(10-5) = 0.2.
	if got := s.ExpectedLatency(5); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("half-load latency = %v", got)
	}
	// Saturation and beyond: infinite.
	if !math.IsInf(s.ExpectedLatency(10), 1) || !math.IsInf(s.ExpectedLatency(20), 1) {
		t.Error("saturated latency must be +Inf")
	}
	// Negative arrival clamps.
	if got := s.ExpectedLatency(-3); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("negative arrival latency = %v", got)
	}
	if got := s.Utilization(5); got != 0.5 {
		t.Errorf("utilization = %v", got)
	}
}

func TestScalabilitySweep(t *testing.T) {
	s, err := NewServer(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	rows := s.ScalabilitySweep([]int{100, 1000, 10000, 100000}, 0.01, 2.5)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// On-demand latency is non-decreasing in population and eventually
	// infinite; broadcast stays flat.
	prev := 0.0
	for i, r := range rows {
		if r.OnDemandLatency < prev {
			t.Fatalf("row %d: latency decreased", i)
		}
		prev = r.OnDemandLatency
		if r.BroadcastLatency != 2.5 {
			t.Fatalf("row %d: broadcast latency changed", i)
		}
	}
	if !math.IsInf(rows[3].OnDemandLatency, 1) {
		t.Error("100k clients at 0.01 q/s (1000 q/s > μ=100) must saturate")
	}
	// The crossover exists: small populations beat broadcast, large ones
	// lose to it.
	if rows[0].OnDemandLatency >= rows[0].BroadcastLatency {
		t.Error("lightly loaded on-demand should beat broadcast")
	}
	if rows[3].OnDemandLatency <= rows[3].BroadcastLatency {
		t.Error("saturated on-demand should lose to broadcast")
	}
}
