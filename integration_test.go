package lbsq_test

import (
	"math/rand"
	"testing"

	"lbsq"
	"lbsq/internal/quadtree"
)

// TestKnowledgePropagationChain: verified knowledge hops host-to-host.
// A queries the channel; B answers from A's cache and caches the verified
// knowledge itself; C then answers from B alone — two sharing hops away
// from the only channel access.
func TestKnowledgePropagationChain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	srv := demoServer(t, rng, 300)
	at := lbsq.Pt(10, 10)

	a := lbsq.NewClient(srv, at, 100)
	first := a.KNN(10, nil)
	if first.Outcome != lbsq.OutcomeBroadcast {
		t.Fatalf("A outcome = %v", first.Outcome)
	}

	// B asks for a generous k so the verified square it caches (inscribed
	// in its k-th verified distance) comfortably contains C's nearest
	// neighbor.
	b := lbsq.NewClient(srv, at, 100)
	second := b.KNN(6, a.Share())
	if second.Outcome != lbsq.OutcomeVerified {
		t.Fatalf("B outcome = %v (heap %d/%d verified)", second.Outcome,
			second.Heap.VerifiedCount(), second.Heap.Len())
	}
	if b.CacheSize() == 0 {
		t.Fatal("B cached nothing from a verified answer")
	}

	c := lbsq.NewClient(srv, at, 100)
	third := c.KNN(1, b.Share())
	if third.Outcome != lbsq.OutcomeVerified {
		t.Fatalf("C outcome = %v (B shared %d regions)", third.Outcome, len(b.Share()))
	}
	// All three agree on the nearest neighbor.
	if third.POIs[0].ID != second.POIs[0].ID || third.POIs[0].ID != first.POIs[0].ID {
		t.Fatal("nearest neighbor changed along the chain")
	}
}

// TestWindowAgainstQuadtreeGroundTruth cross-checks the full sharing
// pipeline against an entirely independent spatial index (the PR
// quadtree baseline): whatever mixture of peer caches answers a window
// query, the result equals the quadtree's.
func TestWindowAgainstQuadtreeGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	srv := demoServer(t, rng, 400)
	qt, err := quadtree.New(srv.Area(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range srv.POIs() {
		if err := qt.Insert(quadtree.Item{ID: p.ID, Pos: p.Pos}); err != nil {
			t.Fatal(err)
		}
	}

	// A rolling population of clients issuing and sharing window queries.
	var fleet []*lbsq.Client
	for i := 0; i < 6; i++ {
		fleet = append(fleet, lbsq.NewClient(srv,
			lbsq.Pt(rng.Float64()*20, rng.Float64()*20), 60))
	}
	for round := 0; round < 40; round++ {
		c := fleet[rng.Intn(len(fleet))]
		c.MoveTo(lbsq.Pt(rng.Float64()*18+1, rng.Float64()*18+1))
		side := 0.5 + rng.Float64()*2
		w := lbsq.RectAround(c.Pos(), side/2)
		var peers []lbsq.PeerData
		for _, other := range fleet {
			if other != c {
				peers = append(peers, other.Share()...)
			}
		}
		res := c.Window(w, peers)
		want := qt.Window(w)
		if len(res.POIs) != len(want) {
			t.Fatalf("round %d: got %d POIs want %d (outcome %v)",
				round, len(res.POIs), len(want), res.Outcome)
		}
		ids := map[int64]bool{}
		for _, p := range res.POIs {
			ids[p.ID] = true
		}
		for _, itm := range want {
			if !ids[itm.ID] {
				t.Fatalf("round %d: missing POI %d", round, itm.ID)
			}
		}
	}
}

// TestMixedQueryWorkloadStaysExact: interleaved kNN and window queries
// with promiscuous sharing never produce a wrong exact answer.
func TestMixedQueryWorkloadStaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	srv := demoServer(t, rng, 350)
	var fleet []*lbsq.Client
	for i := 0; i < 8; i++ {
		fleet = append(fleet, lbsq.NewClient(srv,
			lbsq.Pt(rng.Float64()*20, rng.Float64()*20), 40))
	}
	for round := 0; round < 60; round++ {
		c := fleet[rng.Intn(len(fleet))]
		c.MoveTo(lbsq.Pt(rng.Float64()*20, rng.Float64()*20))
		var peers []lbsq.PeerData
		for _, other := range fleet {
			if other != c {
				peers = append(peers, other.Share()...)
			}
		}
		if rng.Intn(2) == 0 {
			k := 1 + rng.Intn(6)
			res := c.KNN(k, peers)
			if res.Outcome == lbsq.OutcomeApproximate {
				continue // approximate answers are advisory by contract
			}
			want := truthKNN(srv.POIs(), c.Pos(), k)
			if len(res.POIs) != len(want) {
				t.Fatalf("round %d: kNN size %d want %d", round, len(res.POIs), len(want))
			}
			for i := range want {
				gd := res.POIs[i].Pos.Dist(c.Pos())
				wd := want[i].Pos.Dist(c.Pos())
				if gd != wd {
					t.Fatalf("round %d: rank %d dist %v want %v (outcome %v)",
						round, i, gd, wd, res.Outcome)
				}
			}
		} else {
			w := lbsq.RectAround(c.Pos(), 0.5+rng.Float64())
			res := c.Window(w, peers)
			count := 0
			for _, p := range srv.POIs() {
				if w.Contains(p.Pos) {
					count++
				}
			}
			if len(res.POIs) != count {
				t.Fatalf("round %d: window %d want %d (outcome %v)",
					round, len(res.POIs), count, res.Outcome)
			}
		}
	}
}

// TestCachesStayWithinCapacity under the mixed workload.
func TestCachesStayWithinCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	srv := demoServer(t, rng, 300)
	c := lbsq.NewClient(srv, lbsq.Pt(10, 10), 25)
	for round := 0; round < 50; round++ {
		c.MoveTo(lbsq.Pt(rng.Float64()*20, rng.Float64()*20))
		if rng.Intn(2) == 0 {
			c.KNN(1+rng.Intn(8), nil)
		} else {
			c.Window(lbsq.RectAround(c.Pos(), 0.5+rng.Float64()), nil)
		}
		if c.CacheSize() > 25 {
			t.Fatalf("round %d: cache size %d exceeds capacity 25", round, c.CacheSize())
		}
	}
	if c.CacheSize() == 0 {
		t.Fatal("cache never filled")
	}
}
