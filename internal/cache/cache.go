// Package cache implements the mobile-host query-result cache of Section
// 4.1: every POI a host has verified is stored together with the MBR it
// was verified in (the host's verified region), and replacement follows
// the moving-direction + data-distance policy of Ren and Dunham ("Using
// semantic caching to manage location dependent data in mobile
// computing"), with LRU available as an ablation.
//
// A subtlety the paper leaves implicit: a verified region is a *promise*
// that the cache holds every POI inside it. Evicting an individual POI
// while keeping its region would poison peers with false negatives, so
// this cache evicts at region granularity (an entire verified region and
// its POIs leave together) and shrinks oversized incoming regions to the
// sub-rectangle actually covered by the POIs it can afford to keep. Both
// choices preserve the soundness invariant NNV relies on.
package cache

import (
	"math"
	"sort"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// Policy selects the replacement strategy.
type Policy int

const (
	// DirectionDistance evicts the region whose center is effectively
	// farthest from the host, penalizing regions behind its heading —
	// the policy of the paper (via Ren–Dunham).
	DirectionDistance Policy = iota
	// LRU evicts the least recently used region (ablation baseline).
	LRU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case DirectionDistance:
		return "direction-distance"
	case LRU:
		return "lru"
	default:
		return "unknown"
	}
}

// behindPenalty scales the effective distance of regions that lie behind
// the host's direction of travel; they are evicted first.
const behindPenalty = 3.0

// Region is one verified region: an MBR and every POI inside it.
type Region struct {
	Rect  geom.Rect
	POIs  []broadcast.POI
	Stamp int64 // last use time (for LRU)
	// Epoch is the POI-database version this region was verified
	// against (consistency layer; zero when the POI set is static).
	Epoch int64
	// Born is the insertion time, for TTL expiry (VRTTLSec knob).
	Born int64
}

// Cache is a bounded store of verified regions.
type Cache struct {
	capacity int // maximum total POIs (the paper's CSize)
	policy   Policy
	regions  []Region
	size     int
}

// cost is a region's charge against the capacity: its POI count, floored
// at one so that empty verified regions ("I know there is nothing here")
// still occupy a slot and the cache stays bounded.
func cost(r Region) int {
	if len(r.POIs) < 1 {
		return 1
	}
	return len(r.POIs)
}

// New returns an empty cache holding at most capacity POIs.
func New(capacity int, policy Policy) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{capacity: capacity, policy: policy}
}

// Capacity returns the POI capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Size returns the capacity units in use: the cached POI count, with
// every empty region charged one unit.
func (c *Cache) Size() int { return c.size }

// POICount returns the number of POIs currently cached.
func (c *Cache) POICount() int {
	n := 0
	for _, r := range c.regions {
		n += len(r.POIs)
	}
	return n
}

// Regions returns the cached verified regions. The slice and its members
// must not be modified.
func (c *Cache) Regions() []Region { return c.regions }

// Clear removes everything.
func (c *Cache) Clear() {
	c.regions = nil
	c.size = 0
}

// Insert stores a verified region, evicting older regions by policy when
// the capacity is exceeded. pos and heading describe the host's current
// location and unit direction of travel (heading may be the zero vector
// when stationary). now is the current logical time.
//
// The invariant maintained is: for every stored region R, the cache holds
// exactly the POIs of the underlying database that lie inside R.Rect.
func (c *Cache) Insert(r Region, pos, heading geom.Point, now int64) {
	if c.capacity == 0 || r.Rect.Empty() {
		return
	}
	r.Stamp = now
	r.Born = now
	if len(r.POIs) > c.capacity {
		r = shrinkRegion(r, c.capacity)
		if r.Rect.Empty() {
			return
		}
	}
	c.regions = append(c.regions, r)
	c.size += cost(r)
	c.evictUntilFit(pos, heading)
}

// Touch refreshes the LRU stamp of region index i.
func (c *Cache) Touch(i int, now int64) {
	if i >= 0 && i < len(c.regions) {
		c.regions[i].Stamp = now
	}
}

// evictUntilFit removes whole regions until size <= capacity, never
// evicting the most recently inserted region unless it alone overflows.
func (c *Cache) evictUntilFit(pos, heading geom.Point) {
	for c.size > c.capacity && len(c.regions) > 1 {
		victim := c.pickVictim(pos, heading, len(c.regions)-1)
		c.size -= cost(c.regions[victim])
		c.regions = append(c.regions[:victim], c.regions[victim+1:]...)
	}
	// Degenerate: a single region larger than capacity (can only happen
	// if capacity shrank conceptually; Insert pre-shrinks new regions).
	if c.size > c.capacity && len(c.regions) == 1 {
		r := shrinkRegion(c.regions[0], c.capacity)
		c.size = cost(r)
		if r.Rect.Empty() {
			c.Clear()
			return
		}
		c.regions[0] = r
	}
}

// pickVictim selects the region index to evict, skipping `protect`.
func (c *Cache) pickVictim(pos, heading geom.Point, protect int) int {
	best := -1
	bestScore := math.Inf(-1)
	for i, r := range c.regions {
		if i == protect {
			continue
		}
		var score float64
		switch c.policy {
		case LRU:
			score = -float64(r.Stamp) // oldest stamp evicted first
		default:
			score = effectiveDistance(pos, heading, r.Rect.Center())
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// effectiveDistance is the data distance of Ren–Dunham adjusted for the
// direction of travel: regions behind the host count as farther.
func effectiveDistance(pos, heading, target geom.Point) float64 {
	d := pos.Dist(target)
	if heading.Norm() == 0 {
		return d
	}
	to := target.Sub(pos)
	if to.Norm() == 0 {
		return 0
	}
	dot := heading.X*to.X + heading.Y*to.Y
	if dot < 0 {
		return d * behindPenalty
	}
	return d
}

// shrinkRegion keeps the maxPOIs POIs closest to the region center and
// shrinks the rectangle to a sub-rectangle guaranteed to contain only
// kept POIs: the original rect intersected with the axis-aligned square
// inscribed in the disk of the last kept POI's distance.
func shrinkRegion(r Region, maxPOIs int) Region {
	if maxPOIs <= 0 {
		return Region{}
	}
	center := r.Rect.Center()
	pois := append([]broadcast.POI(nil), r.POIs...)
	sort.Slice(pois, func(i, j int) bool {
		return pois[i].Pos.DistSq(center) < pois[j].Pos.DistSq(center)
	})
	kept := pois[:maxPOIs]
	radius := kept[len(kept)-1].Pos.Dist(center)
	// Ties at the cut distance would leave dropped POIs inside the kept
	// radius; shrink strictly below the first dropped POI's distance.
	if len(pois) > maxPOIs {
		dropped := pois[maxPOIs].Pos.Dist(center)
		if dropped <= radius {
			// Cannot soundly separate kept from dropped; shrink to just
			// under the dropped distance and re-filter.
			radius = math.Nextafter(dropped, 0)
		}
	}
	half := radius / math.Sqrt2
	square := geom.RectAround(center, half)
	rect, ok := r.Rect.Intersect(square)
	if !ok {
		return Region{}
	}
	var inside []broadcast.POI
	for _, p := range kept {
		if rect.Contains(p.Pos) {
			inside = append(inside, p)
		}
	}
	return Region{Rect: rect, POIs: inside, Stamp: r.Stamp, Epoch: r.Epoch, Born: r.Born}
}
