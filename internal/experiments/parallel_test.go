package experiments

import (
	"reflect"
	"testing"
)

// tinyOptions is a scale small enough to sweep a full figure in a few
// seconds while still exercising every parameter set and x value.
func tinyOptions() Options {
	return Options{
		SideMiles:      1,
		DurationHours:  0.02,
		TimeStepSec:    15,
		Seed:           42,
		PrefillPerHost: 2,
	}
}

// TestParallelSweepIdentity is the end-to-end determinism gate for the
// sweep engine wiring: the same figure regenerated serially, with an
// explicit worker count, and with the auto (GOMAXPROCS) setting must be
// bit-identical — every Point, every Stats field. One kNN figure and
// one window figure cover both query pipelines.
func TestParallelSweepIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweeps in -short mode")
	}
	figures := []struct {
		name string
		run  func(Options) Figure
	}{
		{"Fig10-knn", Fig10},
		{"Fig15-window", Fig15},
	}
	for _, f := range figures {
		f := f
		t.Run(f.name, func(t *testing.T) {
			serial := tinyOptions()
			serial.Parallel = 1
			want := f.run(serial)
			for _, workers := range []int{0, 3} {
				opt := tinyOptions()
				opt.Parallel = workers
				got := f.run(opt)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s with Parallel=%d differs from serial", f.name, workers)
				}
			}
		})
	}
}
