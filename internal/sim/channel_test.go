package sim

// Behavioral tests for the correlated-failure channel layer (DESIGN.md
// §13): Gilbert–Elliott burst fading, per-MH blackout windows, and the
// degraded-mode fallback ladder. The zero-knob byte-identity contract is
// verified binary-vs-binary out of band; these tests pin the in-process
// invariants — termination, self-check soundness at every grid point,
// no false convictions, and the ladder's availability win over the
// naive stall-and-retry baseline.

import (
	"reflect"
	"testing"

	"lbsq/internal/faults"
)

// channelWorld builds a small dense world and lets the caller arm
// channel and resilience knobs on top.
func channelWorld(t *testing.T, seed int64, mutate func(*Params)) *World {
	t.Helper()
	p := LACity().Scaled(2).WithDuration(0.1)
	p.Kind = KNNQuery
	p.Seed = seed
	p.TimeStepSec = 10
	p.AcceptApproximate = true
	if mutate != nil {
		mutate(&p)
	}
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w.SelfCheck = true
	return w
}

// burstProfile is a deep-fade Gilbert–Elliott config: the bad state
// kills every frame (a deep fade by the DeepFadeLoss threshold), dwells
// are long relative to a collection round so fades persist through it.
func burstProfile() faults.Profile {
	return faults.Profile{
		BurstBadLoss:   1,
		BurstBadSlots:  400,  // 2 s of dead air per fade at 0.05 s/slot
		BurstGoodSlots: 1200, // 25% of slots faded
	}
}

// blackoutProfile schedules per-MH downlink outages with a 1/3 duty
// cycle.
func blackoutProfile() faults.Profile {
	return faults.Profile{BlackoutPeriodSec: 60, BlackoutDurationSec: 20}
}

// checkTermination pins the extended outcome partition: every counted
// query lands in exactly one of the five outcome classes.
func checkTermination(t *testing.T, s Stats) {
	t.Helper()
	if got := s.Verified + s.Approximate + s.Broadcast + s.Degraded + s.Unanswered; got != s.Queries {
		t.Errorf("outcome classes sum to %d, want %d queries (v=%d a=%d b=%d d=%d u=%d)",
			got, s.Queries, s.Verified, s.Approximate, s.Broadcast, s.Degraded, s.Unanswered)
	}
}

// TestChannelLayerZeroWhenUnarmed: a run with only legacy knobs armed
// (Bernoulli losses, churn, deadlines, breakers) must never move a
// channel-layer counter — the layer is structurally inert without its
// own knobs.
func TestChannelLayerZeroWhenUnarmed(t *testing.T) {
	w := channelWorld(t, 7, func(p *Params) {
		p.Faults.RequestLoss = 0.2
		p.Faults.ReplyLoss = 0.1
		p.Faults.MaxRetries = 3
		p.Faults.ChurnRate = 0.1
		p.DeadlineSlots = 16
		p.BreakerThreshold = 3
	})
	s := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if ev := s.ChannelEvents(); ev != 0 {
		t.Errorf("ChannelEvents() = %d with channel knobs off, want 0", ev)
	}
	if s.AnsweredInBudget != 0 {
		t.Errorf("AnsweredInBudget = %d with channel knobs off, want 0", s.AnsweredInBudget)
	}
	checkTermination(t, s)
}

// TestChannelGridSelfCheckGreen: SelfCheck must hold at every point of
// a burst×blackout×loss grid, planner on and off, for both query kinds.
// Degraded answers are never checked against ground truth as exact —
// the gate is that nothing on any rung produces a verified-wrong
// result — and the five outcome classes partition the counted queries
// everywhere.
func TestChannelGridSelfCheckGreen(t *testing.T) {
	kinds := []QueryKind{KNNQuery, WindowQuery}
	for _, kind := range kinds {
		for _, burst := range []bool{false, true} {
			for _, blackout := range []bool{false, true} {
				for _, loss := range []float64{0, 0.2} {
					for _, planner := range []bool{false, true} {
						if !burst && !blackout && !planner {
							continue // the legacy quadrant, covered elsewhere
						}
						w := channelWorld(t, 11, func(p *Params) {
							p.Kind = kind
							p.DurationHours = 0.06
							if burst {
								bp := burstProfile()
								p.Faults.BurstBadLoss = bp.BurstBadLoss
								p.Faults.BurstBadSlots = bp.BurstBadSlots
								p.Faults.BurstGoodSlots = bp.BurstGoodSlots
							}
							if blackout {
								bp := blackoutProfile()
								p.Faults.BlackoutPeriodSec = bp.BlackoutPeriodSec
								p.Faults.BlackoutDurationSec = bp.BlackoutDurationSec
							}
							p.Faults.RequestLoss = loss
							p.Faults.ReplyLoss = loss
							if loss > 0 {
								p.Faults.MaxRetries = 3
							}
							p.DeadlineSlots = 16
							p.DegradedMode = planner
						})
						s := w.Run()
						if err := w.SelfCheckErr(); err != nil {
							t.Fatalf("kind=%v burst=%v blackout=%v loss=%v planner=%v: self-check: %v",
								kind, burst, blackout, loss, planner, err)
						}
						checkTermination(t, s)
						if blackout && !planner && s.BlackoutQueries == 0 {
							t.Errorf("kind=%v loss=%v: naive blackout run never stalled a query", kind, loss)
						}
						if (burst || blackout) && s.AnsweredInBudget == 0 {
							t.Errorf("kind=%v burst=%v blackout=%v loss=%v planner=%v: no query ever answered in budget",
								kind, burst, blackout, loss, planner)
						}
					}
				}
			}
		}
	}
}

// TestFadeNeverConvictsPeers: with only the fading chain armed (every
// peer honest, zero Bernoulli loss) and breakers on, the reply
// timeouts a deep fade causes must be suppressed rather than charged as
// strikes — a fade removes frames from the air; it says nothing about
// any individual peer.
func TestFadeNeverConvictsPeers(t *testing.T) {
	w := channelWorld(t, 13, func(p *Params) {
		p.Faults = burstProfile()
		p.Faults.MaxRetries = 2
		p.DeadlineSlots = 16
		p.BreakerThreshold = 3
	})
	s := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if s.BurstFrameLosses == 0 {
		t.Fatal("deep-fade chain never killed a frame — test exercises nothing")
	}
	if s.FadeSuppressedStrikes == 0 {
		t.Error("fades caused timeouts but no strike was ever suppressed")
	}
	if s.BreakerTrips != 0 {
		t.Errorf("BreakerTrips = %d with honest peers and fade-only losses, want 0", s.BreakerTrips)
	}
	checkTermination(t, s)
}

// TestBlackoutNeverQuarantinesHonestPeers: blackout windows with the
// trust layer armed and every peer honest must produce zero audit
// failures and zero quarantines — a dark downlink makes audits
// impossible (budget 0), it must not make peers look guilty. The missed
// invalidation reports defer and replay at reacquisition.
func TestBlackoutNeverQuarantinesHonestPeers(t *testing.T) {
	w := channelWorld(t, 17, func(p *Params) {
		p.Faults = blackoutProfile()
		p.DeadlineSlots = 16
		p.AuditRate = 0.3
		p.UpdateRate = 2
		p.DegradedMode = true
	})
	s := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if s.AuditFailures != 0 {
		t.Errorf("AuditFailures = %d with honest peers, want 0", s.AuditFailures)
	}
	if s.PeersQuarantined != 0 {
		t.Errorf("PeersQuarantined = %d with honest peers under blackout, want 0", s.PeersQuarantined)
	}
	if s.IRDeferred == 0 {
		t.Error("blackout windows never deferred an IR listen")
	}
	if s.BlackoutRecoveries == 0 {
		t.Error("hosts entered blackout windows but never recovered")
	}
	checkTermination(t, s)
}

// TestLadderBeatsNaiveAvailability: under the same blackout schedule
// and seed, the fallback ladder must answer a strictly larger fraction
// of queries within the deadline budget than the naive baseline that
// stalls out each window — the availability curve EXPERIMENTS.md plots.
func TestLadderBeatsNaiveAvailability(t *testing.T) {
	arm := func(planner bool) func(*Params) {
		return func(p *Params) {
			p.Faults = blackoutProfile()
			p.DeadlineSlots = 16
			p.DegradedMode = planner
		}
	}
	naive := channelWorld(t, 19, arm(false)).Run()
	ladder := channelWorld(t, 19, arm(true)).Run()
	if naive.BlackoutQueries == 0 || naive.BlackoutWaitSlots == 0 {
		t.Fatal("naive run never stalled on a blackout — schedule exercises nothing")
	}
	if ladder.ModeP2POnly == 0 {
		t.Error("planner never placed a dark-downlink query on the P2P-only rung")
	}
	if ladder.BlackoutWaitSlots != 0 {
		t.Errorf("planner run stalled %d slots on blackouts, want 0", ladder.BlackoutWaitSlots)
	}
	if ladder.AnsweredInBudget <= naive.AnsweredInBudget {
		t.Errorf("ladder answered %d/%d in budget, naive %d/%d — ladder must win",
			ladder.AnsweredInBudget, ladder.Queries, naive.AnsweredInBudget, naive.Queries)
	}
	checkTermination(t, naive)
	checkTermination(t, ladder)
}

// TestOwnCacheRungServesWithStaleBound: with the downlink permanently
// dark and the ad-hoc channel in a permanent deep fade, the planner's
// last-resort rung must answer from the host's own cache — verified
// where the cached knowledge fully covers the query, degraded with an
// explicit staleness bound where it does not — and honestly report
// unanswered when the cache has nothing relevant.
func TestOwnCacheRungServesWithStaleBound(t *testing.T) {
	w := channelWorld(t, 23, func(p *Params) {
		p.Faults = faults.Profile{
			BurstBadLoss:        1,
			BurstBadSlots:       1 << 30, // the fade never lifts
			BurstGoodSlots:      1,
			BlackoutPeriodSec:   60,
			BlackoutDurationSec: 60, // the downlink never returns
		}
		p.DegradedMode = true
		p.DeadlineSlots = 16
		p.PrefillQueriesPerHost = 10
	})
	s := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if s.ModeOwnCache == 0 {
		t.Fatal("total outage never reached the own-cache rung")
	}
	if s.Degraded == 0 {
		t.Error("own-cache rung never produced a degraded answer despite prefilled caches")
	}
	if s.Degraded > 0 && s.StaleBoundMaxSec == 0 {
		t.Error("degraded own-cache answers carried no staleness bound")
	}
	// Own-cache knowledge that fully covers a query still verifies it —
	// that is sound offline — but nothing may claim the broadcast channel.
	if s.Broadcast != 0 {
		t.Errorf("total outage still resolved %d queries on the broadcast channel", s.Broadcast)
	}
	checkTermination(t, s)
}

// TestChannelDeterminism: the channel layer must be bit-deterministic
// under a fixed seed — same knobs, same seed, same Stats.
func TestChannelDeterminism(t *testing.T) {
	arm := func(p *Params) {
		bp := burstProfile()
		p.Faults = bp
		p.Faults.BlackoutPeriodSec = 60
		p.Faults.BlackoutDurationSec = 20
		p.Faults.RequestLoss = 0.1
		p.Faults.MaxRetries = 3
		p.DeadlineSlots = 16
		p.BreakerThreshold = 3
		p.DegradedMode = true
		p.DurationHours = 0.06
	}
	a := channelWorld(t, 29, arm).Run()
	b := channelWorld(t, 29, arm).Run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical channel runs diverged:\n%+v\n%+v", a, b)
	}
}
