package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"lbsq/internal/broadcast"
	"lbsq/internal/core"
	"lbsq/internal/geom"
	"lbsq/internal/sim"
)

// LifetimeRow reports how far a moving client can travel before the
// verified knowledge gained from one kNN retrieval stops verifying a
// fresh k-NN query at its new position.
type LifetimeRow struct {
	SetName string
	K       int
	// MeanMiles is the mean travel distance until verification fails.
	MeanMiles float64
	// MeanSeconds converts it to time at the given speed.
	MeanSeconds float64
	// SpeedMph is the assumed travel speed.
	SpeedMph float64
}

// ResultLifetime measures the "query promptness and accuracy" motivation
// of Section 1 quantitatively: a client performs one on-air kNN
// retrieval, caches the verified region, then drives in a straight line
// re-querying against its own cache until Lemma 3.1 can no longer verify
// all k answers. The distance at which that happens is how long one
// broadcast access keeps paying off — and how often a moving client must
// refresh.
func ResultLifetime(o Options) []LifetimeRow {
	o.applyDefaults()
	const speedMph = 30.0
	const step = 0.02 // miles per probe
	var rows []LifetimeRow
	for _, base := range sim.ParameterSets() {
		rng := rand.New(rand.NewSource(o.Seed))
		pois := make([]broadcast.POI, base.POINumber)
		for i := range pois {
			pois[i] = broadcast.POI{
				ID:  int64(i),
				Pos: geom.Pt(rng.Float64()*base.AreaMiles, rng.Float64()*base.AreaMiles),
			}
		}
		sched, err := broadcast.NewSchedule(pois, broadcast.Config{Area: base.Area()})
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		lambda := base.POIDensity()
		for _, k := range []int{1, 5, 10} {
			const trials = 60
			total := 0.0
			for trial := 0; trial < trials; trial++ {
				// Start well inside the area so straight drives stay in it.
				q := geom.Pt(
					base.AreaMiles/4+rng.Float64()*base.AreaMiles/2,
					base.AreaMiles/4+rng.Float64()*base.AreaMiles/2,
				)
				res := core.SBNN(q, nil, core.SBNNConfig{K: k, Lambda: lambda},
					sched, int64(trial)*101)
				if res.KnownRegion.Empty() {
					continue
				}
				own := []core.PeerData{{VR: res.KnownRegion, POIs: res.Known}}
				angle := rng.Float64() * 2 * math.Pi
				dir := geom.Pt(math.Cos(angle), math.Sin(angle))
				dist := 0.0
				pos := q
				for {
					pos = pos.Add(dir.Scale(step))
					dist += step
					nnv := core.NNV(pos, own, k, lambda)
					if nnv.Heap.VerifiedCount() < k {
						break
					}
					if dist > base.AreaMiles {
						break // safety bound
					}
				}
				total += dist
			}
			mean := total / 60
			rows = append(rows, LifetimeRow{
				SetName:     base.Name,
				K:           k,
				MeanMiles:   mean,
				MeanSeconds: mean / speedMph * 3600,
				SpeedMph:    speedMph,
			})
		}
	}
	return rows
}

// WriteLifetime renders the result-lifetime table.
func WriteLifetime(w io.Writer, rows []LifetimeRow) {
	fmt.Fprintf(w, "Result lifetime: travel distance until one retrieval's verified knowledge expires\n")
	fmt.Fprintf(w, "  %-20s %4s %12s %14s\n", "Parameter set", "k", "mean miles", "mean seconds")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %4d %12.3f %14.1f\n", r.SetName, r.K, r.MeanMiles, r.MeanSeconds)
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "  (at %.0f mph)\n", rows[0].SpeedMph)
	}
}
