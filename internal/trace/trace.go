// Package trace records per-query simulation events as JSON Lines, so
// runs can be analyzed offline (latency distributions, per-host behavior,
// outcome timelines) without re-running the simulator.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Event is one query record.
type Event struct {
	// TimeSec is the simulated time of the query.
	TimeSec float64 `json:"t"`
	// Host is the querying mobile host's id.
	Host int `json:"host"`
	// Kind is "knn" or "window".
	Kind string `json:"kind"`
	// Outcome is "verified", "approximate", or "broadcast" — or, on a
	// channel-less fallback rung, "degraded" (best-effort peer-side
	// answer) or "unanswered".
	Outcome string `json:"outcome"`
	// K is the requested result cardinality (kNN only).
	K int `json:"k,omitempty"`
	// Peers is how many peers were reachable.
	Peers int `json:"peers"`
	// LatencySlots / TuningSlots / PacketsRead / PacketsSkipped are the
	// channel costs (zero for peer-resolved queries).
	LatencySlots   int64 `json:"latency_slots"`
	TuningSlots    int64 `json:"tuning_slots"`
	PacketsRead    int   `json:"packets_read"`
	PacketsSkipped int   `json:"packets_skipped"`
	// Per-phase span fields (internal/metrics), populated only when the
	// simulator runs with metrics enabled. All five are deterministic
	// simulated quantities — channel phases in broadcast slots, CPU
	// phases in work units — and omitted from the encoding when zero, so
	// metrics-off traces stay byte-identical to the original format.
	SpanP2PSlots      int64 `json:"span_p2p_slots,omitempty"`
	SpanMergeWork     int64 `json:"span_merge_work,omitempty"`
	SpanVerifyWork    int64 `json:"span_verify_work,omitempty"`
	SpanTuneSlots     int64 `json:"span_tune_slots,omitempty"`
	SpanDownloadSlots int64 `json:"span_download_slots,omitempty"`
	// Trust-screen fields (internal/trust), populated only when the
	// simulator runs with the AuditRate knob on: spot audits run and
	// failed, cross-validation conflicts, the audit slot cost priced into
	// this query, and surviving contributions demoted to the
	// probabilistic path. All omitted when zero, so trust-off traces stay
	// byte-identical to the earlier formats.
	Audits        int   `json:"audits,omitempty"`
	AuditFailures int   `json:"audit_failures,omitempty"`
	Conflicts     int   `json:"conflicts,omitempty"`
	AuditSlots    int64 `json:"audit_slots,omitempty"`
	TaintedPeers  int   `json:"tainted_peers,omitempty"`
	// Consistency fields (internal/sim consistency layer), populated only
	// when the UpdateRate knob is on: slots this query spent listening for
	// the current invalidation report, and cross-validation disagreements
	// amnestied as staleness rather than counted as conflicts. Omitted
	// when zero, so consistency-off traces stay byte-identical.
	IRSlots        int64 `json:"ir_slots,omitempty"`
	StaleConflicts int   `json:"stale_conflicts,omitempty"`
	// Channel-impairment fields (burst/blackout knobs, degraded-mode
	// planner): the fallback rung this query ran on ("p2p-only",
	// "onair-only", "own-cache"; empty on the full protocol), the slots a
	// naive-mode query stalled waiting out a blackout window, and the
	// explicit staleness bound an own-cache-rung answer carried. All
	// omitted when zero/empty, so impairment-free traces stay
	// byte-identical.
	Mode          string `json:"mode,omitempty"`
	WaitSlots     int64  `json:"wait_slots,omitempty"`
	StaleBoundSec int64  `json:"stale_bound_sec,omitempty"`
	// Continuous-query fields, populated only for subscription
	// re-verification events (Kind "cont-knn"/"cont-window", armed by the
	// ContinuousRate knob): the safe-exit radius the new answer carries
	// (zero when the answer came back inexact) and the subscription's id.
	// Omitted when zero, so continuous-off traces stay byte-identical.
	SafeRadiusMiles float64 `json:"safe_radius_miles,omitempty"`
	Subscription    int     `json:"subscription,omitempty"`
	// Overload-control fields (crowd/overload knobs): why this query's
	// peer-gather was shed ("admission" or "governor"; empty when it ran
	// — shed queries fall back to own cache plus the broadcast channel),
	// and whether the query coalesced onto a co-located donor's gather
	// instead of gathering itself. Omitted when zero/empty, so
	// overload-free traces stay byte-identical.
	Shed      string `json:"shed,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
}

// Writer appends events as JSON Lines.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Record appends one event.
func (t *Writer) Record(e Event) error {
	if err := t.enc.Encode(e); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	t.n++
	return nil
}

// Count returns the number of recorded events.
func (t *Writer) Count() int { return t.n }

// Flush writes buffered events through to the underlying writer.
func (t *Writer) Flush() error { return t.bw.Flush() }

// Read parses a JSONL trace.
func Read(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}

// Summary aggregates a trace.
type Summary struct {
	Events       int
	ByOutcome    map[string]int
	MeanLatency  float64 // slots, over broadcast-resolved events
	MeanPeers    float64
	TotalPackets int
}

// Summarize computes aggregate statistics over events.
func Summarize(events []Event) Summary {
	s := Summary{ByOutcome: map[string]int{}}
	var latSum float64
	var latN int
	var peerSum float64
	for _, e := range events {
		s.Events++
		s.ByOutcome[e.Outcome]++
		s.TotalPackets += e.PacketsRead
		peerSum += float64(e.Peers)
		if e.Outcome == "broadcast" {
			latSum += float64(e.LatencySlots)
			latN++
		}
	}
	if latN > 0 {
		s.MeanLatency = latSum / float64(latN)
	}
	if s.Events > 0 {
		s.MeanPeers = peerSum / float64(s.Events)
	}
	return s
}
