package core

import (
	"math/rand"
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

func windowTruth(db []broadcast.POI, w geom.Rect) map[int64]bool {
	out := map[int64]bool{}
	for _, p := range db {
		if w.Contains(p.Pos) {
			out[p.ID] = true
		}
	}
	return out
}

// TestSBWQFigure9FullCoverage reproduces the WQ1 case of Figure 9: the
// window lies inside the merged verified region and is answered locally.
func TestSBWQFigure9FullCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := newTestWorld(t, rng, 200)
	vr1 := geom.NewRect(4, 4, 18, 18)
	vr2 := geom.NewRect(14, 4, 28, 18)
	mk := func(vr geom.Rect) PeerData {
		pd := PeerData{VR: vr}
		for _, p := range w.db {
			if vr.Contains(p.Pos) {
				pd.POIs = append(pd.POIs, p)
			}
		}
		return pd
	}
	peers := []PeerData{mk(vr1), mk(vr2)}
	// Window spanning both VRs but inside their union.
	win := geom.NewRect(10, 6, 24, 16)
	res := SBWQ(geom.Pt(16, 10), win, peers, w.sched, 0)
	if res.Outcome != OutcomeVerified {
		t.Fatalf("outcome = %v (covered %v)", res.Outcome, res.CoveredFraction)
	}
	if res.Access.PacketsRead != 0 {
		t.Fatal("covered window must not use the channel")
	}
	if !almostEqual(res.CoveredFraction, 1, 1e-9) {
		t.Fatalf("covered fraction = %v", res.CoveredFraction)
	}
	truth := windowTruth(w.db, win)
	if len(res.POIs) != len(truth) {
		t.Fatalf("got %d POIs want %d", len(res.POIs), len(truth))
	}
	for _, p := range res.POIs {
		if !truth[p.ID] {
			t.Fatalf("stray POI %d", p.ID)
		}
	}
}

// TestSBWQFigure9PartialCoverage reproduces the WQ2 case: a partially
// covered window resolves its uncovered remainder over the channel with
// reduced windows.
func TestSBWQFigure9PartialCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := newTestWorld(t, rng, 300)
	vr := geom.NewRect(4, 4, 16, 28)
	pd := PeerData{VR: vr}
	for _, p := range w.db {
		if vr.Contains(p.Pos) {
			pd.POIs = append(pd.POIs, p)
		}
	}
	win := geom.NewRect(8, 8, 24, 20) // pokes out to the right of the VR
	res := SBWQ(geom.Pt(12, 12), win, []PeerData{pd}, w.sched, 0)
	if res.Outcome != OutcomeBroadcast {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if len(res.ReducedWindows) == 0 {
		t.Fatal("partial coverage must produce reduced windows")
	}
	// The reduced windows must cover exactly the uncovered part.
	for _, rw := range res.ReducedWindows {
		if !win.ContainsRect(rw) {
			t.Fatalf("reduced window %v outside query window", rw)
		}
		if rw.Min.X < 16-1e-9 && rw.Max.X > 16+1e-9 {
			// fine: spans boundary only if VR doesn't cover; checked by area below
			_ = rw
		}
	}
	if res.CoveredFraction <= 0 || res.CoveredFraction >= 1 {
		t.Fatalf("covered fraction = %v", res.CoveredFraction)
	}
	// Exactness: result equals ground truth.
	truth := windowTruth(w.db, win)
	if len(res.POIs) != len(truth) {
		t.Fatalf("got %d POIs want %d", len(res.POIs), len(truth))
	}
	for _, p := range res.POIs {
		if !truth[p.ID] {
			t.Fatalf("stray POI %d", p.ID)
		}
	}
}

// TestSBWQExactnessRandom: regardless of peer layout, SBWQ returns the
// exact window contents when a channel is available.
func TestSBWQExactnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := newTestWorld(t, rng, 250)
	for trial := 0; trial < 120; trial++ {
		peers := w.soundPeers(rng, rng.Intn(6))
		cx, cy := rng.Float64()*28, rng.Float64()*28
		win := geom.NewRect(cx, cy, cx+1+rng.Float64()*8, cy+1+rng.Float64()*8)
		q := win.Center()
		res := SBWQ(q, win, peers, w.sched, rng.Int63n(500))
		truth := windowTruth(w.db, win)
		if len(res.POIs) != len(truth) {
			t.Fatalf("trial %d: got %d want %d (outcome %v, covered %v)",
				trial, len(res.POIs), len(truth), res.Outcome, res.CoveredFraction)
		}
		for _, p := range res.POIs {
			if !truth[p.ID] {
				t.Fatalf("trial %d: stray POI", trial)
			}
		}
		// Reduced windows never overlap the MVR interior (their total
		// area equals the uncovered area).
		if res.Outcome == OutcomeBroadcast {
			var redArea float64
			for _, rw := range res.ReducedWindows {
				redArea += rw.Area()
			}
			uncovered := win.Area() - res.MVR.IntersectRectArea(win)
			if !almostEqual(redArea, uncovered, 1e-6) {
				t.Fatalf("trial %d: reduced area %v != uncovered %v",
					trial, redArea, uncovered)
			}
		}
	}
}

// TestSBWQReducedWindowSavesPackets: partial coverage must not read more
// packets than the plain on-air window query.
func TestSBWQReducedWindowSavesPackets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := newTestWorld(t, rng, 400)
	vr := geom.NewRect(2, 2, 20, 30)
	pd := PeerData{VR: vr}
	for _, p := range w.db {
		if vr.Contains(p.Pos) {
			pd.POIs = append(pd.POIs, p)
		}
	}
	win := geom.NewRect(6, 6, 26, 26)
	shared := SBWQ(win.Center(), win, []PeerData{pd}, w.sched, 0)
	plain := SBWQ(win.Center(), win, nil, w.sched, 0)
	if shared.Access.PacketsRead > plain.Access.PacketsRead {
		t.Fatalf("sharing increased packets: %d > %d",
			shared.Access.PacketsRead, plain.Access.PacketsRead)
	}
}

func TestSBWQNilSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := newTestWorld(t, rng, 100)
	peers := w.soundPeers(rng, 2)
	win := geom.NewRect(0, 0, 32, 32) // certainly not covered
	res := SBWQ(geom.Pt(16, 16), win, peers, nil, 0)
	if res.Outcome != OutcomeBroadcast {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	// Partial best-effort result: every returned POI is inside the window.
	for _, p := range res.POIs {
		if !win.Contains(p.Pos) {
			t.Fatal("POI outside window")
		}
	}
}

func TestSBWQNoPeers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := newTestWorld(t, rng, 150)
	win := geom.NewRect(5, 5, 15, 15)
	res := SBWQ(win.Center(), win, nil, w.sched, 0)
	if res.Outcome != OutcomeBroadcast {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	truth := windowTruth(w.db, win)
	if len(res.POIs) != len(truth) {
		t.Fatalf("got %d want %d", len(res.POIs), len(truth))
	}
	if res.CoveredFraction != 0 {
		t.Fatalf("covered fraction = %v", res.CoveredFraction)
	}
}

func TestSBWQEmptyWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := newTestWorld(t, rng, 50)
	win := geom.NewRect(5, 5, 5, 5)
	res := SBWQ(geom.Pt(5, 5), win, w.soundPeers(rng, 1), w.sched, 0)
	if len(res.POIs) != 0 && res.Outcome == OutcomeVerified {
		t.Log("degenerate window handled")
	}
}
