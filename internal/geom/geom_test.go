package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
		{Pt(0, 0), Pt(0, 7), 7},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Dist(%v,%v)=%v want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.DistSq(c.q); !almostEqual(got, c.want*c.want, 1e-9) {
			t.Errorf("DistSq(%v,%v)=%v want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestPointVectorOps(t *testing.T) {
	p := Pt(2, 3)
	if got := p.Add(Pt(1, -1)); got != Pt(3, 2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(Pt(1, -1)); got != Pt(1, 4) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := Pt(3, 4).Norm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm = %v", got)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	if r.Min != Pt(1, 2) || r.Max != Pt(5, 7) {
		t.Fatalf("NewRect did not normalize: %v", r)
	}
	if !r.Valid() {
		t.Fatal("normalized rect must be valid")
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(0, 0, 4, 2)
	if got := r.Width(); got != 4 {
		t.Errorf("Width = %v", got)
	}
	if got := r.Height(); got != 2 {
		t.Errorf("Height = %v", got)
	}
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %v", got)
	}
	if got := r.Center(); got != Pt(2, 1) {
		t.Errorf("Center = %v", got)
	}
	if r.Empty() {
		t.Error("non-degenerate rect reported Empty")
	}
	if !NewRect(1, 1, 1, 5).Empty() {
		t.Error("zero-width rect must be Empty")
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	for _, p := range []Point{Pt(0, 0), Pt(2, 2), Pt(1, 1), Pt(0, 1)} {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false", p)
		}
	}
	for _, p := range []Point{Pt(-0.1, 0), Pt(2.1, 1), Pt(1, -3)} {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true", p)
		}
	}
	if r.ContainsStrict(Pt(0, 1)) {
		t.Error("boundary point must not be strictly contained")
	}
	if !r.ContainsStrict(Pt(1, 1)) {
		t.Error("interior point must be strictly contained")
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	b := NewRect(2, 2, 6, 6)
	got, ok := a.Intersect(b)
	if !ok || got != NewRect(2, 2, 4, 4) {
		t.Fatalf("Intersect = %v, %v", got, ok)
	}
	if _, ok := a.Intersect(NewRect(5, 5, 6, 6)); ok {
		t.Error("disjoint rects must not intersect with area")
	}
	// Touching rects intersect as sets but have degenerate overlap.
	if _, ok := a.Intersect(NewRect(4, 0, 6, 4)); ok {
		t.Error("edge-touching overlap must be reported degenerate")
	}
	if !a.Intersects(NewRect(4, 0, 6, 4)) {
		t.Error("edge-touching rects do share points")
	}
}

func TestRectUnionAndContainsRect(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	b := NewRect(2, 3, 4, 5)
	if got := a.Union(b); got != NewRect(0, 0, 4, 5) {
		t.Errorf("Union = %v", got)
	}
	if !NewRect(0, 0, 4, 5).ContainsRect(b) {
		t.Error("ContainsRect failed for contained rect")
	}
	if b.ContainsRect(a) {
		t.Error("ContainsRect must fail for disjoint rect")
	}
}

func TestRectDist(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(1, 1), 0},   // inside
		{Pt(3, 1), 1},   // right
		{Pt(1, -2), 2},  // below
		{Pt(5, 6), 5},   // corner: 3-4-5
		{Pt(-3, -4), 5}, // opposite corner
		{Pt(2, 2), 0},   // on corner
		{Pt(0, 1), 0},   // on edge
		{Pt(2.5, 2.5), math.Sqrt(0.5)},
	}
	for _, c := range cases {
		if got := r.Dist(c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Dist(%v) = %v want %v", c.p, got, c.want)
		}
	}
}

func TestRectMaxDist(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	if got := r.MaxDist(Pt(0, 0)); !almostEqual(got, math.Sqrt(8), 1e-12) {
		t.Errorf("MaxDist corner = %v", got)
	}
	if got := r.MaxDist(Pt(1, 1)); !almostEqual(got, math.Sqrt(2), 1e-12) {
		t.Errorf("MaxDist center = %v", got)
	}
	if got := r.MaxDist(Pt(-1, 1)); !almostEqual(got, math.Hypot(3, 1), 1e-12) {
		t.Errorf("MaxDist outside = %v", got)
	}
}

func TestRectBoundaryDist(t *testing.T) {
	r := NewRect(0, 0, 4, 2)
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(2, 1), 1}, // center: nearest edges are top/bottom
		{Pt(0.5, 1), 0.5},
		{Pt(2, 0), 0}, // on edge
		{Pt(6, 1), 2}, // outside
	}
	for _, c := range cases {
		if got := r.BoundaryDist(c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("BoundaryDist(%v) = %v want %v", c.p, got, c.want)
		}
	}
}

func TestRectClipAndExpand(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	if got := r.Clip(Pt(5, -1)); got != Pt(2, 0) {
		t.Errorf("Clip = %v", got)
	}
	if got := r.Clip(Pt(1, 1)); got != Pt(1, 1) {
		t.Errorf("Clip interior = %v", got)
	}
	if got := r.Expand(1); got != NewRect(-1, -1, 3, 3) {
		t.Errorf("Expand = %v", got)
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Pt(1, 2), 3)
	if r != NewRect(-2, -1, 4, 5) {
		t.Fatalf("RectAround = %v", r)
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)}
	if got := BoundingRect(pts); got != NewRect(-2, -1, 4, 5) {
		t.Errorf("BoundingRect = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("BoundingRect(nil) must panic")
		}
	}()
	BoundingRect(nil)
}

func TestRectCorners(t *testing.T) {
	c := NewRect(0, 0, 1, 2).Corners()
	want := [4]Point{Pt(0, 0), Pt(1, 0), Pt(1, 2), Pt(0, 2)}
	if c != want {
		t.Errorf("Corners = %v", c)
	}
}

func TestSegmentDist(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(4, 0)}
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(2, 3), 3},  // perpendicular drop onto segment
		{Pt(-3, 4), 5}, // beyond A endpoint
		{Pt(7, 4), 5},  // beyond B endpoint
		{Pt(2, 0), 0},  // on segment
	}
	for _, c := range cases {
		if got := s.Dist(c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Segment.Dist(%v) = %v want %v", c.p, got, c.want)
		}
	}
	// Degenerate segment falls back to point distance.
	deg := Segment{Pt(1, 1), Pt(1, 1)}
	if got := deg.Dist(Pt(4, 5)); !almostEqual(got, 5, 1e-12) {
		t.Errorf("degenerate segment Dist = %v", got)
	}
	if got := s.Length(); got != 4 {
		t.Errorf("Length = %v", got)
	}
}

// Property: Dist is symmetric and satisfies the triangle inequality.
func TestPointDistProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(clampCoord(ax), clampCoord(ay))
		b := Pt(clampCoord(bx), clampCoord(by))
		c := Pt(clampCoord(cx), clampCoord(cy))
		if !almostEqual(a.Dist(b), b.Dist(a), 1e-9) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Rect.Dist(p) is zero exactly for contained points and is a
// lower bound of the distance to any contained point.
func TestRectDistProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		r := randomRect(rng, 10)
		p := randomPoint(rng, 15)
		d := r.Dist(p)
		if r.Contains(p) != (d == 0) {
			t.Fatalf("Contains/Dist mismatch: r=%v p=%v d=%v", r, p, d)
		}
		inside := Pt(
			r.Min.X+rng.Float64()*r.Width(),
			r.Min.Y+rng.Float64()*r.Height(),
		)
		if p.Dist(inside) < d-1e-9 {
			t.Fatalf("Dist not a lower bound: r=%v p=%v", r, p)
		}
		if p.Dist(inside) > r.MaxDist(p)+1e-9 {
			t.Fatalf("MaxDist not an upper bound: r=%v p=%v", r, p)
		}
	}
}

func clampCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func randomPoint(rng *rand.Rand, span float64) Point {
	return Pt(rng.Float64()*2*span-span, rng.Float64()*2*span-span)
}

func randomRect(rng *rand.Rand, span float64) Rect {
	a := randomPoint(rng, span)
	b := randomPoint(rng, span)
	if a.X == b.X {
		b.X++
	}
	if a.Y == b.Y {
		b.Y++
	}
	return NewRect(a.X, a.Y, b.X, b.Y)
}
