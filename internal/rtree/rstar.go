package rtree

import (
	"math"
	"sort"

	"lbsq/internal/geom"
)

// The R*-tree (Beckmann, Kriegel, Schneider, Seeger; SIGMOD 1990 — cited
// as [2] by the paper) improves on Guttman's R-tree with three insertion
// heuristics: subtree choice by least overlap enlargement at the leaf
// level, split axis selection by minimum margin sum with the distribution
// chosen by minimum overlap, and forced reinsertion of the farthest
// entries on the first overflow of each level. Queries are identical —
// only the tree quality differs.

// variant selects the insertion algorithm family.
type variant int

const (
	guttman variant = iota
	rstar
)

// reinsertFraction is the share of entries forced out on first overflow
// (the canonical p = 30%).
const reinsertFraction = 0.3

// NewRStar returns an empty tree using R*-tree insertion heuristics.
func NewRStar(maxEntries int) *Tree {
	t := New(maxEntries)
	t.variant = rstar
	return t
}

// Variant reports whether the tree uses R* insertion ("rstar") or
// Guttman's original ("guttman").
func (t *Tree) Variant() string {
	if t.variant == rstar {
		return "rstar"
	}
	return "guttman"
}

// insertRStar is the R* insertion entry point.
func (t *Tree) insertRStar(it Item) {
	t.reinserted = map[int]bool{}
	t.insertAtLeaf(it)
}

func (t *Tree) insertAtLeaf(it Item) {
	leaf := t.chooseSubtreeRStar(t.root, it.Pos)
	leaf.items = append(leaf.items, it)
	leaf.bounds = extend(leaf, it.Pos)
	t.size++
	if len(leaf.items) > t.maxEntries {
		t.overflowTreatment(leaf)
	} else {
		t.adjustUp(leaf.parent)
	}
}

// chooseSubtreeRStar descends choosing, at nodes whose children are
// leaves, the child with least overlap enlargement; elsewhere least area
// enlargement (the R* CS2 heuristic).
func (t *Tree) chooseSubtreeRStar(n *node, p geom.Point) *node {
	for !n.leaf {
		childrenAreLeaves := n.children[0].leaf
		best := n.children[0]
		if childrenAreLeaves {
			bestOverlap := overlapEnlargement(n.children, 0, p)
			bestEnl := enlargement(best.bounds, p)
			for i, c := range n.children[1:] {
				ov := overlapEnlargement(n.children, i+1, p)
				enl := enlargement(c.bounds, p)
				if ov < bestOverlap ||
					(ov == bestOverlap && enl < bestEnl) ||
					(ov == bestOverlap && enl == bestEnl && c.bounds.Area() < best.bounds.Area()) {
					best, bestOverlap, bestEnl = c, ov, enl
				}
			}
		} else {
			bestEnl := enlargement(best.bounds, p)
			for _, c := range n.children[1:] {
				enl := enlargement(c.bounds, p)
				if enl < bestEnl || (enl == bestEnl && c.bounds.Area() < best.bounds.Area()) {
					best, bestEnl = c, enl
				}
			}
		}
		n = best
	}
	return n
}

// overlapEnlargement computes how much inserting p into children[i] would
// grow its overlap with its siblings.
func overlapEnlargement(children []*node, i int, p geom.Point) float64 {
	grown := children[i].bounds.Union(geom.Rect{Min: p, Max: p})
	var before, after float64
	for j, s := range children {
		if j == i {
			continue
		}
		if inter, ok := children[i].bounds.Intersect(s.bounds); ok {
			before += inter.Area()
		}
		if inter, ok := grown.Intersect(s.bounds); ok {
			after += inter.Area()
		}
	}
	return after - before
}

// overflowTreatment applies forced reinsertion on the first overflow of a
// level within one insertion, splitting otherwise (R* OT1). With point
// data only leaf entries are reinserted; internal overflows split.
func (t *Tree) overflowTreatment(n *node) {
	level := t.levelOf(n)
	if n.leaf && n.parent != nil && !t.reinserted[level] {
		t.reinserted[level] = true
		t.forcedReinsert(n)
		return
	}
	t.splitRStar(n)
}

func (t *Tree) levelOf(n *node) int {
	l := 0
	for n.parent != nil {
		l++
		n = n.parent
	}
	return l
}

// forcedReinsert removes the reinsertFraction of entries farthest from
// the node's center and reinserts them from the top.
func (t *Tree) forcedReinsert(n *node) {
	center := n.bounds.Center()
	sort.Slice(n.items, func(i, j int) bool {
		return n.items[i].Pos.DistSq(center) < n.items[j].Pos.DistSq(center)
	})
	p := int(math.Ceil(reinsertFraction * float64(len(n.items))))
	if p < 1 {
		p = 1
	}
	cut := len(n.items) - p
	evicted := append([]Item(nil), n.items[cut:]...)
	n.items = n.items[:cut]
	n.recomputeBounds()
	t.adjustUp(n.parent)
	t.size -= len(evicted)
	for _, it := range evicted {
		t.insertAtLeaf(it)
	}
}

// splitRStar splits an overflowing node with the R* topological split and
// propagates upward.
func (t *Tree) splitRStar(n *node) {
	var sibling *node
	if n.leaf {
		a, b := rstarSplitItems(n.items, t.minEntries)
		n.items = a
		sibling = &node{leaf: true, items: b}
	} else {
		a, b := rstarSplitNodes(n.children, t.minEntries)
		n.children = a
		sibling = &node{children: b}
		for _, c := range sibling.children {
			c.parent = sibling
		}
	}
	n.recomputeBounds()
	sibling.recomputeBounds()

	if n.parent == nil {
		newRoot := &node{children: []*node{n, sibling}}
		n.parent = newRoot
		sibling.parent = newRoot
		newRoot.recomputeBounds()
		t.root = newRoot
		return
	}
	p := n.parent
	sibling.parent = p
	p.children = append(p.children, sibling)
	p.recomputeBounds()
	if len(p.children) > t.maxEntries {
		t.overflowTreatment(p)
	} else {
		t.adjustUp(p.parent)
	}
}

// rstarSplitItems chooses the split axis by minimum margin sum over all
// distributions, then the distribution with minimal overlap (ties by
// area).
func rstarSplitItems(items []Item, minFill int) (a, b []Item) {
	if minFill < 1 {
		minFill = 1
	}
	type dist struct {
		k    int // left group size
		axis int // 0 = x, 1 = y
	}
	bounds := func(s []Item) geom.Rect {
		r := geom.Rect{Min: s[0].Pos, Max: s[0].Pos}
		for _, it := range s[1:] {
			r = r.Union(geom.Rect{Min: it.Pos, Max: it.Pos})
		}
		return r
	}
	margin := func(r geom.Rect) float64 { return 2 * (r.Width() + r.Height()) }

	sorted := [2][]Item{}
	for axis := 0; axis < 2; axis++ {
		s := append([]Item(nil), items...)
		if axis == 0 {
			sort.Slice(s, func(i, j int) bool { return s[i].Pos.X < s[j].Pos.X })
		} else {
			sort.Slice(s, func(i, j int) bool { return s[i].Pos.Y < s[j].Pos.Y })
		}
		sorted[axis] = s
	}

	marginSum := [2]float64{}
	for axis := 0; axis < 2; axis++ {
		s := sorted[axis]
		for k := minFill; k <= len(s)-minFill; k++ {
			marginSum[axis] += margin(bounds(s[:k])) + margin(bounds(s[k:]))
		}
	}
	axis := 0
	if marginSum[1] < marginSum[0] {
		axis = 1
	}

	s := sorted[axis]
	bestK := minFill
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for k := minFill; k <= len(s)-minFill; k++ {
		rb1, rb2 := bounds(s[:k]), bounds(s[k:])
		var ov float64
		if inter, ok := rb1.Intersect(rb2); ok {
			ov = inter.Area()
		}
		area := rb1.Area() + rb2.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, area
		}
	}
	return append([]Item(nil), s[:bestK]...), append([]Item(nil), s[bestK:]...)
}

// rstarSplitNodes is the internal-node version of the R* split.
func rstarSplitNodes(nodes []*node, minFill int) (a, b []*node) {
	if minFill < 1 {
		minFill = 1
	}
	bounds := func(s []*node) geom.Rect {
		r := s[0].bounds
		for _, c := range s[1:] {
			r = r.Union(c.bounds)
		}
		return r
	}
	margin := func(r geom.Rect) float64 { return 2 * (r.Width() + r.Height()) }

	sorted := [2][]*node{}
	for axis := 0; axis < 2; axis++ {
		s := append([]*node(nil), nodes...)
		if axis == 0 {
			sort.Slice(s, func(i, j int) bool { return s[i].bounds.Min.X < s[j].bounds.Min.X })
		} else {
			sort.Slice(s, func(i, j int) bool { return s[i].bounds.Min.Y < s[j].bounds.Min.Y })
		}
		sorted[axis] = s
	}
	marginSum := [2]float64{}
	for axis := 0; axis < 2; axis++ {
		s := sorted[axis]
		for k := minFill; k <= len(s)-minFill; k++ {
			marginSum[axis] += margin(bounds(s[:k])) + margin(bounds(s[k:]))
		}
	}
	axis := 0
	if marginSum[1] < marginSum[0] {
		axis = 1
	}
	s := sorted[axis]
	bestK := minFill
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for k := minFill; k <= len(s)-minFill; k++ {
		rb1, rb2 := bounds(s[:k]), bounds(s[k:])
		var ov float64
		if inter, ok := rb1.Intersect(rb2); ok {
			ov = inter.Area()
		}
		area := rb1.Area() + rb2.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, area
		}
	}
	return append([]*node(nil), s[:bestK]...), append([]*node(nil), s[bestK:]...)
}

// NodesTouchedByWindow returns how many tree nodes a window query visits
// — the I/O proxy used to compare tree quality between insertion
// variants.
func (t *Tree) NodesTouchedByWindow(r geom.Rect) int {
	if t.size == 0 {
		return 0
	}
	count := 0
	var walk func(n *node)
	walk = func(n *node) {
		count++
		if n.leaf {
			return
		}
		for _, c := range n.children {
			if c.bounds.Intersects(r) {
				walk(c)
			}
		}
	}
	walk(t.root)
	return count
}
