// Windowshare: sharing-based window queries (SBWQ, Algorithm 3). A city
// block's worth of clients ask for "all restaurants in this rectangle";
// the example shows full coverage by the merged verified region, partial
// coverage with reduced windows cutting the on-air cost, and the cache
// growth that makes later queries free.
package main

import (
	"fmt"
	"math/rand"

	"lbsq"
)

func main() {
	rng := rand.New(rand.NewSource(9))

	area := lbsq.NewRect(0, 0, 20, 20)
	pois := make([]lbsq.POI, 600)
	for i := range pois {
		pois[i] = lbsq.POI{ID: int64(i), Pos: lbsq.Pt(rng.Float64()*20, rng.Float64()*20)}
	}
	server, err := lbsq.NewServer(area, pois, lbsq.BroadcastConfig{})
	if err != nil {
		panic(err)
	}

	// Scout covers downtown by a broadcast window query; its cache keeps
	// the collective MBR of the retrieved packets — more than it asked.
	scout := lbsq.NewClient(server, lbsq.Pt(10, 10), 80)
	downtown := lbsq.NewRect(9, 9, 11, 11)
	res := scout.Window(downtown, nil)
	fmt.Printf("scout's on-air window query: %d POIs, latency %d slots, %d packets\n",
		len(res.POIs), res.Access.Latency, res.Access.PacketsRead)
	fmt.Printf("scout learned %v (%.1f sq mi — grown beyond the %.1f sq mi window)\n\n",
		res.KnownRegion, res.KnownRegion.Area(), downtown.Area())

	// WQ1 of Figure 9: a window inside the scout's verified region —
	// answered locally.
	tourist := lbsq.NewClient(server, lbsq.Pt(10.2, 9.8), 80)
	small := lbsq.NewRect(9.5, 9.5, 10.5, 10.5)
	res = tourist.Window(small, scout.Share())
	fmt.Printf("WQ1 (window ⊂ MVR): outcome=%v, %d POIs, coverage %.0f%%, latency %d\n",
		res.Outcome, len(res.POIs), 100*res.CoveredFraction, res.Access.Latency)

	// WQ2 of Figure 9: a window poking outside — the uncovered remainder
	// becomes reduced windows w' and only those hit the channel.
	wide := lbsq.NewRect(9.5, 9.5, 14, 10.5)
	plain := lbsq.NewClient(server, lbsq.Pt(10, 10), 80)
	noHelp := plain.Window(wide, nil)
	helped := tourist.Window(wide, scout.Share())
	fmt.Printf("\nWQ2 (window ⊄ MVR): outcome=%v, coverage %.0f%%, %d reduced windows\n",
		helped.Outcome, 100*helped.CoveredFraction, len(helped.ReducedWindows))
	for _, w := range helped.ReducedWindows {
		fmt.Printf("    w' = %v\n", w)
	}
	fmt.Printf("packets read: %d with sharing vs %d without (%d filtered away)\n",
		helped.Access.PacketsRead, noHelp.Access.PacketsRead,
		helped.Access.PacketsSkipped)
	fmt.Printf("both return the same %d POIs — sharing only removes latency, never accuracy\n",
		len(helped.POIs))
}
