package core

import (
	"math"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// Safe-exit radii for continuous standing queries (DESIGN.md §15). Both
// functions bound how far the query may move from the position where its
// answer was last verified exact before the answer could flip, using
// only knowledge that was certain at verification time:
//
//   - a region of complete knowledge around the query (the MVR clearance
//     disk for peer-verified answers, the retrieval square for
//     channel-resolved ones) — any database POI not among the known
//     candidates lies outside it;
//   - the known candidates themselves — the only POIs that can flip the
//     answer from inside the region.
//
// Distances to a fixed point are 1-Lipschitz in the query position, so
// the radii below keep every "is this POI in the answer" comparison on
// the same side it was on at verification. The radii are conservative:
// ties and empty margins yield zero, which just forces the subscription
// to re-verify on the next tick.

// SafeExitKNN returns how far the query point may move from q before the
// verified exact kNN answer could change as a SET. answer is the exact
// k-set at q; candidates are every known database POI (answer members
// included — they are skipped by ID); clearance is the radius of the
// complete-knowledge disk around q, so every unknown POI is at distance
// >= clearance.
//
// Moving the query by delta inflates each answer distance by at most
// delta and deflates each non-answer distance by at most delta, so the
// k-set survives while 2*delta < minOther - dK: the nearest non-answer
// POI (known candidate or unknown at >= clearance) cannot undercut the
// farthest answer member. The order WITHIN the set may still permute;
// callers re-sort the stored answer by distance on every maintenance
// tick.
func SafeExitKNN(q geom.Point, answer, candidates []broadcast.POI, clearance float64) float64 {
	if len(answer) == 0 || clearance <= 0 {
		return 0
	}
	dK := 0.0
	for _, p := range answer {
		if d := p.Pos.Dist(q); d > dK {
			dK = d
		}
	}
	minOther := clearance
	for _, c := range candidates {
		if inAnswer(answer, c.ID) {
			continue
		}
		if d := c.Pos.Dist(q); d < minOther {
			minOther = d
		}
	}
	r := (minOther - dK) / 2
	if r < 0 || math.IsNaN(r) {
		return 0
	}
	return r
}

// SafeExitWindow returns how far a window that translates rigidly with
// its host may move before its exact answer could change. candidates are
// every known database POI, inside the window or out; coverClearance
// bounds how far the window may translate while staying inside the
// complete-knowledge region (RectUnion.ClearanceRect for peer-verified
// answers, Rect.InnerGap of the retrieval square for channel-resolved
// ones).
//
// While the translation stays under coverClearance every database POI
// near the window is a known candidate, and while it stays under each
// candidate's distance to the window boundary no candidate crosses the
// boundary — the answer ID-set is unchanged.
func SafeExitWindow(w geom.Rect, candidates []broadcast.POI, coverClearance float64) float64 {
	r := coverClearance
	for _, c := range candidates {
		if d := w.BoundaryDist(c.Pos); d < r {
			r = d
		}
	}
	if r < 0 || math.IsNaN(r) {
		return 0
	}
	return r
}

// SortByDist orders pois ascending by (distance to q, ID) — the total
// order the query algorithms use — so a maintained kNN answer can be
// re-ranked cheaply after the host moves without re-running the query.
func SortByDist(pois []broadcast.POI, q geom.Point) {
	sortCandidates(pois, q)
}

// inAnswer reports whether id is one of the (at most k, so linear-scan
// cheap) answer members.
func inAnswer(answer []broadcast.POI, id int64) bool {
	for _, a := range answer {
		if a.ID == id {
			return true
		}
	}
	return false
}
