// Package wire defines the binary on-air message format for peer-to-peer
// cache sharing: the cache request a querying mobile host broadcasts to
// its neighbors and the reply carrying verified regions with their POIs.
// The encoding is little-endian with explicit lengths, rejects truncated
// or oversized input, carries a CRC32C integrity trailer so bit errors on
// the ad-hoc channel are detected rather than trusted, and exposes exact
// message sizes so the simulator can account for ad-hoc channel traffic
// in bytes.
//
// Layout (all integers little-endian; crc is CRC32C/Castagnoli over every
// preceding byte of the message):
//
//	Request  := magic(2) ver(1) kind(1)=1 queryID(8) origin(16)
//	            relevance(32) hops(1) crc(4)
//	Reply    := magic(2) ver(1) kind(1)=2 queryID(8) nRegions(2)
//	            Region* crc(4)
//	Region   := rect(32) nPOIs(4) POI*
//	POI      := id(8) pos(16)
//	IR       := magic(2) ver(1) kind(1)=3 epoch(8) horizon(8) nItems(2)
//	            IRItem* crc(4)
//	IRItem   := epoch(8) kind(1) id(8) cell(32)
//	Busy     := magic(2) ver(1) kind(1)=4 queryID(8) retryAfter(2) crc(4)
//
// The IR frame is the on-air invalidation report of the consistency
// layer (DESIGN.md §12): the base station piggybacks it on every (1, m)
// index segment so clients can reconcile cached verified regions against
// POI churn. Epoch is the current database version, Horizon the oldest
// epoch whose mutation items the frame still carries; a region older
// than Horizon-1 cannot be repaired from this frame and must be demoted.
//
// The Busy frame is the backpressure reply of the overload plane
// (DESIGN.md §16): a peer whose per-tick service queue is full answers a
// cache request with an explicit BUSY instead of going silent, so the
// querier can distinguish an overloaded neighbor from a broken one (a
// busy peer is not a breaker strike). RetryAfter is an advisory backoff
// hint in broadcast slots; zero means "no hint".
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

const (
	magic   = 0x5B51 // "[Q"
	version = 1

	kindRequest      = 1
	kindReply        = 2
	kindInvalidation = 3
	kindBusy         = 4

	headerSize = 2 + 1 + 1 + 8 // magic, version, kind, queryID

	// TrailerSize is the CRC32C integrity trailer appended to every
	// message.
	TrailerSize = 4

	// MaxRegions bounds regions per reply (a reply larger than this is
	// malformed or hostile).
	MaxRegions = 1 << 12
	// MaxPOIsPerRegion bounds POIs per region.
	MaxPOIsPerRegion = 1 << 16
	// MaxIRItems bounds mutation items per invalidation report; a frame
	// that would exceed it must raise its horizon (drop oldest epochs)
	// instead.
	MaxIRItems = 1 << 12
)

// Invalidation-report item kinds.
const (
	// IRInsert announces a new POI at Cell.
	IRInsert IRKind = 1
	// IRDelete announces the removal of POI ID; Cell is zero.
	IRDelete IRKind = 2
	// IRMove announces POI ID relocated into Cell.
	IRMove IRKind = 3
)

// IRKind is the mutation class of one invalidation item.
type IRKind uint8

// IRItem is one POI mutation carried by an invalidation report. Epoch is
// the database version the mutation created, so a client holding a region
// stamped with epoch e applies exactly the items with Epoch > e.
type IRItem struct {
	Epoch int64
	Kind  IRKind
	ID    int64
	// Cell is the index cell now containing the POI (insert/move); the
	// report quantizes positions to Hilbert cells so clients shrink
	// around the cell, never learning exact positions off-air.
	Cell geom.Rect
}

// InvalidationReport is the versioned IR frame broadcast in the (1, m)
// index slots. Items carries every mutation with Epoch in
// (Horizon-1, Epoch]; a cached region older than Horizon-1 cannot be
// repaired from it.
type InvalidationReport struct {
	Epoch   int64
	Horizon int64
	Items   []IRItem
}

// Request is a cache request broadcast to single-hop neighbors.
type Request struct {
	// QueryID correlates replies with requests.
	QueryID uint64
	// Origin is the querying host's position.
	Origin geom.Point
	// Relevance restricts which cached regions are worth returning.
	Relevance geom.Rect
	// Hops is the remaining relay budget (multi-hop sharing).
	Hops uint8
}

// Region is one shared verified region.
type Region struct {
	Rect geom.Rect
	POIs []broadcast.POI
}

// Reply carries a peer's matching cache contents.
type Reply struct {
	QueryID uint64
	Regions []Region
}

// castagnoli is the CRC32C table; the Castagnoli polynomial detects all
// 1–3 bit errors and is what iSCSI/ext4 use for frame integrity.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RequestSize is the fixed encoded size of a Request, trailer included.
const RequestSize = headerSize + 16 + 32 + 1 + TrailerSize

// ReplyOverhead is the fixed encoded size of a reply outside its regions:
// the header, the region count, and the CRC trailer.
const ReplyOverhead = headerSize + 2 + TrailerSize

// RegionWireSize returns the encoded size of one region carrying nPOIs.
func RegionWireSize(nPOIs int) int { return 32 + 4 + 24*nPOIs }

// ReplySize returns the exact encoded size of a reply with the given
// regions without encoding it — the simulator's byte accounting.
func ReplySize(regions []Region) int {
	n := ReplyOverhead
	for _, r := range regions {
		n += RegionWireSize(len(r.POIs))
	}
	return n
}

// EncodeRequest serializes a request.
func EncodeRequest(r Request) []byte {
	buf := make([]byte, 0, RequestSize)
	buf = appendHeader(buf, kindRequest, r.QueryID)
	buf = appendPoint(buf, r.Origin)
	buf = appendRect(buf, r.Relevance)
	buf = append(buf, r.Hops)
	return appendTrailer(buf)
}

// DecodeRequest parses a request.
func DecodeRequest(b []byte) (Request, error) {
	var out Request
	rest, queryID, err := parseHeader(b, kindRequest)
	if err != nil {
		return out, err
	}
	if len(rest) != 16+32+1 {
		return out, fmt.Errorf("wire: request payload %d bytes, want 49", len(rest))
	}
	out.QueryID = queryID
	out.Origin, rest = parsePoint(rest)
	out.Relevance, rest = parseRect(rest)
	out.Hops = rest[0]
	if err := validRect(out.Relevance); err != nil {
		return Request{}, err
	}
	if err := validPoint(out.Origin); err != nil {
		return Request{}, err
	}
	return out, nil
}

// EncodeReply serializes a reply.
func EncodeReply(r Reply) ([]byte, error) {
	if len(r.Regions) > MaxRegions {
		return nil, fmt.Errorf("wire: %d regions exceeds limit %d", len(r.Regions), MaxRegions)
	}
	buf := make([]byte, 0, ReplySize(r.Regions))
	buf = appendHeader(buf, kindReply, r.QueryID)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Regions)))
	for _, reg := range r.Regions {
		if len(reg.POIs) > MaxPOIsPerRegion {
			return nil, fmt.Errorf("wire: %d POIs exceeds limit %d", len(reg.POIs), MaxPOIsPerRegion)
		}
		buf = appendRect(buf, reg.Rect)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(reg.POIs)))
		for _, p := range reg.POIs {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(p.ID))
			buf = appendPoint(buf, p.Pos)
		}
	}
	return appendTrailer(buf), nil
}

// DecodeReply parses a reply.
func DecodeReply(b []byte) (Reply, error) {
	var out Reply
	rest, queryID, err := parseHeader(b, kindReply)
	if err != nil {
		return out, err
	}
	out.QueryID = queryID
	if len(rest) < 2 {
		return out, fmt.Errorf("wire: reply truncated before region count")
	}
	n := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if n > MaxRegions {
		return out, fmt.Errorf("wire: region count %d exceeds limit", n)
	}
	out.Regions = make([]Region, 0, n)
	for i := 0; i < n; i++ {
		if len(rest) < 32+4 {
			return Reply{}, fmt.Errorf("wire: reply truncated in region %d header", i)
		}
		var reg Region
		reg.Rect, rest = parseRect(rest)
		if err := validRect(reg.Rect); err != nil {
			return Reply{}, fmt.Errorf("wire: region %d: %w", i, err)
		}
		c := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if c > MaxPOIsPerRegion {
			return Reply{}, fmt.Errorf("wire: region %d POI count %d exceeds limit", i, c)
		}
		if len(rest) < 24*c {
			return Reply{}, fmt.Errorf("wire: reply truncated in region %d POIs", i)
		}
		reg.POIs = make([]broadcast.POI, c)
		for j := 0; j < c; j++ {
			reg.POIs[j].ID = int64(binary.LittleEndian.Uint64(rest))
			rest = rest[8:]
			reg.POIs[j].Pos, rest = parsePoint(rest)
			if err := validPoint(reg.POIs[j].Pos); err != nil {
				return Reply{}, fmt.Errorf("wire: region %d POI %d: %w", i, j, err)
			}
		}
		out.Regions = append(out.Regions, reg)
	}
	if len(rest) != 0 {
		return Reply{}, fmt.Errorf("wire: %d trailing bytes", len(rest))
	}
	return out, nil
}

// Busy is the explicit backpressure reply a peer sends when its service
// queue is full: the request was heard and is being refused, not lost.
// RetryAfter is an advisory backoff hint in broadcast slots (0 = none).
type Busy struct {
	QueryID    uint64
	RetryAfter uint16
}

// BusySize is the fixed encoded size of a Busy frame, trailer included.
const BusySize = headerSize + 2 + TrailerSize

// MaxBusyRetryAfter bounds the advisory backoff hint; a larger value is
// malformed or hostile (it would park a querier for longer than any
// deadline budget the simulator models).
const MaxBusyRetryAfter = 1 << 12

// EncodeBusy serializes a BUSY backpressure reply.
func EncodeBusy(b Busy) ([]byte, error) {
	if b.RetryAfter > MaxBusyRetryAfter {
		return nil, fmt.Errorf("wire: busy retry-after %d exceeds limit %d", b.RetryAfter, MaxBusyRetryAfter)
	}
	buf := make([]byte, 0, BusySize)
	buf = appendHeader(buf, kindBusy, b.QueryID)
	buf = binary.LittleEndian.AppendUint16(buf, b.RetryAfter)
	return appendTrailer(buf), nil
}

// DecodeBusy parses a BUSY backpressure reply.
func DecodeBusy(b []byte) (Busy, error) {
	var out Busy
	rest, queryID, err := parseHeader(b, kindBusy)
	if err != nil {
		return out, err
	}
	if len(rest) != 2 {
		return out, fmt.Errorf("wire: busy payload %d bytes, want 2", len(rest))
	}
	out.QueryID = queryID
	out.RetryAfter = binary.LittleEndian.Uint16(rest)
	if out.RetryAfter > MaxBusyRetryAfter {
		return Busy{}, fmt.Errorf("wire: busy retry-after %d exceeds limit %d", out.RetryAfter, MaxBusyRetryAfter)
	}
	return out, nil
}

// IROverhead is the fixed encoded size of an invalidation report outside
// its items: header (epoch rides the header's 8-byte id slot), horizon,
// item count, and the CRC trailer.
const IROverhead = headerSize + 8 + 2 + TrailerSize

// irItemSize is the encoded size of one IRItem: epoch, kind, id, cell.
const irItemSize = 8 + 1 + 8 + 32

// IRSize returns the exact encoded size of a report with nItems items.
func IRSize(nItems int) int { return IROverhead + irItemSize*nItems }

// EncodeInvalidationReport serializes an IR frame.
func EncodeInvalidationReport(r InvalidationReport) ([]byte, error) {
	if len(r.Items) > MaxIRItems {
		return nil, fmt.Errorf("wire: %d IR items exceeds limit %d", len(r.Items), MaxIRItems)
	}
	if err := validIRShape(r); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, IRSize(len(r.Items)))
	buf = appendHeader(buf, kindInvalidation, uint64(r.Epoch))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Horizon))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Items)))
	for _, it := range r.Items {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(it.Epoch))
		buf = append(buf, byte(it.Kind))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(it.ID))
		buf = appendRect(buf, it.Cell)
	}
	return appendTrailer(buf), nil
}

// DecodeInvalidationReport parses an IR frame. Beyond CRC integrity it
// enforces the version algebra a reconciler relies on: Horizon never
// ahead of Epoch, every item inside the [Horizon, Epoch] window, deletes
// cell-less, inserts and moves carrying a real cell.
func DecodeInvalidationReport(b []byte) (InvalidationReport, error) {
	var out InvalidationReport
	rest, epoch, err := parseHeader(b, kindInvalidation)
	if err != nil {
		return out, err
	}
	out.Epoch = int64(epoch)
	if len(rest) < 8+2 {
		return out, fmt.Errorf("wire: IR truncated before item count")
	}
	out.Horizon = int64(binary.LittleEndian.Uint64(rest))
	n := int(binary.LittleEndian.Uint16(rest[8:]))
	rest = rest[10:]
	if n > MaxIRItems {
		return InvalidationReport{}, fmt.Errorf("wire: IR item count %d exceeds limit", n)
	}
	if len(rest) != irItemSize*n {
		return InvalidationReport{}, fmt.Errorf("wire: IR payload %d bytes, want %d", len(rest), irItemSize*n)
	}
	out.Items = make([]IRItem, n)
	for i := range out.Items {
		it := &out.Items[i]
		it.Epoch = int64(binary.LittleEndian.Uint64(rest))
		it.Kind = IRKind(rest[8])
		it.ID = int64(binary.LittleEndian.Uint64(rest[9:]))
		it.Cell, rest = parseRect(rest[17:])
	}
	if err := validIRShape(out); err != nil {
		return InvalidationReport{}, err
	}
	return out, nil
}

// validIRShape checks the semantic invariants shared by encode and
// decode, so every accepted frame round-trips canonically.
func validIRShape(r InvalidationReport) error {
	if r.Epoch < 0 || r.Horizon < 0 || r.Horizon > r.Epoch {
		return fmt.Errorf("wire: IR version window [%d, %d] invalid", r.Horizon, r.Epoch)
	}
	for i, it := range r.Items {
		if it.Epoch < r.Horizon || it.Epoch > r.Epoch {
			return fmt.Errorf("wire: IR item %d epoch %d outside [%d, %d]", i, it.Epoch, r.Horizon, r.Epoch)
		}
		if it.ID < 0 {
			return fmt.Errorf("wire: IR item %d negative id", i)
		}
		switch it.Kind {
		case IRDelete:
			if it.Cell != (geom.Rect{}) {
				return fmt.Errorf("wire: IR item %d delete carries a cell", i)
			}
		case IRInsert, IRMove:
			if err := validRect(it.Cell); err != nil {
				return fmt.Errorf("wire: IR item %d: %w", i, err)
			}
			if it.Cell.Min == it.Cell.Max {
				return fmt.Errorf("wire: IR item %d degenerate cell", i)
			}
		default:
			return fmt.Errorf("wire: IR item %d unknown kind %d", i, it.Kind)
		}
	}
	return nil
}

func appendHeader(buf []byte, kind byte, queryID uint64) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, magic)
	buf = append(buf, version, kind)
	return binary.LittleEndian.AppendUint64(buf, queryID)
}

// appendTrailer seals the message with a CRC32C over everything so far.
func appendTrailer(buf []byte) []byte {
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// parseHeader validates the CRC trailer and the fixed header, returning
// the payload between them. Magic and version alone are not trusted: a
// bit-flipped message with an intact header is rejected here, before any
// structural parsing.
func parseHeader(b []byte, wantKind byte) ([]byte, uint64, error) {
	if len(b) < headerSize+TrailerSize {
		return nil, 0, fmt.Errorf("wire: message too short (%d bytes)", len(b))
	}
	body := b[:len(b)-TrailerSize]
	want := binary.LittleEndian.Uint32(b[len(b)-TrailerSize:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, 0, fmt.Errorf("wire: CRC mismatch (got %#x want %#x)", got, want)
	}
	if binary.LittleEndian.Uint16(body) != magic {
		return nil, 0, fmt.Errorf("wire: bad magic %#x", binary.LittleEndian.Uint16(body))
	}
	if body[2] != version {
		return nil, 0, fmt.Errorf("wire: unsupported version %d", body[2])
	}
	if body[3] != wantKind {
		return nil, 0, fmt.Errorf("wire: kind %d, want %d", body[3], wantKind)
	}
	return body[headerSize:], binary.LittleEndian.Uint64(body[4:]), nil
}

func appendPoint(buf []byte, p geom.Point) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
}

func parsePoint(b []byte) (geom.Point, []byte) {
	x := math.Float64frombits(binary.LittleEndian.Uint64(b))
	y := math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	return geom.Pt(x, y), b[16:]
}

func appendRect(buf []byte, r geom.Rect) []byte {
	buf = appendPoint(buf, r.Min)
	return appendPoint(buf, r.Max)
}

func parseRect(b []byte) (geom.Rect, []byte) {
	min, b := parsePoint(b)
	max, b := parsePoint(b)
	return geom.Rect{Min: min, Max: max}, b
}

func validPoint(p geom.Point) error {
	if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("non-finite coordinate %v", p)
	}
	return nil
}

func validRect(r geom.Rect) error {
	if err := validPoint(r.Min); err != nil {
		return err
	}
	if err := validPoint(r.Max); err != nil {
		return err
	}
	if !r.Valid() {
		return fmt.Errorf("inverted rect %v", r)
	}
	return nil
}
