// Command lbsq-bench runs the performance-regression harness: the
// hot-path micro benchmarks (steady-state ns/op, B/op, allocs/op of the
// scratch-based query kernels), the parallel-sweep timing with its
// serial-identity check, and optionally a comparison against a
// committed baseline report.
//
// Usage:
//
//	lbsq-bench [-out results/BENCH_hotpath.json] [-compare baseline.json]
//	           [-quick] [-parallel n] [-tolerance 0.25]
//	lbsq-bench -tick [-out results/BENCH_tick.json] [-compare baseline.json]
//
// With -compare the exit status is nonzero when any micro benchmark
// regressed beyond the tolerance (ns/op) or grew its steady-state
// allocation count, or when the parallel sweep stopped being
// bit-identical to serial — the CI bench-smoke gate.
//
// With -tick the command measures the batched per-tick query engine
// instead (DESIGN.md §14): World.Step at each TickWorkers setting, the
// MVR memoization counters, and the embedded serial-identity check.
// Rows record the GOMAXPROCS they ran under, and -compare only judges
// wall clock between rows measured at matching GOMAXPROCS, so reports
// from machines of different widths never produce phantom regressions.
package main

import (
	"flag"
	"fmt"
	"os"

	"lbsq/internal/experiments"
	"lbsq/internal/perf"
	"lbsq/internal/sweep"
)

func main() {
	var (
		out       = flag.String("out", "", "write the hot-path report to this JSON file")
		compare   = flag.String("compare", "", "compare against this baseline report; nonzero exit on regression")
		quick     = flag.Bool("quick", false, "reduced sweep scale for smoke runs")
		parallel  = flag.Int("parallel", 0, "sweep worker count for the timing comparison (0 = GOMAXPROCS)")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression before -compare fails")
		tick      = flag.Bool("tick", false, "measure the batched tick engine (BENCH_tick.json) instead of the hot path")
	)
	flag.Parse()

	if *tick {
		runTick(*out, *compare, *tolerance)
		return
	}

	opt := experiments.Options{}
	if *quick {
		opt = experiments.Fast()
		opt.SideMiles = 2
		opt.DurationHours = 0.1
	}
	workers := sweep.Workers(*parallel)

	rep := perf.Measure(opt, workers)
	for _, m := range rep.Micro {
		fmt.Printf("%-28s %12.0f ns/op %10d B/op %8d allocs/op\n",
			m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	fmt.Printf("sweep: %d cells, serial %.2fs, %d workers %.2fs, speedup %.2fx, identical=%v\n",
		rep.Sweep.Cells, rep.Sweep.SerialSeconds, rep.Sweep.Workers,
		rep.Sweep.ParallelSeconds, rep.Sweep.Speedup, rep.Sweep.Identical)

	if !rep.Sweep.Identical {
		fmt.Fprintln(os.Stderr, "FATAL: parallel sweep output differed from serial")
		os.Exit(1)
	}

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *compare != "" {
		base, err := perf.LoadHotpath(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		failures := perf.Compare(base, rep, *tolerance)
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "bench-compare: %d regression(s) vs %s:\n", len(failures), *compare)
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "  %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("bench-compare: no regressions vs %s (tolerance %.0f%%)\n",
			*compare, 100**tolerance)
	}
}

// runTick is the -tick mode: measure the batched tick engine, print the
// rows, and optionally write/compare the report.
func runTick(out, compare string, tolerance float64) {
	rep, err := perf.MeasureTick()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range rep.Rows {
		fmt.Printf("%-18s workers=%d gomaxprocs=%d %12.0f ns/op %10d B/op %6d allocs/op %6.2fx memo=%d delta=%d\n",
			r.Name, r.Workers, r.GoMaxProcs, r.NsPerOp, r.BytesPerOp,
			r.AllocsPerOp, r.SpeedupVsSerial, r.MemoHits, r.DeltaReuses)
	}
	fmt.Printf("tick: gomaxprocs=%d numcpu=%d identical=%v\n",
		rep.GoMaxProcs, rep.NumCPU, rep.Identical)

	if !rep.Identical {
		fmt.Fprintln(os.Stderr, "FATAL: batched tick engine output differed from serial")
		os.Exit(1)
	}

	if out != "" {
		if err := rep.WriteFile(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", out)
	}

	if compare != "" {
		base, err := perf.LoadTick(compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		failures := perf.CompareTick(base, rep, tolerance)
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "bench-compare: %d regression(s) vs %s:\n", len(failures), compare)
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "  %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("bench-compare: no regressions vs %s (tolerance %.0f%%)\n",
			compare, 100*tolerance)
	}
}
