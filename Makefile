# lbsq build/verification entry points. `make verify` is the tier-1 gate
# (see README.md): vet, build, race-enabled tests, and a fuzz smoke run
# of the wire decoders. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build vet test race fuzz-smoke verify

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short native-fuzzing runs of the wire codecs: the decoders must survive
# arbitrary bytes (the fault layer's truncation/corruption damage classes)
# without panicking, and accepted inputs must round-trip canonically.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeReply -fuzztime=5s ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRequest -fuzztime=5s ./internal/wire

verify: vet build race fuzz-smoke
	@echo "verify: all gates passed"
