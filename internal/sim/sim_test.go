package sim

import (
	"bytes"
	"math"
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/cache"
	"lbsq/internal/geom"
	"lbsq/internal/trace"
)

func TestTable3ParameterSets(t *testing.T) {
	la, sub, riv := LACity(), SyntheticSuburbia(), RiversideCounty()
	cases := []struct {
		p       Params
		poi, mh int
		rate    float64
	}{
		{la, 2750, 93300, 6220},
		{sub, 2100, 51500, 3440},
		{riv, 1450, 9700, 650},
	}
	for _, c := range cases {
		if c.p.POINumber != c.poi || c.p.MHNumber != c.mh || c.p.QueryRate != c.rate {
			t.Errorf("%s: POI=%d MH=%d rate=%v", c.p.Name, c.p.POINumber, c.p.MHNumber, c.p.QueryRate)
		}
		if c.p.CacheSize != 50 || c.p.TxRangeMeters != 200 || c.p.K != 5 ||
			c.p.WindowPct != 3 || c.p.WindowDistMiles != 1 || c.p.DurationHours != 10 {
			t.Errorf("%s: shared Table 3 values wrong", c.p.Name)
		}
		if c.p.AreaMiles != 20 {
			t.Errorf("%s: area = %v", c.p.Name, c.p.AreaMiles)
		}
	}
	if got := ParameterSets(); len(got) != 3 || got[0].Name != la.Name {
		t.Error("ParameterSets order wrong")
	}
}

func TestDensityOrdering(t *testing.T) {
	la, sub, riv := LACity(), SyntheticSuburbia(), RiversideCounty()
	if !(la.MHDensity() > sub.MHDensity() && sub.MHDensity() > riv.MHDensity()) {
		t.Error("vehicle density ordering violated")
	}
	if !(la.POIDensity() > sub.POIDensity() && sub.POIDensity() > riv.POIDensity()) {
		t.Error("POI density ordering violated")
	}
}

func TestScaledPreservesDensities(t *testing.T) {
	la := LACity()
	s := la.Scaled(5)
	if math.Abs(s.MHDensity()-la.MHDensity()) > 1 {
		t.Errorf("MH density drifted: %v vs %v", s.MHDensity(), la.MHDensity())
	}
	if math.Abs(s.POIDensity()-la.POIDensity()) > 0.2 {
		t.Errorf("POI density drifted: %v vs %v", s.POIDensity(), la.POIDensity())
	}
	wantRate := la.QueryRate * 25 / 400
	if math.Abs(s.QueryRate-wantRate) > 1e-9 {
		t.Errorf("query rate = %v want %v", s.QueryRate, wantRate)
	}
	if s.AreaMiles != 5 {
		t.Errorf("area = %v", s.AreaMiles)
	}
	// Extreme downscale still yields a runnable world.
	tiny := la.Scaled(0.1)
	if tiny.MHNumber < 1 || tiny.POINumber < 1 || tiny.QueryRate <= 0 {
		t.Errorf("tiny scale invalid: %+v", tiny)
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{MHNumber: 0, QueryRate: 1, DurationHours: 1, K: 1},
		{MHNumber: 1, QueryRate: 0, DurationHours: 1, K: 1},
		{MHNumber: 1, QueryRate: 1, DurationHours: 0, K: 1},
		{MHNumber: 1, QueryRate: 1, DurationHours: 1, K: 0, Kind: KNNQuery},
		{MHNumber: 1, QueryRate: 1, DurationHours: 1, Kind: WindowQuery, WindowPct: 0},
		{MHNumber: 1, QueryRate: 1, DurationHours: 1, K: 1, TxRangeMeters: -1},
		{MHNumber: 1, QueryRate: 1, DurationHours: 1, K: 1, POINumber: -1},
	}
	for i, p := range bad {
		if _, err := NewWorld(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestUnitConversions(t *testing.T) {
	p := LACity()
	if math.Abs(p.TxRangeMiles()-200/1609.344) > 1e-12 {
		t.Errorf("TxRangeMiles = %v", p.TxRangeMiles())
	}
	if math.Abs(p.POIDensity()-2750.0/400) > 1e-12 {
		t.Errorf("POIDensity = %v", p.POIDensity())
	}
	if math.Abs(p.WindowSideMiles()-0.6) > 1e-12 {
		t.Errorf("WindowSideMiles = %v", p.WindowSideMiles())
	}
	if KNNQuery.String() != "knn" || WindowQuery.String() != "window" {
		t.Error("QueryKind strings wrong")
	}
}

// smallWorld is a fast, dense configuration for behavioral tests.
func smallWorld(t *testing.T, kind QueryKind, seed int64) *World {
	t.Helper()
	p := LACity().Scaled(2).WithDuration(0.12)
	p.Kind = kind
	p.Seed = seed
	p.TimeStepSec = 10
	p.AcceptApproximate = kind == KNNQuery
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w.SelfCheck = true
	return w
}

func TestKNNSimulationInvariants(t *testing.T) {
	w := smallWorld(t, KNNQuery, 1)
	stats := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatalf("self-check failed: %v", err)
	}
	if stats.Queries == 0 {
		t.Fatal("no queries executed")
	}
	if stats.Verified+stats.Approximate+stats.Broadcast != stats.Queries {
		t.Fatalf("shares don't sum: %+v", stats)
	}
	total := stats.VerifiedPct() + stats.ApproximatePct() + stats.BroadcastPct()
	if math.Abs(total-100) > 1e-9 {
		t.Fatalf("percentages sum to %v", total)
	}
	if stats.Broadcast > 0 && stats.AvgLatencySlots() <= 0 {
		t.Fatal("broadcast queries must have positive latency")
	}
	if stats.PeerRequests == 0 {
		t.Fatal("no P2P requests recorded")
	}
}

func TestWindowSimulationInvariants(t *testing.T) {
	w := smallWorld(t, WindowQuery, 2)
	stats := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatalf("self-check failed: %v", err)
	}
	if stats.Queries == 0 {
		t.Fatal("no queries executed")
	}
	if stats.Approximate != 0 {
		t.Fatal("window queries cannot be approximate")
	}
	if stats.Verified+stats.Broadcast != stats.Queries {
		t.Fatalf("shares don't sum: %+v", stats)
	}
}

func TestWarmupExcludesQueries(t *testing.T) {
	p := LACity().Scaled(2).WithDuration(0.1)
	p.Kind = KNNQuery
	p.Seed = 3
	p.TimeStepSec = 10
	p.WarmupFrac = 0.99 // nearly everything excluded
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	full := w.Run()
	p2 := p
	p2.WarmupFrac = 0.1
	w2, err := NewWorld(p2)
	if err != nil {
		t.Fatal(err)
	}
	more := w2.Run()
	if full.Queries >= more.Queries {
		t.Fatalf("warmup 0.99 counted %d queries, warmup 0.1 counted %d",
			full.Queries, more.Queries)
	}
}

func TestSharingGrowsWithDensity(t *testing.T) {
	// LA-density world vs Riverside-density world at the same scale: the
	// dense one must resolve a strictly larger share via peers.
	mk := func(base Params, seed int64) Stats {
		p := base.Scaled(2).WithDuration(0.15)
		p.Kind = KNNQuery
		p.Seed = seed
		p.TimeStepSec = 10
		p.AcceptApproximate = true
		w, err := NewWorld(p)
		if err != nil {
			t.Fatal(err)
		}
		s := w.Run()
		if err := w.SelfCheckErr(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	dense := mk(LACity(), 4)
	sparse := mk(RiversideCounty(), 4)
	if dense.SharedPct() <= sparse.SharedPct() {
		t.Errorf("dense shared %.1f%% <= sparse %.1f%%",
			dense.SharedPct(), sparse.SharedPct())
	}
}

func TestBaselineSampling(t *testing.T) {
	p := LACity().Scaled(2).WithDuration(0.08)
	p.Kind = KNNQuery
	p.Seed = 5
	p.TimeStepSec = 10
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w.CompareBaseline = true
	w.BaselineSampleRate = 1
	stats := w.Run()
	if stats.BaselineSampled != stats.Queries {
		t.Fatalf("baseline sampled %d of %d", stats.BaselineSampled, stats.Queries)
	}
	if stats.BaselineSampled > 0 && stats.BaselineMeanLatencySlots() <= 0 {
		t.Fatal("baseline latency must be positive")
	}
	// Sharing can only reduce mean system latency versus the baseline.
	if stats.MeanSystemLatencySlots() > stats.BaselineMeanLatencySlots()+1 {
		t.Errorf("sharing latency %v above baseline %v",
			stats.MeanSystemLatencySlots(), stats.BaselineMeanLatencySlots())
	}
}

func TestLRUPolicyRuns(t *testing.T) {
	p := LACity().Scaled(1.5).WithDuration(0.08)
	p.Kind = KNNQuery
	p.Seed = 6
	p.TimeStepSec = 10
	p.CachePolicy = cache.LRU
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w.SelfCheck = true
	stats := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if stats.Queries == 0 {
		t.Fatal("no queries under LRU")
	}
}

func TestStatsAccessors(t *testing.T) {
	var s Stats
	if s.VerifiedPct() != 0 || s.AvgLatencySlots() != 0 || s.AvgPeers() != 0 ||
		s.MeanSystemLatencySlots() != 0 || s.BaselineMeanLatencySlots() != 0 {
		t.Error("zero stats must report zeros")
	}
	s = Stats{Queries: 10, Verified: 5, Approximate: 2, Broadcast: 3,
		LatencySlots: 300, TuningSlots: 60, peersSum: 40}
	if s.VerifiedPct() != 50 || s.ApproximatePct() != 20 || s.BroadcastPct() != 30 {
		t.Error("percentage accessors wrong")
	}
	if s.SharedPct() != 70 {
		t.Errorf("SharedPct = %v", s.SharedPct())
	}
	if s.AvgLatencySlots() != 100 || s.AvgTuningSlots() != 20 {
		t.Error("latency accessors wrong")
	}
	if s.MeanSystemLatencySlots() != 30 {
		t.Errorf("MeanSystemLatencySlots = %v", s.MeanSystemLatencySlots())
	}
	if s.AvgPeers() != 4 {
		t.Errorf("AvgPeers = %v", s.AvgPeers())
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestPeerBytesAccounting(t *testing.T) {
	w := smallWorld(t, KNNQuery, 9)
	stats := w.Run()
	if stats.Queries == 0 {
		t.Fatal("no queries")
	}
	if stats.PeerBytes <= 0 {
		t.Fatal("no P2P bytes recorded")
	}
	if stats.AvgPeerBytes() <= 0 {
		t.Fatal("AvgPeerBytes not positive")
	}
	// A request costs at least its fixed size per counted query.
	if stats.AvgPeerBytes() < 50 {
		t.Fatalf("AvgPeerBytes %v implausibly small", stats.AvgPeerBytes())
	}
}

func TestMultiHopReachesMorePeers(t *testing.T) {
	mk := func(hops int) Stats {
		p := RiversideCounty().Scaled(3).WithDuration(0.1)
		p.Kind = KNNQuery
		p.Seed = 10
		p.TimeStepSec = 10
		p.SharingHops = hops
		p.PrefillQueriesPerHost = 5
		w, err := NewWorld(p)
		if err != nil {
			t.Fatal(err)
		}
		return w.Run()
	}
	one := mk(1)
	three := mk(3)
	if three.AvgPeers() < one.AvgPeers() {
		t.Errorf("3 hops reached %.2f peers vs %.2f at 1 hop",
			three.AvgPeers(), one.AvgPeers())
	}
}

func TestClusteredPOIFieldStaysExact(t *testing.T) {
	p := LACity().Scaled(2).WithDuration(0.1)
	p.Kind = KNNQuery
	p.Seed = 11
	p.TimeStepSec = 10
	p.POIClusters = 5
	p.AcceptApproximate = false // exactness must hold regardless of field shape
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w.SelfCheck = true
	stats := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatalf("clustered field broke exactness: %v", err)
	}
	if stats.Queries == 0 {
		t.Fatal("no queries")
	}
	// The field really is clustered: POI positions concentrate.
	db := w.Database()
	var sumX, sumY float64
	for _, poi := range db {
		sumX += poi.Pos.X
		sumY += poi.Pos.Y
	}
	mean := geom.Pt(sumX/float64(len(db)), sumY/float64(len(db)))
	var inner int
	for _, poi := range db {
		if poi.Pos.Dist(mean) < p.AreaMiles/2 {
			inner++
		}
	}
	if inner == 0 {
		t.Fatal("clustering sanity check failed")
	}
}

func TestWorldAccessors(t *testing.T) {
	p := LACity().Scaled(1).WithDuration(0.05)
	p.Kind = KNNQuery
	p.Seed = 12
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	if w.Schedule() == nil {
		t.Error("Schedule accessor nil")
	}
	if len(w.Database()) != p.POINumber {
		t.Errorf("Database = %d POIs", len(w.Database()))
	}
	if w.Now() != 0 {
		t.Errorf("fresh world Now = %v", w.Now())
	}
	w.Step(7)
	if w.Now() != 7 {
		t.Errorf("Now after step = %v", w.Now())
	}
}

func TestWindowBaselineSampling(t *testing.T) {
	p := LACity().Scaled(2).WithDuration(0.08)
	p.Kind = WindowQuery
	p.Seed = 13
	p.TimeStepSec = 10
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w.CompareBaseline = true
	w.BaselineSampleRate = 1
	stats := w.Run()
	if stats.BaselineSampled != stats.Queries {
		t.Fatalf("window baseline sampled %d of %d", stats.BaselineSampled, stats.Queries)
	}
	if stats.Queries > 0 && stats.BaselineMeanLatencySlots() <= 0 {
		t.Fatal("window baseline latency must be positive")
	}
}

func TestPrefillRespectsCapacityAndSoundness(t *testing.T) {
	for _, kind := range []QueryKind{KNNQuery, WindowQuery} {
		p := LACity().Scaled(2).WithDuration(0.05)
		p.Kind = kind
		p.Seed = 14
		p.PrefillQueriesPerHost = 8
		p.PrefillRadiusMiles = 1
		w, err := NewWorld(p)
		if err != nil {
			t.Fatal(err)
		}
		// Caches are filled and within capacity; every region is sound.
		filled := 0
		for i := range w.hosts {
			for ti, c := range w.hosts[i].caches {
				if c.Size() > c.Capacity() {
					t.Fatalf("%v: cache over capacity", kind)
				}
				if c.Size() > 0 {
					filled++
				}
				for _, r := range c.Regions() {
					want := w.poisInRect(ti, r.Rect)
					if len(want) != len(r.POIs) {
						t.Fatalf("%v: prefilled region holds %d POIs, database has %d inside",
							kind, len(r.POIs), len(want))
					}
				}
			}
		}
		if filled < len(w.hosts)/2 {
			t.Fatalf("%v: only %d/%d hosts prefilled", kind, filled, len(w.hosts))
		}
	}
}

func TestStatsTuningAndBytesAccessors(t *testing.T) {
	s := Stats{Queries: 4, Broadcast: 2, TuningSlots: 10, PeerBytes: 400}
	if s.AvgTuningSlots() != 5 {
		t.Errorf("AvgTuningSlots = %v", s.AvgTuningSlots())
	}
	if s.AvgPeerBytes() != 100 {
		t.Errorf("AvgPeerBytes = %v", s.AvgPeerBytes())
	}
	var zero Stats
	if zero.AvgTuningSlots() != 0 || zero.AvgPeerBytes() != 0 {
		t.Error("zero stats accessors must return 0")
	}
}

func TestValidateWarmupFrac(t *testing.T) {
	p := LACity()
	p.WarmupFrac = 1.5
	if _, err := NewWorld(p); err == nil {
		t.Error("WarmupFrac > 1 accepted")
	}
	p = LACity()
	p.WarmupFrac = -0.1
	if _, err := NewWorld(p); err == nil {
		t.Error("negative WarmupFrac accepted")
	}
}

func TestSelfCheckCatchesCorruption(t *testing.T) {
	// Force a mismatch by corrupting a result before checking.
	p := LACity().Scaled(1).WithDuration(0.05)
	p.Seed = 15
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w.SelfCheck = true
	// Wrong count.
	w.checkKNN(0, w.Database()[0].Pos, 3, nil)
	if w.SelfCheckErr() == nil {
		t.Fatal("count mismatch not caught")
	}
	// First error is sticky.
	first := w.SelfCheckErr()
	w.checkKNN(0, w.Database()[0].Pos, 1, nil)
	if w.SelfCheckErr() != first {
		t.Fatal("first self-check error not sticky")
	}

	w2, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w2.SelfCheck = true
	// Wrong distance at right count.
	wrong := []broadcast.POI{{ID: 999, Pos: geom.Pt(0, 0)}}
	w2.checkKNN(0, geom.Pt(10, 10), 1, wrong)
	if w2.SelfCheckErr() == nil {
		t.Fatal("distance mismatch not caught")
	}

	w3, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w3.SelfCheck = true
	win := geom.NewRect(0, 0, 20, 20)
	w3.checkWindow(0, win, nil)
	if w3.SelfCheckErr() == nil {
		t.Fatal("window count mismatch not caught")
	}
	w4, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	// Same count, wrong members.
	truth := w4.types[0].truth.Window(win)
	fake := make([]broadcast.POI, len(truth))
	for i := range fake {
		fake[i] = broadcast.POI{ID: int64(100000 + i), Pos: geom.Pt(1, 1)}
	}
	w4.checkWindow(0, win, fake)
	if w4.SelfCheckErr() == nil {
		t.Fatal("window member mismatch not caught")
	}
}

func TestOwnCacheOptionRaisesSharing(t *testing.T) {
	mk := func(own bool) Stats {
		p := LACity().Scaled(2).WithDuration(0.15)
		p.Kind = KNNQuery
		p.Seed = 16
		p.TimeStepSec = 10
		p.AcceptApproximate = true
		p.UseOwnCache = own
		p.PrefillQueriesPerHost = 5
		p.PrefillRadiusMiles = 0.5 // knowledge stays near the host
		w, err := NewWorld(p)
		if err != nil {
			t.Fatal(err)
		}
		w.SelfCheck = true
		s := w.Run()
		if err := w.SelfCheckErr(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	without := mk(false)
	with := mk(true)
	if with.SharedPct() < without.SharedPct() {
		t.Errorf("own cache lowered sharing: %.1f%% -> %.1f%%",
			without.SharedPct(), with.SharedPct())
	}
}

func TestTraceRecording(t *testing.T) {
	var buf bytes.Buffer
	w := smallWorld(t, KNNQuery, 17)
	w.Trace = trace.NewWriter(&buf)
	stats := w.Run()
	if err := w.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != stats.Queries {
		t.Fatalf("trace has %d events, stats counted %d", len(events), stats.Queries)
	}
	sum := trace.Summarize(events)
	if sum.ByOutcome["verified"] != stats.Verified ||
		sum.ByOutcome["approximate"] != stats.Approximate ||
		sum.ByOutcome["broadcast"] != stats.Broadcast {
		t.Fatalf("trace outcomes %v disagree with stats %+v", sum.ByOutcome, stats)
	}
}

func TestMultipleDataTypes(t *testing.T) {
	p := LACity().Scaled(2).WithDuration(0.12)
	p.Kind = KNNQuery
	p.Seed = 18
	p.TimeStepSec = 10
	p.POITypes = 3
	p.AcceptApproximate = true
	p.PrefillQueriesPerHost = 5
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w.SelfCheck = true
	stats := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatalf("multi-type self-check: %v", err)
	}
	if stats.Queries == 0 {
		t.Fatal("no queries")
	}
	// Every host carries one cache per type.
	if got := len(w.hosts[0].caches); got != 3 {
		t.Fatalf("host has %d caches, want 3", got)
	}
	// The three types hold independent POI fields.
	if len(w.types) != 3 {
		t.Fatalf("%d type states", len(w.types))
	}
	same := 0
	for i := range w.types[0].db {
		if w.types[0].db[i].Pos == w.types[1].db[i].Pos {
			same++
		}
	}
	if same == len(w.types[0].db) {
		t.Fatal("type fields are identical — generation not independent")
	}
	// Sharing still works across a multi-type workload.
	if stats.SharedPct() == 0 {
		t.Error("no sharing in multi-type run")
	}
}
