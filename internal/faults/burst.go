// Correlated-failure channel models: a two-state Gilbert–Elliott fading
// process for the P2P ad-hoc channel and scheduled deep-fade blackout
// windows for the broadcast downlink.
//
// The legacy knobs of this package are independent Bernoulli draws, but a
// real wireless channel fails in bursts: deep fades, shadowing, and
// handoff gaps hold the channel down for many consecutive slots. The two
// models split that regime along the paper's two channels:
//
//   - Gilbert–Elliott (BurstGoodLoss/BurstBadLoss/BurstGoodSlots/
//     BurstBadSlots): the short-range ad-hoc channel alternates between a
//     good state (low extra loss) and a bad state (fade; high extra
//     loss). Dwell times in each state are geometric with the configured
//     means, so losses are correlated: one bad slot predicts more. The
//     chain is indexed by the broadcast slot clock and advanced lazily,
//     so the number of dwell draws depends only on elapsed slots — never
//     on query volume — keeping runs reproducible under any workload.
//   - Blackout windows (BlackoutPeriodSec/BlackoutDurationSec): each MH
//     periodically loses the broadcast downlink entirely (tunnel, deep
//     shadow, handoff gap). Windows are a pure function of the seed and
//     the host index — per-host phase offsets spread the outages — so
//     the schedule costs zero random draws.
//
// Layering contract: both models ride *under* the legacy Bernoulli knobs.
// The Gilbert–Elliott chain draws from its own salted stream and its
// kill decision is applied after the legacy draw, so arming it never
// perturbs the legacy stream's sequence; with both new knob groups zero
// the chain is nil, the schedule is nil, no draws happen, and output is
// bit-identical to the pre-burst simulator.
package faults

import (
	"math"
	"math/rand"
)

// burstSeedSalt decorrelates the Gilbert–Elliott chain's stream from the
// injector's legacy stream ("burs").
const burstSeedSalt = 0x62757273

// DeepFadeLoss is the bad-state loss rate at or above which the degraded
// planner treats the ad-hoc channel as effectively down (carrier sensing:
// a station losing ≥95% of frames cannot sustain an exchange).
const DeepFadeLoss = 0.95

// BurstEnabled reports whether the Gilbert–Elliott process is armed.
func (p Profile) BurstEnabled() bool {
	return p.BurstBadLoss > 0 && p.BurstBadSlots > 0
}

// BlackoutEnabled reports whether scheduled broadcast blackout windows
// are armed.
func (p Profile) BlackoutEnabled() bool {
	return p.BlackoutPeriodSec > 0 && p.BlackoutDurationSec > 0
}

// gilbert is the two-state Markov fading chain. State dwell times are
// geometric (mean goodMean/badMean slots); the per-frame kill probability
// is the current state's loss rate. All draws come from the chain's own
// salted stream.
type gilbert struct {
	rng      *rand.Rand
	goodLoss float64
	badLoss  float64
	goodMean float64
	badMean  float64
	bad      bool
	started  bool
	// until is the first slot at which the current state expires.
	until int64
}

func newGilbert(seed int64, p Profile) *gilbert {
	if !p.BurstEnabled() {
		return nil
	}
	return &gilbert{
		rng:      rand.New(rand.NewSource(seed ^ burstSeedSalt)),
		goodLoss: p.BurstGoodLoss,
		badLoss:  p.BurstBadLoss,
		goodMean: p.BurstGoodSlots,
		badMean:  p.BurstBadSlots,
	}
}

// dwell draws a geometric dwell time with the given mean (>= 1 slot).
func (g *gilbert) dwell(mean float64) int64 {
	if mean <= 1 {
		return 1
	}
	// Inversion sampling of Geometric(p) on {1, 2, ...} with p = 1/mean.
	p := 1 / mean
	u := g.rng.Float64()
	d := 1 + int64(math.Floor(math.Log(1-u)/math.Log(1-p)))
	if d < 1 {
		d = 1
	}
	const maxDwell = 1 << 40 // overflow guard; far beyond any run length
	if d > maxDwell {
		d = maxDwell
	}
	return d
}

// sync advances the chain to the given slot. Slots move monotonically
// forward in the simulation; syncing to an earlier slot is a no-op.
func (g *gilbert) sync(slot int64, c *Counters) {
	if !g.started {
		g.started = true
		g.until = slot + g.dwell(g.goodMean)
	}
	for slot >= g.until {
		g.bad = !g.bad
		c.BurstTransitions++
		mean := g.goodMean
		if g.bad {
			mean = g.badMean
		}
		g.until += g.dwell(mean)
	}
}

// Sync advances the Gilbert–Elliott chain to the given broadcast slot.
// The sim calls this at query start and after each backoff wait so fades
// can begin or end mid-collection. Safe on nil and with the chain unarmed.
func (in *Injector) Sync(slot int64) {
	if in == nil || in.ge == nil {
		return
	}
	in.ge.sync(slot, &in.Counters)
}

// burstLost draws whether the fading chain kills one ad-hoc frame at the
// chain's current state. No draw (and no loss) when the chain is unarmed
// or the current state's loss rate is zero.
func (in *Injector) burstLost() bool {
	if in == nil || in.ge == nil {
		return false
	}
	loss := in.ge.goodLoss
	if in.ge.bad {
		loss = in.ge.badLoss
	}
	if loss <= 0 {
		return false
	}
	if in.ge.rng.Float64() < loss {
		in.Counters.BurstLosses++
		return true
	}
	return false
}

// ChannelImpaired reports whether the fading chain currently sits in its
// bad state (at the last synced slot). The resilient collection loop uses
// this to suppress circuit-breaker strikes: during a fade the losses are
// the channel's fault, not any individual peer's. Safe on nil.
func (in *Injector) ChannelImpaired() bool {
	return in != nil && in.ge != nil && in.ge.bad
}

// DeepFade reports whether the chain is in a bad state severe enough
// (loss >= DeepFadeLoss) that the degraded planner should treat the
// ad-hoc channel as down rather than merely lossy. Safe on nil.
func (in *Injector) DeepFade() bool {
	return in != nil && in.ge != nil && in.ge.bad && in.ge.badLoss >= DeepFadeLoss
}

// Blackout is the per-MH broadcast-downlink outage schedule: every
// BlackoutPeriodSec seconds each host loses the downlink for
// BlackoutDurationSec seconds, phase-shifted per host by a seeded hash so
// the population's outages are spread across the period. The schedule is
// a pure function — zero random draws — so arming it cannot perturb any
// stream. A nil *Blackout means no windows (channel always up).
type Blackout struct {
	period   float64
	duration float64
	seed     uint64
}

// NewBlackout builds the blackout schedule for the profile, or nil when
// blackout windows are unarmed.
func NewBlackout(seed int64, p Profile) *Blackout {
	if !p.BlackoutEnabled() {
		return nil
	}
	d := p.BlackoutDurationSec
	if d > p.BlackoutPeriodSec {
		d = p.BlackoutPeriodSec
	}
	return &Blackout{period: p.BlackoutPeriodSec, duration: d, seed: uint64(seed)}
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed hash for per-host phase offsets.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// phase returns the host's outage phase offset in [0, period) seconds.
func (b *Blackout) phase(host int) float64 {
	h := splitmix64(b.seed ^ uint64(host)*0x9e3779b97f4a7c15)
	return float64(h>>11) / (1 << 53) * b.period
}

// Down reports whether the host's broadcast downlink is inside a blackout
// window at simulated time sec. Safe on nil (always up).
func (b *Blackout) Down(host int, sec float64) bool {
	if b == nil {
		return false
	}
	ph := math.Mod(sec+b.phase(host), b.period)
	return ph < b.duration
}

// Remaining returns how many seconds of the host's current blackout
// window are left at simulated time sec, or 0 when the downlink is up.
// Safe on nil.
func (b *Blackout) Remaining(host int, sec float64) float64 {
	if b == nil {
		return 0
	}
	ph := math.Mod(sec+b.phase(host), b.period)
	if ph >= b.duration {
		return 0
	}
	return b.duration - ph
}
