package faults

// Edge-case coverage for the fault primitives: degenerate frame sizes,
// single-element picks, validation boundaries, and backoff arithmetic.

import (
	"math"
	"testing"
)

func TestMangleEmptyFrame(t *testing.T) {
	in := New(1, Profile{ReplyTruncate: 0.5, ReplyCorrupt: 0.5})
	for _, fate := range []ReplyFate{FateDeliver, FateDrop, FateTruncate, FateCorrupt} {
		if got := in.Mangle(nil, fate); len(got) != 0 {
			t.Errorf("Mangle(nil, %v) = %v, want empty", fate, got)
		}
		if got := in.Mangle([]byte{}, fate); len(got) != 0 {
			t.Errorf("Mangle(empty, %v) = %v, want empty", fate, got)
		}
	}
}

func TestMangleOneByteFrame(t *testing.T) {
	in := New(2, Profile{ReplyTruncate: 0.5, ReplyCorrupt: 0.5})

	// Truncating a 1-byte frame can only cut to zero bytes: the cut point
	// is strictly interior, and a 1-byte message has no interior.
	orig := []byte{0xA5}
	if got := in.Mangle(orig, FateTruncate); len(got) != 0 {
		t.Errorf("truncated 1-byte frame has %d bytes, want 0", len(got))
	}
	if orig[0] != 0xA5 {
		t.Error("Mangle modified its input")
	}

	// Corrupting a 1-byte frame must flip at least one bit of that byte
	// and leave the length (and the input) alone.
	got := in.Mangle(orig, FateCorrupt)
	if len(got) != 1 {
		t.Fatalf("corrupted 1-byte frame has %d bytes, want 1", len(got))
	}
	if got[0] == orig[0] {
		t.Error("corruption flipped an even number of identical bits back — no observable damage")
	}
	if orig[0] != 0xA5 {
		t.Error("Mangle modified its input")
	}
}

func TestMangleIdentityFatesShareStorage(t *testing.T) {
	// Deliver and drop are identities: no copy, no draw.
	in := New(3, Profile{ReplyCorrupt: 0.5})
	msg := []byte{1, 2, 3}
	if got := in.Mangle(msg, FateDeliver); &got[0] != &msg[0] {
		t.Error("FateDeliver copied the frame")
	}
	if got := in.Mangle(msg, FateDrop); &got[0] != &msg[0] {
		t.Error("FateDrop copied the frame")
	}
}

func TestPickSingleElement(t *testing.T) {
	// Pick from a 1-element (or degenerate) set is deterministic zero and
	// must not consume randomness: two injectors that differ only in
	// interleaved Pick(1)/Pick(0) calls stay in lockstep.
	a := New(4, Profile{StaleRate: 0.5})
	b := New(4, Profile{StaleRate: 0.5})
	for i := 0; i < 10; i++ {
		if got := a.Pick(1); got != 0 {
			t.Fatalf("Pick(1) = %d, want 0", got)
		}
		if got := a.Pick(0); got != 0 {
			t.Fatalf("Pick(0) = %d, want 0", got)
		}
		if got := a.Pick(-3); got != 0 {
			t.Fatalf("Pick(-3) = %d, want 0", got)
		}
		if pa, pb := a.Pick(1000), b.Pick(1000); pa != pb {
			t.Fatalf("degenerate Picks consumed randomness: %d vs %d", pa, pb)
		}
	}
}

func TestValidateBoundaries(t *testing.T) {
	// Exactly MaxRate (0.95) and exactly 1 are valid rates; Normalized
	// clamping to MaxRate is a separate concern from validation.
	for _, v := range []float64{0, MaxRate, 1} {
		p := Profile{RequestLoss: v, ChurnRate: v}
		if err := p.Validate(); err != nil {
			t.Errorf("rate %v rejected: %v", v, err)
		}
	}
	// Negative, above-one, and NaN rates are rejected for every field.
	bad := []Profile{
		{RequestLoss: -0.001},
		{ReplyLoss: 1.001},
		{ReplyTruncate: -1},
		{ReplyCorrupt: math.NaN()},
		{BroadcastLoss: math.Inf(1)},
		{StaleRate: -0.5},
		{ChurnRate: -0.001},
		{ChurnRate: 1.5},
		{MaxRetries: -1},
		{MaxRetries: 17},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted: %+v", i, p)
		}
	}
	// Retry budget boundaries: 0 and 16 are the inclusive limits.
	if err := (Profile{MaxRetries: 16}).Validate(); err != nil {
		t.Errorf("MaxRetries 16 rejected: %v", err)
	}
}

func TestNormalizedClampsChurn(t *testing.T) {
	got := Profile{ChurnRate: 2}.Normalized()
	if got.ChurnRate != MaxRate {
		t.Errorf("churn 2 normalized to %v, want %v", got.ChurnRate, MaxRate)
	}
	got = Profile{ChurnRate: -1}.Normalized()
	if got.ChurnRate != 0 {
		t.Errorf("churn -1 normalized to %v, want 0", got.ChurnRate)
	}
	// Churn alone enables the profile, so the retry budget defaults.
	got = Profile{ChurnRate: 0.1}.Normalized()
	if got.MaxRetries != DefaultMaxRetries {
		t.Errorf("churn-only profile got MaxRetries %d, want default %d",
			got.MaxRetries, DefaultMaxRetries)
	}
}

func TestReplyFateStringAllVariants(t *testing.T) {
	cases := map[ReplyFate]string{
		FateDeliver:   "deliver",
		FateDrop:      "drop",
		FateTruncate:  "truncate",
		FateCorrupt:   "corrupt",
		ReplyFate(99): "deliver", // unknown fates read as harmless delivery
		ReplyFate(-1): "deliver",
	}
	for fate, want := range cases {
		if got := fate.String(); got != want {
			t.Errorf("ReplyFate(%d).String() = %q, want %q", fate, got, want)
		}
	}
}

func TestBackoffSlotsTable(t *testing.T) {
	cases := []struct {
		attempt int
		want    int64
	}{
		{-1, 0}, {0, 0}, {1, 0}, // no wait before the first attempt
		{2, 2}, {3, 4}, {4, 8}, {5, 16}, // exponential ramp
		{6, 16}, {10, 16}, {64, 16}, {1 << 20, 16}, // capped, no overflow
	}
	for _, c := range cases {
		if got := BackoffSlots(c.attempt); got != c.want {
			t.Errorf("BackoffSlots(%d) = %d, want %d", c.attempt, got, c.want)
		}
	}
}

func TestJitterBoundsAndNilSafety(t *testing.T) {
	var nilIn *Injector
	if got := nilIn.Jitter(10); got != 0 {
		t.Errorf("nil Jitter = %d, want 0", got)
	}
	in := New(5, Profile{RequestLoss: 0.5})
	if got := in.Jitter(0); got != 0 {
		t.Errorf("Jitter(0) = %d, want 0", got)
	}
	if got := in.Jitter(-4); got != 0 {
		t.Errorf("Jitter(-4) = %d, want 0", got)
	}
	for i := 0; i < 100; i++ {
		if got := in.Jitter(8); got < 0 || got >= 8 {
			t.Fatalf("Jitter(8) = %d outside [0, 8)", got)
		}
	}
}

func TestChurnDrawsAreCountedAndSeeded(t *testing.T) {
	a := New(6, Profile{ChurnRate: 0.5})
	b := New(6, Profile{ChurnRate: 0.5})
	var departsA, departsB []bool
	for i := 0; i < 50; i++ {
		departsA = append(departsA, a.ChurnDeparts())
		departsB = append(departsB, b.ChurnDeparts())
	}
	if !boolsEqual(departsA, departsB) {
		t.Fatal("identical seeds drew different churn sequences")
	}
	ca := a.Counters
	if ca.ChurnDepartures == 0 {
		t.Error("50 draws at 50% churn counted zero departures")
	}
	want := int64(0)
	for _, d := range departsA {
		if d {
			want++
		}
	}
	if ca.ChurnDepartures != want {
		t.Errorf("counted %d departures, drew %d", ca.ChurnDepartures, want)
	}

	// Zero churn: no draws, no counters, nil-safe.
	z := New(7, Profile{})
	if z.ChurnDeparts() || z.ChurnReturns() {
		t.Error("zero profile churned")
	}
	var nilIn *Injector
	if nilIn.ChurnDeparts() || nilIn.ChurnReturns() {
		t.Error("nil injector churned")
	}
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
