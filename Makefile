# lbsq build/verification entry points. `make verify` is the tier-1 gate
# (see README.md): vet, build, race-enabled tests, and a fuzz smoke run
# of the wire decoders. `make lint` and `make cover` are the fast CI
# gates (formatting + vet, and per-package coverage floors). Everything
# is stdlib-only Go.

GO ?= go
GOFMT ?= gofmt

# staticcheck runs in `make lint` only when the binary is present (CI
# installs the pinned version below; local trees without it still get
# gofmt + vet). Keep the pin in sync with .github/workflows/ci.yml.
STATICCHECK ?= staticcheck
STATICCHECK_VERSION = 2025.1.1

# Packages that must stay above the coverage floor (see `make cover`).
COVER_PKGS = internal/core internal/geom internal/metrics internal/trust internal/cache internal/faults internal/sim internal/p2p internal/broadcast
COVER_MIN ?= 70

.PHONY: all build vet test race lint cover cover-profile cover-check fuzz-smoke verify continuous-identity soak bench bench-hot bench-tick bench-smoke

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiments suite alone takes minutes under race instrumentation on
# slow runners, so give the package-level timeout explicit headroom instead
# of relying on go test's 10-minute default.
race:
	$(GO) test -race -timeout 45m ./...

# Fast static gates: gofmt (fails loudly listing unformatted files) and
# go vet. CI runs this before anything expensive.
lint:
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "lint: gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./... && echo "lint: staticcheck clean"; \
	else \
		echo "lint: staticcheck not installed, skipping (CI pins $(STATICCHECK_VERSION))"; \
	fi
	@echo "lint: gofmt and vet clean"

# Per-package statement-coverage floors, enforced by the stdlib-only
# checker in cmd/lbsq-cover (no external tooling). The profile covers the
# whole module so the floor list can grow without re-running tests.
# Split so the expensive test run (cover-profile) and the cheap floor
# check (cover-check) are separate steps: CI runs the suite exactly once
# and re-checks floors against the saved profile.
cover: cover-profile cover-check

cover-profile:
	@mkdir -p results
	$(GO) test -count=1 -coverprofile=results/cover.out ./...

cover-check:
	$(GO) run ./cmd/lbsq-cover -profile results/cover.out -min $(COVER_MIN) $(COVER_PKGS)

# Short native-fuzzing runs of the wire codecs and the byzantine attack
# mangler: the decoders must survive arbitrary bytes (the fault layer's
# truncation/corruption damage classes) without panicking, accepted
# inputs must round-trip canonically, and every attack profile must
# produce a materially false claim over arbitrary geometry (the trust
# layer's audits-always-convict contract). The seed corpora are part of
# the gate: a missing testdata corpus means a fuzz target silently lost
# its regression inputs, so fail loudly instead of fuzzing from nothing.
# Explicit -timeout keeps a hung target from stalling CI for go test's
# 10-minute default.
fuzz-smoke:
	@if [ ! -d internal/wire/testdata/fuzz ]; then \
		echo "fuzz-smoke: internal/wire/testdata/fuzz corpus missing"; exit 1; \
	fi
	@if [ ! -d internal/wire/testdata/fuzz/FuzzDecodeBusy ]; then \
		echo "fuzz-smoke: internal/wire/testdata/fuzz/FuzzDecodeBusy corpus missing"; exit 1; \
	fi
	@if [ ! -d internal/faults/testdata/fuzz ]; then \
		echo "fuzz-smoke: internal/faults/testdata/fuzz corpus missing"; exit 1; \
	fi
	$(GO) test -run='^$$' -fuzz=FuzzDecodeReply -fuzztime=5s -timeout 5m ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRequest -fuzztime=5s -timeout 5m ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzInvalidationReport -fuzztime=5s -timeout 5m ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzDecodeBusy -fuzztime=5s -timeout 5m ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzAttackClaim -fuzztime=5s -timeout 5m ./internal/faults

verify: vet build race fuzz-smoke
	@echo "verify: all gates passed"

# Continuous-query identity lane (DESIGN.md §15): zero-knob and armed
# determinism, the batched-tick identity matrix with subscriptions live,
# and the safe-region differential gate — all under the race detector.
# CI runs this as its own verify step so a continuous regression is
# named in the job log instead of buried in the full race run.
continuous-identity:
	$(GO) test -race -count=1 -run 'TestContinuous' ./internal/sim

# Chaos soak sweep: randomized fault/churn/resilience schedules with
# metamorphic invariants after every run (see internal/sim/soak_test.go).
# SOAK_SCHEDULES widens the sweep beyond the 20-schedule acceptance
# floor; the nightly CI lane raises it further via the environment.
SOAK_SCHEDULES ?= 32
soak:
	SOAK_SCHEDULES=$(SOAK_SCHEDULES) $(GO) test -run='Soak' -count=1 -v ./internal/sim

# Fault/resilience benchmark grid: one JSON line per cell into
# results/BENCH_faults.json. Sweeps request-loss with and without the
# resilient lifecycle so the two degradation curves can be compared.
# Runs in one process through the sweep engine (internal/perf.FaultGrid);
# rows are value-identical to the former go-run-per-cell shell loop, in
# the same order, plus the bench_schema version field.
bench:
	@mkdir -p results
	$(GO) run ./cmd/lbsq-sim -grid faults -side 2 -hours 0.1 \
		> results/BENCH_faults.json
	@echo "bench: wrote results/BENCH_faults.json"

# Hot-path perf report: steady-state micro benchmarks (ns/op, B/op,
# allocs/op of the scratch-based query kernels) plus the parallel-sweep
# wall-clock comparison with its serial-identity check.
bench-hot:
	@mkdir -p results
	$(GO) run ./cmd/lbsq-bench -out results/BENCH_hotpath.json
	@echo "bench-hot: wrote results/BENCH_hotpath.json"

# Batched tick-engine report: World.Step wall clock at each
# -tick-workers setting with per-row GOMAXPROCS stamps, the MVR
# memoization counters, and the embedded serial-identity check
# (DESIGN.md §14).
bench-tick:
	@mkdir -p results
	$(GO) run ./cmd/lbsq-bench -tick -out results/BENCH_tick.json
	@echo "bench-tick: wrote results/BENCH_tick.json"

# CI regression gate: quick-scale harness compared against the committed
# baseline (fails on >25% ns/op regression or any steady-state allocs/op
# growth), the tick-engine report against its baseline (wall clock only
# judged under matching GOMAXPROCS; allocations and serial identity
# always), then the parallel sweep identity under the race detector.
bench-smoke:
	$(GO) run ./cmd/lbsq-bench -quick -compare results/BENCH_hotpath.json
	$(GO) run ./cmd/lbsq-bench -tick -compare results/BENCH_tick.json
	$(GO) test -race ./internal/sweep
	$(GO) test -race -run 'TestParallel|TestFaultGrid' \
		./internal/perf ./internal/experiments
	$(GO) test -race -short -run 'TestBatchedTick' ./internal/sim
