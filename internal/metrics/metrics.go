// Package metrics is a stdlib-only, allocation-free-on-the-hot-path
// metrics layer for the simulator and its serving harnesses: monotonic
// counters, gauges, and fixed-bucket log-scale histograms with
// deterministic quantile extraction, plus the per-query phase-span
// taxonomy (p2p_collect, mvr_merge, nnv_verify, onair_tune,
// onair_download) the query path reports through.
//
// Design constraints (DESIGN.md §10):
//
//   - Registration (Registry.Counter/Gauge/Histogram) may allocate; the
//     observation path (Add/Inc/Set/Observe) must not. Instruments are
//     plain structs with preallocated bucket arrays; Observe is a binary
//     search plus integer increments.
//   - Everything observed is a deterministic quantity (simulated slots,
//     work units, areas) — never wall-clock time — so identical seeds
//     produce byte-identical snapshots, and the zero-knob identity
//     contract of the faults/resilience layers extends to metrics.
//   - A Registry is single-writer: the owning goroutine observes without
//     synchronization (parallel sweeps give every World its own
//     registry). Cross-goroutine readers (the -metrics-listen HTTP
//     endpoint) consume immutable published Snapshots via Publish.
package metrics

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// unusable; obtain counters from a Registry.
type Counter struct {
	name string
	help string
	v    int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add increases the counter by n. Negative deltas are ignored —
// counters are monotonic by contract.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a value that can move both ways (simulated clock, live host
// count, cache fill). The zero value is unusable; obtain gauges from a
// Registry.
type Gauge struct {
	name string
	help string
	v    float64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Registry holds the named instruments of one simulation world (or any
// other single-writer component). Registration is idempotent: asking
// for an existing name of the same kind returns the same instrument;
// re-registering a name as a different kind panics (a wiring bug).
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	// published is the latest immutable snapshot made visible to
	// concurrent readers via Publish/Published.
	published atomic.Pointer[Snapshot]
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

func (r *Registry) checkName(name, kind string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("metrics: %q already registered as counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("metrics: %q already registered as gauge", name))
	}
	if _, ok := r.histograms[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("metrics: %q already registered as histogram", name))
	}
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	r.checkName(name, "counter")
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.checkName(name, "gauge")
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram registers (or returns the existing) histogram under name.
// bounds are ascending bucket upper limits (see ExpBuckets); an
// implicit +Inf overflow bucket is appended. unit documents the
// observed quantity ("slots", "work", "sqmi") and is carried into
// snapshots and the text exposition help line.
func (r *Registry) Histogram(name, help, unit string, bounds []float64) *Histogram {
	r.checkName(name, "histogram")
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := newHistogram(name, help, unit, bounds)
	r.histograms[name] = h
	return h
}

// sortedNames returns the keys of m in lexical order — the deterministic
// iteration order of every snapshot and exposition.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Publish captures the current state as an immutable Snapshot and makes
// it visible to concurrent readers (Published, the HTTP handler). Only
// the owning goroutine may call Publish; readers never touch the live
// instruments.
func (r *Registry) Publish() {
	s := r.Snapshot()
	r.published.Store(&s)
}

// Published returns the most recently published snapshot, or nil when
// Publish has never been called.
func (r *Registry) Published() *Snapshot { return r.published.Load() }
