// Package wire defines the binary on-air message format for peer-to-peer
// cache sharing: the cache request a querying mobile host broadcasts to
// its neighbors and the reply carrying verified regions with their POIs.
// The encoding is little-endian with explicit lengths, rejects truncated
// or oversized input, carries a CRC32C integrity trailer so bit errors on
// the ad-hoc channel are detected rather than trusted, and exposes exact
// message sizes so the simulator can account for ad-hoc channel traffic
// in bytes.
//
// Layout (all integers little-endian; crc is CRC32C/Castagnoli over every
// preceding byte of the message):
//
//	Request  := magic(2) ver(1) kind(1)=1 queryID(8) origin(16)
//	            relevance(32) hops(1) crc(4)
//	Reply    := magic(2) ver(1) kind(1)=2 queryID(8) nRegions(2)
//	            Region* crc(4)
//	Region   := rect(32) nPOIs(4) POI*
//	POI      := id(8) pos(16)
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

const (
	magic   = 0x5B51 // "[Q"
	version = 1

	kindRequest = 1
	kindReply   = 2

	headerSize = 2 + 1 + 1 + 8 // magic, version, kind, queryID

	// TrailerSize is the CRC32C integrity trailer appended to every
	// message.
	TrailerSize = 4

	// MaxRegions bounds regions per reply (a reply larger than this is
	// malformed or hostile).
	MaxRegions = 1 << 12
	// MaxPOIsPerRegion bounds POIs per region.
	MaxPOIsPerRegion = 1 << 16
)

// Request is a cache request broadcast to single-hop neighbors.
type Request struct {
	// QueryID correlates replies with requests.
	QueryID uint64
	// Origin is the querying host's position.
	Origin geom.Point
	// Relevance restricts which cached regions are worth returning.
	Relevance geom.Rect
	// Hops is the remaining relay budget (multi-hop sharing).
	Hops uint8
}

// Region is one shared verified region.
type Region struct {
	Rect geom.Rect
	POIs []broadcast.POI
}

// Reply carries a peer's matching cache contents.
type Reply struct {
	QueryID uint64
	Regions []Region
}

// castagnoli is the CRC32C table; the Castagnoli polynomial detects all
// 1–3 bit errors and is what iSCSI/ext4 use for frame integrity.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RequestSize is the fixed encoded size of a Request, trailer included.
const RequestSize = headerSize + 16 + 32 + 1 + TrailerSize

// ReplyOverhead is the fixed encoded size of a reply outside its regions:
// the header, the region count, and the CRC trailer.
const ReplyOverhead = headerSize + 2 + TrailerSize

// RegionWireSize returns the encoded size of one region carrying nPOIs.
func RegionWireSize(nPOIs int) int { return 32 + 4 + 24*nPOIs }

// ReplySize returns the exact encoded size of a reply with the given
// regions without encoding it — the simulator's byte accounting.
func ReplySize(regions []Region) int {
	n := ReplyOverhead
	for _, r := range regions {
		n += RegionWireSize(len(r.POIs))
	}
	return n
}

// EncodeRequest serializes a request.
func EncodeRequest(r Request) []byte {
	buf := make([]byte, 0, RequestSize)
	buf = appendHeader(buf, kindRequest, r.QueryID)
	buf = appendPoint(buf, r.Origin)
	buf = appendRect(buf, r.Relevance)
	buf = append(buf, r.Hops)
	return appendTrailer(buf)
}

// DecodeRequest parses a request.
func DecodeRequest(b []byte) (Request, error) {
	var out Request
	rest, queryID, err := parseHeader(b, kindRequest)
	if err != nil {
		return out, err
	}
	if len(rest) != 16+32+1 {
		return out, fmt.Errorf("wire: request payload %d bytes, want 49", len(rest))
	}
	out.QueryID = queryID
	out.Origin, rest = parsePoint(rest)
	out.Relevance, rest = parseRect(rest)
	out.Hops = rest[0]
	if err := validRect(out.Relevance); err != nil {
		return Request{}, err
	}
	if err := validPoint(out.Origin); err != nil {
		return Request{}, err
	}
	return out, nil
}

// EncodeReply serializes a reply.
func EncodeReply(r Reply) ([]byte, error) {
	if len(r.Regions) > MaxRegions {
		return nil, fmt.Errorf("wire: %d regions exceeds limit %d", len(r.Regions), MaxRegions)
	}
	buf := make([]byte, 0, ReplySize(r.Regions))
	buf = appendHeader(buf, kindReply, r.QueryID)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Regions)))
	for _, reg := range r.Regions {
		if len(reg.POIs) > MaxPOIsPerRegion {
			return nil, fmt.Errorf("wire: %d POIs exceeds limit %d", len(reg.POIs), MaxPOIsPerRegion)
		}
		buf = appendRect(buf, reg.Rect)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(reg.POIs)))
		for _, p := range reg.POIs {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(p.ID))
			buf = appendPoint(buf, p.Pos)
		}
	}
	return appendTrailer(buf), nil
}

// DecodeReply parses a reply.
func DecodeReply(b []byte) (Reply, error) {
	var out Reply
	rest, queryID, err := parseHeader(b, kindReply)
	if err != nil {
		return out, err
	}
	out.QueryID = queryID
	if len(rest) < 2 {
		return out, fmt.Errorf("wire: reply truncated before region count")
	}
	n := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if n > MaxRegions {
		return out, fmt.Errorf("wire: region count %d exceeds limit", n)
	}
	out.Regions = make([]Region, 0, n)
	for i := 0; i < n; i++ {
		if len(rest) < 32+4 {
			return Reply{}, fmt.Errorf("wire: reply truncated in region %d header", i)
		}
		var reg Region
		reg.Rect, rest = parseRect(rest)
		if err := validRect(reg.Rect); err != nil {
			return Reply{}, fmt.Errorf("wire: region %d: %w", i, err)
		}
		c := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if c > MaxPOIsPerRegion {
			return Reply{}, fmt.Errorf("wire: region %d POI count %d exceeds limit", i, c)
		}
		if len(rest) < 24*c {
			return Reply{}, fmt.Errorf("wire: reply truncated in region %d POIs", i)
		}
		reg.POIs = make([]broadcast.POI, c)
		for j := 0; j < c; j++ {
			reg.POIs[j].ID = int64(binary.LittleEndian.Uint64(rest))
			rest = rest[8:]
			reg.POIs[j].Pos, rest = parsePoint(rest)
			if err := validPoint(reg.POIs[j].Pos); err != nil {
				return Reply{}, fmt.Errorf("wire: region %d POI %d: %w", i, j, err)
			}
		}
		out.Regions = append(out.Regions, reg)
	}
	if len(rest) != 0 {
		return Reply{}, fmt.Errorf("wire: %d trailing bytes", len(rest))
	}
	return out, nil
}

func appendHeader(buf []byte, kind byte, queryID uint64) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, magic)
	buf = append(buf, version, kind)
	return binary.LittleEndian.AppendUint64(buf, queryID)
}

// appendTrailer seals the message with a CRC32C over everything so far.
func appendTrailer(buf []byte) []byte {
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// parseHeader validates the CRC trailer and the fixed header, returning
// the payload between them. Magic and version alone are not trusted: a
// bit-flipped message with an intact header is rejected here, before any
// structural parsing.
func parseHeader(b []byte, wantKind byte) ([]byte, uint64, error) {
	if len(b) < headerSize+TrailerSize {
		return nil, 0, fmt.Errorf("wire: message too short (%d bytes)", len(b))
	}
	body := b[:len(b)-TrailerSize]
	want := binary.LittleEndian.Uint32(b[len(b)-TrailerSize:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, 0, fmt.Errorf("wire: CRC mismatch (got %#x want %#x)", got, want)
	}
	if binary.LittleEndian.Uint16(body) != magic {
		return nil, 0, fmt.Errorf("wire: bad magic %#x", binary.LittleEndian.Uint16(body))
	}
	if body[2] != version {
		return nil, 0, fmt.Errorf("wire: unsupported version %d", body[2])
	}
	if body[3] != wantKind {
		return nil, 0, fmt.Errorf("wire: kind %d, want %d", body[3], wantKind)
	}
	return body[headerSize:], binary.LittleEndian.Uint64(body[4:]), nil
}

func appendPoint(buf []byte, p geom.Point) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
}

func parsePoint(b []byte) (geom.Point, []byte) {
	x := math.Float64frombits(binary.LittleEndian.Uint64(b))
	y := math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	return geom.Pt(x, y), b[16:]
}

func appendRect(buf []byte, r geom.Rect) []byte {
	buf = appendPoint(buf, r.Min)
	return appendPoint(buf, r.Max)
}

func parseRect(b []byte) (geom.Rect, []byte) {
	min, b := parsePoint(b)
	max, b := parsePoint(b)
	return geom.Rect{Min: min, Max: max}, b
}

func validPoint(p geom.Point) error {
	if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("non-finite coordinate %v", p)
	}
	return nil
}

func validRect(r geom.Rect) error {
	if err := validPoint(r.Min); err != nil {
		return err
	}
	if err := validPoint(r.Max); err != nil {
		return err
	}
	if !r.Valid() {
		return fmt.Errorf("inverted rect %v", r)
	}
	return nil
}
