// Package sim implements the system model of Section 4.1: a mobile-host
// module (random waypoint movement, Poisson query launching, per-host
// result caches), a base-station module operating the Hilbert-indexed
// (1, m) broadcast channel, and the P2P sharing layer, wired to the SBNN
// and SBWQ algorithms of the core package. It ships the three parameter
// sets of Table 3 (Los Angeles City, Synthetic Suburbia, Riverside
// County) and collects the statistics the paper's figures report.
package sim

import (
	"fmt"
	"math"

	"lbsq/internal/broadcast"
	"lbsq/internal/cache"
	"lbsq/internal/faults"
	"lbsq/internal/geom"
	"lbsq/internal/p2p"
	"lbsq/internal/trust"
)

// MetersPerMile converts the paper's transmission ranges (meters) into
// the simulator's world units (miles).
const MetersPerMile = 1609.344

// QueryKind selects which spatial query type a simulation run exercises;
// the paper evaluates the two kinds in separate experiments.
type QueryKind int

const (
	// KNNQuery runs sharing-based k-nearest-neighbor queries (SBNN).
	KNNQuery QueryKind = iota
	// WindowQuery runs sharing-based window queries (SBWQ).
	WindowQuery
)

// String implements fmt.Stringer.
func (k QueryKind) String() string {
	if k == WindowQuery {
		return "window"
	}
	return "knn"
}

// Params mirrors Table 4 (simulation parameters) plus the simulator knobs
// the paper describes in prose. Distances are miles unless noted.
type Params struct {
	// Name labels the parameter set in reports.
	Name string

	// POINumber is the number of points of interest in the system.
	POINumber int
	// MHNumber is the number of mobile hosts in the simulation area.
	MHNumber int
	// CacheSize is the cache capacity per data type of each mobile host
	// (CSize, in POIs).
	CacheSize int
	// QueryRate is the mean number of queries launched per minute across
	// the whole system (the Query parameter).
	QueryRate float64
	// TxRangeMeters is the wireless transmission range in meters.
	TxRangeMeters float64
	// K is the mean number of queried nearest neighbors (kNN parameter).
	K int
	// WindowPct is the mean query-window size as a percentage. The paper
	// writes "1% to 5% of the whole search space"; this reproduction
	// interprets the percentage against the side length of the search
	// space (a 3% window on a 20-mile area is 0.6 mi × 0.6 mi), the only
	// reading under which the reported cache capacities (6–30 POIs) can
	// hold a window's contents. See DESIGN.md.
	WindowPct float64
	// WindowDistMiles is the mean distance between a querying MH and the
	// center of its query window (normally distributed).
	WindowDistMiles float64
	// DurationHours is the simulated run length (Texecution).
	DurationHours float64

	// AreaMiles is the side of the square service area (20 in the paper).
	AreaMiles float64
	// WindowRefMiles is the reference side length the window percentage
	// is measured against. It stays at the original 20-mile area when a
	// parameter set is Scaled down, so a "3% window" keeps its physical
	// size and the coverage dynamics of the full-scale system. Zero means
	// AreaMiles.
	WindowRefMiles float64

	// PrefillQueriesPerHost is the mean number of historical query
	// results pre-loaded into each host's cache at t=0 — a steady-state
	// warm start standing in for the hours of query history the paper's
	// 10-hour runs accumulate before measurement. The pre-filled regions
	// are built from the ground-truth database, so they satisfy the same
	// soundness invariant live caching maintains. Zero disables.
	PrefillQueriesPerHost float64
	// PrefillRadiusMiles spreads the historical query locations around
	// each host's starting position (how far its knowledge lags behind).
	// Defaults to min(7.5, AreaMiles/2) — the mean travel between
	// queries under the Table 3 rates and speeds.
	PrefillRadiusMiles float64

	// Kind selects kNN or window queries for the run.
	Kind QueryKind

	// Seed drives all randomness; runs are reproducible.
	Seed int64
	// TimeStepSec is the movement/query time step in seconds.
	TimeStepSec float64
	// WarmupFrac is the leading fraction of the run whose queries warm
	// the caches but are excluded from statistics ("all simulation
	// results were recorded after the system model reached steady
	// state").
	WarmupFrac float64
	// MinSpeedMph/MaxSpeedMph bound the random waypoint vehicle speeds.
	MinSpeedMph float64
	MaxSpeedMph float64
	// PauseSec is the maximum random waypoint pause.
	PauseSec float64
	// SlotSec is the broadcast slot duration in seconds (one data packet
	// per slot), used to convert slot latencies into wall time.
	SlotSec float64

	// POITypes is the number of independent POI data types (gas
	// stations, hotels, restaurants, ...). Each type gets its own POI
	// field, broadcast channel, and per-host cache of CacheSize POIs —
	// Table 4's "cache capacity per data type". Defaults to 1, the
	// paper's experimental setting (gas stations only).
	POITypes int

	// POIClusters, when positive, draws the POI field from a Gaussian
	// mixture with this many centers instead of the uniform (Poisson)
	// field the paper assumes — a robustness knob for the Lemma 3.2
	// correctness model, whose lambda stays the global average density.
	POIClusters int

	// UseOwnCache lets the querying host consult its own cached verified
	// regions in addition to its peers'. Off by default so the reported
	// shares isolate the paper's peer-sharing mechanism.
	UseOwnCache bool

	// SharingHops is how many ad-hoc hops a cache request travels. The
	// paper uses single-hop sharing (1, the default when zero); larger
	// values relay requests through intermediate peers — the natural
	// multi-hop extension of its cooperative-caching citations.
	SharingHops int

	// CachePolicy selects the replacement policy (the paper uses the
	// moving-direction + data-distance policy).
	CachePolicy cache.Policy
	// AcceptApproximate lets clients accept approximate SBNN answers.
	AcceptApproximate bool
	// MinCorrectness is the approximate acceptance threshold (the
	// paper's experiments count answers with correctness above 50%).
	MinCorrectness float64

	// Faults configures the fault-injection layer: P2P request/reply
	// loss, reply truncation and bit corruption, broadcast packet loss,
	// peer-cache staleness, and peer churn (see the faults package). The
	// zero value is the ideal substrate the paper assumes — no faults are
	// drawn and behavior is identical to a build without the layer.
	Faults faults.Profile

	// DeadlineSlots is the per-query slot budget of the resilient P2P
	// lifecycle: when a query's retry backoff would spend more broadcast
	// slots than this, peer collection abandons its remaining targets and
	// the query falls back to the channel with the spent slots priced
	// into its access latency. Zero disables the deadline. Any nonzero
	// resilience knob (DeadlineSlots, BreakerThreshold, Faults.ChurnRate)
	// switches peer collection from the seed's blind re-broadcast loop to
	// the adaptive lifecycle: capped exponential backoff with seeded
	// jitter, retrying only peers that have not yet replied.
	DeadlineSlots int
	// BreakerThreshold is the consecutive-failure count (CRC rejections,
	// stale discards, reply timeouts) that trips a peer's circuit breaker
	// open. Zero disables per-peer breakers.
	BreakerThreshold int
	// BreakerCooldown is the quarantine length of a tripped breaker in
	// collection cycles (one query's P2P phase = one cycle). Zero selects
	// p2p.DefaultBreakerCooldown when BreakerThreshold is set.
	BreakerCooldown int64

	// AuditRate enables the Byzantine-resilience layer (internal/trust):
	// the probability that one peer contribution is spot-audited against
	// the broadcast channel during one query's screen. Zero (the default)
	// disables the whole defense — no trust engine exists, peer
	// contributions flow to the core algorithms unscreened, and every
	// output is bit-identical to a build without the layer. Nonzero arms
	// audit-gated vouching: contributions from unvouched peers are
	// tainted (demoted to the Lemma 3.2 probabilistic path), overlapping
	// verified regions are cross-validated, and convictions quarantine
	// the peer and force its circuit breaker open. Audit slot costs are
	// priced into the audited query's access latency and charged against
	// its DeadlineSlots budget. Byzantine peers themselves are configured
	// through Faults.ByzantineRate and Faults.Attack.
	AuditRate float64

	// DegradedMode arms the degraded-mode query planner (DESIGN.md §13):
	// each query classifies its connectivity (broadcast downlink up/down ×
	// P2P channel up/down) and walks the fallback ladder — full protocol →
	// P2P-only with Lemma 3.2 probabilistic answers → on-air-only →
	// serve-from-own-cache with an explicit staleness bound. Off (the
	// default), queries run the full protocol unconditionally: a dark
	// downlink stalls them until the blackout window ends, and a deep fade
	// burns the whole retry budget against unreachable peers. The planner
	// only changes behavior when the burst or blackout knobs
	// (Faults.Burst*/Blackout*) create impairments to classify; with those
	// zero every query classifies as fully connected and output is
	// bit-identical to a build without the planner.
	DegradedMode bool

	// Broadcast configures the air index; the Area field is filled in by
	// the simulator. Faults.BroadcastLoss, when set, overrides
	// Broadcast.LossRate so one profile drives every channel.
	Broadcast broadcast.Config

	// Metrics enables the observability layer (DESIGN.md §10): a
	// per-world metrics registry with outcome counters, latency/tuning/
	// area histograms, and the five per-query phase spans (p2p_collect,
	// mvr_merge, nnv_verify, onair_tune, onair_download), exposed
	// through Report.Metrics, the trace span fields, and the CLI
	// Prometheus-style sinks. Pure observation: it draws no randomness
	// and alters no behavior, and with the knob off (the default) every
	// output is bit-identical to a build without the layer — the same
	// zero-knob identity contract as Faults and the resilience knobs.
	Metrics bool

	// UpdateRate arms the consistency layer (DESIGN.md §12): the mean
	// number of POI mutations (insert/delete/move) per minute, per data
	// type. Zero (the default) keeps the paper's immutable POI set — no
	// update process exists, no IR frames ride the index slots, and every
	// output is bit-identical to a build without the layer. Nonzero
	// versions the POI database with a monotone epoch counter, broadcasts
	// invalidation reports every IRPeriodSec, and makes every client
	// reconcile its cached verified regions (surgical shrink with
	// geom.SubtractRect) before querying.
	UpdateRate float64
	// IRPeriodSec is the invalidation-report broadcast period in
	// simulated seconds; mutations accumulate into one epoch per period.
	// Defaults to 30 when UpdateRate is set.
	IRPeriodSec float64
	// IRWindow is how many past epochs of mutation items one IR frame
	// retains (the paper's broadcast-window w of Tabassum et al.): a
	// client whose cached region slept past IRWindow epochs cannot repair
	// it and must demote it to the probabilistic path. Defaults to 8 when
	// UpdateRate is set.
	IRWindow int
	// VRTTLSec is an optional time-to-live for cached verified regions:
	// regions older than this are evicted at the owner's next IR sync (a
	// defense-in-depth bound on how long any cache entry can matter).
	// Zero disables TTL expiry.
	VRTTLSec float64
	// IRDiscard switches reconciliation to the whole-region-discard
	// ablation: any superseded region is dropped instead of surgically
	// shrunk. The EXPERIMENTS.md freshness curve quantifies what the
	// surgical repair buys over this baseline.
	IRDiscard bool

	// ContinuousRate arms the continuous-query layer (DESIGN.md §15): the
	// mean number of standing-subscription registrations per minute across
	// the whole system. Zero (the default) keeps every query a one-shot
	// snapshot — no subscription registry exists, no maintenance phase
	// runs, and every output is bit-identical to a build without the
	// layer. Nonzero registers moving hosts with standing kNN or window
	// queries (the run's Kind) whose answers are maintained incrementally:
	// each exact answer carries a safe-exit radius computed from the MVR
	// clearance and the known result-flip boundaries (internal/core
	// SafeExitKNN/SafeExitWindow), and the subscription re-runs the full
	// query path only when its host crosses that radius, an invalidation
	// epoch or VR TTL taints the answer, or the previous answer was not
	// exact (the Lemma 3.2 probabilistic demotion). Registration draws
	// come from a dedicated seeded stream, so arming the layer never
	// perturbs the legacy query draws.
	ContinuousRate float64
	// ContinuousNaive forces every standing subscription to re-verify on
	// every tick instead of consulting its safe region — the baseline the
	// EXPERIMENTS.md continuous curve compares against. No effect without
	// ContinuousRate.
	ContinuousNaive bool

	// CrowdRate arms the flash-crowd workload generator (DESIGN.md §16):
	// the mean number of extra queries per minute, system-wide, that the
	// hotspot injects at the peak of its temporal burst. Zero (the
	// default) generates no crowd — no crowd stream exists and every
	// output is bit-identical to a build without the layer. Nonzero
	// launches additional queries from hosts inside the hotspot disk
	// during the burst window, Poisson-modulated by a smooth ramp
	// (sin², peaking mid-window), from a dedicated seeded stream so the
	// legacy query draws are never perturbed.
	CrowdRate float64
	// CrowdRadiusMiles is the hotspot disk radius. Defaults to
	// AreaMiles/10 when the crowd is armed.
	CrowdRadiusMiles float64
	// CrowdCenterXMiles / CrowdCenterYMiles place the hotspot center.
	// Zero selects the area center when the crowd is armed.
	CrowdCenterXMiles float64
	CrowdCenterYMiles float64
	// CrowdStartSec is when the burst window opens (simulated seconds);
	// zero selects mid-run when the crowd is armed. CrowdDurationSec is
	// the window length; zero selects 10% of the run.
	CrowdStartSec    float64
	CrowdDurationSec float64

	// PeerQueueCap arms peer-side backpressure (DESIGN.md §16): each
	// peer serves at most this many cache requests per tick; the next
	// band is refused with an explicit BUSY frame on the wire, and
	// saturation beyond that is shed silently (p2p.ServiceQueue). BUSY
	// replies and queue drops are never breaker strikes — a busy peer is
	// not a broken peer. Zero (the default) leaves service unbounded.
	PeerQueueCap int
	// RetryBudget caps retry amplification: the total number of request
	// re-broadcasts (across every query) one tick may spend. A query
	// whose backoff schedule would exceed the exhausted budget stops
	// retrying and proceeds with the replies it has. Zero (the default)
	// leaves retries unbudgeted.
	RetryBudget int
	// AdmissionRate arms per-MH admission token buckets: each host
	// accrues this many query tokens per simulated second (deterministic
	// refill, no randomness) up to AdmissionBurst. A one-shot query
	// issued from an empty bucket is shed to the broadcast-only path
	// (Lemma 3.2 / on-air fallback — degraded, never wrong) instead of
	// gathering peers. Continuous-subscription maintenance is exempt:
	// safe-region hits are nearly free. Zero (the default) admits
	// everything.
	AdmissionRate float64
	// AdmissionBurst is the token-bucket depth; defaults to 4 when
	// AdmissionRate is set.
	AdmissionBurst int
	// Governed arms the load governor: a windowed answered-in-budget
	// ratio (DeadlineSlots plus one broadcast cycle, the PR-7
	// availability metric) is tracked per tick, and when it falls below
	// GovernorFloor the governor sheds one-shot queries to the
	// broadcast-only path until the ratio recovers. Priority-aware:
	// continuous subscriptions keep their service. Off (the default) the
	// governor never exists.
	Governed bool
	// GovernorFloor is the answered-in-budget ratio (0..1) below which
	// the governor engages; defaults to 0.9 when Governed is set.
	GovernorFloor float64
	// CoalesceRadiusMiles arms cross-MH query coalescing: a query whose
	// origin lies within this distance of an earlier same-tick, same-type
	// query reuses that query's screened peer gather instead of
	// broadcasting its own request — one gather serves the co-located
	// crowd. Soundness is unchanged: the recipient still verifies against
	// the shared regions and falls back to the channel when coverage is
	// insufficient. Zero (the default) disables coalescing.
	CoalesceRadiusMiles float64

	// TickWorkers selects the batched per-tick query engine (DESIGN.md
	// §14): each tick's queries are drawn serially (consuming every
	// random stream in the legacy order), executed in parallel across
	// this many workers against the tick's frozen world state, and
	// committed serially in query order. Every report, trace, and
	// metrics output is byte-identical to the serial path. 0 or 1 (the
	// default) runs the seed's serial query loop bit-identically. The
	// knob is a host-machine execution detail, never part of the
	// simulated configuration, so it is excluded from Report rows.
	TickWorkers int `json:"-"`
}

// applyDefaults fills unset simulator knobs with the paper-faithful
// defaults.
func (p *Params) applyDefaults() {
	if p.AreaMiles == 0 {
		p.AreaMiles = 20
	}
	if p.TimeStepSec == 0 {
		p.TimeStepSec = 5
	}
	if p.WarmupFrac == 0 {
		p.WarmupFrac = 0.3
	}
	if p.MinSpeedMph == 0 {
		p.MinSpeedMph = 10
	}
	if p.MaxSpeedMph == 0 {
		p.MaxSpeedMph = 50
	}
	if p.SlotSec == 0 {
		p.SlotSec = 0.05
	}
	if p.MinCorrectness == 0 {
		p.MinCorrectness = 0.5
	}
	if p.Broadcast.Order == 0 {
		p.Broadcast.Order = 6
	}
	if p.Broadcast.PacketCapacity == 0 {
		p.Broadcast.PacketCapacity = 8
	}
	if p.Broadcast.M == 0 {
		p.Broadcast.M = 4
	}
	// Consistency defaults only materialize when the layer is armed, so a
	// zero-knob Params round-trips through reports byte-identically.
	if p.UpdateRate > 0 {
		if p.IRPeriodSec == 0 {
			p.IRPeriodSec = 30
		}
		if p.IRWindow == 0 {
			p.IRWindow = 8
		}
	}
	// Crowd/overload defaults likewise materialize only when armed.
	if p.CrowdRate > 0 {
		if p.CrowdRadiusMiles == 0 {
			p.CrowdRadiusMiles = p.AreaMiles / 10
		}
		if p.CrowdCenterXMiles == 0 {
			p.CrowdCenterXMiles = p.AreaMiles / 2
		}
		if p.CrowdCenterYMiles == 0 {
			p.CrowdCenterYMiles = p.AreaMiles / 2
		}
		if p.CrowdDurationSec == 0 {
			p.CrowdDurationSec = p.DurationHours * 3600 * 0.1
		}
		if p.CrowdStartSec == 0 {
			p.CrowdStartSec = p.DurationHours * 3600 * 0.5
		}
	}
	if p.AdmissionRate > 0 && p.AdmissionBurst == 0 {
		p.AdmissionBurst = 4
	}
	if p.Governed && p.GovernorFloor == 0 {
		p.GovernorFloor = 0.9
	}
}

// Validate reports configuration errors.
func (p *Params) Validate() error {
	switch {
	case p.POINumber < 0:
		return fmt.Errorf("sim: negative POINumber %d", p.POINumber)
	case p.MHNumber <= 0:
		return fmt.Errorf("sim: MHNumber %d must be positive", p.MHNumber)
	case p.QueryRate <= 0:
		return fmt.Errorf("sim: QueryRate %v must be positive", p.QueryRate)
	case p.TxRangeMeters < 0:
		return fmt.Errorf("sim: negative TxRangeMeters %v", p.TxRangeMeters)
	case p.DurationHours <= 0:
		return fmt.Errorf("sim: DurationHours %v must be positive", p.DurationHours)
	case p.AreaMiles <= 0:
		return fmt.Errorf("sim: AreaMiles %v must be positive", p.AreaMiles)
	case p.K <= 0 && p.Kind == KNNQuery:
		return fmt.Errorf("sim: K %d must be positive for kNN runs", p.K)
	case p.WindowPct <= 0 && p.Kind == WindowQuery:
		return fmt.Errorf("sim: WindowPct %v must be positive for window runs", p.WindowPct)
	case p.WarmupFrac < 0 || p.WarmupFrac >= 1:
		return fmt.Errorf("sim: WarmupFrac %v out of [0,1)", p.WarmupFrac)
	}
	if err := p.Faults.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if p.DeadlineSlots < 0 {
		return fmt.Errorf("sim: negative DeadlineSlots %d", p.DeadlineSlots)
	}
	if err := p.BreakerConfig().Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := p.TrustConfig().Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	switch {
	case p.UpdateRate != p.UpdateRate || p.UpdateRate < 0:
		return fmt.Errorf("sim: UpdateRate %v must be a non-negative number", p.UpdateRate)
	case p.IRPeriodSec != p.IRPeriodSec || p.IRPeriodSec < 0:
		return fmt.Errorf("sim: IRPeriodSec %v must be a non-negative number", p.IRPeriodSec)
	case p.IRWindow < 0:
		return fmt.Errorf("sim: negative IRWindow %d", p.IRWindow)
	case p.VRTTLSec != p.VRTTLSec || p.VRTTLSec < 0:
		return fmt.Errorf("sim: VRTTLSec %v must be a non-negative number", p.VRTTLSec)
	}
	if p.ContinuousRate != p.ContinuousRate || p.ContinuousRate < 0 {
		return fmt.Errorf("sim: ContinuousRate %v must be a non-negative number", p.ContinuousRate)
	}
	switch {
	case p.CrowdRate != p.CrowdRate || p.CrowdRate < 0:
		return fmt.Errorf("sim: CrowdRate %v must be a non-negative number", p.CrowdRate)
	case p.CrowdRadiusMiles != p.CrowdRadiusMiles || p.CrowdRadiusMiles < 0:
		return fmt.Errorf("sim: CrowdRadiusMiles %v must be a non-negative number", p.CrowdRadiusMiles)
	case p.CrowdCenterXMiles != p.CrowdCenterXMiles || p.CrowdCenterXMiles < 0:
		return fmt.Errorf("sim: CrowdCenterXMiles %v must be a non-negative number", p.CrowdCenterXMiles)
	case p.CrowdCenterYMiles != p.CrowdCenterYMiles || p.CrowdCenterYMiles < 0:
		return fmt.Errorf("sim: CrowdCenterYMiles %v must be a non-negative number", p.CrowdCenterYMiles)
	case p.CrowdStartSec != p.CrowdStartSec || p.CrowdStartSec < 0:
		return fmt.Errorf("sim: CrowdStartSec %v must be a non-negative number", p.CrowdStartSec)
	case p.CrowdDurationSec != p.CrowdDurationSec || p.CrowdDurationSec < 0:
		return fmt.Errorf("sim: CrowdDurationSec %v must be a non-negative number", p.CrowdDurationSec)
	case p.PeerQueueCap < 0:
		return fmt.Errorf("sim: negative PeerQueueCap %d", p.PeerQueueCap)
	case p.RetryBudget < 0:
		return fmt.Errorf("sim: negative RetryBudget %d", p.RetryBudget)
	case p.AdmissionRate != p.AdmissionRate || p.AdmissionRate < 0:
		return fmt.Errorf("sim: AdmissionRate %v must be a non-negative number", p.AdmissionRate)
	case p.AdmissionBurst < 0:
		return fmt.Errorf("sim: negative AdmissionBurst %d", p.AdmissionBurst)
	case p.GovernorFloor != p.GovernorFloor || p.GovernorFloor < 0 || p.GovernorFloor > 1:
		return fmt.Errorf("sim: GovernorFloor %v out of [0,1]", p.GovernorFloor)
	case p.CoalesceRadiusMiles != p.CoalesceRadiusMiles || p.CoalesceRadiusMiles < 0:
		return fmt.Errorf("sim: CoalesceRadiusMiles %v must be a non-negative number", p.CoalesceRadiusMiles)
	}
	if p.TickWorkers < 0 {
		return fmt.Errorf("sim: negative TickWorkers %d", p.TickWorkers)
	}
	return nil
}

// CrowdEnabled reports whether the flash-crowd workload generator is
// armed.
func (p *Params) CrowdEnabled() bool { return p.CrowdRate > 0 }

// OverloadEnabled reports whether any demand-side overload-control knob
// (peer backpressure, retry budget, admission buckets, the load
// governor, or query coalescing) is armed.
func (p *Params) OverloadEnabled() bool {
	return p.PeerQueueCap > 0 || p.RetryBudget > 0 || p.AdmissionRate > 0 ||
		p.Governed || p.CoalesceRadiusMiles > 0
}

// ContinuousEnabled reports whether the continuous-query layer (standing
// subscriptions with safe-region maintenance) is armed.
func (p *Params) ContinuousEnabled() bool { return p.ContinuousRate > 0 }

// ConsistencyEnabled reports whether the POI-update process (and with it
// the IR broadcast and cache reconciliation) is armed.
func (p *Params) ConsistencyEnabled() bool { return p.UpdateRate > 0 }

// TrustConfig assembles the trust-engine configuration; its zero value
// (AuditRate 0) disables the defense entirely.
func (p *Params) TrustConfig() trust.Config {
	return trust.Config{AuditRate: p.AuditRate}
}

// TrustEnabled reports whether the Byzantine-resilience layer is armed.
func (p *Params) TrustEnabled() bool { return p.TrustConfig().Enabled() }

// BreakerConfig assembles the per-peer circuit-breaker configuration.
func (p *Params) BreakerConfig() p2p.BreakerConfig {
	return p2p.BreakerConfig{Threshold: p.BreakerThreshold, Cooldown: p.BreakerCooldown}
}

// ResilienceEnabled reports whether any resilient-lifecycle knob is set.
// When false, peer collection runs the seed's blind re-broadcast loop
// bit-identically (the adaptive path is never entered).
func (p *Params) ResilienceEnabled() bool {
	return p.DeadlineSlots > 0 || p.BreakerThreshold > 0 || p.Faults.ChurnRate > 0
}

// Area returns the square service area in miles.
func (p *Params) Area() geom.Rect {
	return geom.NewRect(0, 0, p.AreaMiles, p.AreaMiles)
}

// TxRangeMiles converts the transmission range to miles.
func (p *Params) TxRangeMiles() float64 { return p.TxRangeMeters / MetersPerMile }

// POIDensity returns POIs per square mile — the lambda of Lemma 3.2.
func (p *Params) POIDensity() float64 {
	return float64(p.POINumber) / (p.AreaMiles * p.AreaMiles)
}

// MHDensity returns mobile hosts per square mile.
func (p *Params) MHDensity() float64 {
	return float64(p.MHNumber) / (p.AreaMiles * p.AreaMiles)
}

// WindowSideMiles converts the window percentage to a window side length
// against the reference area (see WindowRefMiles).
func (p *Params) WindowSideMiles() float64 {
	ref := p.WindowRefMiles
	if ref <= 0 {
		ref = p.AreaMiles
	}
	return ref * p.WindowPct / 100
}

// LACity returns the Los Angeles City parameter set of Table 3: a very
// dense urban area.
func LACity() Params {
	return Params{
		Name:            "Los Angeles City",
		POINumber:       2750,
		MHNumber:        93300,
		CacheSize:       50,
		QueryRate:       6220,
		TxRangeMeters:   200,
		K:               5,
		WindowPct:       3,
		WindowDistMiles: 1,
		DurationHours:   10,
		AreaMiles:       20,
	}
}

// SyntheticSuburbia returns the blended suburban parameter set of Table 3.
func SyntheticSuburbia() Params {
	return Params{
		Name:            "Synthetic Suburbia",
		POINumber:       2100,
		MHNumber:        51500,
		CacheSize:       50,
		QueryRate:       3440,
		TxRangeMeters:   200,
		K:               5,
		WindowPct:       3,
		WindowDistMiles: 1,
		DurationHours:   10,
		AreaMiles:       20,
	}
}

// RiversideCounty returns the low-density rural parameter set of Table 3.
func RiversideCounty() Params {
	return Params{
		Name:            "Riverside County",
		POINumber:       1450,
		MHNumber:        9700,
		CacheSize:       50,
		QueryRate:       650,
		TxRangeMeters:   200,
		K:               5,
		WindowPct:       3,
		WindowDistMiles: 1,
		DurationHours:   10,
		AreaMiles:       20,
	}
}

// ParameterSets returns the three Table 3 presets in the order the paper
// plots them.
func ParameterSets() []Params {
	return []Params{LACity(), SyntheticSuburbia(), RiversideCounty()}
}

// Scaled returns a density-preserving rescale of the parameter set to a
// square of the given side length: MH count, POI count, and system query
// rate shrink with the area so that every density the experiments depend
// on (vehicles, POIs, queries per square mile) is unchanged. The paper's
// results are functions of these densities, so a scaled run reproduces
// the same curves in a fraction of the time.
func (p Params) Scaled(sideMiles float64) Params {
	ratio := (sideMiles * sideMiles) / (p.AreaMiles * p.AreaMiles)
	out := p
	out.AreaMiles = sideMiles
	if out.WindowRefMiles <= 0 {
		out.WindowRefMiles = p.AreaMiles // windows keep their physical size
	}
	out.MHNumber = maxInt(1, int(math.Round(float64(p.MHNumber)*ratio)))
	out.POINumber = maxInt(1, int(math.Round(float64(p.POINumber)*ratio)))
	out.QueryRate = p.QueryRate * ratio
	if out.QueryRate <= 0 {
		out.QueryRate = 1
	}
	return out
}

// WithDuration returns a copy running for the given number of hours.
func (p Params) WithDuration(hours float64) Params {
	out := p
	out.DurationHours = hours
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
