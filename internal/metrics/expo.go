package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus-style text exposition sink
// (text format version 0.0.4 subset: counters, gauges, histograms) and
// a parser for the same subset, used by the round-trip tests and by
// offline tooling that consumes `lbsq-sim -metrics-out` files.

// formatFloat renders a sample value deterministically: the shortest
// representation that round-trips (strconv 'g', precision -1).
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the snapshot in the Prometheus text exposition
// format. Output is deterministic: instruments in lexical name order,
// shortest-round-trip float formatting.
func (s Snapshot) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		if c.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", c.Name, c.Help)
		}
		fmt.Fprintf(bw, "# TYPE %s counter\n", c.Name)
		fmt.Fprintf(bw, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		if g.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", g.Name, g.Help)
		}
		fmt.Fprintf(bw, "# TYPE %s gauge\n", g.Name)
		fmt.Fprintf(bw, "%s %s\n", g.Name, formatFloat(g.Value))
	}
	for _, h := range s.Histograms {
		if h.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", h.Name, h.Help)
		}
		fmt.Fprintf(bw, "# TYPE %s histogram\n", h.Name)
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if !b.Inf {
				le = formatFloat(b.LE)
			}
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", h.Name, le, cum)
		}
		fmt.Fprintf(bw, "%s_sum %s\n", h.Name, formatFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", h.Name, h.Count)
	}
	return bw.Flush()
}

// WriteText renders the registry's current state (owner-goroutine only;
// concurrent readers should go through Publish/Handler).
func (r *Registry) WriteText(w io.Writer) error { return r.Snapshot().WriteText(w) }

// Sample is one parsed exposition line: a metric name, an optional
// `le` label (histogram buckets), and the value.
type Sample struct {
	Name  string
	LE    string // empty for counters/gauges and _sum/_count lines
	Value float64
}

// ParseText parses the subset of the Prometheus text format WriteText
// emits and returns the samples in file order. # comment lines are
// skipped; malformed lines are errors (the round-trip tests depend on
// strictness).
func ParseText(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Sample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		le := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				return nil, fmt.Errorf("metrics: line %d: unbalanced braces", lineNo)
			}
			name = line[:i]
			label := line[i+1 : j]
			const pfx = `le="`
			if !strings.HasPrefix(label, pfx) || !strings.HasSuffix(label, `"`) {
				return nil, fmt.Errorf("metrics: line %d: unsupported label %q", lineNo, label)
			}
			le = label[len(pfx) : len(label)-1]
			line = name + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("metrics: line %d: want `name value`, got %q", lineNo, sc.Text())
		}
		var v float64
		if fields[1] == "+Inf" {
			v = math.Inf(1)
		} else {
			parsed, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
			}
			v = parsed
		}
		out = append(out, Sample{Name: fields[0], LE: le, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return out, nil
}

// Samples flattens the snapshot into the exact sample list WriteText
// emits (cumulative buckets included) — the reference side of the
// exposition round-trip tests.
func (s Snapshot) Samples() []Sample {
	var out []Sample
	for _, c := range s.Counters {
		out = append(out, Sample{Name: c.Name, Value: float64(c.Value)})
	}
	for _, g := range s.Gauges {
		out = append(out, Sample{Name: g.Name, Value: g.Value})
	}
	for _, h := range s.Histograms {
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if !b.Inf {
				le = formatFloat(b.LE)
			}
			out = append(out, Sample{Name: h.Name + "_bucket", LE: le, Value: float64(cum)})
		}
		out = append(out, Sample{Name: h.Name + "_sum", Value: h.Sum})
		out = append(out, Sample{Name: h.Name + "_count", Value: float64(h.Count)})
	}
	return out
}

// Handler returns an http.Handler serving the registry's most recently
// published snapshot as text exposition — the `-metrics-listen`
// endpoint. The live instruments are never touched, so the simulation
// goroutine keeps observing without synchronization; it just has to
// call Publish whenever it wants the endpoint to advance.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := r.Published()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if s == nil {
			fmt.Fprintln(w, "# no snapshot published yet")
			return
		}
		_ = s.WriteText(w)
	})
}

// SortSamples orders samples by (name, le) — a convenience for
// comparing parsed expositions independent of emission order.
func SortSamples(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Name != samples[j].Name {
			return samples[i].Name < samples[j].Name
		}
		return samples[i].LE < samples[j].LE
	})
}
