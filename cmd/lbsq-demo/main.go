// Command lbsq-demo walks through one sharing-based nearest-neighbor
// query step by step, printing the merged verified region, the result
// heap in the format of the paper's Table 2 (verified flag, distance,
// correctness probability, surpassing ratio), the heap state, and the
// derived on-air search bounds — the pedagogical companion to the
// algorithms in Section 3.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"lbsq"
)

func main() {
	var (
		seed = flag.Int64("seed", 7, "random seed")
		k    = flag.Int("k", 4, "number of nearest neighbors to request")
		n    = flag.Int("pois", 150, "POIs in the demo database")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	// A 20x20-mile service area with a uniform POI field.
	area := lbsq.NewRect(0, 0, 20, 20)
	pois := make([]lbsq.POI, *n)
	for i := range pois {
		pois[i] = lbsq.POI{ID: int64(i), Pos: lbsq.Pt(rng.Float64()*20, rng.Float64()*20)}
	}
	srv, err := lbsq.NewServer(area, pois, lbsq.BroadcastConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("server: %d POIs, %d packets/cycle, cycle length %d slots, (1,%d) index\n\n",
		len(pois), len(srv.Schedule().Packets()), srv.Schedule().CycleLength(),
		srv.Schedule().M())

	// Two peers that queried earlier near (10,10) and now share caches.
	peerA := lbsq.NewClient(srv, lbsq.Pt(9.6, 10.1), 60)
	peerA.KNN(6, nil)
	peerB := lbsq.NewClient(srv, lbsq.Pt(10.4, 9.8), 60)
	peerB.KNN(6, nil)
	peers := append(peerA.Share(), peerB.Share()...)
	fmt.Printf("peers: %d shared verified regions (A cached %d POIs, B cached %d)\n\n",
		len(peers), peerA.CacheSize(), peerB.CacheSize())

	// The querying mobile host q between them.
	q := lbsq.NewClient(srv, lbsq.Pt(10, 10), 60)
	q.AcceptApproximate = true
	res := q.KNN(*k, peers)

	fmt.Printf("SBNN at %v, k=%d → outcome: %v\n\n", q.Pos(), *k, res.Outcome)
	fmt.Println("heap H (Table 2 format):")
	fmt.Printf("  %-6s %-10s %-14s %-22s %-16s\n",
		"POI", "verified?", "distance [mi]", "correctness prob.", "surpassing r'/r")
	for _, e := range res.Heap.Entries() {
		verified := "yes"
		correctness := "—"
		surpassing := "—"
		if !e.Verified {
			verified = "no"
			correctness = fmt.Sprintf("%.0f%%", 100*e.Correctness)
			if e.Surpassing > 0 {
				surpassing = fmt.Sprintf("%.2f", e.Surpassing)
			}
		}
		fmt.Printf("  o%-5d %-10s %-14.3f %-22s %-16s\n",
			e.POI.ID, verified, e.Dist, correctness, surpassing)
	}
	fmt.Printf("\nheap state: %v\n", res.Heap.State())
	b := res.Heap.SearchBounds()
	fmt.Printf("derived search bounds: upper=%.3f lower=%.3f\n", b.Upper, b.Lower)
	if res.Outcome == lbsq.OutcomeBroadcast {
		fmt.Printf("channel access: latency %d slots, tuning %d slots, %d packets read, %d skipped by bounds\n",
			res.Access.Latency, res.Access.Tuning,
			res.Access.PacketsRead, res.Access.PacketsSkipped)
	} else {
		fmt.Println("channel access: none — answered entirely from peer caches")
	}

	fmt.Println("\nresults (ascending distance):")
	for i, p := range res.POIs {
		fmt.Printf("  %d. POI %d at %v (%.3f mi)\n", i+1, p.ID, p.Pos, p.Pos.Dist(q.Pos()))
	}
}
