//go:build !race

// Steady-state allocation assertions for the reused RectUnion. Excluded
// under the race detector: -race instruments allocations and makes
// AllocsPerRun counts meaningless.

package geom

import (
	"math/rand"
	"testing"
)

// TestRectUnionReuseAllocs asserts the full Reset → Add → query cycle
// allocates nothing once warm: every cache (disjoint decomposition,
// boundary segments, strip indexes, grid scratch) must reuse its
// capacity across queries. This is the steady-state contract the sim
// hot path depends on; any regression fails the build.
func TestRectUnionReuseAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rects := make([]Rect, 48)
	for i := range rects {
		x, y := rng.Float64()*90, rng.Float64()*90
		rects[i] = NewRect(x, y, x+2+rng.Float64()*8, y+2+rng.Float64()*8)
	}
	var u RectUnion
	cycle := func() {
		u.Reset()
		for _, r := range rects {
			u.Add(r)
		}
		_ = u.BoundaryDist(Pt(50, 50))
		_ = u.IntersectCircleArea(Pt(50, 50), 15)
		_ = u.CoversRect(NewRect(40, 40, 60, 60))
		_ = u.IntersectRectArea(NewRect(30, 30, 70, 70))
	}
	cycle() // warm every cache to capacity
	cycle()
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Fatalf("warm RectUnion cycle allocates %.1f times per run, want 0", allocs)
	}
}
