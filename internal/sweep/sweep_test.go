package sweep

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

// TestRunMatchesSerial is the engine-level determinism contract: for
// every worker count the result slice is identical to the serial run,
// including with cells that do real seeded work.
func TestRunMatchesSerial(t *testing.T) {
	const n = 37
	makeCells := func() []func() uint64 {
		cells := make([]func() uint64, n)
		for i := range cells {
			seed := int64(i + 1)
			cells[i] = func() uint64 {
				rng := rand.New(rand.NewSource(seed))
				var sum uint64
				for j := 0; j < 1000; j++ {
					sum += rng.Uint64() >> 32
				}
				return sum
			}
		}
		return cells
	}
	want := Run(1, makeCells())
	for _, workers := range []int{2, 3, 4, 8, 64} {
		got := Run(workers, makeCells())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Run(workers=%d) differs from serial", workers)
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if got := Run[int](4, nil); len(got) != 0 {
		t.Fatalf("Run over nil cells: %v", got)
	}
	got := Run(4, []func() int{func() int { return 7 }})
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("single cell: %v", got)
	}
}

// TestRunEveryCellOnce checks each cell executes exactly once even when
// workers outnumber cells.
func TestRunEveryCellOnce(t *testing.T) {
	const n = 5
	var counts [n]atomic.Int64
	cells := make([]func() int, n)
	for i := range cells {
		i := i
		cells[i] = func() int {
			counts[i].Add(1)
			return i
		}
	}
	got := Run(16, cells)
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
		if got[i] != i {
			t.Fatalf("result[%d] = %d", i, got[i])
		}
	}
}

func TestMapOrder(t *testing.T) {
	in := []int{10, 20, 30, 40, 50, 60, 70}
	got := Map(3, in, func(i, v int) int { return v*100 + i })
	want := Map(1, in, func(i, v int) int { return v*100 + i })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Map parallel %v != serial %v", got, want)
	}
	if got[2] != 3002 {
		t.Fatalf("Map index/value mismatch: %v", got)
	}
}
