// Scalability: the argument of Sections 1 and 2.1 for building on the
// broadcast model at all. A point-to-point (on-demand) server answers
// queries fast while lightly loaded but saturates as the client
// population grows; broadcast latency is population-independent; and
// peer-to-peer sharing then removes most of the broadcast latency too —
// the more clients, the better it works.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"lbsq"
	"lbsq/internal/ondemand"
	"lbsq/internal/rtree"
)

func main() {
	rng := rand.New(rand.NewSource(21))

	// The LA City database.
	area := lbsq.NewRect(0, 0, 20, 20)
	items := make([]rtree.Item, 2750)
	pois := make([]lbsq.POI, len(items))
	for i := range items {
		p := lbsq.Pt(rng.Float64()*20, rng.Float64()*20)
		items[i] = rtree.Item{ID: int64(i), Pos: p}
		pois[i] = lbsq.POI{ID: int64(i), Pos: p}
	}

	server, err := ondemand.NewServer(items, 100) // 100 queries/s uplink+server capacity
	if err != nil {
		panic(err)
	}
	bcast, err := lbsq.NewServer(area, pois, lbsq.BroadcastConfig{})
	if err != nil {
		panic(err)
	}
	const slotSec = 0.05
	broadcastLatency := bcast.Schedule().ExpectedKNNLatency(lbsq.Pt(10, 10), 5, 64) * slotSec

	// Per-client query rate from Table 3: 6220 queries/min over 93,300
	// vehicles.
	perClient := 6220.0 / 60 / 93300

	fmt.Println("5-NN query latency by access model (LA City database)")
	fmt.Printf("%-10s %14s %14s %20s\n", "clients", "on-demand", "broadcast", "broadcast+sharing")
	for _, n := range []int{100, 1000, 10000, 50000, 93300} {
		od := server.ExpectedLatency(float64(n) * perClient)
		odStr := fmt.Sprintf("%9.3f s", od)
		if math.IsInf(od, 1) {
			odStr = "saturated"
		}
		// Sharing effectiveness grows with density: reuse the measured
		// LA City shared fraction at full density, scaled by population.
		sharedFrac := 0.85 * float64(n) / 93300
		withSharing := broadcastLatency * (1 - sharedFrac)
		fmt.Printf("%-10d %14s %12.3f s %17.3f s\n", n, odStr, broadcastLatency, withSharing)
	}
	fmt.Println("\nOn-demand wins while the server is idle, collapses at scale;")
	fmt.Println("broadcast is flat; sharing improves broadcast precisely when")
	fmt.Println("the population is large — the paper's scalability story.")
}
