package metrics

import (
	"bytes"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// TestExpositionRoundTrip pins the text-format contract: WriteText
// followed by ParseText reproduces exactly the sample list Samples()
// derives from the snapshot — names, le labels, cumulative bucket
// counts, sums, and counts.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	fillRegistry(r)
	snap := r.Snapshot()

	var buf bytes.Buffer
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := snap.Samples()
	if !reflect.DeepEqual(parsed, want) {
		t.Fatalf("round trip mismatch:\nparsed %d samples, want %d\nparsed: %+v\nwant:   %+v",
			len(parsed), len(want), parsed, want)
	}
}

// TestExpositionCumulativeBuckets verifies bucket lines are cumulative
// and terminated by the +Inf bucket equal to the total count.
func TestExpositionCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", "slots", []float64{0, 1, 2})
	h.Observe(0)
	h.Observe(1)
	h.Observe(1)
	h.Observe(5) // overflow
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, line := range []string{
		`lat_bucket{le="0"} 1`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="2"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		`lat_sum 7`,
		`lat_count 4`,
		`# TYPE lat histogram`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{
		"name_only\n",
		"too many fields here\n",
		"name notanumber\n",
		"name{le=\"1\" 3\n",   // unbalanced braces
		"name{job=\"x\"} 3\n", // unsupported label
		"name}{le=\"1\"} 3\n", // brace order
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseText accepted %q", bad)
		}
	}
}

func TestParseTextSkipsCommentsAndBlank(t *testing.T) {
	in := "# HELP x y\n\n# TYPE x counter\nx 3\n"
	samples, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Name != "x" || samples[0].Value != 3 {
		t.Fatalf("samples %+v", samples)
	}
}

func TestParseTextInf(t *testing.T) {
	samples, err := ParseText(strings.NewReader(`h_bucket{le="+Inf"} 2` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].LE != "+Inf" || samples[0].Value != 2 {
		t.Fatalf("samples %+v", samples)
	}
}

func TestFormatFloat(t *testing.T) {
	if formatFloat(math.Inf(1)) != "+Inf" {
		t.Fatal("infinity formatting")
	}
	if formatFloat(0.25) != "0.25" {
		t.Fatalf("0.25 formatted as %q", formatFloat(0.25))
	}
}

func TestSortSamples(t *testing.T) {
	s := []Sample{{Name: "b"}, {Name: "a", LE: "2"}, {Name: "a", LE: "1"}}
	SortSamples(s)
	if s[0].LE != "1" || s[1].LE != "2" || s[2].Name != "b" {
		t.Fatalf("sorted order %+v", s)
	}
}

func TestHandlerServesPublishedSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits", "")
	h := Handler(r)

	// No snapshot published yet: placeholder comment, no samples.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "# no snapshot published yet") {
		t.Fatalf("unpublished body %q", rec.Body.String())
	}

	c.Add(4)
	r.Publish()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Fatalf("content type %q", got)
	}
	if !strings.Contains(rec.Body.String(), "hits 4\n") {
		t.Fatalf("published body %q", rec.Body.String())
	}
}
