package sim

import "testing"

// BenchmarkWorldStep measures one simulation step (movement + query
// processing) on a scaled LA City world.
func BenchmarkWorldStep(b *testing.B) {
	p := LACity().Scaled(3).WithDuration(1)
	p.Kind = KNNQuery
	p.Seed = 1
	p.AcceptApproximate = true
	p.PrefillQueriesPerHost = 10
	w, err := NewWorld(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step(10)
	}
}

// BenchmarkWorldBuildWithPrefill measures world construction including
// the steady-state cache warm start.
func BenchmarkWorldBuildWithPrefill(b *testing.B) {
	p := LACity().Scaled(3).WithDuration(1)
	p.Kind = KNNQuery
	p.PrefillQueriesPerHost = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		if _, err := NewWorld(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowWorldStep measures a window-query workload step.
func BenchmarkWindowWorldStep(b *testing.B) {
	p := LACity().Scaled(3).WithDuration(1)
	p.Kind = WindowQuery
	p.Seed = 2
	p.PrefillQueriesPerHost = 10
	w, err := NewWorld(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step(10)
	}
}
