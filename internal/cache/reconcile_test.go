package cache

import (
	"testing"

	"lbsq/internal/geom"
)

// poisOf flattens a region list's POI ids for set comparison.
func poisOf(regions []Region) map[int64]bool {
	out := map[int64]bool{}
	for _, r := range regions {
		for _, p := range r.POIs {
			out[p.ID] = true
		}
	}
	return out
}

func TestReconcileRegionUntouchedBumpsEpoch(t *testing.T) {
	r := mkRegion(geom.NewRect(0, 0, 4, 4), 1, 2)
	r.Epoch, r.Born, r.Stamp = 3, 7, 9
	// A mutation at or below the region's epoch is already reflected.
	invals := []Invalidation{
		{Epoch: 3, Kind: InvalDelete, ID: 1},
		{Epoch: 5, Kind: InvalInsert, ID: 99, Cell: geom.NewRect(10, 10, 11, 11)}, // disjoint
	}
	pieces, touched := ReconcileRegion(r, invals, 5)
	if touched {
		t.Fatal("disjoint/old mutations reported as touching")
	}
	if len(pieces) != 1 || pieces[0].Epoch != 5 || pieces[0].Born != 7 || pieces[0].Stamp != 9 {
		t.Fatalf("fast path mangled region: %+v", pieces)
	}
	if len(pieces[0].POIs) != 2 {
		t.Fatalf("fast path dropped POIs: %d", len(pieces[0].POIs))
	}
}

func TestReconcileRegionDeleteStripsPOI(t *testing.T) {
	r := mkRegion(geom.NewRect(0, 0, 4, 4), 1, 2, 3)
	invals := []Invalidation{{Epoch: 1, Kind: InvalDelete, ID: 2}}
	pieces, touched := ReconcileRegion(r, invals, 1)
	if !touched {
		t.Fatal("delete of a contained POI not reported as touching")
	}
	got := poisOf(pieces)
	if got[2] || !got[1] || !got[3] {
		t.Fatalf("delete reconciliation wrong survivors: %v", got)
	}
	// Geometry must be preserved: a pure delete subtracts no cells.
	if len(pieces) != 1 || pieces[0].Rect != r.Rect {
		t.Fatalf("pure delete changed geometry: %+v", pieces)
	}
}

func TestReconcileRegionInsertSubtractsCell(t *testing.T) {
	r := mkRegion(geom.NewRect(0, 0, 8, 8), 1, 2, 3)
	cell := geom.NewRect(3, 3, 5, 5)
	invals := []Invalidation{{Epoch: 2, Kind: InvalInsert, ID: 50, Cell: cell}}
	pieces, touched := ReconcileRegion(r, invals, 2)
	if !touched || len(pieces) == 0 {
		t.Fatalf("insert inside region not repaired: touched=%v pieces=%d", touched, len(pieces))
	}
	for _, p := range pieces {
		if in, ok := p.Rect.Intersect(cell); ok && in.Width() > 1e-12 && in.Height() > 1e-12 {
			t.Fatalf("surviving piece %v overlaps invalidated cell %v", p.Rect, cell)
		}
		if p.Epoch != 2 {
			t.Fatalf("piece not stamped with new epoch: %+v", p)
		}
	}
	// Every surviving POI outside the cell must still be owned by exactly
	// one piece.
	want := 0
	for _, p := range r.POIs {
		if !cell.Contains(p.Pos) {
			want++
		}
	}
	if got := len(poisOf(pieces)); got != want {
		t.Fatalf("surviving POIs %d, want %d", got, want)
	}
}

func TestReconcileRegionShrinkToEmpty(t *testing.T) {
	r := mkRegion(geom.NewRect(2, 2, 3, 3), 1)
	// The invalidated cell swallows the whole region.
	invals := []Invalidation{{Epoch: 1, Kind: InvalMove, ID: 77, Cell: geom.NewRect(0, 0, 10, 10)}}
	pieces, touched := ReconcileRegion(r, invals, 1)
	if !touched || pieces != nil {
		t.Fatalf("shrink-to-empty must return (nil, true), got (%v, %v)", pieces, touched)
	}
}

func TestReconcileRegionFragmentationCap(t *testing.T) {
	r := mkRegion(geom.NewRect(0, 0, 100, 1), 1)
	r.POIs = nil
	// A picket fence of thin cells fragments the strip past the cap.
	var invals []Invalidation
	for i := 0; i < maxReconcilePieces+2; i++ {
		x := float64(i)*3 + 1
		invals = append(invals, Invalidation{
			Epoch: 1, Kind: InvalInsert, ID: int64(100 + i),
			Cell: geom.NewRect(x, 0, x+0.5, 1)})
	}
	pieces, touched := ReconcileRegion(r, invals, 1)
	if !touched || pieces != nil {
		t.Fatalf("over-fragmented repair must drop the region, got %d pieces", len(pieces))
	}
}

func TestCacheReconcileFreshAndBeyondHorizon(t *testing.T) {
	c := New(100, LRU)
	fresh := mkRegion(geom.NewRect(0, 0, 1, 1), 1)
	fresh.Epoch = 10
	ancient := mkRegion(geom.NewRect(5, 5, 6, 6), 2)
	ancient.Epoch = 1
	c.Insert(fresh, geom.Pt(0, 0), geom.Point{}, 0)
	c.Insert(ancient, geom.Pt(0, 0), geom.Point{}, 0)

	// Report: epoch 10, horizon 8 — fresh is current, ancient predates the
	// report's memory (1 < 8-1) and must survive untouched for demotion.
	rec := c.Reconcile(10, 8, nil, false)
	if rec.Repaired != 0 || rec.Discarded != 0 || rec.BeyondHorizon != 1 {
		t.Fatalf("unexpected recon: %+v", rec)
	}
	if len(c.Regions()) != 2 {
		t.Fatalf("regions lost: %d", len(c.Regions()))
	}
	for _, r := range c.Regions() {
		if r.Rect == ancient.Rect && r.Epoch != 1 {
			t.Fatalf("beyond-horizon region epoch rewritten: %d", r.Epoch)
		}
	}
}

func TestCacheReconcileWholeDiscard(t *testing.T) {
	c := New(100, LRU)
	old := mkRegion(geom.NewRect(0, 0, 4, 4), 1, 2)
	old.Epoch = 4
	c.Insert(old, geom.Pt(0, 0), geom.Point{}, 0)
	rec := c.Reconcile(5, 4, nil, true)
	if rec.Discarded != 1 || len(c.Regions()) != 0 || c.Size() != 0 {
		t.Fatalf("whole-discard kept data: %+v regions=%d size=%d",
			rec, len(c.Regions()), c.Size())
	}
}

func TestCacheReconcileEvictedRegionIsNoOp(t *testing.T) {
	// An IR item naming a region (by cell) the cache no longer holds must
	// change nothing: reconciliation works on present state only.
	c := New(10, LRU)
	r := mkRegion(geom.NewRect(0, 0, 2, 2), 1)
	c.Insert(r, geom.Pt(0, 0), geom.Point{}, 0)
	c.Clear() // the region is gone before the report arrives
	rec := c.Reconcile(3, 2, []Invalidation{
		{Epoch: 3, Kind: InvalInsert, ID: 9, Cell: geom.NewRect(0, 0, 2, 2)},
	}, false)
	if rec != (Recon{}) || len(c.Regions()) != 0 || c.Size() != 0 {
		t.Fatalf("reconcile of empty cache did something: %+v", rec)
	}
}

func TestCacheReconcileFanOutKeepsUnvisitedRegions(t *testing.T) {
	// Regression guard for the output-aliasing hazard: a region early in
	// the scan fanning out into several pieces must not overwrite regions
	// the scan has not visited yet.
	c := New(1000, LRU)
	big := mkRegion(geom.NewRect(0, 0, 9, 9), 1, 2, 3)
	big.Epoch = 1
	tail1 := mkRegion(geom.NewRect(20, 20, 21, 21), 40)
	tail1.Epoch = 2
	tail2 := mkRegion(geom.NewRect(30, 30, 31, 31), 41)
	tail2.Epoch = 2
	c.Insert(big, geom.Pt(0, 0), geom.Point{}, 0)
	c.Insert(tail1, geom.Pt(0, 0), geom.Point{}, 0)
	c.Insert(tail2, geom.Pt(0, 0), geom.Point{}, 0)
	rec := c.Reconcile(2, 1, []Invalidation{
		{Epoch: 2, Kind: InvalInsert, ID: 90, Cell: geom.NewRect(4, 4, 5, 5)},
	}, false)
	if rec.Repaired != 1 || rec.Pieces < 2 {
		t.Fatalf("expected a fan-out repair: %+v", rec)
	}
	got := poisOf(c.Regions())
	for _, id := range []int64{40, 41} {
		if !got[id] {
			t.Fatalf("unvisited tail region lost POI %d: %v", id, got)
		}
	}
}

func TestExpireBeforeTickBoundary(t *testing.T) {
	c := New(100, LRU)
	for i, born := range []int64{5, 6, 7} {
		r := mkRegion(geom.NewRect(float64(i), 0, float64(i)+1, 1), int64(i+1))
		c.Insert(r, geom.Pt(0, 0), geom.Point{}, 0)
		// Insert stamps Born from its now argument; rewrite for the test.
		regs := c.Regions()
		regs[len(regs)-1].Born = born
	}
	// Cutoff 6: regions born at 5 and exactly at 6 expire, 7 survives.
	if n := c.ExpireBefore(6); n != 2 {
		t.Fatalf("expired %d regions at boundary cutoff, want 2", n)
	}
	regs := c.Regions()
	if len(regs) != 1 || regs[0].Born != 7 {
		t.Fatalf("wrong survivor: %+v", regs)
	}
	if c.Size() != len(regs[0].POIs) {
		t.Fatalf("size not rebuilt: %d", c.Size())
	}
	// Second pass at the same cutoff is a no-op.
	if n := c.ExpireBefore(6); n != 0 {
		t.Fatalf("repeat expiry removed %d more", n)
	}
}

func TestInsertStampsBornAndShrinkPreservesVersion(t *testing.T) {
	c := New(2, LRU) // tiny capacity forces shrinkRegion
	r := mkRegion(geom.NewRect(0, 0, 8, 8), 1, 2, 3, 4, 5)
	r.Epoch = 6
	c.Insert(r, geom.Pt(0, 0), geom.Point{}, 42)
	regs := c.Regions()
	if len(regs) != 1 {
		t.Fatalf("regions=%d", len(regs))
	}
	if regs[0].Born != 42 {
		t.Fatalf("Born=%d, want insert time 42", regs[0].Born)
	}
	if regs[0].Epoch != 6 {
		t.Fatalf("shrink lost the epoch stamp: %d", regs[0].Epoch)
	}
	if len(regs[0].POIs) > 2 {
		t.Fatalf("capacity not honored: %d POIs", len(regs[0].POIs))
	}
}
