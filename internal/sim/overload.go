package sim

import (
	"math"
	"math/rand"

	"lbsq/internal/broadcast"
	"lbsq/internal/core"
	"lbsq/internal/geom"
	"lbsq/internal/mobility"
	"lbsq/internal/p2p"
	"lbsq/internal/trust"
)

// The flash-crowd and overload-control plane (DESIGN.md §16). Four
// cooperating mechanisms keep a hotspot burst from collapsing the
// sharing layer into the classic metastable state (every query
// retrying, every peer saturated, nobody answered):
//
//   - a seeded crowd generator injects a spatially and temporally
//     concentrated extra query load (the disturbance);
//   - peers bound their per-tick service queues and push back with
//     explicit BUSY frames (p2p.ServiceQueue, wire.Busy);
//   - queriers throttle themselves: per-host admission token buckets, a
//     global per-tick retry budget, and a load governor that watches the
//     answered-in-budget ratio and sheds one-shot peer-gathers while the
//     system is underwater;
//   - co-located queries coalesce onto one peer-gather instead of each
//     re-asking the same saturated neighborhood.
//
// Shedding is sound by construction: a shed or admission-denied query
// never fabricates an answer — it falls back to its own cache plus the
// broadcast channel, where every result is exact (the wireless broadcast
// is the paper's ground-truth distribution channel). Overload control
// trades peer-channel load for broadcast latency, never correctness.
//
// Determinism: every decision here is either a pure function of
// deterministic per-tick state (queues, buckets, the governor's ratio)
// or drawn from the dedicated crowd stream (crowdSeedSalt). All hooks
// run in serial-phase code — Step's draw loop and the batched engine's
// draw phase — so armed runs are tick-worker identical by construction,
// and the zero-knob world never constructs this state at all.

// crowdSeedSalt seeds the flash-crowd stream: how many crowd queries
// fire each tick, and which hotspot hosts and data types they hit.
// Decorrelated from every other stream so arming the crowd knobs never
// perturbs movement, legacy query launching, the POI field, or the
// fault draws. (The crowd queries themselves then consume world-stream
// draws — k, window shapes — exactly like legacy queries do; crowd-off
// runs make none of those draws.)
const crowdSeedSalt = 0x63727764 // "crwd"

// shedCause classifies why a query's peer-gather was shed.
type shedCause int

const (
	shedNone shedCause = iota
	// shedAdmission: the host's admission token bucket was empty.
	shedAdmission
	// shedGovernor: the load governor was engaged and demoted the
	// one-shot query to the broadcast-only path.
	shedGovernor
)

// String renders the trace label; shedNone renders empty so unshed
// queries omit the field (zero-knob byte identity).
func (c shedCause) String() string {
	switch c {
	case shedAdmission:
		return "admission"
	case shedGovernor:
		return "governor"
	default:
		return ""
	}
}

// Governor tuning. The governor engages when the EWMA answered-in-budget
// ratio drops below Params.GovernorFloor and disengages once it recovers
// past the floor plus a hysteresis band (capped at 1 so a floor of 1.0
// can still disengage). The EWMA decay keeps roughly the last handful of
// ticks in view: fast enough to catch a crowd onset, slow enough not to
// flap on a single bad tick.
const (
	govDecay      = 0.7
	govHysteresis = 0.05
)

// maxCoalesceDonors bounds the per-tick donor table: only this many
// successful gathers per tick offer their screened peer sets for reuse.
// Enough for a hotspot (donors and recipients are co-located, so a few
// donors cover the crowd), small enough to bound the deep-copy cost.
const maxCoalesceDonors = 16

// coalDonor is one tick-scoped gather snapshot: the screened peer set of
// a completed full-protocol collection, deep-copied so later cache
// mutations cannot reach it, offered to co-located same-type queries.
type coalDonor struct {
	ti        int
	origin    geom.Point
	relevance geom.Rect
	nPeers    int
	peers     []core.PeerData
	pois      []broadcast.POI // backing storage for the POI copies
}

// overloadState is the World's overload plane. Nil unless a crowd or
// overload knob is armed — the zero-knob world pays no branches beyond
// the nil checks and makes zero extra draws.
type overloadState struct {
	// Crowd generator (nil crowdRng unless CrowdEnabled).
	crowdRng *rand.Rand
	center   geom.Point
	radius   float64
	startSec float64
	durSec   float64
	rate     float64 // crowd queries per minute at the burst peak
	crowdIDs []int   // per-tick hotspot membership buffer

	// Peer-side backpressure (nil unless PeerQueueCap > 0).
	queue *p2p.ServiceQueue

	// Querier-side admission (nil tokens unless AdmissionRate > 0).
	admRate  float64 // tokens per second
	admBurst float64
	tokens   []float64

	// Global per-tick retry budget (0 = unlimited).
	retryBudget int
	retryTokens int

	// Load governor.
	governed bool
	floor    float64
	engaged  bool
	ewmaQ    float64 // decayed counted one-shot queries
	ewmaA    float64 // decayed answered-in-budget among them
	tickQ    int64   // current tick's counted one-shot queries
	tickA    int64
	// postCrowdEngaged counts the ticks the governor stayed engaged
	// after the crowd window closed — the soak harness's recovery probe
	// (metastability means this never stops growing).
	postCrowdEngaged int64

	// exempt marks the in-flight query as priority traffic (continuous
	// subscription maintenance): never admission-denied, never
	// governor-shed, and its retries bypass the retry budget.
	exempt bool

	// Cross-MH coalescing (radius 0 disables; donors is the per-tick
	// table, entries reuse their buffers across ticks).
	coalRadius float64
	donors     [maxCoalesceDonors]coalDonor
	nDonors    int
}

// newOverloadState builds the overload plane, or returns nil when every
// crowd and overload knob is off.
func newOverloadState(p Params) *overloadState {
	if !p.CrowdEnabled() && !p.OverloadEnabled() {
		return nil
	}
	o := &overloadState{
		admRate:     p.AdmissionRate,
		retryBudget: p.RetryBudget,
		retryTokens: p.RetryBudget,
		governed:    p.Governed,
		floor:       p.GovernorFloor,
		coalRadius:  p.CoalesceRadiusMiles,
	}
	if p.CrowdEnabled() {
		o.crowdRng = rand.New(rand.NewSource(p.Seed ^ crowdSeedSalt))
		o.center = geom.Pt(p.CrowdCenterXMiles, p.CrowdCenterYMiles)
		o.radius = p.CrowdRadiusMiles
		o.startSec = p.CrowdStartSec
		o.durSec = p.CrowdDurationSec
		o.rate = p.CrowdRate
	}
	if p.PeerQueueCap > 0 {
		o.queue = p2p.NewServiceQueue(p.PeerQueueCap)
	}
	if p.AdmissionRate > 0 {
		// Buckets start full: steady-state load is admitted immediately,
		// only a burst above the refill rate drains a bucket.
		o.admBurst = float64(p.AdmissionBurst)
		o.tokens = make([]float64, p.MHNumber)
		for i := range o.tokens {
			o.tokens[i] = o.admBurst
		}
	}
	return o
}

// crowdActive reports whether nowSec falls inside the crowd window.
func (o *overloadState) crowdActive(nowSec float64) bool {
	return o.crowdRng != nil && nowSec > o.startSec && nowSec <= o.startSec+o.durSec
}

// tickReset runs once per tick on the simulation goroutine, before any
// query: peer queues empty, admission buckets refill, the retry budget
// replenishes, the donor table clears, and the governor folds the last
// tick's answered-in-budget window into its EWMA and re-decides
// engagement.
func (w *World) tickReset(dt float64) {
	o := w.ovl
	if o == nil {
		return
	}
	if o.queue != nil {
		o.queue.Reset()
	}
	if o.tokens != nil {
		refill := o.admRate * dt
		for i := range o.tokens {
			t := o.tokens[i] + refill
			if t > o.admBurst {
				t = o.admBurst
			}
			o.tokens[i] = t
		}
	}
	o.retryTokens = o.retryBudget
	o.nDonors = 0
	if !o.governed {
		return
	}
	o.ewmaQ = o.ewmaQ*govDecay + float64(o.tickQ)
	o.ewmaA = o.ewmaA*govDecay + float64(o.tickA)
	o.tickQ, o.tickA = 0, 0
	if o.ewmaQ >= 1 {
		ratio := o.ewmaA / o.ewmaQ
		if o.engaged {
			off := o.floor + govHysteresis
			if off > 1 {
				off = 1
			}
			// Disengage on recovery past the hysteresis band, or when
			// the remembered miss mass has decayed below half a query:
			// with a floor at 1.0 the ratio approaches 1 only
			// asymptotically, and without the second clause the governor
			// would stay latched ~100 ticks after the last miss.
			if ratio >= off || o.ewmaQ-o.ewmaA < 0.5 {
				o.engaged = false
			}
		} else if ratio < o.floor {
			o.engaged = true
		}
	} else if o.engaged && o.ewmaQ < 0.5 {
		// The load vanished entirely; nothing left to govern.
		o.engaged = false
	}
	if o.engaged {
		if w.counted() {
			w.stats.GovernorEngagedTicks++
		}
		if o.crowdRng != nil && w.nowSec > o.startSec+o.durSec {
			o.postCrowdEngaged++
		}
	}
}

// noteBudget feeds the governor's per-tick answered-in-budget window.
func (o *overloadState) noteBudget(ok bool) {
	o.tickQ++
	if ok {
		o.tickA++
	}
}

// takeRetry draws one retry token from the global per-tick budget.
// Returns false when the budget is configured and exhausted — the
// collection stops retrying and proceeds with the replies it has.
// Priority (continuous-maintenance) traffic bypasses the budget.
func (o *overloadState) takeRetry() bool {
	if o == nil || o.retryBudget <= 0 || o.exempt {
		return true
	}
	if o.retryTokens > 0 {
		o.retryTokens--
		return true
	}
	return false
}

// overloadExempt marks (or unmarks) the in-flight query as priority
// traffic. No-op without the overload plane.
func (w *World) overloadExempt(on bool) {
	if w.ovl != nil {
		w.ovl.exempt = on
	}
}

// govSteering reports whether the load governor is armed — it steers by
// the answered-in-budget ratio, so governed runs account availability
// even without a channel-impairment knob.
func (w *World) govSteering() bool {
	return w.ovl != nil && w.ovl.governed
}

// admitOneShot is the querier-side gate in front of a one-shot query's
// peer-gather: the host's admission token bucket first, then the load
// governor. A denied query sheds its P2P phase — it answers from its own
// cache plus the broadcast channel (exact, just slower), which is the
// soundness contract every shed path honors.
func (w *World) admitOneShot(idx int) (bool, shedCause) {
	o := w.ovl
	if o == nil || o.exempt {
		return true, shedNone
	}
	if o.tokens != nil && o.tokens[idx] < 1 {
		if w.counted() {
			w.stats.AdmissionDenied++
			w.stats.Shed++
		}
		return false, shedAdmission
	}
	if o.engaged {
		// Governor shed: no token is consumed — the query never gathered.
		if w.counted() {
			w.stats.GovernorSheds++
			w.stats.Shed++
		}
		return false, shedGovernor
	}
	if o.tokens != nil {
		o.tokens[idx]--
	}
	return true, shedNone
}

// crowdDraw decides this tick's crowd load: the Poisson draw from the
// dedicated crowd stream (a sin² ramp over the window peaks the
// intensity mid-crowd), and the hotspot membership snapshot the launch
// loop picks hosts from. Zero draws outside the window.
func (w *World) crowdDraw(dt float64) int {
	o := w.ovl
	if o == nil || !o.crowdActive(w.nowSec) {
		return 0
	}
	frac := (w.nowSec - o.startSec) / o.durSec
	s := math.Sin(math.Pi * frac)
	mean := o.rate / 60 * dt * s * s
	n := mobility.Poisson(o.crowdRng, mean)
	if n == 0 {
		return 0
	}
	o.crowdIDs = w.net.AppendNeighbors(o.crowdIDs[:0], o.center, o.radius, -1)
	if len(o.crowdIDs) == 0 {
		// Nobody happens to be inside the hotspot this tick; the Poisson
		// draw stays consumed so the stream position is schedule-stable.
		return 0
	}
	return n
}

// crowdPick draws one crowd query's host and data type from the crowd
// stream. Only valid after a positive crowdDraw in the same tick.
func (w *World) crowdPick() (idx, ti int) {
	o := w.ovl
	idx = o.crowdIDs[o.crowdRng.Intn(len(o.crowdIDs))]
	ti = o.crowdRng.Intn(len(w.types))
	return idx, ti
}

// coalesceLookup scans the tick's donor table for a completed gather a
// query at q can reuse: same data type, origin within the coalescing
// radius, and overlapping relevance rectangles. The reuse is sound
// because the donor's set is a truthful screened subset of the
// neighborhood's knowledge — the recipient still runs full verification
// against it, and anything the donor's slightly-offset gather missed
// only shrinks the merged region, degrading the recipient to the exact
// broadcast channel, never to a wrong answer. Nil on miss.
func (w *World) coalesceLookup(ti int, q geom.Point, relevance geom.Rect) *coalDonor {
	o := w.ovl
	if o == nil || o.coalRadius <= 0 || o.exempt {
		return nil
	}
	r2 := o.coalRadius * o.coalRadius
	for i := 0; i < o.nDonors; i++ {
		d := &o.donors[i]
		if d.ti == ti && d.origin.DistSq(q) <= r2 && d.relevance.Intersects(relevance) {
			return d
		}
	}
	return nil
}

// coalesceDonate registers a completed gather's screened peer set in the
// donor table. The set is deep-copied (PeerData values and POI slices)
// because cache storage the originals alias mutates as later queries
// commit; the copy is immutable for the rest of the tick.
func (w *World) coalesceDonate(ti int, q geom.Point, relevance geom.Rect, peers []core.PeerData, nPeers int) {
	o := w.ovl
	if o == nil || o.coalRadius <= 0 || o.exempt || o.nDonors == maxCoalesceDonors {
		return
	}
	d := &o.donors[o.nDonors]
	o.nDonors++
	d.ti, d.origin, d.relevance, d.nPeers = ti, q, relevance, nPeers
	total := 0
	for _, pd := range peers {
		total += len(pd.POIs)
	}
	if cap(d.pois) < total {
		d.pois = make([]broadcast.POI, 0, total)
	} else {
		d.pois = d.pois[:0]
	}
	d.peers = d.peers[:0]
	for _, pd := range peers {
		start := len(d.pois)
		d.pois = append(d.pois, pd.POIs...)
		d.peers = append(d.peers, core.PeerData{
			VR: pd.VR, POIs: d.pois[start:len(d.pois):len(d.pois)], Tainted: pd.Tainted})
	}
}

// collectResult is one query's overload-aware collection outcome: the
// screened peers plus every draw-phase fact the post-algorithm tail
// needs.
type collectResult struct {
	peers     []core.PeerData
	nPeers    int
	collected int64
	minBorn   int64
	spent     int64
	trep      trust.Report
	shed      shedCause
	coalesced bool
}

// collectQuery is the collection step shared by the serial query
// runners and the batched engine's draw phase: the overload gates
// (coalesce, admission, governor) in front of the mode-dispatched
// gather, then the trust screen. With the overload plane off this is
// byte-for-byte the pre-overload pipeline.
func (w *World) collectQuery(idx, ti int, relevance geom.Rect, qc queryChannel, irSlots int64) collectResult {
	cr := collectResult{minBorn: math.MaxInt64}
	gathered := false
	switch qc.mode {
	case modeFull, modeP2POnly:
		q := w.hosts[idx].mob.Pos
		if d := w.coalesceLookup(ti, q, relevance); d != nil {
			// Reuse the donor's screened set: no gather, no re-screen —
			// the donor already paid collection and audits for this
			// neighborhood this tick.
			cr.peers = append(w.qs.peers[:0], d.peers...)
			w.qs.peers = cr.peers
			cr.nPeers = d.nPeers
			cr.coalesced = true
			if w.counted() {
				w.stats.Coalesced++
			}
			cr.collected = qc.switchCost()
			cr.spent = cr.collected + irSlots
			return cr
		}
		if ok, cause := w.admitOneShot(idx); !ok {
			// Shed: own cache plus broadcast only — the Lemma 3.2 /
			// on-air path, exact answers at broadcast latency.
			cr.shed = cause
			cr.peers, cr.minBorn = w.collectOwnCacheOnly(idx, ti, relevance, false)
			break
		}
		cr.peers, cr.nPeers, cr.collected = w.gatherPeers(idx, ti, relevance)
		gathered = true
	default:
		// The P2P channel is in a deep fade: spending the retry budget on
		// peers that cannot hear is pure waste, so the lower rungs skip
		// the wire entirely.
		cr.peers, cr.minBorn = w.collectOwnCacheOnly(idx, ti, relevance, qc.mode == modeOwnCache)
	}
	cr.collected += qc.switchCost()
	cr.peers, cr.spent, cr.trep = w.trustScreen(ti, cr.peers, cr.collected+irSlots, qc.bcastUp)
	if gathered {
		w.coalesceDonate(ti, w.hosts[idx].mob.Pos, relevance, cr.peers, cr.nPeers)
	}
	return cr
}

// OverloadRecoveryTicks reports how many ticks the load governor stayed
// engaged after the crowd window closed — the soak harness's
// no-metastability probe (a healthy system disengages within a bounded
// tail; a metastable one never does). Zero without the plane.
func (w *World) OverloadRecoveryTicks() int64 {
	if w.ovl == nil {
		return 0
	}
	return w.ovl.postCrowdEngaged
}

// GovernorEngaged reports the governor's current state (testing).
func (w *World) GovernorEngaged() bool {
	return w.ovl != nil && w.ovl.engaged
}
