package sim

import (
	"testing"

	"lbsq/internal/faults"
)

// faultyWorld builds a small dense world with the given fault profile.
func faultyWorld(t *testing.T, kind QueryKind, seed int64, prof faults.Profile) *World {
	t.Helper()
	p := LACity().Scaled(2).WithDuration(0.12)
	p.Kind = kind
	p.Seed = seed
	p.TimeStepSec = 10
	p.AcceptApproximate = kind == KNNQuery
	p.Faults = prof
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w.SelfCheck = true
	return w
}

// sweepProfile is the acceptance-criteria configuration: 10% reply loss,
// 5% broadcast loss, 2% stale VRs, plus some request loss and damage.
func sweepProfile() faults.Profile {
	return faults.Profile{
		RequestLoss:   0.05,
		ReplyLoss:     0.10,
		ReplyTruncate: 0.025,
		ReplyCorrupt:  0.025,
		BroadcastLoss: 0.05,
		StaleRate:     0.02,
	}
}

// TestFaultDeterminism: two worlds with identical seed and identical fault
// profile must produce identical statistics — every fault draw comes from
// the seeded injector stream, never from wall-clock or map order.
func TestFaultDeterminism(t *testing.T) {
	for _, kind := range []QueryKind{KNNQuery, WindowQuery} {
		a := faultyWorld(t, kind, 21, sweepProfile())
		b := faultyWorld(t, kind, 21, sweepProfile())
		sa, sb := a.Run(), b.Run()
		if sa != sb {
			t.Fatalf("%v: stats diverged under identical seed:\n%+v\nvs\n%+v", kind, sa, sb)
		}
		if a.FaultCounters() != b.FaultCounters() {
			t.Fatalf("%v: injector counters diverged: %+v vs %+v",
				kind, a.FaultCounters(), b.FaultCounters())
		}
		if err := a.SelfCheckErr(); err != nil {
			t.Fatalf("%v: self-check under faults: %v", kind, err)
		}
	}
}

// TestZeroProfileIsSeedBehavior: a zero fault profile must be bit-identical
// to the pre-fault simulator — same statistics as a world that never heard
// of the fault layer, with every fault counter zero.
func TestZeroProfileIsSeedBehavior(t *testing.T) {
	zero := faultyWorld(t, KNNQuery, 22, faults.Profile{})
	plain := smallWorld(t, KNNQuery, 22)
	sz, sp := zero.Run(), plain.Run()
	if sz != sp {
		t.Fatalf("zero profile drifted from seed behavior:\n%+v\nvs\n%+v", sz, sp)
	}
	if zero.FaultCounters() != (faults.Counters{}) {
		t.Fatalf("zero profile made fault draws: %+v", zero.FaultCounters())
	}
	if sz.FaultEvents() != 0 || sz.PeerRetries != 0 {
		t.Fatalf("zero profile reported fault events: %+v", sz)
	}
	if err := zero.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultSweepStaysSound is the acceptance criterion: with reply loss,
// broadcast loss, damage and staleness all enabled, a full run with
// SelfCheck on reports zero exact-result mismatches, and every enabled
// fault process is visible in the statistics.
func TestFaultSweepStaysSound(t *testing.T) {
	for _, kind := range []QueryKind{KNNQuery, WindowQuery} {
		w := faultyWorld(t, kind, 23, sweepProfile())
		s := w.Run()
		if err := w.SelfCheckErr(); err != nil {
			t.Fatalf("%v: exact result mismatch under faults: %v", kind, err)
		}
		if s.Queries == 0 {
			t.Fatalf("%v: no queries ran", kind)
		}
		if s.RequestsUnheard == 0 {
			t.Errorf("%v: request loss never fired", kind)
		}
		if s.RepliesDropped == 0 {
			t.Errorf("%v: reply loss never fired", kind)
		}
		if s.RepliesRejected == 0 {
			t.Errorf("%v: reply damage never rejected by CRC/structure checks", kind)
		}
		if s.StaleVRs == 0 {
			t.Errorf("%v: staleness never fired", kind)
		}
		if s.Retransmissions == 0 && s.IndexRetries == 0 {
			t.Errorf("%v: broadcast loss never fired", kind)
		}
		if got := s.FaultEvents(); got != s.RequestsUnheard+s.RepliesDropped+
			s.RepliesRejected+s.StaleVRs+s.Retransmissions+s.IndexRetries {
			t.Errorf("%v: FaultEvents = %d, not the counter sum", kind, got)
		}
	}
}

// TestRequestRetries: heavy request loss exercises the bounded retry
// budget — retries happen, are counted, and are priced into traffic.
func TestRequestRetries(t *testing.T) {
	prof := faults.Profile{RequestLoss: 0.8, MaxRetries: 3}
	w := faultyWorld(t, KNNQuery, 24, prof)
	s := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if s.PeerRetries == 0 {
		t.Error("80% request loss caused no retries")
	}
	if s.RequestsUnheard == 0 {
		t.Error("80% request loss lost no receptions")
	}
	// Every retry is a re-broadcast: requests exceed counted queries'
	// first attempts by exactly the retry count.
	if s.PeerRequests <= s.PeerRetries {
		t.Errorf("requests %d not above retries %d", s.PeerRequests, s.PeerRetries)
	}

	// The retry budget bounds the attempts: MaxRetries 0 with an explicit
	// profile is normalized to the default, so compare two budgets.
	small := faults.Profile{RequestLoss: 0.8, MaxRetries: 1}
	w2 := faultyWorld(t, KNNQuery, 24, small)
	s2 := w2.Run()
	if s2.PeerRetries >= s.PeerRetries {
		t.Errorf("smaller budget retried more: %d (budget 1) vs %d (budget 3)",
			s2.PeerRetries, s.PeerRetries)
	}
}

// TestTrustStaleIsByzantine: the TrustStale knob disables the consistency
// layer, so silently-invalidated regions enter verification carrying
// poisoned POI sets — the exact hazard SelfCheck exists to catch. At
// least one of the pinned seeds must trip it; none may pass silently
// while claiming zero stale deliveries.
func TestTrustStaleIsByzantine(t *testing.T) {
	prof := faults.Profile{StaleRate: 0.9, TrustStale: true}
	caught := false
	for _, seed := range []int64{25, 26, 27} {
		w := faultyWorld(t, KNNQuery, seed, prof)
		s := w.Run()
		if s.StaleVRs == 0 {
			t.Fatalf("seed %d: 90%% stale rate never fired", seed)
		}
		if w.SelfCheckErr() != nil {
			caught = true
		}
	}
	if !caught {
		t.Error("trusted stale regions never produced a detectable wrong exact result")
	}
}
