package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("q_total", "queries")
	c.Inc()
	c.Add(4)
	c.Add(-3) // monotonic: negative deltas dropped
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value %d, want 5", got)
	}
	if c.Name() != "q_total" {
		t.Fatalf("counter name %q", c.Name())
	}
	g := r.Gauge("now_sec", "sim clock")
	g.Set(12.5)
	g.Add(-2.5)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge value %v, want 10", got)
	}
	// Idempotent re-registration returns the same instrument.
	if r.Counter("q_total", "queries") != c {
		t.Fatal("re-registration returned a different counter")
	}
	if r.Gauge("now_sec", "sim clock") != g {
		t.Fatal("re-registration returned a different gauge")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering counter name as gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestEmptyNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("empty metric name did not panic")
		}
	}()
	r.Counter("", "")
}

// fillRegistry populates a registry with a deterministic workload.
func fillRegistry(r *Registry) {
	c := r.Counter("queries_total", "total queries")
	g := r.Gauge("sim_now_seconds", "simulated clock")
	h := r.Histogram("latency_slots", "per-query latency", "slots", SlotBuckets())
	a := r.Histogram("known_area_sqmi", "cached region area", "sqmi", AreaBuckets())
	for i := 0; i < 1000; i++ {
		c.Inc()
		g.Set(float64(i) * 5)
		h.ObserveInt(int64((i * 37) % 4096))
		a.Observe(float64(i%17) * 0.31)
	}
}

// TestSnapshotDeterminism pins the byte-identical-snapshot contract:
// two registries fed the same observation stream marshal to identical
// JSON and identical text expositions.
func TestSnapshotDeterminism(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	fillRegistry(r1)
	fillRegistry(r2)
	j1, err := json.Marshal(r1.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshot JSON differs:\n%s\n%s", j1, j2)
	}
	var t1, t2 bytes.Buffer
	if err := r1.WriteText(&t1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteText(&t2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatalf("text exposition differs:\n%s\n%s", t1.String(), t2.String())
	}
}

func TestSnapshotLookups(t *testing.T) {
	r := NewRegistry()
	fillRegistry(r)
	s := r.Snapshot()
	if c, ok := s.Counter("queries_total"); !ok || c.Value != 1000 {
		t.Fatalf("counter lookup: %+v ok=%v", c, ok)
	}
	if g, ok := s.Gauge("sim_now_seconds"); !ok || g.Value != 999*5 {
		t.Fatalf("gauge lookup: %+v ok=%v", g, ok)
	}
	if h, ok := s.Histogram("latency_slots"); !ok || h.Count != 1000 {
		t.Fatalf("histogram lookup: %+v ok=%v", h, ok)
	}
	if _, ok := s.Histogram("nope"); ok {
		t.Fatal("lookup of absent histogram succeeded")
	}
	if _, ok := s.Counter("nope"); ok {
		t.Fatal("lookup of absent counter succeeded")
	}
	if _, ok := s.Gauge("nope"); ok {
		t.Fatal("lookup of absent gauge succeeded")
	}
}

func TestPublishSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	c.Add(3)
	if r.Published() != nil {
		t.Fatal("published snapshot before any Publish")
	}
	r.Publish()
	s := r.Published()
	if s == nil {
		t.Fatal("nil published snapshot")
	}
	c.Add(7) // must not leak into the published snapshot
	if got, _ := s.Counter("c"); got.Value != 3 {
		t.Fatalf("published counter %d, want 3 (immutability broken)", got.Value)
	}
	r.Publish()
	if got, _ := r.Published().Counter("c"); got.Value != 10 {
		t.Fatalf("republished counter %d, want 10", got.Value)
	}
}

func TestPhaseSpans(t *testing.T) {
	var s QuerySpans
	s.Add(PhaseP2PCollect, 10)
	s.Add(PhaseP2PCollect, 5)
	s.Add(PhaseOnAirTune, 3)
	s.Add(PhaseOnAirDownload, -4) // negative dropped
	s.Add(NumPhases, 99)          // out of range ignored
	if got := s.Get(PhaseP2PCollect); got != 15 {
		t.Fatalf("p2p_collect span %d, want 15", got)
	}
	if got := s.Get(PhaseOnAirDownload); got != 0 {
		t.Fatalf("onair_download span %d, want 0", got)
	}
	if got := s.Get(NumPhases); got != 0 {
		t.Fatalf("out-of-range Get %d, want 0", got)
	}
	s.Reset()
	for p := Phase(0); p < NumPhases; p++ {
		if s.Get(p) != 0 {
			t.Fatalf("phase %v nonzero after Reset", p)
		}
	}
}

func TestPhaseNamesAndUnits(t *testing.T) {
	want := map[Phase][2]string{
		PhaseP2PCollect:    {"p2p_collect", "slots"},
		PhaseMVRMerge:      {"mvr_merge", "work"},
		PhaseNNVVerify:     {"nnv_verify", "work"},
		PhaseOnAirTune:     {"onair_tune", "slots"},
		PhaseOnAirDownload: {"onair_download", "slots"},
	}
	for p, w := range want {
		if p.String() != w[0] || p.Unit() != w[1] {
			t.Fatalf("phase %d: %q/%q, want %q/%q", p, p.String(), p.Unit(), w[0], w[1])
		}
	}
	if NumPhases.String() != "unknown" || NumPhases.Unit() != "" {
		t.Fatalf("out-of-range phase: %q/%q", NumPhases.String(), NumPhases.Unit())
	}
}

func TestPhaseSetObserve(t *testing.T) {
	r := NewRegistry()
	ps := NewPhaseSet(r, "lbsq")
	var s QuerySpans
	s.Add(PhaseMVRMerge, 7)
	s.Add(PhaseOnAirDownload, 120)
	ps.Observe(&s)
	s.Reset()
	s.Add(PhaseOnAirDownload, 80)
	ps.Observe(&s)

	h := ps.Histogram(PhaseOnAirDownload)
	if h == nil || h.Count() != 2 || h.Sum() != 200 {
		t.Fatalf("onair_download histogram count/sum: %v", h)
	}
	if h.Name() != "lbsq_phase_onair_download_slots" {
		t.Fatalf("histogram name %q", h.Name())
	}
	if m := ps.Histogram(PhaseMVRMerge); m.Unit() != "work" {
		t.Fatalf("mvr_merge unit %q", m.Unit())
	}
	if ps.Histogram(NumPhases) != nil {
		t.Fatal("out-of-range phase histogram not nil")
	}
	// Every phase histogram saw both queries (zeros included).
	for p := Phase(0); p < NumPhases; p++ {
		if got := ps.Histogram(p).Count(); got != 2 {
			t.Fatalf("phase %v count %d, want 2", p, got)
		}
	}
}
