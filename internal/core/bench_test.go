package core

import (
	"math/rand"
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// benchPeers builds sound peer data around the origin of a random POI
// field.
func benchPeers(rng *rand.Rand, db []broadcast.POI, n int) []PeerData {
	var peers []PeerData
	for i := 0; i < n; i++ {
		cx, cy := 12+rng.Float64()*8, 12+rng.Float64()*8
		vr := geom.NewRect(cx, cy, cx+3+rng.Float64()*4, cy+3+rng.Float64()*4)
		pd := PeerData{VR: vr}
		for _, p := range db {
			if vr.Contains(p.Pos) {
				pd.POIs = append(pd.POIs, p)
			}
		}
		peers = append(peers, pd)
	}
	return peers
}

func benchDB(rng *rand.Rand, n int) []broadcast.POI {
	db := make([]broadcast.POI, n)
	for i := range db {
		db[i] = broadcast.POI{ID: int64(i), Pos: geom.Pt(rng.Float64()*32, rng.Float64()*32)}
	}
	return db
}

// The NNV benchmarks measure the steady-state hot path the simulator
// runs per query: a warm, reused Scratch (see NNVScratch). The *Cold
// variants keep the allocate-per-call cost visible for comparison.

func BenchmarkNNV8Peers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db := benchDB(rng, 500)
	peers := benchPeers(rng, db, 8)
	q := geom.Pt(16, 16)
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NNVScratch(&s, q, peers, 5, 0.5)
	}
}

func BenchmarkNNV64Peers(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	db := benchDB(rng, 500)
	peers := benchPeers(rng, db, 64)
	q := geom.Pt(16, 16)
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NNVScratch(&s, q, peers, 5, 0.5)
	}
}

func BenchmarkNNV64PeersCold(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	db := benchDB(rng, 500)
	peers := benchPeers(rng, db, 64)
	q := geom.Pt(16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NNV(q, peers, 5, 0.5)
	}
}

func BenchmarkSBNNPeerResolved(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	db := benchDB(rng, 500)
	// One big sound region guarantees verification.
	vr := geom.NewRect(8, 8, 24, 24)
	pd := PeerData{VR: vr}
	for _, p := range db {
		if vr.Contains(p.Pos) {
			pd.POIs = append(pd.POIs, p)
		}
	}
	sched, err := broadcast.NewSchedule(db, broadcast.Config{Area: geom.NewRect(0, 0, 32, 32)})
	if err != nil {
		b.Fatal(err)
	}
	cfg := SBNNConfig{K: 5, Lambda: 0.5}
	q := geom.Pt(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := SBNN(q, []PeerData{pd}, cfg, sched, int64(i))
		if res.Outcome != OutcomeVerified {
			b.Fatal("expected verified outcome")
		}
	}
}

func BenchmarkSBNNBroadcastFallback(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	db := benchDB(rng, 500)
	sched, err := broadcast.NewSchedule(db, broadcast.Config{Area: geom.NewRect(0, 0, 32, 32)})
	if err != nil {
		b.Fatal(err)
	}
	cfg := SBNNConfig{K: 5, Lambda: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(rng.Float64()*32, rng.Float64()*32)
		res := SBNN(q, nil, cfg, sched, int64(i))
		if res.Outcome != OutcomeBroadcast {
			b.Fatal("expected broadcast outcome")
		}
	}
}

func BenchmarkSBWQCovered(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	db := benchDB(rng, 500)
	vr := geom.NewRect(8, 8, 24, 24)
	pd := PeerData{VR: vr}
	for _, p := range db {
		if vr.Contains(p.Pos) {
			pd.POIs = append(pd.POIs, p)
		}
	}
	w := geom.NewRect(14, 14, 18, 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := SBWQ(geom.Pt(16, 16), w, []PeerData{pd}, nil, 0)
		if res.Outcome != OutcomeVerified {
			b.Fatal("expected verified outcome")
		}
	}
}

func BenchmarkCorrectnessProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CorrectnessProbability(0.3, float64(i%10))
	}
}
