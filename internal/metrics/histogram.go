package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-bucket distribution with exact count/sum/min/max
// tracking and deterministic quantile extraction. Buckets are defined by
// ascending upper bounds; an observation v lands in the first bucket
// whose bound satisfies v <= bound, and values above the last bound land
// in the implicit +Inf overflow bucket. Bucket layouts are fixed at
// registration, so Observe never allocates.
//
// Quantiles are deterministic: Quantile(q) returns the upper bound of
// the bucket containing the ceil(q·count)-th smallest observation,
// clamped to the exact observed maximum (so the reported quantile never
// exceeds a value that actually occurred, and Quantile(1) == Max
// whenever the top-ranked observation sits in the overflow bucket).
type Histogram struct {
	name   string
	help   string
	unit   string
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []uint64  // len(bounds)+1; last entry is the overflow bucket
	count  uint64
	sum    float64
	min    float64
	max    float64
}

func newHistogram(name, help, unit string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram %q bounds not strictly ascending at %d", name, i))
		}
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	return &Histogram{
		name:   name,
		help:   help,
		unit:   unit,
		bounds: own,
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value. Allocation-free: a binary search over the
// fixed bounds plus integer updates.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 {
		h.min, h.max = v, v
		return
	}
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// ObserveInt records an integer-valued observation (slots, work units).
func (h *Histogram) ObserveInt(v int64) { h.Observe(float64(v)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Min returns the exact smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Unit returns the registered observation unit.
func (h *Histogram) Unit() string { return h.unit }

// Quantile returns the deterministic q-quantile for q in [0, 1]: the
// upper bound of the bucket holding the ceil(q·count)-th smallest
// observation, clamped to the exact observed maximum. Returns 0 for an
// empty histogram; q outside [0, 1] is clamped.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i == len(h.bounds) {
				return h.max // overflow bucket: the exact max is the bound
			}
			return math.Min(h.bounds[i], h.max)
		}
	}
	return h.max
}

// ExpBuckets returns a log-scale bucket layout: a leading 0 bound (so
// "cost-free" observations get their own bucket) followed by n
// exponentially growing bounds start, start·factor, start·factor², …
// Panics on non-positive start, factor <= 1, or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, 0, n+1)
	out = append(out, 0)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		v *= factor
	}
	return out
}

// SlotBuckets is the canonical layout for slot-valued quantities
// (latency, tuning, backoff): {0, 1, 2, 4, …, 2²¹ ≈ 2.1M slots} — at
// the paper's 50 ms slot this spans up to ~29 hours of channel time.
func SlotBuckets() []float64 { return ExpBuckets(1, 2, 22) }

// WorkBuckets is the canonical layout for work-unit quantities (regions
// merged, candidates verified): {0, 1, 2, 4, …, 65536}.
func WorkBuckets() []float64 { return ExpBuckets(1, 2, 17) }

// AreaBuckets is the canonical layout for area-valued quantities in
// square miles: {0, 1e-4, 4e-4, …, ~419} — from a ~50 ft square up to
// beyond the paper's full 400 mi² service area.
func AreaBuckets() []float64 { return ExpBuckets(1e-4, 4, 12) }
