// Package hilbert implements the 2-D Hilbert space-filling curve used to
// order spatial data on the wireless broadcast channel (Zheng et al.,
// "Spatial Queries in Wireless Broadcast Systems"; Jagadish, "Analysis of
// the Hilbert Curve for Representing Two-Dimensional Space").
//
// The server partitions the service area into a 2^order × 2^order grid and
// broadcasts data packets in ascending Hilbert value of their grid cell,
// so consecutive packets are spatially close and a client can translate a
// spatial search region into a small set of index-value ranges.
package hilbert

import (
	"fmt"
	"sort"

	"lbsq/internal/geom"
)

// Curve maps between grid coordinates and positions along a Hilbert curve
// over a square region of the plane.
type Curve struct {
	order int       // curve order; grid is side × side with side = 1<<order
	side  int       // 1 << order
	area  geom.Rect // region of the plane covered by the grid
	cellW float64   // width of one grid cell
	cellH float64   // height of one grid cell
}

// New returns a Curve of the given order over the area. Order must be in
// [1, 31].
func New(order int, area geom.Rect) (*Curve, error) {
	if order < 1 || order > 31 {
		return nil, fmt.Errorf("hilbert: order %d out of range [1,31]", order)
	}
	if area.Empty() {
		return nil, fmt.Errorf("hilbert: empty area %v", area)
	}
	side := 1 << order
	return &Curve{
		order: order,
		side:  side,
		area:  area,
		cellW: area.Width() / float64(side),
		cellH: area.Height() / float64(side),
	}, nil
}

// Order returns the curve order.
func (c *Curve) Order() int { return c.order }

// Side returns the grid side length (number of cells per axis).
func (c *Curve) Side() int { return c.side }

// Cells returns the total number of grid cells, side².
func (c *Curve) Cells() int64 { return int64(c.side) * int64(c.side) }

// Area returns the region of the plane covered by the grid.
func (c *Curve) Area() geom.Rect { return c.area }

// D computes the Hilbert value of grid cell (x, y). Coordinates outside
// the grid are clamped.
func (c *Curve) D(x, y int) int64 {
	x = clampInt(x, 0, c.side-1)
	y = clampInt(y, 0, c.side-1)
	var d int64
	for s := c.side / 2; s > 0; s /= 2 {
		var rx, ry int
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += int64(s) * int64(s) * int64((3*rx)^ry)
		x, y = rotate(s, x, y, rx, ry)
	}
	return d
}

// XY computes the grid cell of Hilbert value d (the inverse of D). Values
// outside [0, Cells) are clamped.
func (c *Curve) XY(d int64) (x, y int) {
	if d < 0 {
		d = 0
	} else if max := c.Cells() - 1; d > max {
		d = max
	}
	t := d
	for s := 1; s < c.side; s *= 2 {
		rx := int(1 & (t / 2))
		ry := int(1 & (t ^ int64(rx)))
		x, y = rotate(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// rotate applies the quadrant rotation/reflection of the Hilbert
// construction.
func rotate(s, x, y, rx, ry int) (int, int) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// CellOf returns the grid cell containing point p. Points outside the
// area are clamped to the border cells.
func (c *Curve) CellOf(p geom.Point) (x, y int) {
	x = int((p.X - c.area.Min.X) / c.cellW)
	y = int((p.Y - c.area.Min.Y) / c.cellH)
	return clampInt(x, 0, c.side-1), clampInt(y, 0, c.side-1)
}

// ValueOf returns the Hilbert value of the cell containing p.
func (c *Curve) ValueOf(p geom.Point) int64 {
	x, y := c.CellOf(p)
	return c.D(x, y)
}

// CellRect returns the rectangle covered by grid cell (x, y).
func (c *Curve) CellRect(x, y int) geom.Rect {
	minX := c.area.Min.X + float64(x)*c.cellW
	minY := c.area.Min.Y + float64(y)*c.cellH
	return geom.Rect{
		Min: geom.Pt(minX, minY),
		Max: geom.Pt(minX+c.cellW, minY+c.cellH),
	}
}

// CellRectOfValue returns the rectangle of the cell with Hilbert value d.
func (c *Curve) CellRectOfValue(d int64) geom.Rect {
	x, y := c.XY(d)
	return c.CellRect(x, y)
}

// CellCenter returns the center point of the cell with Hilbert value d.
func (c *Curve) CellCenter(d int64) geom.Point {
	return c.CellRectOfValue(d).Center()
}

// CellsInRect returns the Hilbert values (ascending) of every grid cell
// whose rectangle intersects r. This is the candidate set a broadcast
// client must retrieve to resolve a window query over r.
func (c *Curve) CellsInRect(r geom.Rect) []int64 {
	x0, y0 := c.CellOf(r.Min)
	x1, y1 := c.CellOf(r.Max)
	out := make([]int64, 0, (x1-x0+1)*(y1-y0+1))
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			out = append(out, c.D(x, y))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Range is a closed interval [First, Last] of Hilbert values.
type Range struct {
	First, Last int64
}

// Contains reports whether d lies in the range.
func (r Range) Contains(d int64) bool { return d >= r.First && d <= r.Last }

// Len returns the number of values the range spans.
func (r Range) Len() int64 { return r.Last - r.First + 1 }

// RangeOfRect returns the minimal single Hilbert range [first, last]
// covering every cell that intersects r — the "first point a, last point
// b" bound of the on-air window query algorithm (Fig. 8 of the paper).
// ok is false when r misses the grid entirely.
func (c *Curve) RangeOfRect(r geom.Rect) (Range, bool) {
	if !c.area.Intersects(r) {
		return Range{}, false
	}
	cells := c.CellsInRect(r)
	if len(cells) == 0 {
		return Range{}, false
	}
	return Range{First: cells[0], Last: cells[len(cells)-1]}, true
}

// RangesOfRect returns the exact set of maximal contiguous Hilbert ranges
// covering the cells that intersect r. Compared with RangeOfRect it skips
// the curve's detours outside the window, trading a longer index for less
// data retrieval.
func (c *Curve) RangesOfRect(r geom.Rect) []Range {
	cells := c.CellsInRect(r)
	if len(cells) == 0 {
		return nil
	}
	var out []Range
	cur := Range{First: cells[0], Last: cells[0]}
	for _, d := range cells[1:] {
		if d == cur.Last+1 {
			cur.Last = d
			continue
		}
		out = append(out, cur)
		cur = Range{First: d, Last: d}
	}
	return append(out, cur)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
