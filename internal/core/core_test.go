package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func poi(id int64, x, y float64) broadcast.POI {
	return broadcast.POI{ID: id, Pos: geom.Pt(x, y)}
}

// --- Heap -------------------------------------------------------------

func TestHeapBasics(t *testing.T) {
	h := NewHeap(3)
	if h.K() != 3 || h.Len() != 0 || h.Full() {
		t.Fatal("fresh heap state wrong")
	}
	if _, ok := h.LastDist(); ok {
		t.Error("empty heap must have no last distance")
	}
	if _, ok := h.LastVerifiedDist(); ok {
		t.Error("empty heap must have no verified distance")
	}
	h.add(Entry{POI: poi(1, 0, 0), Dist: 1, Verified: true, Correctness: 1})
	h.add(Entry{POI: poi(2, 0, 0), Dist: 2, Verified: true, Correctness: 1})
	h.add(Entry{POI: poi(3, 0, 0), Dist: 5, Correctness: 0.4})
	h.add(Entry{POI: poi(4, 0, 0), Dist: 6}) // beyond k: dropped
	if h.Len() != 3 || !h.Full() {
		t.Fatalf("len=%d full=%v", h.Len(), h.Full())
	}
	if h.VerifiedCount() != 2 || h.UnverifiedCount() != 1 {
		t.Fatalf("verified=%d unverified=%d", h.VerifiedCount(), h.UnverifiedCount())
	}
	if d, ok := h.LastDist(); !ok || d != 5 {
		t.Fatalf("LastDist = %v, %v", d, ok)
	}
	if d, ok := h.LastVerifiedDist(); !ok || d != 2 {
		t.Fatalf("LastVerifiedDist = %v, %v", d, ok)
	}
	if got := h.MinUnverifiedCorrectness(); got != 0.4 {
		t.Fatalf("MinUnverifiedCorrectness = %v", got)
	}
	if got := h.POIs(); len(got) != 3 || got[0].ID != 1 || got[2].ID != 3 {
		t.Fatalf("POIs = %v", got)
	}
	if NewHeap(-2).K() != 0 {
		t.Error("negative k must clamp to 0")
	}
}

func TestHeapStates(t *testing.T) {
	mk := func(k, verified, unverified int) *Heap {
		h := NewHeap(k)
		d := 1.0
		for i := 0; i < verified; i++ {
			h.add(Entry{Dist: d, Verified: true, Correctness: 1})
			d++
		}
		for i := 0; i < unverified; i++ {
			h.add(Entry{Dist: d, Correctness: 0.5})
			d++
		}
		return h
	}
	cases := []struct {
		k, v, u int
		want    State
	}{
		{3, 2, 1, StateFullMixed},
		{3, 0, 3, StateFullUnverified},
		{3, 3, 0, StateFullMixed}, // fulfilled query classifies as full
		{5, 2, 1, StatePartialMixed},
		{5, 2, 0, StatePartialVerified},
		{5, 0, 2, StatePartialUnverified},
		{5, 0, 0, StateEmpty},
	}
	for _, c := range cases {
		h := mk(c.k, c.v, c.u)
		if got := h.State(); got != c.want {
			t.Errorf("k=%d v=%d u=%d: state = %v want %v", c.k, c.v, c.u, got, c.want)
		}
	}
}

func TestSearchBoundsPerState(t *testing.T) {
	// State 1: both bounds.
	h := NewHeap(2)
	h.add(Entry{Dist: 1, Verified: true})
	h.add(Entry{Dist: 3})
	b := h.SearchBounds()
	if b.Upper != 3 || b.Lower != 1 {
		t.Fatalf("state 1 bounds = %+v", b)
	}
	// State 2: upper only.
	h = NewHeap(2)
	h.add(Entry{Dist: 2})
	h.add(Entry{Dist: 4})
	b = h.SearchBounds()
	if b.Upper != 4 || b.Lower != 0 {
		t.Fatalf("state 2 bounds = %+v", b)
	}
	// State 3/4: lower only.
	h = NewHeap(5)
	h.add(Entry{Dist: 1, Verified: true})
	h.add(Entry{Dist: 3})
	b = h.SearchBounds()
	if b.Upper != 0 || b.Lower != 1 {
		t.Fatalf("state 3 bounds = %+v", b)
	}
	h = NewHeap(5)
	h.add(Entry{Dist: 1.5, Verified: true})
	b = h.SearchBounds()
	if b.Upper != 0 || b.Lower != 1.5 {
		t.Fatalf("state 4 bounds = %+v", b)
	}
	// States 5/6: nothing.
	h = NewHeap(5)
	h.add(Entry{Dist: 2})
	if b = h.SearchBounds(); b != (broadcast.Bounds{}) {
		t.Fatalf("state 5 bounds = %+v", b)
	}
	if b = NewHeap(5).SearchBounds(); b != (broadcast.Bounds{}) {
		t.Fatalf("state 6 bounds = %+v", b)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateFullMixed:         "full-mixed",
		StateFullUnverified:    "full-unverified",
		StatePartialMixed:      "partial-mixed",
		StatePartialVerified:   "partial-verified",
		StatePartialUnverified: "partial-unverified",
		StateEmpty:             "empty",
		State(42):              "state(42)",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q", int(s), s.String())
		}
	}
	for o, want := range map[Outcome]string{
		OutcomeVerified:    "verified",
		OutcomeApproximate: "approximate",
		OutcomeBroadcast:   "broadcast",
		Outcome(9):         "unknown",
	} {
		if o.String() != want {
			t.Errorf("Outcome.String() = %q want %q", o.String(), want)
		}
	}
}

// --- Lemma 3.2 ---------------------------------------------------------

// TestLemma32PaperExample pins the worked example of Section 3.3.2 /
// Figure 7: lambda = 0.3 POIs per square unit, unverified region of 2
// square units ⇒ correctness probability e^{-0.6} ≈ 0.5488.
func TestLemma32PaperExample(t *testing.T) {
	got := CorrectnessProbability(0.3, 2)
	if !almostEqual(got, math.Exp(-0.6), 1e-12) {
		t.Fatalf("probability = %v want e^-0.6", got)
	}
	if !almostEqual(got, 0.5488, 0.0001) {
		t.Fatalf("probability = %v want ~0.5488 (paper)", got)
	}
}

func TestCorrectnessProbabilityEdges(t *testing.T) {
	if CorrectnessProbability(0.3, 0) != 1 {
		t.Error("zero area must give certainty")
	}
	if CorrectnessProbability(0.3, -1) != 1 {
		t.Error("negative area must give certainty")
	}
	if CorrectnessProbability(-1, 5) != 1 {
		t.Error("negative lambda must clamp to 0")
	}
	if p := CorrectnessProbability(10, 100); p > 1e-10 {
		t.Error("huge unverified region must give ~0")
	}
}

// --- NNV ---------------------------------------------------------------

// TestNNVFigure5Accept reproduces the accept case of Figure 5: the
// candidate nearest the query point is closer than the nearest MVR
// boundary edge and is verified.
func TestNNVFigure5Accept(t *testing.T) {
	// One peer VR: a 10x10 box centered on q at (5,5); nearest edge is 5
	// away. o1 at distance 2 must verify; o5 at distance 6 must not.
	peers := []PeerData{{
		VR:   geom.NewRect(0, 0, 10, 10),
		POIs: []broadcast.POI{poi(1, 5, 7), poi(5, 5, 11)}, // o5 actually outside VR
	}}
	// Keep o5 inside the VR but beyond the clearance: place at (5, 9.5)
	// distance 4.5 < 5 — that would verify. Use a second candidate just
	// outside the clearance by widening the VR asymmetrically.
	peers = []PeerData{{
		VR:   geom.NewRect(0, 0, 10, 14),
		POIs: []broadcast.POI{poi(1, 5, 7), poi(5, 5, 12)},
	}}
	// q=(5,5): clearance = 5 (left/right/bottom edges). o1 at distance 2:
	// verified. o5 at distance 7: unverified.
	res := NNV(geom.Pt(5, 5), peers, 2, 0.1)
	if !res.InsideMVR || !almostEqual(res.EdgeDist, 5, 1e-12) {
		t.Fatalf("inside=%v edge=%v", res.InsideMVR, res.EdgeDist)
	}
	es := res.Heap.Entries()
	if len(es) != 2 {
		t.Fatalf("heap len = %d", len(es))
	}
	if !es[0].Verified || es[0].POI.ID != 1 || !almostEqual(es[0].Dist, 2, 1e-12) {
		t.Fatalf("o1 entry = %+v", es[0])
	}
	if es[1].Verified || es[1].POI.ID != 5 {
		t.Fatalf("o5 entry = %+v", es[1])
	}
	if es[1].Correctness <= 0 || es[1].Correctness >= 1 {
		t.Fatalf("o5 correctness = %v", es[1].Correctness)
	}
	// Surpassing ratio = 7/2 = 3.5.
	if !almostEqual(es[1].Surpassing, 3.5, 1e-12) {
		t.Fatalf("surpassing = %v", es[1].Surpassing)
	}
}

// TestNNVFigure6Reject reproduces the reject case of Figure 6: a
// candidate farther than the nearest boundary edge cannot be verified
// because an unseen POI could hide in the unverified region.
func TestNNVFigure6Reject(t *testing.T) {
	peers := []PeerData{{
		VR:   geom.NewRect(4, 4, 6, 6), // tiny VR around q
		POIs: []broadcast.POI{poi(4, 5.9, 5.9)},
	}}
	res := NNV(geom.Pt(5, 5), peers, 1, 0.3)
	es := res.Heap.Entries()
	if len(es) != 1 {
		t.Fatalf("heap len = %d", len(es))
	}
	// Distance ~1.27 > clearance 1: unverified.
	if es[0].Verified {
		t.Fatal("candidate beyond clearance must stay unverified")
	}
}

func TestNNVOutsideMVR(t *testing.T) {
	peers := []PeerData{{
		VR:   geom.NewRect(10, 10, 12, 12),
		POIs: []broadcast.POI{poi(1, 11, 11)},
	}}
	res := NNV(geom.Pt(0, 0), peers, 2, 0.1)
	if res.InsideMVR || res.EdgeDist != 0 {
		t.Fatal("q outside MVR must disable verification")
	}
	if res.Heap.VerifiedCount() != 0 || res.Heap.Len() != 1 {
		t.Fatalf("heap = %+v", res.Heap.Entries())
	}
}

func TestNNVNoPeers(t *testing.T) {
	res := NNV(geom.Pt(0, 0), nil, 3, 0.1)
	if res.Heap.Len() != 0 || res.Heap.State() != StateEmpty {
		t.Fatal("no peers must yield empty heap")
	}
	if res.Candidates != 0 {
		t.Fatalf("candidates = %d", res.Candidates)
	}
}

func TestNNVDeduplicatesPeers(t *testing.T) {
	// Two peers caching the same POI: one candidate, counted once.
	vr := geom.NewRect(0, 0, 10, 10)
	peers := []PeerData{
		{VR: vr, POIs: []broadcast.POI{poi(1, 5, 6)}},
		{VR: vr, POIs: []broadcast.POI{poi(1, 5, 6), poi(2, 5, 4)}},
	}
	res := NNV(geom.Pt(5, 5), peers, 5, 0.1)
	if res.Candidates != 2 {
		t.Fatalf("candidates = %d want 2", res.Candidates)
	}
	if res.Heap.Len() != 2 {
		t.Fatalf("heap len = %d", res.Heap.Len())
	}
}

// TestNNVVerifiedPrefixProperty checks the structural invariant: verified
// entries always precede unverified ones and the verified set is exactly
// the candidates within the clearance.
func TestNNVVerifiedPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		var peers []PeerData
		nPeers := 1 + rng.Intn(5)
		nextID := int64(0)
		for i := 0; i < nPeers; i++ {
			cx, cy := rng.Float64()*20, rng.Float64()*20
			vr := geom.NewRect(cx, cy, cx+2+rng.Float64()*6, cy+2+rng.Float64()*6)
			pd := PeerData{VR: vr}
			for j := 0; j < rng.Intn(6); j++ {
				pd.POIs = append(pd.POIs, broadcast.POI{
					ID: nextID,
					Pos: geom.Pt(
						vr.Min.X+rng.Float64()*vr.Width(),
						vr.Min.Y+rng.Float64()*vr.Height(),
					),
				})
				nextID++
			}
			peers = append(peers, pd)
		}
		q := geom.Pt(rng.Float64()*20, rng.Float64()*20)
		k := 1 + rng.Intn(6)
		res := NNV(q, peers, k, 0.2)
		sawUnverified := false
		prevDist := -1.0
		for _, e := range res.Heap.Entries() {
			if e.Dist < prevDist {
				t.Fatalf("trial %d: heap not ascending", trial)
			}
			prevDist = e.Dist
			if e.Verified {
				if sawUnverified {
					t.Fatalf("trial %d: verified after unverified", trial)
				}
				if !res.InsideMVR || e.Dist > res.EdgeDist+1e-9 {
					t.Fatalf("trial %d: wrongly verified entry %+v (edge %v)",
						trial, e, res.EdgeDist)
				}
			} else {
				sawUnverified = true
				if e.Correctness <= 0 || e.Correctness > 1 {
					t.Fatalf("trial %d: correctness %v out of range", trial, e.Correctness)
				}
			}
		}
	}
}

// TestNNVSoundness is the key correctness property (Lemma 3.1): when the
// peers' verified regions are sound — each VR's POI list is exactly the
// database restricted to the VR — every verified entry is a true nearest
// neighbor of its rank.
func TestNNVSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 150; trial++ {
		// Build a random database.
		n := 30 + rng.Intn(70)
		db := make([]broadcast.POI, n)
		for i := range db {
			db[i] = broadcast.POI{ID: int64(i), Pos: geom.Pt(rng.Float64()*20, rng.Float64()*20)}
		}
		// Build sound peer VRs.
		var peers []PeerData
		for i := 0; i < 1+rng.Intn(5); i++ {
			cx, cy := rng.Float64()*20, rng.Float64()*20
			vr := geom.NewRect(cx, cy, cx+1+rng.Float64()*8, cy+1+rng.Float64()*8)
			pd := PeerData{VR: vr}
			for _, p := range db {
				if vr.Contains(p.Pos) {
					pd.POIs = append(pd.POIs, p)
				}
			}
			peers = append(peers, pd)
		}
		q := geom.Pt(rng.Float64()*20, rng.Float64()*20)
		k := 1 + rng.Intn(5)
		res := NNV(q, peers, k, 0.2)

		// Ground truth ranking.
		truth := append([]broadcast.POI(nil), db...)
		sort.Slice(truth, func(i, j int) bool {
			return truth[i].Pos.DistSq(q) < truth[j].Pos.DistSq(q)
		})
		for rank, e := range res.Heap.Entries() {
			if !e.Verified {
				break
			}
			if !almostEqual(e.Dist, truth[rank].Pos.Dist(q), 1e-9) {
				t.Fatalf("trial %d: verified rank %d dist %v but true %v",
					trial, rank, e.Dist, truth[rank].Pos.Dist(q))
			}
		}
	}
}
