// Package svgplot renders simple line charts as standalone SVG documents
// using only the standard library. The figure tool uses it to emit the
// reproduced evaluation figures as plot files next to the text tables.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one polyline of a chart.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y must have equal non-zero length.
	X, Y []float64
}

// Chart is a complete line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the canvas size in pixels (defaults 640×420).
	Width, Height int
	// FixedY pins the y-axis to [YMin, YMax] instead of auto-scaling —
	// percentage plots use 0..100.
	FixedY     bool
	YMin, YMax float64
	Series     []Series
}

// palette holds the series stroke colors, cycled.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const (
	marginLeft   = 64.0
	marginRight  = 150.0
	marginTop    = 40.0
	marginBottom = 48.0
	tickCount    = 5
)

// WriteSVG renders the chart.
func (c Chart) WriteSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("svgplot: chart %q has no series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			return fmt.Errorf("svgplot: series %q has %d x values and %d y values",
				s.Name, len(s.X), len(s.Y))
		}
	}
	width, height := float64(c.Width), float64(c.Height)
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 420
	}

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if c.FixedY {
		yMin, yMax = c.YMin, c.YMax
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	plotW := width - marginLeft - marginRight
	plotH := height - marginTop - marginBottom
	px := func(x float64) float64 { return marginLeft + (x-xMin)/(xMax-xMin)*plotW }
	py := func(y float64) float64 { return marginTop + (1-(y-yMin)/(yMax-yMin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%.0f" y="22" text-anchor="middle" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginLeft+plotW/2, escape(c.Title))
	fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n",
		marginLeft+plotW/2, height-10, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.0f" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 16 %.0f)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)

	// Ticks and grid.
	for i := 0; i <= tickCount; i++ {
		f := float64(i) / tickCount
		xv := xMin + f*(xMax-xMin)
		yv := yMin + f*(yMax-yMin)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#cccccc" stroke-dasharray="3,3"/>`+"\n",
			marginLeft, py(yv), marginLeft+plotW, py(yv))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			px(xv), marginTop+plotH+16, formatTick(xv))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			marginLeft-6, py(yv)+3, formatTick(yv))
	}

	// Series polylines, markers, legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(clamp(s.Y[i], yMin, yMax))))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				px(s.X[i]), py(clamp(s.Y[i], yMin, yMax)), color)
		}
		ly := marginTop + 14 + float64(si)*18
		lx := marginLeft + plotW + 12
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly-4, lx+20, ly-4, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+26, ly, escape(s.Name))
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// formatTick renders a tick value compactly.
func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// escape sanitizes text for inclusion in SVG.
func escape(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;",
	)
	return r.Replace(s)
}
