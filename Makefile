# lbsq build/verification entry points. `make verify` is the tier-1 gate
# (see README.md): vet, build, race-enabled tests, and a fuzz smoke run
# of the wire decoders. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build vet test race fuzz-smoke verify soak bench

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short native-fuzzing runs of the wire codecs: the decoders must survive
# arbitrary bytes (the fault layer's truncation/corruption damage classes)
# without panicking, and accepted inputs must round-trip canonically.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeReply -fuzztime=5s ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRequest -fuzztime=5s ./internal/wire

verify: vet build race fuzz-smoke
	@echo "verify: all gates passed"

# Chaos soak sweep: randomized fault/churn/resilience schedules with
# metamorphic invariants after every run (see internal/sim/soak_test.go).
# SOAK_SCHEDULES widens the sweep beyond the 20-schedule acceptance floor.
soak:
	SOAK_SCHEDULES=32 $(GO) test -run='Soak' -count=1 -v ./internal/sim

# Fault/resilience benchmark grid: one JSON line per cell (lbsq-sim -json)
# into results/BENCH_faults.json. Sweeps request-loss with and without the
# resilient lifecycle so the two degradation curves can be compared.
bench:
	@mkdir -p results
	@: > results/BENCH_faults.json
	@for p in 0 0.05 0.1 0.2; do \
		$(GO) run ./cmd/lbsq-sim -side 2 -hours 0.1 -selfcheck -json \
			-req-loss $$p -reply-loss $$p >> results/BENCH_faults.json; \
	done
	@for p in 0 0.05 0.1 0.2; do \
		$(GO) run ./cmd/lbsq-sim -side 2 -hours 0.1 -selfcheck -json \
			-req-loss $$p -reply-loss $$p -retries 4 -churn-rate 0.1 \
			-deadline-slots 16 -breaker-threshold 3 -breaker-cooldown 8 \
			>> results/BENCH_faults.json; \
	done
	@echo "bench: wrote results/BENCH_faults.json"
