// Cityscale: run the full system model on density-preserving scales of
// the paper's three Table 3 parameter sets and compare how much of the
// kNN workload peer sharing absorbs in a dense city versus a rural
// county — the headline contrast of the evaluation (Figure 10).
package main

import (
	"fmt"
	"time"

	"lbsq"
)

func main() {
	fmt.Println("kNN workload, 5-mile density-preserving scale, 30 simulated minutes")
	fmt.Printf("%-20s %8s %10s %10s %10s %10s %12s\n",
		"parameter set", "hosts", "verified%", "approx%", "bcast%", "peers/q", "lat (slots)")

	for _, base := range []lbsq.Params{
		lbsq.LACity(), lbsq.SyntheticSuburbia(), lbsq.RiversideCounty(),
	} {
		p := base.Scaled(5).WithDuration(0.5)
		p.Kind = lbsq.KNNQuery
		p.Seed = 1
		p.TimeStepSec = 10
		p.AcceptApproximate = true
		p.PrefillQueriesPerHost = 10 // steady-state warm start

		w, err := lbsq.NewSimulation(p)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		stats := w.Run()
		fmt.Printf("%-20s %8d %9.1f%% %9.1f%% %9.1f%% %10.1f %12.1f   (%.1fs wall)\n",
			p.Name, p.MHNumber, stats.VerifiedPct(), stats.ApproximatePct(),
			stats.BroadcastPct(), stats.AvgPeers(), stats.MeanSystemLatencySlots(),
			time.Since(start).Seconds())
	}

	fmt.Println("\nThe denser the vehicle population, the more queries peers absorb —")
	fmt.Println("the scalability argument of the paper's conclusion.")
}
