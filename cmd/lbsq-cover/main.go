// Command lbsq-cover enforces per-package statement-coverage floors on a
// Go coverprofile — the stdlib-only coverage gate behind `make cover`.
//
// Usage:
//
//	lbsq-cover -profile cover.out [-min 70] [pkg ...]
//
// The profile is the output of `go test -coverprofile`. Each pkg argument
// is an import-path suffix (e.g. internal/core); when none are given,
// every package present in the profile is checked. The tool prints one
// line per checked package and exits nonzero when any falls below the
// floor, when a requested package has no statements in the profile, or
// when the profile cannot be parsed.
//
// Coverage is computed the same way `go tool cover -func` totals it:
// covered statements / total statements, weighting each profile block by
// its NumStmt field. Mode "set" and the count modes are treated alike
// (any nonzero count marks a block covered).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		profile = flag.String("profile", "", "coverprofile file from go test -coverprofile (required)")
		minPct  = flag.Float64("min", 70, "minimum statement coverage percentage per package")
	)
	flag.Parse()
	if *profile == "" {
		fmt.Fprintln(os.Stderr, "lbsq-cover: -profile is required")
		flag.Usage()
		os.Exit(2)
	}

	pkgs, err := parseProfile(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbsq-cover: %v\n", err)
		os.Exit(1)
	}

	targets := flag.Args()
	if len(targets) == 0 {
		for name := range pkgs {
			targets = append(targets, name)
		}
	}
	sort.Strings(targets)

	fail := false
	for _, t := range targets {
		cov, ok := lookup(pkgs, t)
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL %-28s no statements in profile (package untested or mistyped)\n", t)
			fail = true
			continue
		}
		pct := cov.percent()
		status := "ok  "
		if pct < *minPct {
			status = "FAIL"
			fail = true
		}
		fmt.Printf("%s %-28s %6.1f%% (floor %.0f%%, %d/%d statements)\n",
			status, t, pct, *minPct, cov.covered, cov.total)
	}
	if fail {
		os.Exit(1)
	}
}

// pkgCover accumulates one package's statement tallies.
type pkgCover struct {
	covered int
	total   int
}

func (c pkgCover) percent() float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.total)
}

// lookup resolves an import-path suffix against the profile's package
// map: an exact match wins, otherwise the unique package whose path ends
// with "/"+target.
func lookup(pkgs map[string]*pkgCover, target string) (pkgCover, bool) {
	if c, ok := pkgs[target]; ok {
		return *c, true
	}
	for name, c := range pkgs {
		if strings.HasSuffix(name, "/"+target) {
			return *c, true
		}
	}
	return pkgCover{}, false
}

// parseProfile reads a coverprofile and groups statement counts by
// package directory. Profile lines have the form
//
//	name.go:line.col,line.col numStmt count
//
// preceded by a single "mode:" header.
func parseProfile(fname string) (map[string]*pkgCover, error) {
	f, err := os.Open(fname)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	pkgs := make(map[string]*pkgCover)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if lineNo == 1 {
			if !strings.HasPrefix(line, "mode:") {
				return nil, fmt.Errorf("%s:1: missing mode header", fname)
			}
			continue
		}
		file, numStmt, count, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", fname, lineNo, err)
		}
		pkg := path.Dir(file)
		c := pkgs[pkg]
		if c == nil {
			c = &pkgCover{}
			pkgs[pkg] = c
		}
		c.total += numStmt
		if count > 0 {
			c.covered += numStmt
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("%s: no coverage blocks", fname)
	}
	return pkgs, nil
}

// parseLine splits one block line into its file, statement count, and
// execution count.
func parseLine(line string) (file string, numStmt, count int, err error) {
	colon := strings.Index(line, ":")
	if colon < 0 {
		return "", 0, 0, fmt.Errorf("malformed block %q", line)
	}
	file = line[:colon]
	fields := strings.Fields(line[colon+1:])
	if len(fields) != 3 {
		return "", 0, 0, fmt.Errorf("malformed block %q", line)
	}
	numStmt, err = strconv.Atoi(fields[1])
	if err != nil {
		return "", 0, 0, fmt.Errorf("bad statement count in %q: %v", line, err)
	}
	count, err = strconv.Atoi(fields[2])
	if err != nil {
		return "", 0, 0, fmt.Errorf("bad execution count in %q: %v", line, err)
	}
	return file, numStmt, count, nil
}
