package core

import (
	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// PeerData is one verified region received from a peer: the MBR the peer
// guarantees complete knowledge of, and every cached POI inside it. A
// peer with several cached regions contributes one PeerData per region.
//
// Ownership: the POIs slice is borrowed from the caller (in the simulator
// it aliases live cache storage). The core algorithms never mutate it and
// never retain it — every candidate is copied into algorithm-owned
// buffers before the call returns — so callers may reuse or mutate the
// peer slices freely between queries. TestCoreDoesNotRetainPeerSlices
// pins this contract.
type PeerData struct {
	VR   geom.Rect
	POIs []broadcast.POI
	// Tainted marks a contribution from an untrusted peer (internal/trust
	// demoted it: the peer is unvouched, conflicted, or paroled). A
	// tainted VR is excluded from the merged verified region — Lemma 3.1
	// must not rest on an unaudited claim — and its POIs enter
	// verification as permanently-unverified candidates on the Lemma 3.2
	// probabilistic path. Callers supplying tainted peers must keep the
	// tainted and untainted POI ID sets disjoint (trust.Screen's
	// cross-pool dedup enforces this); core's candidate dedup is
	// per-pool. The zero value (untainted) reproduces seed behavior
	// exactly.
	Tainted bool
}

// Scratch holds the reusable per-client buffers of the query hot path:
// the merged verified region, the result heap, and the candidate/result
// slices. A Scratch reaches a zero-allocation steady state after a few
// queries (buffers grow to the working-set high-water mark and are then
// reused).
//
// Results returned by the *Scratch functions alias the scratch: Heap,
// MVR, and POIs are valid only until the next call with the same Scratch.
// Known/KnownRegion are always freshly allocated — callers cache them.
// A Scratch must not be shared between goroutines.
type Scratch struct {
	mvr        geom.RectUnion
	heap       Heap
	candidates []broadcast.POI
	tainted    []broadcast.POI
	poiBuf     []broadcast.POI
}

// NNVResult bundles the outputs of the nearest-neighbor verification
// method.
type NNVResult struct {
	// Heap holds up to k candidates in ascending distance order with
	// their verification status, correctness probabilities, and
	// surpassing ratios.
	Heap *Heap
	// MVR is the merged verified region of all peers.
	MVR *geom.RectUnion
	// EdgeDist is ‖q, e_s‖ — the distance from q to the nearest boundary
	// edge of the MVR; zero when q lies outside the MVR (no verification
	// possible).
	EdgeDist float64
	// InsideMVR reports whether q lies inside the MVR (the precondition
	// of Lemma 3.1).
	InsideMVR bool
	// Candidates is the number of distinct POIs received from peers.
	Candidates int
	// Merged is the number of peer verified regions merged into the MVR
	// and Examined the number of candidates pushed through Lemma 3.1/3.2
	// verification — the deterministic work units of the mvr_merge and
	// nnv_verify phase spans (internal/metrics). Tainted regions are not
	// merged, so Merged counts only untainted peers.
	Merged   int
	Examined int
	// TaintedCandidates is the number of distinct candidates contributed
	// by tainted peers (zero on the seed path).
	TaintedCandidates int
}

// NNV is Algorithm 1: merge the peers' verified regions, sort their
// cached POIs by distance to q, and verify each candidate o against
// Lemma 3.1 (o is a guaranteed nearest neighbor when ‖q,o‖ ≤ ‖q,e_s‖ and
// q lies inside the MVR). Unverified candidates are annotated with the
// Lemma 3.2 correctness probability computed from the exact area of their
// unverified region, using lambda as the POI density.
//
// NNV runs on pooled scratch and copies the aliasing parts (Heap, MVR)
// out before returning, so the result is caller-owned while the cold
// path stays near the warm path's allocation profile.
func NNV(q geom.Point, peers []PeerData, k int, lambda float64) NNVResult {
	s := GetScratch()
	res := NNVScratch(s, q, peers, k, lambda)
	res.Heap = cloneHeap(res.Heap)
	res.MVR = cloneMVR(res.MVR)
	PutScratch(s)
	return res
}

// NNVScratch is NNV running on caller-owned scratch: the zero-allocation
// hot-path variant used by the simulator's per-world query loop. The
// returned Heap and MVR alias the scratch (see Scratch).
//
// Output is bit-identical to NNV: candidate deduplication is sort-based
// (gather every peer POI, sort by (distance², ID), drop adjacent
// duplicates), which yields exactly the distinct candidate set in exactly
// the order the per-query map used to produce — duplicates of one POI ID
// carry the same database position, hence the same distance, and are
// therefore adjacent after the sort.
func NNVScratch(s *Scratch, q geom.Point, peers []PeerData, k int, lambda float64) NNVResult {
	return NNVScratchMVR(s, &s.mvr, false, q, peers, k, lambda)
}

// NNVScratchMVR is NNVScratch with the merged verified region held in a
// caller-supplied RectUnion instead of the Scratch. With prebuilt=false
// it resets mvr and merges the untainted peer regions into it exactly as
// NNVScratch does. With prebuilt=true it assumes mvr already holds the
// untainted VR multiset of peers (the tick engine's memoized,
// incrementally maintained MVR) and skips the rebuild; every derived
// query on the union is a pure function of that multiset, so the result
// is bit-identical either way. The returned MVR aliases mvr.
func NNVScratchMVR(s *Scratch, mvr *geom.RectUnion, prebuilt bool, q geom.Point, peers []PeerData, k int, lambda float64) NNVResult {
	if !prebuilt {
		mvr.Reset()
	}
	cands := s.candidates[:0]
	taints := s.tainted[:0]
	merged := 0
	for _, p := range peers {
		if p.Tainted {
			// Untrusted: the VR must not strengthen Lemma 3.1, but the
			// POIs may still compete as probabilistic candidates.
			taints = append(taints, p.POIs...)
			continue
		}
		if !prebuilt {
			mvr.Add(p.VR)
		}
		merged++
		cands = append(cands, p.POIs...)
	}
	sortCandidates(cands, q)
	cands = dedupSortedCandidates(cands)
	s.candidates = cands
	sortCandidates(taints, q)
	taints = dedupSortedCandidates(taints)
	s.tainted = taints

	s.heap.Reset(k)
	res := NNVResult{
		Heap:              &s.heap,
		MVR:               mvr,
		Candidates:        len(cands) + len(taints),
		Merged:            merged,
		TaintedCandidates: len(taints),
	}
	if d, ok := mvr.Clearance(q); ok {
		res.EdgeDist = d
		res.InsideMVR = true
	}

	// Merge-walk the two sorted pools in global (distance², ID) order.
	// With no tainted peers this reduces exactly to a walk of cands —
	// the seed loop, bit for bit.
	lastVerified := 0.0
	hasVerified := false
	i, j := 0, 0
	for (i < len(cands) || j < len(taints)) && !res.Heap.Full() {
		pickTainted := i >= len(cands) ||
			(j < len(taints) && candBefore(taints[j], cands[i], q))
		var poi broadcast.POI
		if pickTainted {
			poi = taints[j]
			j++
		} else {
			poi = cands[i]
			i++
		}
		res.Examined++
		d := poi.Pos.Dist(q)
		e := Entry{POI: poi, Dist: d, Tainted: pickTainted}
		if !pickTainted && res.InsideMVR && d <= res.EdgeDist {
			e.Verified = true
			e.Correctness = 1
			lastVerified = d
			hasVerified = true
		} else {
			// Unverified (or tainted — untrusted candidates can never be
			// verified regardless of geometry): the candidate's
			// unverified region is the part of its distance disk not
			// covered by the (trusted) MVR.
			u := mvr.UnverifiedArea(q, d)
			e.Correctness = CorrectnessProbability(lambda, u)
			if hasVerified && lastVerified > 0 {
				e.Surpassing = d / lastVerified
			}
		}
		res.Heap.add(e)
	}
	return res
}

// candBefore reports whether a precedes b in the candidate order
// (ascending distance² to q, POI ID as the deterministic tiebreak) —
// the same total order sortCandidates establishes within each pool.
func candBefore(a, b broadcast.POI, q geom.Point) bool {
	da, db := a.Pos.DistSq(q), b.Pos.DistSq(q)
	if da != db {
		return da < db
	}
	return a.ID < b.ID
}

// dedupSortedCandidates removes adjacent duplicate POI IDs in place and
// returns the deduplicated prefix. Input must be sorted by
// sortCandidates, which makes equal IDs adjacent (same POI ⇒ same
// position ⇒ same distance).
func dedupSortedCandidates(pois []broadcast.POI) []broadcast.POI {
	if len(pois) < 2 {
		return pois
	}
	out := pois[:1]
	for _, p := range pois[1:] {
		if p.ID != out[len(out)-1].ID {
			out = append(out, p)
		}
	}
	return out
}
