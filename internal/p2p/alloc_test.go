//go:build !race

// Steady-state allocation assertion for the buffer-reuse neighbor
// lookup. Excluded under the race detector, which instruments
// allocations and breaks AllocsPerRun counts.

package p2p

import (
	"math/rand"
	"testing"

	"lbsq/internal/geom"
)

// TestAppendNeighborsZeroAllocs pins the zero-allocation contract of
// the warm single-hop lookup — the per-query path of every simulated
// host. The reflect.DeepEqual comparison in append_test.go guarantees
// it is the same answer; this guarantees it is free.
func TestAppendNeighborsZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := buildNet(t, rng, 1000)
	q := geom.Pt(500, 500)
	buf := net.AppendNeighbors(nil, q, 150, -1) // warm to capacity
	allocs := testing.AllocsPerRun(100, func() {
		buf = net.AppendNeighbors(buf[:0], q, 150, -1)
	})
	if allocs != 0 {
		t.Fatalf("warm AppendNeighbors allocates %.1f times per run, want 0", allocs)
	}
}
