package faults

import (
	"bytes"
	"math"
	"testing"
)

func TestZeroProfileIsInert(t *testing.T) {
	var p Profile
	if p.Enabled() {
		t.Fatal("zero profile reports enabled")
	}
	in := New(1, p)
	if in.Enabled() {
		t.Fatal("zero-profile injector reports enabled")
	}
	for i := 0; i < 1000; i++ {
		if !in.RequestHeard() {
			t.Fatal("zero profile lost a request")
		}
		if in.StaleVR() {
			t.Fatal("zero profile staled a region")
		}
		if f := in.ReplyFate(); f != FateDeliver {
			t.Fatalf("zero profile fate %v", f)
		}
	}
	if in.Counters != (Counters{}) {
		t.Fatalf("zero profile counters %+v", in.Counters)
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector enabled")
	}
	if !in.RequestHeard() || in.StaleVR() || in.ReplyFate() != FateDeliver {
		t.Fatal("nil injector injected a fault")
	}
	if in.Pick(5) != 0 {
		t.Fatal("nil Pick nonzero")
	}
	b := []byte{1, 2, 3}
	if got := in.Mangle(b, FateCorrupt); !bytes.Equal(got, b) {
		t.Fatal("nil Mangle changed bytes")
	}
	if in.Profile() != (Profile{}) {
		t.Fatal("nil Profile non-zero")
	}
}

func TestNormalizedClampsAndDefaults(t *testing.T) {
	p := Profile{RequestLoss: 2, ReplyLoss: -1, StaleRate: 0.5}
	n := p.Normalized()
	if n.RequestLoss != MaxRate {
		t.Errorf("RequestLoss clamped to %v", n.RequestLoss)
	}
	if n.ReplyLoss != 0 {
		t.Errorf("negative ReplyLoss -> %v", n.ReplyLoss)
	}
	if n.StaleRate != 0.5 {
		t.Errorf("in-range rate changed: %v", n.StaleRate)
	}
	if n.MaxRetries != DefaultMaxRetries {
		t.Errorf("MaxRetries defaulted to %d", n.MaxRetries)
	}
	// A zero profile gains no retry budget.
	if z := (Profile{}).Normalized(); z.MaxRetries != 0 {
		t.Errorf("zero profile MaxRetries %d", z.MaxRetries)
	}
	// An explicit budget survives normalization.
	if e := (Profile{ReplyLoss: 0.1, MaxRetries: 5}).Normalized(); e.MaxRetries != 5 {
		t.Errorf("explicit MaxRetries %d", e.MaxRetries)
	}
}

func TestValidate(t *testing.T) {
	good := Profile{RequestLoss: 0.1, ReplyLoss: 0.2, BroadcastLoss: 0.3, StaleRate: 0.05, MaxRetries: 3}
	if err := good.Validate(); err != nil {
		t.Fatalf("good profile rejected: %v", err)
	}
	bad := []Profile{
		{RequestLoss: -0.1},
		{ReplyLoss: 1.5},
		{ReplyTruncate: math.NaN()},
		{ReplyCorrupt: 2},
		{BroadcastLoss: -1},
		{StaleRate: 1.01},
		{MaxRetries: -1},
		{MaxRetries: 17},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted: %+v", i, p)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := Profile{RequestLoss: 0.3, ReplyLoss: 0.2, ReplyTruncate: 0.1, ReplyCorrupt: 0.1, StaleRate: 0.2}
	a, b := New(7, p), New(7, p)
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(i)
	}
	for i := 0; i < 500; i++ {
		if a.RequestHeard() != b.RequestHeard() {
			t.Fatal("RequestHeard diverged")
		}
		if a.StaleVR() != b.StaleVR() {
			t.Fatal("StaleVR diverged")
		}
		fa, fb := a.ReplyFate(), b.ReplyFate()
		if fa != fb {
			t.Fatal("ReplyFate diverged")
		}
		if !bytes.Equal(a.Mangle(msg, fa), b.Mangle(msg, fb)) {
			t.Fatal("Mangle diverged")
		}
	}
	if a.Counters != b.Counters {
		t.Fatalf("counters diverged: %+v vs %+v", a.Counters, b.Counters)
	}
	if a.Counters.RequestsUnheard == 0 || a.Counters.RepliesDropped == 0 ||
		a.Counters.StaleVRs == 0 {
		t.Fatalf("fault processes never fired: %+v", a.Counters)
	}
}

func TestReplyFateRates(t *testing.T) {
	p := Profile{ReplyLoss: 0.2, ReplyTruncate: 0.1, ReplyCorrupt: 0.1}
	in := New(11, p)
	const n = 20000
	var fates [4]int
	for i := 0; i < n; i++ {
		fates[in.ReplyFate()]++
	}
	check := func(fate ReplyFate, want float64) {
		got := float64(fates[fate]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v rate %.3f want %.2f", fate, got, want)
		}
	}
	check(FateDeliver, 0.6)
	check(FateDrop, 0.2)
	check(FateTruncate, 0.1)
	check(FateCorrupt, 0.1)
	if in.Counters.RepliesDropped != int64(fates[FateDrop]) ||
		in.Counters.RepliesTruncated != int64(fates[FateTruncate]) ||
		in.Counters.RepliesCorrupted != int64(fates[FateCorrupt]) {
		t.Errorf("counters disagree with drawn fates: %+v", in.Counters)
	}
}

func TestMangle(t *testing.T) {
	in := New(13, Profile{ReplyTruncate: 0.5, ReplyCorrupt: 0.5})
	msg := make([]byte, 128)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	for trial := 0; trial < 200; trial++ {
		tr := in.Mangle(msg, FateTruncate)
		if len(tr) >= len(msg) || len(tr) < 0 {
			t.Fatalf("truncation produced %d of %d bytes", len(tr), len(msg))
		}
		if !bytes.Equal(tr, msg[:len(tr)]) {
			t.Fatal("truncation changed surviving bytes")
		}
		co := in.Mangle(msg, FateCorrupt)
		if len(co) != len(msg) {
			t.Fatalf("corruption changed length: %d", len(co))
		}
		if bytes.Equal(co, msg) {
			t.Fatal("corruption flipped no bits")
		}
	}
	// Delivery and drop leave the frame untouched.
	if !bytes.Equal(in.Mangle(msg, FateDeliver), msg) ||
		!bytes.Equal(in.Mangle(msg, FateDrop), msg) {
		t.Fatal("deliver/drop mangled the frame")
	}
	// The input is never modified in place.
	for i := range msg {
		if msg[i] != byte(i*7) {
			t.Fatal("Mangle modified its input")
		}
	}
}

func TestFateStrings(t *testing.T) {
	if FateDeliver.String() != "deliver" || FateDrop.String() != "drop" ||
		FateTruncate.String() != "truncate" || FateCorrupt.String() != "corrupt" {
		t.Error("fate strings wrong")
	}
}
