package core

import (
	"math"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// Outcome classifies how a sharing-based query was resolved — the
// categories the paper's experiments report.
type Outcome int

const (
	// OutcomeVerified: the query was fully answered from peer caches with
	// guaranteed-correct results (SBNN with k verified NNs, or SBWQ with
	// the window covered by the MVR).
	OutcomeVerified Outcome = iota
	// OutcomeApproximate: the client accepted a full heap containing
	// unverified entries whose correctness probabilities passed the
	// acceptance threshold (approximate SBNN).
	OutcomeApproximate
	// OutcomeBroadcast: the broadcast channel had to be used (possibly
	// with reduced search bounds derived from partial peer results).
	OutcomeBroadcast
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeVerified:
		return "verified"
	case OutcomeApproximate:
		return "approximate"
	case OutcomeBroadcast:
		return "broadcast"
	default:
		return "unknown"
	}
}

// SBNNConfig parameterizes a sharing-based nearest-neighbor query.
type SBNNConfig struct {
	// K is the number of nearest neighbors requested.
	K int
	// Lambda is the POI density (POIs per square unit) used by the
	// Lemma 3.2 correctness model.
	Lambda float64
	// AcceptApproximate allows the client to accept a full heap with
	// unverified entries instead of falling back to the channel (the
	// `accept` flag of Algorithm 2).
	AcceptApproximate bool
	// MinCorrectness is the acceptance threshold on each unverified
	// entry's correctness probability; the paper's experiments use 0.5.
	MinCorrectness float64
}

// SBNNResult is the outcome of Algorithm 2.
type SBNNResult struct {
	// POIs are the k best answers known at return, ascending by distance.
	// For OutcomeVerified and OutcomeBroadcast they are exact; for
	// OutcomeApproximate the unverified tail is probabilistic.
	POIs []broadcast.POI
	// Heap is the NNV result heap (Table 2).
	Heap *Heap
	// MVR is the merged verified region.
	MVR *geom.RectUnion
	// Outcome classifies the resolution.
	Outcome Outcome
	// Bounds are the on-air search bounds derived from the heap state
	// (zero when the channel was not used).
	Bounds broadcast.Bounds
	// Access is the broadcast channel cost; zero-valued for peer-resolved
	// queries.
	Access broadcast.Access
	// KnownRegion is a rectangle the client now has complete knowledge
	// of, and Known are exactly the database POIs inside it — the sound
	// verified region the client may cache and later share with peers.
	// Empty when the query produced no certain regional knowledge.
	KnownRegion geom.Rect
	// Known holds every POI inside KnownRegion.
	Known []broadcast.POI
	// Merged / Examined are the deterministic work units of the
	// mvr_merge and nnv_verify phase spans: peer regions merged into the
	// MVR and candidates pushed through verification (internal/metrics).
	Merged   int
	Examined int
	// TaintedCandidates counts candidates supplied by untrusted peers
	// (zero on the seed path; see PeerData.Tainted).
	TaintedCandidates int
}

// verifiedSquare returns the largest axis-aligned square centered at q
// whose closed extent provably contains only POIs at distance < radius
// (the square inscribed in the open disk), shrunk one ulp to exclude
// distance ties at the radius itself.
func verifiedSquare(q geom.Point, radius float64) geom.Rect {
	if radius <= 0 {
		return geom.Rect{}
	}
	half := math.Nextafter(radius, 0) / math.Sqrt2
	return geom.RectAround(q, half)
}

// SBNN is Algorithm 2: run NNV over the peers' cached results; if k
// verified NNs were obtained — or the client accepts an approximate full
// heap — answer immediately with zero channel access. Otherwise derive
// search bounds from the heap state (Section 3.3.3), run the on-air kNN
// query with packet filtering, and merge the channel data with the peer
// knowledge.
//
// sched may be nil when no broadcast channel is available; the best
// peer-side answer is then returned with OutcomeBroadcast and no POIs
// beyond the heap contents.
//
// SBNN runs on pooled scratch and copies the aliasing parts (Heap, MVR,
// POIs) out before returning, so the result is caller-owned while the
// cold path stays near the warm path's allocation profile.
func SBNN(q geom.Point, peers []PeerData, cfg SBNNConfig, sched *broadcast.Schedule, now int64) SBNNResult {
	s := GetScratch()
	res := SBNNScratch(s, q, peers, cfg, sched, now)
	res.Heap = cloneHeap(res.Heap)
	res.MVR = cloneMVR(res.MVR)
	res.POIs = clonePOIs(res.POIs)
	PutScratch(s)
	return res
}

// SBNNScratch is SBNN running on caller-owned scratch — the
// zero-allocation hot-path variant. Results are bit-identical to SBNN;
// the returned Heap, MVR, and POIs alias the scratch and are valid only
// until the next call with the same Scratch, while KnownRegion/Known are
// always freshly allocated (callers insert them into caches).
func SBNNScratch(s *Scratch, q geom.Point, peers []PeerData, cfg SBNNConfig, sched *broadcast.Schedule, now int64) SBNNResult {
	return SBNNScratchMVR(s, &s.mvr, false, q, peers, cfg, sched, now)
}

// SBNNScratchMVR is SBNNScratch with the merged verified region held in
// a caller-supplied RectUnion; prebuilt follows the NNVScratchMVR
// contract (mvr already holds the untainted VR multiset of peers).
// Results are bit-identical to SBNNScratch.
func SBNNScratchMVR(s *Scratch, mvr *geom.RectUnion, prebuilt bool, q geom.Point, peers []PeerData, cfg SBNNConfig, sched *broadcast.Schedule, now int64) SBNNResult {
	nnv := NNVScratchMVR(s, mvr, prebuilt, q, peers, cfg.K, cfg.Lambda)
	res := SBNNResult{Heap: nnv.Heap, MVR: nnv.MVR, Merged: nnv.Merged,
		Examined: nnv.Examined, TaintedCandidates: nnv.TaintedCandidates}

	// Whatever the outcome, everything within the last verified distance
	// is complete knowledge the client may cache.
	fillVerifiedKnowledge := func() {
		dv, ok := nnv.Heap.LastVerifiedDist()
		if !ok {
			return
		}
		res.KnownRegion = verifiedSquare(q, dv)
		for _, e := range nnv.Heap.Entries() {
			if e.Verified && res.KnownRegion.Contains(e.POI.Pos) {
				res.Known = append(res.Known, e.POI)
			}
		}
	}

	// heapPOIs materializes the heap answer into the reused result buffer.
	heapPOIs := func() []broadcast.POI {
		s.poiBuf = nnv.Heap.AppendPOIs(s.poiBuf[:0])
		return s.poiBuf
	}

	if nnv.Heap.VerifiedCount() >= cfg.K && cfg.K > 0 {
		res.Outcome = OutcomeVerified
		res.POIs = heapPOIs()
		fillVerifiedKnowledge()
		return res
	}
	if cfg.AcceptApproximate && nnv.Heap.Full() &&
		nnv.Heap.MinUnverifiedCorrectness() >= cfg.MinCorrectness {
		res.Outcome = OutcomeApproximate
		res.POIs = heapPOIs()
		fillVerifiedKnowledge()
		return res
	}

	// Fall back to the broadcast channel with the heap-state bounds.
	// (SearchBounds suppresses the upper bound whenever a tainted entry
	// is present — an untrusted candidate must never truncate the on-air
	// search.)
	res.Outcome = OutcomeBroadcast
	res.Bounds = nnv.Heap.SearchBounds()
	if sched == nil {
		// No channel to re-verify against: return only the trusted heap
		// contents (identical to the full heap on the seed path).
		s.poiBuf = nnv.Heap.AppendTrustedPOIs(s.poiBuf[:0])
		res.POIs = s.poiBuf
		fillVerifiedKnowledge()
		return res
	}
	onAir, acc := sched.KNNWithBounds(q, cfg.K, now, res.Bounds)
	res.Access = acc

	// Merge: the heap's trusted POIs (peer knowledge, covering any
	// packets the lower bound skipped — the lower bound derives from
	// verified entries, which are never tainted) plus the channel data.
	// Tainted entries are excluded: the merged set is an exact answer,
	// and a fabricated POI must not be able to enter it. Duplicates
	// between the channel and the heap are copies of the same database
	// POI, so the sort-based dedup reproduces the former map-based merge
	// exactly.
	merged := append(s.poiBuf[:0], onAir...)
	merged = nnv.Heap.AppendTrustedPOIs(merged)
	sortCandidates(merged, q)
	merged = dedupSortedCandidates(merged)
	s.poiBuf = merged

	// The retrieval covered every packet intersecting the search square,
	// and the heap covers the skipped packets, so within the square the
	// merged set is complete — that square is new verified knowledge.
	radius := res.Bounds.Upper
	if radius <= 0 {
		radius = sched.SearchRadius(q, cfg.K)
	}
	res.KnownRegion = geom.RectAround(q, radius)
	for _, p := range merged {
		if res.KnownRegion.Contains(p.Pos) {
			res.Known = append(res.Known, p)
		}
	}

	if len(merged) > cfg.K {
		merged = merged[:cfg.K]
	}
	res.POIs = merged
	return res
}
