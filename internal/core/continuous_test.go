package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// contTestDB builds a synthetic database and sound peers over it: each
// peer's region holds exactly the database POIs inside it, the honest
// cached-result contract the safe-exit math relies on.
func contTestDB(rng *rand.Rand, nPOIs, nPeers int) ([]broadcast.POI, []PeerData) {
	db := make([]broadcast.POI, nPOIs)
	for i := range db {
		db[i] = broadcast.POI{
			ID:  int64(i + 1),
			Pos: geom.Pt(rng.Float64()*10, rng.Float64()*10),
		}
	}
	peers := make([]PeerData, 0, nPeers)
	for i := 0; i < nPeers; i++ {
		c := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		vr := geom.RectAround(c, 0.5+rng.Float64()*2.5)
		var pois []broadcast.POI
		for _, p := range db {
			if vr.Contains(p.Pos) {
				pois = append(pois, p)
			}
		}
		peers = append(peers, PeerData{VR: vr, POIs: pois})
	}
	return db, peers
}

// bruteKNN returns the exact top-k ID set over the whole database in the
// algorithms' (distance, ID) total order.
func bruteKNN(db []broadcast.POI, q geom.Point, k int) map[int64]bool {
	sorted := append([]broadcast.POI(nil), db...)
	sort.Slice(sorted, func(i, j int) bool { return candBefore(sorted[i], sorted[j], q) })
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	ids := make(map[int64]bool, len(sorted))
	for _, p := range sorted {
		ids[p.ID] = true
	}
	return ids
}

func sameIDSet(answer []broadcast.POI, want map[int64]bool) bool {
	if len(answer) != len(want) {
		return false
	}
	for _, p := range answer {
		if !want[p.ID] {
			return false
		}
	}
	return true
}

// Differential property: any query position strictly inside the
// safe-exit radius of a verified kNN answer yields the identical answer
// set as a brute-force re-run over the full database.
func TestQuickSafeExitKNNDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, peers := contTestDB(rng, 40+rng.Intn(80), 3+rng.Intn(6))
		q := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		k := 1 + rng.Intn(4)
		nnv := NNV(q, peers, k, 1)
		if nnv.Heap.VerifiedCount() < k {
			return true // not a verified answer; no safe region to test
		}
		answer := nnv.Heap.POIs()
		clearance, ok := nnv.MVR.Clearance(q)
		if !ok {
			return true
		}
		var cands []broadcast.POI
		for _, p := range peers {
			cands = append(cands, p.POIs...)
		}
		rs := SafeExitKNN(q, answer, cands, clearance)
		if rs <= 0 {
			return true
		}
		for trial := 0; trial < 24; trial++ {
			ang := rng.Float64() * 2 * math.Pi
			step := rng.Float64() * rs * 0.999
			q2 := geom.Pt(q.X+step*math.Cos(ang), q.Y+step*math.Sin(ang))
			if !sameIDSet(answer, bruteKNN(db, q2, k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Differential property: any rigid translation of a covered window
// strictly inside its safe-exit radius keeps the exact window answer
// (ID set) identical to a brute-force re-run over the full database.
func TestQuickSafeExitWindowDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, peers := contTestDB(rng, 40+rng.Intn(80), 3+rng.Intn(6))
		u := geom.NewRectUnion()
		for _, p := range peers {
			u.Add(p.VR)
		}
		c := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		w := geom.RectAround(c, 0.1+rng.Float64()*1.2)
		m1, ok := u.ClearanceRect(w)
		if !ok {
			return true // window not covered; no exact answer to maintain
		}
		var answer, cands []broadcast.POI
		for _, p := range peers {
			cands = append(cands, p.POIs...)
		}
		for _, p := range db {
			if w.Contains(p.Pos) {
				answer = append(answer, p)
			}
		}
		rs := SafeExitWindow(w, cands, m1)
		if rs <= 0 {
			return true
		}
		want := make(map[int64]bool, len(answer))
		for _, p := range answer {
			want[p.ID] = true
		}
		for trial := 0; trial < 24; trial++ {
			ang := rng.Float64() * 2 * math.Pi
			step := rng.Float64() * rs * 0.999
			v := geom.Pt(step*math.Cos(ang), step*math.Sin(ang))
			moved := geom.Rect{Min: w.Min.Add(v), Max: w.Max.Add(v)}
			var got []broadcast.POI
			for _, p := range db {
				if moved.Contains(p.Pos) {
					got = append(got, p)
				}
			}
			if !sameIDSet(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSafeExitKNNHand(t *testing.T) {
	q := geom.Pt(5, 5)
	answer := []broadcast.POI{{ID: 1, Pos: geom.Pt(5, 6)}} // dK = 1
	cands := []broadcast.POI{
		{ID: 1, Pos: geom.Pt(5, 6)},
		{ID: 2, Pos: geom.Pt(5, 9)}, // nearest non-answer at 4
	}
	// clearance 10 > candidate margin: rs = (4-1)/2.
	if rs := SafeExitKNN(q, answer, cands, 10); math.Abs(rs-1.5) > 1e-12 {
		t.Errorf("candidate-limited: got %g, want 1.5", rs)
	}
	// clearance 2 < candidate margin: rs = (2-1)/2.
	if rs := SafeExitKNN(q, answer, cands, 2); math.Abs(rs-0.5) > 1e-12 {
		t.Errorf("clearance-limited: got %g, want 0.5", rs)
	}
	// Tie: a non-answer candidate at the same distance pins rs to zero.
	tie := append(cands, broadcast.POI{ID: 3, Pos: geom.Pt(5, 4)})
	if rs := SafeExitKNN(q, answer, tie, 10); rs != 0 {
		t.Errorf("tie: got %g, want 0", rs)
	}
	if rs := SafeExitKNN(q, nil, cands, 10); rs != 0 {
		t.Errorf("empty answer: got %g, want 0", rs)
	}
}

func TestSafeExitWindowHand(t *testing.T) {
	w := geom.NewRect(2, 2, 8, 8)
	cands := []broadcast.POI{
		{ID: 1, Pos: geom.Pt(5, 5)},  // inside, 3 from boundary
		{ID: 2, Pos: geom.Pt(9, 5)},  // outside, 1 from boundary
		{ID: 3, Pos: geom.Pt(20, 5)}, // far away
	}
	if rs := SafeExitWindow(w, cands, 10); math.Abs(rs-1) > 1e-12 {
		t.Errorf("candidate-limited: got %g, want 1", rs)
	}
	if rs := SafeExitWindow(w, cands, 0.25); math.Abs(rs-0.25) > 1e-12 {
		t.Errorf("coverage-limited: got %g, want 0.25", rs)
	}
	if rs := SafeExitWindow(w, nil, 2); math.Abs(rs-2) > 1e-12 {
		t.Errorf("no candidates: got %g, want 2", rs)
	}
}
