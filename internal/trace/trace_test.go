package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	events := []Event{
		{TimeSec: 1.5, Host: 3, Kind: "knn", Outcome: "verified", K: 5, Peers: 7},
		{TimeSec: 2.0, Host: 9, Kind: "window", Outcome: "broadcast",
			LatencySlots: 120, TuningSlots: 14, PacketsRead: 6, PacketsSkipped: 2},
	}
	for _, e := range events {
		if err := w.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 2 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d events", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v want %+v", i, got[i], events[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"t":1}` + "\n" + `not json`)); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %v, %d events", err, len(got))
	}
}

func TestKOmittedForWindows(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Record(Event{Kind: "window", Outcome: "verified"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"k"`) {
		t.Error("k field emitted for a window event")
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Outcome: "verified", Peers: 4},
		{Outcome: "verified", Peers: 2},
		{Outcome: "broadcast", Peers: 0, LatencySlots: 100, PacketsRead: 5},
		{Outcome: "broadcast", Peers: 2, LatencySlots: 200, PacketsRead: 7},
	}
	s := Summarize(events)
	if s.Events != 4 {
		t.Fatalf("Events = %d", s.Events)
	}
	if s.ByOutcome["verified"] != 2 || s.ByOutcome["broadcast"] != 2 {
		t.Fatalf("ByOutcome = %v", s.ByOutcome)
	}
	if s.MeanLatency != 150 {
		t.Fatalf("MeanLatency = %v", s.MeanLatency)
	}
	if s.MeanPeers != 2 {
		t.Fatalf("MeanPeers = %v", s.MeanPeers)
	}
	if s.TotalPackets != 12 {
		t.Fatalf("TotalPackets = %d", s.TotalPackets)
	}
	// Empty trace.
	z := Summarize(nil)
	if z.Events != 0 || z.MeanLatency != 0 || z.MeanPeers != 0 {
		t.Error("empty summary not zero")
	}
}
