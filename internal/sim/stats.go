package sim

import "fmt"

// Stats aggregates the quantities the paper's figures report.
type Stats struct {
	// Queries is the number of (post-warm-up) queries issued.
	Queries int
	// Verified counts queries fully resolved by peer sharing with exact
	// results (SBNN fully verified / SBWQ window covered).
	Verified int
	// Approximate counts kNN queries resolved by approximate SBNN
	// (full heap, unverified correctness above the threshold).
	Approximate int
	// Broadcast counts queries that fell back to the broadcast channel.
	Broadcast int

	// LatencySlots sums the broadcast access latency of channel-resolved
	// queries, in slots.
	LatencySlots int64
	// TuningSlots sums the tuning time of channel-resolved queries.
	TuningSlots int64
	// PacketsRead / PacketsSkipped sum data packets downloaded and
	// packets filtered out by SBNN/SBWQ search bounds.
	PacketsRead    int64
	PacketsSkipped int64

	// BaselineLatencySlots / BaselinePackets sum, over the same queries,
	// the cost the plain on-air algorithms (no sharing) would have paid.
	// Populated only when World.CompareBaseline is set.
	BaselineLatencySlots int64
	BaselinePackets      int64
	BaselineSampled      int

	// PeerRequests / PeerReplies count P2P traffic. With faults enabled
	// PeerRequests includes every re-broadcast attempt.
	PeerRequests int64
	PeerReplies  int64
	// PeerBytes is the total ad-hoc channel traffic in encoded wire-format
	// bytes (requests plus replies, lost frames included — they occupied
	// the channel even when nothing arrived).
	PeerBytes int64

	// Fault-injection visibility. All of these are zero on an ideal
	// substrate (fault profile zero); each counts one degradation path of
	// the fault model.
	//
	// PeerRetries counts request re-broadcasts beyond each query's first
	// attempt (the bounded retry budget).
	PeerRetries int64
	// RequestsUnheard counts per-peer request receptions lost.
	RequestsUnheard int64
	// RepliesDropped counts peer replies lost in flight.
	RepliesDropped int64
	// RepliesRejected counts truncated or bit-corrupted peer replies the
	// wire decoder's CRC/structure checks refused.
	RepliesRejected int64
	// StaleVRs counts shared verified regions the POI-update process had
	// silently invalidated (discarded by the consistency layer unless the
	// TrustStale test knob is set).
	StaleVRs int64
	// Retransmissions counts broadcast data-packet receptions lost to
	// channel errors; the client waited a further cycle for each.
	Retransmissions int64
	// IndexRetries counts index-segment receptions lost; the client
	// waited for the next (1, m) index replica for each.
	IndexRetries int64

	// Resilient-lifecycle visibility. All of these are zero when the
	// resilience knobs (DeadlineSlots, BreakerThreshold, ChurnRate) are
	// zero — the seed's blind retry loop runs bit-identically then.
	//
	// DeadlineAborts counts queries whose P2P phase exceeded its slot
	// budget and abandoned the remaining retry targets.
	DeadlineAborts int64
	// BackoffSlots sums the broadcast slots spent waiting in retry
	// backoff across all queries (the adaptive-retry price).
	BackoffSlots int64
	// BreakerTrips counts circuit-breaker closed→open and
	// half-open→open transitions.
	BreakerTrips int64
	// BreakerShortCircuits counts requests skipped because the target
	// peer's breaker was open (retry traffic saved).
	BreakerShortCircuits int64
	// BreakerRecoveries counts half-open→closed transitions (a probe
	// reply was delivered sound).
	BreakerRecoveries int64
	// ChurnDepartures counts peers that powered off or drifted out of
	// range mid-collection; ChurnReturns counts departed peers that came
	// back before the same collection finished.
	ChurnDepartures int64
	ChurnReturns    int64
	// WastedRetries counts retry transmissions addressed at departed
	// peers (spent channel time that could not possibly be answered).
	WastedRetries int64

	// Trust-layer visibility (internal/trust). All of these are zero when
	// the trust knobs (Faults.ByzantineRate, Params.AuditRate) are zero;
	// the new fields are omitted from JSON encodings then, so zero-knob
	// report rows stay byte-identical to earlier schema versions.
	//
	// ByzantineLies counts materially false claims byzantine hosts told
	// (one per mangled shared region).
	ByzantineLies int64 `json:",omitempty"`
	// AuditsRun counts on-air spot audits (passed or failed) and
	// AuditFailures how many of them convicted the contributor.
	AuditsRun     int64 `json:",omitempty"`
	AuditFailures int64 `json:",omitempty"`
	// ConflictsDetected counts overlap disagreements cross-validation
	// found between peers' verified regions.
	ConflictsDetected int64 `json:",omitempty"`
	// PeersQuarantined counts peer convictions (failed audits plus strike
	// accumulations); each forces the peer's circuit breaker open.
	PeersQuarantined int64 `json:",omitempty"`
	// AuditSlots is the broadcast-slot cost of all audits, priced into the
	// audited queries' access latency.
	AuditSlots int64 `json:",omitempty"`
	// QuarantinedArea is the total area (square miles) subtracted from
	// merges by conflict quarantine and convictions.
	QuarantinedArea float64 `json:",omitempty"`
	// StaleVerdicts counts cross-validation disagreements amnestied
	// because a claimant's region carried a superseded epoch — the third
	// verdict of the stale-vs-byzantine table (DESIGN.md §12). Zero
	// unless both the trust and consistency layers are armed.
	StaleVerdicts int64 `json:",omitempty"`

	// Consistency-layer visibility (DESIGN.md §12). All of these are zero
	// when UpdateRate and VRTTLSec are zero; the fields are omitted from
	// JSON encodings then, so zero-knob report rows stay byte-identical
	// to earlier schema versions.
	//
	// POIUpdates counts POI mutations applied (insert/delete/move) and
	// IRBroadcasts the epochs those mutations were batched into.
	POIUpdates   int64 `json:",omitempty"`
	IRBroadcasts int64 `json:",omitempty"`
	// IRListens counts clients tuning in for an invalidation report
	// before querying, IRListenSlots the broadcast slots that cost, and
	// IRListenRetries the IR copies lost to channel errors (the client
	// waited for the next index replica each time).
	IRListens       int64 `json:",omitempty"`
	IRListenSlots   int64 `json:",omitempty"`
	IRListenRetries int64 `json:",omitempty"`
	// VRsReconciled counts cached regions surgically repaired around
	// invalidated cells, VRsDemoted regions too old for the IR window
	// that entered a query tainted (probabilistic path only), and
	// VRsDiscarded regions dropped (whole-discard mode, shrink-to-empty,
	// or over-fragmented repairs).
	VRsReconciled int64 `json:",omitempty"`
	VRsDemoted    int64 `json:",omitempty"`
	VRsDiscarded  int64 `json:",omitempty"`
	// VRsExpired counts regions evicted by the VRTTLSec time-to-live.
	VRsExpired int64 `json:",omitempty"`

	// Channel-impairment visibility (DESIGN.md §13): the Gilbert–Elliott
	// fading chain, the blackout windows, and the degraded-mode planner.
	// All of these are zero when the burst, blackout, and DegradedMode
	// knobs are off; the fields are omitted from JSON encodings then, so
	// zero-knob report rows stay byte-identical to earlier schema
	// versions.
	//
	// Degraded counts queries answered from peer-side knowledge on a
	// channel-less rung (P2P-only or own-cache) without verification —
	// best-effort answers with Lemma 3.2 confidence at most. Unanswered
	// counts queries those rungs could not answer at all. Both are
	// outcome classes: Verified+Approximate+Broadcast+Degraded+Unanswered
	// always equals Queries.
	Degraded   int `json:",omitempty"`
	Unanswered int `json:",omitempty"`
	// ModeP2POnly / ModeOnAirOnly / ModeOwnCache count counted queries
	// the planner placed on each fallback rung, and ModeSwitchSlots the
	// total deadline-priced rung-switch cost those queries paid.
	ModeP2POnly     int64 `json:",omitempty"`
	ModeOnAirOnly   int64 `json:",omitempty"`
	ModeOwnCache    int64 `json:",omitempty"`
	ModeSwitchSlots int64 `json:",omitempty"`
	// BlackoutQueries counts naive-mode (planner off) queries that hit a
	// dark downlink and stalled; BlackoutWaitSlots sums the dead air they
	// waited. BlackoutRecoveries counts per-host reacquisitions (a host's
	// first query after its blackout window ended).
	BlackoutQueries    int64 `json:",omitempty"`
	BlackoutWaitSlots  int64 `json:",omitempty"`
	BlackoutRecoveries int64 `json:",omitempty"`
	// IRDeferred counts IR listens skipped because the host's downlink
	// was dark (the epoch lag replays at reacquisition); IRListenAborts
	// counts listens abandoned at the bounded replica wait (the host
	// neither reconciled nor advanced its epoch).
	IRDeferred     int64 `json:",omitempty"`
	IRListenAborts int64 `json:",omitempty"`
	// FadeSuppressedStrikes counts reply-timeout breaker strikes withheld
	// because the fading chain was impaired at end of collection — a
	// global fade is a channel property, never peer misbehavior.
	FadeSuppressedStrikes int64 `json:",omitempty"`
	// BurstFrameLosses counts P2P frames the fading chain killed on top
	// of the legacy Bernoulli losses; BurstTransitions counts good↔bad
	// state flips of the chain.
	BurstFrameLosses int64 `json:",omitempty"`
	BurstTransitions int64 `json:",omitempty"`
	// AnsweredInBudget counts queries answered (any rung) within
	// DeadlineSlots plus one broadcast cycle — the availability metric of
	// the EXPERIMENTS.md burstiness curve. Computed only when the burst
	// or blackout knobs are armed, or the load governor is (it steers by
	// this ratio).
	AnsweredInBudget int64 `json:",omitempty"`
	// StaleBoundMaxSec is the worst explicit staleness bound any
	// own-cache-rung answer carried (seconds since the oldest
	// contributing region was inserted).
	StaleBoundMaxSec int64 `json:",omitempty"`

	// Continuous-query visibility (DESIGN.md §15). All of these are zero
	// when ContinuousRate is zero; the fields are omitted from JSON
	// encodings then, so zero-knob report rows stay byte-identical to
	// earlier schema versions.
	//
	// Subscriptions counts standing-query registrations (post-warm-up).
	Subscriptions int64 `json:",omitempty"`
	// SafeRegionHits counts maintenance ticks a subscription answered from
	// its stored result because the host stayed strictly inside the
	// safe-exit radius and nothing tainted the answer (a cheap re-rank,
	// no query path, no channel).
	SafeRegionHits int64 `json:",omitempty"`
	// Reverifies counts maintenance ticks that re-ran the full query
	// path; it always equals ReverifyExits + ReverifyTaints +
	// ReverifyUnverified + ReverifyNaive.
	Reverifies int64 `json:",omitempty"`
	// ReverifyExits counts re-verifications forced by the host crossing
	// its safe-exit radius, ReverifyTaints those forced by an
	// invalidation epoch advance or VR TTL expiry on the stored answer,
	// ReverifyUnverified those forced because the previous maintenance
	// left no exact answer (first verification of a new subscription, or
	// a Lemma 3.2 probabilistic demotion), and ReverifyNaive the
	// unconditional re-runs of the ContinuousNaive baseline.
	ReverifyExits      int64 `json:",omitempty"`
	ReverifyTaints     int64 `json:",omitempty"`
	ReverifyUnverified int64 `json:",omitempty"`
	ReverifyNaive      int64 `json:",omitempty"`
	// ContDegraded counts re-verifications whose answer came back inexact
	// (approximate or channel-less degraded) — the subscription then
	// holds a probabilistic answer and re-verifies next tick.
	ContDegraded int64 `json:",omitempty"`
	// ContSlots sums the broadcast slots subscription re-verifications
	// spent (channel access, IR listens, audits, mode switches, blackout
	// waits) — the continuous layer's slot cost, kept separate from the
	// one-shot query counters.
	ContSlots int64 `json:",omitempty"`

	// Overload-plane visibility (DESIGN.md §16): the flash-crowd
	// generator and the demand-side overload controls. All of these are
	// zero when the crowd/overload knobs are off; the fields are omitted
	// from JSON encodings then, so zero-knob report rows stay
	// byte-identical to earlier schema versions.
	//
	// CrowdQueries counts the extra hotspot queries the flash-crowd
	// generator injected (post-warm-up, included in Queries).
	CrowdQueries int64 `json:",omitempty"`
	// BusyReplies counts explicit BUSY backpressure frames received from
	// peers whose bounded service queue was full; QueueDrops counts
	// requests peers shed silently beyond the busy band. Neither is ever
	// a breaker strike.
	BusyReplies int64 `json:",omitempty"`
	QueueDrops  int64 `json:",omitempty"`
	// Shed counts one-shot queries demoted to the broadcast-only path by
	// the demand-side controls; it always equals AdmissionDenied +
	// GovernorSheds. AdmissionDenied are sheds from an empty per-MH
	// admission token bucket, GovernorSheds from the load governor's
	// engaged state.
	Shed            int64 `json:",omitempty"`
	AdmissionDenied int64 `json:",omitempty"`
	GovernorSheds   int64 `json:",omitempty"`
	// GovernorEngagedTicks counts ticks the load governor spent in its
	// shedding state (answered-in-budget ratio below the floor).
	GovernorEngagedTicks int64 `json:",omitempty"`
	// RetryBudgetExhausted counts queries whose retry rounds stopped
	// because the tick's global retry budget ran out (the query proceeds
	// with the replies it has — bounded amplification, not failure).
	RetryBudgetExhausted int64 `json:",omitempty"`
	// Coalesced counts queries that reused a co-located same-tick
	// query's screened peer gather instead of broadcasting their own
	// request.
	Coalesced int64 `json:",omitempty"`

	// Batched-tick-engine visibility (DESIGN.md §14). MVRMemoHits counts
	// same-tick queries that reused another query's merged verified
	// region through the engine's memo table (TickWorkers > 1 only), and
	// MVRDeltaReuses memo groups whose MVR was derived from the previous
	// group's by an incremental Remove/Insert edit instead of a rebuild.
	// Pure engine-internal performance counters: they are excluded from
	// every encoding so batched report rows stay byte-identical to
	// serial ones.
	MVRMemoHits    int64 `json:"-"`
	MVRDeltaReuses int64 `json:"-"`

	// AvgPeersPerQuery tracks mean reachable peers (encounter density).
	peersSum int64
}

// VerifiedPct returns the percentage of queries resolved by exact sharing.
func (s Stats) VerifiedPct() float64 { return pct(s.Verified, s.Queries) }

// ApproximatePct returns the percentage resolved by approximate SBNN.
func (s Stats) ApproximatePct() float64 { return pct(s.Approximate, s.Queries) }

// BroadcastPct returns the percentage resolved over the channel.
func (s Stats) BroadcastPct() float64 { return pct(s.Broadcast, s.Queries) }

// SharedPct returns the percentage resolved without the channel.
func (s Stats) SharedPct() float64 { return pct(s.Verified+s.Approximate, s.Queries) }

// AvgLatencySlots returns the mean channel latency per broadcast-resolved
// query.
func (s Stats) AvgLatencySlots() float64 {
	if s.Broadcast == 0 {
		return 0
	}
	return float64(s.LatencySlots) / float64(s.Broadcast)
}

// AvgTuningSlots returns the mean tuning time per broadcast-resolved
// query.
func (s Stats) AvgTuningSlots() float64 {
	if s.Broadcast == 0 {
		return 0
	}
	return float64(s.TuningSlots) / float64(s.Broadcast)
}

// MeanSystemLatencySlots returns the mean access latency over ALL counted
// queries (peer-resolved queries contribute zero — they are answered
// immediately from one-hop neighbors). This is the headline latency win.
func (s Stats) MeanSystemLatencySlots() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.LatencySlots) / float64(s.Queries)
}

// BaselineMeanLatencySlots returns the mean plain on-air latency over the
// baseline-sampled queries.
func (s Stats) BaselineMeanLatencySlots() float64 {
	if s.BaselineSampled == 0 {
		return 0
	}
	return float64(s.BaselineLatencySlots) / float64(s.BaselineSampled)
}

// AvgPeerBytes returns the mean ad-hoc traffic per query in bytes.
func (s Stats) AvgPeerBytes() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.PeerBytes) / float64(s.Queries)
}

// AvgPeers returns the mean number of peers reachable per query.
func (s Stats) AvgPeers() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.peersSum) / float64(s.Queries)
}

// FaultEvents returns the total number of injected faults visible in the
// statistics — zero exactly when the run saw an ideal substrate.
func (s Stats) FaultEvents() int64 {
	return s.RequestsUnheard + s.RepliesDropped + s.RepliesRejected +
		s.StaleVRs + s.Retransmissions + s.IndexRetries + s.ChurnDepartures +
		s.ByzantineLies
}

// TrustEvents returns the total activity of the trust layer — zero
// exactly when the AuditRate knob was zero (the engine then never
// exists, and screening never runs).
func (s Stats) TrustEvents() int64 {
	return s.AuditsRun + s.AuditFailures + s.ConflictsDetected +
		s.PeersQuarantined + s.AuditSlots
}

// ConsistencyEvents returns the total activity of the consistency layer
// — zero exactly when UpdateRate and VRTTLSec were both zero (no update
// process, no IR frames, no TTL expiry).
func (s Stats) ConsistencyEvents() int64 {
	return s.POIUpdates + s.IRBroadcasts + s.IRListens + s.IRListenSlots +
		s.IRListenRetries + s.VRsReconciled + s.VRsDemoted + s.VRsDiscarded +
		s.VRsExpired + s.StaleVerdicts
}

// ChannelEvents returns the total activity of the channel-impairment
// layer — zero exactly when the burst, blackout, and DegradedMode knobs
// were all zero (no fading chain, no blackout schedule, no planner).
// AnsweredInBudget is deliberately excluded: it measures availability
// under impairment, not impairment itself.
func (s Stats) ChannelEvents() int64 {
	return int64(s.Degraded) + int64(s.Unanswered) + s.ModeP2POnly +
		s.ModeOnAirOnly + s.ModeOwnCache + s.ModeSwitchSlots +
		s.BlackoutQueries + s.BlackoutWaitSlots + s.BlackoutRecoveries +
		s.IRDeferred + s.IRListenAborts + s.FadeSuppressedStrikes +
		s.BurstFrameLosses + s.BurstTransitions + s.StaleBoundMaxSec
}

// AnsweredInBudgetPct returns the answered-within-deadline fraction of
// a channel-impaired run — the availability headline of the burstiness
// experiments.
func (s Stats) AnsweredInBudgetPct() float64 {
	return pct(int(s.AnsweredInBudget), s.Queries)
}

// ContinuousEvents returns the total activity of the continuous-query
// layer — zero exactly when ContinuousRate was zero (no subscription
// registry exists, no maintenance phase runs).
func (s Stats) ContinuousEvents() int64 {
	return s.Subscriptions + s.SafeRegionHits + s.Reverifies +
		s.ReverifyExits + s.ReverifyTaints + s.ReverifyUnverified +
		s.ReverifyNaive + s.ContDegraded + s.ContSlots
}

// MaintenanceTicks returns the number of per-tick maintenance decisions
// the continuous layer made (safe-region hits plus re-verifications).
func (s Stats) MaintenanceTicks() int64 { return s.SafeRegionHits + s.Reverifies }

// ReverifyFraction returns the fraction of maintenance ticks that had to
// re-run the query path — 1.0 for the naive baseline, well below 1.0
// when safe regions absorb the movement (the EXPERIMENTS.md continuous
// curve's y-axis).
func (s Stats) ReverifyFraction() float64 {
	if t := s.MaintenanceTicks(); t > 0 {
		return float64(s.Reverifies) / float64(t)
	}
	return 0
}

// OverloadEvents returns the total activity of the overload plane —
// zero exactly when the crowd and overload knobs were all zero (no
// crowd stream, no service queues, no buckets, no governor, no
// coalescing).
func (s Stats) OverloadEvents() int64 {
	return s.CrowdQueries + s.BusyReplies + s.QueueDrops + s.Shed +
		s.AdmissionDenied + s.GovernorSheds + s.GovernorEngagedTicks +
		s.RetryBudgetExhausted + s.Coalesced
}

// GoodputPct returns the fraction of counted queries answered exactly or
// acceptably (verified, approximate, or broadcast — everything except
// the channel-less degraded/unanswered outcomes), the y-axis of the
// EXPERIMENTS.md goodput-vs-offered-load curve.
func (s Stats) GoodputPct() float64 {
	return pct(s.Verified+s.Approximate+s.Broadcast, s.Queries)
}

// ResilienceEvents returns the total activity of the resilient query
// lifecycle — zero exactly when every resilience knob was zero.
func (s Stats) ResilienceEvents() int64 {
	return s.DeadlineAborts + s.BackoffSlots + s.BreakerTrips +
		s.BreakerShortCircuits + s.BreakerRecoveries +
		s.ChurnDepartures + s.ChurnReturns + s.WastedRetries
}

// String renders a one-line summary.
func (s Stats) String() string {
	out := fmt.Sprintf(
		"queries=%d verified=%.1f%% approx=%.1f%% broadcast=%.1f%% avgPeers=%.1f avgLatency=%.0f slots",
		s.Queries, s.VerifiedPct(), s.ApproximatePct(), s.BroadcastPct(),
		s.AvgPeers(), s.AvgLatencySlots(),
	)
	if s.FaultEvents() > 0 {
		out += fmt.Sprintf(
			" faults[unheard=%d dropped=%d rejected=%d stale=%d retries=%d rexmit=%d idxretry=%d]",
			s.RequestsUnheard, s.RepliesDropped, s.RepliesRejected,
			s.StaleVRs, s.PeerRetries, s.Retransmissions, s.IndexRetries,
		)
	}
	if s.ResilienceEvents() > 0 {
		out += fmt.Sprintf(
			" resilience[aborts=%d backoff=%d trips=%d shortcircuits=%d recoveries=%d churn=%d/%d wasted=%d]",
			s.DeadlineAborts, s.BackoffSlots, s.BreakerTrips,
			s.BreakerShortCircuits, s.BreakerRecoveries,
			s.ChurnDepartures, s.ChurnReturns, s.WastedRetries,
		)
	}
	if s.TrustEvents() > 0 || s.ByzantineLies > 0 {
		out += fmt.Sprintf(
			" trust[lies=%d audits=%d/%d conflicts=%d quarantined=%d auditslots=%d area=%.2f]",
			s.ByzantineLies, s.AuditsRun, s.AuditFailures, s.ConflictsDetected,
			s.PeersQuarantined, s.AuditSlots, s.QuarantinedArea,
		)
	}
	if s.ConsistencyEvents() > 0 {
		out += fmt.Sprintf(
			" consistency[updates=%d irs=%d listens=%d listenslots=%d reconciled=%d demoted=%d discarded=%d expired=%d staleverdicts=%d]",
			s.POIUpdates, s.IRBroadcasts, s.IRListens, s.IRListenSlots,
			s.VRsReconciled, s.VRsDemoted, s.VRsDiscarded, s.VRsExpired,
			s.StaleVerdicts,
		)
	}
	if s.ChannelEvents() > 0 || s.AnsweredInBudget > 0 {
		out += fmt.Sprintf(
			" channel[degraded=%d unanswered=%d modes=%d/%d/%d switchslots=%d blackout[q=%d wait=%d recov=%d] irdef=%d iraborts=%d fadesupp=%d burst[loss=%d trans=%d] inbudget=%.1f%% stalebound=%ds]",
			s.Degraded, s.Unanswered, s.ModeP2POnly, s.ModeOnAirOnly,
			s.ModeOwnCache, s.ModeSwitchSlots, s.BlackoutQueries,
			s.BlackoutWaitSlots, s.BlackoutRecoveries, s.IRDeferred,
			s.IRListenAborts, s.FadeSuppressedStrikes, s.BurstFrameLosses,
			s.BurstTransitions, s.AnsweredInBudgetPct(), s.StaleBoundMaxSec,
		)
	}
	if s.ContinuousEvents() > 0 {
		out += fmt.Sprintf(
			" continuous[subs=%d hits=%d reverifies=%d (exit=%d taint=%d unverified=%d naive=%d) degraded=%d slots=%d fraction=%.2f]",
			s.Subscriptions, s.SafeRegionHits, s.Reverifies,
			s.ReverifyExits, s.ReverifyTaints, s.ReverifyUnverified,
			s.ReverifyNaive, s.ContDegraded, s.ContSlots, s.ReverifyFraction(),
		)
	}
	if s.OverloadEvents() > 0 {
		out += fmt.Sprintf(
			" overload[crowd=%d busy=%d qdrops=%d shed=%d (admission=%d governor=%d) govticks=%d retrybudget=%d coalesced=%d]",
			s.CrowdQueries, s.BusyReplies, s.QueueDrops, s.Shed,
			s.AdmissionDenied, s.GovernorSheds, s.GovernorEngagedTicks,
			s.RetryBudgetExhausted, s.Coalesced,
		)
	}
	return out
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
