package rtree

import (
	"math/rand"
	"testing"

	"lbsq/internal/geom"
)

func benchTree(b *testing.B, n int) (*Tree, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tr := Bulk(randomItems(rng, n, 100), 16)
	return tr, rng
}

func BenchmarkBulkLoad10k(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	items := randomItems(rng, 10000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bulk(items, 16)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := New(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(Item{ID: int64(i), Pos: geom.Pt(rng.Float64()*100, rng.Float64()*100)})
	}
}

func BenchmarkKNNBestFirst(b *testing.B) {
	tr, rng := benchTree(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		if got := tr.KNN(q, 10); len(got) != 10 {
			b.Fatal("short result")
		}
	}
}

func BenchmarkKNNDepthFirst(b *testing.B) {
	tr, rng := benchTree(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		if got := tr.KNNDepthFirst(q, 10); len(got) != 10 {
			b.Fatal("short result")
		}
	}
}

func BenchmarkWindow(b *testing.B) {
	tr, rng := benchTree(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx, cy := rng.Float64()*95, rng.Float64()*95
		tr.Window(geom.NewRect(cx, cy, cx+5, cy+5))
	}
}

func BenchmarkDelete(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	items := randomItems(rng, 100000, 100)
	tr := Bulk(items, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i%len(items)]
		tr.Delete(it.ID, it.Pos)
		if i%len(items) == len(items)-1 {
			b.StopTimer()
			tr = Bulk(items, 16)
			b.StartTimer()
		}
	}
}

// BenchmarkInsertRStar measures R*-tree insertion (forced reinsertion +
// topological split) against the plain Guttman BenchmarkInsert above.
func BenchmarkInsertRStar(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tr := NewRStar(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(Item{ID: int64(i), Pos: geom.Pt(rng.Float64()*100, rng.Float64()*100)})
	}
}

// BenchmarkWindowQualityGuttmanVsRStar reports the node-touch advantage
// of the R* heuristics on clustered data.
func BenchmarkWindowQualityGuttmanVsRStar(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	var items []Item
	for c := 0; c < 10; c++ {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		for i := 0; i < 200; i++ {
			items = append(items, Item{
				ID:  int64(len(items)),
				Pos: geom.Pt(cx+rng.NormFloat64()*3, cy+rng.NormFloat64()*3),
			})
		}
	}
	g, r := New(8), NewRStar(8)
	for _, it := range items {
		g.Insert(it)
		r.Insert(it)
	}
	var gT, rT int
	for i := 0; i < 100; i++ {
		cx, cy := rng.Float64()*95, rng.Float64()*95
		w := geom.NewRect(cx, cy, cx+5, cy+5)
		gT += g.NodesTouchedByWindow(w)
		rT += r.NodesTouchedByWindow(w)
	}
	b.Logf("nodes touched per 100 windows: guttman=%d rstar=%d", gT, rT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx, cy := rng.Float64()*95, rng.Float64()*95
		r.Window(geom.NewRect(cx, cy, cx+5, cy+5))
	}
}
