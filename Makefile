# lbsq build/verification entry points. `make verify` is the tier-1 gate
# (see README.md): vet, build, race-enabled tests, and a fuzz smoke run
# of the wire decoders. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build vet test race fuzz-smoke verify soak bench bench-hot bench-smoke

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiments suite alone takes minutes under race instrumentation on
# slow runners, so give the package-level timeout explicit headroom instead
# of relying on go test's 10-minute default.
race:
	$(GO) test -race -timeout 45m ./...

# Short native-fuzzing runs of the wire codecs: the decoders must survive
# arbitrary bytes (the fault layer's truncation/corruption damage classes)
# without panicking, and accepted inputs must round-trip canonically.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeReply -fuzztime=5s ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRequest -fuzztime=5s ./internal/wire

verify: vet build race fuzz-smoke
	@echo "verify: all gates passed"

# Chaos soak sweep: randomized fault/churn/resilience schedules with
# metamorphic invariants after every run (see internal/sim/soak_test.go).
# SOAK_SCHEDULES widens the sweep beyond the 20-schedule acceptance floor.
soak:
	SOAK_SCHEDULES=32 $(GO) test -run='Soak' -count=1 -v ./internal/sim

# Fault/resilience benchmark grid: one JSON line per cell into
# results/BENCH_faults.json. Sweeps request-loss with and without the
# resilient lifecycle so the two degradation curves can be compared.
# Runs in one process through the sweep engine (internal/perf.FaultGrid);
# rows are value-identical to the former go-run-per-cell shell loop, in
# the same order, plus the bench_schema version field.
bench:
	@mkdir -p results
	$(GO) run ./cmd/lbsq-sim -grid faults -side 2 -hours 0.1 \
		> results/BENCH_faults.json
	@echo "bench: wrote results/BENCH_faults.json"

# Hot-path perf report: steady-state micro benchmarks (ns/op, B/op,
# allocs/op of the scratch-based query kernels) plus the parallel-sweep
# wall-clock comparison with its serial-identity check.
bench-hot:
	@mkdir -p results
	$(GO) run ./cmd/lbsq-bench -out results/BENCH_hotpath.json
	@echo "bench-hot: wrote results/BENCH_hotpath.json"

# CI regression gate: quick-scale harness compared against the committed
# baseline (fails on >25% ns/op regression or any steady-state allocs/op
# growth), then the parallel sweep identity under the race detector.
bench-smoke:
	$(GO) run ./cmd/lbsq-bench -quick -compare results/BENCH_hotpath.json
	$(GO) test -race ./internal/sweep
	$(GO) test -race -run 'TestParallel|TestFaultGrid' \
		./internal/perf ./internal/experiments
