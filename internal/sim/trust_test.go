package sim

// System-level tests of the Byzantine-resilience layer (DESIGN.md §11):
// the no-trust baseline demonstrably fails open under lying peers, the
// armed defense keeps every exact answer ground-truth correct across the
// full attack-profile grid, and with both knobs zero the layer is
// invisible (no engine, no draws, no new JSON keys).

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"lbsq/internal/faults"
)

// byzParams builds a small dense world with lying peers. Prefill gives
// every host a cache worth lying about from t=0.
func byzParams(seed int64, kind QueryKind, byzRate, auditRate float64, attack faults.Attack) Params {
	p := LACity().Scaled(1.5).WithDuration(0.1)
	p.Seed = seed
	p.TimeStepSec = 10
	p.Kind = kind
	p.PrefillQueriesPerHost = 10
	p.Faults.ByzantineRate = byzRate
	p.Faults.Attack = attack
	p.AuditRate = auditRate
	return p
}

// TestByzantineNoTrustFailsOpen pins the threat model at system level:
// with lying peers and the defense disarmed, the honest-peer assumption
// of Section 3.2 fails open and the self-check catches verified-wrong
// (or merged-wrong) exact answers. If this test ever stops failing open,
// the trust layer is defending against a threat the simulator no longer
// produces.
func TestByzantineNoTrustFailsOpen(t *testing.T) {
	for _, kind := range []QueryKind{KNNQuery, WindowQuery} {
		p := byzParams(901, kind, 0.5, 0, faults.AttackMix)
		w, s := runSoakWorld(t, p)
		if s.ByzantineLies == 0 {
			t.Fatalf("%v: no byzantine lies told (rate 0.5)", kind)
		}
		if s.TrustEvents() != 0 {
			t.Fatalf("%v: trust events %d with the defense disarmed", kind, s.TrustEvents())
		}
		if w.Trust() != nil {
			t.Fatalf("%v: trust engine exists with AuditRate 0", kind)
		}
		if err := w.SelfCheckErr(); err == nil {
			t.Fatalf("%v: unscreened byzantine run passed the self-check — the documented vulnerability is gone", kind)
		}
	}
}

// TestByzantineSoundnessGrid is the acceptance grid: every attack
// profile, byzantine rates up to 0.5, audits armed — every exact answer
// must match the R-tree ground truth. Lies may cost coverage (verified
// share drops, channel share rises), never correctness.
func TestByzantineSoundnessGrid(t *testing.T) {
	attacks := []faults.Attack{faults.AttackFabricate, faults.AttackOmit,
		faults.AttackInflate, faults.AttackShift, faults.AttackMix}
	var auditsTotal, liesTotal int64
	for ai, attack := range attacks {
		for bi, byzRate := range []float64{0.25, 0.5} {
			kind := KNNQuery
			if (ai+bi)%2 == 1 {
				kind = WindowQuery
			}
			name := attack.String() + "-" + strconv.FormatFloat(byzRate, 'g', -1, 64)
			t.Run(name, func(t *testing.T) {
				p := byzParams(1000+int64(ai*10+bi), kind, byzRate, 0.5, attack)
				w, s := runSoakWorld(t, p)
				if err := w.SelfCheckErr(); err != nil {
					t.Fatalf("attack %v byz %v: exact answer diverged from ground truth: %v",
						attack, byzRate, err)
				}
				if got := s.Verified + s.Approximate + s.Broadcast; got != s.Queries {
					t.Fatalf("outcomes %d != queries %d", got, s.Queries)
				}
				if s.AuditFailures > s.AuditsRun {
					t.Fatalf("audit failures %d exceed audits %d", s.AuditFailures, s.AuditsRun)
				}
				if s.AuditFailures > 0 && s.PeersQuarantined == 0 {
					t.Fatalf("audit failures %d convicted nobody", s.AuditFailures)
				}
				auditsTotal += s.AuditsRun
				liesTotal += s.ByzantineLies
			})
		}
	}
	if auditsTotal == 0 {
		t.Error("grid never ran a single audit")
	}
	if liesTotal == 0 {
		t.Error("grid never told a single lie")
	}
}

// TestTrustHonestSubstrate: audits armed over honest peers must vouch,
// never convict — no false positives from the defense itself (the
// consistency layer discards stale regions before screening, so every
// surviving honest claim is ground-truth exact).
func TestTrustHonestSubstrate(t *testing.T) {
	p := byzParams(77, KNNQuery, 0, 0.5, faults.AttackNone)
	p.Faults.StaleRate = 0.1 // stale regions are discarded pre-screen
	w, s := runSoakWorld(t, p)
	if err := w.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if s.AuditsRun == 0 {
		t.Fatal("honest run never audited anything")
	}
	if s.AuditFailures != 0 || s.ConflictsDetected != 0 || s.PeersQuarantined != 0 {
		t.Fatalf("defense convicted honest peers: failures=%d conflicts=%d quarantined=%d",
			s.AuditFailures, s.ConflictsDetected, s.PeersQuarantined)
	}
	if s.ByzantineLies != 0 {
		t.Fatalf("lies counted with byzantine off: %d", s.ByzantineLies)
	}
}

// TestTrustZeroKnobIdentity pins the bit-identity contract at the report
// level: with ByzantineRate and AuditRate zero no trust engine exists,
// no byzantine assignment is drawn, and the JSON report (and the Stats
// struct inside it) contains none of the new keys — byte-identical
// encodings to the pre-trust schema.
func TestTrustZeroKnobIdentity(t *testing.T) {
	p := byzParams(4243, KNNQuery, 0, 0, faults.AttackNone)
	p.Faults.RequestLoss = 0.2 // other fault knobs must not arm the layer
	p.Faults.ReplyLoss = 0.1
	w, s := runSoakWorld(t, p)
	if err := w.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if w.Trust() != nil {
		t.Fatal("trust engine exists with zero knobs")
	}
	if s.TrustEvents() != 0 || s.ByzantineLies != 0 || s.QuarantinedArea != 0 {
		t.Fatalf("trust counters fired with zero knobs: %+v", s)
	}
	w2, s2 := runSoakWorld(t, p)
	if s != s2 {
		t.Fatalf("zero-knob run not deterministic:\n%+v\nvs\n%+v", s, s2)
	}
	_ = w2
	b, err := json.Marshal(NewReport(p, s, true, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"audit", "Audit", "Byzantine", "Quarantin", "Conflicts", "trust_events", "Attack"} {
		if strings.Contains(string(b), key) {
			t.Fatalf("zero-knob report leaks %q:\n%s", key, b)
		}
	}
}

// TestTrustDeterminism: identical seeds with the full stack armed
// (faults + resilience + byzantine + audits) produce identical Stats,
// trust counters included.
func TestTrustDeterminism(t *testing.T) {
	p := byzParams(555, WindowQuery, 0.4, 0.6, faults.AttackMix)
	p.Faults.RequestLoss = 0.1
	p.Faults.ChurnRate = 0.1
	p.DeadlineSlots = 16
	p.BreakerThreshold = 3
	_, s := runSoakWorld(t, p)
	_, s2 := runSoakWorld(t, p)
	if s != s2 {
		t.Fatalf("armed run not deterministic:\n%+v\nvs\n%+v", s, s2)
	}
	if s.TrustEvents() == 0 {
		t.Fatal("armed run produced no trust activity")
	}
}
