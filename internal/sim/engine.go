package sim

import (
	"math"
	"sync"

	"lbsq/internal/broadcast"
	"lbsq/internal/cache"
	"lbsq/internal/core"
	"lbsq/internal/geom"
	"lbsq/internal/sweep"
	"lbsq/internal/trace"
	"lbsq/internal/trust"
)

// The batched per-tick query engine (DESIGN.md §14). With
// Params.TickWorkers > 1 each tick's Poisson query batch runs in three
// phases instead of the seed's one-query-at-a-time loop:
//
//	draw    (serial)   consume every random stream — world, injector,
//	                   trust, consistency — in exactly the legacy
//	                   per-query order, collecting peers and producing an
//	                   immutable tickEntry per query;
//	execute (parallel) run the pure core algorithms (SBNN/SBWQ) for all
//	                   entries across TickWorkers workers under the
//	                   internal/sweep determinism contract, sharing
//	                   memoized merged verified regions between entries
//	                   with identical untainted VR multisets;
//	commit  (serial)   replay the legacy post-algorithm tail — stats,
//	                   baseline pricing, self-checks, traces, metrics,
//	                   cache inserts — in query order.
//
// Identity argument. The only state the execute phase reads is frozen
// for the duration of a tick (host positions, schedules, epochs, the
// entry's own peer snapshot), and the core algorithms are pure. Draw
// and commit both run serially in query order, so every random stream
// and every order-dependent side effect (trace lines, metric
// histograms, cache mutations) is consumed or produced in the legacy
// sequence. The one coupling between queries of the same tick — a
// query's commit inserting a cache region that a later query's draw
// could read — is broken by the conflict flush: before drawing a query
// that could observe any pending entry's commit (same data type and
// same host or within multi-hop radio reach), the engine executes and
// commits everything pending. Two exceptions force the serial path per
// flush: a lossy broadcast channel (the schedule's reception-error
// stream must be consumed in the legacy [algorithm, baseline] per-query
// order), handled by executing entries serially at commit time.
//
// Memoization. Entries whose untainted VR multisets match share one
// merged RectUnion (Stats.MVRMemoHits); consecutive memo groups whose
// multisets differ by a small edit are chained, deriving each group's
// MVR from the previous one's via incremental Remove/Insert
// (Stats.MVRDeltaReuses) instead of a rebuild. Both rest on the
// RectUnion order-independence contract: the union's observable state
// is a pure function of its member multiset
// (TestRectUnionIncrementalOrderIndependence, TestScratchMVRVariantsMatch).

// tickResult is the sanitized outcome of one entry's execute phase:
// exactly the algorithm-result fields the commit phase consumes, with
// no aliasing of worker scratch (POIs are copied into entry-owned
// storage; Known is algorithm-allocated fresh storage by contract).
type tickResult struct {
	outcome     core.Outcome
	access      broadcast.Access
	knownRegion geom.Rect
	known       []broadcast.POI
	pois        []broadcast.POI
	merged      int
	examined    int
}

// tickEntry is one drawn query: every input the execute phase needs and
// every draw-phase fact the commit phase replays. Entries are reused
// across ticks (the slices keep their capacity).
type tickEntry struct {
	idx, ti int
	q       geom.Point
	k       int       // kNN runs
	win     geom.Rect // window runs

	qc        queryChannel
	irSlots   int64
	nPeers    int
	collected int64 // backoff + rung-switch slots (the metrics "spent")
	spent     int64 // collected + irSlots + audit slots (the latency term)
	minBorn   int64
	shed      shedCause // overload shed verdict (overload.go)
	coalesced bool      // reused a co-located donor's gather
	now       int64     // slotNow + spent + chWait, the algorithm's clock
	trep      trust.Report
	sched     *broadcast.Schedule // nil on the channel-less rungs
	sbnnCfg   core.SBNNConfig
	sbwqCfg   core.SBWQConfig

	// baselineSampled records the pre-drawn baseline coin (the rng
	// draw happens at its legacy stream position, during the serial
	// draw phase); the pure schedule pricing runs at commit.
	baselineSampled bool
	// peerBytes snapshots Stats.PeerBytes at the end of this entry's
	// draw — the value the legacy loop would observe at commit time.
	peerBytes int64

	fp     uint64          // fingerprint of the untainted VR sequence
	peers  []core.PeerData // entry-owned snapshot of the screened peers
	poiBuf []broadcast.POI // entry-owned copy-out buffer for SBNN POIs
	res    tickResult
}

// tickGroup is one memo group: entries sharing an untainted VR
// multiset. A delta group derives its MVR from the previous group's by
// applying removes/inserts instead of rebuilding.
type tickGroup struct {
	rep     int   // entry index of the representative
	members []int // entry indices, batch order (rep first)
	removes []geom.Rect
	inserts []geom.Rect
	delta   bool // chained onto the previous group
}

// tickEngine holds the batch state and reusable buffers of the batched
// tick path. Owned by the World's goroutine except during the execute
// phase, when workers write disjoint entries' res/poiBuf fields.
type tickEngine struct {
	entries []tickEntry
	n       int
	groups  []tickGroup
	nGroups int
	heads   []int // chain-head group indices (execute scratch)

	fpIdx map[uint64][]int  // fingerprint → group indices
	diff  map[geom.Rect]int // multiset-diff scratch

	workers   int
	serialAir bool // lossy broadcast channel: execute serially at commit
}

// tickMVRPool recycles the per-chain merged verified regions across
// flushes and worker goroutines.
var tickMVRPool = sync.Pool{New: func() any { return new(geom.RectUnion) }}

func (eng *tickEngine) alloc() *tickEntry {
	if eng.n == len(eng.entries) {
		eng.entries = append(eng.entries, tickEntry{})
	}
	e := &eng.entries[eng.n]
	eng.n++
	return e
}

func (eng *tickEngine) allocGroup() *tickGroup {
	if eng.nGroups == len(eng.groups) {
		eng.groups = append(eng.groups, tickGroup{})
	}
	g := &eng.groups[eng.nGroups]
	eng.nGroups++
	return g
}

// conflicts reports whether a new query on (idx, ti) could observe any
// pending entry's commit — or mutate cache state its commit reads. A
// pending commit touches exactly the cache (entry.idx, entry.ti); the
// new query reads (and touches) its own cache and those of its
// multi-hop neighbors, all of the same type and within
// SharingHops × TxRange of its position. Host positions are frozen for
// the tick, so the Euclidean bound is exact.
func (eng *tickEngine) conflicts(w *World, idx, ti int) bool {
	if eng.n == 0 {
		return false
	}
	hops := w.Params.SharingHops
	if hops < 1 {
		hops = 1
	}
	reach := float64(hops) * w.Params.TxRangeMiles()
	pos := w.hosts[idx].mob.Pos
	for i := 0; i < eng.n; i++ {
		e := &eng.entries[i]
		if e.ti != ti {
			continue
		}
		if e.idx == idx || e.q.DistSq(pos) <= reach*reach {
			return true
		}
	}
	return false
}

// stepBatch is the batched replacement for Step's query loop: identical
// rng consumption, identical output, parallel algorithm execution. The
// nCrowd flash-crowd queries draw after the legacy batch, host and type
// from the crowd stream, mirroring the serial path's ordering exactly.
func (w *World) stepBatch(n, nCrowd int) {
	eng := &w.eng
	eng.workers = w.Params.TickWorkers
	eng.serialAir = w.Params.Faults.Normalized().BroadcastLoss > 0
	if eng.fpIdx == nil {
		eng.fpIdx = make(map[uint64][]int)
		eng.diff = make(map[geom.Rect]int)
	}
	eng.n = 0
	for q := 0; q < n; q++ {
		idx := w.rng.Intn(len(w.hosts))
		ti := w.rng.Intn(len(w.types))
		if eng.conflicts(w, idx, ti) {
			w.flushBatch()
		}
		w.drawQuery(idx, ti)
	}
	for q := 0; q < nCrowd; q++ {
		idx, ti := w.crowdPick()
		if w.counted() {
			w.stats.CrowdQueries++
		}
		if eng.conflicts(w, idx, ti) {
			w.flushBatch()
		}
		w.drawQuery(idx, ti)
	}
	w.flushBatch()
}

// drawQuery is the pre-algorithm half of runKNNQuery/runWindowQuery:
// every random draw and every serial-order side effect (channel
// assessment, IR sync, peer collection, trust screening) in the legacy
// order, captured into a tickEntry. The baseline sampling coin is
// pre-drawn here — it is the only world-rng draw the legacy loop makes
// after the algorithm, and nothing between the algorithm and that draw
// consumes the stream, so its position is unchanged.
func (w *World) drawQuery(idx, ti int) {
	h := &w.hosts[idx]
	ts := &w.types[ti]
	q := h.mob.Pos
	var (
		k         int
		win       geom.Rect
		relevance geom.Rect
	)
	if w.Params.Kind == WindowQuery {
		var ok bool
		win, ok = w.drawWindow(q)
		if !ok {
			return
		}
		relevance = win
	} else {
		k = w.drawK()
		relevance = geom.RectAround(q, w.knnRelevanceRadius(ti, k))
	}
	qc := w.assessChannel(idx)
	irSlots := w.syncIR(idx, ti)
	// The overload-aware collection pipeline (overload.go), in the
	// serial draw phase so every admission/coalesce/queue decision is
	// tick-worker identical by construction.
	cr := w.collectQuery(idx, ti, relevance, qc, irSlots)
	peers := cr.peers

	sched := ts.sched
	if qc.mode == modeP2POnly || qc.mode == modeOwnCache {
		sched = nil
	}

	e := w.eng.alloc()
	e.idx, e.ti, e.q, e.k, e.win = idx, ti, q, k, win
	e.qc, e.irSlots, e.nPeers = qc, irSlots, cr.nPeers
	e.collected, e.spent, e.minBorn = cr.collected, cr.spent, cr.minBorn
	e.trep, e.sched = cr.trep, sched
	e.shed, e.coalesced = cr.shed, cr.coalesced
	e.now = w.slotNow() + cr.spent + qc.chWait
	if w.Params.Kind == WindowQuery {
		e.sbwqCfg = core.SBWQConfig{
			MaxKnownArea: 1.5 * float64(w.Params.CacheSize) / math.Max(ts.lambda, 1e-9),
		}
	} else {
		e.sbnnCfg = core.SBNNConfig{
			K:                 k,
			Lambda:            ts.lambda,
			AcceptApproximate: w.Params.AcceptApproximate,
			MinCorrectness:    w.Params.MinCorrectness,
		}
	}
	// Entry-owned snapshot: the top-level slice is copied; the POI
	// slices inside alias cache storage that is immutable until a
	// conflicting flush (see core.PeerData and the conflict predicate).
	e.peers = append(e.peers[:0], peers...)
	e.baselineSampled = false
	if w.CompareBaseline && w.counted() {
		rate := w.BaselineSampleRate
		if rate <= 0 {
			rate = 0.2
		}
		e.baselineSampled = w.rng.Float64() <= rate
	}
	e.peerBytes = w.stats.PeerBytes
	e.fp = untaintedFP(e.peers)
}

// flushBatch executes and commits every pending entry, in batch order.
func (w *World) flushBatch() {
	eng := &w.eng
	if eng.n == 0 {
		return
	}
	if eng.serialAir || eng.n == 1 {
		// Serial-air: the schedule's reception-error stream is consumed by
		// both the algorithm and the baseline pricing; the legacy order is
		// [algorithm_i, baseline_i, algorithm_i+1, ...], so each entry
		// executes serially immediately before its commit. Single-entry
		// batches take the same path because the parallel plumbing can
		// neither share an MVR nor overlap work — the outputs (memo
		// counters included) are identical, without the group-planning and
		// dispatch overhead.
		for i := 0; i < eng.n; i++ {
			e := &eng.entries[i]
			w.execSerial(e)
			w.commitEntry(e)
		}
	} else {
		w.planGroups()
		w.executeBatch()
		for i := 0; i < eng.n; i++ {
			w.commitEntry(&eng.entries[i])
		}
	}
	eng.n = 0
}

// execSerial runs one entry through the classic scratch path (the
// serial-air fallback), sanitizing the result exactly like the
// parallel path does.
func (w *World) execSerial(e *tickEntry) {
	if w.Params.Kind == WindowQuery {
		res := core.SBWQScratch(&w.qs.core, e.q, e.win, e.peers, e.sbwqCfg, e.sched, e.now)
		e.res = tickResult{outcome: res.Outcome, access: res.Access,
			knownRegion: res.KnownRegion, known: res.Known, pois: res.POIs,
			merged: res.Merged, examined: res.Examined}
		return
	}
	res := core.SBNNScratch(&w.qs.core, e.q, e.peers, e.sbnnCfg, e.sched, e.now)
	e.poiBuf = append(e.poiBuf[:0], res.POIs...)
	e.res = tickResult{outcome: res.Outcome, access: res.Access,
		knownRegion: res.KnownRegion, known: res.Known, pois: e.poiBuf,
		merged: res.Merged, examined: res.Examined}
}

// planGroups partitions the batch into memo groups (identical untainted
// VR multisets) and chains consecutive groups whose multisets differ by
// a small edit. Runs serially, so the memo counters and the
// deterministic first-appearance group order cost no synchronization.
func (w *World) planGroups() {
	eng := &w.eng
	eng.nGroups = 0
	clear(eng.fpIdx)
	for i := 0; i < eng.n; i++ {
		e := &eng.entries[i]
		memo := -1
		for _, gi := range eng.fpIdx[e.fp] {
			if untaintedVRsEqual(eng.entries[eng.groups[gi].rep].peers, e.peers) {
				memo = gi
				break
			}
		}
		if memo >= 0 {
			eng.groups[memo].members = append(eng.groups[memo].members, i)
			w.stats.MVRMemoHits++
			continue
		}
		g := eng.allocGroup()
		g.rep = i
		g.members = append(g.members[:0], i)
		g.removes, g.inserts = g.removes[:0], g.inserts[:0]
		g.delta = false
		eng.fpIdx[e.fp] = append(eng.fpIdx[e.fp], eng.nGroups-1)
	}
	// Chain pass: derive group gi's MVR from group gi-1's when the edit
	// is small relative to a rebuild. The edit lists are computed here,
	// deterministically (ordered walks over the peer lists, never map
	// iteration), so the execute phase only applies them.
	for gi := 1; gi < eng.nGroups; gi++ {
		prev := &eng.groups[gi-1]
		cur := &eng.groups[gi]
		pPeers := eng.entries[prev.rep].peers
		cPeers := eng.entries[cur.rep].peers
		nPrev, nCur := untaintedCount(pPeers), untaintedCount(cPeers)
		if nPrev < 4 {
			continue // rebuilding from few members is already cheap
		}
		removes, inserts := eng.multisetDiff(pPeers, cPeers, cur.removes[:0], cur.inserts[:0])
		cur.removes, cur.inserts = removes, inserts
		if len(removes)+len(inserts) <= nCur/2 {
			cur.delta = true
			w.stats.MVRDeltaReuses++
		}
	}
}

// multisetDiff appends the edit turning prev's untainted VR multiset
// into cur's: removes (walked in prev order) and inserts (walked in cur
// order). Deterministic by construction.
func (eng *tickEngine) multisetDiff(prev, cur []core.PeerData, removes, inserts []geom.Rect) ([]geom.Rect, []geom.Rect) {
	m := eng.diff
	clear(m)
	for _, p := range cur {
		if !p.Tainted {
			m[p.VR]++
		}
	}
	for _, p := range prev {
		if !p.Tainted {
			m[p.VR]--
		}
	}
	for _, p := range prev {
		if !p.Tainted && m[p.VR] < 0 {
			removes = append(removes, p.VR)
			m[p.VR]++
		}
	}
	for _, p := range cur {
		if !p.Tainted && m[p.VR] > 0 {
			inserts = append(inserts, p.VR)
			m[p.VR]--
		}
	}
	return removes, inserts
}

// executeBatch runs every chain as one sweep cell: the chain's head
// group builds its MVR incrementally from scratch, delta groups repair
// it in place, and every member entry runs the core algorithm against
// the shared prebuilt union. Cells own all their mutable state (pooled
// scratch, pooled RectUnion, their entries' result fields), satisfying
// the sweep determinism contract.
func (w *World) executeBatch() {
	eng := &w.eng
	heads := eng.heads[:0]
	for gi := 0; gi < eng.nGroups; gi++ {
		if !eng.groups[gi].delta {
			heads = append(heads, gi)
		}
	}
	eng.heads = heads
	isWindow := w.Params.Kind == WindowQuery

	cells := make([]func() struct{}, len(heads))
	for c := range heads {
		head := heads[c]
		end := eng.nGroups
		if c+1 < len(heads) {
			end = heads[c+1]
		}
		cells[c] = func() struct{} {
			s := core.GetScratch()
			mvr := tickMVRPool.Get().(*geom.RectUnion)
			for gi := head; gi < end; gi++ {
				g := &eng.groups[gi]
				if gi == head {
					// Lazy Add: one batch decomposition build (on the first
					// algorithm query) beats N incremental repairs when
					// constructing from scratch. Delta groups below then
					// switch the union to incremental maintenance.
					mvr.Reset()
					for _, p := range eng.entries[g.rep].peers {
						if !p.Tainted {
							mvr.Add(p.VR)
						}
					}
				} else {
					// Delta group: the union now holds exactly the
					// previous group's multiset, so every remove finds
					// its member.
					for _, r := range g.removes {
						mvr.Remove(r)
					}
					for _, r := range g.inserts {
						mvr.Insert(r)
					}
				}
				for _, ei := range g.members {
					e := &eng.entries[ei]
					if isWindow {
						res := core.SBWQScratchMVR(s, mvr, true, e.q, e.win, e.peers, e.sbwqCfg, e.sched, e.now)
						e.res = tickResult{outcome: res.Outcome, access: res.Access,
							knownRegion: res.KnownRegion, known: res.Known, pois: res.POIs,
							merged: res.Merged, examined: res.Examined}
					} else {
						res := core.SBNNScratchMVR(s, mvr, true, e.q, e.peers, e.sbnnCfg, e.sched, e.now)
						e.poiBuf = append(e.poiBuf[:0], res.POIs...)
						e.res = tickResult{outcome: res.Outcome, access: res.Access,
							knownRegion: res.KnownRegion, known: res.Known, pois: e.poiBuf,
							merged: res.Merged, examined: res.Examined}
					}
				}
			}
			tickMVRPool.Put(mvr)
			core.PutScratch(s)
			return struct{}{}
		}
	}
	sweep.Run(eng.workers, cells)
}

// commitEntry replays the legacy post-algorithm tail for one entry:
// statistics, availability accounting, baseline pricing, self-checks,
// the trace event, metrics observation, and the cache insert — in the
// exact order runKNNQuery/runWindowQuery perform them.
func (w *World) commitEntry(e *tickEntry) {
	h := &w.hosts[e.idx]
	ts := &w.types[e.ti]
	res := &e.res
	isWindow := w.Params.Kind == WindowQuery
	degraded := e.sched == nil && res.outcome == core.OutcomeBroadcast

	if w.counted() {
		w.stats.Queries++
		w.stats.peersSum += int64(e.nPeers)
		switch {
		case degraded && len(res.pois) > 0:
			w.stats.Degraded++
		case degraded:
			w.stats.Unanswered++
		case res.outcome == core.OutcomeVerified:
			w.stats.Verified++
		case !isWindow && res.outcome == core.OutcomeApproximate:
			w.stats.Approximate++
		default:
			w.stats.Broadcast++
			w.stats.LatencySlots += res.access.Latency + e.spent + e.qc.chWait
			w.stats.TuningSlots += res.access.Tuning
			w.stats.PacketsRead += int64(res.access.PacketsRead)
			w.stats.PacketsSkipped += int64(res.access.PacketsSkipped)
			w.stats.Retransmissions += int64(res.access.Retransmissions)
			w.stats.IndexRetries += int64(res.access.IndexRetries)
		}
		if w.chanArmed || w.govSteering() {
			w.observeBudget(ts, res.access.Latency+e.spent+e.qc.chWait, !degraded || len(res.pois) > 0, e.shed != shedNone)
		}
		if e.baselineSampled {
			// The coin was drawn at its legacy stream position (draw
			// phase); the pricing itself is a pure schedule lookup on a
			// loss-free channel (serialAir otherwise forces this whole
			// path serial, preserving the loss-stream order).
			var acc broadcast.Access
			if isWindow {
				_, acc = ts.sched.Window(e.win, w.slotNow())
			} else {
				_, acc = ts.sched.KNN(e.q, e.k, w.slotNow())
			}
			w.stats.BaselineLatencySlots += acc.Latency
			w.stats.BaselinePackets += int64(acc.PacketsRead)
			w.stats.BaselineSampled++
		}
		if w.SelfCheck && !degraded {
			if isWindow {
				w.checkWindow(e.ti, e.win, res.pois)
			} else if res.outcome != core.OutcomeApproximate {
				w.checkKNN(e.ti, e.q, e.k, res.pois)
			}
		}
		ev := trace.Event{
			TimeSec: w.nowSec, Host: e.idx, Kind: "knn",
			Outcome: outcomeLabel(res.outcome, degraded, len(res.pois)), Peers: e.nPeers,
			LatencySlots: res.access.Latency, TuningSlots: res.access.Tuning,
			PacketsRead: res.access.PacketsRead, PacketsSkipped: res.access.PacketsSkipped,
			Audits: e.trep.Audits, AuditFailures: e.trep.AuditFailures,
			Conflicts: e.trep.Conflicts, AuditSlots: e.trep.AuditSlots,
			TaintedPeers: e.trep.Tainted,
			IRSlots:      e.irSlots, StaleConflicts: e.trep.StaleConflicts,
			Mode: e.qc.mode.String(), WaitSlots: e.qc.chWait,
		}
		if isWindow {
			ev.Kind = "window"
		} else {
			ev.K = e.k
		}
		ev.StaleBoundSec = w.staleBound(e.qc.mode, e.minBorn)
		ev.Shed, ev.Coalesced = e.shed.String(), e.coalesced
		if w.mx != nil {
			w.net.ObserveFanout(e.nPeers)
			w.mx.observeQuery(res.outcome, e.collected, e.trep.AuditSlots+e.irSlots, res.access,
				res.merged, res.examined, res.knownRegion, e.peerBytes)
			w.mx.observeTrust(e.trep)
			w.mx.observeChannel(e.qc, degraded, len(res.pois) == 0)
			w.mx.spanFields(&ev.SpanP2PSlots, &ev.SpanMergeWork,
				&ev.SpanVerifyWork, &ev.SpanTuneSlots, &ev.SpanDownloadSlots)
		}
		w.record(ev)
	}

	if !res.knownRegion.Empty() {
		reg := cache.Region{Rect: res.knownRegion, POIs: res.known}
		if w.cons != nil {
			reg.Epoch = w.cons.types[e.ti].epoch
		}
		h.caches[e.ti].Insert(reg, e.q, h.mob.Heading(), int64(w.nowSec))
	}
}

// untaintedFP is an FNV-1a fingerprint of the ordered untainted VR
// sequence — the memo key's fast filter (untaintedVRsEqual confirms).
func untaintedFP(peers []core.PeerData) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range peers {
		if p.Tainted {
			continue
		}
		for _, f := range [4]float64{p.VR.Min.X, p.VR.Min.Y, p.VR.Max.X, p.VR.Max.Y} {
			b := math.Float64bits(f)
			for s := uint(0); s < 64; s += 8 {
				h ^= b >> s & 0xff
				h *= prime64
			}
		}
	}
	return h
}

// untaintedVRsEqual reports whether two peer lists carry the same
// untainted VR sequence (the memo key's exact comparison; sequence
// equality implies multiset equality).
func untaintedVRsEqual(a, b []core.PeerData) bool {
	i, j := 0, 0
	for {
		for i < len(a) && a[i].Tainted {
			i++
		}
		for j < len(b) && b[j].Tainted {
			j++
		}
		if i == len(a) || j == len(b) {
			return i == len(a) && j == len(b)
		}
		if a[i].VR != b[j].VR {
			return false
		}
		i++
		j++
	}
}

// untaintedCount counts the untainted contributions of a peer list.
func untaintedCount(peers []core.PeerData) int {
	n := 0
	for _, p := range peers {
		if !p.Tainted {
			n++
		}
	}
	return n
}
