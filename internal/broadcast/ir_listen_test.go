package broadcast

import (
	"math/rand"
	"testing"
)

// TestListenIRSustainedLossBounded is the regression test for the
// unbounded replica wait: under 100% sustained loss (every IR copy lost,
// forever — a blackout or dead receiver) ListenIR must give up after
// MaxIRReplicaWaits lost copies and report the slots it spent, not spin.
func TestListenIRSustainedLossBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := mustSchedule(t, randomPOIs(rng, 40, 64), testConfig())

	calls := 0
	acc := s.ListenIR(0, func() bool {
		calls++
		if calls > 10*MaxIRReplicaWaits {
			t.Fatal("ListenIR still drawing after 10x the wait bound: unbounded spin")
		}
		return true // every copy lost
	})
	if !acc.Abandoned {
		t.Fatal("100%-loss listen must come back Abandoned")
	}
	if acc.IndexRetries != MaxIRReplicaWaits {
		t.Fatalf("IndexRetries = %d, want exactly the bound %d", acc.IndexRetries, MaxIRReplicaWaits)
	}
	if acc.Latency <= 0 || acc.Tuning <= 0 {
		t.Fatalf("abandoned listen must report slots spent, got latency=%d tuning=%d",
			acc.Latency, acc.Tuning)
	}
}

// TestListenIRRecoversBelowBound pins that a listen losing fewer copies
// than the bound still completes normally and is not marked abandoned.
func TestListenIRRecoversBelowBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := mustSchedule(t, randomPOIs(rng, 40, 64), testConfig())

	losses := MaxIRReplicaWaits - 1
	acc := s.ListenIR(0, func() bool {
		if losses > 0 {
			losses--
			return true
		}
		return false
	})
	if acc.Abandoned {
		t.Fatal("listen that eventually received the IR must not be Abandoned")
	}
	if acc.IndexRetries != MaxIRReplicaWaits-1 {
		t.Fatalf("IndexRetries = %d, want %d", acc.IndexRetries, MaxIRReplicaWaits-1)
	}
	// A clean listen is cheaper than the lossy one.
	clean := s.ListenIR(0, nil)
	if clean.Abandoned || clean.IndexRetries != 0 {
		t.Fatalf("clean listen: %+v", clean)
	}
	if clean.Tuning >= acc.Tuning || clean.Latency > acc.Latency {
		t.Fatalf("lossy listen (%+v) not costlier than clean (%+v)", acc, clean)
	}
}
