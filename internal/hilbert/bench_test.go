package hilbert

import (
	"math/rand"
	"testing"

	"lbsq/internal/geom"
)

func benchCurve(b *testing.B, order int) *Curve {
	b.Helper()
	c, err := New(order, geom.NewRect(0, 0, 20, 20))
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkD(b *testing.B) {
	c := benchCurve(b, 10)
	side := c.Side()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.D(i%side, (i*7)%side)
	}
}

func BenchmarkXY(b *testing.B) {
	c := benchCurve(b, 10)
	cells := c.Cells()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.XY(int64(i) % cells)
	}
}

func BenchmarkValueOf(b *testing.B) {
	c := benchCurve(b, 10)
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 1024)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*20, rng.Float64()*20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ValueOf(pts[i%len(pts)])
	}
}

func BenchmarkRangesOfRect(b *testing.B) {
	c := benchCurve(b, 6)
	w := geom.NewRect(4, 4, 9, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := c.RangesOfRect(w); len(got) == 0 {
			b.Fatal("no ranges")
		}
	}
}
