package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lbsq/internal/metrics"
	"lbsq/internal/trace"
)

// metricsWorld builds a small world with the observability layer on.
func metricsWorld(t *testing.T, kind QueryKind, seed int64) *World {
	t.Helper()
	p := LACity().Scaled(2).WithDuration(0.12)
	p.Kind = kind
	p.Seed = seed
	p.TimeStepSec = 10
	p.AcceptApproximate = kind == KNNQuery
	p.Metrics = true
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestMetricsOffIsNil: without the knob, the world carries no registry
// and the report carries no metrics field — the zero-knob identity
// contract's observable half.
func TestMetricsOffIsNil(t *testing.T) {
	w := smallWorld(t, KNNQuery, 7)
	if w.Metrics() != nil {
		t.Fatal("Metrics() non-nil with the knob off")
	}
	stats := w.Run()
	rep := NewReport(w.Params, stats, false, 0)
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte(`"metrics"`)) {
		t.Fatalf("metrics key leaked into a metrics-off report: %s", b)
	}
}

// TestMetricsTrajectoryIdentity: enabling the observability layer must
// not perturb the simulation — identical seeds yield identical Stats
// with the knob on and off.
func TestMetricsTrajectoryIdentity(t *testing.T) {
	for _, kind := range []QueryKind{KNNQuery, WindowQuery} {
		on := metricsWorld(t, kind, 31)
		off := smallWorld31(t, kind)
		son, soff := on.Run(), off.Run()
		if son != soff {
			t.Fatalf("%v: metrics knob perturbed the trajectory:\n%+v\nvs\n%+v",
				kind, son, soff)
		}
	}
}

// smallWorld31 mirrors metricsWorld with the knob off (smallWorld uses a
// different duration, so build the twin explicitly).
func smallWorld31(t *testing.T, kind QueryKind) *World {
	t.Helper()
	p := LACity().Scaled(2).WithDuration(0.12)
	p.Kind = kind
	p.Seed = 31
	p.TimeStepSec = 10
	p.AcceptApproximate = kind == KNNQuery
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestMetricsDeterminism: two metrics-enabled runs with identical seeds
// must publish byte-identical snapshots — every observed quantity is a
// simulated value, never wall-clock.
func TestMetricsDeterminism(t *testing.T) {
	for _, kind := range []QueryKind{KNNQuery, WindowQuery} {
		a := metricsWorld(t, kind, 33)
		b := metricsWorld(t, kind, 33)
		a.Run()
		b.Run()
		var ba, bb bytes.Buffer
		if err := a.Metrics().WriteText(&ba); err != nil {
			t.Fatal(err)
		}
		if err := b.Metrics().WriteText(&bb); err != nil {
			t.Fatal(err)
		}
		if ba.String() != bb.String() {
			t.Fatalf("%v: snapshots diverged under identical seeds", kind)
		}
		if ba.Len() == 0 {
			t.Fatalf("%v: empty exposition", kind)
		}
	}
}

// TestMetricsMatchStats: the counters and the latency histogram must
// agree exactly with the Stats the run reports — the two observability
// surfaces describe the same counted window.
func TestMetricsMatchStats(t *testing.T) {
	w := metricsWorld(t, KNNQuery, 35)
	stats := w.Run()
	snap := w.Metrics().Snapshot()

	counters := map[string]int64{
		"lbsq_queries_total":             int64(stats.Queries),
		"lbsq_queries_verified_total":    int64(stats.Verified),
		"lbsq_queries_approximate_total": int64(stats.Approximate),
		"lbsq_queries_broadcast_total":   int64(stats.Broadcast),
		"lbsq_peer_bytes_total":          stats.PeerBytes,
		"lbsq_backoff_slots_total":       stats.BackoffSlots,
	}
	for name, want := range counters {
		got, ok := snap.Counter(name)
		if !ok {
			t.Fatalf("counter %s missing from snapshot", name)
		}
		if got.Value != want {
			t.Errorf("%s = %d, want %d", name, got.Value, want)
		}
	}

	lat, ok := snap.Histogram("lbsq_query_latency_slots")
	if !ok {
		t.Fatal("latency histogram missing")
	}
	if int64(lat.Sum) != stats.LatencySlots {
		t.Errorf("latency sum = %v, want %d", lat.Sum, stats.LatencySlots)
	}
	if lat.Count != uint64(stats.Queries) {
		t.Errorf("latency count = %d, want %d", lat.Count, stats.Queries)
	}
	if stats.Queries == 0 {
		t.Fatal("run counted no queries; test world too small")
	}

	// Every phase histogram observed every counted query.
	for ph := metrics.Phase(0); ph < metrics.NumPhases; ph++ {
		name := "lbsq_phase_" + ph.String() + "_" + ph.Unit()
		h, ok := snap.Histogram(name)
		if !ok {
			t.Fatalf("phase histogram %s missing", name)
		}
		if h.Count != uint64(stats.Queries) {
			t.Errorf("%s count = %d, want %d", name, h.Count, stats.Queries)
		}
	}
}

// TestTraceSpanFields: metrics-enabled traces carry the per-phase span
// fields; metrics-off traces must not mention them at all (byte-identity
// with the seed trace format).
func TestTraceSpanFields(t *testing.T) {
	var offBuf bytes.Buffer
	off := smallWorld31(t, KNNQuery)
	off.Trace = trace.NewWriter(&offBuf)
	off.Run()
	if err := off.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(offBuf.String(), "span_") {
		t.Fatal("metrics-off trace contains span fields")
	}

	var onBuf bytes.Buffer
	on := metricsWorld(t, KNNQuery, 31)
	on.Trace = trace.NewWriter(&onBuf)
	on.Run()
	if err := on.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(onBuf.String(), "span_merge_work") {
		t.Fatal("metrics-on trace carries no span fields")
	}
	events, err := trace.Read(&onBuf)
	if err != nil {
		t.Fatal(err)
	}
	var sawWork bool
	for _, e := range events {
		if e.SpanMergeWork > 0 || e.SpanVerifyWork > 0 {
			sawWork = true
		}
		if e.Outcome != "broadcast" && (e.SpanTuneSlots != 0 || e.SpanDownloadSlots != 0) {
			t.Fatalf("peer-resolved event carries channel spans: %+v", e)
		}
	}
	if !sawWork {
		t.Fatal("no event recorded merge/verify work")
	}
}

// TestRunTickHook: the tick hook fires once per step and publishing
// snapshots from it does not perturb the run.
func TestRunTickHook(t *testing.T) {
	a := metricsWorld(t, KNNQuery, 37)
	b := metricsWorld(t, KNNQuery, 37)
	var ticks int
	sa := a.RunTick(func() {
		ticks++
		a.Metrics().Publish()
	})
	sb := b.Run()
	if ticks == 0 {
		t.Fatal("tick hook never fired")
	}
	if sa != sb {
		t.Fatalf("tick hook perturbed the run:\n%+v\nvs\n%+v", sa, sb)
	}
	if a.Metrics().Published() == nil {
		t.Fatal("no snapshot published")
	}
}
