package perf

import (
	"fmt"
	"time"

	"lbsq/internal/sim"
	"lbsq/internal/sweep"
)

// FaultCell is one cell of the fault/resilience benchmark grid: a
// symmetric request/reply loss rate, with or without the resilient
// query lifecycle (bounded retries, churn, deadlines, breakers), and
// optionally with the dynamic-POI consistency layer (UpdateRate > 0
// arms it; Discard replaces surgical reconciliation with whole-region
// discard — the ablation the churn rows compare).
type FaultCell struct {
	Loss       float64
	Resilient  bool
	UpdateRate float64
	Discard    bool
	// Burst arms the Gilbert–Elliott fading chain (deep-fade bad state
	// over the Bernoulli loss floor); Blackout the per-MH downlink
	// outage schedule; Degraded the fallback-ladder planner. The three
	// channel cells append after the legacy rows, carrying bench_schema 4.
	Burst    bool
	Blackout bool
	Degraded bool
	// Crowd arms the flash-crowd workload generator (a 10× hotspot burst
	// over the legacy rate); Governed additionally arms the full
	// overload-control stack (peer backpressure, retry budget, admission
	// buckets, load governor, coalescing). The two crowd cells append
	// after the channel rows, carrying bench_schema 6 — the
	// uncontrolled/governed pair the EXPERIMENTS.md goodput curve
	// summarizes.
	Crowd    bool
	Governed bool
}

// FaultGrid returns the standard grid `make bench` sweeps: loss rates
// {0, 0.05, 0.1, 0.2}, first with the blind retry loop of the fault
// layer, then with the full resilient lifecycle, then the two POI-churn
// cells (surgical reconciliation vs whole-discard at the same churn and
// loss), then the three channel-impairment cells (burst fading naive
// and planned, blackout planned), then the two flash-crowd cells
// (uncontrolled vs governed at the same hotspot load). The legacy cell
// order (and therefore the BENCH_faults.json row prefix) matches the
// historical shell loop, so downstream row consumers keep working;
// churn rows append carrying bench_schema 3, channel rows carrying
// bench_schema 4, crowd rows carrying bench_schema 6.
func FaultGrid() []FaultCell {
	rates := []float64{0, 0.05, 0.1, 0.2}
	cells := make([]FaultCell, 0, 2*len(rates)+7)
	for _, p := range rates {
		cells = append(cells, FaultCell{Loss: p})
	}
	for _, p := range rates {
		cells = append(cells, FaultCell{Loss: p, Resilient: true})
	}
	cells = append(cells,
		FaultCell{Loss: 0.1, Resilient: true, UpdateRate: 2},
		FaultCell{Loss: 0.1, Resilient: true, UpdateRate: 2, Discard: true})
	// Channel-impairment rows (bench_schema 4): burst fading over the
	// resilient stack without and with the fallback-ladder planner, and
	// a blackout schedule with the planner — the availability cells the
	// EXPERIMENTS.md curve summarizes.
	cells = append(cells,
		FaultCell{Loss: 0.1, Resilient: true, Burst: true},
		FaultCell{Loss: 0.1, Resilient: true, Burst: true, Degraded: true},
		FaultCell{Resilient: true, Blackout: true, Degraded: true})
	// Flash-crowd rows (bench_schema 6): the same hotspot burst over the
	// resilient stack, first uncontrolled (the metastability baseline),
	// then with the full overload-control stack.
	cells = append(cells,
		FaultCell{Loss: 0.1, Resilient: true, Crowd: true},
		FaultCell{Loss: 0.1, Resilient: true, Crowd: true, Governed: true})
	return cells
}

// Params resolves a cell into full simulation parameters at the given
// scale (the historical grid ran -side 2 -hours 0.1 on the LA set).
// The non-fault knobs replicate lbsq-sim's flag defaults so the rows
// stay value-identical to the former `go run`-per-cell shell loop.
func (c FaultCell) Params(side, hours float64) sim.Params {
	p := sim.LACity().Scaled(side).WithDuration(hours)
	p.TimeStepSec = 10
	p.Seed = 42
	p.AcceptApproximate = true
	p.SharingHops = 1
	p.POITypes = 1
	p.PrefillQueriesPerHost = 10
	p.Faults.RequestLoss = c.Loss
	p.Faults.ReplyLoss = c.Loss
	if c.Resilient {
		p.Faults.MaxRetries = 4
		p.Faults.ChurnRate = 0.1
		p.DeadlineSlots = 16
		p.BreakerThreshold = 3
		p.BreakerCooldown = 8
	}
	if c.UpdateRate > 0 {
		p.UpdateRate = c.UpdateRate
		p.IRPeriodSec = 30
		p.IRWindow = 8
		p.IRDiscard = c.Discard
		p.UseOwnCache = true // churn rows exercise the own-cache reconcile path too
	}
	if c.Burst {
		// Deep fades (total loss in the bad state) holding ~25% of slots,
		// dwells long enough to span whole collection rounds.
		p.Faults.BurstBadLoss = 1
		p.Faults.BurstBadSlots = 400
		p.Faults.BurstGoodSlots = 1200
	}
	if c.Blackout {
		// Per-MH downlink outages at a 1/3 duty cycle.
		p.Faults.BlackoutPeriodSec = 60
		p.Faults.BlackoutDurationSec = 20
	}
	p.DegradedMode = c.Degraded
	if c.Crowd {
		// A 10× hotspot burst over the legacy offered load, with the
		// default geometry (area-center disk, mid-run window).
		p.CrowdRate = p.QueryRate * 10
	}
	if c.Governed {
		// The full overload-control stack at levels sized for the grid
		// scale: small per-peer service queues, a bounded per-tick retry
		// pool, sub-query-rate admission refill, the load governor at its
		// default floor, and quarter-mile coalescing.
		p.PeerQueueCap = 2
		p.RetryBudget = 8
		p.AdmissionRate = 0.05
		p.Governed = true
		p.CoalesceRadiusMiles = 0.25
	}
	return p
}

// RunFaultGrid runs every grid cell through the sweep engine with the
// ground-truth self-check enabled and returns one Report per cell, in
// grid order. Every worker count produces identical rows apart from the
// nondeterministic wall_seconds field (each cell owns its seeded
// world). A self-check failure in any cell is returned as an error.
func RunFaultGrid(workers int, side, hours float64) ([]sim.Report, error) {
	type cellOut struct {
		rep sim.Report
		err error
	}
	outs := sweep.Map(workers, FaultGrid(), func(_ int, c FaultCell) cellOut {
		p := c.Params(side, hours)
		w, err := sim.NewWorld(p)
		if err != nil {
			return cellOut{err: fmt.Errorf("perf: fault grid cell %+v: %w", c, err)}
		}
		w.SelfCheck = true
		start := time.Now()
		stats := w.Run()
		elapsed := time.Since(start).Seconds()
		if err := w.SelfCheckErr(); err != nil {
			return cellOut{err: fmt.Errorf("perf: fault grid cell %+v self-check: %w", c, err)}
		}
		return cellOut{rep: sim.NewReport(p, stats, true, elapsed)}
	})
	reports := make([]sim.Report, 0, len(outs))
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		reports = append(reports, o.rep)
	}
	return reports, nil
}
