// Quickstart: build a broadcast server over a POI database, let one
// client populate its cache from the channel, and watch a second client
// answer its nearest-neighbor query entirely from the first client's
// shared cache — the core idea of the paper in ~60 lines.
package main

import (
	"fmt"
	"math/rand"

	"lbsq"
)

func main() {
	rng := rand.New(rand.NewSource(2007)) // the paper's vintage

	// A 20×20-mile service area with 500 POIs (think gas stations).
	area := lbsq.NewRect(0, 0, 20, 20)
	pois := make([]lbsq.POI, 500)
	for i := range pois {
		pois[i] = lbsq.POI{ID: int64(i), Pos: lbsq.Pt(rng.Float64()*20, rng.Float64()*20)}
	}
	server, err := lbsq.NewServer(area, pois, lbsq.BroadcastConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("broadcast cycle: %d data packets + (1,%d) air index = %d slots\n\n",
		len(server.Schedule().Packets()), server.Schedule().M(),
		server.Schedule().CycleLength())

	// Alice queries with no peers around: she must wait for the channel.
	alice := lbsq.NewClient(server, lbsq.Pt(10, 10), 50)
	res := alice.KNN(5, nil)
	fmt.Printf("Alice (no peers): outcome=%v, latency=%d slots, %d packets read\n",
		res.Outcome, res.Access.Latency, res.Access.PacketsRead)
	for i, p := range res.POIs {
		fmt.Printf("  %d. POI %d at %.3f mi\n", i+1, p.ID, p.Pos.Dist(alice.Pos()))
	}

	// Bob arrives nearby moments later and asks Alice's cache first.
	bob := lbsq.NewClient(server, lbsq.Pt(10.05, 9.95), 50)
	res = bob.KNN(3, alice.Share())
	fmt.Printf("\nBob (sharing with Alice): outcome=%v, latency=%d slots\n",
		res.Outcome, res.Access.Latency)
	for i, p := range res.POIs {
		fmt.Printf("  %d. POI %d at %.3f mi (verified=%v)\n",
			i+1, p.ID, p.Pos.Dist(bob.Pos()), res.Heap.Entries()[i].Verified)
	}
	fmt.Printf("\nBob's query never touched the broadcast channel: "+
		"Lemma 3.1 verified all %d answers inside the merged verified region.\n",
		res.Heap.VerifiedCount())
}
