package core

import (
	"math/rand"
	"reflect"
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// TestCoreDoesNotRetainPeerSlices pins the PeerData aliasing contract
// (see the PeerData doc comment): the query algorithms copy whatever
// they need out of the peers' POI slices during the call and never
// alias them in their results. The sim layer depends on this — it
// collects peers into a per-World scratch buffer and overwrites that
// buffer on the very next query, so any retained reference would be
// silently corrupted.
//
// The test runs each algorithm, snapshots the results, then clobbers
// every peer slice in place (simulating the next query reusing the
// collection buffer) and checks the results are untouched.
func TestCoreDoesNotRetainPeerSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := make([]broadcast.POI, 400)
	for i := range db {
		db[i] = broadcast.POI{ID: int64(i), Pos: geom.Pt(rng.Float64()*32, rng.Float64()*32)}
	}
	makePeers := func() []PeerData {
		r := rand.New(rand.NewSource(10))
		peers := make([]PeerData, 0, 16)
		for i := 0; i < 16; i++ {
			cx, cy := 10+r.Float64()*12, 10+r.Float64()*12
			vr := geom.NewRect(cx, cy, cx+4, cy+4)
			pd := PeerData{VR: vr}
			for _, p := range db {
				if vr.Contains(p.Pos) {
					pd.POIs = append(pd.POIs, p)
				}
			}
			peers = append(peers, pd)
		}
		return peers
	}
	clobber := func(peers []PeerData) {
		for i := range peers {
			for j := range peers[i].POIs {
				peers[i].POIs[j] = broadcast.POI{ID: -1, Pos: geom.Pt(-999, -999)}
			}
			peers[i].VR = geom.Rect{}
		}
	}
	snapshotPOIs := func(pois []broadcast.POI) []broadcast.POI {
		out := make([]broadcast.POI, len(pois))
		copy(out, pois)
		return out
	}

	sched, err := broadcast.NewSchedule(db, broadcast.Config{Area: geom.NewRect(0, 0, 32, 32)})
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Pt(16, 16)

	t.Run("SBNN", func(t *testing.T) {
		peers := makePeers()
		var s Scratch
		res := SBNNScratch(&s, q, peers, SBNNConfig{K: 5, Lambda: 0.5}, sched, 0)
		pois := snapshotPOIs(res.POIs)
		known := snapshotPOIs(res.Known)
		heapEntries := append([]Entry(nil), res.Heap.Entries()...)
		clobber(peers)
		if !reflect.DeepEqual(pois, res.POIs) {
			t.Fatal("SBNN result POIs alias the peer slices")
		}
		if !reflect.DeepEqual(known, res.Known) {
			t.Fatal("SBNN Known aliases the peer slices")
		}
		if !reflect.DeepEqual(heapEntries, res.Heap.Entries()) {
			t.Fatal("SBNN heap entries alias the peer slices")
		}
	})

	t.Run("SBWQ", func(t *testing.T) {
		peers := makePeers()
		var s Scratch
		w := geom.NewRect(12, 12, 20, 20)
		res := SBWQScratch(&s, q, w, peers, SBWQConfig{}, sched, 0)
		pois := snapshotPOIs(res.POIs)
		known := snapshotPOIs(res.Known)
		clobber(peers)
		if !reflect.DeepEqual(pois, res.POIs) {
			t.Fatal("SBWQ result POIs alias the peer slices")
		}
		if !reflect.DeepEqual(known, res.Known) {
			t.Fatal("SBWQ Known aliases the peer slices")
		}
	})

	t.Run("NNV", func(t *testing.T) {
		peers := makePeers()
		var s Scratch
		res := NNVScratch(&s, q, peers, 5, 0.5)
		entries := append([]Entry(nil), res.Heap.Entries()...)
		clobber(peers)
		if !reflect.DeepEqual(entries, res.Heap.Entries()) {
			t.Fatal("NNV heap entries alias the peer slices")
		}
	})
}

// TestScratchReuseMatchesFresh runs a randomized query sequence twice —
// once reusing a single Scratch, once with a fresh Scratch per query —
// and requires bit-identical results: stale scratch state must never
// leak into a later answer.
func TestScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	db := make([]broadcast.POI, 300)
	for i := range db {
		db[i] = broadcast.POI{ID: int64(i), Pos: geom.Pt(rng.Float64()*32, rng.Float64()*32)}
	}
	sched, err := broadcast.NewSchedule(db, broadcast.Config{Area: geom.NewRect(0, 0, 32, 32)})
	if err != nil {
		t.Fatal(err)
	}
	type step struct {
		q     geom.Point
		peers []PeerData
		k     int
		win   geom.Rect
	}
	steps := make([]step, 60)
	for i := range steps {
		st := step{
			q: geom.Pt(rng.Float64()*32, rng.Float64()*32),
			k: 1 + rng.Intn(8),
		}
		for p := 0; p < rng.Intn(12); p++ {
			cx, cy := rng.Float64()*28, rng.Float64()*28
			vr := geom.NewRect(cx, cy, cx+1+rng.Float64()*5, cy+1+rng.Float64()*5)
			pd := PeerData{VR: vr}
			for _, o := range db {
				if vr.Contains(o.Pos) {
					pd.POIs = append(pd.POIs, o)
				}
			}
			st.peers = append(st.peers, pd)
		}
		wx, wy := rng.Float64()*28, rng.Float64()*28
		st.win = geom.NewRect(wx, wy, wx+1+rng.Float64()*4, wy+1+rng.Float64()*4)
		steps[i] = st
	}

	var reused Scratch
	for i, st := range steps {
		cfg := SBNNConfig{K: st.k, Lambda: 0.3, AcceptApproximate: i%2 == 0, MinCorrectness: 0.5}
		a := SBNNScratch(&reused, st.q, st.peers, cfg, sched, int64(i))
		b := SBNNScratch(&Scratch{}, st.q, st.peers, cfg, sched, int64(i))
		if a.Outcome != b.Outcome || !reflect.DeepEqual(a.POIs, b.POIs) ||
			!reflect.DeepEqual(a.Known, b.Known) || a.KnownRegion != b.KnownRegion ||
			a.Access != b.Access || a.Bounds != b.Bounds {
			t.Fatalf("step %d: reused-scratch SBNN differs from fresh", i)
		}
		aw := SBWQScratch(&reused, st.q, st.win, st.peers, SBWQConfig{}, sched, int64(i))
		bw := SBWQScratch(&Scratch{}, st.q, st.win, st.peers, SBWQConfig{}, sched, int64(i))
		if aw.Outcome != bw.Outcome || !reflect.DeepEqual(aw.POIs, bw.POIs) ||
			!reflect.DeepEqual(aw.Known, bw.Known) || aw.KnownRegion != bw.KnownRegion ||
			!reflect.DeepEqual(aw.ReducedWindows, bw.ReducedWindows) ||
			aw.CoveredFraction != bw.CoveredFraction || aw.Access != bw.Access {
			t.Fatalf("step %d: reused-scratch SBWQ differs from fresh", i)
		}
	}
}
