package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestRectUnionContains(t *testing.T) {
	u := NewRectUnion(NewRect(0, 0, 2, 2), NewRect(1, 1, 3, 3))
	for _, p := range []Point{Pt(0.5, 0.5), Pt(2.5, 2.5), Pt(2, 0.5), Pt(1.5, 1.5)} {
		if !u.Contains(p) {
			t.Errorf("Contains(%v) = false", p)
		}
	}
	for _, p := range []Point{Pt(2.5, 0.5), Pt(0.5, 2.5), Pt(-1, 0)} {
		if u.Contains(p) {
			t.Errorf("Contains(%v) = true", p)
		}
	}
}

func TestRectUnionDropsDegenerate(t *testing.T) {
	u := NewRectUnion(NewRect(0, 0, 0, 5), NewRect(1, 1, 2, 2))
	if u.Len() != 1 {
		t.Fatalf("Len = %d, degenerate rect not dropped", u.Len())
	}
}

func TestRectUnionBounds(t *testing.T) {
	u := NewRectUnion(NewRect(0, 0, 1, 1), NewRect(5, -2, 6, 3))
	b, ok := u.Bounds()
	if !ok || b != NewRect(0, -2, 6, 3) {
		t.Fatalf("Bounds = %v, %v", b, ok)
	}
	if _, ok := NewRectUnion().Bounds(); ok {
		t.Error("empty union must report no bounds")
	}
}

func TestRectUnionAreaOverlap(t *testing.T) {
	// Two 2x2 squares overlapping in a 1x1 square: area = 4+4-1 = 7.
	u := NewRectUnion(NewRect(0, 0, 2, 2), NewRect(1, 1, 3, 3))
	if got := u.Area(); !almostEqual(got, 7, 1e-12) {
		t.Errorf("Area = %v want 7", got)
	}
	// Identical rects: area of one.
	u2 := NewRectUnion(NewRect(0, 0, 2, 3), NewRect(0, 0, 2, 3))
	if got := u2.Area(); !almostEqual(got, 6, 1e-12) {
		t.Errorf("Area identical = %v want 6", got)
	}
	// Disjoint rects: sum.
	u3 := NewRectUnion(NewRect(0, 0, 1, 1), NewRect(5, 5, 7, 6))
	if got := u3.Area(); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Area disjoint = %v want 3", got)
	}
}

func TestDisjointDecompositionIsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(6)
		rects := make([]Rect, n)
		for i := range rects {
			rects[i] = randomRect(rng, 5)
		}
		u := NewRectUnion(rects...)
		parts := u.Disjoint()
		// Pairwise interior-disjoint.
		for i := range parts {
			for j := i + 1; j < len(parts); j++ {
				if inter, ok := parts[i].Intersect(parts[j]); ok {
					t.Fatalf("trial %d: overlapping parts %v and %v share %v",
						trial, parts[i], parts[j], inter)
				}
			}
		}
		// Coverage agrees with membership at random probes.
		for k := 0; k < 50; k++ {
			p := randomPoint(rng, 6)
			inUnion := u.Contains(p)
			inParts := false
			for _, r := range parts {
				if r.Contains(p) {
					inParts = true
					break
				}
			}
			// Boundary-of-part points can differ from strict membership
			// only on measure-zero sets; skip points on part boundaries.
			onEdge := false
			for _, r := range parts {
				if r.Contains(p) && !r.ContainsStrict(p) {
					onEdge = true
				}
			}
			if !onEdge && inUnion != inParts {
				t.Fatalf("trial %d: probe %v union=%v parts=%v", trial, p, inUnion, inParts)
			}
		}
	}
}

func TestBoundaryDistSingleRect(t *testing.T) {
	u := NewRectUnion(NewRect(0, 0, 4, 2))
	if got := u.BoundaryDist(Pt(2, 1)); !almostEqual(got, 1, 1e-12) {
		t.Errorf("center clearance = %v want 1", got)
	}
	if got := u.BoundaryDist(Pt(6, 1)); !almostEqual(got, 2, 1e-12) {
		t.Errorf("outside distance = %v want 2", got)
	}
}

func TestBoundaryAdjacentRectsSharedEdgeInterior(t *testing.T) {
	// Two rects stacked so they share the edge y=1: the shared edge is
	// interior to the union, so clearance at the shared edge's midpoint is
	// governed by the outer boundary.
	u := NewRectUnion(NewRect(0, 0, 2, 1), NewRect(0, 1, 2, 2))
	got, ok := u.Clearance(Pt(1, 1))
	if !ok {
		t.Fatal("point on shared edge must be inside union")
	}
	if !almostEqual(got, 1, 1e-12) {
		t.Errorf("clearance at shared edge = %v want 1", got)
	}
}

func TestClearanceOutside(t *testing.T) {
	u := NewRectUnion(NewRect(0, 0, 1, 1))
	if _, ok := u.Clearance(Pt(5, 5)); ok {
		t.Error("Clearance must report ok=false outside the union")
	}
}

func TestClearanceLShape(t *testing.T) {
	// L-shape: horizontal bar [0,4]x[0,1] plus vertical bar [0,1]x[0,4].
	u := NewRectUnion(NewRect(0, 0, 4, 1), NewRect(0, 0, 1, 4))
	// Point in the inner corner region: nearest boundary is the re-entrant
	// corner at (1,1).
	p := Pt(1.5, 0.5)
	got, ok := u.Clearance(p)
	if !ok {
		t.Fatal("p must be inside")
	}
	// Candidate boundaries: y=0 (0.5), x=1 above y=1 region? The segment
	// x=1 for y in [1,4] is boundary; distance = hypot(0.5 from x.. ) =
	// distance to point (1,1) = sqrt(0.25+0.25).
	want := 0.5 // bottom edge y=0 is nearer than the corner (0.707)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("clearance = %v want %v", got, want)
	}
	// Near the top of the horizontal bar: the bar's top edge y=1 is
	// boundary for x >= 1 (only x in [0,1] is covered by the vertical bar).
	p2 := Pt(1.2, 0.8)
	got2, _ := u.Clearance(p2)
	want2 := 0.2 // vertical distance to the boundary segment y=1, x in [1,4]
	if !almostEqual(got2, want2, 1e-12) {
		t.Errorf("clearance near corner = %v want %v", got2, want2)
	}
	// A point deep inside the vertical bar sees the corner (1,1) only via
	// the vertical boundary segment x=1, y in [1,4].
	p3 := Pt(0.8, 1.4)
	got3, _ := u.Clearance(p3)
	want3 := 0.2 // horizontal distance to boundary segment x=1, y in [1,4]
	if !almostEqual(got3, want3, 1e-12) {
		t.Errorf("clearance in vertical bar = %v want %v", got3, want3)
	}
}

// Property: clearance equals a dense-sampling estimate of the distance to
// the union boundary.
func TestBoundaryDistMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		rects := make([]Rect, n)
		for i := range rects {
			rects[i] = randomRect(rng, 4)
		}
		u := NewRectUnion(rects...)
		p := randomPoint(rng, 5)
		got := u.BoundaryDist(p)

		// Reference: min distance over densely sampled boundary points.
		// Sample each rect edge densely and keep points that are NOT
		// interior to the union (tested by probing both sides).
		best := math.Inf(1)
		const steps = 400
		for _, r := range rects {
			corners := r.Corners()
			for e := 0; e < 4; e++ {
				a, b := corners[e], corners[(e+1)%4]
				for s := 0; s <= steps; s++ {
					tt := float64(s) / steps
					q := Pt(a.X+tt*(b.X-a.X), a.Y+tt*(b.Y-a.Y))
					if isBoundarySample(u, q) {
						if d := p.Dist(q); d < best {
							best = d
						}
					}
				}
			}
		}
		if math.IsInf(best, 1) {
			continue // all edges interior — cannot happen for finite unions
		}
		// The sampled estimate can only overestimate the true distance by
		// up to one sampling step.
		if got > best+1e-9 {
			t.Fatalf("trial %d: BoundaryDist=%v exceeds sampled %v (p=%v rects=%v)",
				trial, got, best, p, rects)
		}
		if best-got > 0.05 {
			t.Fatalf("trial %d: BoundaryDist=%v far below sampled %v (p=%v rects=%v)",
				trial, got, best, p, rects)
		}
	}
}

// isBoundarySample reports whether q is (approximately) on the boundary of
// the union: q is in the closed union but an epsilon-neighborhood pokes
// outside.
func isBoundarySample(u *RectUnion, q Point) bool {
	if !u.Contains(q) {
		return false
	}
	const eps = 1e-7
	for _, d := range []Point{{eps, 0}, {-eps, 0}, {0, eps}, {0, -eps},
		{eps, eps}, {eps, -eps}, {-eps, eps}, {-eps, -eps}} {
		if !u.Contains(q.Add(d)) {
			return true
		}
	}
	return false
}

func TestCoversRect(t *testing.T) {
	u := NewRectUnion(NewRect(0, 0, 2, 2), NewRect(2, 0, 4, 2))
	if !u.CoversRect(NewRect(0.5, 0.5, 3.5, 1.5)) {
		t.Error("window spanning both rects must be covered")
	}
	if u.CoversRect(NewRect(0.5, 0.5, 3.5, 2.5)) {
		t.Error("window poking above the union must not be covered")
	}
	if !u.CoversRect(NewRect(0, 0, 4, 2)) {
		t.Error("window equal to the union must be covered")
	}
}

func TestSubtractRect(t *testing.T) {
	w := NewRect(0, 0, 4, 4)
	// Cover left half: remainder is right half.
	rem := SubtractRect(w, []Rect{NewRect(0, 0, 2, 4)})
	if len(rem) != 1 || rem[0] != NewRect(2, 0, 4, 4) {
		t.Fatalf("SubtractRect half = %v", rem)
	}
	// Full cover: empty remainder.
	if rem := SubtractRect(w, []Rect{NewRect(-1, -1, 5, 5)}); len(rem) != 0 {
		t.Fatalf("SubtractRect full = %v", rem)
	}
	// No cover: the window itself.
	rem = SubtractRect(w, []Rect{NewRect(10, 10, 11, 11)})
	if len(rem) != 1 || rem[0] != w {
		t.Fatalf("SubtractRect none = %v", rem)
	}
	// Hole in the middle: four pieces around it (strip decomposition
	// yields 3 rows: bottom strip, two side pieces, top strip).
	rem = SubtractRect(w, []Rect{NewRect(1, 1, 3, 3)})
	total := 0.0
	for _, r := range rem {
		total += r.Area()
	}
	if !almostEqual(total, 16-4, 1e-12) {
		t.Fatalf("SubtractRect hole area = %v pieces=%v", total, rem)
	}
}

// Property: SubtractRect yields disjoint pieces whose area equals
// area(w) - area(w ∩ union).
func TestSubtractRectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		w := randomRect(rng, 5)
		n := rng.Intn(5)
		covers := make([]Rect, n)
		for i := range covers {
			covers[i] = randomRect(rng, 5)
		}
		rem := SubtractRect(w, covers)
		remArea := 0.0
		for i, r := range rem {
			remArea += r.Area()
			if !w.ContainsRect(r) {
				t.Fatalf("trial %d: piece %v outside window %v", trial, r, w)
			}
			for j := i + 1; j < len(rem); j++ {
				if _, ok := r.Intersect(rem[j]); ok {
					t.Fatalf("trial %d: overlapping pieces", trial)
				}
			}
		}
		u := NewRectUnion(covers...)
		want := w.Area() - u.IntersectRectArea(w)
		if !almostEqual(remArea, want, 1e-9) {
			t.Fatalf("trial %d: remainder area %v want %v", trial, remArea, want)
		}
	}
}

func TestIntersectRectArea(t *testing.T) {
	u := NewRectUnion(NewRect(0, 0, 2, 2), NewRect(1, 1, 3, 3))
	if got := u.IntersectRectArea(NewRect(0, 0, 3, 3)); !almostEqual(got, 7, 1e-12) {
		t.Errorf("full overlap area = %v want 7", got)
	}
	if got := u.IntersectRectArea(NewRect(10, 10, 11, 11)); got != 0 {
		t.Errorf("disjoint area = %v want 0", got)
	}
	if got := u.IntersectRectArea(NewRect(0, 0, 1, 1)); !almostEqual(got, 1, 1e-12) {
		t.Errorf("sub-rect area = %v want 1", got)
	}
}

func TestUnverifiedAreaFullyCovered(t *testing.T) {
	// Disk entirely inside the union: unverified area must be ~0.
	u := NewRectUnion(NewRect(-10, -10, 10, 10))
	if got := u.UnverifiedArea(Pt(0, 0), 2); !almostEqual(got, 0, 1e-9) {
		t.Errorf("covered disk unverified area = %v", got)
	}
	// Empty union: unverified area is the whole disk.
	empty := NewRectUnion()
	want := math.Pi * 4
	if got := empty.UnverifiedArea(Pt(0, 0), 2); !almostEqual(got, want, 1e-9) {
		t.Errorf("uncovered disk area = %v want %v", got, want)
	}
}

func TestSubtractIntervals(t *testing.T) {
	base := interval{0, 10}
	cases := []struct {
		cov  []interval
		want []interval
	}{
		{nil, []interval{{0, 10}}},
		{[]interval{{2, 4}}, []interval{{0, 2}, {4, 10}}},
		{[]interval{{-5, 15}}, nil},
		{[]interval{{0, 5}, {5, 10}}, nil},
		{[]interval{{8, 20}, {-3, 1}}, []interval{{1, 8}}},
		{[]interval{{3, 4}, {1, 2}}, []interval{{0, 1}, {2, 3}, {4, 10}}},
	}
	for i, c := range cases {
		got := subtractIntervals(base, append([]interval(nil), c.cov...))
		if len(got) != len(c.want) {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
			continue
		}
		for j := range got {
			if !almostEqual(got[j].a, c.want[j].a, 1e-12) ||
				!almostEqual(got[j].b, c.want[j].b, 1e-12) {
				t.Errorf("case %d: got %v want %v", i, got, c.want)
			}
		}
	}
}

func TestDedupSorted(t *testing.T) {
	got := dedupSorted([]float64{3, 1, 2, 1, 3, 3})
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("dedupSorted = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("dedupSorted = %v", got)
		}
	}
}
