package core

import (
	"sync"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// scratchPool recycles Scratch values across cold-start queries: the
// convenience entry points (NNV, SBNN, SBWQ) and the parallel tick
// engine's workers draw from it instead of allocating a fresh Scratch
// per query, so the cold path converges to the warm path's allocation
// profile once the pool holds grown buffers.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a Scratch from the pool (possibly with warm, grown
// buffers). Results of the *Scratch functions alias the Scratch they
// ran on — callers must finish consuming (or copying) a result before
// returning its Scratch with PutScratch.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch to the pool. The caller must not use the
// Scratch, or any result aliasing it, afterwards.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// cloneHeap copies a heap so the result survives its scratch. An empty
// heap clones to nil entries, matching what a fresh Scratch produces.
func cloneHeap(h *Heap) *Heap {
	out := &Heap{k: h.k}
	if len(h.entries) > 0 {
		out.entries = make([]Entry, len(h.entries))
		copy(out.entries, h.entries)
	}
	return out
}

// clonePOIs copies a POI slice, mapping empty to nil (what the
// fresh-Scratch paths historically returned).
func clonePOIs(pois []broadcast.POI) []broadcast.POI {
	if len(pois) == 0 {
		return nil
	}
	out := make([]broadcast.POI, len(pois))
	copy(out, pois)
	return out
}

// cloneMVR copies the union's members into a caller-owned RectUnion;
// derived caches rebuild lazily and answer identically.
func cloneMVR(u *geom.RectUnion) *geom.RectUnion {
	out := new(geom.RectUnion)
	out.CopyFrom(u)
	return out
}
