package svgplot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func demoChart() Chart {
	return Chart{
		Title:  "Demo <figure> & more",
		XLabel: "x axis",
		YLabel: "y axis",
		FixedY: true, YMin: 0, YMax: 100,
		Series: []Series{
			{Name: "alpha", X: []float64{0, 1, 2, 3}, Y: []float64{10, 40, 60, 90}},
			{Name: "beta", X: []float64{0, 1, 2, 3}, Y: []float64{90, 60, 30, 5}},
		},
	}
}

func TestWriteSVGWellFormedXML(t *testing.T) {
	var buf bytes.Buffer
	if err := demoChart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
}

func TestWriteSVGContent(t *testing.T) {
	var buf bytes.Buffer
	if err := demoChart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("expected 2 polylines, got %d", strings.Count(out, "<polyline"))
	}
	if strings.Count(out, "<circle") != 8 {
		t.Errorf("expected 8 markers, got %d", strings.Count(out, "<circle"))
	}
	for _, want := range []string{"alpha", "beta", "x axis", "y axis"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Title characters are escaped.
	if strings.Contains(out, "<figure>") {
		t.Error("unescaped markup in title")
	}
	if !strings.Contains(out, "&lt;figure&gt; &amp; more") {
		t.Error("escaped title missing")
	}
}

func TestWriteSVGDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := demoChart().WriteSVG(&a); err != nil {
		t.Fatal(err)
	}
	if err := demoChart().WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("rendering not deterministic")
	}
}

func TestWriteSVGValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := (Chart{Title: "empty"}).WriteSVG(&buf); err == nil {
		t.Error("chart without series accepted")
	}
	bad := Chart{Series: []Series{{Name: "bad", X: []float64{1, 2}, Y: []float64{1}}}}
	if err := bad.WriteSVG(&buf); err == nil {
		t.Error("mismatched series lengths accepted")
	}
	empty := Chart{Series: []Series{{Name: "none"}}}
	if err := empty.WriteSVG(&buf); err == nil {
		t.Error("empty series accepted")
	}
}

func TestWriteSVGDegenerateRanges(t *testing.T) {
	// Single point and constant series must not divide by zero.
	c := Chart{
		Series: []Series{
			{Name: "point", X: []float64{5}, Y: []float64{5}},
			{Name: "flat", X: []float64{5, 6}, Y: []float64{5, 5}},
		},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") || strings.Contains(buf.String(), "Inf") {
		t.Error("degenerate range produced non-finite coordinates")
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(5) != "5" || formatTick(5.25) != "5.2" || formatTick(-3) != "-3" {
		t.Error("tick formatting wrong")
	}
}

func TestClampedValuesStayInCanvas(t *testing.T) {
	c := Chart{
		FixedY: true, YMin: 0, YMax: 10,
		Series: []Series{{Name: "wild", X: []float64{0, 1}, Y: []float64{-50, 500}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
}
