package sim

// Continuous moving queries (DESIGN.md §15): standing kNN / window
// subscriptions registered by moving hosts and maintained incrementally
// across ticks. Each subscription carries a safe-exit radius derived
// from the merged-verified-region boundary and the result-flip
// boundaries of its last exact answer (internal/core SafeExitKNN /
// SafeExitWindow): while the host has moved less than that radius and
// nothing taints the answer, the standing result is provably still
// exact and the tick costs no channel time at all (SafeRegionHits).
// Crossing the radius, an epoch advance, a TTL expiry, or an inexact
// previous answer forces a full re-verification — the same
// channel-assessment / peer-collection / trust-screen / core-algorithm
// path a one-shot query runs, priced identically, but drawing nothing
// from the world stream.
//
// Determinism contract: registrations draw only from the dedicated
// contSeedSalt stream, and maintenance draws nothing (each
// subscription's k or window shape is fixed at registration), so the
// world stream w.rng is untouched whether the knob is armed or not.
// With ContinuousRate zero the layer is a nil pointer: zero draws, zero
// branches, zero counters — outputs stay bit-identical to the
// pre-continuous build. The whole phase runs serially before the
// Poisson query loop, so batched ticks (TickWorkers > 1) stay
// byte-identical too.

import (
	"math"
	"math/rand"

	"lbsq/internal/broadcast"
	"lbsq/internal/cache"
	"lbsq/internal/core"
	"lbsq/internal/geom"
	"lbsq/internal/mobility"
	"lbsq/internal/trace"
)

// contReason classifies why a subscription re-verified this tick. The
// priority order (unverified > naive > taint > exit) matches the
// maintenance dispatch in maintainSubscription, so the four Stats
// counters partition Reverifies exactly.
type contReason int

const (
	// contUnverified: the previous answer was not exact (degraded rung or
	// Lemma 3.2 probabilistic tail) — it carries no safe region and must
	// re-verify every tick until an exact answer lands.
	contUnverified contReason = iota
	// contNaive: the ContinuousNaive baseline re-verifies unconditionally,
	// ignoring the safe region (the comparison arm of the experiments).
	contNaive
	// contTaint: an invalidation report advanced the data-type epoch past
	// the answer's, or the answer outlived the VR TTL.
	contTaint
	// contExit: the host moved at least the safe-exit radius from the
	// position the answer was verified at.
	contExit
)

// subscription is one standing query: the registered shape (k for kNN,
// side/offset for windows — fixed for the subscription's lifetime), the
// last committed answer, and the safe-region state that decides whether
// the next tick is a hit or a re-verification.
type subscription struct {
	id   int // stable 1-based id, for traces
	host int
	ti   int

	k    int        // kNN cardinality (kNN worlds)
	side float64    // window side in miles (window worlds)
	off  geom.Point // window-center offset from the host position

	// answer is the last committed result set (owned by the
	// subscription, copied out of the core scratch at commit).
	answer []broadcast.POI
	// exact reports whether answer is provably correct (Verified, or
	// channel-resolved Broadcast). Inexact answers are the Lemma 3.2
	// probabilistic fallback: no safe region, re-verify next tick.
	exact bool
	// safeR is the safe-exit radius around anchor: while the host stays
	// strictly inside it and nothing taints the answer, the standing
	// result set is provably unchanged. Zero forces re-verification.
	safeR  float64
	anchor geom.Point
	// epoch is the data-type epoch the answer was verified against, and
	// bornSec the simulated time of the last re-verification (TTL taint).
	epoch   int64
	bornSec float64
}

// contState is the continuous-query layer: the subscription registry
// and the dedicated registration stream.
type contState struct {
	rng  *rand.Rand
	subs []subscription
	// candBuf stages the flattened untainted peer candidates handed to
	// the safe-exit computation, reused across re-verifications.
	candBuf []broadcast.POI
}

func newContState(p Params) *contState {
	return &contState{rng: rand.New(rand.NewSource(p.Seed ^ contSeedSalt))}
}

// advanceContinuous is the per-tick continuous phase: Poisson-distributed
// new registrations from the dedicated stream, then one maintenance pass
// over every standing subscription in registration order. A nil layer
// (knob off) returns immediately.
func (w *World) advanceContinuous(dt float64) {
	c := w.cont
	if c == nil {
		return
	}
	mean := w.Params.ContinuousRate / 60 * dt
	n := mobility.Poisson(c.rng, mean)
	for i := 0; i < n; i++ {
		w.registerSubscription()
	}
	for si := range c.subs {
		w.maintainSubscription(&c.subs[si])
	}
}

// registerSubscription draws one new standing query from the continuous
// stream: the subscribing host, its data type, and the query shape —
// sampled with the same distributions the one-shot path uses (drawK /
// drawWindow), but from the dedicated rng so the world stream never
// moves. The subscription starts inexact, so its first maintenance pass
// runs the initial full verification.
func (w *World) registerSubscription() {
	c := w.cont
	idx := c.rng.Intn(len(w.hosts))
	ti := c.rng.Intn(len(w.types))
	s := subscription{id: len(c.subs) + 1, host: idx, ti: ti}
	if w.Params.Kind == WindowQuery {
		side := w.Params.WindowSideMiles() * (0.5 + c.rng.Float64())
		if side <= 0 {
			return
		}
		dist := math.Abs(c.rng.NormFloat64()*w.Params.WindowDistMiles/3 +
			w.Params.WindowDistMiles)
		angle := c.rng.Float64() * 2 * math.Pi
		s.side = side
		s.off = geom.Pt(math.Cos(angle)*dist, math.Sin(angle)*dist)
	} else {
		k := mobility.Poisson(c.rng, float64(w.Params.K))
		if k < 1 {
			k = 1
		}
		s.k = k
	}
	c.subs = append(c.subs, s)
	if w.counted() {
		w.stats.Subscriptions++
	}
	w.mx.observeSubscription()
}

// contTainted reports whether the subscription's standing answer has
// been invalidated by the consistency layer: the data-type epoch moved
// past the answer's, or the answer outlived the verified-region TTL.
func (w *World) contTainted(s *subscription) bool {
	if w.cons != nil && w.cons.types[s.ti].epoch > s.epoch {
		return true
	}
	if ttl := w.Params.VRTTLSec; ttl > 0 && w.nowSec-s.bornSec > ttl {
		return true
	}
	return false
}

// maintainSubscription runs one tick of one subscription: classify the
// standing answer (reason priority: unverified > naive > taint > exit),
// then either take the safe-region hit — re-rank the standing set
// around the new position, zero channel cost — or run the full
// re-verification.
func (w *World) maintainSubscription(s *subscription) {
	pos := w.hosts[s.host].mob.Pos
	var reason contReason
	switch {
	case !s.exact:
		reason = contUnverified
	case w.Params.ContinuousNaive:
		reason = contNaive
	case w.contTainted(s):
		reason = contTaint
	case pos.Dist(s.anchor) >= s.safeR:
		reason = contExit
	default:
		// Safe-region hit: the host is strictly inside the safe-exit
		// radius and nothing tainted the answer, so the standing set is
		// provably the exact result at the new position. kNN sets may
		// permute internally as the host moves — re-rank by the current
		// distance; window sets are order-free.
		if w.Params.Kind != WindowQuery {
			core.SortByDist(s.answer, pos)
		}
		if w.counted() {
			w.stats.SafeRegionHits++
			if w.SelfCheck {
				if w.Params.Kind == WindowQuery {
					w.checkWindow(s.ti, geom.RectAround(pos.Add(s.off), s.side/2), s.answer)
				} else {
					w.checkKNN(s.ti, pos, s.k, s.answer)
				}
			}
		}
		w.mx.observeContinuous(false, 0)
		return
	}
	if w.Params.Kind == WindowQuery {
		w.reverifyWindow(s, reason)
	} else {
		w.reverifyKNN(s, reason)
	}
}

// contCommit writes one re-verification's outcome into the subscription
// and the run counters, and emits the trace event. answer is copied out
// of the core scratch, so the subscription owns its set across ticks.
func (w *World) contCommit(s *subscription, reason contReason, answer []broadcast.POI,
	exact bool, safeR float64, slots int64, ev trace.Event) {
	s.answer = append(s.answer[:0], answer...)
	s.exact = exact
	s.safeR = safeR
	s.anchor = w.hosts[s.host].mob.Pos
	s.bornSec = w.nowSec
	if w.cons != nil {
		s.epoch = w.cons.types[s.ti].epoch
	}
	if w.counted() {
		w.stats.Reverifies++
		switch reason {
		case contUnverified:
			w.stats.ReverifyUnverified++
		case contNaive:
			w.stats.ReverifyNaive++
		case contTaint:
			w.stats.ReverifyTaints++
		case contExit:
			w.stats.ReverifyExits++
		}
		if !exact {
			w.stats.ContDegraded++
		}
		w.stats.ContSlots += slots
		ev.TimeSec = w.nowSec
		ev.Host = s.host
		ev.SafeRadiusMiles = safeR
		ev.Subscription = s.id
		w.record(ev)
	}
	w.mx.observeContinuous(true, slots)
}

// reverifyKNN runs a full kNN re-verification for one subscription: the
// one-shot runKNNQuery pipeline (channel assessment, IR sync, peer
// collection, trust screen, SBNN) with the subscription's fixed k, plus
// the safe-exit radius computation over the new answer. It draws
// nothing from the world stream and counts toward the continuous
// counters, never Stats.Queries.
func (w *World) reverifyKNN(s *subscription, reason contReason) {
	// Standing subscriptions are priority traffic under overload: their
	// retries bypass the retry budget and they are never admission-denied
	// or governor-shed (the one-shot gates live outside this path, but
	// the exemption also covers the retry-budget hook inside the
	// collection). Peer-side BUSY backpressure still applies — a
	// saturated peer cannot tell subscribers from one-shots.
	w.overloadExempt(true)
	defer w.overloadExempt(false)
	h := &w.hosts[s.host]
	ts := &w.types[s.ti]
	q := h.mob.Pos
	relevance := geom.RectAround(q, w.knnRelevanceRadius(s.ti, s.k))
	qc := w.assessChannel(s.host)
	irSlots := w.syncIR(s.host, s.ti)
	var (
		peers     []core.PeerData
		nPeers    int
		collected int64
	)
	switch qc.mode {
	case modeFull, modeP2POnly:
		peers, nPeers, collected = w.gatherPeers(s.host, s.ti, relevance)
	default:
		peers, _ = w.collectOwnCacheOnly(s.host, s.ti, relevance, qc.mode == modeOwnCache)
	}
	collected += qc.switchCost()
	peers, spent, trep := w.trustScreen(s.ti, peers, collected+irSlots, qc.bcastUp)

	sched := ts.sched
	if qc.mode == modeP2POnly || qc.mode == modeOwnCache {
		sched = nil
	}
	cfg := core.SBNNConfig{
		K:                 s.k,
		Lambda:            ts.lambda,
		AcceptApproximate: w.Params.AcceptApproximate,
		MinCorrectness:    w.Params.MinCorrectness,
	}
	res := core.SBNNScratch(&w.qs.core, q, peers, cfg, sched, w.slotNow()+spent+qc.chWait)
	degraded := sched == nil && res.Outcome == core.OutcomeBroadcast
	// Exact means provably correct: a verified answer, or a
	// channel-resolved one (SBNN's POIs are exact for OutcomeBroadcast
	// with a live schedule). Approximate and degraded answers are the
	// Lemma 3.2 probabilistic path — no safe region, re-verify next tick.
	exact := !degraded && res.Outcome != core.OutcomeApproximate

	var safeR float64
	if exact {
		// Complete-knowledge clearance around q: distance to the MVR
		// boundary for peer-verified answers, to the known-region boundary
		// for channel-resolved ones. Inside that disk the candidate list
		// is the whole database, so the safe-exit bound is sound.
		var clearance float64
		if res.Outcome == core.OutcomeVerified {
			if cl, ok := res.MVR.Clearance(q); ok {
				clearance = cl
			}
		} else if res.KnownRegion.Contains(q) {
			clearance = res.KnownRegion.BoundaryDist(q)
		}
		safeR = core.SafeExitKNN(q, res.POIs, w.contCandidates(peers, res.Known,
			res.Outcome == core.OutcomeVerified), clearance)
	}

	slots := res.Access.Latency + spent + qc.chWait
	if w.counted() && w.SelfCheck && exact {
		w.checkKNN(s.ti, q, s.k, res.POIs)
	}
	ev := trace.Event{
		Kind:    "cont-knn",
		Outcome: outcomeLabel(res.Outcome, degraded, len(res.POIs)),
		K:       s.k, Peers: nPeers,
		LatencySlots: res.Access.Latency, TuningSlots: res.Access.Tuning,
		PacketsRead: res.Access.PacketsRead, PacketsSkipped: res.Access.PacketsSkipped,
		Audits: trep.Audits, AuditFailures: trep.AuditFailures,
		Conflicts: trep.Conflicts, AuditSlots: trep.AuditSlots,
		TaintedPeers: trep.Tainted,
		IRSlots:      irSlots, StaleConflicts: trep.StaleConflicts,
		Mode: qc.mode.String(), WaitSlots: qc.chWait,
	}
	w.contCommit(s, reason, res.POIs, exact, safeR, slots, ev)

	// The re-verification earns the same cacheable verified knowledge a
	// one-shot query does.
	if !res.KnownRegion.Empty() {
		reg := cache.Region{Rect: res.KnownRegion, POIs: res.Known}
		if w.cons != nil {
			reg.Epoch = w.cons.types[s.ti].epoch
		}
		h.caches[s.ti].Insert(reg, q, h.mob.Heading(), int64(w.nowSec))
	}
}

// reverifyWindow is reverifyKNN's window counterpart: the one-shot
// runWindowQuery pipeline over the subscription's translated window,
// plus the window safe-exit radius (cover clearance vs candidate
// boundary distances, capped by the service-area margin so the
// translated window never escapes the map inside the safe region).
func (w *World) reverifyWindow(s *subscription, reason contReason) {
	// Priority traffic: same overload exemption as reverifyKNN.
	w.overloadExempt(true)
	defer w.overloadExempt(false)
	h := &w.hosts[s.host]
	ts := &w.types[s.ti]
	q := h.mob.Pos
	raw := geom.RectAround(q.Add(s.off), s.side/2)
	// areaMargin > 0 means the translated window sits strictly inside the
	// service area: the safe-exit radius is additionally capped by it, so
	// every position inside the safe region keeps the window on the map.
	// Otherwise the window is clipped for this answer and the safe region
	// collapses (re-verify next tick).
	areaMargin := w.area.InnerGap(raw)
	win := raw
	if areaMargin <= 0 {
		clipped, ok := raw.Intersect(w.area)
		if !ok {
			// The window drifted entirely off the map: an empty inexact
			// answer, re-checked next tick, with no channel work to price.
			w.contCommit(s, reason, nil, false, 0, 0, trace.Event{
				Kind: "cont-window", Outcome: "unanswered"})
			return
		}
		win = clipped
	}

	qc := w.assessChannel(s.host)
	irSlots := w.syncIR(s.host, s.ti)
	var (
		peers     []core.PeerData
		nPeers    int
		collected int64
	)
	switch qc.mode {
	case modeFull, modeP2POnly:
		peers, nPeers, collected = w.gatherPeers(s.host, s.ti, win)
	default:
		peers, _ = w.collectOwnCacheOnly(s.host, s.ti, win, qc.mode == modeOwnCache)
	}
	collected += qc.switchCost()
	peers, spent, trep := w.trustScreen(s.ti, peers, collected+irSlots, qc.bcastUp)

	sched := ts.sched
	if qc.mode == modeP2POnly || qc.mode == modeOwnCache {
		sched = nil
	}
	cfg := core.SBWQConfig{
		MaxKnownArea: 1.5 * float64(w.Params.CacheSize) / math.Max(ts.lambda, 1e-9),
	}
	res := core.SBWQScratch(&w.qs.core, q, win, peers, cfg, sched, w.slotNow()+spent+qc.chWait)
	degraded := sched == nil && res.Outcome == core.OutcomeBroadcast
	exact := !degraded

	var safeR float64
	if exact && areaMargin > 0 {
		// coverClearance: how far the window can translate while staying
		// inside complete knowledge — the MVR for covered windows, the
		// known region for channel-resolved ones. Within that envelope the
		// candidate list is the whole database near the window, so the
		// boundary-distance bound is sound.
		var cover float64
		covered := false
		if res.Outcome == core.OutcomeVerified {
			cover, covered = res.MVR.ClearanceRect(win)
		} else if res.KnownRegion.ContainsRect(win) {
			cover, covered = res.KnownRegion.InnerGap(win), true
		}
		if covered {
			safeR = core.SafeExitWindow(win, w.contCandidates(peers, res.Known,
				res.Outcome == core.OutcomeVerified), cover)
			safeR = math.Min(safeR, areaMargin)
		}
	}

	slots := res.Access.Latency + spent + qc.chWait
	if w.counted() && w.SelfCheck && exact {
		w.checkWindow(s.ti, win, res.POIs)
	}
	ev := trace.Event{
		Kind:         "cont-window",
		Outcome:      outcomeLabel(res.Outcome, degraded, len(res.POIs)),
		Peers:        nPeers,
		LatencySlots: res.Access.Latency, TuningSlots: res.Access.Tuning,
		PacketsRead: res.Access.PacketsRead, PacketsSkipped: res.Access.PacketsSkipped,
		Audits: trep.Audits, AuditFailures: trep.AuditFailures,
		Conflicts: trep.Conflicts, AuditSlots: trep.AuditSlots,
		TaintedPeers: trep.Tainted,
		IRSlots:      irSlots, StaleConflicts: trep.StaleConflicts,
		Mode: qc.mode.String(), WaitSlots: qc.chWait,
	}
	w.contCommit(s, reason, res.POIs, exact, safeR, slots, ev)

	if !res.KnownRegion.Empty() {
		reg := cache.Region{Rect: res.KnownRegion, POIs: res.Known}
		if w.cons != nil {
			reg.Epoch = w.cons.types[s.ti].epoch
		}
		h.caches[s.ti].Insert(reg, q, h.mob.Heading(), int64(w.nowSec))
	}
}

// contCandidates returns the candidate POI set the safe-exit bounds
// range over. For a peer-verified answer that is the flattened POI
// lists of every untainted contribution — complete within the MVR, the
// region the clearance disk/envelope is confined to. For a
// channel-resolved answer the known-region POIs are already complete
// within the clearance envelope. Duplicates are harmless (the bounds
// take minima) and the staging buffer is reused across
// re-verifications.
func (w *World) contCandidates(peers []core.PeerData, known []broadcast.POI, verified bool) []broadcast.POI {
	if !verified {
		return known
	}
	buf := w.cont.candBuf[:0]
	for _, pd := range peers {
		if pd.Tainted {
			continue
		}
		buf = append(buf, pd.POIs...)
	}
	w.cont.candBuf = buf
	return buf
}
