package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"lbsq/internal/broadcast"
	"lbsq/internal/core"
	"lbsq/internal/geom"
	"lbsq/internal/sim"
)

// OrderingRow is one cell of the broadcast-ordering ablation.
type OrderingRow struct {
	Ordering broadcast.Ordering
	// CycleSlots is the broadcast cycle length.
	CycleSlots int64
	// MeanKNNPackets / MeanWindowPackets are the mean data packets an
	// on-air query must download under the ordering.
	MeanKNNPackets    float64
	MeanWindowPackets float64
	// MeanKNNLatency is the mean on-air kNN access latency in slots.
	MeanKNNLatency float64
}

// OrderingAblation compares Hilbert, Morton, and row-major broadcast
// orderings on the LA City database: the locality argument (Jagadish,
// cited in Section 2.1) for choosing the Hilbert curve.
func OrderingAblation(o Options) []OrderingRow {
	o.applyDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	base := sim.LACity()
	area := base.Area()
	pois := make([]broadcast.POI, base.POINumber)
	for i := range pois {
		pois[i] = broadcast.POI{
			ID:  int64(i),
			Pos: geom.Pt(rng.Float64()*base.AreaMiles, rng.Float64()*base.AreaMiles),
		}
	}
	winSide := base.WindowSideMiles()

	var rows []OrderingRow
	for _, ord := range []broadcast.Ordering{
		broadcast.OrderingHilbert, broadcast.OrderingMorton, broadcast.OrderingRowMajor,
	} {
		sched, err := broadcast.NewSchedule(pois, broadcast.Config{
			Area: area, Ordering: ord,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		probe := rand.New(rand.NewSource(o.Seed + 1))
		const trials = 200
		var knnPk, winPk, knnLat float64
		for i := 0; i < trials; i++ {
			q := geom.Pt(probe.Float64()*base.AreaMiles, probe.Float64()*base.AreaMiles)
			_, acc := sched.KNN(q, base.K, int64(i)*37)
			knnPk += float64(acc.PacketsRead)
			knnLat += float64(acc.Latency)
			c := geom.Pt(probe.Float64()*(base.AreaMiles-winSide), probe.Float64()*(base.AreaMiles-winSide))
			w := geom.Rect{Min: c, Max: c.Add(geom.Pt(winSide, winSide))}
			_, wacc := sched.Window(w, int64(i)*53)
			winPk += float64(wacc.PacketsRead)
		}
		rows = append(rows, OrderingRow{
			Ordering:          ord,
			CycleSlots:        sched.CycleLength(),
			MeanKNNPackets:    knnPk / trials,
			MeanWindowPackets: winPk / trials,
			MeanKNNLatency:    knnLat / trials,
		})
	}
	return rows
}

// WriteOrdering renders the ordering ablation table.
func WriteOrdering(w io.Writer, rows []OrderingRow) {
	fmt.Fprintf(w, "Ablation: broadcast cell ordering (LA City database, on-air queries)\n")
	fmt.Fprintf(w, "  %-10s %8s %12s %12s %14s\n",
		"ordering", "cycle", "kNN pkts", "window pkts", "kNN latency")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %8d %12.2f %12.2f %14.1f\n",
			r.Ordering, r.CycleSlots, r.MeanKNNPackets, r.MeanWindowPackets,
			r.MeanKNNLatency)
	}
}

// CalibrationBin is one bucket of the Lemma 3.2 calibration study:
// unverified candidates whose predicted correctness fell in
// [Lo, Hi) and how often they were actually correct.
type CalibrationBin struct {
	Lo, Hi float64
	// Count is the number of unverified candidates in the bucket.
	Count int
	// MeanPredicted is the average predicted correctness probability.
	MeanPredicted float64
	// Observed is the empirical fraction that truly held their rank.
	Observed float64
}

// CorrectnessCalibration validates Lemma 3.2 empirically: generate many
// NNV situations over a Poisson POI field, collect every unverified heap
// entry with its predicted correctness probability, check against ground
// truth whether the entry truly was the NN of its rank, and bucket by
// predicted probability. A calibrated model puts the observed frequency
// close to the predicted mean in every bucket.
//
// clustered switches the POI field from Poisson (the lemma's assumption)
// to a clustered Gaussian-mixture field, quantifying how miscalibrated
// the probabilities become when the assumption is violated.
func CorrectnessCalibration(o Options, clustered bool, trials int) []CalibrationBin {
	o.applyDefaults()
	if trials <= 0 {
		trials = 4000
	}
	rng := rand.New(rand.NewSource(o.Seed))
	const areaSide = 20.0
	const n = 600
	lambda := float64(n) / (areaSide * areaSide)

	edges := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0000001}
	sums := make([]float64, len(edges)-1)
	hits := make([]int, len(edges)-1)
	counts := make([]int, len(edges)-1)

	for trial := 0; trial < trials; trial++ {
		db := samplePOIField(rng, n, areaSide, clustered)
		// One random sound peer region plus a query point near it.
		cx, cy := rng.Float64()*(areaSide-6), rng.Float64()*(areaSide-6)
		vr := geom.NewRect(cx, cy, cx+2+rng.Float64()*4, cy+2+rng.Float64()*4)
		pd := core.PeerData{VR: vr}
		for _, p := range db {
			if vr.Contains(p.Pos) {
				pd.POIs = append(pd.POIs, p)
			}
		}
		q := geom.Pt(
			vr.Min.X+rng.Float64()*vr.Width(),
			vr.Min.Y+rng.Float64()*vr.Height(),
		)
		k := 2 + rng.Intn(6)
		res := core.NNV(q, []core.PeerData{pd}, k, lambda)

		truth := append([]broadcast.POI(nil), db...)
		sort.Slice(truth, func(i, j int) bool {
			return truth[i].Pos.DistSq(q) < truth[j].Pos.DistSq(q)
		})
		for rank, e := range res.Heap.Entries() {
			if e.Verified {
				continue
			}
			correct := truth[rank].ID == e.POI.ID
			for b := 0; b+1 < len(edges); b++ {
				if e.Correctness >= edges[b] && e.Correctness < edges[b+1] {
					counts[b]++
					sums[b] += e.Correctness
					if correct {
						hits[b]++
					}
					break
				}
			}
		}
	}

	var out []CalibrationBin
	for b := 0; b+1 < len(edges); b++ {
		bin := CalibrationBin{Lo: edges[b], Hi: edges[b+1]}
		if bin.Hi > 1 {
			bin.Hi = 1
		}
		bin.Count = counts[b]
		if counts[b] > 0 {
			bin.MeanPredicted = sums[b] / float64(counts[b])
			bin.Observed = float64(hits[b]) / float64(counts[b])
		}
		out = append(out, bin)
	}
	return out
}

// samplePOIField draws a POI field: Poisson-uniform, or a clustered
// Gaussian mixture (modeling POIs that huddle in commercial centers).
func samplePOIField(rng *rand.Rand, n int, side float64, clustered bool) []broadcast.POI {
	db := make([]broadcast.POI, n)
	if !clustered {
		for i := range db {
			db[i] = broadcast.POI{ID: int64(i), Pos: geom.Pt(rng.Float64()*side, rng.Float64()*side)}
		}
		return db
	}
	nCenters := 6
	centers := make([]geom.Point, nCenters)
	for i := range centers {
		centers[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	for i := range db {
		c := centers[rng.Intn(nCenters)]
		p := geom.Pt(
			c.X+rng.NormFloat64()*side/20,
			c.Y+rng.NormFloat64()*side/20,
		)
		area := geom.NewRect(0, 0, side, side)
		db[i] = broadcast.POI{ID: int64(i), Pos: area.Clip(p)}
	}
	return db
}

// HopRow is one cell of the multi-hop sharing extension study.
type HopRow struct {
	SetName   string
	Hops      int
	SharedPct float64
	AvgPeers  float64
}

// MultiHopAblation measures how relaying cache requests over additional
// ad-hoc hops raises the peer-resolution share — most valuable in the
// sparse Riverside County set, where single-hop neighborhoods are often
// empty.
func MultiHopAblation(o Options) []HopRow {
	o.applyDefaults()
	var rows []HopRow
	for _, base := range sim.ParameterSets() {
		for _, hops := range []int{1, 2, 3} {
			stats := runCell(base, o, func(p *sim.Params) {
				p.Kind = sim.KNNQuery
				p.AcceptApproximate = true
				p.SharingHops = hops
			})
			rows = append(rows, HopRow{
				SetName:   base.Name,
				Hops:      hops,
				SharedPct: stats.SharedPct(),
				AvgPeers:  stats.AvgPeers(),
			})
		}
	}
	return rows
}

// WriteMultiHop renders the multi-hop table.
func WriteMultiHop(w io.Writer, rows []HopRow) {
	fmt.Fprintf(w, "Extension: multi-hop sharing (kNN, shared-resolution %%)\n")
	fmt.Fprintf(w, "  %-20s %6s %10s %10s\n", "Parameter set", "hops", "shared %", "peers/q")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %6d %10.1f %10.1f\n", r.SetName, r.Hops, r.SharedPct, r.AvgPeers)
	}
}

// WriteCalibration renders the calibration table.
func WriteCalibration(w io.Writer, label string, bins []CalibrationBin) {
	fmt.Fprintf(w, "Lemma 3.2 calibration — %s POI field\n", label)
	fmt.Fprintf(w, "  %-14s %8s %12s %12s\n", "predicted bin", "count", "mean pred.", "observed")
	for _, b := range bins {
		if b.Count == 0 {
			fmt.Fprintf(w, "  [%.1f, %.1f)     %8d %12s %12s\n", b.Lo, b.Hi, 0, "—", "—")
			continue
		}
		fmt.Fprintf(w, "  [%.1f, %.1f)     %8d %12.3f %12.3f\n",
			b.Lo, b.Hi, b.Count, b.MeanPredicted, b.Observed)
	}
}
