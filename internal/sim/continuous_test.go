package sim

// Continuous-query acceptance tests (DESIGN.md §15). The gates the CI
// continuous-identity lane runs under -race:
//
//   - Zero-knob identity: ContinuousRate = 0 must produce no continuous
//     state, counters, trace events, or report keys — and stay
//     deterministic run-to-run.
//   - Armed determinism: identical seeds yield byte-identical reports
//     and traces, at every TickWorkers count (the maintenance phase runs
//     serially before the batched query loop, so the engine identity
//     matrix must hold with subscriptions live).
//   - Safe-region soundness: every safe-region hit re-checks the
//     standing answer against the R-tree ground truth (SelfCheck), so a
//     run with hits and a nil SelfCheckErr is the differential proof
//     that answers inside the safe-exit radius never flip.
//   - The naive baseline re-verifies every tick (fraction 1); the
//     safe-region path must beat it.

import (
	"bytes"
	"strings"
	"testing"
)

// contParams is the armed continuous configuration the tests share:
// small world, short run, subscriptions arriving fast enough that
// maintenance dominates the tick loop.
func contParams(kind QueryKind, seed int64) Params {
	p := LACity().Scaled(1.5).WithDuration(0.1)
	p.Seed = seed
	p.TimeStepSec = 5
	p.Kind = kind
	p.AcceptApproximate = kind == KNNQuery
	p.ContinuousRate = 4
	if kind == WindowQuery {
		// Keep standing windows near their hosts: a 1-mile offset in a
		// 1.5-mile world pins most windows to the map edge, where the
		// safe region soundly collapses — true, but then nothing
		// exercises the hit path.
		p.WindowDistMiles = 0.1
	}
	return p
}

// TestContinuousZeroKnob pins the off state: no layer allocation, no
// counters, no report keys, and run-to-run determinism. (Bit-identity
// against the pre-continuous build is the external binary-vs-binary
// check; this guards the in-tree invariants that make it hold.)
func TestContinuousZeroKnob(t *testing.T) {
	p := LACity().Scaled(1.5).WithDuration(0.1)
	p.Seed = 7
	p.TimeStepSec = 10
	p.Kind = KNNQuery
	p.AcceptApproximate = true
	if p.ContinuousEnabled() {
		t.Fatal("zero knob reports enabled")
	}
	wa, sa, repA, trA := runTickWorld(t, p, 1)
	_, sb, repB, trB := runTickWorld(t, p, 1)
	if sa != sb || !bytes.Equal(repA, repB) || !bytes.Equal(trA, trB) {
		t.Fatal("zero-knob run not deterministic")
	}
	if wa.cont != nil {
		t.Fatal("continuous state allocated with the knob off")
	}
	if sa.ContinuousEvents() != 0 {
		t.Fatalf("zero-knob run produced continuous events: %+v", sa)
	}
	if strings.Contains(string(repA), "continuous") ||
		strings.Contains(string(repA), "reverify") {
		t.Fatalf("zero-knob report leaks continuous keys:\n%s", repA)
	}
	if bytes.Contains(trA, []byte("cont-")) {
		t.Fatal("zero-knob trace contains continuous events")
	}
	rep := NewReport(p, sa, true, 0)
	if rep.BenchSchema == BenchSchemaContinuous {
		t.Fatal("zero-knob report bumped to the continuous schema")
	}
}

// TestContinuousDeterminism pins armed runs: identical seeds must yield
// byte-identical reports and traces for both query kinds.
func TestContinuousDeterminism(t *testing.T) {
	for _, kind := range []QueryKind{KNNQuery, WindowQuery} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			p := contParams(kind, 42)
			_, sa, repA, trA := runTickWorld(t, p, 1)
			_, sb, repB, trB := runTickWorld(t, p, 1)
			if sa != sb {
				t.Fatalf("armed stats diverged:\n%+v\nvs\n%+v", sa, sb)
			}
			if !bytes.Equal(repA, repB) || !bytes.Equal(trA, trB) {
				t.Fatal("armed run not byte-deterministic")
			}
			if sa.Subscriptions == 0 || sa.Reverifies == 0 {
				t.Fatalf("armed run registered nothing: %+v", sa)
			}
			rep := NewReport(p, sa, true, 0)
			if rep.BenchSchema != BenchSchemaContinuous {
				t.Fatalf("armed report schema = %d, want %d",
					rep.BenchSchema, BenchSchemaContinuous)
			}
		})
	}
}

// TestContinuousTickWorkersIdentity runs the armed configuration through
// the batched-engine identity matrix: workers 2/4/8 must stay
// byte-identical to the serial baseline with subscriptions live.
func TestContinuousTickWorkersIdentity(t *testing.T) {
	for _, kind := range []QueryKind{KNNQuery, WindowQuery} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			checkTickIdentity(t, contParams(kind, 9))
		})
	}
}

// TestContinuousSafeRegionDifferential is the soundness gate: SelfCheck
// re-derives every hit's answer from the R-tree ground truth, so a run
// with safe-region hits and no self-check error proves answers inside
// the safe-exit radius never flip. Several seeds, both kinds.
func TestContinuousSafeRegionDifferential(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, kind := range []QueryKind{KNNQuery, WindowQuery} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			var hits, ticks int64
			for _, seed := range seeds {
				p := contParams(kind, seed)
				w, err := NewWorld(p)
				if err != nil {
					t.Fatal(err)
				}
				w.SelfCheck = true
				s := w.Run()
				if err := w.SelfCheckErr(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if s.Reverifies != s.ReverifyExits+s.ReverifyTaints+
					s.ReverifyUnverified+s.ReverifyNaive {
					t.Fatalf("seed %d: reverify reasons do not partition: %+v", seed, s)
				}
				hits += s.SafeRegionHits
				ticks += s.MaintenanceTicks()
			}
			if hits == 0 {
				t.Fatal("no safe-region hit across any seed: the fast path never fired")
			}
			t.Logf("%s: %d hits over %d maintenance ticks (fraction %.2f)",
				kind, hits, ticks, float64(ticks-hits)/float64(ticks))
		})
	}
}

// TestContinuousBeatsNaive pins the point of the layer: under identical
// seeds the naive baseline re-verifies every maintenance tick (fraction
// exactly 1, zero hits) while the safe-region path re-verifies strictly
// less.
func TestContinuousBeatsNaive(t *testing.T) {
	p := contParams(KNNQuery, 11)
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	s := w.Run()
	pn := p
	pn.ContinuousNaive = true
	wn, err := NewWorld(pn)
	if err != nil {
		t.Fatal(err)
	}
	sn := wn.Run()
	if sn.SafeRegionHits != 0 || sn.ReverifyFraction() != 1 {
		t.Fatalf("naive baseline took safe-region hits: %+v", sn)
	}
	if s.ReverifyFraction() >= 1 {
		t.Fatalf("safe-region path never beat naive: fraction=%v stats=%+v",
			s.ReverifyFraction(), s)
	}
	if s.Subscriptions != sn.Subscriptions {
		t.Fatalf("registration stream diverged across arms: %d vs %d",
			s.Subscriptions, sn.Subscriptions)
	}
	t.Logf("fraction: continuous %.3f vs naive %.3f (slots %d vs %d)",
		s.ReverifyFraction(), sn.ReverifyFraction(), s.ContSlots, sn.ContSlots)
}

// TestContinuousTaints pins the consistency interaction: with the
// POI-update process armed, epoch advances must surface as taint
// re-verifications, and the run must stay self-check clean.
func TestContinuousTaints(t *testing.T) {
	p := contParams(KNNQuery, 21)
	p.UpdateRate = 2
	p.IRPeriodSec = 30
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w.SelfCheck = true
	s := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if s.ReverifyTaints == 0 {
		t.Fatalf("armed update process never tainted a subscription: %+v", s)
	}
}

// TestContinuousValidate pins the knob's validation contract.
func TestContinuousValidate(t *testing.T) {
	for _, bad := range []float64{-1, nan()} {
		p := LACity()
		p.ContinuousRate = bad
		if err := p.Validate(); err == nil {
			t.Errorf("ContinuousRate %v validated", bad)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// TestContinuousReverifyFractionAccessor pins the derived-rate edge
// cases JSONL consumers rely on.
func TestContinuousReverifyFractionAccessor(t *testing.T) {
	var s Stats
	if s.ReverifyFraction() != 0 {
		t.Error("empty stats fraction != 0")
	}
	s.Reverifies, s.ReverifyExits = 3, 3
	s.SafeRegionHits = 9
	if got := s.ReverifyFraction(); got != 0.25 {
		t.Errorf("fraction = %v, want 0.25", got)
	}
	if s.MaintenanceTicks() != 12 {
		t.Errorf("maintenance ticks = %d, want 12", s.MaintenanceTicks())
	}
}

// TestContinuousTraceEvents checks the armed trace stream carries the
// subscription records: cont events with ids, and safe radii on exact
// answers.
func TestContinuousTraceEvents(t *testing.T) {
	p := contParams(KNNQuery, 33)
	_, s, _, tr := runTickWorld(t, p, 1)
	if s.Reverifies == 0 {
		t.Fatal("no reverifies to trace")
	}
	if !bytes.Contains(tr, []byte(`"kind":"cont-knn"`)) {
		t.Fatal("trace carries no cont-knn events")
	}
	if !bytes.Contains(tr, []byte(`"subscription":`)) {
		t.Fatal("cont events carry no subscription ids")
	}
	if !bytes.Contains(tr, []byte(`"safe_radius_miles":`)) {
		t.Fatal("no cont event ever carried a safe radius")
	}
}
