package p2p

import "testing"

// Regression for the half-open accounting audit: RecordSuccess used to
// close an OPEN breaker unconditionally. The scenario is real under
// churn — a peer trips mid-collection (or is convicted by the trust
// layer via ForceOpen), departs, and a pre-trip reply still in flight is
// delivered in a later round. Honoring that late success re-entered
// closed state on stale reputation, bypassing the cooldown and erasing
// the conviction. Success must only count as recovery through the
// half-open probe.
func TestLateSuccessDoesNotCloseOpenBreaker(t *testing.T) {
	bs := NewBreakerSet(BreakerConfig{Threshold: 2, Cooldown: 4})
	bs.RecordFailure(1)
	bs.RecordFailure(1) // trips open
	if bs.State(1) != BreakerOpen {
		t.Fatalf("setup: state %v", bs.State(1))
	}
	// Late delivery of a pre-trip reply.
	bs.RecordSuccess(1)
	if got := bs.State(1); got != BreakerOpen {
		t.Fatalf("late success closed an open breaker: %v", got)
	}
	if bs.Stats().Recoveries != 0 {
		t.Fatalf("late success counted as recovery: %+v", bs.Stats())
	}
	// Inside the cooldown the peer still short-circuits.
	if bs.Allow(1) {
		t.Fatal("open breaker allowed a request inside cooldown")
	}
	// Recovery goes through the probe.
	for i := int64(0); i < 4; i++ {
		bs.Tick()
	}
	if !bs.Allow(1) {
		t.Fatal("cooldown elapsed but probe not allowed")
	}
	if bs.State(1) != BreakerHalfOpen {
		t.Fatalf("state after probe allow: %v", bs.State(1))
	}
	bs.RecordSuccess(1)
	if bs.State(1) != BreakerClosed || bs.Stats().Recoveries != 1 {
		t.Fatalf("probe success did not recover: state=%v stats=%+v", bs.State(1), bs.Stats())
	}
	if err := bs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// ForceOpen is the trust layer's conviction hook: it trips regardless of
// the failure count (a convicted peer may have zero channel failures).
func TestForceOpenConvictsWithoutFailures(t *testing.T) {
	bs := NewBreakerSet(BreakerConfig{Threshold: 5, Cooldown: 3})
	if bs.State(7) != BreakerClosed {
		t.Fatalf("setup: %v", bs.State(7))
	}
	bs.ForceOpen(7)
	if bs.State(7) != BreakerOpen {
		t.Fatalf("ForceOpen did not open: %v", bs.State(7))
	}
	if bs.Stats().Trips != 1 {
		t.Fatalf("Trips = %d, want 1", bs.Stats().Trips)
	}
	if bs.Allow(7) {
		t.Fatal("convicted peer allowed inside cooldown")
	}
	// A late sound reply from the convicted peer must not erase the
	// conviction (the stale-reputation hazard).
	bs.RecordSuccess(7)
	if bs.State(7) != BreakerOpen {
		t.Fatalf("success erased a conviction: %v", bs.State(7))
	}
	// Parole: cooldown elapses, half-open probe, recovery.
	bs.Tick()
	bs.Tick()
	bs.Tick()
	if !bs.Allow(7) || bs.State(7) != BreakerHalfOpen {
		t.Fatalf("parole probe unavailable: %v", bs.State(7))
	}
	bs.RecordSuccess(7)
	if bs.State(7) != BreakerClosed {
		t.Fatalf("parole recovery failed: %v", bs.State(7))
	}
	if err := bs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Re-convicting an already-open peer refreshes the quarantine horizon
// without inflating the trip count, and the refreshed horizon still
// satisfies the no-unbounded-quarantine invariant.
func TestForceOpenRefreshWhileOpen(t *testing.T) {
	bs := NewBreakerSet(BreakerConfig{Threshold: 2, Cooldown: 4})
	bs.ForceOpen(3)
	if bs.Stats().Trips != 1 {
		t.Fatalf("Trips = %d", bs.Stats().Trips)
	}
	bs.Tick()
	bs.Tick()
	bs.ForceOpen(3) // fresh conviction mid-cooldown
	if bs.Stats().Trips != 1 {
		t.Fatalf("refresh recounted the trip: %d", bs.Stats().Trips)
	}
	// Two cycles later the original cooldown would have elapsed; the
	// refresh keeps the peer quarantined.
	bs.Tick()
	bs.Tick()
	if bs.Allow(3) {
		t.Fatal("refreshed conviction expired on the original schedule")
	}
	if err := bs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// And it still half-opens eventually (liveness).
	bs.Tick()
	bs.Tick()
	if !bs.Allow(3) {
		t.Fatal("refreshed conviction never paroled")
	}
}

// A paroled-then-departed peer that returns keeps its reputation
// trajectory: failed probe re-trips, and a conviction during half-open
// also re-opens.
func TestParoleFailureRetrips(t *testing.T) {
	bs := NewBreakerSet(BreakerConfig{Threshold: 2, Cooldown: 2})
	bs.ForceOpen(9)
	bs.Tick()
	bs.Tick()
	if !bs.Allow(9) || bs.State(9) != BreakerHalfOpen {
		t.Fatalf("parole setup failed: %v", bs.State(9))
	}
	// The probe reply fails (or the trust layer convicts again).
	bs.RecordFailure(9)
	if bs.State(9) != BreakerOpen || bs.Stats().Trips != 2 {
		t.Fatalf("failed probe did not re-trip: state=%v stats=%+v", bs.State(9), bs.Stats())
	}
	// ForceOpen during half-open also re-opens (conviction beats probe).
	bs.Tick()
	bs.Tick()
	bs.Allow(9)
	if bs.State(9) != BreakerHalfOpen {
		t.Fatalf("second parole failed: %v", bs.State(9))
	}
	bs.ForceOpen(9)
	if bs.State(9) != BreakerOpen {
		t.Fatalf("conviction during half-open ignored: %v", bs.State(9))
	}
	if err := bs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// ForceOpen on a nil set is a no-op (trust without breakers).
func TestForceOpenNilSet(t *testing.T) {
	var bs *BreakerSet
	bs.ForceOpen(1) // must not panic
	if bs.State(1) != BreakerClosed {
		t.Fatal("nil set reported non-closed state")
	}
}
