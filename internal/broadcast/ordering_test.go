package broadcast

import (
	"math/rand"
	"testing"

	"lbsq/internal/geom"
)

func TestOrderingStrings(t *testing.T) {
	if OrderingHilbert.String() != "hilbert" ||
		OrderingMorton.String() != "morton" ||
		OrderingRowMajor.String() != "row-major" {
		t.Error("Ordering labels wrong")
	}
	if Ordering(99).String() != "hilbert" {
		t.Error("unknown ordering must default to hilbert label")
	}
}

// TestAllOrderingsAnswerCorrectly: query results are identical across
// orderings — the broadcast order only changes cost, never correctness.
func TestAllOrderingsAnswerCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	pois := randomPOIs(rng, 300, 64)
	for _, ord := range []Ordering{OrderingHilbert, OrderingMorton, OrderingRowMajor} {
		cfg := testConfig()
		cfg.Ordering = ord
		s := mustSchedule(t, pois, cfg)
		if s.Ordering() != ord {
			t.Fatalf("Ordering() = %v want %v", s.Ordering(), ord)
		}
		for trial := 0; trial < 20; trial++ {
			q := geom.Pt(rng.Float64()*64, rng.Float64()*64)
			k := 1 + rng.Intn(6)
			got, _ := s.KNN(q, k, int64(trial))
			want := bruteKNN(pois, q, k)
			ids := map[int64]bool{}
			for _, p := range got {
				ids[p.ID] = true
			}
			for _, w := range want {
				if !ids[w.ID] {
					t.Fatalf("%v: true NN %d missing", ord, w.ID)
				}
			}
			cx, cy := rng.Float64()*56, rng.Float64()*56
			win := geom.NewRect(cx, cy, cx+6, cy+6)
			gw, _ := s.Window(win, int64(trial))
			count := 0
			for _, p := range pois {
				if win.Contains(p.Pos) {
					count++
				}
			}
			if len(gw) != count {
				t.Fatalf("%v: window %d want %d", ord, len(gw), count)
			}
		}
	}
}

// TestOrderingCellGranularityPreserved: the no-cell-split invariant holds
// for every ordering (GrowCompleteRect depends on it).
func TestOrderingCellGranularityPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pois := randomPOIs(rng, 400, 64)
	for _, ord := range []Ordering{OrderingMorton, OrderingRowMajor} {
		cfg := testConfig()
		cfg.Ordering = ord
		s := mustSchedule(t, pois, cfg)
		owner := map[[2]int]int{}
		for _, p := range s.Packets() {
			for _, poi := range p.POIs {
				cx, cy := s.Curve().CellOf(poi.Pos)
				if prev, ok := owner[[2]int{cx, cy}]; ok && prev != p.Seq {
					t.Fatalf("%v: cell (%d,%d) split", ord, cx, cy)
				}
				owner[[2]int{cx, cy}] = p.Seq
			}
		}
	}
}

// TestHilbertLocalityBeatsRowMajor: the mean number of packets a window
// query touches is lower under Hilbert ordering than row-major — the
// locality property that motivated the curve choice (Jagadish, cited by
// the paper). Packets touched translates directly into tuning time.
func TestHilbertLocalityBeatsRowMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pois := randomPOIs(rng, 600, 64)
	mean := func(ord Ordering) float64 {
		cfg := testConfig()
		cfg.Ordering = ord
		s := mustSchedule(t, pois, cfg)
		probe := rand.New(rand.NewSource(7))
		total := 0
		const trials = 120
		for i := 0; i < trials; i++ {
			cx, cy := probe.Float64()*52, probe.Float64()*52
			win := geom.NewRect(cx, cy, cx+12, cy+12)
			_, acc := s.Window(win, int64(i))
			total += acc.PacketsRead
		}
		return float64(total) / trials
	}
	hil := mean(OrderingHilbert)
	row := mean(OrderingRowMajor)
	if hil > row {
		t.Errorf("Hilbert mean packets %v above row-major %v", hil, row)
	}
}
