// Roadtrip: the paper's motivating scenario. A motorist on a highway
// repeatedly asks "what are the top-3 nearest gas stations?" while
// driving at 60 mph. Exact on-air answers take a long time to assemble
// from the broadcast cycle; peers' caches deliver instant verified — or
// probabilistically-annotated approximate — answers instead (Section
// 3.3.2: correctness probability and surpassing ratio).
package main

import (
	"fmt"
	"math/rand"

	"lbsq"
)

func main() {
	rng := rand.New(rand.NewSource(66)) // Route 66

	area := lbsq.NewRect(0, 0, 20, 20)
	pois := make([]lbsq.POI, 800)
	for i := range pois {
		pois[i] = lbsq.POI{ID: int64(i), Pos: lbsq.Pt(rng.Float64()*20, rng.Float64()*20)}
	}
	server, err := lbsq.NewServer(area, pois, lbsq.BroadcastConfig{})
	if err != nil {
		panic(err)
	}

	// Oncoming traffic: vehicles that already know stretches of the road
	// ahead of the motorist (they just drove through it).
	var traffic []*lbsq.Client
	for i := 0; i < 12; i++ {
		v := lbsq.NewClient(server, lbsq.Pt(4+rng.Float64()*14, 9.4+rng.Float64()*1.2), 60)
		v.KNN(6, nil) // their own earlier query filled their cache
		traffic = append(traffic, v)
	}

	// The motorist drives west→east along y=10 at 60 mph, querying every
	// two minutes (2 miles of travel).
	car := lbsq.NewClient(server, lbsq.Pt(2, 10), 40)
	car.AcceptApproximate = true
	car.MinCorrectness = 0.5 // accept candidates at least 50% likely correct

	slotsPerTwoMinutes := int64(2 * 60 / 0.05) // 50 ms slots
	for leg := 0; leg < 8; leg++ {
		x := 2 + 2*float64(leg)
		car.MoveTo(lbsq.Pt(x, 10))

		// Ask every vehicle currently within 200 m for its cache.
		const txMiles = 200 / lbsq.MetersPerMile
		var peers []lbsq.PeerData
		reachable := 0
		for _, v := range traffic {
			if v.Pos().Dist(car.Pos()) <= txMiles*40 { // highway: good antennas
				peers = append(peers, v.Share()...)
				reachable++
			}
		}

		res := car.KNN(3, peers)
		fmt.Printf("mile %4.1f — %d peers reachable — outcome: %v", x, reachable, res.Outcome)
		if res.Outcome == lbsq.OutcomeBroadcast {
			fmt.Printf(" (waited %d slots ≈ %.1f s)", res.Access.Latency,
				float64(res.Access.Latency)*0.05)
		}
		fmt.Println()
		if res.Outcome == lbsq.OutcomeBroadcast {
			// Channel-resolved answers are exact.
			for i, p := range res.POIs {
				fmt.Printf("    %d. station %-4d %.2f mi  [exact, from channel]\n",
					i+1, p.ID, p.Pos.Dist(car.Pos()))
			}
		} else {
			for i, e := range res.Heap.Entries() {
				tag := "verified"
				if !e.Verified {
					tag = fmt.Sprintf("approx, correct with p=%.0f%%", 100*e.Correctness)
					if e.Surpassing > 0 {
						tag += fmt.Sprintf(", worst-case detour ×%.2f", e.Surpassing)
					}
				}
				fmt.Printf("    %d. station %-4d %.2f mi  [%s]\n", i+1, e.POI.ID, e.Dist, tag)
			}
		}
		car.AdvanceSlots(slotsPerTwoMinutes)
	}
}
