package p2p

import (
	"math/rand"
	"reflect"
	"testing"

	"lbsq/internal/geom"
)

func buildNet(t testing.TB, rng *rand.Rand, hosts int) *Network {
	net, err := NewNetwork(geom.NewRect(0, 0, 1000, 1000), 100)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < hosts; id++ {
		net.Update(id, geom.Pt(rng.Float64()*1000, rng.Float64()*1000))
	}
	return net
}

// TestAppendNeighborsMatchesNeighbors checks the buffer-reuse variant
// appends the exact sequence Neighbors returns, for single- and
// multi-hop lookups, and that a dirty prefix in dst is preserved.
func TestAppendNeighborsMatchesNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := buildNet(t, rng, 500)
	buf := make([]int, 0, 64)
	for i := 0; i < 200; i++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		radius := rng.Float64() * 150
		exclude := rng.Intn(502) - 1
		want := net.Neighbors(q, radius, exclude)
		buf = net.AppendNeighbors(buf[:0], q, radius, exclude)
		if len(want) == 0 && len(buf) == 0 {
			continue
		}
		if !reflect.DeepEqual([]int(buf), want) {
			t.Fatalf("AppendNeighbors differs from Neighbors at %v r=%v", q, radius)
		}
		for hops := 1; hops <= 3; hops++ {
			wantMH := net.NeighborsMultiHop(q, radius, hops, exclude)
			gotMH := net.AppendNeighborsMultiHop(buf[:0], q, radius, hops, exclude)
			if len(wantMH) == 0 && len(gotMH) == 0 {
				continue
			}
			if !reflect.DeepEqual([]int(gotMH), wantMH) {
				t.Fatalf("AppendNeighborsMultiHop(hops=%d) differs at %v r=%v", hops, q, radius)
			}
		}
	}
	// Appending must extend dst, not overwrite it from index 0.
	prefix := []int{-7, -8}
	out := net.AppendNeighbors(prefix, geom.Pt(500, 500), 120, -1)
	if out[0] != -7 || out[1] != -8 {
		t.Fatalf("AppendNeighbors clobbered the dst prefix: %v", out[:2])
	}
	if !reflect.DeepEqual(out[2:], net.AppendNeighbors(nil, geom.Pt(500, 500), 120, -1)) {
		t.Fatal("AppendNeighbors with prefix produced a different suffix")
	}
}
