// Package experiments regenerates every evaluation figure of the paper
// (Figures 10–15), the latency-reduction headline of Sections 3.3.3/5,
// and the hit-ratio analysis comparison, by sweeping the simulator over
// the same parameter ranges and printing the same series the paper plots.
//
// Runs default to a density-preserving 5-mile scale of the Table 3
// parameter sets (see sim.Params.Scaled); the cmd/lbsq-figures tool can
// run any scale up to the full 20-mile, 93,300-vehicle configuration.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"lbsq/internal/analysis"
	"lbsq/internal/cache"
	"lbsq/internal/sim"
	"lbsq/internal/svgplot"
	"lbsq/internal/sweep"
)

// Options tunes the experiment scale. The zero value selects the default
// scale (5-mile area, 0.5 simulated hours).
type Options struct {
	// SideMiles is the side of the density-preserved service area.
	SideMiles float64
	// DurationHours is the simulated duration per cell.
	DurationHours float64
	// TimeStepSec is the simulation step.
	TimeStepSec float64
	// Seed drives all randomness.
	Seed int64
	// PrefillPerHost is the steady-state warm start (mean historical
	// queries per host cache); defaults to 10, matching the cache fill
	// the paper's 10-hour runs reach before measurement. Negative
	// disables.
	PrefillPerHost float64
	// Parallel is the sweep worker count: 0 selects GOMAXPROCS, 1 runs
	// every cell serially on the calling goroutine, n > 1 fans cells
	// across n workers. Output is bit-identical for every value (each
	// cell owns its seeded world; results reassemble by cell index).
	Parallel int
}

func (o *Options) applyDefaults() {
	if o.SideMiles == 0 {
		o.SideMiles = 5
	}
	if o.DurationHours == 0 {
		o.DurationHours = 0.5
	}
	if o.TimeStepSec == 0 {
		o.TimeStepSec = 10
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.PrefillPerHost == 0 {
		o.PrefillPerHost = 10
	}
}

// Fast returns a reduced scale for quick runs (benchmarks, smoke tests).
func Fast() Options {
	return Options{SideMiles: 3, DurationHours: 0.2, TimeStepSec: 15, Seed: 42}
}

// Point is one x-position of a figure series.
type Point struct {
	// X is the swept parameter value (meters, POIs, k, or percent).
	X float64
	// VerifiedPct/ApproximatePct/BroadcastPct are the shares of total
	// queries, as plotted in the paper's stacked series.
	VerifiedPct    float64
	ApproximatePct float64
	BroadcastPct   float64
	// Stats carries the full simulation statistics behind the point.
	Stats sim.Stats
}

// Series is one parameter set's curve.
type Series struct {
	SetName string
	Points  []Point
}

// Figure is a complete reproduced figure: one series per Table 3
// parameter set.
type Figure struct {
	ID     string // e.g. "Fig10"
	Title  string
	XLabel string
	// HasApproximate distinguishes the kNN figures (three stacked
	// series) from the window figures (two).
	HasApproximate bool
	Series         []Series
}

// runCell executes one simulation cell.
func runCell(base sim.Params, o Options, mutate func(*sim.Params)) sim.Stats {
	p := base.Scaled(o.SideMiles).WithDuration(o.DurationHours)
	p.TimeStepSec = o.TimeStepSec
	p.Seed = o.Seed
	if o.PrefillPerHost > 0 {
		p.PrefillQueriesPerHost = o.PrefillPerHost
	}
	mutate(&p)
	w, err := sim.NewWorld(p)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err)) // parameters are internal
	}
	return w.Run()
}

// runSweep builds a figure by running every (parameter set × x value)
// cell through the sweep engine. Cells are independent simulations —
// each owns its seeded world — so the figure is bit-identical for every
// worker count (sweep's determinism contract).
func runSweep(id, title, xlabel string, approx bool, xs []float64, o Options,
	mutate func(*sim.Params, float64)) Figure {
	o.applyDefaults()
	fig := Figure{ID: id, Title: title, XLabel: xlabel, HasApproximate: approx}
	sets := sim.ParameterSets()

	type cellKey struct {
		si int
		x  float64
	}
	var keys []cellKey
	for si := range sets {
		for _, x := range xs {
			keys = append(keys, cellKey{si: si, x: x})
		}
	}
	flat := sweep.Map(sweep.Workers(o.Parallel), keys, func(_ int, k cellKey) Point {
		stats := runCell(sets[k.si], o, func(p *sim.Params) { mutate(p, k.x) })
		return Point{
			X:              k.x,
			VerifiedPct:    stats.VerifiedPct(),
			ApproximatePct: stats.ApproximatePct(),
			BroadcastPct:   stats.BroadcastPct(),
			Stats:          stats,
		}
	})

	for si, base := range sets {
		fig.Series = append(fig.Series, Series{
			SetName: base.Name,
			Points:  flat[si*len(xs) : (si+1)*len(xs)],
		})
	}
	return fig
}

// TxRangeSweep is the transmission-range axis of Figures 10 and 13.
func TxRangeSweep() []float64 {
	return []float64{20, 40, 60, 80, 100, 120, 140, 160, 180, 200}
}

// CacheSweep is the cache-capacity axis of Figures 11 and 14.
func CacheSweep() []float64 { return []float64{6, 12, 18, 24, 30} }

// KSweep is the k axis of Figure 12.
func KSweep() []float64 { return []float64{3, 6, 9, 12, 15} }

// WindowSweep is the window-size axis of Figure 15 (percent).
func WindowSweep() []float64 { return []float64{1, 2, 3, 4, 5} }

// Fig10 reproduces Figure 10: percentage of kNN queries resolved by SBNN
// / approximate SBNN / the broadcast channel as a function of the
// wireless transmission range (10–200 m).
func Fig10(o Options) Figure {
	return runSweep("Fig10",
		"kNN queries resolved vs. transmission range",
		"Transmission Range (m)", true, TxRangeSweep(), o,
		func(p *sim.Params, x float64) {
			p.Kind = sim.KNNQuery
			p.TxRangeMeters = x
			p.AcceptApproximate = true
		})
}

// Fig11 reproduces Figure 11: kNN resolution shares as a function of the
// mobile host cache capacity (6–30 POIs).
func Fig11(o Options) Figure {
	return runSweep("Fig11",
		"kNN queries resolved vs. cache capacity",
		"Number of Cached Items", true, CacheSweep(), o,
		func(p *sim.Params, x float64) {
			p.Kind = sim.KNNQuery
			p.CacheSize = int(x)
			p.AcceptApproximate = true
		})
}

// Fig12 reproduces Figure 12: kNN resolution shares as a function of the
// requested number of nearest neighbors k (3–15).
func Fig12(o Options) Figure {
	return runSweep("Fig12",
		"kNN queries resolved vs. k",
		"Number of k", true, KSweep(), o,
		func(p *sim.Params, x float64) {
			p.Kind = sim.KNNQuery
			p.K = int(x)
			p.AcceptApproximate = true
		})
}

// windowScale doubles the service-area side for window-query figures:
// broadcast window retrievals cache capacity-sized regions (~2.7 mi in
// LA), so the coverage dynamics need a map much larger than one region —
// see DESIGN.md. Densities are still preserved.
func windowScale(o Options) Options {
	o.applyDefaults()
	o.SideMiles *= 2
	return o
}

// Fig13 reproduces Figure 13: percentage of window queries resolved by
// SBWQ / the broadcast channel as a function of the transmission range.
func Fig13(o Options) Figure {
	o = windowScale(o)
	return runSweep("Fig13",
		"window queries resolved vs. transmission range",
		"Transmission Range (m)", false, TxRangeSweep(), o,
		func(p *sim.Params, x float64) {
			p.Kind = sim.WindowQuery
			p.TxRangeMeters = x
		})
}

// Fig14 reproduces Figure 14: window-query resolution shares as a
// function of the cache capacity.
func Fig14(o Options) Figure {
	o = windowScale(o)
	return runSweep("Fig14",
		"window queries resolved vs. cache capacity",
		"Number of Cached Items", false, CacheSweep(), o,
		func(p *sim.Params, x float64) {
			p.Kind = sim.WindowQuery
			p.CacheSize = int(x)
		})
}

// Fig15 reproduces Figure 15: window-query resolution shares as a
// function of the query window size (1–5% of the search space side).
func Fig15(o Options) Figure {
	o = windowScale(o)
	return runSweep("Fig15",
		"window queries resolved vs. window size",
		"Query Window Size (%)", false, WindowSweep(), o,
		func(p *sim.Params, x float64) {
			p.Kind = sim.WindowQuery
			p.WindowPct = x
		})
}

// Figures runs every figure reproduction.
func Figures(o Options) []Figure {
	return []Figure{Fig10(o), Fig11(o), Fig12(o), Fig13(o), Fig14(o), Fig15(o)}
}

// ByID returns a single figure by its identifier ("Fig10".."Fig15",
// case-insensitive, "10".."15" accepted).
func ByID(id string, o Options) (Figure, error) {
	switch strings.ToLower(strings.TrimPrefix(strings.ToLower(id), "fig")) {
	case "10":
		return Fig10(o), nil
	case "11":
		return Fig11(o), nil
	case "12":
		return Fig12(o), nil
	case "13":
		return Fig13(o), nil
	case "14":
		return Fig14(o), nil
	case "15":
		return Fig15(o), nil
	}
	return Figure{}, fmt.Errorf("experiments: unknown figure %q", id)
}

// WriteTo renders the figure as the aligned table the paper's plots
// correspond to.
func (f Figure) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "\n  %s\n", s.SetName)
		if f.HasApproximate {
			fmt.Fprintf(&b, "  %-26s %10s %12s %12s\n",
				f.XLabel, "SBNN %", "Approx %", "Broadcast %")
			for _, p := range s.Points {
				fmt.Fprintf(&b, "  %-26.0f %10.1f %12.1f %12.1f\n",
					p.X, p.VerifiedPct, p.ApproximatePct, p.BroadcastPct)
			}
		} else {
			fmt.Fprintf(&b, "  %-26s %10s %12s\n", f.XLabel, "SBWQ %", "Broadcast %")
			for _, p := range s.Points {
				fmt.Fprintf(&b, "  %-26.0f %10.1f %12.1f\n",
					p.X, p.VerifiedPct, p.BroadcastPct)
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Chart converts the figure into a plottable line chart of the
// peer-resolved share (SBNN+approximate for kNN figures, SBWQ for window
// figures) with one series per Table 3 parameter set.
func (f Figure) Chart() svgplot.Chart {
	c := svgplot.Chart{
		Title:  fmt.Sprintf("%s — %s", f.ID, f.Title),
		XLabel: f.XLabel,
		YLabel: "queries resolved by sharing (%)",
		FixedY: true, YMin: 0, YMax: 100,
	}
	for _, s := range f.Series {
		ps := svgplot.Series{Name: s.SetName}
		for _, p := range s.Points {
			ps.X = append(ps.X, p.X)
			ps.Y = append(ps.Y, p.VerifiedPct+p.ApproximatePct)
		}
		c.Series = append(c.Series, ps)
	}
	return c
}

// LatencyRow summarizes the latency/channel-access reduction for one
// parameter set (the up-to-80% headline of the conclusions).
type LatencyRow struct {
	SetName string
	// SharedMeanLatencySlots is the mean access latency per query with
	// sharing enabled (peer-resolved queries contribute zero).
	SharedMeanLatencySlots float64
	// BaselineMeanLatencySlots is the mean plain on-air latency over the
	// same workload.
	BaselineMeanLatencySlots float64
	// LatencyReductionPct = 100·(1 − shared/baseline).
	LatencyReductionPct float64
	// ChannelAccessAvoidedPct is the share of queries that never touched
	// the channel.
	ChannelAccessAvoidedPct float64
	// PacketsPerQuery / BaselinePacketsPerQuery compare downloaded data
	// volumes.
	PacketsPerQuery         float64
	BaselinePacketsPerQuery float64
}

// LatencyReduction measures, per parameter set, how much access latency
// and channel traffic sharing removes relative to the pure on-air
// algorithms.
func LatencyReduction(o Options) []LatencyRow {
	o.applyDefaults()
	var rows []LatencyRow
	for _, base := range sim.ParameterSets() {
		p := base.Scaled(o.SideMiles).WithDuration(o.DurationHours)
		p.TimeStepSec = o.TimeStepSec
		p.Seed = o.Seed
		if o.PrefillPerHost > 0 {
			p.PrefillQueriesPerHost = o.PrefillPerHost
		}
		p.Kind = sim.KNNQuery
		p.AcceptApproximate = true
		w, err := sim.NewWorld(p)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		w.CompareBaseline = true
		w.BaselineSampleRate = 1
		stats := w.Run()

		row := LatencyRow{
			SetName:                  base.Name,
			SharedMeanLatencySlots:   stats.MeanSystemLatencySlots(),
			BaselineMeanLatencySlots: stats.BaselineMeanLatencySlots(),
			ChannelAccessAvoidedPct:  stats.SharedPct(),
		}
		if stats.Queries > 0 {
			row.PacketsPerQuery = float64(stats.PacketsRead) / float64(stats.Queries)
		}
		if stats.BaselineSampled > 0 {
			row.BaselinePacketsPerQuery =
				float64(stats.BaselinePackets) / float64(stats.BaselineSampled)
		}
		if row.BaselineMeanLatencySlots > 0 {
			row.LatencyReductionPct =
				100 * (1 - row.SharedMeanLatencySlots/row.BaselineMeanLatencySlots)
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteLatency renders the latency table.
func WriteLatency(w io.Writer, rows []LatencyRow) {
	fmt.Fprintf(w, "Access-latency reduction (kNN, Table 3 defaults)\n")
	fmt.Fprintf(w, "  %-20s %14s %14s %10s %12s %12s %12s\n",
		"Parameter set", "shared slots", "on-air slots", "latency -%",
		"avoided %", "pkts/query", "base pkts")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %14.1f %14.1f %10.1f %12.1f %12.2f %12.2f\n",
			r.SetName, r.SharedMeanLatencySlots, r.BaselineMeanLatencySlots,
			r.LatencyReductionPct, r.ChannelAccessAvoidedPct,
			r.PacketsPerQuery, r.BaselinePacketsPerQuery)
	}
}

// AnalysisRow compares the probabilistic hit-ratio model with simulation.
type AnalysisRow struct {
	SetName      string
	TxMeters     float64
	PredictedPct float64
	SimulatedPct float64
}

// AnalysisVsSim sweeps the transmission range per parameter set and
// reports the analytic sharing hit ratio next to the simulated fraction
// of fully peer-resolved kNN queries.
func AnalysisVsSim(o Options) []AnalysisRow {
	o.applyDefaults()
	var rows []AnalysisRow
	for _, base := range sim.ParameterSets() {
		for _, tx := range []float64{50, 100, 150, 200} {
			stats := runCell(base, o, func(p *sim.Params) {
				p.Kind = sim.KNNQuery
				p.TxRangeMeters = tx
				p.AcceptApproximate = false
			})
			m := analysis.Model{
				MHDensity:     base.MHDensity(),
				POIDensity:    base.POIDensity(),
				TxRangeMiles:  tx / sim.MetersPerMile,
				CacheSize:     base.CacheSize,
				LocalityMiles: 1.5,
			}
			rows = append(rows, AnalysisRow{
				SetName:      base.Name,
				TxMeters:     tx,
				PredictedPct: 100 * m.KNNHitRatio(base.K),
				SimulatedPct: stats.VerifiedPct(),
			})
		}
	}
	return rows
}

// WriteAnalysis renders the analysis-vs-simulation table.
func WriteAnalysis(w io.Writer, rows []AnalysisRow) {
	fmt.Fprintf(w, "Hit-ratio analysis vs. simulation (kNN fully peer-resolved)\n")
	fmt.Fprintf(w, "  %-20s %10s %12s %12s\n", "Parameter set", "range m", "model %", "sim %")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %10.0f %12.1f %12.1f\n",
			r.SetName, r.TxMeters, r.PredictedPct, r.SimulatedPct)
	}
}

// PolicyRow is one cache-policy ablation cell.
type PolicyRow struct {
	SetName   string
	Policy    cache.Policy
	SharedPct float64
}

// CachePolicyAblation compares the paper's direction+distance replacement
// policy with LRU on the kNN workload.
func CachePolicyAblation(o Options) []PolicyRow {
	o.applyDefaults()
	var rows []PolicyRow
	for _, base := range sim.ParameterSets() {
		for _, pol := range []cache.Policy{cache.DirectionDistance, cache.LRU} {
			stats := runCell(base, o, func(p *sim.Params) {
				p.Kind = sim.KNNQuery
				p.AcceptApproximate = true
				p.CachePolicy = pol
			})
			rows = append(rows, PolicyRow{
				SetName:   base.Name,
				Policy:    pol,
				SharedPct: stats.SharedPct(),
			})
		}
	}
	return rows
}

// ThresholdRow is one approximate-acceptance ablation cell.
type ThresholdRow struct {
	Threshold      float64
	ApproximatePct float64
	BroadcastPct   float64
}

// ApproxThresholdAblation sweeps the correctness-probability acceptance
// threshold (the paper fixes 50%) on the LA City kNN workload.
func ApproxThresholdAblation(o Options) []ThresholdRow {
	o.applyDefaults()
	var rows []ThresholdRow
	for _, th := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		stats := runCell(sim.LACity(), o, func(p *sim.Params) {
			p.Kind = sim.KNNQuery
			p.AcceptApproximate = true
			p.MinCorrectness = th
		})
		rows = append(rows, ThresholdRow{
			Threshold:      th,
			ApproximatePct: stats.ApproximatePct(),
			BroadcastPct:   stats.BroadcastPct(),
		})
	}
	return rows
}
