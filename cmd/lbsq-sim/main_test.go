package main

import (
	"math"
	"strings"
	"testing"

	"lbsq/internal/faults"
)

// TestCheckRates pins the parse-time flag validation: NaN, infinite,
// negative, and above-maximum values must be rejected with the
// offending flag's name; legal values (including the boundaries) must
// pass. This is the gate that keeps a typo like `-loss -0.1` from
// being silently clamped by Normalized() deep in the stack.
func TestCheckRates(t *testing.T) {
	cases := []struct {
		name    string
		flags   []rateFlag
		wantErr string // substring; "" = must pass
	}{
		{"empty", nil, ""},
		{"zero is legal", []rateFlag{{"loss", 0, faults.MaxRate}}, ""},
		{"max boundary is legal", []rateFlag{{"loss", faults.MaxRate, faults.MaxRate}}, ""},
		{"interior value is legal", []rateFlag{{"churn-rate", 0.1, faults.MaxRate}}, ""},
		{"probability boundary is legal", []rateFlag{{"audit-rate", 1, 1}}, ""},
		{"unbounded duration is legal", []rateFlag{{"blackout-period", 1e9, 0}}, ""},
		{"NaN", []rateFlag{{"loss", math.NaN(), faults.MaxRate}}, "-loss: NaN"},
		{"positive infinity", []rateFlag{{"blackout-period", math.Inf(1), 0}}, "-blackout-period: value must be finite"},
		{"negative infinity", []rateFlag{{"update-rate", math.Inf(-1), 0}}, "-update-rate: "},
		{"negative rate", []rateFlag{{"req-loss", -0.1, faults.MaxRate}}, "-req-loss: negative value -0.1"},
		{"negative duration", []rateFlag{{"burst-bad-slots", -4, 0}}, "-burst-bad-slots: negative value -4"},
		{"above MaxRate", []rateFlag{{"reply-loss", 0.96, faults.MaxRate}}, "-reply-loss: 0.96 exceeds maximum 0.95"},
		{"above probability", []rateFlag{{"byzantine-rate", 1.5, 1}}, "-byzantine-rate: 1.5 exceeds maximum 1"},
		{"crowd rate is unbounded above", []rateFlag{{"crowd-rate", 1e6, 0}}, ""},
		{"crowd geometry is legal", []rateFlag{{"crowd-radius", 2, 0}, {"crowd-x", 10, 0}, {"crowd-y", 10, 0}}, ""},
		{"governor floor boundary is legal", []rateFlag{{"governor-floor", 1, 1}}, ""},
		{"negative crowd rate", []rateFlag{{"crowd-rate", -5, 0}}, "-crowd-rate: negative value -5"},
		{"NaN admission rate", []rateFlag{{"admission-rate", math.NaN(), 0}}, "-admission-rate: NaN"},
		{"infinite crowd duration", []rateFlag{{"crowd-duration", math.Inf(1), 0}}, "-crowd-duration: value must be finite"},
		{"governor floor above one", []rateFlag{{"governor-floor", 1.2, 1}}, "-governor-floor: 1.2 exceeds maximum 1"},
		{"negative coalesce radius", []rateFlag{{"coalesce-radius", -1, 0}}, "-coalesce-radius: negative value -1"},
		{"second flag bad", []rateFlag{
			{"loss", 0.1, faults.MaxRate},
			{"burst-bad-loss", math.NaN(), 1},
		}, "-burst-bad-loss: NaN"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkRates(tc.flags)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("checkRates(%v) = %v, want nil", tc.flags, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("checkRates(%v) = nil, want error containing %q", tc.flags, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("checkRates(%v) = %q, want substring %q", tc.flags, err, tc.wantErr)
			}
		})
	}
}

// TestCheckRatesBurstBound pins the burst-loss bound at 1.0 rather than
// faults.MaxRate: a deep fade may kill every frame, so 1.0 must pass
// where the Bernoulli knobs stop at 0.95.
func TestCheckRatesBurstBound(t *testing.T) {
	if err := checkRates([]rateFlag{{"burst-bad-loss", 1, 1}}); err != nil {
		t.Fatalf("burst-bad-loss 1.0 rejected: %v", err)
	}
	if err := checkRates([]rateFlag{{"burst-bad-loss", 1.01, 1}}); err == nil {
		t.Fatal("burst-bad-loss 1.01 accepted, want error")
	}
}
