package geom

import (
	"math"
	"math/rand"
	"testing"
)

// quantRect draws a random rectangle with coordinates quantized to
// eighths on [0, 8], so random sequences frequently share edge
// coordinates (the refcount paths) and occasionally coincide exactly
// (the duplicate-member multiset paths).
func quantRect(rng *rand.Rand) Rect {
	q := func(v float64) float64 { return math.Round(v*8) / 8 }
	x0, y0 := q(rng.Float64()*7), q(rng.Float64()*7)
	w, h := q(0.125+rng.Float64()*3), q(0.125+rng.Float64()*3)
	if w == 0 {
		w = 0.125
	}
	if h == 0 {
		h = 0.125
	}
	return NewRect(x0, y0, x0+w, y0+h)
}

func rectsEqual(a, b []Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compareAgainst checks the incrementally maintained union against a
// reference built another way: the disjoint decomposition must match
// exactly (it is canonical — a pure function of the member multiset),
// and every derived query must return bit-identical values.
func compareAgainst(t *testing.T, tag string, inc, ref *RectUnion, rng *rand.Rand) {
	t.Helper()
	if !rectsEqual(inc.Disjoint(), ref.Disjoint()) {
		t.Fatalf("%s: disjoint mismatch\n inc: %v\n ref: %v", tag, inc.Disjoint(), ref.Disjoint())
	}
	if ia, ra := inc.Area(), ref.Area(); ia != ra {
		t.Fatalf("%s: area %v != %v", tag, ia, ra)
	}
	for probe := 0; probe < 6; probe++ {
		p := Pt(rng.Float64()*10-1, rng.Float64()*10-1)
		if di, dr := inc.BoundaryDist(p), ref.BoundaryDist(p); di != dr {
			t.Fatalf("%s: BoundaryDist(%v) %v != %v", tag, p, di, dr)
		}
		r := 0.25 + rng.Float64()*4
		if ai, ar := inc.IntersectCircleArea(p, r), ref.IntersectCircleArea(p, r); ai != ar {
			t.Fatalf("%s: IntersectCircleArea(%v, %v) %v != %v", tag, p, r, ai, ar)
		}
		w := quantRect(rng)
		if ci, cr := inc.CoversRect(w), ref.CoversRect(w); ci != cr {
			t.Fatalf("%s: CoversRect(%v) %v != %v", tag, w, ci, cr)
		}
		if ai, ar := inc.IntersectRectArea(w), ref.IntersectRectArea(w); ai != ar {
			t.Fatalf("%s: IntersectRectArea(%v) %v != %v", tag, w, ai, ar)
		}
	}
}

// TestRectUnionIncrementalDifferential evolves one union through random
// Insert/Remove sequences and compares it after every step against a
// from-scratch rebuild over the same member list. Duplicate members are
// inserted deliberately to exercise the coordinate refcounts.
func TestRectUnionIncrementalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		inc := &RectUnion{}
		var members []Rect
		for step := 0; step < 70; step++ {
			op := rng.Float64()
			switch {
			case op < 0.55 || len(members) == 0:
				r := quantRect(rng)
				inc.Insert(r)
				members = append(members, r)
			case op < 0.70 && len(members) > 0:
				// Duplicate an existing member (multiset semantics).
				r := members[rng.Intn(len(members))]
				inc.Insert(r)
				members = append(members, r)
			default:
				i := rng.Intn(len(members))
				r := members[i]
				if !inc.Remove(r) {
					t.Fatalf("trial %d step %d: Remove(%v) found no member", trial, step, r)
				}
				// Mirror Remove's first-match semantics.
				for j, m := range members {
					if m == r {
						members = append(members[:j], members[j+1:]...)
						break
					}
				}
			}
			if inc.Len() != len(members) {
				t.Fatalf("trial %d step %d: Len %d != %d", trial, step, inc.Len(), len(members))
			}
			fresh := NewRectUnion(members...)
			compareAgainst(t, "fresh", inc, fresh, rng)
		}
	}
}

// TestRectUnionIncrementalOrderIndependence pins the property the
// tick engine's memoized delta chains rely on: the decomposition and
// every derived query are functions of the member MULTISET only, so a
// union reached via Insert/Remove deltas matches a union built from the
// same members in any other order.
func TestRectUnionIncrementalOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		inc := &RectUnion{}
		var members []Rect
		for step := 0; step < 40; step++ {
			if rng.Float64() < 0.6 || len(members) == 0 {
				r := quantRect(rng)
				inc.Insert(r)
				members = append(members, r)
			} else {
				i := rng.Intn(len(members))
				inc.Remove(members[i])
				members = append(members[:i], members[i+1:]...)
			}
		}
		perm := rng.Perm(len(members))
		shuffled := make([]Rect, len(members))
		for i, j := range perm {
			shuffled[i] = members[j]
		}
		shuf := NewRectUnion(shuffled...)
		compareAgainst(t, "shuffled", inc, shuf, rng)
	}
}

// TestRectUnionIncrementalMixed checks the fallback transitions: Add
// and Reset drop the incremental state, and the next Insert/Remove
// rebuilds it; removing the last member yields the empty union.
func TestRectUnionIncrementalMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	u := &RectUnion{}
	a, b := NewRect(0, 0, 2, 2), NewRect(1, 1, 3, 3)
	u.Insert(a)
	u.Insert(b)
	u.Add(NewRect(2, 0, 4, 1)) // drops incremental state
	u.Insert(NewRect(0, 3, 1, 4))
	ref := NewRectUnion(a, b, NewRect(2, 0, 4, 1), NewRect(0, 3, 1, 4))
	compareAgainst(t, "after-add", u, ref, rng)

	if !u.Remove(b) {
		t.Fatal("Remove(b) = false")
	}
	ref2 := NewRectUnion(a, NewRect(2, 0, 4, 1), NewRect(0, 3, 1, 4))
	compareAgainst(t, "after-remove", u, ref2, rng)

	if u.Remove(NewRect(9, 9, 10, 10)) {
		t.Fatal("Remove of non-member = true")
	}
	u.Reset()
	if u.Len() != 0 || u.Area() != 0 {
		t.Fatal("Reset left members behind")
	}
	u.Insert(a)
	if !u.Remove(a) {
		t.Fatal("Remove(a) = false")
	}
	if u.Area() != 0 || len(u.Disjoint()) != 0 {
		t.Fatalf("empty union has area %v, %d strips", u.Area(), len(u.Disjoint()))
	}
	u.Insert(b)
	compareAgainst(t, "refill", u, NewRectUnion(b), rng)
}
