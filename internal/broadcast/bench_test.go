package broadcast

import (
	"math/rand"
	"testing"

	"lbsq/internal/geom"
)

func benchSchedule(b *testing.B, n int) (*Schedule, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	cfg := Config{Area: geom.NewRect(0, 0, 64, 64), Order: 6, PacketCapacity: 8, M: 4}
	s, err := NewSchedule(randomPOIs(rng, n, 64), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s, rng
}

func BenchmarkScheduleBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pois := randomPOIs(rng, 2750, 64) // LA City database size
	cfg := Config{Area: geom.NewRect(0, 0, 64, 64), Order: 6, PacketCapacity: 8, M: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSchedule(pois, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnAirKNN(b *testing.B) {
	s, rng := benchSchedule(b, 2750)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(rng.Float64()*64, rng.Float64()*64)
		s.KNN(q, 5, int64(i))
	}
}

func BenchmarkOnAirKNNWithBounds(b *testing.B) {
	s, rng := benchSchedule(b, 2750)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(rng.Float64()*64, rng.Float64()*64)
		s.KNNWithBounds(q, 5, int64(i), Bounds{Upper: 4, Lower: 2})
	}
}

func BenchmarkOnAirWindow(b *testing.B) {
	s, rng := benchSchedule(b, 2750)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx, cy := rng.Float64()*60, rng.Float64()*60
		s.Window(geom.NewRect(cx, cy, cx+2, cy+2), int64(i))
	}
}

func BenchmarkGrowCompleteRect(b *testing.B) {
	s, _ := benchSchedule(b, 2750)
	w := geom.NewRect(30, 30, 34, 34)
	_, _, retrieved, _ := s.WindowReducedDetailed([]geom.Rect{w}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GrowCompleteRect(w, retrieved, 200)
	}
}
