package sim

import (
	"math"

	"lbsq/internal/core"
	"lbsq/internal/geom"
	"lbsq/internal/trust"
)

// The degraded-mode query planner (DESIGN.md §13). Each query classifies
// its connectivity and picks a rung of the fallback ladder:
//
//	broadcast up, peers up   → modeFull      (the whole protocol)
//	broadcast down, peers up → modeP2POnly   (sharing only; probabilistic
//	                                          Lemma 3.2 answers allowed)
//	broadcast up, peers down → modeOnAirOnly (skip the P2P phase, tune in)
//	both down                → modeOwnCache  (serve from the host's own
//	                                          cache with an explicit
//	                                          staleness bound)
//
// The broadcast downlink is down when the host sits inside one of its
// scheduled blackout windows; the P2P channel is down when the
// Gilbert–Elliott chain is in a deep fade (bad-state loss at or above
// faults.DeepFadeLoss — retries are near-certain to burn the budget for
// nothing). With the planner off, every query runs modeFull: a dark
// downlink stalls it until the window ends (the naive baseline the
// EXPERIMENTS.md availability curve compares against), and a deep fade is
// simply a very lossy collection round.

// queryMode is one rung of the fallback ladder.
type queryMode int

const (
	modeFull queryMode = iota
	modeP2POnly
	modeOnAirOnly
	modeOwnCache
)

// String implements fmt.Stringer; modeFull renders empty so trace events
// of fully-connected queries omit the field (zero-knob byte identity).
func (m queryMode) String() string {
	switch m {
	case modeP2POnly:
		return "p2p-only"
	case modeOnAirOnly:
		return "onair-only"
	case modeOwnCache:
		return "own-cache"
	default:
		return ""
	}
}

// ModeSwitchSlots is the broadcast-slot price of stepping one rung down
// the ladder: the client re-plans, re-tunes its radio, and abandons
// in-flight protocol state. Charged per rung of depth against the query's
// deadline budget, so a deadline-constrained query can genuinely prefer a
// shallower rung.
const ModeSwitchSlots = 2

// depth is how many rungs below the full protocol the mode sits.
func (m queryMode) depth() int64 {
	switch m {
	case modeP2POnly, modeOnAirOnly:
		return 1
	case modeOwnCache:
		return 2
	default:
		return 0
	}
}

// queryChannel is one query's connectivity assessment.
type queryChannel struct {
	mode queryMode
	// chWait is the naive-mode stall: with the planner off and the
	// downlink dark, the query waits out the blackout window before
	// tuning in. Zero whenever the planner is on or the downlink is up.
	chWait int64
	// bcastUp reports whether the host's broadcast downlink is live (it
	// gates IR listens and on-air spot audits either way).
	bcastUp bool
}

// switchCost is the deadline-priced cost of reaching this rung.
func (qc queryChannel) switchCost() int64 {
	return qc.mode.depth() * ModeSwitchSlots
}

// assessChannel classifies one query's connectivity before collection.
// It advances the fading chain to the current slot (a no-op with the
// burst knobs off) and tracks per-host blackout transitions so
// reacquisition is observable (BlackoutRecoveries). With every channel
// knob off this returns the fully-connected assessment with zero draws
// and zero counter movement.
func (w *World) assessChannel(idx int) queryChannel {
	w.inj.Sync(w.slotNow())
	qc := queryChannel{mode: modeFull, bcastUp: true}
	if w.blackout != nil {
		down := w.blackout.Down(idx, w.nowSec)
		if down != w.chanDown[idx] {
			if !down {
				// Reacquisition: the host left its blackout window. Its
				// missed invalidation reports replay at the next syncIR
				// (the epoch lag is repaired or demoted there).
				w.stats.BlackoutRecoveries++
			}
			w.chanDown[idx] = down
		}
		qc.bcastUp = !down
	}
	if !w.planner {
		if !qc.bcastUp {
			// Naive baseline: the client keeps trying to tune in and only
			// succeeds once the window ends — the whole remaining window
			// is dead air on its clock.
			qc.chWait = int64(math.Ceil(w.blackout.Remaining(idx, w.nowSec) / w.Params.SlotSec))
			if w.counted() {
				w.stats.BlackoutQueries++
				w.stats.BlackoutWaitSlots += qc.chWait
			}
		}
		return qc
	}
	peersUp := !w.inj.DeepFade()
	switch {
	case qc.bcastUp && peersUp:
		qc.mode = modeFull
	case !qc.bcastUp && peersUp:
		qc.mode = modeP2POnly
	case qc.bcastUp && !peersUp:
		qc.mode = modeOnAirOnly
	default:
		qc.mode = modeOwnCache
	}
	if qc.mode != modeFull && w.counted() {
		switch qc.mode {
		case modeP2POnly:
			w.stats.ModeP2POnly++
		case modeOnAirOnly:
			w.stats.ModeOnAirOnly++
		case modeOwnCache:
			w.stats.ModeOwnCache++
		}
		w.stats.ModeSwitchSlots += qc.switchCost()
	}
	return qc
}

// outcomeLabel renders a query's trace outcome: the core outcome string,
// except that a channel-less rung which could not verify reports
// "degraded" (a best-effort peer-side answer) or "unanswered" (nothing
// usable at all) instead of "broadcast" — the channel was never touched.
func outcomeLabel(o core.Outcome, degraded bool, nPOIs int) string {
	if !degraded {
		return o.String()
	}
	if nPOIs > 0 {
		return "degraded"
	}
	return "unanswered"
}

// staleBound computes the own-cache rung's explicit staleness bound: the
// age in simulated seconds of the oldest cached region that contributed
// to the answer (from its Born stamp). The client hands this to the
// application with the result — "this answer may be up to N seconds
// stale". Zero (and absent from traces) for every other rung.
func (w *World) staleBound(mode queryMode, minBorn int64) int64 {
	if mode != modeOwnCache || minBorn == math.MaxInt64 {
		return 0
	}
	bound := int64(w.nowSec) - minBorn
	if bound < 0 {
		bound = 0
	}
	if bound > w.stats.StaleBoundMaxSec {
		w.stats.StaleBoundMaxSec = bound
	}
	return bound
}

// observeBudget tallies the availability metric of channel-impaired runs
// (burst or blackout armed) and of load-governed runs (the governor
// steers by this ratio): a query counts as answered-in-budget when
// it produced an answer on any rung — exact, approximate, channel, or
// degraded — within DeadlineSlots plus one broadcast cycle, the
// end-to-end patience a deadline-bound client realistically has. This is
// the curve on which the fallback ladder beats the naive
// stall-and-retry baseline (EXPERIMENTS.md).
func (w *World) observeBudget(ts *typeState, total int64, answered, shed bool) {
	budget := int64(w.Params.DeadlineSlots) + ts.sched.CycleLength()
	ok := answered && total <= budget
	if ok {
		w.stats.AnsweredInBudget++
	}
	// The load governor steers by this same ratio (overload.go), but
	// only on queries the overload plane did NOT shed: a shed answer
	// rides the slow path the plane itself chose, and feeding its
	// latency back as a budget miss would latch the governor — its own
	// sheds would hold the ratio at zero forever (metastability by
	// construction). Organic degradation (BUSY fallbacks, fades) still
	// feeds the window; shedding relieves those, so that loop damps.
	if !shed && w.govSteering() {
		w.ovl.noteBudget(ok)
	}
}

// appendOwnCache appends the host's own cached regions intersecting the
// relevance rectangle as zero-cost peer data (no wire traffic, no
// transport faults, no breaker), demoting beyond-horizon regions to the
// probabilistic path exactly like the peer-served admission gate. The
// second return value is the oldest Born stamp among the appended
// regions (math.MaxInt64 when none) — the input of the own-cache rung's
// staleness bound.
func (w *World) appendOwnCache(peers []core.PeerData, idx, ti int, relevance geom.Rect) ([]core.PeerData, int64) {
	minBorn := int64(math.MaxInt64)
	for _, r := range w.hosts[idx].caches[ti].Regions() {
		if r.Rect.Intersects(relevance) {
			pd := core.PeerData{VR: r.Rect, POIs: r.POIs}
			if w.cons != nil && r.Epoch < w.cons.types[ti].epoch {
				pd.Tainted = true
				w.stats.VRsDemoted++
				w.mx.observeDemoted()
			}
			peers = append(peers, pd)
			w.qs.owners = append(w.qs.owners, trust.Self)
			if r.Born < minBorn {
				minBorn = r.Born
			}
		}
	}
	return peers, minBorn
}

// collectOwnCacheOnly is the bottom rungs' collection: no requests leave
// the host's radio. force includes the own cache even when the
// UseOwnCache knob is off — the last-resort rung answers from whatever
// the host has, because the alternative is answering with nothing.
func (w *World) collectOwnCacheOnly(idx, ti int, relevance geom.Rect, force bool) ([]core.PeerData, int64) {
	peers := w.qs.peers[:0]
	w.qs.owners = w.qs.owners[:0]
	minBorn := int64(math.MaxInt64)
	if w.Params.UseOwnCache || force {
		peers, minBorn = w.appendOwnCache(peers, idx, ti, relevance)
	}
	w.qs.peers = peers
	return peers, minBorn
}
