// Package broadcast simulates the wireless data broadcast model of
// Imielinski et al. ("Data on Air: Organization and Access") and the
// on-air spatial query algorithms of Zheng et al. ("Spatial Queries in
// Wireless Broadcast Systems") that the paper builds on.
//
// The base station partitions the service area into Hilbert-curve grid
// cells, packs the POIs of consecutive cells into fixed-capacity data
// packets, and broadcasts the packets cyclically in Hilbert order. An
// index describing every packet (its Hilbert range, region, and POI
// count) is interleaved m times per cycle — the (1, m) indexing scheme of
// Figure 2. Time is measured in slots: one data packet occupies one slot
// and an index segment occupies a number of slots proportional to the
// packet count.
//
// Two cost metrics characterize every access (Section 2.1 of the paper):
//
//   - access latency: slots from the moment the query is posed until the
//     last required packet has been received, and
//   - tuning time: slots the client actively listens (a proxy for power).
package broadcast

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lbsq/internal/geom"
	"lbsq/internal/hilbert"
	"lbsq/internal/metrics"
)

// POI is a broadcast point of interest.
type POI struct {
	ID  int64
	Pos geom.Point
}

// Packet is one broadcast data bucket: the POIs of a run of consecutive
// Hilbert cells.
type Packet struct {
	Seq    int       // position in the data file, 0-based
	First  int64     // first Hilbert cell value covered
	Last   int64     // last Hilbert cell value covered
	Region geom.Rect // MBR of the covered cells
	POIs   []POI
}

// Ordering selects the space-filling order in which grid cells are
// broadcast. The paper follows Zheng et al. in using the Hilbert curve
// for its superior locality (Jagadish); the alternatives exist for the
// locality ablation.
type Ordering int

const (
	// OrderingHilbert broadcasts cells in Hilbert-curve order (default).
	OrderingHilbert Ordering = iota
	// OrderingMorton broadcasts cells in Z-order (linear quadtree order).
	OrderingMorton
	// OrderingRowMajor broadcasts cells row by row (no locality across
	// rows) — the naive baseline.
	OrderingRowMajor
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case OrderingMorton:
		return "morton"
	case OrderingRowMajor:
		return "row-major"
	default:
		return "hilbert"
	}
}

// Config parameterizes a broadcast schedule.
type Config struct {
	// Area is the service area covered by the broadcast.
	Area geom.Rect
	// Order is the Hilbert curve order (grid is 2^Order per axis).
	// Defaults to 6 (a 64×64 grid) when zero.
	Order int
	// Ordering selects the cell broadcast order (default Hilbert).
	Ordering Ordering
	// PacketCapacity is the maximum POIs per data packet. Defaults to 8.
	PacketCapacity int
	// M is the index replication factor of the (1, m) scheme. Defaults
	// to 4.
	M int
	// IndexEntriesPerSlot controls how many packet descriptors fit in one
	// index slot. Defaults to 16.
	IndexEntriesPerSlot int
	// TreeIndex models a tree-structured air index (a directory slot
	// pointing at leaf index slots): clients selectively tune only the
	// index slots describing their candidate packets instead of the whole
	// segment, reducing tuning time (power) without changing latency.
	// The flat default reads the full segment, as the (1, m) scheme of
	// Figure 2 implies.
	TreeIndex bool
	// LossRate is the probability that a reception fails — the wireless
	// error model. A lost data packet defers the client to the packet's
	// next cycle occurrence; a lost index segment defers it to the next
	// (1, m) index replica. Zero (default) is a lossless channel; values
	// are clamped to [0, 0.95].
	LossRate float64
	// LossSeed seeds the reception-loss process.
	LossSeed int64
}

// MaxIRReplicaWaits bounds the ListenIR replica wait: after this many
// consecutive lost IR copies the client gives up and reports the listen
// abandoned instead of spinning. Sixteen waits make an accidental
// abandonment negligible at any legal Bernoulli loss rate (0.2^16 ≈
// 7e-12 per listen at 20% broadcast loss) while keeping the wait finite
// under a 100%-loss blackout.
const MaxIRReplicaWaits = 16

func (c *Config) applyDefaults() {
	if c.Order == 0 {
		c.Order = 6
	}
	if c.PacketCapacity == 0 {
		c.PacketCapacity = 8
	}
	if c.M == 0 {
		c.M = 4
	}
	if c.IndexEntriesPerSlot == 0 {
		c.IndexEntriesPerSlot = 16
	}
}

// Schedule is one full broadcast cycle: m interleavings of (index segment,
// data chunk).
type Schedule struct {
	curve          *hilbert.Curve
	packets        []Packet
	m              int
	indexSlots     int
	cycleLen       int64
	indexStarts    []int64 // slot offsets of the index segments within a cycle
	packetSlot     []int64 // slot offset of each packet within a cycle
	totalPOIs      int
	cellPacket     map[int64]int // cell key -> packet seq (only non-empty cells)
	cellKey        func(x, y int) int64
	ordering       Ordering
	lossRate       float64
	lossRng        *rand.Rand
	treeIndex      bool
	entriesPerSlot int
}

// cellKeyFunc returns the broadcast-order key of a grid cell for the
// selected ordering.
func cellKeyFunc(ord Ordering, curve *hilbert.Curve) func(x, y int) int64 {
	side := int64(curve.Side())
	switch ord {
	case OrderingMorton:
		return func(x, y int) int64 { return interleaveBits(int64(x)) | interleaveBits(int64(y))<<1 }
	case OrderingRowMajor:
		return func(x, y int) int64 { return int64(y)*side + int64(x) }
	default:
		return curve.D
	}
}

// interleaveBits spreads the low 32 bits of v into the even bit
// positions (Morton interleaving).
func interleaveBits(v int64) int64 {
	v &= 0x00000000FFFFFFFF
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// Access records the cost of one on-air retrieval.
type Access struct {
	// Latency is the number of slots from the query instant until the
	// last required packet was received. Zero when nothing had to be
	// retrieved from the channel.
	Latency int64
	// Tuning is the number of slots the client actively listened.
	Tuning int64
	// PacketsRead is how many data packets the client downloaded.
	PacketsRead int
	// PacketsSkipped is how many candidate packets were filtered out by
	// SBNN/SBWQ search bounds before retrieval.
	PacketsSkipped int
	// IndexReads counts index segments read (the initial probe).
	IndexReads int
	// Retransmissions counts packet receptions lost to channel errors
	// (the client waited a further cycle for each).
	Retransmissions int
	// IndexRetries counts index-segment receptions lost to channel
	// errors; the client waited for the next (1, m) index replica (or the
	// next cycle when only one remains) for each.
	IndexRetries int
	// Abandoned reports that the client gave up before completing the
	// retrieval: the replica wait hit its bound (MaxIRReplicaWaits lost
	// copies in a row) and the client stopped listening rather than spin
	// on a dead channel. Latency and Tuning still record the slots spent
	// before giving up.
	Abandoned bool
}

// AddTo maps this access record into the per-query phase-span taxonomy
// of internal/metrics: active listening becomes the onair_tune span and
// access latency the onair_download span. The channel layer owns this
// mapping so every consumer (sim, experiments, future serving stacks)
// attributes broadcast costs identically.
func (a Access) AddTo(s *metrics.QuerySpans) {
	s.Add(metrics.PhaseOnAirTune, a.Tuning)
	s.Add(metrics.PhaseOnAirDownload, a.Latency)
}

// add accumulates another access (used when a query needs two passes).
func (a *Access) add(b Access) {
	a.Latency += b.Latency
	a.Tuning += b.Tuning
	a.PacketsRead += b.PacketsRead
	a.PacketsSkipped += b.PacketsSkipped
	a.IndexReads += b.IndexReads
	a.Retransmissions += b.Retransmissions
	a.IndexRetries += b.IndexRetries
	a.Abandoned = a.Abandoned || b.Abandoned
}

// NewSchedule builds the broadcast cycle for the given POIs.
func NewSchedule(pois []POI, cfg Config) (*Schedule, error) {
	cfg.applyDefaults()
	if cfg.M < 1 {
		return nil, fmt.Errorf("broadcast: m must be >= 1, got %d", cfg.M)
	}
	curve, err := hilbert.New(cfg.Order, cfg.Area)
	if err != nil {
		return nil, err
	}

	// Order POIs along the selected space-filling order and group them by
	// grid cell.
	key := cellKeyFunc(cfg.Ordering, curve)
	type keyed struct {
		d    int64
		x, y int
		poi  POI
	}
	ks := make([]keyed, len(pois))
	for i, p := range pois {
		cx, cy := curve.CellOf(p.Pos)
		ks[i] = keyed{d: key(cx, cy), x: cx, y: cy, poi: p}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].d != ks[j].d {
			return ks[i].d < ks[j].d
		}
		return ks[i].poi.ID < ks[j].poi.ID
	})

	// Pack whole cells into packets: a packet always holds every POI of
	// each cell it covers, so retrieving a packet makes the client a
	// complete authority on those cells (the property the verified-cache
	// machinery builds on). A packet closes when adding the next cell
	// would exceed the capacity; a single cell denser than the capacity
	// becomes one oversized packet.
	var packets []Packet
	i := 0
	for i < len(ks) {
		// Collect the run of POIs sharing the next cell.
		j := i + 1
		for j < len(ks) && ks[j].d == ks[i].d {
			j++
		}
		cellPOIs := make([]POI, 0, j-i)
		for _, e := range ks[i:j] {
			cellPOIs = append(cellPOIs, e.poi)
		}
		cellValue := ks[i].d
		cellRect := curve.CellRect(ks[i].x, ks[i].y)

		if n := len(packets); n > 0 &&
			len(packets[n-1].POIs)+len(cellPOIs) <= cfg.PacketCapacity {
			p := &packets[n-1]
			p.Last = cellValue
			p.Region = p.Region.Union(cellRect)
			p.POIs = append(p.POIs, cellPOIs...)
		} else {
			packets = append(packets, Packet{
				Seq:    len(packets),
				First:  cellValue,
				Last:   cellValue,
				Region: cellRect,
				POIs:   cellPOIs,
			})
		}
		i = j
	}

	s := &Schedule{
		curve:          curve,
		packets:        packets,
		m:              cfg.M,
		totalPOIs:      len(pois),
		cellPacket:     make(map[int64]int),
		cellKey:        key,
		ordering:       cfg.Ordering,
		lossRate:       math.Min(math.Max(cfg.LossRate, 0), 0.95),
		lossRng:        rand.New(rand.NewSource(cfg.LossSeed)),
		treeIndex:      cfg.TreeIndex,
		entriesPerSlot: cfg.IndexEntriesPerSlot,
	}
	for _, p := range packets {
		for _, poi := range p.POIs {
			cx, cy := curve.CellOf(poi.Pos)
			s.cellPacket[key(cx, cy)] = p.Seq
		}
	}
	s.indexSlots = (len(packets) + cfg.IndexEntriesPerSlot - 1) / cfg.IndexEntriesPerSlot
	if s.indexSlots == 0 {
		s.indexSlots = 1
	}
	s.layout()
	return s, nil
}

// layout computes the slot positions of the (1, m) cycle: m repetitions of
// [index segment][data chunk].
func (s *Schedule) layout() {
	n := len(s.packets)
	m := s.m
	if m > n && n > 0 {
		m = n // no point replicating the index more often than chunks exist
	}
	if n == 0 {
		m = 1
	}
	chunk := 0
	if m > 0 {
		chunk = (n + m - 1) / m
	}
	s.packetSlot = make([]int64, n)
	s.indexStarts = s.indexStarts[:0]
	pos := int64(0)
	next := 0
	for seg := 0; seg < m; seg++ {
		s.indexStarts = append(s.indexStarts, pos)
		pos += int64(s.indexSlots)
		for i := 0; i < chunk && next < n; i++ {
			s.packetSlot[next] = pos
			pos++
			next++
		}
	}
	s.cycleLen = pos
}

// CycleLength returns the number of slots in one broadcast cycle.
func (s *Schedule) CycleLength() int64 { return s.cycleLen }

// IndexSlots returns the length of one index segment in slots.
func (s *Schedule) IndexSlots() int { return s.indexSlots }

// Packets returns the data packets in broadcast order.
func (s *Schedule) Packets() []Packet { return s.packets }

// TotalPOIs returns the number of POIs in the broadcast file.
func (s *Schedule) TotalPOIs() int { return s.totalPOIs }

// Curve exposes the Hilbert curve organizing the data file.
func (s *Schedule) Curve() *hilbert.Curve { return s.curve }

// M returns the effective index replication factor.
func (s *Schedule) M() int { return len(s.indexStarts) }

// Ordering returns the cell broadcast order in use.
func (s *Schedule) Ordering() Ordering { return s.ordering }

// nextIndexStart returns the first slot >= t at which an index segment
// begins.
func (s *Schedule) nextIndexStart(t int64) int64 {
	phase := mod(t, s.cycleLen)
	base := t - phase
	for _, is := range s.indexStarts {
		if is >= phase {
			return base + is
		}
	}
	return base + s.cycleLen + s.indexStarts[0]
}

// nextPacketArrival returns the first slot >= t at which packet seq is
// fully received (its single-slot transmission completes).
func (s *Schedule) nextPacketArrival(seq int, t int64) int64 {
	slot := s.packetSlot[seq]
	phase := mod(t, s.cycleLen)
	base := t - phase
	if slot >= phase {
		return base + slot
	}
	return base + s.cycleLen + slot
}

func mod(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// probeIndex models the general access protocol's first two steps: the
// initial probe plus reading one index segment. It returns the slot at
// which the client holds the index and the accumulated access cost. With
// a flat index the whole segment is tuned; with a tree index only the
// directory is tuned here and indexTuning adds the visited leaf slots
// once the candidate set is known.
//
// Under channel errors an index-segment reception can fail like any other
// packet; the client then stays tuned through the wasted segment and
// waits for the next (1, m) index replica — one of m per cycle — before
// it can resolve any packet addresses. Each such wait is counted in
// Access.IndexRetries and widens both latency and tuning time.
func (s *Schedule) probeIndex(start int64) (int64, Access) {
	is := s.nextIndexStart(start)
	segTuning := int64(s.indexSlots) // slots tuned per segment read
	if s.treeIndex {
		segTuning = 1 // directory slot only
	}
	acc := Access{Tuning: 1, IndexReads: 1} // the initial probe
	for s.lossRate > 0 && s.lossRng.Float64() < s.lossRate {
		// Reception failed: the tuned slots are wasted and the client
		// retunes at the next index replica.
		acc.Tuning += segTuning
		acc.IndexRetries++
		is = s.nextIndexStart(is + int64(s.indexSlots))
	}
	acc.Tuning += segTuning
	done := is + int64(s.indexSlots)
	acc.Latency = done - start
	return done, acc
}

// ListenIR models a client tuning in for the invalidation report that
// rides every (1, m) index segment (consistency layer, DESIGN.md §12):
// wait for the next index replica, read the segment, and on reception
// failure stay tuned through the wasted segment and retry at the next
// replica — the same replica-wait discipline as probeIndex. lost is
// consulted once per reception attempt and reports whether that copy of
// the IR was lost on air; nil means a clean channel. The returned access
// carries the latency and tuning cost of the listen; IndexRetries counts
// the lost copies.
//
// Loss draws come from the caller rather than the schedule's own loss
// stream so that IR listening — active only when the consistency layer is
// armed — never perturbs the query path's random sequence.
//
// Unlike probeIndex — whose loss rate is the schedule's own, clamped to
// [0, 0.95] — the caller's loss draws may report 100% sustained loss
// (a blackout, a dead receiver). The replica wait therefore gives up
// after MaxIRReplicaWaits consecutive lost copies: the access comes back
// with Abandoned set and the slots actually spent, and the caller keeps
// its old IR epoch instead of spinning forever on a channel that is not
// delivering.
func (s *Schedule) ListenIR(start int64, lost func() bool) Access {
	is := s.nextIndexStart(start)
	segTuning := int64(s.indexSlots)
	if s.treeIndex {
		segTuning = 1 // the IR rides the directory slot
	}
	acc := Access{Tuning: 1, IndexReads: 1}
	for lost != nil && lost() {
		acc.Tuning += segTuning
		acc.IndexRetries++
		if acc.IndexRetries >= MaxIRReplicaWaits {
			acc.Abandoned = true
			// Latency counts the slots burned up to the last wasted
			// segment; no IR was received.
			acc.Latency = is + int64(s.indexSlots) - start
			return acc
		}
		is = s.nextIndexStart(is + int64(s.indexSlots))
	}
	acc.Tuning += segTuning
	acc.Latency = is + int64(s.indexSlots) - start
	return acc
}

// indexTuning returns the extra index slots a tree-index client tunes:
// the distinct leaf slots holding the entries of the candidate packets.
// Zero for the flat index (already fully read by probeIndex).
func (s *Schedule) indexTuning(candidates []int) int64 {
	if !s.treeIndex || s.entriesPerSlot <= 0 {
		return 0
	}
	slots := map[int]bool{}
	for _, seq := range candidates {
		slots[seq/s.entriesPerSlot] = true
	}
	return int64(len(slots))
}

// retrieve downloads the given packet sequence numbers starting no earlier
// than `from`, returning their POIs and the cost. The client sleeps
// between packets (selective tuning), so tuning grows by one slot per
// packet while latency runs to the last arrival.
func (s *Schedule) retrieve(seqs []int, from int64) ([]POI, int64, Access) {
	var acc Access
	if len(seqs) == 0 {
		return nil, from, acc
	}
	last := from
	var pois []POI
	for _, seq := range seqs {
		at := s.nextPacketArrival(seq, from)
		// Channel errors: each failed reception wastes the listening slot
		// and defers the packet to its next cycle occurrence.
		for s.lossRate > 0 && s.lossRng.Float64() < s.lossRate {
			acc.Tuning++
			acc.Retransmissions++
			at = s.nextPacketArrival(seq, at+1)
		}
		if at > last {
			last = at
		}
		pois = append(pois, s.packets[seq].POIs...)
		acc.Tuning++
		acc.PacketsRead++
	}
	acc.Latency = last - from + 1
	return pois, last + 1, acc
}

// KNN runs the plain on-air k-nearest-neighbor algorithm (no peer
// knowledge): scan the index to derive a search range guaranteed to hold
// the k nearest POIs, then retrieve every packet intersecting that range.
// start is the absolute slot at which the query is posed.
func (s *Schedule) KNN(q geom.Point, k int, start int64) ([]POI, Access) {
	return s.KNNWithBounds(q, k, start, Bounds{})
}

// Bounds carries the search bounds SBNN derives from the partial result
// heap (Section 3.3.3). Zero value means "no bounds".
type Bounds struct {
	// Upper, when positive, is a proven upper bound on the k-th NN
	// distance (the distance of the last entry of a full heap, state 1
	// and 2). Packets beyond it cannot contribute.
	Upper float64
	// Lower, when positive, is the verified-knowledge radius (distance of
	// the last verified entry, states 1, 3 and 4): every POI within Lower
	// of the query point is already known from peers, so packets entirely
	// inside that circle are skipped.
	Lower float64
}

// KNNWithBounds runs the on-air kNN search with SBNN packet filtering.
// The returned POI set excludes the contents of skipped packets; the
// caller is expected to merge it with the peer-supplied POIs that
// justified the bounds.
func (s *Schedule) KNNWithBounds(q geom.Point, k int, start int64, b Bounds) ([]POI, Access) {
	if k <= 0 || len(s.packets) == 0 {
		_, acc := s.probeIndex(start)
		return nil, acc
	}
	after, acc := s.probeIndex(start)

	radius := b.Upper
	if radius <= 0 {
		radius = s.SearchRadius(q, k)
	}
	searchRange := geom.RectAround(q, radius)

	var need []int
	for _, p := range s.packets {
		if !p.Region.Intersects(searchRange) {
			continue
		}
		// Strictly inside the verified circle: every POI of the packet is
		// nearer than the last verified entry and therefore already known
		// from peers. The comparison is strict so ties at exactly the
		// verified radius are never skipped.
		if b.Lower > 0 && p.Region.MaxDist(q) < b.Lower {
			acc.PacketsSkipped++
			continue
		}
		need = append(need, p.Seq)
	}
	acc.Tuning += s.indexTuning(need)
	pois, _, racc := s.retrieve(need, after)
	acc.add(racc)
	return pois, acc
}

// SearchRadius derives, from index information alone, a radius guaranteed
// to contain at least k POIs: the smallest r such that the packets whose
// regions lie entirely within distance r of q together hold k POIs. This
// models the first index scan of the on-air kNN algorithm; clients use it
// to know which region their retrieval made them an authority on.
func (s *Schedule) SearchRadius(q geom.Point, k int) float64 {
	type pk struct {
		maxDist float64
		count   int
	}
	ps := make([]pk, len(s.packets))
	total := 0
	for i, p := range s.packets {
		ps[i] = pk{maxDist: p.Region.MaxDist(q), count: len(p.POIs)}
		total += len(p.POIs)
	}
	if total <= k {
		// Fewer POIs than requested: the whole file is the answer.
		max := 0.0
		for _, p := range ps {
			if p.maxDist > max {
				max = p.maxDist
			}
		}
		return max
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].maxDist < ps[j].maxDist })
	acc := 0
	for _, p := range ps {
		acc += p.count
		if acc >= k {
			return p.maxDist
		}
	}
	return ps[len(ps)-1].maxDist
}

// Window runs the plain on-air window query: retrieve every packet whose
// region intersects w and filter the POIs.
func (s *Schedule) Window(w geom.Rect, start int64) ([]POI, Access) {
	return s.WindowReduced([]geom.Rect{w}, start)
}

// WindowReduced runs the on-air window query over a set of (reduced)
// windows — the w′ rectangles SBWQ computes by subtracting the merged
// verified region from the original window. POIs outside every window are
// filtered out before returning.
func (s *Schedule) WindowReduced(windows []geom.Rect, start int64) ([]POI, Access) {
	out, _, _, acc := s.WindowReducedDetailed(windows, start)
	return out, acc
}

// WindowReducedDetailed is WindowReduced exposing the full retrieval: the
// filtered result, the raw contents of every downloaded packet, and the
// downloaded packet sequence numbers. SBWQ uses the extra data to turn the
// retrieval into cached verified knowledge (the paper's "store received
// POIs with their collective MBR" cache policy).
func (s *Schedule) WindowReducedDetailed(windows []geom.Rect, start int64) (filtered, raw []POI, retrieved []int, acc Access) {
	after, acc := s.probeIndex(start)
	if len(s.packets) == 0 {
		return nil, nil, nil, acc
	}
	var need []int
	for _, p := range s.packets {
		hit := false
		for _, w := range windows {
			if p.Region.Intersects(w) {
				hit = true
				break
			}
		}
		if hit {
			need = append(need, p.Seq)
		} else {
			acc.PacketsSkipped++
		}
	}
	acc.Tuning += s.indexTuning(need)
	raw, _, racc := s.retrieve(need, after)
	acc.add(racc)
	for _, poi := range raw {
		for _, w := range windows {
			if w.Contains(poi.Pos) {
				filtered = append(filtered, poi)
				break
			}
		}
	}
	return filtered, raw, need, acc
}

// CellComplete reports whether the grid cell (x, y) is completely known
// given the retrieved packet set: either the cell is empty, or its
// (unique, by cell-granular packing) packet was downloaded.
func (s *Schedule) CellComplete(x, y int, retrieved map[int]bool) bool {
	seq, ok := s.cellPacket[s.cellKey(x, y)]
	if !ok {
		return true // empty cell: trivially complete
	}
	return retrieved[seq]
}

// GrowCompleteRect expands the seed rectangle outward, one cell row or
// column at a time, for as long as every newly covered cell is complete
// under the retrieved packet set and the area stays within maxArea. It
// returns the grown cell-aligned rectangle, or the seed unchanged when
// even the seed's own cells are not all complete. The result is the
// largest sound "collective MBR" a client may cache after a window
// retrieval.
func (s *Schedule) GrowCompleteRect(seed geom.Rect, retrieved []int, maxArea float64) geom.Rect {
	if seed.Empty() {
		return seed
	}
	got := make(map[int]bool, len(retrieved))
	for _, seq := range retrieved {
		got[seq] = true
	}
	x0, y0 := s.curve.CellOf(seed.Min)
	x1, y1 := s.curve.CellOf(seed.Max)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if !s.CellComplete(x, y, got) {
				return seed
			}
		}
	}
	cellRect := func(ax0, ay0, ax1, ay1 int) geom.Rect {
		return s.curve.CellRect(ax0, ay0).Union(s.curve.CellRect(ax1, ay1))
	}
	colComplete := func(x, ay0, ay1 int) bool {
		if x < 0 || x >= s.curve.Side() {
			return false
		}
		for y := ay0; y <= ay1; y++ {
			if !s.CellComplete(x, y, got) {
				return false
			}
		}
		return true
	}
	rowComplete := func(y, ax0, ax1 int) bool {
		if y < 0 || y >= s.curve.Side() {
			return false
		}
		for x := ax0; x <= ax1; x++ {
			if !s.CellComplete(x, y, got) {
				return false
			}
		}
		return true
	}
	for {
		grew := false
		if colComplete(x0-1, y0, y1) && cellRect(x0-1, y0, x1, y1).Area() <= maxArea {
			x0--
			grew = true
		}
		if colComplete(x1+1, y0, y1) && cellRect(x0, y0, x1+1, y1).Area() <= maxArea {
			x1++
			grew = true
		}
		if rowComplete(y0-1, x0, x1) && cellRect(x0, y0-1, x1, y1).Area() <= maxArea {
			y0--
			grew = true
		}
		if rowComplete(y1+1, x0, x1) && cellRect(x0, y0, x1, y1+1).Area() <= maxArea {
			y1++
			grew = true
		}
		if !grew {
			break
		}
	}
	grown := cellRect(x0, y0, x1, y1)
	// The grown rect always contains the (cell-aligned bounding box of
	// the) seed; return the union with the seed for exact containment.
	return grown.Union(seed)
}

// FullCycleAccess returns the cost of downloading the entire data file —
// the worst case a client without any index or sharing would pay.
func (s *Schedule) FullCycleAccess(start int64) Access {
	return Access{
		Latency:     s.cycleLen,
		Tuning:      s.cycleLen,
		PacketsRead: len(s.packets),
	}
}

// ExpectedKNNLatency estimates the mean on-air kNN latency by averaging
// over every possible starting phase of the cycle. It is used by the
// analytical model and the latency experiment.
func (s *Schedule) ExpectedKNNLatency(q geom.Point, k int, samples int) float64 {
	if samples <= 0 {
		samples = 16
	}
	total := 0.0
	for i := 0; i < samples; i++ {
		start := int64(math.Round(float64(i) / float64(samples) * float64(s.cycleLen)))
		_, acc := s.KNN(q, k, start)
		total += float64(acc.Latency)
	}
	return total / float64(samples)
}
