package perf

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestFaultGridParallelIdentity checks the in-process bench grid obeys
// the sweep determinism contract: every worker count yields the same
// rows apart from the wall-clock field, across the whole fault ×
// resilience matrix.
func TestFaultGridParallelIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation in -short mode")
	}
	serial, err := RunFaultGrid(1, 1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(FaultGrid()) {
		t.Fatalf("grid returned %d rows, want %d", len(serial), len(FaultGrid()))
	}
	for _, workers := range []int{2, 4} {
		par, err := RunFaultGrid(workers, 1, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			a, b := serial[i], par[i]
			a.WallSeconds, b.WallSeconds = 0, 0 // the one nondeterministic field
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("workers=%d: grid row %d differs from serial", workers, i)
			}
		}
	}
}

// TestFaultGridCellOrder pins the row order to the historical shell
// loop: plain cells first in ascending loss, then resilient cells, then
// the appended POI-churn pair (surgical, then whole-discard), then the
// channel-impairment triplet (burst naive, burst planned, blackout
// planned), then the flash-crowd pair (uncontrolled, governed). New
// cells must append — never reorder — so the legacy BENCH_faults.json
// row prefix stays byte-stable.
func TestFaultGridCellOrder(t *testing.T) {
	grid := FaultGrid()
	want := []FaultCell{
		{Loss: 0}, {Loss: 0.05}, {Loss: 0.1}, {Loss: 0.2},
		{Loss: 0, Resilient: true}, {Loss: 0.05, Resilient: true},
		{Loss: 0.1, Resilient: true}, {Loss: 0.2, Resilient: true},
		{Loss: 0.1, Resilient: true, UpdateRate: 2},
		{Loss: 0.1, Resilient: true, UpdateRate: 2, Discard: true},
		{Loss: 0.1, Resilient: true, Burst: true},
		{Loss: 0.1, Resilient: true, Burst: true, Degraded: true},
		{Resilient: true, Blackout: true, Degraded: true},
		{Loss: 0.1, Resilient: true, Crowd: true},
		{Loss: 0.1, Resilient: true, Crowd: true, Governed: true},
	}
	if !reflect.DeepEqual(grid, want) {
		t.Fatalf("FaultGrid order changed: %+v", grid)
	}
}

// TestCompare exercises the regression gate logic.
func TestCompare(t *testing.T) {
	base := Hotpath{
		Micro: []Micro{
			{Name: "a", NsPerOp: 1000, AllocsPerOp: 3},
			{Name: "b", NsPerOp: 500, AllocsPerOp: 0},
			{Name: "retired", NsPerOp: 10},
		},
		Sweep: Sweep{Identical: true},
	}
	cur := Hotpath{
		Micro: []Micro{
			{Name: "a", NsPerOp: 1100, AllocsPerOp: 3}, // +10%: within tolerance
			{Name: "b", NsPerOp: 500, AllocsPerOp: 0},
			{Name: "new", NsPerOp: 999999}, // no baseline: ignored
		},
		Sweep: Sweep{Identical: true},
	}
	if fails := Compare(base, cur, 0.25); len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}

	cur.Micro[0].NsPerOp = 1500 // +50%: beyond tolerance
	cur.Micro[1].AllocsPerOp = 1
	cur.Sweep.Identical = false
	fails := Compare(base, cur, 0.25)
	if len(fails) != 3 {
		t.Fatalf("want 3 failures (ns/op, allocs/op, identity), got %d: %v", len(fails), fails)
	}
	joined := strings.Join(fails, "\n")
	for _, frag := range []string{"ns/op", "allocs/op", "determinism"} {
		if !strings.Contains(joined, frag) {
			t.Fatalf("failures missing %q: %v", frag, fails)
		}
	}
}

// TestHotpathRoundTrip checks the report file format survives a
// write/load cycle (the baseline-compare path in CI).
func TestHotpathRoundTrip(t *testing.T) {
	rep := Hotpath{
		BenchSchema: HotpathSchemaVersion,
		GoMaxProcs:  4,
		NumCPU:      8,
		GoVersion:   "go-test",
		Micro:       []Micro{{Name: "x", NsPerOp: 123.5, BytesPerOp: 64, AllocsPerOp: 2}},
		Sweep:       Sweep{Cells: 30, Workers: 4, SerialSeconds: 2, ParallelSeconds: 1, Speedup: 2, Identical: true},
	}
	path := filepath.Join(t.TempDir(), "hot.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHotpath(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, rep)
	}
}
