package sim

// Overload-plane acceptance tests (DESIGN.md §16): the zero-knob
// identity contract, the governor/admission/retry/coalescing mechanics
// in isolation, the BUSY-is-not-a-strike breaker contract, the
// lbsq_overload_* metrics, and the flash-crowd survival scenario the
// PR exists for (governed runs stay live and recover; shedding stays
// sound under ground-truth self-checks).

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/core"
	"lbsq/internal/geom"
	"lbsq/internal/trace"
)

// makePeers builds n screened peer contributions over vr, each with a
// couple of POIs, for donor-table tests.
func makePeers(n int, vr geom.Rect) []core.PeerData {
	peers := make([]core.PeerData, n)
	for i := range peers {
		peers[i] = core.PeerData{
			VR: vr,
			POIs: []broadcast.POI{
				{ID: int64(10*i + 1), Pos: vr.Min},
				{ID: int64(10*i + 2), Pos: vr.Max},
			},
		}
	}
	return peers
}

// crowdParams is the shared flash-crowd scenario: a dense small world
// on a lossy substrate with a 40× hotspot burst (radius 0.2mi) through
// the middle third of the run — placed after the 30% warm-up so every
// crowd query is counted, with a ~18-tick quiet tail to observe
// recovery in.
func crowdParams() Params {
	p := LACity().Scaled(1.5).WithDuration(0.15)
	p.Seed = 777
	p.TimeStepSec = 10
	p.Kind = KNNQuery
	p.AcceptApproximate = true
	p.Faults.RequestLoss = 0.3
	p.Faults.ReplyLoss = 0.15
	p.Faults.BroadcastLoss = 0.3
	p.Faults.MaxRetries = 4
	p.DeadlineSlots = 16
	p.BreakerThreshold = 3
	p.BreakerCooldown = 8
	p.CrowdRate = p.QueryRate * 40
	p.CrowdRadiusMiles = 0.2
	p.CrowdStartSec = 180
	p.CrowdDurationSec = 180
	return p
}

// withOverloadControls arms the full demand-side stack on top of p,
// tuned so every lever visibly moves under crowdParams: cap-2 service
// queues saturate, burst-2 buckets drain on hotspot repeats, the tight
// retry budget exhausts, and the small coalescing radius shares gathers
// without absorbing the whole hotspot.
func withOverloadControls(p Params) Params {
	p.PeerQueueCap = 2
	p.RetryBudget = 8
	p.AdmissionRate = 0.1
	p.AdmissionBurst = 2
	p.Governed = true
	p.GovernorFloor = 0.95
	p.CoalesceRadiusMiles = 0.08
	return p
}

// TestOverloadZeroKnob pins the zero-knob contract: with every crowd
// and overload knob off the plane is never constructed, no overload
// counter moves, and neither report rows nor trace events carry any of
// the new keys.
func TestOverloadZeroKnob(t *testing.T) {
	p := LACity().Scaled(1.5).WithDuration(0.05)
	p.Seed = 11
	p.TimeStepSec = 10
	p.Kind = KNNQuery
	p.AcceptApproximate = true
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	if w.ovl != nil {
		t.Fatal("overload plane allocated with every knob off")
	}
	var trBuf bytes.Buffer
	w.Trace = trace.NewWriter(&trBuf)
	s := w.Run()
	w.Trace.Flush()
	if s.OverloadEvents() != 0 {
		t.Fatalf("overload counters moved with the plane off: %+v", s)
	}
	js, err := json.Marshal(NewReport(p, s, false, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"crowd_rate", "peer_queue_cap", "retry_budget", "admission_rate",
		"governed", "governor_floor", "coalesce_radius_miles",
		"overload_events", "goodput_pct", "CrowdQueries", "BusyReplies",
		"Shed",
	} {
		if bytes.Contains(js, []byte(`"`+key+`"`)) {
			t.Errorf("zero-knob report row carries %q:\n%s", key, js)
		}
	}
	for _, key := range []string{`"shed"`, `"coalesced"`} {
		if bytes.Contains(trBuf.Bytes(), []byte(key)) {
			t.Errorf("zero-knob trace carries %s", key)
		}
	}
}

// TestGovernorEngageDisengage drives the governor state machine
// directly: sustained under-floor ratios engage it, recovery past the
// hysteresis band disengages it, and vanished load disengages it even
// without recovery.
func TestGovernorEngageDisengage(t *testing.T) {
	p := LACity()
	p.Governed = true
	p.GovernorFloor = 0.9
	w := &World{ovl: newOverloadState(p)}
	o := w.ovl
	if o == nil || !o.governed {
		t.Fatal("governed state not built")
	}

	// Healthy ticks: 10 queries, all in budget — stays disengaged.
	for tick := 0; tick < 5; tick++ {
		for q := 0; q < 10; q++ {
			o.noteBudget(true)
		}
		w.tickReset(10)
		if o.engaged {
			t.Fatalf("governor engaged on healthy tick %d", tick)
		}
	}
	// Collapse: half the queries miss budget — must engage.
	engagedAt := -1
	for tick := 0; tick < 10; tick++ {
		for q := 0; q < 10; q++ {
			o.noteBudget(q%2 == 0)
		}
		w.tickReset(10)
		if o.engaged {
			engagedAt = tick
			break
		}
	}
	if engagedAt < 0 {
		t.Fatal("governor never engaged at a 50% in-budget ratio")
	}
	if w.stats.GovernorEngagedTicks == 0 {
		t.Error("engaged ticks not counted")
	}
	// Recovery: all in budget again — must disengage within a bounded
	// tail (the EWMA forgets the collapse geometrically).
	recovered := false
	for tick := 0; tick < 20; tick++ {
		for q := 0; q < 10; q++ {
			o.noteBudget(true)
		}
		w.tickReset(10)
		if !o.engaged {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("governor never disengaged after full recovery")
	}

	// Floor 1.0: the disengage threshold caps at 1, so perfection can
	// still disengage.
	p.GovernorFloor = 1
	w2 := &World{ovl: newOverloadState(p)}
	o2 := w2.ovl
	for tick := 0; tick < 5; tick++ {
		o2.noteBudget(false)
		w2.tickReset(10)
	}
	if !o2.engaged {
		t.Fatal("floor-1.0 governor never engaged")
	}
	for tick := 0; tick < 30 && o2.engaged; tick++ {
		for q := 0; q < 10; q++ {
			o2.noteBudget(true)
		}
		w2.tickReset(10)
	}
	if o2.engaged {
		t.Error("floor-1.0 governor latched up despite perfect recovery")
	}

	// Vanished load: engaged, then zero queries — the EWMA decays below
	// the half-query floor and disengages (nothing left to govern).
	p.GovernorFloor = 0.9
	w3 := &World{ovl: newOverloadState(p)}
	o3 := w3.ovl
	for tick := 0; tick < 5; tick++ {
		for q := 0; q < 10; q++ {
			o3.noteBudget(false)
		}
		w3.tickReset(10)
	}
	if !o3.engaged {
		t.Fatal("governor never engaged before the load vanished")
	}
	for tick := 0; tick < 30 && o3.engaged; tick++ {
		w3.tickReset(10)
	}
	if o3.engaged {
		t.Error("governor latched up on vanished load")
	}
}

// TestAdmissionBucket pins the token-bucket mechanics: bursts drain a
// full bucket, empty buckets deny with the admission cause, the refill
// is deterministic and capped, and exempt (continuous) traffic is
// always admitted without consuming tokens.
func TestAdmissionBucket(t *testing.T) {
	p := LACity()
	p.MHNumber = 2
	p.AdmissionRate = 0.1 // 1 token per 10-second tick
	p.AdmissionBurst = 2
	w := &World{ovl: newOverloadState(p)}
	o := w.ovl

	for i := 0; i < 2; i++ {
		if ok, cause := w.admitOneShot(0); !ok || cause != shedNone {
			t.Fatalf("admit %d: denied with a full bucket (cause %v)", i, cause)
		}
	}
	if ok, cause := w.admitOneShot(0); ok || cause != shedAdmission {
		t.Fatalf("empty bucket admitted (ok=%v cause=%v)", ok, cause)
	}
	if w.stats.AdmissionDenied != 1 || w.stats.Shed != 1 {
		t.Fatalf("denial not counted: %+v", w.stats)
	}
	// Host 1's bucket is untouched by host 0's burst.
	if ok, _ := w.admitOneShot(1); !ok {
		t.Fatal("independent bucket drained by another host")
	}
	// One tick refills one token; the cap holds at the burst depth.
	w.tickReset(10)
	if ok, _ := w.admitOneShot(0); !ok {
		t.Fatal("refilled bucket still denies")
	}
	for i := 0; i < 10; i++ {
		w.tickReset(10)
	}
	if got := o.tokens[0]; got != o.admBurst {
		t.Fatalf("bucket overfilled past burst: %v > %v", got, o.admBurst)
	}
	// Exempt traffic: admitted from an empty bucket, consumes nothing.
	o.tokens[0] = 0
	w.overloadExempt(true)
	if ok, cause := w.admitOneShot(0); !ok || cause != shedNone {
		t.Fatalf("exempt traffic denied (cause %v)", cause)
	}
	w.overloadExempt(false)
	if o.tokens[0] != 0 {
		t.Error("exempt admission consumed a token")
	}
}

// TestRetryBudget pins the global per-tick retry pool: takeRetry drains
// it, exhaustion refuses, tickReset replenishes, exempt traffic
// bypasses, and a nil/unbudgeted plane always grants.
func TestRetryBudget(t *testing.T) {
	var nilW World
	if !nilW.ovl.takeRetry() {
		t.Fatal("nil plane refused a retry")
	}
	p := LACity()
	p.RetryBudget = 2
	w := &World{ovl: newOverloadState(p)}
	o := w.ovl
	if !o.takeRetry() || !o.takeRetry() {
		t.Fatal("budgeted retries refused")
	}
	if o.takeRetry() {
		t.Fatal("exhausted budget granted a retry")
	}
	w.tickReset(10)
	if !o.takeRetry() {
		t.Fatal("replenished budget refused")
	}
	o.retryTokens = 0
	o.exempt = true
	if !o.takeRetry() {
		t.Fatal("exempt traffic hit the retry budget")
	}
}

// TestCoalesceDonorTable pins the donor table mechanics: the type,
// radius, and overlap gates; the per-tick bound; the tick reset; and —
// critically — that donated peer sets are deep copies no later mutation
// of the source slices can reach.
func TestCoalesceDonorTable(t *testing.T) {
	p := LACity()
	p.CoalesceRadiusMiles = 0.5
	w := &World{ovl: newOverloadState(p)}

	rel := geom.NewRect(1, 1, 3, 3)
	src := makePeers(2, rel)
	w.coalesceDonate(0, geom.Pt(2, 2), rel, src, 7)

	if d := w.coalesceLookup(1, geom.Pt(2, 2), rel); d != nil {
		t.Error("type gate failed: different data type matched")
	}
	if d := w.coalesceLookup(0, geom.Pt(2.6, 2), rel); d != nil {
		t.Error("radius gate failed: origin 0.6mi away matched a 0.5mi radius")
	}
	if d := w.coalesceLookup(0, geom.Pt(2.2, 2), geom.NewRect(10, 10, 12, 12)); d != nil {
		t.Error("overlap gate failed: disjoint relevance matched")
	}
	d := w.coalesceLookup(0, geom.Pt(2.2, 2), geom.NewRect(2, 2, 4, 4))
	if d == nil {
		t.Fatal("co-located overlapping query missed the donor")
	}
	if d.nPeers != 7 || len(d.peers) != len(src) {
		t.Fatalf("donor snapshot wrong: nPeers=%d peers=%d", d.nPeers, len(d.peers))
	}
	// Mutate the source after donation: the snapshot must be unaffected.
	wantID := d.peers[0].POIs[0].ID
	src[0].POIs[0].ID = -999
	src[0].VR = geom.NewRect(0, 0, 0, 0)
	if got := d.peers[0].POIs[0].ID; got != wantID {
		t.Fatalf("donated POIs alias the source: got %d want %d", got, wantID)
	}
	if d.peers[0].VR != rel {
		t.Fatal("donated VR aliases the source")
	}

	// The table bounds at maxCoalesceDonors per tick and clears on reset.
	for i := 0; i < maxCoalesceDonors+5; i++ {
		w.coalesceDonate(0, geom.Pt(2, 2), rel, src, 1)
	}
	if w.ovl.nDonors != maxCoalesceDonors {
		t.Fatalf("donor table overflowed: %d", w.ovl.nDonors)
	}
	w.tickReset(10)
	if w.ovl.nDonors != 0 {
		t.Fatal("donor table survived the tick reset")
	}
	if d := w.coalesceLookup(0, geom.Pt(2, 2), rel); d != nil {
		t.Fatal("stale donor matched after reset")
	}
}

// TestBusyNotBreakerStrike is the no-false-trips regression (the
// fade-suppression analog for backpressure): on a loss-free substrate
// with tiny service queues and armed breakers, saturation must produce
// BUSY replies and queue drops without a single breaker strike — a busy
// peer is not a broken peer.
func TestBusyNotBreakerStrike(t *testing.T) {
	p := LACity().Scaled(1.5).WithDuration(0.05)
	p.Seed = 31
	p.TimeStepSec = 10
	p.Kind = KNNQuery
	p.AcceptApproximate = true
	p.QueryRate *= 4 // saturate the per-tick queues
	p.BreakerThreshold = 3
	p.BreakerCooldown = 8
	p.PeerQueueCap = 1
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w.SelfCheck = true
	s := w.Run()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatal(err)
	}
	if s.BusyReplies == 0 {
		t.Error("no BUSY reply despite cap-1 queues under 4x load")
	}
	if s.QueueDrops == 0 {
		t.Error("no queue drop despite cap-1 queues under 4x load")
	}
	if s.BreakerTrips != 0 {
		t.Errorf("backpressure tripped %d breakers on a loss-free substrate (busy=%d drops=%d)",
			s.BreakerTrips, s.BusyReplies, s.QueueDrops)
	}
}

// TestCrowdNoMetastability is the flash-crowd survival scenario: the
// same hotspot burst runs uncontrolled and fully governed. Both must
// stay sound (ground-truth self-checks green — shedding never
// fabricates an answer) and fully answered; the uncontrolled run must
// visibly collapse into a retry storm on the shared medium while the
// governed run bounds that amplification, keeps its answered-in-budget
// ratio above the governor floor, exercises every control lever, and —
// the no-metastability invariant — ends disengaged with at most a
// bounded engaged tail after the crowd passes instead of latching into
// permanent shedding.
func TestCrowdNoMetastability(t *testing.T) {
	if testing.Short() {
		t.Skip("crowd scenario in -short mode")
	}
	run := func(p Params) (*World, Stats) {
		w, err := NewWorld(p)
		if err != nil {
			t.Fatal(err)
		}
		w.SelfCheck = true
		s := w.Run()
		if err := w.SelfCheckErr(); err != nil {
			t.Fatalf("self-check: %v", err)
		}
		return w, s
	}
	// The uncontrolled run arms the governor as an inert observer (an
	// epsilon floor never engages — exact zero would be default-filled
	// to 0.9) so AnsweredInBudget is measured on both sides; every
	// actual control stays off.
	uncontrolled := crowdParams()
	uncontrolled.Governed = true
	uncontrolled.GovernorFloor = 1e-9
	governed := withOverloadControls(crowdParams())
	_, su := run(uncontrolled)
	wg, sg := run(governed)

	// The crowd is the same disturbance in both runs (dedicated stream,
	// movement untouched by the controls).
	if su.CrowdQueries == 0 || su.CrowdQueries != sg.CrowdQueries {
		t.Fatalf("crowd streams diverged: uncontrolled=%d governed=%d",
			su.CrowdQueries, sg.CrowdQueries)
	}
	if su.Shed != 0 {
		t.Errorf("inert observer shed %d queries", su.Shed)
	}
	// Every query still terminates in an answered outcome in both runs.
	for name, s := range map[string]Stats{"uncontrolled": su, "governed": sg} {
		if s.Verified+s.Approximate+s.Broadcast != s.Queries {
			t.Errorf("%s: outcomes do not partition queries: %+v", name, s)
		}
	}
	// The control levers actually moved.
	if sg.Shed == 0 {
		t.Error("governed run never shed a query")
	}
	if sg.BusyReplies == 0 {
		t.Error("governed run never pushed back with BUSY")
	}
	if sg.Coalesced == 0 {
		t.Error("governed run never coalesced a co-located gather")
	}
	if sg.RetryBudgetExhausted == 0 {
		t.Error("governed run never exhausted a retry budget")
	}
	// Collapse vs survival: on identical offered load the uncontrolled
	// run floods the shared medium — well past 2x the request traffic
	// and 5x the retry/backoff spend of the governed run (measured
	// margins are 8x/14x/15x; the asserts leave headroom).
	if su.PeerRequests < 2*sg.PeerRequests {
		t.Errorf("uncontrolled run did not amplify requests: %d vs governed %d",
			su.PeerRequests, sg.PeerRequests)
	}
	if su.PeerRetries < 5*sg.PeerRetries {
		t.Errorf("uncontrolled run did not storm retries: %d vs governed %d",
			su.PeerRetries, sg.PeerRetries)
	}
	if su.BackoffSlots < 5*sg.BackoffSlots {
		t.Errorf("uncontrolled run did not burn backoff slots: %d vs governed %d",
			su.BackoffSlots, sg.BackoffSlots)
	}
	// The governed run holds the answered-in-budget ratio above its own
	// governor floor right through the crowd.
	if 100*sg.AnsweredInBudget < int64(100*governed.GovernorFloor)*int64(sg.Queries) {
		t.Errorf("governed run fell below its floor: %d/%d in budget",
			sg.AnsweredInBudget, sg.Queries)
	}
	// No metastability: the governor is disengaged at the end of the run
	// and spent at most a bounded tail engaged after the crowd window
	// closed (the run has ~18 post-crowd ticks; a metastable system
	// stays engaged through all of them).
	if wg.GovernorEngaged() {
		t.Error("governor still engaged at end of run")
	}
	if rec := wg.OverloadRecoveryTicks(); rec > 10 {
		t.Errorf("governor stayed engaged %d ticks past the crowd window", rec)
	}
	t.Logf("uncontrolled: requests=%d retries=%d backoff=%d; governed: requests=%d retries=%d backoff=%d shed=%d busy=%d drops=%d coalesced=%d exhausted=%d govticks=%d recovery=%d",
		su.PeerRequests, su.PeerRetries, su.BackoffSlots,
		sg.PeerRequests, sg.PeerRetries, sg.BackoffSlots,
		sg.Shed, sg.BusyReplies, sg.QueueDrops, sg.Coalesced,
		sg.RetryBudgetExhausted, sg.GovernorEngagedTicks,
		wg.OverloadRecoveryTicks())
}

// TestOverloadMetrics pins the lbsq_overload_* instruments: registered
// only when the plane is armed, and their final values match the Stats
// counters exactly.
func TestOverloadMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("crowd scenario in -short mode")
	}
	p := withOverloadControls(crowdParams())
	p.Metrics = true
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	s := w.Run()
	snap := w.Metrics().Snapshot()
	for name, want := range map[string]int64{
		"lbsq_overload_crowd_queries_total":          s.CrowdQueries,
		"lbsq_overload_shed_total":                   s.Shed,
		"lbsq_overload_busy_replies_total":           s.BusyReplies,
		"lbsq_overload_queue_drops_total":            s.QueueDrops,
		"lbsq_overload_retry_budget_exhausted_total": s.RetryBudgetExhausted,
		"lbsq_overload_coalesced_total":              s.Coalesced,
	} {
		c, ok := snap.Counter(name)
		if !ok {
			t.Errorf("counter %s not registered", name)
			continue
		}
		if c.Value != want {
			t.Errorf("%s = %d, want %d", name, c.Value, want)
		}
	}
	if _, ok := snap.Gauge("lbsq_overload_governor_engaged"); !ok {
		t.Error("governor gauge not registered")
	}

	// Unarmed worlds register none of the overload instruments.
	p2 := LACity().Scaled(1.5).WithDuration(0.02)
	p2.TimeStepSec = 10
	p2.Metrics = true
	w2, err := NewWorld(p2)
	if err != nil {
		t.Fatal(err)
	}
	w2.Run()
	for _, c := range w2.Metrics().Snapshot().Counters {
		if strings.HasPrefix(c.Name, "lbsq_overload_") {
			t.Errorf("zero-knob registry carries %s", c.Name)
		}
	}
}
