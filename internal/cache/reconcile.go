// Versioned cache reconciliation (DESIGN.md §12). When the POI database
// mutates, the server broadcasts invalidation reports; this file applies
// them to cached verified regions. The repair is surgical: instead of
// discarding a whole region because one POI inside it churned, the region
// is shrunk around the invalidated index cells with geom.SubtractRect and
// the surviving sub-rectangles stay exact at the new epoch.
//
// Soundness argument (the invariant NNV relies on is "a region's POI list
// is exactly the database ∩ rect"): a mutation with epoch newer than the
// region's either (a) removes a POI by ID — delete and move both strip
// the stale entry from the list — or (b) places a POI inside an announced
// index cell — insert and move both subtract that cell from the rect, so
// the new POI's position cannot lie in any surviving piece. A region too
// old for the report's horizon cannot be repaired and is left in place
// for the caller to demote to the probabilistic path (missed-IR window
// policy: demotion, not fabricated exactness).
package cache

import "lbsq/internal/geom"

// InvalKind is the mutation class of one invalidation.
type InvalKind uint8

// Invalidation kinds, mirroring the wire IR item kinds.
const (
	InvalInsert InvalKind = 1
	InvalDelete InvalKind = 2
	InvalMove   InvalKind = 3
)

// Invalidation is one POI mutation to reconcile against: the epoch that
// created it, the POI id it removes (delete/move), and the index cell now
// containing the POI (insert/move).
type Invalidation struct {
	Epoch int64
	Kind  InvalKind
	ID    int64
	Cell  geom.Rect
}

// maxReconcilePieces bounds the fragmentation one repair may produce;
// past it the region is dropped instead (sound: losing coverage never
// fabricates exactness, and a region shredded this badly is worth little).
const maxReconcilePieces = 32

// Recon summarizes one cache-wide reconciliation pass.
type Recon struct {
	// Repaired counts regions surgically shrunk (content was affected).
	Repaired int
	// Pieces is the total sub-regions the repaired regions became.
	Pieces int
	// Discarded counts regions dropped: every superseded region in
	// whole-discard mode, or repairs that fragmented past the cap or
	// shrank to nothing.
	Discarded int
	// BeyondHorizon counts regions older than the report horizon, left
	// in place for demotion at query time.
	BeyondHorizon int
}

// ReconcileRegion applies the invalidations newer than r.Epoch and
// returns the surviving exact sub-regions, each stamped with epoch. The
// second result reports whether any mutation touched the region; when
// false the region was already current in content and is returned as-is
// with its epoch bumped. A nil slice with touched=true means the region
// could not be soundly repaired (shrunk to nothing or over-fragmented).
func ReconcileRegion(r Region, invals []Invalidation, epoch int64) ([]Region, bool) {
	var cells []geom.Rect
	var removed map[int64]bool
	for _, inv := range invals {
		if inv.Epoch <= r.Epoch {
			continue
		}
		if inv.Kind == InvalDelete || inv.Kind == InvalMove {
			if removed == nil {
				removed = make(map[int64]bool)
			}
			removed[inv.ID] = true
		}
		if (inv.Kind == InvalInsert || inv.Kind == InvalMove) && inv.Cell.Intersects(r.Rect) {
			cells = append(cells, inv.Cell)
		}
	}
	survivors := r.POIs
	if removed != nil {
		survivors = nil
		hit := false
		for _, p := range r.POIs {
			if removed[p.ID] {
				hit = true
				continue
			}
			survivors = append(survivors, p)
		}
		if !hit {
			survivors = r.POIs
			removed = nil
		}
	}
	if len(cells) == 0 && removed == nil {
		// No relevant mutation: content already matches the new epoch.
		r.Epoch = epoch
		return []Region{r}, false
	}
	rects := geom.SubtractRect(r.Rect, cells)
	if len(rects) == 0 || len(rects) > maxReconcilePieces {
		return nil, true
	}
	pieces := make([]Region, len(rects))
	for i, rect := range rects {
		pieces[i] = Region{Rect: rect, Stamp: r.Stamp, Epoch: epoch, Born: r.Born}
	}
	// First-containing-piece assignment keeps POI ownership disjoint when
	// a survivor sits exactly on a shared piece boundary.
	for _, p := range survivors {
		for i := range pieces {
			if pieces[i].Rect.Contains(p.Pos) {
				pieces[i].POIs = append(pieces[i].POIs, p)
				break
			}
		}
	}
	return pieces, true
}

// Reconcile applies an invalidation report to every cached region.
// Regions already at the report epoch are untouched; superseded regions
// are surgically repaired (or all dropped when discard is set — the
// whole-discard ablation); regions older than horizon-1 predate the
// report's memory and stay cached for query-time demotion.
func (c *Cache) Reconcile(epoch, horizon int64, invals []Invalidation, discard bool) Recon {
	var rec Recon
	// A repair can fan one region out into several pieces, so the output
	// cannot reuse the backing array being iterated.
	out := make([]Region, 0, len(c.regions))
	size := 0
	for _, r := range c.regions {
		switch {
		case r.Epoch >= epoch:
			out = append(out, r)
			size += cost(r)
		case discard:
			rec.Discarded++
		case r.Epoch < horizon-1:
			rec.BeyondHorizon++
			out = append(out, r)
			size += cost(r)
		default:
			pieces, touched := ReconcileRegion(r, invals, epoch)
			if pieces == nil {
				rec.Discarded++
				continue
			}
			if touched {
				rec.Repaired++
				rec.Pieces += len(pieces)
			}
			for _, p := range pieces {
				out = append(out, p)
				size += cost(p)
			}
		}
	}
	c.regions = out
	c.size = size
	return rec
}

// ExpireBefore evicts every region born at or before cutoff (TTL expiry:
// a region exactly at the boundary is already too old) and returns how
// many were removed.
func (c *Cache) ExpireBefore(cutoff int64) int {
	out := c.regions[:0]
	size := 0
	for _, r := range c.regions {
		if r.Born <= cutoff {
			continue
		}
		out = append(out, r)
		size += cost(r)
	}
	n := len(c.regions) - len(out)
	for i := len(out); i < len(c.regions); i++ {
		c.regions[i] = Region{}
	}
	c.regions = out
	c.size = size
	return n
}
