package sim

import (
	"lbsq/internal/broadcast"
	"lbsq/internal/cache"
	"lbsq/internal/core"
	"lbsq/internal/geom"
	"lbsq/internal/metrics"
	"lbsq/internal/trust"
)

// worldMetrics bundles one World's registered instruments — the
// observability layer of DESIGN.md §10. It exists only when
// Params.Metrics is set; a nil worldMetrics costs one branch per query
// and leaves every output bit-identical to a metrics-free build (the
// same zero-knob identity contract the faults and resilience layers
// honor). All observed quantities are deterministic simulated values
// (slots, work units, square miles), so identical seeds produce
// byte-identical snapshots.
//
// The struct is owned by the World's goroutine; the only concurrent
// consumers are published snapshots (metrics.Registry.Publish).
type worldMetrics struct {
	reg    *metrics.Registry
	spans  metrics.QuerySpans // reused per query (observation scratch)
	phases *metrics.PhaseSet

	queries     *metrics.Counter
	verified    *metrics.Counter
	approximate *metrics.Counter
	broadcastQ  *metrics.Counter
	peerBytes   *metrics.Counter
	backoff     *metrics.Counter

	latency   *metrics.Histogram
	tuning    *metrics.Histogram
	fanout    *metrics.Histogram
	knownArea *metrics.Histogram

	nowSec *metrics.Gauge
	hosts  *metrics.Gauge

	// Trust-layer instruments, registered only when the AuditRate knob is
	// on (trust off must leave the snapshot byte-identical to a build
	// without the layer). All nil otherwise — observeTrust checks one.
	audits        *metrics.Counter
	auditFailures *metrics.Counter
	conflicts     *metrics.Counter
	convictions   *metrics.Counter
	auditSlots    *metrics.Counter
	auditCost     *metrics.Histogram

	// Consistency-layer instruments, registered only when the UpdateRate
	// or VRTTLSec knob is on (same zero-knob contract as the trust
	// block). All nil otherwise — every observe helper checks one.
	poiUpdates    *metrics.Counter
	irBroadcasts  *metrics.Counter
	irListens     *metrics.Counter
	irListenSlots *metrics.Counter
	vrsReconciled *metrics.Counter
	vrsDemoted    *metrics.Counter
	vrsDiscarded  *metrics.Counter
	vrsExpired    *metrics.Counter
	reconcileCost *metrics.Histogram

	// Channel-impairment instruments, registered only when the burst,
	// blackout, or DegradedMode knob is on (same zero-knob contract as
	// the trust and consistency blocks). All nil otherwise —
	// observeChannel checks one.
	degradedQ     *metrics.Counter
	unansweredQ   *metrics.Counter
	modeFallbacks *metrics.Counter
	modeSwitch    *metrics.Counter
	blackoutWait  *metrics.Counter

	// Continuous-query instruments, registered only when the
	// ContinuousRate knob is on (same zero-knob contract as the other
	// layer blocks). All nil otherwise — observeContinuous checks one.
	contSubs      *metrics.Counter
	contHits      *metrics.Counter
	contReverify  *metrics.Counter
	contSlots     *metrics.Counter
	contSlotsCost *metrics.Histogram

	// Overload-plane instruments, registered only when a crowd or
	// overload knob is on (same zero-knob contract). All nil otherwise —
	// observeOverloadTick checks one. Counters advance by per-tick
	// deltas against the lastOvl snapshot.
	ovlCrowd      *metrics.Counter
	ovlShed       *metrics.Counter
	ovlBusy       *metrics.Counter
	ovlQueueDrops *metrics.Counter
	ovlRetryExh   *metrics.Counter
	ovlCoalesced  *metrics.Counter
	ovlGovEngaged *metrics.Gauge
	lastOvl       [6]int64

	// lastPeerBytes tracks the Stats.PeerBytes high-water mark so the
	// ad-hoc traffic counter advances by per-query deltas.
	lastPeerBytes int64
}

// newWorldMetrics registers the simulator's instrument set. trustOn
// additionally registers the trust-layer instruments, consOn the
// consistency-layer ones, chanOn the channel-impairment ones, contOn
// the continuous-query ones, and ovlOn the overload-plane ones; with
// all five false the registry contents are identical to a build
// without those layers.
func newWorldMetrics(trustOn, consOn, chanOn, contOn, ovlOn bool) *worldMetrics {
	reg := metrics.NewRegistry()
	m := &worldMetrics{
		reg:    reg,
		phases: metrics.NewPhaseSet(reg, "lbsq"),

		queries:     reg.Counter("lbsq_queries_total", "counted (post-warm-up) queries"),
		verified:    reg.Counter("lbsq_queries_verified_total", "queries resolved by exact sharing"),
		approximate: reg.Counter("lbsq_queries_approximate_total", "queries resolved by approximate SBNN"),
		broadcastQ:  reg.Counter("lbsq_queries_broadcast_total", "queries resolved over the broadcast channel"),
		peerBytes:   reg.Counter("lbsq_peer_bytes_total", "ad-hoc channel traffic in encoded wire bytes"),
		backoff:     reg.Counter("lbsq_backoff_slots_total", "broadcast slots spent in retry backoff"),

		latency: reg.Histogram("lbsq_query_latency_slots",
			"end-to-end access latency per counted query (peer-resolved queries observe 0)",
			"slots", metrics.SlotBuckets()),
		tuning: reg.Histogram("lbsq_query_tuning_slots",
			"active listening time per counted query",
			"slots", metrics.SlotBuckets()),
		fanout: reg.Histogram("lbsq_peer_fanout",
			"reachable peers per counted query",
			"work", metrics.WorkBuckets()),
		knownArea: reg.Histogram("lbsq_known_region_area_sqmi",
			"area of the verified region each query contributed to its cache",
			"sqmi", metrics.AreaBuckets()),

		nowSec: reg.Gauge("lbsq_sim_now_seconds", "simulated clock"),
		hosts:  reg.Gauge("lbsq_sim_hosts", "mobile hosts in the world"),
	}
	if trustOn {
		m.audits = reg.Counter("lbsq_trust_audits_total", "on-air spot audits run")
		m.auditFailures = reg.Counter("lbsq_trust_audit_failures_total", "spot audits that convicted the contributor")
		m.conflicts = reg.Counter("lbsq_trust_conflicts_total", "cross-validation overlap disagreements")
		m.convictions = reg.Counter("lbsq_trust_convictions_total", "peer convictions (audit failures plus strike accumulations)")
		m.auditSlots = reg.Counter("lbsq_trust_audit_slots_total", "broadcast slots spent auditing, priced into query latency")
		m.auditCost = reg.Histogram("lbsq_trust_audit_cost_slots",
			"audit slot cost per audited query",
			"slots", metrics.SlotBuckets())
	}
	if consOn {
		m.poiUpdates = reg.Counter("lbsq_consistency_poi_updates_total", "POI mutations applied by the update process")
		m.irBroadcasts = reg.Counter("lbsq_consistency_ir_broadcasts_total", "invalidation-report frames put on air (epoch advances)")
		m.irListens = reg.Counter("lbsq_consistency_ir_listens_total", "client IR listen passes (one per host behind the current epoch)")
		m.irListenSlots = reg.Counter("lbsq_consistency_ir_listen_slots_total", "broadcast slots spent listening for IR frames, priced into query latency")
		m.vrsReconciled = reg.Counter("lbsq_consistency_vrs_reconciled_total", "verified regions surgically repaired against an IR frame")
		m.vrsDemoted = reg.Counter("lbsq_consistency_vrs_demoted_total", "beyond-horizon regions demoted to the probabilistic path")
		m.vrsDiscarded = reg.Counter("lbsq_consistency_vrs_discarded_total", "regions dropped outright (shrunk to empty, over the piece cap, or whole-discard ablation)")
		m.vrsExpired = reg.Counter("lbsq_consistency_vrs_expired_total", "cached regions evicted by the VR time-to-live")
		m.reconcileCost = reg.Histogram("lbsq_consistency_reconcile_cost_pieces",
			"surviving pieces per surgically repaired region",
			"work", metrics.WorkBuckets())
	}
	if chanOn {
		m.degradedQ = reg.Counter("lbsq_channel_degraded_total", "queries answered best-effort on a channel-less fallback rung")
		m.unansweredQ = reg.Counter("lbsq_channel_unanswered_total", "queries no fallback rung could answer")
		m.modeFallbacks = reg.Counter("lbsq_channel_mode_fallbacks_total", "queries the degraded planner placed below the full protocol")
		m.modeSwitch = reg.Counter("lbsq_channel_mode_switch_slots_total", "deadline-priced rung-switch slots paid by fallback queries")
		m.blackoutWait = reg.Counter("lbsq_channel_blackout_wait_slots_total", "dead-air slots naive-mode queries spent waiting out blackout windows")
	}
	if contOn {
		m.contSubs = reg.Counter("lbsq_continuous_subscriptions_total", "standing-query registrations")
		m.contHits = reg.Counter("lbsq_continuous_safe_region_hits_total", "maintenance ticks answered inside the safe-exit radius")
		m.contReverify = reg.Counter("lbsq_continuous_reverifies_total", "maintenance ticks that re-ran the full query path")
		m.contSlots = reg.Counter("lbsq_continuous_slots_total", "broadcast slots subscription re-verifications spent")
		m.contSlotsCost = reg.Histogram("lbsq_continuous_reverify_cost_slots",
			"broadcast-slot cost per subscription re-verification",
			"slots", metrics.SlotBuckets())
	}
	if ovlOn {
		m.ovlCrowd = reg.Counter("lbsq_overload_crowd_queries_total", "flash-crowd queries launched from the hotspot")
		m.ovlShed = reg.Counter("lbsq_overload_shed_total", "one-shot peer-gathers shed by admission control or the load governor")
		m.ovlBusy = reg.Counter("lbsq_overload_busy_replies_total", "explicit BUSY backpressure frames received from saturated peers")
		m.ovlQueueDrops = reg.Counter("lbsq_overload_queue_drops_total", "requests peers shed silently beyond the busy band")
		m.ovlRetryExh = reg.Counter("lbsq_overload_retry_budget_exhausted_total", "collections that stopped retrying on an exhausted per-tick retry budget")
		m.ovlCoalesced = reg.Counter("lbsq_overload_coalesced_total", "queries that reused a co-located donor's peer-gather")
		m.ovlGovEngaged = reg.Gauge("lbsq_overload_governor_engaged", "load governor state (1 = shedding, 0 = idle)")
	}
	return m
}

// observeSubscription records one standing-query registration. No-op
// when the continuous instruments are not registered.
func (m *worldMetrics) observeSubscription() {
	if m == nil || m.contSubs == nil {
		return
	}
	m.contSubs.Inc()
}

// observeContinuous records one subscription maintenance decision: a
// safe-region hit (reverified false, zero slots) or a re-verification
// with its broadcast-slot cost.
func (m *worldMetrics) observeContinuous(reverified bool, slots int64) {
	if m == nil || m.contHits == nil {
		return
	}
	if !reverified {
		m.contHits.Inc()
		return
	}
	m.contReverify.Inc()
	m.contSlots.Add(slots)
	m.contSlotsCost.ObserveInt(slots)
}

// observeOverloadTick advances the overload instruments to the current
// cumulative totals — called once per tick from Step when the overload
// plane is armed. Counter deltas are non-negative because every
// underlying tally is monotonic; the governor gauge tracks engagement.
func (w *World) observeOverloadTick() {
	m := w.mx
	if m == nil || m.ovlCrowd == nil {
		return
	}
	cur := [6]int64{
		w.stats.CrowdQueries,
		w.stats.Shed,
		w.net.Stats.Busy,
		w.net.Stats.QueueDrops,
		w.stats.RetryBudgetExhausted,
		w.stats.Coalesced,
	}
	m.ovlCrowd.Add(cur[0] - m.lastOvl[0])
	m.ovlShed.Add(cur[1] - m.lastOvl[1])
	m.ovlBusy.Add(cur[2] - m.lastOvl[2])
	m.ovlQueueDrops.Add(cur[3] - m.lastOvl[3])
	m.ovlRetryExh.Add(cur[4] - m.lastOvl[4])
	m.ovlCoalesced.Add(cur[5] - m.lastOvl[5])
	m.lastOvl = cur
	if w.ovl.engaged {
		m.ovlGovEngaged.Set(1)
	} else {
		m.ovlGovEngaged.Set(0)
	}
}

// observeChannel records one counted query's channel-impairment
// activity. No-op when the channel instruments are not registered or the
// query ran the full protocol unimpaired.
func (m *worldMetrics) observeChannel(qc queryChannel, degraded, empty bool) {
	if m == nil || m.degradedQ == nil {
		return
	}
	if degraded {
		if empty {
			m.unansweredQ.Inc()
		} else {
			m.degradedQ.Inc()
		}
	}
	if qc.mode != modeFull {
		m.modeFallbacks.Inc()
		m.modeSwitch.Add(qc.switchCost())
	}
	m.blackoutWait.Add(qc.chWait)
}

// observeUpdates records one IR period's server-side mutation batch.
// Nil-safe: no-op without the consistency instruments.
func (m *worldMetrics) observeUpdates(n int64) {
	if m == nil || m.poiUpdates == nil {
		return
	}
	m.poiUpdates.Add(n)
	m.irBroadcasts.Inc()
}

// observeIRListen records one client IR listen pass and its slot cost.
func (m *worldMetrics) observeIRListen(slots int64) {
	if m == nil || m.irListens == nil {
		return
	}
	m.irListens.Inc()
	m.irListenSlots.Add(slots)
}

// observeReconcile records one reconciliation pass's repair/discard
// tallies and the piece-count cost distribution.
func (m *worldMetrics) observeReconcile(rec cache.Recon) {
	if m == nil || m.vrsReconciled == nil {
		return
	}
	m.vrsReconciled.Add(int64(rec.Repaired))
	m.vrsDiscarded.Add(int64(rec.Discarded))
	if rec.Repaired > 0 {
		m.reconcileCost.ObserveInt(int64(rec.Pieces))
	}
}

// observeDemoted records beyond-horizon demotions to the probabilistic
// path.
func (m *worldMetrics) observeDemoted() {
	if m == nil || m.vrsDemoted == nil {
		return
	}
	m.vrsDemoted.Inc()
}

// observeExpired records TTL evictions.
func (m *worldMetrics) observeExpired(n int64) {
	if m == nil || m.vrsExpired == nil {
		return
	}
	m.vrsExpired.Add(n)
}

// observeTrust records one query's trust-screen activity. No-op when the
// trust instruments are not registered (trust off) or nothing happened.
func (m *worldMetrics) observeTrust(rep trust.Report) {
	if m.audits == nil {
		return
	}
	m.audits.Add(int64(rep.Audits))
	m.auditFailures.Add(int64(rep.AuditFailures))
	m.conflicts.Add(int64(rep.Conflicts))
	m.convictions.Add(int64(rep.Convictions))
	m.auditSlots.Add(rep.AuditSlots)
	if rep.Audits > 0 {
		m.auditCost.ObserveInt(rep.AuditSlots)
	}
}

// observeQuery records one counted query: the per-phase span record,
// the outcome counters, and the latency/tuning/area distributions.
// Allocation-free once warm (the bench-smoke and alloc-test gates pin
// this), and called only inside the post-warm-up counted window so the
// distributions describe the same steady state as Stats.
func (m *worldMetrics) observeQuery(outcome core.Outcome, spent, auditSlots int64,
	acc broadcast.Access, merged, examined int,
	knownRegion geom.Rect, peerBytes int64) {
	m.spans.Reset()
	// Audit slots belong to the P2P phase of the query's wall clock (the
	// host is tuned in re-verifying peer claims before the algorithms
	// run); the backoff counter below stays collection-only so it keeps
	// matching Stats.BackoffSlots.
	m.spans.Add(metrics.PhaseP2PCollect, spent+auditSlots)
	m.spans.Add(metrics.PhaseMVRMerge, int64(merged))
	m.spans.Add(metrics.PhaseNNVVerify, int64(examined))
	acc.AddTo(&m.spans)
	m.phases.Observe(&m.spans)

	m.queries.Inc()
	var latency int64
	switch outcome {
	case core.OutcomeVerified:
		m.verified.Inc()
	case core.OutcomeApproximate:
		m.approximate.Inc()
	default:
		m.broadcastQ.Inc()
		// The backoff and audit slots the P2P phase burned are part of
		// the end-to-end latency, matching Stats.LatencySlots accounting.
		latency = acc.Latency + spent + auditSlots
	}
	m.latency.ObserveInt(latency)
	m.tuning.ObserveInt(acc.Tuning)
	if !knownRegion.Empty() {
		m.knownArea.Observe(knownRegion.Area())
	}
	m.backoff.Add(spent)
	m.peerBytes.Add(peerBytes - m.lastPeerBytes)
	m.lastPeerBytes = peerBytes
}

// spanFields copies the current span record into a trace event — the
// enriched per-query trace sink. No-op fields stay zero and are omitted
// from the JSONL encoding, so traces without metrics are byte-identical
// to the seed format.
func (m *worldMetrics) spanFields(p2p, merge, verify, tune, download *int64) {
	*p2p = m.spans.Get(metrics.PhaseP2PCollect)
	*merge = m.spans.Get(metrics.PhaseMVRMerge)
	*verify = m.spans.Get(metrics.PhaseNNVVerify)
	*tune = m.spans.Get(metrics.PhaseOnAirTune)
	*download = m.spans.Get(metrics.PhaseOnAirDownload)
}

// Metrics returns the World's metrics registry, or nil when the
// Metrics knob is off. The registry is single-writer (the simulation
// goroutine); concurrent readers must go through Publish/Published.
func (w *World) Metrics() *metrics.Registry {
	if w.mx == nil {
		return nil
	}
	return w.mx.reg
}
