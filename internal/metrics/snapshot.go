package metrics

// Snapshot is an immutable, JSON-serializable capture of a registry.
// Instruments appear in lexical name order and every field is a
// deterministic function of the observations, so identical seeds yield
// byte-identical marshaled snapshots (the determinism contract
// TestMetricsDeterminism pins).
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// CounterSnapshot is one counter's state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's state.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
}

// Bucket is one histogram bucket: the count of observations v with
// prevBound < v <= LE. The overflow bucket carries LE = +Inf and is
// marked by Inf (JSON has no infinity literal).
type Bucket struct {
	LE    float64 `json:"le"`
	Inf   bool    `json:"inf,omitempty"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is one histogram's state, including the derived
// deterministic quantiles the evaluation tables report.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Help    string   `json:"help,omitempty"`
	Unit    string   `json:"unit,omitempty"`
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot captures the registry's current state. Safe to call from the
// owning goroutine at any time; the result shares no storage with the
// live instruments.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for _, name := range sortedNames(r.counters) {
		c := r.counters[name]
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.name, Help: c.help, Value: c.v})
	}
	for _, name := range sortedNames(r.gauges) {
		g := r.gauges[name]
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: g.name, Help: g.help, Value: g.v})
	}
	for _, name := range sortedNames(r.histograms) {
		h := r.histograms[name]
		hs := HistogramSnapshot{
			Name: h.name, Help: h.help, Unit: h.unit,
			Count: h.count, Sum: h.sum,
			Min: h.Min(), Max: h.Max(), Mean: h.Mean(),
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		}
		hs.Buckets = make([]Bucket, len(h.counts))
		for i, c := range h.counts {
			if i < len(h.bounds) {
				hs.Buckets[i] = Bucket{LE: h.bounds[i], Count: c}
			} else {
				hs.Buckets[i] = Bucket{Inf: true, Count: c}
			}
		}
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// Histogram returns the named histogram snapshot, if present.
func (s Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// Counter returns the named counter snapshot, if present.
func (s Snapshot) Counter(name string) (CounterSnapshot, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c, true
		}
	}
	return CounterSnapshot{}, false
}

// Gauge returns the named gauge snapshot, if present.
func (s Snapshot) Gauge(name string) (GaugeSnapshot, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g, true
		}
	}
	return GaugeSnapshot{}, false
}
