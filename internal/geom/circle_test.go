package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestCircleRectAreaContainedRect(t *testing.T) {
	// Rect fully inside the disk: area of rect.
	got := CircleRectArea(Pt(0, 0), 10, NewRect(-1, -1, 1, 1))
	if !almostEqual(got, 4, 1e-9) {
		t.Errorf("contained rect = %v want 4", got)
	}
}

func TestCircleRectAreaContainedCircle(t *testing.T) {
	// Disk fully inside the rect: area of disk.
	got := CircleRectArea(Pt(0, 0), 1, NewRect(-5, -5, 5, 5))
	if !almostEqual(got, math.Pi, 1e-9) {
		t.Errorf("contained circle = %v want pi", got)
	}
}

func TestCircleRectAreaDisjoint(t *testing.T) {
	if got := CircleRectArea(Pt(0, 0), 1, NewRect(5, 5, 6, 6)); got != 0 {
		t.Errorf("disjoint = %v want 0", got)
	}
	// Rect beyond the circle horizontally even though y-ranges overlap.
	if got := CircleRectArea(Pt(0, 0), 1, NewRect(2, -1, 3, 1)); got != 0 {
		t.Errorf("disjoint-x = %v want 0", got)
	}
}

func TestCircleRectAreaHalfPlane(t *testing.T) {
	// Rect covering exactly the right half of the disk.
	got := CircleRectArea(Pt(0, 0), 2, NewRect(0, -5, 5, 5))
	want := math.Pi * 4 / 2
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("half disk = %v want %v", got, want)
	}
}

func TestCircleRectAreaQuadrant(t *testing.T) {
	got := CircleRectArea(Pt(0, 0), 2, NewRect(0, 0, 5, 5))
	want := math.Pi * 4 / 4
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("quadrant = %v want %v", got, want)
	}
}

func TestCircleRectAreaOffCenter(t *testing.T) {
	// Known segment area: disk radius 1 at origin, rect x>=0.5 captures a
	// circular segment with area r^2*(acos(d/r) ) - d*sqrt(r^2-d^2), d=0.5.
	got := CircleRectArea(Pt(0, 0), 1, NewRect(0.5, -5, 5, 5))
	d := 0.5
	want := math.Acos(d) - d*math.Sqrt(1-d*d)
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("segment = %v want %v", got, want)
	}
}

func TestCircleRectAreaDegenerate(t *testing.T) {
	if got := CircleRectArea(Pt(0, 0), 0, NewRect(-1, -1, 1, 1)); got != 0 {
		t.Errorf("zero radius = %v", got)
	}
	if got := CircleRectArea(Pt(0, 0), -1, NewRect(-1, -1, 1, 1)); got != 0 {
		t.Errorf("negative radius = %v", got)
	}
	if got := CircleRectArea(Pt(0, 0), 1, NewRect(0, 0, 0, 0)); got != 0 {
		t.Errorf("empty rect = %v", got)
	}
}

// Property: exact area matches Monte Carlo estimation.
func TestCircleRectAreaMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const samples = 60000
	for trial := 0; trial < 25; trial++ {
		c := randomPoint(rng, 3)
		radius := 0.5 + rng.Float64()*3
		r := randomRect(rng, 4)
		got := CircleRectArea(c, radius, r)

		// Sample uniformly inside the rect.
		hit := 0
		for s := 0; s < samples; s++ {
			p := Pt(
				r.Min.X+rng.Float64()*r.Width(),
				r.Min.Y+rng.Float64()*r.Height(),
			)
			if p.Dist(c) <= radius {
				hit++
			}
		}
		est := r.Area() * float64(hit) / samples
		tol := 0.02*r.Area() + 0.02
		if math.Abs(got-est) > tol {
			t.Fatalf("trial %d: exact=%v MC=%v (c=%v r=%v rect=%v)",
				trial, got, est, c, radius, r)
		}
	}
}

// Property: area is monotone in the radius and bounded by both shapes.
func TestCircleRectAreaMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		c := randomPoint(rng, 3)
		r := randomRect(rng, 4)
		prev := 0.0
		for _, radius := range []float64{0.2, 0.5, 1, 2, 4, 8, 16} {
			a := CircleRectArea(c, radius, r)
			if a < prev-1e-9 {
				t.Fatalf("trial %d: area decreased with radius", trial)
			}
			if a > r.Area()+1e-9 || a > math.Pi*radius*radius+1e-9 {
				t.Fatalf("trial %d: area %v exceeds bounds", trial, a)
			}
			prev = a
		}
		// Huge radius covers the rect entirely.
		if a := CircleRectArea(c, 100, r); !almostEqual(a, r.Area(), 1e-6) {
			t.Fatalf("trial %d: huge radius area %v want %v", trial, a, r.Area())
		}
	}
}

func TestIntersectCircleAreaUnion(t *testing.T) {
	// Two disjoint unit squares inside a big disk: intersection area = 2.
	u := NewRectUnion(NewRect(0, 0, 1, 1), NewRect(2, 0, 3, 1))
	got := u.IntersectCircleArea(Pt(1.5, 0.5), 10)
	if !almostEqual(got, 2, 1e-9) {
		t.Errorf("union circle area = %v want 2", got)
	}
	// Overlapping squares must not double count.
	u2 := NewRectUnion(NewRect(0, 0, 2, 2), NewRect(1, 1, 3, 3))
	got2 := u2.IntersectCircleArea(Pt(1.5, 1.5), 10)
	if !almostEqual(got2, 7, 1e-9) {
		t.Errorf("overlapping union circle area = %v want 7", got2)
	}
}

func TestArcIntegralClamps(t *testing.T) {
	// Integral over the full width equals half the disk area.
	r := 2.0
	full := arcIntegral(r, r) - arcIntegral(r, -r)
	if !almostEqual(full, math.Pi*r*r/2, 1e-9) {
		t.Errorf("full integral = %v want %v", full, math.Pi*r*r/2)
	}
	// Values outside [-r, r] clamp.
	if got := arcIntegral(r, 100); !almostEqual(got, arcIntegral(r, r), 1e-12) {
		t.Errorf("clamp high = %v", got)
	}
	if got := arcIntegral(r, -100); !almostEqual(got, arcIntegral(r, -r), 1e-12) {
		t.Errorf("clamp low = %v", got)
	}
}
