package geom

import "math"

// CircleRectArea returns the exact area of the intersection between the
// closed disk centered at c with the given radius and the rectangle r.
//
// The computation integrates the vertical extent of the intersection over
// x after translating the disk to the origin. The integration interval is
// split at every x where the circle crosses y = rect.Min.Y or
// y = rect.Max.Y so that on each sub-interval the upper and lower bounds
// are each either a constant or the circle arc, for which a closed-form
// antiderivative exists.
func CircleRectArea(c Point, radius float64, r Rect) float64 {
	if radius <= 0 || r.Empty() {
		return 0
	}
	// Translate so the disk is centered at the origin.
	x1, x2 := r.Min.X-c.X, r.Max.X-c.X
	y1, y2 := r.Min.Y-c.Y, r.Max.Y-c.Y

	lo := math.Max(x1, -radius)
	hi := math.Min(x2, radius)
	if lo >= hi {
		return 0
	}

	// Critical x values: circle crossings with the horizontal rect edges.
	// At most 6 (interval ends + 4 crossings), so a fixed-size stack
	// array and an inline insertion sort keep the hot path allocation
	// free (zero-width sub-intervals integrate to zero, so duplicates
	// need no removal).
	var cutsArr [6]float64
	cutsArr[0], cutsArr[1] = lo, hi
	n := 2
	for _, y := range [2]float64{y1, y2} {
		if math.Abs(y) < radius {
			xc := math.Sqrt(radius*radius - y*y)
			for _, x := range [2]float64{-xc, xc} {
				if x > lo && x < hi {
					cutsArr[n] = x
					n++
				}
			}
		}
	}
	cuts := cutsArr[:n]
	for i := 1; i < len(cuts); i++ {
		v := cuts[i]
		j := i - 1
		for j >= 0 && cuts[j] > v {
			cuts[j+1] = cuts[j]
			j--
		}
		cuts[j+1] = v
	}

	total := 0.0
	for i := 0; i+1 < len(cuts); i++ {
		a, b := cuts[i], cuts[i+1]
		mid := (a + b) / 2
		f := math.Sqrt(math.Max(0, radius*radius-mid*mid))
		upper := math.Min(y2, f)
		lower := math.Max(y1, -f)
		if upper <= lower {
			continue
		}
		// On this sub-interval the active bounds do not switch branch, so
		// integrate each bound in closed form.
		var hiInt float64
		if y2 < f { // upper bound is the constant y2 throughout
			hiInt = y2 * (b - a)
		} else { // upper bound is the arc +sqrt(R^2-x^2)
			hiInt = arcIntegral(radius, b) - arcIntegral(radius, a)
		}
		var loInt float64
		if y1 > -f { // lower bound is the constant y1
			loInt = y1 * (b - a)
		} else { // lower bound is the arc -sqrt(R^2-x^2)
			loInt = -(arcIntegral(radius, b) - arcIntegral(radius, a))
		}
		total += hiInt - loInt
	}
	return total
}

// arcIntegral returns the antiderivative of sqrt(R^2 - x^2) at x, i.e.
// (x*sqrt(R^2-x^2) + R^2*asin(x/R)) / 2, with x clamped to [-R, R].
func arcIntegral(radius, x float64) float64 {
	if x < -radius {
		x = -radius
	} else if x > radius {
		x = radius
	}
	return (x*math.Sqrt(math.Max(0, radius*radius-x*x)) +
		radius*radius*math.Asin(x/radius)) / 2
}
