// Package faults is the fault-injection layer of the simulator: a seeded,
// deterministic source of substrate misbehavior for every channel the
// paper's sharing architecture depends on.
//
// The seed reproduces Ku–Zimmermann–Wang under an idealized radio model:
// every ad-hoc frame arrives intact and every shared verified region is
// fresh. Real 802.11 links lose and corrupt frames, broadcast downlinks
// drop packets, and — as the cache-consistency literature on mobile
// broadcast (Tabassum et al.) stresses — peer caches silently go stale
// when the POI database changes underneath them. The Injector models all
// of these as independent Bernoulli processes drawn from its own seeded
// stream, so fault runs are exactly reproducible and a zero Profile makes
// no random draws at all (the no-fault path is bit-identical to the ideal
// simulator).
//
// What is injected where:
//
//   - P2P request loss: a neighbor fails to hear the broadcast cache
//     request (per peer, per attempt). The querying host re-broadcasts
//     within a bounded retry budget.
//   - P2P reply loss / truncation / bit corruption: a peer's reply is
//     dropped in flight, cut short, or bit-flipped. Corrupted replies are
//     detected by the wire CRC and rejected; the query degrades (the MVR
//     shrinks) instead of failing.
//   - Broadcast packet loss: a data-packet or index-segment reception
//     fails; the client waits for the packet's next cycle occurrence or
//     the next (1, m) index replica, widening latency and tuning time.
//   - Peer-cache staleness: a POI-update process silently invalidates a
//     fraction of shared verified regions. The consistency layer
//     (modeled as a broadcast invalidation report) discards stale regions
//     before they enter verification, so exact results stay exact; the
//     TrustStale test knob disables the discard to demonstrate that a
//     trusted stale region poisons Lemma 3.1 verification exactly like
//     the byzantine peer of the core package's trust-model tests.
//
// Soundness argument: every injected fault removes information from the
// querying host (fewer peers heard, fewer regions survive, packets arrive
// later) and never fabricates it. SBNN/SBWQ verification is monotone in
// the peer set — shrinking the MVR can only demote answers from verified
// to broadcast-fallback — so degradation keeps the paper's Lemma 3.1
// guarantee: whatever is still reported as exact is exact.
package faults

import (
	"fmt"
	"math/rand"
)

// MaxRate caps every loss probability; a channel losing more than 95% of
// its frames is indistinguishable from no channel, and capping keeps the
// retry loops bounded.
const MaxRate = 0.95

// DefaultMaxRetries is the request re-broadcast budget used when a
// Profile enables faults but leaves MaxRetries at zero.
const DefaultMaxRetries = 2

// Profile configures the per-channel fault rates. The zero value is the
// ideal substrate: no faults, no random draws, no behavioral change.
type Profile struct {
	// RequestLoss is the probability that one neighbor fails to hear one
	// broadcast cache request (independently per peer and per attempt).
	RequestLoss float64
	// ReplyLoss is the probability a peer reply is dropped in flight.
	ReplyLoss float64
	// ReplyTruncate is the probability a reply arrives cut short.
	ReplyTruncate float64
	// ReplyCorrupt is the probability a reply arrives with flipped bits.
	ReplyCorrupt float64
	// BroadcastLoss is the probability one broadcast packet (or index
	// segment) reception fails and the client waits a further cycle (or
	// index replica).
	BroadcastLoss float64
	// StaleRate is the probability that a shared verified region has been
	// silently invalidated by the POI-update process since the peer
	// cached it.
	StaleRate float64
	// ChurnRate is the per-peer, per-collection-round probability that a
	// neighbor powers off or drifts out of transmission range while a
	// query's peer collection is in flight — and, symmetrically, that a
	// departed neighbor powers back on / drifts back into range. Churn is
	// drawn between the request broadcast and the reply deliveries of
	// every round, so a reply can arrive from a peer that has since
	// departed (it was in flight) and a retry can target a peer that is
	// no longer there (wasted, counted). Zero disables churn entirely.
	ChurnRate float64
	// MaxRetries bounds how many times a querying host re-broadcasts its
	// cache request when no neighbor heard it. Zero selects
	// DefaultMaxRetries when any fault rate is set.
	MaxRetries int
	// TrustStale disables the consistency layer's stale-region discard:
	// stale regions are served with silently diverged contents and enter
	// verification. This is a test knob demonstrating the soundness
	// hazard; production configurations leave it false.
	TrustStale bool
	// ByzantineRate is the fraction of mobile hosts that are byzantine:
	// every claim such a host shares is materially false (see attack.go
	// for the adversary model). Byzantine status is a property of the
	// host, assigned once at world construction from a dedicated seeded
	// stream; the rate is a population fraction, not a per-reply
	// probability. Zero (the default) means every peer is honest and the
	// attack path makes no draws at all.
	ByzantineRate float64 `json:",omitempty"`
	// Attack selects the lie byzantine hosts tell. Normalized defaults
	// it to AttackMix when ByzantineRate > 0 and clears it to AttackNone
	// when the rate is zero (an attack with no attackers is inert).
	Attack Attack `json:",omitempty"`
	// BurstGoodLoss is the extra ad-hoc frame loss while the
	// Gilbert–Elliott fading chain (see burst.go) is in its good state.
	// Unlike the independent Bernoulli knobs it may reach 1.0: the
	// degraded planner, not a retry cap, is the defense against a dead
	// channel.
	BurstGoodLoss float64 `json:",omitempty"`
	// BurstBadLoss is the extra ad-hoc frame loss in the bad (fade)
	// state. Zero disarms the chain entirely.
	BurstBadLoss float64 `json:",omitempty"`
	// BurstGoodSlots is the mean good-state dwell time in broadcast
	// slots (geometric). Defaults to 9× BurstBadSlots when the chain is
	// armed but this is left zero (≈10% bad-state duty cycle).
	BurstGoodSlots float64 `json:",omitempty"`
	// BurstBadSlots is the mean bad-state dwell time in broadcast slots
	// (geometric). Zero disarms the chain.
	BurstBadSlots float64 `json:",omitempty"`
	// BlackoutPeriodSec is the period of the per-MH broadcast-downlink
	// blackout schedule (see Blackout in burst.go). Zero disarms
	// blackout windows.
	BlackoutPeriodSec float64 `json:",omitempty"`
	// BlackoutDurationSec is how long each blackout window holds the
	// downlink dark. Clamped to the period. Zero disarms.
	BlackoutDurationSec float64 `json:",omitempty"`
}

// Enabled reports whether any fault process is active.
func (p Profile) Enabled() bool {
	return p.RequestLoss > 0 || p.ReplyLoss > 0 || p.ReplyTruncate > 0 ||
		p.ReplyCorrupt > 0 || p.BroadcastLoss > 0 || p.StaleRate > 0 ||
		p.ChurnRate > 0 || p.BurstEnabled()
}

// Normalized returns the profile with every rate clamped to [0, MaxRate]
// and the retry budget defaulted.
func (p Profile) Normalized() Profile {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > MaxRate {
			return MaxRate
		}
		return v
	}
	out := p
	out.RequestLoss = clamp(p.RequestLoss)
	out.ReplyLoss = clamp(p.ReplyLoss)
	out.ReplyTruncate = clamp(p.ReplyTruncate)
	out.ReplyCorrupt = clamp(p.ReplyCorrupt)
	out.BroadcastLoss = clamp(p.BroadcastLoss)
	out.StaleRate = clamp(p.StaleRate)
	out.ChurnRate = clamp(p.ChurnRate)
	// The byzantine rate is a population fraction, not a channel loss
	// rate, so it clamps to [0, 1] rather than MaxRate.
	if out.ByzantineRate < 0 {
		out.ByzantineRate = 0
	}
	if out.ByzantineRate > 1 {
		out.ByzantineRate = 1
	}
	if out.ByzantineRate > 0 && out.Attack == AttackNone {
		out.Attack = AttackMix
	}
	if out.ByzantineRate == 0 {
		out.Attack = AttackNone
	}
	// Burst losses clamp to [0, 1] rather than MaxRate: a fade may kill
	// the channel outright, and the degraded planner (not the retry cap)
	// is the defense. Dwell means below one slot round up to one.
	clamp01 := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	out.BurstGoodLoss = clamp01(p.BurstGoodLoss)
	out.BurstBadLoss = clamp01(p.BurstBadLoss)
	if out.BurstGoodSlots < 0 {
		out.BurstGoodSlots = 0
	}
	if out.BurstBadSlots < 0 {
		out.BurstBadSlots = 0
	}
	if out.BurstEnabled() {
		if out.BurstBadSlots < 1 {
			out.BurstBadSlots = 1
		}
		if out.BurstGoodSlots == 0 {
			out.BurstGoodSlots = 9 * out.BurstBadSlots
		}
		if out.BurstGoodSlots < 1 {
			out.BurstGoodSlots = 1
		}
	}
	if out.BlackoutPeriodSec < 0 {
		out.BlackoutPeriodSec = 0
	}
	if out.BlackoutDurationSec < 0 {
		out.BlackoutDurationSec = 0
	}
	if out.BlackoutDurationSec > out.BlackoutPeriodSec {
		out.BlackoutDurationSec = out.BlackoutPeriodSec
	}
	if out.MaxRetries < 0 {
		out.MaxRetries = 0
	}
	if out.MaxRetries == 0 && out.Enabled() {
		out.MaxRetries = DefaultMaxRetries
	}
	return out
}

// Validate reports profile configuration errors (NaN or negative rates,
// unbounded retry budgets).
func (p Profile) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"RequestLoss", p.RequestLoss},
		{"ReplyLoss", p.ReplyLoss},
		{"ReplyTruncate", p.ReplyTruncate},
		{"ReplyCorrupt", p.ReplyCorrupt},
		{"BroadcastLoss", p.BroadcastLoss},
		{"StaleRate", p.StaleRate},
		{"ChurnRate", p.ChurnRate},
	}
	for _, r := range rates {
		if r.v != r.v { // NaN
			return fmt.Errorf("faults: %s is NaN", r.name)
		}
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s %v out of [0, 1]", r.name, r.v)
		}
	}
	if p.MaxRetries < 0 || p.MaxRetries > 16 {
		return fmt.Errorf("faults: MaxRetries %d out of [0, 16]", p.MaxRetries)
	}
	if p.ByzantineRate != p.ByzantineRate {
		return fmt.Errorf("faults: ByzantineRate is NaN")
	}
	if p.ByzantineRate < 0 || p.ByzantineRate > 1 {
		return fmt.Errorf("faults: ByzantineRate %v out of [0, 1]", p.ByzantineRate)
	}
	if p.Attack < AttackNone || p.Attack > AttackMix {
		return fmt.Errorf("faults: unknown Attack %d", int(p.Attack))
	}
	// Burst losses live in [0, 1] (a fade may be total); dwell means and
	// blackout times are non-negative finite seconds/slots.
	bursts := []struct {
		name string
		v    float64
	}{
		{"BurstGoodLoss", p.BurstGoodLoss},
		{"BurstBadLoss", p.BurstBadLoss},
	}
	for _, r := range bursts {
		if r.v != r.v {
			return fmt.Errorf("faults: %s is NaN", r.name)
		}
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s %v out of [0, 1]", r.name, r.v)
		}
	}
	durs := []struct {
		name string
		v    float64
	}{
		{"BurstGoodSlots", p.BurstGoodSlots},
		{"BurstBadSlots", p.BurstBadSlots},
		{"BlackoutPeriodSec", p.BlackoutPeriodSec},
		{"BlackoutDurationSec", p.BlackoutDurationSec},
	}
	for _, r := range durs {
		if r.v != r.v {
			return fmt.Errorf("faults: %s is NaN", r.name)
		}
		if r.v < 0 || r.v > 1e12 {
			return fmt.Errorf("faults: %s %v out of [0, 1e12]", r.name, r.v)
		}
	}
	if p.BlackoutDurationSec > 0 && p.BlackoutPeriodSec > 0 &&
		p.BlackoutDurationSec > p.BlackoutPeriodSec {
		return fmt.Errorf("faults: BlackoutDurationSec %v exceeds BlackoutPeriodSec %v",
			p.BlackoutDurationSec, p.BlackoutPeriodSec)
	}
	return nil
}

// ReplyFate classifies what the channel did to one peer reply.
type ReplyFate int

const (
	// FateDeliver: the reply arrived intact.
	FateDeliver ReplyFate = iota
	// FateDrop: the reply was lost in flight.
	FateDrop
	// FateTruncate: the reply arrived cut short.
	FateTruncate
	// FateCorrupt: the reply arrived with flipped bits.
	FateCorrupt
)

// String implements fmt.Stringer.
func (f ReplyFate) String() string {
	switch f {
	case FateDrop:
		return "drop"
	case FateTruncate:
		return "truncate"
	case FateCorrupt:
		return "corrupt"
	default:
		return "deliver"
	}
}

// Counters tallies every injected fault so the degradation paths are
// visible in the experiment reports.
type Counters struct {
	// RequestsUnheard counts per-peer request receptions lost.
	RequestsUnheard int64
	// RepliesDropped counts replies lost in flight.
	RepliesDropped int64
	// RepliesTruncated counts replies delivered cut short.
	RepliesTruncated int64
	// RepliesCorrupted counts replies delivered with flipped bits.
	RepliesCorrupted int64
	// StaleVRs counts shared verified regions the POI-update process had
	// silently invalidated.
	StaleVRs int64
	// ChurnDepartures counts peers that powered off or drifted out of
	// range while a query's peer collection was in flight.
	ChurnDepartures int64
	// ChurnReturns counts departed peers that powered back on or drifted
	// back into range before the same collection finished.
	ChurnReturns int64
	// ByzantineLies counts materially false claims emitted by byzantine
	// hosts (one per AttackClaim application).
	ByzantineLies int64 `json:",omitempty"`
	// BurstLosses counts ad-hoc frames killed by the Gilbert–Elliott
	// fading chain (on top of any independent Bernoulli losses).
	BurstLosses int64 `json:",omitempty"`
	// BurstTransitions counts state flips of the fading chain.
	BurstTransitions int64 `json:",omitempty"`
}

// Injector is a seeded, deterministic fault source. A nil *Injector is
// valid and injects nothing, so consumers may thread it through without
// nil checks. All decision methods draw from the injector's own stream —
// never the simulation's — so enabling faults does not perturb the world's
// randomness, and a zero profile makes no draws at all.
type Injector struct {
	prof Profile
	rng  *rand.Rand
	// ge is the Gilbert–Elliott fading chain for the ad-hoc channel; nil
	// unless the burst knobs are armed. It owns a separate salted stream
	// (seed ^ burstSeedSalt) so arming it leaves the legacy stream's
	// draw sequence untouched.
	ge *gilbert
	// lieSeq counts AttackClaim applications: it cycles AttackMix through
	// the concrete attacks and makes every fabricated POI ID unique.
	lieSeq int64
	// Counters tallies the injected faults.
	Counters Counters
}

// New creates an injector for the (normalized) profile, seeded
// independently of the simulation stream.
func New(seed int64, p Profile) *Injector {
	np := p.Normalized()
	return &Injector{
		prof: np,
		rng:  rand.New(rand.NewSource(seed)),
		ge:   newGilbert(seed, np),
	}
}

// Profile returns the active (normalized) profile. Safe on nil.
func (in *Injector) Profile() Profile {
	if in == nil {
		return Profile{}
	}
	return in.prof
}

// Enabled reports whether any fault process is active. Safe on nil.
func (in *Injector) Enabled() bool { return in != nil && in.prof.Enabled() }

// RequestHeard draws whether one neighbor heard one broadcast cache
// request. The legacy Bernoulli draw comes first (from the legacy
// stream, only when RequestLoss is set — exactly as before the fading
// chain existed); the Gilbert–Elliott kill is layered under it from its
// own stream. Safe on nil (always heard).
func (in *Injector) RequestHeard() bool {
	if in == nil {
		return true
	}
	heard := true
	if in.prof.RequestLoss > 0 {
		if in.rng.Float64() < in.prof.RequestLoss {
			in.Counters.RequestsUnheard++
			heard = false
		}
	}
	if heard && in.burstLost() {
		in.Counters.RequestsUnheard++
		heard = false
	}
	return heard
}

// StaleVR draws whether one shared verified region has been silently
// invalidated by the POI-update process. Safe on nil (always fresh).
func (in *Injector) StaleVR() bool {
	if in == nil || in.prof.StaleRate <= 0 {
		return false
	}
	if in.rng.Float64() < in.prof.StaleRate {
		in.Counters.StaleVRs++
		return true
	}
	return false
}

// ReplyFate draws what the ad-hoc channel does to one peer reply. The
// three legacy failure modes are disjoint (loss, then truncation, then
// corruption) and draw from the legacy stream exactly as before; the
// Gilbert–Elliott fading kill is layered under a legacy FateDeliver from
// its own stream, so arming the chain never shifts the legacy sequence.
// Safe on nil (always delivered).
func (in *Injector) ReplyFate() ReplyFate {
	if in == nil {
		return FateDeliver
	}
	fate := FateDeliver
	p := in.prof
	if p.ReplyLoss > 0 || p.ReplyTruncate > 0 || p.ReplyCorrupt > 0 {
		u := in.rng.Float64()
		switch {
		case u < p.ReplyLoss:
			in.Counters.RepliesDropped++
			fate = FateDrop
		case u < p.ReplyLoss+p.ReplyTruncate:
			in.Counters.RepliesTruncated++
			fate = FateTruncate
		case u < p.ReplyLoss+p.ReplyTruncate+p.ReplyCorrupt:
			in.Counters.RepliesCorrupted++
			fate = FateCorrupt
		}
	}
	if fate == FateDeliver && in.burstLost() {
		in.Counters.RepliesDropped++
		fate = FateDrop
	}
	return fate
}

// ChurnDeparts draws whether one present peer powers off or drifts out of
// range during the current collection round. Safe on nil (never departs).
func (in *Injector) ChurnDeparts() bool {
	if in == nil || in.prof.ChurnRate <= 0 {
		return false
	}
	if in.rng.Float64() < in.prof.ChurnRate {
		in.Counters.ChurnDepartures++
		return true
	}
	return false
}

// ChurnReturns draws whether one departed peer powers back on or drifts
// back into range during the current collection round. Safe on nil (never
// returns — but a nil injector never departs a peer either).
func (in *Injector) ChurnReturns() bool {
	if in == nil || in.prof.ChurnRate <= 0 {
		return false
	}
	if in.rng.Float64() < in.prof.ChurnRate {
		in.Counters.ChurnReturns++
		return true
	}
	return false
}

// Backoff parameters of the resilient query lifecycle: the deterministic
// base delay before retry round a (the first retry is round 2) is
// BackoffBaseSlots << (a-2), capped at BackoffCapSlots; seeded jitter in
// [0, base) is added on top, so the total wait for one retry lies in
// [base, 2*base). Everything is measured in broadcast slots — the only
// clock a broadcast client owns.
const (
	// BackoffBaseSlots is the delay before the first retry.
	BackoffBaseSlots = 2
	// BackoffCapSlots caps the exponential growth of the base delay.
	BackoffCapSlots = 16
)

// BackoffSlots returns the deterministic base backoff delay (in broadcast
// slots) paid before retry round `attempt` (attempt 2 is the first
// retry). Attempts below 2 cost nothing.
func BackoffSlots(attempt int) int64 {
	if attempt < 2 {
		return 0
	}
	shift := attempt - 2
	if shift > 30 {
		shift = 30
	}
	d := int64(BackoffBaseSlots) << shift
	if d > BackoffCapSlots {
		d = BackoffCapSlots
	}
	return d
}

// Jitter draws a uniform delay in [0, n) from the injector's stream — the
// seeded jitter added to each backoff wait so colliding retry schedules
// de-synchronize deterministically. Safe on nil (returns 0).
func (in *Injector) Jitter(n int64) int64 {
	if in == nil || n <= 0 {
		return 0
	}
	return in.rng.Int63n(n)
}

// Pick draws a uniform index in [0, n) from the injector's stream — used
// to choose which POI a trusted stale region silently lost. Safe on nil
// (returns 0).
func (in *Injector) Pick(n int) int {
	if in == nil || n <= 1 {
		return 0
	}
	return in.rng.Intn(n)
}

// Mangle applies the drawn fate to an encoded message: truncation cuts it
// at a random interior point, corruption flips one to four random bits.
// FateDeliver and FateDrop return the input unchanged. The input slice is
// never modified; mangled output is a copy. Safe on nil (identity).
func (in *Injector) Mangle(b []byte, fate ReplyFate) []byte {
	if in == nil || len(b) == 0 {
		return b
	}
	switch fate {
	case FateTruncate:
		// Cut strictly inside the message so something, but not
		// everything, arrives.
		cut := 1 + in.rng.Intn(len(b))
		if cut >= len(b) {
			cut = len(b) - 1
		}
		return append([]byte(nil), b[:cut]...)
	case FateCorrupt:
		out := append([]byte(nil), b...)
		flips := 1 + in.rng.Intn(4)
		for i := 0; i < flips; i++ {
			out[in.rng.Intn(len(out))] ^= byte(1) << in.rng.Intn(8)
		}
		return out
	default:
		return b
	}
}
