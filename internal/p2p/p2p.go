// Package p2p provides the single-hop ad-hoc network substrate: a uniform
// grid index over mobile-host positions supporting constant-time position
// updates and range lookups ("which peers can hear my request?"), plus
// message accounting.
//
// The paper's radio model is a disk of radius TxRange around the querying
// host (IEEE 802.11b/g abstracted to its reliable coverage range); a peer
// responds when it lies within that disk at the query instant.
package p2p

import (
	"fmt"
	"math"

	"lbsq/internal/geom"
	"lbsq/internal/metrics"
)

// Network indexes host positions on a uniform grid. Host IDs are dense
// small integers assigned by the caller.
type Network struct {
	area     geom.Rect
	cellSize float64
	cols     int
	rows     int
	cells    [][]int32    // per-cell host lists
	pos      []geom.Point // host id -> position
	present  []bool       // host id -> registered?
	cellOf   []int        // host id -> cell index
	live     int          // registered host count (keeps Len O(1))
	// Stats counts sharing traffic for the experiment reports.
	Stats TrafficStats
	// FanoutHist, when non-nil, receives the reachable-peer count of
	// every query exchange via ObserveFanout — the sharing layer's
	// fan-out distribution (internal/metrics). Nil, the default, costs
	// one branch; attaching it never perturbs behavior or allocation.
	FanoutHist *metrics.Histogram
}

// TrafficStats tallies the P2P messages exchanged, including the fault
// paths: retries are the bounded request re-broadcasts a querying host
// pays when no neighbor heard it, and the reply-failure counters record
// degradation that consumed channel bytes without delivering data.
type TrafficStats struct {
	Requests int64 // broadcast cache requests issued (every attempt)
	Replies  int64 // peer replies delivered intact
	// Retries counts request re-broadcasts beyond each query's first
	// attempt (the retry-with-timeout budget of the fault layer).
	Retries int64
	// RepliesLost counts peer replies dropped in flight.
	RepliesLost int64
	// RepliesRejected counts peer replies delivered truncated or
	// corrupted and refused by the wire decoder's CRC/structure checks.
	RepliesRejected int64
	// WastedRetries counts retry transmissions addressed at peers that
	// had already departed (powered off or drifted out of range) — the
	// querying host cannot know, so the frame is spent for nothing.
	WastedRetries int64
	// Busy counts explicit BUSY backpressure replies: a peer's bounded
	// service queue was full, so it refused the request on the wire
	// instead of going silent. A busy peer is not a broken peer — these
	// are excluded from breaker strike accounting.
	Busy int64
	// QueueDrops counts requests a peer shed without even a BUSY reply:
	// the overflow band beyond the busy threshold, where the peer is too
	// saturated to spend slots on refusals. Also strike-exempt.
	QueueDrops int64
}

// NewNetwork creates a network over the service area with the given index
// cell size (usually the maximum transmission range).
func NewNetwork(area geom.Rect, cellSize float64) (*Network, error) {
	if area.Empty() {
		return nil, fmt.Errorf("p2p: empty area %v", area)
	}
	if cellSize <= 0 {
		return nil, fmt.Errorf("p2p: cell size %v must be positive", cellSize)
	}
	cols := int(math.Ceil(area.Width() / cellSize))
	rows := int(math.Ceil(area.Height() / cellSize))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Network{
		area:     area,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		cells:    make([][]int32, cols*rows),
	}, nil
}

// Len returns the number of registered hosts in O(1): a live-host counter
// is maintained by Update/Remove instead of scanning the presence table.
func (n *Network) Len() int { return n.live }

func (n *Network) cellIndex(p geom.Point) int {
	cx := int((p.X - n.area.Min.X) / n.cellSize)
	cy := int((p.Y - n.area.Min.Y) / n.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= n.cols {
		cx = n.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= n.rows {
		cy = n.rows - 1
	}
	return cy*n.cols + cx
}

// Update registers host id at position p, or moves it if already
// registered. IDs should be assigned densely from zero.
func (n *Network) Update(id int, p geom.Point) {
	for id >= len(n.pos) {
		n.pos = append(n.pos, geom.Point{})
		n.present = append(n.present, false)
		n.cellOf = append(n.cellOf, -1)
	}
	newCell := n.cellIndex(p)
	if n.present[id] {
		oldCell := n.cellOf[id]
		if oldCell == newCell {
			n.pos[id] = p
			return
		}
		n.removeFromCell(id, oldCell)
	}
	if !n.present[id] {
		n.live++
	}
	n.pos[id] = p
	n.present[id] = true
	n.cellOf[id] = newCell
	n.cells[newCell] = append(n.cells[newCell], int32(id))
}

// Remove unregisters a host.
func (n *Network) Remove(id int) {
	if id < 0 || id >= len(n.present) || !n.present[id] {
		return
	}
	n.removeFromCell(id, n.cellOf[id])
	n.present[id] = false
	n.cellOf[id] = -1
	n.live--
}

func (n *Network) removeFromCell(id, cell int) {
	list := n.cells[cell]
	for i, v := range list {
		if int(v) == id {
			list[i] = list[len(list)-1]
			n.cells[cell] = list[:len(list)-1]
			return
		}
	}
}

// Position returns the registered position of a host.
func (n *Network) Position(id int) (geom.Point, bool) {
	if id < 0 || id >= len(n.present) || !n.present[id] {
		return geom.Point{}, false
	}
	return n.pos[id], true
}

// Neighbors returns the IDs of every registered host within `radius` of q,
// excluding `exclude` (pass a negative value to exclude nobody). The
// result order is unspecified but deterministic for a fixed state.
func (n *Network) Neighbors(q geom.Point, radius float64, exclude int) []int {
	return n.AppendNeighbors(nil, q, radius, exclude)
}

// AppendNeighbors appends the IDs of every registered host within
// `radius` of q (excluding `exclude`) to dst and returns the extended
// slice — the zero-allocation variant of Neighbors for callers that keep
// a reusable buffer (pass dst[:0] to reuse its capacity). The append
// order is identical to Neighbors.
func (n *Network) AppendNeighbors(dst []int, q geom.Point, radius float64, exclude int) []int {
	if radius <= 0 {
		return dst
	}
	r2 := radius * radius
	cx0 := int((q.X - radius - n.area.Min.X) / n.cellSize)
	cx1 := int((q.X + radius - n.area.Min.X) / n.cellSize)
	cy0 := int((q.Y - radius - n.area.Min.Y) / n.cellSize)
	cy1 := int((q.Y + radius - n.area.Min.Y) / n.cellSize)
	if cx0 < 0 {
		cx0 = 0
	}
	if cy0 < 0 {
		cy0 = 0
	}
	if cx1 >= n.cols {
		cx1 = n.cols - 1
	}
	if cy1 >= n.rows {
		cy1 = n.rows - 1
	}
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, id := range n.cells[cy*n.cols+cx] {
				if int(id) == exclude {
					continue
				}
				if n.pos[id].DistSq(q) <= r2 {
					dst = append(dst, int(id))
				}
			}
		}
	}
	return dst
}

// RecordExchange tallies one request that reached `replies` peers.
func (n *Network) RecordExchange(replies int) {
	n.Stats.Requests++
	n.Stats.Replies += int64(replies)
}

// ObserveFanout records one exchange's reachable-peer count into the
// attached fan-out histogram; a no-op (one branch, zero allocations)
// when metrics are disabled. Callers invoke it once per query so the
// distribution matches the per-query peer counts the reports average.
func (n *Network) ObserveFanout(peers int) {
	if n.FanoutHist != nil {
		n.FanoutHist.ObserveInt(int64(peers))
	}
}

// NeighborsMultiHop returns the hosts reachable from q within the given
// number of ad-hoc hops: hop 1 is every host within `radius` of q; hop
// h+1 adds every host within `radius` of a hop-h host. The result
// excludes `exclude` and is deduplicated. hops <= 1 behaves exactly like
// Neighbors. Multi-hop relaying is the natural extension of the paper's
// single-hop sharing (its cooperative-caching citations [4, 5] relay
// across hops); it trades extra ad-hoc traffic for reach in sparse areas.
func (n *Network) NeighborsMultiHop(q geom.Point, radius float64, hops, exclude int) []int {
	return n.AppendNeighborsMultiHop(nil, q, radius, hops, exclude)
}

// AppendNeighborsMultiHop is NeighborsMultiHop appending into a
// caller-owned buffer (pass dst[:0] to reuse capacity). The single-hop
// default path allocates nothing; multi-hop frontiers still allocate
// their dedup state, which only non-default configurations pay for.
func (n *Network) AppendNeighborsMultiHop(dst []int, q geom.Point, radius float64, hops, exclude int) []int {
	if hops <= 1 {
		return n.AppendNeighbors(dst, q, radius, exclude)
	}
	seen := make(map[int]bool)
	frontier := n.Neighbors(q, radius, exclude)
	out := dst
	for _, id := range frontier {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for hop := 2; hop <= hops && len(frontier) > 0; hop++ {
		var next []int
		for _, id := range frontier {
			pos, ok := n.Position(id)
			if !ok {
				continue
			}
			for _, peer := range n.Neighbors(pos, radius, exclude) {
				if !seen[peer] {
					seen[peer] = true
					next = append(next, peer)
					out = append(out, peer)
				}
			}
		}
		frontier = next
	}
	return out
}
