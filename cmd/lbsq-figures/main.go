// Command lbsq-figures regenerates the paper's evaluation figures
// (Figures 10–15), the latency-reduction table, the hit-ratio
// analysis-vs-simulation comparison, and the design ablations, printing
// the series as aligned text tables.
//
// Usage:
//
//	lbsq-figures [-fig all|10|11|12|13|14|15|latency|analysis|ablation|
//	              calibration|lifetime|phases]
//	             [-side miles] [-hours h] [-step sec] [-seed n]
//	             [-parallel n] [-pprof addr]
//
// -fig phases prints the per-phase query-cost breakdown (the
// EXPERIMENTS.md latency-breakdown table) from metrics-enabled runs.
// -pprof serves net/http/pprof on the given address for profiling long
// figure regenerations.
//
// The default scale is a density-preserving 5-mile area simulated for 0.5
// hours per cell (seconds per figure). Pass -side 20 -hours 10 to run the
// paper's full configuration.
//
// -parallel sets the sweep worker count (0 = GOMAXPROCS, 1 = serial).
// Every worker count produces byte-identical output: cells own their
// seeded worlds and results reassemble in cell order (internal/sweep).
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lbsq/internal/experiments"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: all, 10..15, latency, analysis, ablation, calibration, lifetime, phases")
		side     = flag.Float64("side", 5, "service area side in miles (density-preserving scale of the 20-mile Table 3 area)")
		hours    = flag.Float64("hours", 0.5, "simulated hours per experiment cell")
		step     = flag.Float64("step", 10, "simulation time step in seconds")
		seed     = flag.Int64("seed", 42, "random seed")
		svg      = flag.String("svg", "", "directory to also write figures as SVG plots (created if missing)")
		parallel = flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS, 1 = serial; output identical either way)")
		pprofAd  = flag.String("pprof", "", "serve net/http/pprof on this address while figures regenerate")
	)
	flag.Parse()

	if *pprofAd != "" {
		// net/http/pprof registers its handlers on the default mux.
		go func() {
			if err := http.ListenAndServe(*pprofAd, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof listener: %v\n", err)
			}
		}()
		fmt.Printf("serving /debug/pprof on %s\n\n", *pprofAd)
	}

	svgDir = *svg
	opt := experiments.Options{
		SideMiles:     *side,
		DurationHours: *hours,
		TimeStepSec:   *step,
		Seed:          *seed,
		Parallel:      *parallel,
	}

	start := time.Now()
	switch *fig {
	case "all":
		for _, f := range experiments.Figures(opt) {
			printFigure(f)
		}
		printLatency(opt)
		printAnalysis(opt)
		printAblations(opt)
		printCalibration(opt)
	case "latency":
		printLatency(opt)
	case "analysis":
		printAnalysis(opt)
	case "ablation":
		printAblations(opt)
	case "calibration":
		printCalibration(opt)
	case "lifetime":
		printLifetime(opt)
	case "phases":
		printPhases(opt)
	default:
		f, err := experiments.ByID(*fig, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			flag.Usage()
			os.Exit(2)
		}
		printFigure(f)
	}
	fmt.Printf("\ncompleted in %.1fs (side=%.1f mi, %.2f h per cell, seed %d)\n",
		time.Since(start).Seconds(), *side, *hours, *seed)
}

var svgDir string

func printFigure(f experiments.Figure) {
	if _, err := f.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	if svgDir == "" {
		return
	}
	if err := os.MkdirAll(svgDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	path := filepath.Join(svgDir, strings.ToLower(f.ID)+".svg")
	out, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer out.Close()
	if err := f.Chart().WriteSVG(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n\n", path)
}

func printLatency(opt experiments.Options) {
	experiments.WriteLatency(os.Stdout, experiments.LatencyReduction(opt))
	fmt.Println()
}

func printAnalysis(opt experiments.Options) {
	experiments.WriteAnalysis(os.Stdout, experiments.AnalysisVsSim(opt))
	fmt.Println()
}

func printCalibration(opt experiments.Options) {
	experiments.WriteOrdering(os.Stdout, experiments.OrderingAblation(opt))
	fmt.Println()
	experiments.WriteCalibration(os.Stdout, "Poisson (lemma assumption)",
		experiments.CorrectnessCalibration(opt, false, 4000))
	fmt.Println()
	experiments.WriteCalibration(os.Stdout, "clustered (assumption violated)",
		experiments.CorrectnessCalibration(opt, true, 4000))
	fmt.Println()
}

func printLifetime(opt experiments.Options) {
	experiments.WriteLifetime(os.Stdout, experiments.ResultLifetime(opt))
	fmt.Println()
}

func printPhases(opt experiments.Options) {
	experiments.WritePhases(os.Stdout, experiments.PhaseBreakdown(opt))
	fmt.Println()
}

func printAblations(opt experiments.Options) {
	fmt.Println("Ablation: cache replacement policy (kNN, shared-resolution %)")
	fmt.Printf("  %-20s %-20s %10s\n", "Parameter set", "policy", "shared %")
	for _, r := range experiments.CachePolicyAblation(opt) {
		fmt.Printf("  %-20s %-20s %10.1f\n", r.SetName, r.Policy, r.SharedPct)
	}
	fmt.Println()
	fmt.Println("Ablation: approximate-acceptance threshold (LA City kNN)")
	fmt.Printf("  %-10s %14s %14s\n", "threshold", "approx %", "broadcast %")
	for _, r := range experiments.ApproxThresholdAblation(opt) {
		fmt.Printf("  %-10.2f %14.1f %14.1f\n", r.Threshold, r.ApproximatePct, r.BroadcastPct)
	}
	fmt.Println()
	experiments.WriteMultiHop(os.Stdout, experiments.MultiHopAblation(opt))
	fmt.Println()
}
