package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// quickWorld derives a deterministic random scenario from a seed.
type quickWorld struct {
	db    []broadcast.POI
	peers []PeerData
	q     geom.Point
	k     int
}

func makeQuickWorld(seed int64) quickWorld {
	rng := rand.New(rand.NewSource(seed))
	n := 20 + rng.Intn(80)
	db := make([]broadcast.POI, n)
	for i := range db {
		db[i] = broadcast.POI{ID: int64(i), Pos: geom.Pt(rng.Float64()*20, rng.Float64()*20)}
	}
	var peers []PeerData
	for i := 0; i < rng.Intn(6); i++ {
		cx, cy := rng.Float64()*20, rng.Float64()*20
		vr := geom.NewRect(cx, cy, cx+rng.Float64()*6, cy+rng.Float64()*6)
		pd := PeerData{VR: vr}
		for _, p := range db {
			if vr.Contains(p.Pos) {
				pd.POIs = append(pd.POIs, p)
			}
		}
		peers = append(peers, pd)
	}
	return quickWorld{
		db:    db,
		peers: peers,
		q:     geom.Pt(rng.Float64()*20, rng.Float64()*20),
		k:     1 + rng.Intn(8),
	}
}

// Property: the verified prefix of the NNV heap is exactly the true
// top-v ranking of the database (Lemma 3.1), for arbitrary sound peer
// configurations.
func TestQuickNNVVerifiedPrefixIsTruth(t *testing.T) {
	f := func(seed int64) bool {
		w := makeQuickWorld(seed)
		res := NNV(w.q, w.peers, w.k, 0.3)
		truth := append([]broadcast.POI(nil), w.db...)
		sortCandidates(truth, w.q)
		for rank, e := range res.Heap.Entries() {
			if !e.Verified {
				break
			}
			if e.Dist != truth[rank].Pos.Dist(w.q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: heap entries are sorted ascending, bounded by k, and the
// derived search bounds are consistent (lower <= upper when both exist).
func TestQuickHeapStructure(t *testing.T) {
	f := func(seed int64) bool {
		w := makeQuickWorld(seed)
		res := NNV(w.q, w.peers, w.k, 0.3)
		h := res.Heap
		if h.Len() > w.k {
			return false
		}
		prev := -1.0
		for _, e := range h.Entries() {
			if e.Dist < prev {
				return false
			}
			prev = e.Dist
		}
		b := h.SearchBounds()
		if b.Upper > 0 && b.Lower > 0 && b.Lower > b.Upper {
			return false
		}
		// Bounds only come from the documented states.
		switch h.State() {
		case StatePartialUnverified, StateEmpty:
			if b.Upper != 0 || b.Lower != 0 {
				return false
			}
		case StateFullUnverified:
			if b.Lower != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: SBNN with a broadcast channel always returns exactly the true
// k nearest (unless it legitimately reported an approximate outcome).
func TestQuickSBNNExactness(t *testing.T) {
	f := func(seed int64) bool {
		w := makeQuickWorld(seed)
		sched, err := broadcast.NewSchedule(w.db, broadcast.Config{
			Area: geom.NewRect(0, 0, 20, 20), Order: 4, PacketCapacity: 4,
		})
		if err != nil {
			return false
		}
		res := SBNN(w.q, w.peers, SBNNConfig{K: w.k, Lambda: 0.3}, sched, seed%977)
		truth := append([]broadcast.POI(nil), w.db...)
		sortCandidates(truth, w.q)
		want := w.k
		if want > len(truth) {
			want = len(truth)
		}
		if len(res.POIs) != want {
			return false
		}
		for i := 0; i < want; i++ {
			if res.POIs[i].Pos.Dist(w.q) != truth[i].Pos.Dist(w.q) {
				return false
			}
		}
		// The gained knowledge is sound: every database POI inside
		// KnownRegion is in Known.
		if !res.KnownRegion.Empty() {
			known := map[int64]bool{}
			for _, p := range res.Known {
				known[p.ID] = true
			}
			for _, p := range w.db {
				if res.KnownRegion.Contains(p.Pos) && !known[p.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: SBWQ returns exactly the window contents and its gained
// knowledge is sound.
func TestQuickSBWQExactness(t *testing.T) {
	f := func(seed int64) bool {
		w := makeQuickWorld(seed)
		sched, err := broadcast.NewSchedule(w.db, broadcast.Config{
			Area: geom.NewRect(0, 0, 20, 20), Order: 4, PacketCapacity: 4,
		})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5bd1))
		cx, cy := rng.Float64()*18, rng.Float64()*18
		win := geom.NewRect(cx, cy, cx+0.5+rng.Float64()*4, cy+0.5+rng.Float64()*4)
		res := SBWQ(w.q, win, w.peers, sched, seed%977)
		count := 0
		for _, p := range w.db {
			if win.Contains(p.Pos) {
				count++
			}
		}
		if len(res.POIs) != count {
			return false
		}
		if !res.KnownRegion.Empty() {
			if !res.KnownRegion.ContainsRect(win) && res.KnownRegion != win {
				return false
			}
			known := map[int64]bool{}
			for _, p := range res.Known {
				known[p.ID] = true
			}
			for _, p := range w.db {
				if res.KnownRegion.Contains(p.Pos) && !known[p.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
