// Package rtree implements an in-memory R-tree over point data (Guttman,
// SIGMOD 1984) with quadratic node splitting, STR bulk loading, window
// queries, and both best-first (Hjaltason–Samet) and depth-first
// branch-and-bound (Roussopoulos et al.) k-nearest-neighbor search.
//
// In the reproduction it plays two roles: it is the wireless information
// server's spatial database (ground truth for every query the simulator
// issues), and it is the classical random-access-disk baseline the paper
// contrasts with sequential on-air access.
package rtree

import (
	"container/heap"
	"math"
	"sort"

	"lbsq/internal/geom"
)

// Item is a point object stored in the tree.
type Item struct {
	ID  int64
	Pos geom.Point
}

// DefaultMaxEntries is the node fan-out used when callers pass a
// non-positive value.
const DefaultMaxEntries = 16

type node struct {
	leaf     bool
	bounds   geom.Rect
	children []*node // internal nodes
	items    []Item  // leaf nodes
	parent   *node
}

// Tree is an R-tree over point items. The zero value is not usable; use
// New or Bulk.
type Tree struct {
	root       *node
	maxEntries int
	minEntries int
	size       int
	variant    variant
	// reinserted tracks which levels already forced a reinsertion during
	// the current R* insertion (OT1 bookkeeping).
	reinserted map[int]bool
}

// New returns an empty tree with the given maximum node fan-out.
func New(maxEntries int) *Tree {
	if maxEntries <= 1 {
		maxEntries = DefaultMaxEntries
	}
	t := &Tree{
		maxEntries: maxEntries,
		minEntries: maxEntries * 2 / 5,
	}
	if t.minEntries < 1 {
		t.minEntries = 1
	}
	t.root = &node{leaf: true}
	return t
}

// Bulk builds a tree from items using Sort-Tile-Recursive packing, which
// produces near-optimal leaves for static data sets such as a POI
// database.
func Bulk(items []Item, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(items) == 0 {
		return t
	}
	leaves := strPack(items, t.maxEntries)
	t.size = len(items)
	t.root = buildUp(leaves, t.maxEntries)
	setParents(t.root)
	return t
}

// strPack tiles items into leaf nodes: sort by X, slice into vertical
// strips of ~sqrt(n/M) each, sort each strip by Y, and cut runs of M.
func strPack(items []Item, m int) []*node {
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Pos.X < sorted[j].Pos.X })
	n := len(sorted)
	leafCount := (n + m - 1) / m
	stripCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perStrip := (n + stripCount - 1) / stripCount

	var leaves []*node
	for s := 0; s < n; s += perStrip {
		e := s + perStrip
		if e > n {
			e = n
		}
		strip := sorted[s:e]
		sort.Slice(strip, func(i, j int) bool { return strip[i].Pos.Y < strip[j].Pos.Y })
		for i := 0; i < len(strip); i += m {
			j := i + m
			if j > len(strip) {
				j = len(strip)
			}
			leaf := &node{leaf: true, items: append([]Item(nil), strip[i:j]...)}
			leaf.recomputeBounds()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// buildUp packs nodes level by level until a single root remains.
func buildUp(level []*node, m int) *node {
	for len(level) > 1 {
		sort.Slice(level, func(i, j int) bool {
			return level[i].bounds.Center().X < level[j].bounds.Center().X
		})
		groupCount := (len(level) + m - 1) / m
		stripCount := int(math.Ceil(math.Sqrt(float64(groupCount))))
		perStrip := (len(level) + stripCount - 1) / stripCount
		var next []*node
		for s := 0; s < len(level); s += perStrip {
			e := s + perStrip
			if e > len(level) {
				e = len(level)
			}
			strip := level[s:e]
			sort.Slice(strip, func(i, j int) bool {
				return strip[i].bounds.Center().Y < strip[j].bounds.Center().Y
			})
			for i := 0; i < len(strip); i += m {
				j := i + m
				if j > len(strip) {
					j = len(strip)
				}
				parent := &node{children: append([]*node(nil), strip[i:j]...)}
				parent.recomputeBounds()
				next = append(next, parent)
			}
		}
		level = next
	}
	return level[0]
}

func setParents(n *node) {
	for _, c := range n.children {
		c.parent = n
		setParents(c)
	}
}

// Len returns the number of items stored.
func (t *Tree) Len() int { return t.size }

// Bounds returns the MBR of all stored items; ok is false when empty.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return t.root.bounds, true
}

func (n *node) recomputeBounds() {
	if n.leaf {
		if len(n.items) == 0 {
			n.bounds = geom.Rect{}
			return
		}
		b := geom.Rect{Min: n.items[0].Pos, Max: n.items[0].Pos}
		for _, it := range n.items[1:] {
			b = b.Union(geom.Rect{Min: it.Pos, Max: it.Pos})
		}
		n.bounds = b
		return
	}
	if len(n.children) == 0 {
		n.bounds = geom.Rect{}
		return
	}
	b := n.children[0].bounds
	for _, c := range n.children[1:] {
		b = b.Union(c.bounds)
	}
	n.bounds = b
}

// Insert adds an item to the tree.
func (t *Tree) Insert(it Item) {
	if t.variant == rstar {
		t.insertRStar(it)
		return
	}
	leaf := t.chooseLeaf(t.root, it.Pos)
	leaf.items = append(leaf.items, it)
	leaf.bounds = extend(leaf, it.Pos)
	t.size++
	if len(leaf.items) > t.maxEntries {
		t.splitNode(leaf)
	} else {
		t.adjustUp(leaf.parent)
	}
}

func extend(n *node, p geom.Point) geom.Rect {
	pt := geom.Rect{Min: p, Max: p}
	if n.leaf && len(n.items) == 1 {
		return pt
	}
	return n.bounds.Union(pt)
}

func (t *Tree) chooseLeaf(n *node, p geom.Point) *node {
	for !n.leaf {
		best := n.children[0]
		bestEnl := enlargement(best.bounds, p)
		for _, c := range n.children[1:] {
			enl := enlargement(c.bounds, p)
			if enl < bestEnl || (enl == bestEnl && c.bounds.Area() < best.bounds.Area()) {
				best, bestEnl = c, enl
			}
		}
		n = best
	}
	return n
}

func enlargement(r geom.Rect, p geom.Point) float64 {
	grown := r.Union(geom.Rect{Min: p, Max: p})
	return grown.Area() - r.Area()
}

// splitNode splits an overflowing node with Guttman's quadratic algorithm
// and propagates upward.
func (t *Tree) splitNode(n *node) {
	var sibling *node
	if n.leaf {
		a, b := quadraticSplitItems(n.items, t.minEntries)
		n.items = a
		sibling = &node{leaf: true, items: b}
	} else {
		a, b := quadraticSplitNodes(n.children, t.minEntries)
		n.children = a
		sibling = &node{children: b}
		for _, c := range sibling.children {
			c.parent = sibling
		}
	}
	n.recomputeBounds()
	sibling.recomputeBounds()

	if n.parent == nil {
		newRoot := &node{children: []*node{n, sibling}}
		n.parent = newRoot
		sibling.parent = newRoot
		newRoot.recomputeBounds()
		t.root = newRoot
		return
	}
	p := n.parent
	sibling.parent = p
	p.children = append(p.children, sibling)
	p.recomputeBounds()
	if len(p.children) > t.maxEntries {
		t.splitNode(p)
	} else {
		t.adjustUp(p.parent)
	}
}

func (t *Tree) adjustUp(n *node) {
	for n != nil {
		n.recomputeBounds()
		n = n.parent
	}
}

func quadraticSplitItems(items []Item, min int) (a, b []Item) {
	// Pick the pair of seeds wasting the most area together.
	si, sj := 0, 1
	worst := -1.0
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			r := geom.Rect{Min: items[i].Pos, Max: items[i].Pos}.
				Union(geom.Rect{Min: items[j].Pos, Max: items[j].Pos})
			if w := r.Area(); w > worst {
				worst, si, sj = w, i, j
			}
		}
	}
	a = []Item{items[si]}
	b = []Item{items[sj]}
	ra := geom.Rect{Min: items[si].Pos, Max: items[si].Pos}
	rb := geom.Rect{Min: items[sj].Pos, Max: items[sj].Pos}
	for k, it := range items {
		if k == si || k == sj {
			continue
		}
		// Force balance when one side must absorb the rest.
		if len(a) >= len(items)-min {
			b = append(b, it)
			rb = rb.Union(geom.Rect{Min: it.Pos, Max: it.Pos})
			continue
		}
		if len(b) >= len(items)-min {
			a = append(a, it)
			ra = ra.Union(geom.Rect{Min: it.Pos, Max: it.Pos})
			continue
		}
		ea := ra.Union(geom.Rect{Min: it.Pos, Max: it.Pos}).Area() - ra.Area()
		eb := rb.Union(geom.Rect{Min: it.Pos, Max: it.Pos}).Area() - rb.Area()
		if ea < eb || (ea == eb && len(a) <= len(b)) {
			a = append(a, it)
			ra = ra.Union(geom.Rect{Min: it.Pos, Max: it.Pos})
		} else {
			b = append(b, it)
			rb = rb.Union(geom.Rect{Min: it.Pos, Max: it.Pos})
		}
	}
	return a, b
}

func quadraticSplitNodes(nodes []*node, min int) (a, b []*node) {
	si, sj := 0, 1
	worst := -1.0
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			r := nodes[i].bounds.Union(nodes[j].bounds)
			w := r.Area() - nodes[i].bounds.Area() - nodes[j].bounds.Area()
			if w > worst {
				worst, si, sj = w, i, j
			}
		}
	}
	a = []*node{nodes[si]}
	b = []*node{nodes[sj]}
	ra, rb := nodes[si].bounds, nodes[sj].bounds
	for k, c := range nodes {
		if k == si || k == sj {
			continue
		}
		if len(a) >= len(nodes)-min {
			b = append(b, c)
			rb = rb.Union(c.bounds)
			continue
		}
		if len(b) >= len(nodes)-min {
			a = append(a, c)
			ra = ra.Union(c.bounds)
			continue
		}
		ea := ra.Union(c.bounds).Area() - ra.Area()
		eb := rb.Union(c.bounds).Area() - rb.Area()
		if ea < eb || (ea == eb && len(a) <= len(b)) {
			a = append(a, c)
			ra = ra.Union(c.bounds)
		} else {
			b = append(b, c)
			rb = rb.Union(c.bounds)
		}
	}
	return a, b
}

// Delete removes the item with the given ID at pos. It reports whether an
// item was removed. Underflowing nodes are condensed and their remaining
// items reinserted (Guttman's CondenseTree).
func (t *Tree) Delete(id int64, pos geom.Point) bool {
	leaf := t.findLeaf(t.root, id, pos)
	if leaf == nil {
		return false
	}
	for i, it := range leaf.items {
		if it.ID == id {
			leaf.items = append(leaf.items[:i], leaf.items[i+1:]...)
			break
		}
	}
	t.size--
	t.condense(leaf)
	return true
}

func (t *Tree) findLeaf(n *node, id int64, pos geom.Point) *node {
	if n.leaf {
		for _, it := range n.items {
			if it.ID == id {
				return n
			}
		}
		return nil
	}
	for _, c := range n.children {
		if c.bounds.Contains(pos) {
			if found := t.findLeaf(c, id, pos); found != nil {
				return found
			}
		}
	}
	return nil
}

func (t *Tree) condense(n *node) {
	var orphans []Item
	for n.parent != nil {
		p := n.parent
		under := (n.leaf && len(n.items) < t.minEntries) ||
			(!n.leaf && len(n.children) < t.minEntries)
		if under {
			// Detach n and collect its items for reinsertion.
			for i, c := range p.children {
				if c == n {
					p.children = append(p.children[:i], p.children[i+1:]...)
					break
				}
			}
			orphans = append(orphans, collectItems(n)...)
		} else {
			n.recomputeBounds()
		}
		n = p
	}
	t.root.recomputeBounds()
	// Shrink a root with a single internal child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.root.parent = nil
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true}
	}
	t.size -= len(orphans)
	for _, it := range orphans {
		t.Insert(it)
	}
}

func collectItems(n *node) []Item {
	if n.leaf {
		return n.items
	}
	var out []Item
	for _, c := range n.children {
		out = append(out, collectItems(c)...)
	}
	return out
}

// Window returns every item inside the closed rectangle r.
func (t *Tree) Window(r geom.Rect) []Item {
	var out []Item
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			for _, it := range n.items {
				if r.Contains(it.Pos) {
					out = append(out, it)
				}
			}
			return
		}
		for _, c := range n.children {
			if c.bounds.Intersects(r) {
				walk(c)
			}
		}
	}
	if t.size > 0 {
		walk(t.root)
	}
	return out
}

// All returns every stored item.
func (t *Tree) All() []Item {
	if t.size == 0 {
		return nil
	}
	return collectItems(t.root)
}

// nnEntry is a priority-queue element for best-first search.
type nnEntry struct {
	dist     float64
	node     *node
	item     Item
	leafItem bool
}

type nnQueue []nnEntry

func (q nnQueue) Len() int            { return len(q) }
func (q nnQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x interface{}) { *q = append(*q, x.(nnEntry)) }
func (q *nnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// KNN returns the k nearest items to q in ascending distance order using
// best-first (incremental) search.
func (t *Tree) KNN(q geom.Point, k int) []Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &nnQueue{{dist: t.root.bounds.Dist(q), node: t.root}}
	var out []Item
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(pq).(nnEntry)
		if e.leafItem {
			out = append(out, e.item)
			continue
		}
		n := e.node
		if n.leaf {
			for _, it := range n.items {
				heap.Push(pq, nnEntry{dist: it.Pos.Dist(q), item: it, leafItem: true})
			}
			continue
		}
		for _, c := range n.children {
			heap.Push(pq, nnEntry{dist: c.bounds.Dist(q), node: c})
		}
	}
	return out
}

// KNNDepthFirst returns the k nearest items using the depth-first
// branch-and-bound algorithm of Roussopoulos et al. It produces the same
// result set as KNN and exists as the classical baseline.
func (t *Tree) KNNDepthFirst(q geom.Point, k int) []Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	best := &boundedResult{k: k}
	t.dfKNN(t.root, q, best)
	return best.sorted()
}

type scoredItem struct {
	dist float64
	item Item
}

// boundedResult keeps the k closest items seen so far as a max-heap.
type boundedResult struct {
	k     int
	items []scoredItem // max-heap by dist
}

func (b *boundedResult) worst() float64 {
	if len(b.items) < b.k {
		return math.Inf(1)
	}
	return b.items[0].dist
}

func (b *boundedResult) add(d float64, it Item) {
	if len(b.items) < b.k {
		b.items = append(b.items, scoredItem{d, it})
		b.up(len(b.items) - 1)
		return
	}
	if d >= b.items[0].dist {
		return
	}
	b.items[0] = scoredItem{d, it}
	b.down(0)
}

func (b *boundedResult) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if b.items[p].dist >= b.items[i].dist {
			break
		}
		b.items[p], b.items[i] = b.items[i], b.items[p]
		i = p
	}
}

func (b *boundedResult) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(b.items) && b.items[l].dist > b.items[big].dist {
			big = l
		}
		if r < len(b.items) && b.items[r].dist > b.items[big].dist {
			big = r
		}
		if big == i {
			return
		}
		b.items[i], b.items[big] = b.items[big], b.items[i]
		i = big
	}
}

func (b *boundedResult) sorted() []Item {
	s := append([]scoredItem(nil), b.items...)
	sort.Slice(s, func(i, j int) bool { return s[i].dist < s[j].dist })
	out := make([]Item, len(s))
	for i, e := range s {
		out[i] = e.item
	}
	return out
}

func (t *Tree) dfKNN(n *node, q geom.Point, best *boundedResult) {
	if n.leaf {
		for _, it := range n.items {
			best.add(it.Pos.Dist(q), it)
		}
		return
	}
	// Visit children by ascending MINDIST, pruning against the current
	// k-th distance.
	order := make([]*node, len(n.children))
	copy(order, n.children)
	sort.Slice(order, func(i, j int) bool {
		return order[i].bounds.Dist(q) < order[j].bounds.Dist(q)
	})
	for _, c := range order {
		if c.bounds.Dist(q) > best.worst() {
			return
		}
		t.dfKNN(c, q, best)
	}
}

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}
