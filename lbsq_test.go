package lbsq_test

import (
	"math/rand"
	"sort"
	"testing"

	"lbsq"
)

func demoServer(t *testing.T, rng *rand.Rand, n int) *lbsq.Server {
	t.Helper()
	area := lbsq.NewRect(0, 0, 20, 20)
	pois := make([]lbsq.POI, n)
	for i := range pois {
		pois[i] = lbsq.POI{ID: int64(i), Pos: lbsq.Pt(rng.Float64()*20, rng.Float64()*20)}
	}
	srv, err := lbsq.NewServer(area, pois, lbsq.BroadcastConfig{Order: 4, PacketCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func truthKNN(pois []lbsq.POI, q lbsq.Point, k int) []lbsq.POI {
	s := append([]lbsq.POI(nil), pois...)
	sort.Slice(s, func(i, j int) bool { return s[i].Pos.DistSq(q) < s[j].Pos.DistSq(q) })
	if k > len(s) {
		k = len(s)
	}
	return s[:k]
}

func TestNewServerValidation(t *testing.T) {
	if _, err := lbsq.NewServer(lbsq.Rect{}, nil, lbsq.BroadcastConfig{}); err == nil {
		t.Error("empty area must be rejected")
	}
	srv := demoServer(t, rand.New(rand.NewSource(1)), 50)
	if srv.Area() != lbsq.NewRect(0, 0, 20, 20) {
		t.Error("Area accessor wrong")
	}
	if len(srv.POIs()) != 50 {
		t.Error("POIs accessor wrong")
	}
	if srv.POIDensity() != 50.0/400 {
		t.Errorf("POIDensity = %v", srv.POIDensity())
	}
	if srv.Schedule() == nil {
		t.Error("Schedule accessor nil")
	}
}

func TestClientKNNNoPeers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	srv := demoServer(t, rng, 120)
	c := lbsq.NewClient(srv, lbsq.Pt(10, 10), 50)
	res := c.KNN(3, nil)
	if res.Outcome != lbsq.OutcomeBroadcast {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	want := truthKNN(srv.POIs(), c.Pos(), 3)
	for i := range want {
		if res.POIs[i].ID != want[i].ID {
			t.Fatalf("rank %d: got %d want %d", i, res.POIs[i].ID, want[i].ID)
		}
	}
	if c.NowSlot() == 0 {
		t.Error("broadcast query must advance the clock")
	}
	if c.CacheSize() == 0 {
		t.Error("broadcast query must fill the cache")
	}
}

func TestClientToClientSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	srv := demoServer(t, rng, 200)
	// Client A performs a broadcast query, becoming an authority around
	// (10,10).
	a := lbsq.NewClient(srv, lbsq.Pt(10, 10), 100)
	a.KNN(8, nil)
	if len(a.Share()) == 0 {
		t.Fatal("client A has nothing to share")
	}
	// Client B at the same spot asks A's cache: a small-k query should now
	// verify without the channel.
	b := lbsq.NewClient(srv, lbsq.Pt(10, 10), 100)
	res := b.KNN(1, a.Share())
	if res.Outcome != lbsq.OutcomeVerified {
		t.Fatalf("outcome = %v (heap %d/%d verified)", res.Outcome,
			res.Heap.VerifiedCount(), res.Heap.Len())
	}
	if res.Access.PacketsRead != 0 {
		t.Fatal("verified answer must not read packets")
	}
	want := truthKNN(srv.POIs(), b.Pos(), 1)
	if res.POIs[0].ID != want[0].ID {
		t.Fatalf("NN = %d want %d", res.POIs[0].ID, want[0].ID)
	}
}

func TestClientWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	srv := demoServer(t, rng, 200)
	c := lbsq.NewClient(srv, lbsq.Pt(10, 10), 100)
	w := lbsq.NewRect(8, 8, 12, 12)
	res := c.Window(w, nil)
	if res.Outcome != lbsq.OutcomeBroadcast {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	count := 0
	for _, p := range srv.POIs() {
		if w.Contains(p.Pos) {
			count++
		}
	}
	if len(res.POIs) != count {
		t.Fatalf("window got %d want %d", len(res.POIs), count)
	}
	// Second identical window query with the first client's share: covered.
	d := lbsq.NewClient(srv, lbsq.Pt(10, 10), 100)
	res2 := d.Window(w, c.Share())
	if res2.Outcome != lbsq.OutcomeVerified {
		t.Fatalf("second window outcome = %v", res2.Outcome)
	}
	if len(res2.POIs) != count {
		t.Fatalf("second window got %d want %d", len(res2.POIs), count)
	}
}

func TestClientMoveToUpdatesHeading(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	srv := demoServer(t, rng, 50)
	c := lbsq.NewClient(srv, lbsq.Pt(0, 0), 10)
	c.MoveTo(lbsq.Pt(5, 0))
	if c.Pos() != lbsq.Pt(5, 0) {
		t.Fatalf("Pos = %v", c.Pos())
	}
	c.MoveTo(lbsq.Pt(5, 0)) // no movement: heading preserved, no panic
	c.AdvanceSlots(10)
	if c.NowSlot() != 10 {
		t.Fatalf("NowSlot = %d", c.NowSlot())
	}
	c.AdvanceSlots(-5) // ignored
	if c.NowSlot() != 10 {
		t.Fatalf("NowSlot after negative advance = %d", c.NowSlot())
	}
}

func TestCorrectnessProbabilityReexport(t *testing.T) {
	if p := lbsq.CorrectnessProbability(0.3, 2); p < 0.54 || p > 0.56 {
		t.Fatalf("paper example probability = %v", p)
	}
}

func TestSimulationFacade(t *testing.T) {
	p := lbsq.LACity().Scaled(1.5).WithDuration(0.05)
	p.Kind = lbsq.KNNQuery
	p.Seed = 6
	p.TimeStepSec = 10
	w, err := lbsq.NewSimulation(p)
	if err != nil {
		t.Fatal(err)
	}
	stats := w.Run()
	if stats.Queries == 0 {
		t.Fatal("no queries")
	}
	// The other presets construct, too.
	if lbsq.SyntheticSuburbia().MHNumber != 51500 || lbsq.RiversideCounty().MHNumber != 9700 {
		t.Error("preset re-exports wrong")
	}
}

func TestApproximateClientFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	srv := demoServer(t, rng, 300)
	a := lbsq.NewClient(srv, lbsq.Pt(10, 10), 200)
	a.KNN(10, nil) // fill cache around (10,10)
	b := lbsq.NewClient(srv, lbsq.Pt(10.2, 10.2), 50)
	b.AcceptApproximate = true
	b.MinCorrectness = 0 // accept anything with a full heap
	res := b.KNN(6, a.Share())
	// Outcome is verified, approximate, or broadcast depending on layout,
	// but an approximate outcome must carry correctness annotations.
	if res.Outcome == lbsq.OutcomeApproximate {
		for _, e := range res.Heap.Entries() {
			if !e.Verified && (e.Correctness <= 0 || e.Correctness > 1) {
				t.Fatalf("bad correctness %v", e.Correctness)
			}
		}
	}
}

func TestOwnCacheAnswersRepeatedQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	srv := demoServer(t, rng, 250)
	c := lbsq.NewClient(srv, lbsq.Pt(10, 10), 80)
	first := c.KNN(6, nil)
	if first.Outcome != lbsq.OutcomeBroadcast {
		t.Fatalf("first outcome = %v", first.Outcome)
	}
	// Asking again (small move, smaller k): the own cache verifies it
	// with zero channel access.
	c.MoveTo(lbsq.Pt(10.02, 10.01))
	second := c.KNN(2, nil)
	if second.Outcome != lbsq.OutcomeVerified {
		t.Fatalf("second outcome = %v", second.Outcome)
	}
	if second.Access.PacketsRead != 0 {
		t.Fatal("own-cache answer read packets")
	}
	// With DisableOwnCache the same query pays the channel again.
	d := lbsq.NewClient(srv, lbsq.Pt(10, 10), 80)
	d.KNN(6, nil)
	d.DisableOwnCache = true
	third := d.KNN(2, nil)
	if third.Outcome != lbsq.OutcomeBroadcast {
		t.Fatalf("disabled own cache outcome = %v", third.Outcome)
	}
}
